(* The paper's §2.2.2 example: booking a trip as a nested transaction.

   A trip is a root transaction with two subtransactions — an airline
   reservation and a hotel reservation. A subtransaction that commits
   delegates its changes to the parent (that is what "commit" means for
   a subtransaction); one that fails aborts alone, and the code decides
   whether the whole trip is still viable.

   Run with: dune exec examples/nested_trip.exe *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_etm

(* object layout: seats left on the flight, rooms left at the hotel,
   and the customer's itinerary slots *)
let seats = Oid.of_int 0
let rooms = Oid.of_int 1
let flight_booked = Oid.of_int 2
let hotel_booked = Oid.of_int 3

exception Sold_out of string

let airline_res trip =
  if Nested.read trip seats <= 0 then raise (Sold_out "no seats");
  Nested.add trip seats (-1);
  Nested.write trip flight_booked 1

let hotel_res trip =
  if Nested.read trip rooms <= 0 then raise (Sold_out "no rooms");
  Nested.add trip rooms (-1);
  Nested.write trip hotel_booked 1

let book_trip rt =
  let trip = Nested.start rt in
  let ok_air = Nested.run_sub trip airline_res in
  let ok_hotel = ok_air && Nested.run_sub trip hotel_res in
  if ok_air && ok_hotel then begin
    Nested.commit_root trip;
    true
  end
  else begin
    (* hotel failed: the airline reservation was already delegated to
       the trip, so aborting the trip releases the seat too *)
    Nested.abort trip;
    false
  end

let () =
  let db = Db.create (Config.make ~n_objects:16 ()) in
  let rt = Asset.create db in

  (* stock the inventory: 2 seats, 1 room *)
  let setup = Db.begin_txn db in
  Db.write db setup seats 2;
  Db.write db setup rooms 1;
  Db.commit db setup;

  Format.printf "inventory: %d seats, %d rooms@.@." (Db.peek db seats)
    (Db.peek db rooms);

  Format.printf "customer A books a trip... %s@."
    (if book_trip rt then "confirmed" else "canceled");
  Format.printf "inventory now: %d seats, %d rooms@.@." (Db.peek db seats)
    (Db.peek db rooms);

  Format.printf "customer B books a trip... %s@."
    (if book_trip rt then "confirmed" else "canceled");
  Format.printf
    "inventory now: %d seats, %d rooms (hotel was full: the airline@."
    (Db.peek db seats) (Db.peek db rooms);
  Format.printf "reservation was rolled back with the trip, seat restored)@.";

  (* the committed trip survives a crash; the canceled one left no trace *)
  Db.crash db;
  ignore (Db.recover db);
  Format.printf "@.after crash + recovery: %d seats, %d rooms@."
    (Db.peek db seats) (Db.peek db rooms)
