(* Open nested transactions as a saga: an order-fulfilment workflow
   whose steps commit early (so warehouse and billing see them at once)
   and are compensated if a later step sinks the order.

   Run with: dune exec examples/saga_workflow.exe *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_etm

let stock = Oid.of_int 0
let customer_balance = Oid.of_int 1
let orders_shipped = Oid.of_int 2
let price = 30

exception Step_failed of string

let fulfil_order rt ~carrier_available =
  let order = Open_nested.start rt in
  (* step 1: reserve a unit of inventory; compensation restocks *)
  let reserved =
    Open_nested.run_sub order
      ~compensate:(fun c -> Asset.add rt c stock 1)
      (fun sub ->
        if Asset.read rt sub stock <= 0 then raise (Step_failed "no stock");
        Asset.add rt sub stock (-1))
  in
  if not reserved then (Open_nested.abort order; false)
  else begin
    (* step 2: charge the customer; compensation refunds *)
    let charged =
      Open_nested.run_sub order
        ~compensate:(fun c -> Asset.add rt c customer_balance price)
        (fun sub ->
          if Asset.read rt sub customer_balance < price then
            raise (Step_failed "insufficient funds");
          Asset.add rt sub customer_balance (-price))
    in
    if not charged then (Open_nested.abort order; false)
    else begin
      (* step 3: hand to the carrier — the step that can sink the order *)
      let shipped =
        Open_nested.run_sub order
          ~compensate:(fun _ -> ())
          (fun sub ->
            if not carrier_available then raise (Step_failed "no carrier");
            Asset.add rt sub orders_shipped 1)
      in
      if shipped then (Open_nested.commit order; true)
      else (Open_nested.abort order; false)
    end
  end

let show db label =
  Format.printf "%-28s stock=%d balance=%d shipped=%d@." label
    (Db.peek db stock)
    (Db.peek db customer_balance)
    (Db.peek db orders_shipped)

let () =
  let db = Db.create (Config.make ~n_objects:16 ()) in
  let rt = Asset.create db in
  let setup = Db.begin_txn db in
  Db.write db setup stock 2;
  Db.write db setup customer_balance 100;
  Db.commit db setup;
  show db "initial:";

  Format.printf "@.order 1 (carrier available)... %s@."
    (if fulfil_order rt ~carrier_available:true then "fulfilled" else "failed");
  show db "after order 1:";

  Format.printf "@.order 2 (no carrier)... %s@."
    (if fulfil_order rt ~carrier_available:false then "fulfilled" else "failed");
  show db "after compensations:";
  Format.printf
    "  the reservation and the charge had already committed — the saga@.";
  Format.printf "  restocked and refunded instead of undoing.@.";

  (* compensations are ordinary committed transactions: durable *)
  Db.crash db;
  ignore (Db.recover db);
  Format.printf "@.";
  show db "after crash + recovery:"
