(* Quickstart: the engine API in two minutes.

   Run with: dune exec examples/quickstart.exe *)

open Ariesrh_types
open Ariesrh_core

let ob = Oid.of_int

let () =
  Format.printf "== ARIES/RH quickstart ==@.@.";

  (* A database: 256 integer-valued objects, ARIES/RH recovery. *)
  let db = Db.create (Config.make ~n_objects:256 ()) in

  (* Plain transactions work as you'd expect. *)
  let t1 = Db.begin_txn db in
  Db.write db t1 (ob 0) 100;
  Db.add db t1 (ob 1) 5;
  Db.commit db t1;
  Format.printf "t1 committed: ob0=%d ob1=%d@." (Db.peek db (ob 0))
    (Db.peek db (ob 1));

  (* Delegation: t2 updates an object, then hands responsibility to t3.
     After that, t2's fate no longer matters for that update. *)
  let t2 = Db.begin_txn db in
  let t3 = Db.begin_txn db in
  Db.write db t2 (ob 2) 42;
  Format.printf "@.t2 wrote ob2=42, then delegates ob2 to t3@.";
  Db.delegate db ~from_:t2 ~to_:t3 (ob 2);
  Db.abort db t2;
  Format.printf "t2 aborted — but ob2=%d (the update now belongs to t3)@."
    (Db.peek db (ob 2));
  Db.commit db t3;
  Format.printf "t3 committed — ob2 is permanent@.";

  (* Crash in the middle of other work: recovery interprets the log
     through the delegations without rewriting it. *)
  let t4 = Db.begin_txn db in
  Db.write db t4 (ob 3) 7;
  Format.printf "@.t4 wrote ob3=7 and then the machine dies...@.";
  Db.crash db;
  let report = Db.recover db in
  Format.printf "recovered: %d winner(s), %d loser(s) rolled back@."
    (Xid.Set.cardinal report.winners)
    (Xid.Set.cardinal report.losers);
  Format.printf "ob0=%d ob1=%d ob2=%d ob3=%d (t4's write undone)@."
    (Db.peek db (ob 0)) (Db.peek db (ob 1)) (Db.peek db (ob 2))
    (Db.peek db (ob 3));
  Format.printf "@.done.@."
