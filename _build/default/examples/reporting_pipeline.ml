(* Reporting and co-transactions: cooperative long-lived work.

   A sensor-aggregation job runs for a long time, periodically
   publishing ("reporting") its running totals so dashboards see fresh
   data even if the job later dies. Separately, two co-transactions pass
   a working document back and forth, each hop handing over all
   responsibility.

   Run with: dune exec examples/reporting_pipeline.exe *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_etm

let total = Oid.of_int 0
let count = Oid.of_int 1
let doc = Oid.of_int 10

let () =
  let db = Db.create (Config.make ~n_objects:32 ()) in
  let rt = Asset.create db in

  Format.printf "== reporting transaction: a long-running aggregator ==@.@.";
  let agg = Reporting.start rt in
  let batches = [ [ 3; 5 ]; [ 7; 2; 9 ]; [ 4 ] ] in
  List.iteri
    (fun i batch ->
      List.iter
        (fun v ->
          Reporting.add agg total v;
          Reporting.add agg count 1)
        batch;
      let n = Reporting.report agg in
      Format.printf "batch %d ingested; reported %d object(s): total=%d count=%d@."
        (i + 1) n (Db.peek db total) (Db.peek db count))
    batches;

  (* the aggregator dies — but everything reported stays reported *)
  Reporting.cancel agg;
  Db.crash db;
  ignore (Db.recover db);
  Format.printf
    "aggregator canceled + machine crashed; totals survive: total=%d count=%d@."
    (Db.peek db total) (Db.peek db count);

  Format.printf "@.== co-transactions: pass the pen ==@.@.";
  let pair = Cotrans.start rt in
  Cotrans.write pair doc 1;
  Format.printf "author A drafts the document (v%d)@." (Cotrans.read pair doc);
  Cotrans.switch pair;
  Cotrans.write pair doc (Cotrans.read pair doc + 1);
  Format.printf "author B revises it (v%d)@." (Cotrans.read pair doc);
  Cotrans.switch pair;
  Cotrans.write pair doc (Cotrans.read pair doc + 1);
  Format.printf "author A finalizes it (v%d) and commits@."
    (Cotrans.read pair doc);
  Cotrans.commit pair;
  Format.printf "document committed at v%d@." (Db.peek db doc)
