examples/banking_savepoints.ml: Ariesrh_core Ariesrh_types Config Db Format List Oid
