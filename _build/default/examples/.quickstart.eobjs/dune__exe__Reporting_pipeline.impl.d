examples/reporting_pipeline.ml: Ariesrh_core Ariesrh_etm Ariesrh_types Asset Config Cotrans Db Format List Oid Reporting
