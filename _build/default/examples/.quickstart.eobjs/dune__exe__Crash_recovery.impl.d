examples/crash_recovery.ml: Ariesrh_core Ariesrh_recovery Ariesrh_types Ariesrh_wal Config Db Format Lsn Oid Xid
