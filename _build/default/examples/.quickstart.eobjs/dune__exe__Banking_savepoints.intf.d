examples/banking_savepoints.mli:
