examples/reporting_pipeline.mli:
