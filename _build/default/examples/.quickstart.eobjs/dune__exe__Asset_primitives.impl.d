examples/asset_primitives.ml: Ariesrh_core Ariesrh_etm Ariesrh_types Asset Config Db Format Oid
