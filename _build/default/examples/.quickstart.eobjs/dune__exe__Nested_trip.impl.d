examples/nested_trip.ml: Ariesrh_core Ariesrh_etm Ariesrh_types Asset Config Db Format Nested Oid
