examples/no_undo_redo.mli:
