examples/split_transaction.ml: Ariesrh_core Ariesrh_etm Ariesrh_types Asset Config Db Format Oid Split
