examples/no_undo_redo.ml: Ariesrh_core Ariesrh_eos Ariesrh_types Config Db Eos_db Format Oid
