examples/split_transaction.mli:
