examples/quickstart.ml: Ariesrh_core Ariesrh_types Config Db Format Oid Xid
