examples/nested_trip.mli:
