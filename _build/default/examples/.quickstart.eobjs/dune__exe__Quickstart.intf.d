examples/quickstart.mli:
