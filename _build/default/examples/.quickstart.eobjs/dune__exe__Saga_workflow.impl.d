examples/saga_workflow.ml: Ariesrh_core Ariesrh_etm Ariesrh_types Asset Config Db Format Oid Open_nested
