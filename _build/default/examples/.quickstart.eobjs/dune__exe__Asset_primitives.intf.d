examples/asset_primitives.mli:
