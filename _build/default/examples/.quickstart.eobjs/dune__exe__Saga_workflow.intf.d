examples/saga_workflow.mli:
