(* A guided tour of recovery with delegation: build the log from
   Example 1/Example 2 of the paper, crash, and watch ARIES/RH interpret
   history — winners' delegated updates redone, losers' undone — without
   rewriting a single log record.

   Run with: dune exec examples/crash_recovery.exe *)

open Ariesrh_types
open Ariesrh_core
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record

let ob = Oid.of_int

let dump_log db =
  let log = Db.log_store db in
  Log_store.iter_forward log ~from:Lsn.first (fun lsn r ->
      Format.printf "  %3d  %a@." (Lsn.to_int lsn) Record.pp r)

let () =
  let db = Db.create (Config.make ~n_objects:16 ~locking:false ()) in

  Format.printf "== Example 2 of the paper, then a crash ==@.@.";
  (* t updates ob, delegates to t1, updates again, delegates to t2 *)
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t (ob 0) 100;
  Db.delegate db ~from_:t ~to_:t1 (ob 0);
  Db.add db t (ob 0) 10;
  Db.delegate db ~from_:t ~to_:t2 (ob 0);
  (* only t1 commits before the crash *)
  Db.commit db t1;

  Format.printf "the log before the crash:@.";
  dump_log db;
  Format.printf "@.ob0 = %d (both adds applied in place)@.@." (Db.peek db (ob 0));

  Db.crash db;
  Format.printf "*** CRASH ***@.@.";

  let report = Db.recover db in
  Format.printf "recovery report:@.  %a@.@." Ariesrh_recovery.Report.pp report;

  Format.printf "ob0 = %d@." (Db.peek db (ob 0));
  Format.printf
    "  the first add (delegated to winner %a) survived,@." Xid.pp t1;
  Format.printf
    "  the second (delegated to loser %a) was undone,@." Xid.pp t2;
  Format.printf "  and %a's own fate (loser) did not matter for either.@.@."
    Xid.pp t;

  Format.printf "the log after recovery (CLRs appended, history intact):@.";
  dump_log db
