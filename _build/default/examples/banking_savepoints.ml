(* Savepoints, partial rollback, and operation-granularity delegation in
   one banking scenario: a batch-posting transaction that can reject
   individual postings without restarting, and escalate a disputed
   posting to a supervisor transaction that decides its fate alone.

   Run with: dune exec examples/banking_savepoints.exe *)

open Ariesrh_types
open Ariesrh_core

let account i = Oid.of_int i
let pp_balances db =
  Format.printf "  balances: a0=%d a1=%d a2=%d a3=%d@." (Db.peek db (account 0))
    (Db.peek db (account 1))
    (Db.peek db (account 2))
    (Db.peek db (account 3))

let () =
  let db = Db.create (Config.make ~n_objects:16 ()) in

  let setup = Db.begin_txn db in
  List.iter (fun i -> Db.write db setup (account i) 100) [ 0; 1; 2; 3 ];
  Db.commit db setup;
  Format.printf "opening balances:@.";
  pp_balances db;

  Format.printf "@.== batch posting with per-posting savepoints ==@.";
  let batch = Db.begin_txn db in
  (* posting 1: transfer 30 from a0 to a1 — fine *)
  Db.add db batch (account 0) (-30);
  Db.add db batch (account 1) 30;
  (* posting 2: transfer 500 from a2 to a3 — overdraws; reject just it *)
  let sp = Db.savepoint db batch in
  Db.add db batch (account 2) (-500);
  Db.add db batch (account 3) 500;
  if Db.peek db (account 2) < 0 then begin
    Format.printf "posting 2 overdraws a2 — rolled back to its savepoint@.";
    Db.rollback_to db batch sp
  end;
  (* posting 3: a disputed 50 debit on a3: post it, then hand just that
     one operation to the fraud-review transaction *)
  Db.add db batch (account 3) (-50);
  let disputed = Db.last_lsn_of db batch in
  let review = Db.begin_txn db in
  Db.delegate_update db ~from_:batch ~to_:review (account 3) disputed;
  Format.printf
    "posting 3 flagged: that single operation now belongs to the reviewer@.";

  (* the batch commits what it still owns *)
  Db.commit db batch;
  Format.printf "@.batch committed (posting 1 + the rest of its work):@.";
  pp_balances db;

  (* the reviewer decides the disputed debit was fraud: abort undoes it —
     and only it — even though the batch that invoked it committed *)
  Db.abort db review;
  Format.printf "@.review rejected the disputed debit:@.";
  pp_balances db;

  Db.crash db;
  ignore (Db.recover db);
  Format.printf "@.after crash + recovery:@.";
  pp_balances db;
  assert (Db.peek db (account 0) = 70);
  assert (Db.peek db (account 1) = 130);
  assert (Db.peek db (account 2) = 100);
  assert (Db.peek db (account 3) = 100)
