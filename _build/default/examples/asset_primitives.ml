(* The paper's §2.2 code fragments, written against the ASSET primitive
   layer itself (initiate / begin / wait / commit / abort / delegate /
   permit) rather than the packaged ETM modules — the same synthesis the
   paper performs.

   Run with: dune exec examples/asset_primitives.exe *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_etm

let ob = Oid.of_int

(* --- §2.2.1: split transactions ---------------------------------- *)
(*   t2 = initiate(f);
     delegate(self(), t2, ob_set);   // self returns t1
     begin(t2);                                                       *)

let split_fragment rt =
  Format.printf "== the split fragment (§2.2.1) ==@.";
  let t1 = Asset.initiate_empty rt ~name:"t1" () in
  Asset.write rt t1 (ob 0) 10;
  Asset.write rt t1 (ob 1) 20;
  (* t2 = initiate(f) — f finishes the split-off work *)
  let t2 =
    Asset.initiate rt ~name:"t2" (fun self -> Asset.add rt self (ob 0) 1)
  in
  (* delegate(self(), t2, ob_set) *)
  Asset.delegate rt ~from_:t1 ~to_:t2 (ob 0);
  (* begin(t2) *)
  ignore (Asset.begin_run rt t2);
  (* ...and the join, the other way: wait(t2); delegate(t2, t1) *)
  ignore (Asset.wait rt t2);
  Asset.delegate_all rt ~from_:t2 ~to_:t1;
  Asset.commit rt t2;
  Asset.commit rt t1;
  Format.printf "after split + join + commit: ob0=%d ob1=%d@.@."
    (Db.peek (Asset.db rt) (ob 0))
    (Db.peek (Asset.db rt) (ob 1))

(* --- §2.2.2: the trip function, literally ------------------------- *)
(* void trip() {
     t1 = initiate(airline_res); permit(self(), t1); begin(t1);
     if (!wait(t1)) abort(self());
     delegate(t1, self()); commit(t1);
     t2 = initiate(hotel_res); begin(t2);
     if (!wait(t2)) abort(self());
     delegate(t2, self()); commit(t2); }                              *)

exception Trip_canceled

let seats = ob 4
let rooms = ob 5

let airline_res rt self =
  if Asset.read rt self seats <= 0 then failwith "sold out";
  Asset.add rt self seats (-1)

let hotel_res rt self =
  if Asset.read rt self rooms <= 0 then failwith "no rooms";
  Asset.add rt self rooms (-1)

let trip rt t =
  let step name body =
    let sub = Asset.initiate rt ~name body in
    Asset.permit rt ~holder:t ~grantee:sub;
    if not (Asset.begin_run rt sub) then begin
      Asset.abort rt t;
      raise Trip_canceled
    end;
    Asset.delegate_all rt ~from_:sub ~to_:t;
    Asset.commit rt sub
  in
  step "airline_res" (airline_res rt);
  step "hotel_res" (hotel_res rt)

let book rt =
  (* t = initiate(trip); begin(t); commit(t); *)
  let t = Asset.initiate_empty rt ~name:"trip" () in
  match trip rt t with
  | () ->
      Asset.commit rt t;
      true
  | exception Trip_canceled -> false

let () =
  let db = Db.create (Config.make ~n_objects:16 ()) in
  let rt = Asset.create db in
  split_fragment rt;

  Format.printf "== the trip function (§2.2.2) ==@.";
  let setup = Db.begin_txn db in
  Db.write db setup seats 1;
  Db.write db setup rooms 1;
  Db.commit db setup;
  Format.printf "inventory: %d seat, %d room@." (Db.peek db seats)
    (Db.peek db rooms);
  Format.printf "first customer: %s@."
    (if book rt then "booked" else "canceled");
  Format.printf "second customer: %s (inventory exhausted — any partial@."
    (if book rt then "booked" else "canceled");
  Format.printf "  reservations were discarded with the trip)@.";
  Format.printf "inventory: %d seat, %d room@." (Db.peek db seats)
    (Db.peek db rooms);
  assert (Db.peek db seats = 0 && Db.peek db rooms = 0)
