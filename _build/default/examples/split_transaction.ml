(* Split transactions for open-ended activities (§2.2.1).

   The motivating workload from Pu, Kaiser & Hutchinson: a long-running
   design session edits many parts. Partway through, the finished parts
   are split off into their own transaction and committed, releasing
   them to other users, while the session keeps working on the rest —
   and can still abort without taking back what was already released.

   Run with: dune exec examples/split_transaction.exe *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_etm

let part i = Oid.of_int i

let () =
  let db = Db.create (Config.make ~n_objects:64 ()) in
  let rt = Asset.create db in

  Format.printf "== a long-running design session ==@.@.";
  let session = Asset.initiate_empty rt ~name:"design-session" () in

  (* edit parts 0..5 *)
  for i = 0 to 5 do
    Asset.write rt session (part i) (100 + i)
  done;
  Format.printf "session edited parts 0..5 (all tentative)@.";

  (* parts 0..2 are done: split them off and commit them now *)
  let done_parts = [ part 0; part 1; part 2 ] in
  let release = Split.split rt session ~objects:done_parts in
  Asset.commit rt release;
  Format.printf "parts 0..2 split off and committed: %d %d %d@."
    (Db.peek db (part 0)) (Db.peek db (part 1)) (Db.peek db (part 2));

  (* another user can immediately work with a released part *)
  let other = Asset.initiate_empty rt ~name:"other-user" () in
  Asset.write rt other (part 0) 999;
  Asset.commit rt other;
  Format.printf "another user updated released part 0 -> %d@."
    (Db.peek db (part 0));

  (* the session keeps editing, then decides to abandon the rest *)
  Asset.write rt session (part 6) 106;
  Asset.abort rt session;
  Format.printf "@.session aborted its remaining work:@.";
  Format.printf "  released parts survive:  part1=%d part2=%d@."
    (Db.peek db (part 1)) (Db.peek db (part 2));
  Format.printf "  abandoned parts undone:  part3=%d part6=%d@."
    (Db.peek db (part 3)) (Db.peek db (part 6));

  (* and all of that holds across a crash *)
  Db.crash db;
  ignore (Db.recover db);
  Format.printf
    "@.after crash + recovery: part0=%d part1=%d part3=%d part6=%d@."
    (Db.peek db (part 0)) (Db.peek db (part 1)) (Db.peek db (part 3))
    (Db.peek db (part 6))
