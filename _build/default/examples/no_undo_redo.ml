(* The EOS-style NO-UNDO/REDO engine (§3.7) side by side with ARIES/RH:
   same story, two recovery philosophies.

   Run with: dune exec examples/no_undo_redo.exe *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_eos

let ob = Oid.of_int

let () =
  Format.printf "== EOS: updates never touch the database until commit ==@.@.";
  let eos = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn eos in
  let t2 = Eos_db.begin_txn eos in
  Eos_db.write eos t1 (ob 0) 42;
  Format.printf "t1 wrote ob0=42 (private): outside view = %d, t1's view = %d@."
    (Eos_db.peek eos (ob 0))
    (Eos_db.read eos t1 (ob 0));

  (* delegation carries an image of the object into t2's private log *)
  Eos_db.delegate eos ~from_:t1 ~to_:t2 (ob 0);
  Format.printf "after delegate(t1,t2,ob0): t2's view = %d (the image)@."
    (Eos_db.read eos t2 (ob 0));

  Eos_db.abort eos t1;
  Format.printf "t1 aborted — free of charge, nothing was ever applied@.";
  Eos_db.commit eos t2;
  Format.printf "t2 committed: ob0 = %d@.@." (Eos_db.peek eos (ob 0));

  Format.printf "recovery is a single forward sweep (no undo exists):@.";
  Eos_db.crash eos;
  let r = Eos_db.recover eos in
  Format.printf "  replayed %d committed entries; ob0 = %d@.@."
    r.entries_replayed (Eos_db.peek eos (ob 0));

  Format.printf "== the same story on the ARIES/RH engine ==@.@.";
  let db = Db.create (Config.make ~n_objects:8 ()) in
  let u1 = Db.begin_txn db in
  let u2 = Db.begin_txn db in
  Db.write db u1 (ob 0) 42;
  Format.printf
    "UNDO/REDO applies in place: outside view is already %d (STEAL)@."
    (Db.peek db (ob 0));
  Db.delegate db ~from_:u1 ~to_:u2 (ob 0);
  Db.abort db u1;
  Db.commit db u2;
  Db.crash db;
  let r = Db.recover db in
  Format.printf
    "restart: %d records forward, %d undos backward; ob0 = %d@.@."
    r.forward_records r.undos (Db.peek db (ob 0));
  Format.printf
    "identical delegation semantics, opposite recovery mechanics —@.";
  Format.printf "exactly the §3.7 point: RH is protocol-agnostic.@.";
  assert (Db.peek db (ob 0) = 42 && Eos_db.peek eos (ob 0) = 42)
