(* Deep fuzz of the correctness pipeline: thousands of random workloads
   x crash points x engines, checked against the value oracle, the
   formal model, and the engine validator. Not part of `dune runtest`
   (it takes a while): run with `dune exec test/stress.exe -- [iters]`. *)

open Ariesrh_core
open Ariesrh_workload
module Prng = Ariesrh_util.Prng

let n_objects = 48

let () =
  let iters =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1000
  in
  let rng = Prng.create 20260706L in
  let failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    let seed = Prng.next rng in
    let steps = 20 + Prng.int rng 200 in
    let spec = { Gen.default with n_objects; n_steps = steps } in
    let script = Gen.generate spec ~seed in
    let n = List.length script in
    let at = Prng.int rng (n + 1) in
    let impl =
      match Prng.int rng 3 with
      | 0 -> Config.Rh
      | 1 -> Config.Eager
      | _ -> Config.Lazy
    in
    let passes =
      if Prng.bool rng then Config.Merged else Config.Separate
    in
    let db =
      Db.create
        (Config.make ~n_objects ~objects_per_page:8
           ~buffer_capacity:(2 + Prng.int rng 16)
           ~impl ~forward_passes:passes ())
    in
    let ok =
      try
        Driver.run ~upto:at db script;
        (match Db.validate db with
        | Ok () -> ()
        | Error e -> failwith ("validate mid-flight: " ^ e));
        (* sometimes crash during recovery first *)
        Db.crash db;
        if impl = Config.Rh && Prng.bool rng then begin
          match Db.recover_with_fuel db ~fuel:(Prng.int rng 8) with
          | `Done _ -> ()
          | `Interrupted ->
              Db.crash db;
              ignore (Db.recover db)
        end
        else ignore (Db.recover db);
        let expected = Oracle.expected ~n_objects ~crash_at:at script in
        if Db.peek_all db <> expected then failwith "oracle mismatch";
        (match Db.validate db with
        | Ok () -> ()
        | Error e -> failwith ("validate post-recovery: " ^ e));
        if impl = Config.Rh then begin
          let h = Ariesrh_model.History.of_log (Db.log_store db) in
          (match Ariesrh_model.History.check_well_formed h with
          | Ok () -> ()
          | Error e -> failwith ("well-formedness: " ^ e));
          match Ariesrh_model.History.check_recovery h with
          | Ok () -> ()
          | Error e -> failwith ("recovery obligation: " ^ e)
        end;
        true
      with e ->
        Printf.printf "FAIL iter=%d seed=%Ld steps=%d at=%d impl=%s: %s\n%!" i
          seed steps at
          (match impl with
          | Config.Rh -> "rh"
          | Config.Eager -> "eager"
          | Config.Lazy -> "lazy")
          (Printexc.to_string e);
        false
    in
    if not ok then incr failures;
    if i mod 500 = 0 then
      Printf.printf "%d/%d scenarios, %d failures (%.1fs)\n%!" i iters
        !failures
        (Unix.gettimeofday () -. t0)
  done;
  Printf.printf "stress: %d scenarios, %d failures (%.1fs)\n" iters !failures
    (Unix.gettimeofday () -. t0);
  exit (if !failures = 0 then 0 else 1)
