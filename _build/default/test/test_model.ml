(* The executable formal model (§2.1 / §4.1): history extraction,
   ResponsibleTr, delegation chains, well-formedness, and the recovery
   obligations checked on real post-recovery logs. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_model
open Ariesrh_workload

let oid = Oid.of_int

let mk () =
  Db.create
    (Config.make ~n_objects:48 ~objects_per_page:8 ~buffer_capacity:8
       ~locking:false ())

let history_extraction () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.commit db t1;
  let h = History.of_log (Db.log_store db) in
  Alcotest.(check int) "six events" 6 (List.length h);
  Alcotest.(check bool) "t1 is a winner" true
    (Xid.Set.mem t1 (History.winners h));
  Alcotest.(check bool) "t0 is a loser so far" true
    (Xid.Set.mem t0 (History.losers h))

let responsibility_follows_delegations () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  let u = Db.last_lsn_of db t0 in
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.delegate db ~from_:t1 ~to_:t2 (oid 0);
  let h = History.of_log (Db.log_store db) in
  (match History.responsible h with
  | [ (lsn, resp) ] ->
      Alcotest.(check int) "the one update" (Lsn.to_int u) (Lsn.to_int lsn);
      Alcotest.(check int) "responsible is the last delegatee" (Xid.to_int t2)
        (Xid.to_int resp)
  | l -> Alcotest.failf "expected one update, got %d" (List.length l));
  Alcotest.(check (list int)) "the §4.1 delegation chain"
    (List.map Xid.to_int [ t0; t1; t2 ])
    (List.map Xid.to_int (History.delegation_chain h u))

let op_granularity_responsibility () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  let u1 = Db.last_lsn_of db t0 in
  Db.add db t0 (oid 0) 7;
  let u2 = Db.last_lsn_of db t0 in
  Db.delegate_update db ~from_:t0 ~to_:t1 (oid 0) u1;
  let h = History.of_log (Db.log_store db) in
  let resp = History.responsible h in
  Alcotest.(check int) "first update moved" (Xid.to_int t1)
    (Xid.to_int (List.assoc u1 resp));
  Alcotest.(check int) "second update stayed" (Xid.to_int t0)
    (Xid.to_int (List.assoc u2 resp))

let well_formedness_accepts_engine_logs () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.add db t0 (oid 0) 2;
  Db.abort db t0;
  Db.commit db t1;
  match History.check_well_formed (History.of_log (Db.log_store db)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "engine log rejected: %s" e

let well_formedness_rejects_bad_histories () =
  let x1 = Xid.of_int 1 and x2 = Xid.of_int 2 in
  let l = Lsn.of_int in
  let reject name h =
    match History.check_well_formed h with
    | Ok () -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  reject "update before begin"
    [ History.Updated { lsn = l 1; invoker = x1; oid = oid 0 } ];
  reject "delegation without responsibility"
    [
      History.Began x1; History.Began x2;
      History.Delegated { lsn = l 3; tor = x1; tee = x2; oid = oid 0; op = None };
    ];
  reject "delegation to self"
    [
      History.Began x1;
      History.Updated { lsn = l 2; invoker = x1; oid = oid 0 };
      History.Delegated { lsn = l 3; tor = x1; tee = x1; oid = oid 0; op = None };
    ];
  reject "double commit"
    [ History.Began x1; History.Committed x1; History.Committed x1 ];
  reject "delegation by terminated delegator"
    [
      History.Began x1; History.Began x2;
      History.Updated { lsn = l 3; invoker = x1; oid = oid 0 };
      History.Committed x1; History.Ended x1;
      History.Delegated { lsn = l 6; tor = x1; tee = x2; oid = oid 0; op = None };
    ]

let recovery_check_rejects_wrong_logs () =
  let x1 = Xid.of_int 1 in
  let l = Lsn.of_int in
  (* a loser whose update was never compensated *)
  (match
     History.check_recovery
       [
         History.Began x1;
         History.Updated { lsn = l 2; invoker = x1; oid = oid 0 };
         History.Aborted x1; History.Ended x1;
       ]
   with
  | Ok () -> Alcotest.fail "missing compensation accepted"
  | Error _ -> ());
  (* double compensation *)
  match
    History.check_recovery
      [
        History.Began x1;
        History.Updated { lsn = l 2; invoker = x1; oid = oid 0 };
        History.Compensated { lsn = l 3; by = x1; oid = oid 0; undone = l 2 };
        History.Compensated { lsn = l 4; by = x1; oid = oid 0; undone = l 2 };
        History.Aborted x1; History.Ended x1;
      ]
  with
  | Ok () -> Alcotest.fail "double compensation accepted"
  | Error _ -> ()

(* the big one: every post-recovery engine log satisfies §4.1 *)
let n_objects = 48

let recovery_obligations_on_random_logs =
  QCheck.Test.make ~count:250
    ~name:"post-recovery logs satisfy the §4.1 obligations"
    (QCheck.make
       ~print:(fun (s, f) -> Printf.sprintf "seed=%Ld frac=%.2f" s f)
       QCheck.Gen.(
         map2
           (fun s f -> (Int64.of_int s, f))
           (int_bound 1_000_000) (float_bound_inclusive 1.0)))
    (fun (seed, frac) ->
      let script =
        Gen.generate { Gen.default with n_objects; n_steps = 120 } ~seed
      in
      let n = List.length script in
      let at = min n (int_of_float (frac *. float_of_int n)) in
      let db = Driver.fresh_db ~n_objects () in
      Driver.run ~upto:at db script;
      Ariesrh_wal.Log_store.flush (Db.log_store db)
        ~upto:(Ariesrh_wal.Log_store.head (Db.log_store db));
      Db.crash db;
      ignore (Db.recover db);
      let h = History.of_log (Db.log_store db) in
      (match History.check_well_formed h with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "well-formedness: %s" e);
      match History.check_recovery h with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "recovery obligation: %s" e)

let suite =
  [
    Alcotest.test_case "history extraction" `Quick history_extraction;
    Alcotest.test_case "responsibility follows delegations" `Quick
      responsibility_follows_delegations;
    Alcotest.test_case "op-granularity responsibility" `Quick
      op_granularity_responsibility;
    Alcotest.test_case "well-formedness accepts engine logs" `Quick
      well_formedness_accepts_engine_logs;
    Alcotest.test_case "well-formedness rejects bad histories" `Quick
      well_formedness_rejects_bad_histories;
    Alcotest.test_case "recovery check rejects wrong logs" `Quick
      recovery_check_rejects_wrong_logs;
    QCheck_alcotest.to_alcotest recovery_obligations_on_random_logs;
  ]
