(* Coverage sweep over the small API surfaces: identifier modules, stat
   arithmetic, the EOS private log, and record helpers. *)

open Ariesrh_types
module Record = Ariesrh_wal.Record
module Log_stats = Ariesrh_wal.Log_stats
module Private_log = Ariesrh_eos.Private_log
module Prng = Ariesrh_util.Prng

let lsn_edges () =
  Alcotest.(check bool) "nil is nil" true (Lsn.is_nil Lsn.nil);
  Alcotest.(check int) "first" 1 (Lsn.to_int Lsn.first);
  Alcotest.(check int) "next" 6 (Lsn.to_int (Lsn.next (Lsn.of_int 5)));
  Alcotest.(check int) "prev of first is nil" 0 (Lsn.to_int (Lsn.prev Lsn.first));
  Alcotest.check_raises "prev of nil"
    (Invalid_argument "Lsn.prev: nil has no predecessor") (fun () ->
      ignore (Lsn.prev Lsn.nil));
  Alcotest.check_raises "negative lsn"
    (Invalid_argument "Lsn.of_int: negative") (fun () ->
      ignore (Lsn.of_int (-1)));
  Alcotest.(check bool) "comparisons" true
    Lsn.(of_int 3 < of_int 4 && of_int 4 <= of_int 4 && of_int 5 > of_int 4);
  Alcotest.(check int) "max/min" 7
    (Lsn.to_int (Lsn.max (Lsn.of_int 7) (Lsn.min (Lsn.of_int 9) (Lsn.of_int 3))));
  Alcotest.(check string) "pp nil" "nil" (Format.asprintf "%a" Lsn.pp Lsn.nil);
  Alcotest.(check string) "pp" "12" (Format.asprintf "%a" Lsn.pp (Lsn.of_int 12))

let id_modules () =
  Alcotest.check_raises "xid zero"
    (Invalid_argument "Xid.of_int: xids are positive") (fun () ->
      ignore (Xid.of_int 0));
  Alcotest.(check string) "xid pp" "t9"
    (Format.asprintf "%a" Xid.pp (Xid.of_int 9));
  Alcotest.(check string) "oid pp" "ob4"
    (Format.asprintf "%a" Oid.pp (Oid.of_int 4));
  Alcotest.(check string) "page pp" "p2"
    (Format.asprintf "%a" Page_id.pp (Page_id.of_int 2));
  Alcotest.(check bool) "sets work" true
    (Xid.Set.mem (Xid.of_int 3) (Xid.Set.of_list [ Xid.of_int 3 ]));
  Alcotest.(check bool) "hash is stable" true
    (Xid.hash (Xid.of_int 5) = Xid.hash (Xid.of_int 5))

let log_stats_arith () =
  let a = Log_stats.create () in
  a.appends <- 10;
  a.reads <- 7;
  a.rewrites <- 2;
  let b = Log_stats.copy a in
  b.appends <- 25;
  b.random_seeks <- 3;
  let d = Log_stats.diff b a in
  Alcotest.(check int) "appends diff" 15 d.appends;
  Alcotest.(check int) "reads diff" 0 d.reads;
  Alcotest.(check int) "seeks diff" 3 d.random_seeks;
  Alcotest.(check bool) "copy detached" true (a.appends = 10);
  Log_stats.reset a;
  Alcotest.(check int) "reset" 0 a.appends;
  Alcotest.(check bool) "pp" true
    (String.length (Format.asprintf "%a" Log_stats.pp d) > 0)

let prng_misc () =
  let rng = Prng.create 5L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.choose rng arr in
    if not (Array.mem v arr) then Alcotest.fail "choose out of array"
  done;
  let a = Prng.split rng in
  let b = Prng.split rng in
  Alcotest.(check bool) "split streams differ" false (Prng.next a = Prng.next b);
  Alcotest.check_raises "choose empty"
    (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose rng [||]))

let record_helpers () =
  let u =
    Record.mk (Xid.of_int 1) ~prev:Lsn.nil
      (Record.Update
         {
           oid = Oid.of_int 0;
           page = Page_id.of_int 0;
           op = Record.Set { before = 1; after = 2 };
         })
  in
  Alcotest.(check bool) "is_update" true (Record.is_update u);
  Alcotest.(check bool) "commit is not update" false
    (Record.is_update (Record.mk (Xid.of_int 1) ~prev:Lsn.nil Record.Commit));
  Alcotest.(check int) "writer" 1 (Xid.to_int (Record.writer_exn u));
  Alcotest.check_raises "system record has no writer"
    (Invalid_argument "Record.writer_exn: checkpoint record has no writer")
    (fun () -> ignore (Record.writer_exn (Record.mk_system Record.Ckpt_begin)));
  Alcotest.(check int) "set_writer" 7
    (Xid.to_int (Record.writer_exn (Record.set_writer u (Xid.of_int 7))));
  Alcotest.(check bool) "encoded_size positive" true (Record.encoded_size u > 0)

let private_log_semantics () =
  let p = Private_log.create () in
  Alcotest.(check int) "empty" 0 (Private_log.length p);
  Alcotest.(check (option int)) "no value" None
    (Private_log.value_of p (Oid.of_int 0));
  Private_log.append p (Private_log.Write (Oid.of_int 0, 5));
  Private_log.append p (Private_log.Write (Oid.of_int 1, 7));
  Private_log.append p (Private_log.Write (Oid.of_int 0, 9));
  Alcotest.(check (option int)) "latest write wins" (Some 9)
    (Private_log.value_of p (Oid.of_int 0));
  Alcotest.(check int) "effective is one per object" 2
    (List.length (Private_log.effective p));
  Private_log.append p
    (Private_log.Received { from_ = Xid.of_int 9; oid = Oid.of_int 0; image = 3 });
  Alcotest.(check (option int)) "image newer than writes" (Some 3)
    (Private_log.value_of p (Oid.of_int 0));
  Private_log.filter_delegated p (Oid.of_int 0);
  Alcotest.(check (option int)) "filtered out" None
    (Private_log.value_of p (Oid.of_int 0));
  Alcotest.(check (option int)) "other object untouched" (Some 7)
    (Private_log.value_of p (Oid.of_int 1))

let zipf_n_and_errors () =
  let z = Ariesrh_util.Zipf.create ~n:10 ~theta:0.5 in
  Alcotest.(check int) "n" 10 (Ariesrh_util.Zipf.n z);
  Alcotest.check_raises "n=0"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Ariesrh_util.Zipf.create ~n:0 ~theta:1.0));
  Alcotest.check_raises "negative theta"
    (Invalid_argument "Zipf.create: theta must be >= 0") (fun () ->
      ignore (Ariesrh_util.Zipf.create ~n:5 ~theta:(-1.0)))

let heap_duplicates () =
  let h = Ariesrh_util.Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Ariesrh_util.Heap.push h) [ 5; 5; 5; 3; 5 ];
  let rec drain acc =
    match Ariesrh_util.Heap.pop h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "duplicates preserved" [ 5; 5; 5; 5; 3 ] (drain [])

let scope_printer_and_errors () =
  let s =
    Ariesrh_txn.Scope.make ~invoker:(Xid.of_int 1) ~oid:(Oid.of_int 2)
      ~first:(Lsn.of_int 3) ~last:(Lsn.of_int 9)
  in
  Alcotest.(check string) "pp" "(t1,ob2,3..9)"
    (Format.asprintf "%a" Ariesrh_txn.Scope.pp s);
  Alcotest.check_raises "last < first"
    (Invalid_argument "Scope.make: last < first") (fun () ->
      ignore
        (Ariesrh_txn.Scope.make ~invoker:(Xid.of_int 1) ~oid:(Oid.of_int 2)
           ~first:(Lsn.of_int 9) ~last:(Lsn.of_int 3)))

let suite =
  [
    Alcotest.test_case "lsn edges" `Quick lsn_edges;
    Alcotest.test_case "identifier modules" `Quick id_modules;
    Alcotest.test_case "log stats arithmetic" `Quick log_stats_arith;
    Alcotest.test_case "prng choose/split" `Quick prng_misc;
    Alcotest.test_case "record helpers" `Quick record_helpers;
    Alcotest.test_case "private log semantics" `Quick private_log_semantics;
    Alcotest.test_case "zipf n and errors" `Quick zipf_n_and_errors;
    Alcotest.test_case "heap duplicates" `Quick heap_duplicates;
    Alcotest.test_case "scope printer and errors" `Quick scope_printer_and_errors;
  ]
