(* Extended transaction models synthesized on delegation (§2.2), driven
   through the ASSET primitive layer. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_etm

let oid = Oid.of_int

let mk () =
  let db =
    Db.create (Config.make ~n_objects:64 ~objects_per_page:4 ~buffer_capacity:8 ())
  in
  (db, Asset.create db)

(* --- ASSET primitives --- *)

let asset_run_and_wait () =
  let db, rt = mk () in
  let h = Asset.initiate rt ~name:"worker" (fun self ->
      Asset.write rt self (oid 0) 5)
  in
  Alcotest.(check bool) "body ran" true (Asset.begin_run rt h);
  Alcotest.(check bool) "wait sees success" true (Asset.wait rt h);
  Asset.commit rt h;
  Alcotest.(check int) "committed" 5 (Db.peek db (oid 0))

let asset_failed_body_aborts () =
  let db, rt = mk () in
  let h = Asset.initiate rt (fun self ->
      Asset.write rt self (oid 0) 5;
      failwith "boom")
  in
  Alcotest.(check bool) "body failed" false (Asset.begin_run rt h);
  Alcotest.(check bool) "wait sees failure" false (Asset.wait rt h);
  Alcotest.(check int) "rolled back" 0 (Db.peek db (oid 0))

let asset_commit_dependency () =
  let db, rt = mk () in
  ignore db;
  let a = Asset.initiate_empty rt ~name:"a" () in
  let b = Asset.initiate_empty rt ~name:"b" () in
  Asset.form_dependency rt ~kind:Asset.Commit_dep ~dependent:a ~on:b;
  (match Asset.commit rt a with
  | () -> Alcotest.fail "commit should be blocked by the pending dependency"
  | exception Asset.Aborted _ -> ());
  Asset.commit rt b
(* a was aborted by the failed commit; b is free to commit *)

let asset_commit_dependency_satisfied () =
  let db, rt = mk () in
  let a = Asset.initiate_empty rt ~name:"a" () in
  let b = Asset.initiate_empty rt ~name:"b" () in
  Asset.write rt a (oid 1) 11;
  Asset.form_dependency rt ~kind:Asset.Commit_dep ~dependent:a ~on:b;
  Asset.commit rt b;
  Asset.commit rt a;
  Alcotest.(check int) "a committed after b" 11 (Db.peek db (oid 1))

let asset_abort_dependency_cascades () =
  let db, rt = mk () in
  let a = Asset.initiate_empty rt ~name:"a" () in
  let b = Asset.initiate_empty rt ~name:"b" () in
  let c = Asset.initiate_empty rt ~name:"c" () in
  Asset.write rt a (oid 0) 1;
  Asset.write rt b (oid 1) 2;
  Asset.write rt c (oid 2) 3;
  (* a depends on b depends on c: aborting c kills all three *)
  Asset.form_dependency rt ~kind:Asset.Abort_dep ~dependent:a ~on:b;
  Asset.form_dependency rt ~kind:Asset.Abort_dep ~dependent:b ~on:c;
  Asset.abort rt c;
  Alcotest.(check int) "c undone" 0 (Db.peek db (oid 2));
  Alcotest.(check int) "b cascaded" 0 (Db.peek db (oid 1));
  Alcotest.(check int) "a cascaded transitively" 0 (Db.peek db (oid 0))

let asset_dependency_cycle_rejected () =
  let _, rt = mk () in
  let a = Asset.initiate_empty rt () in
  let b = Asset.initiate_empty rt () in
  Asset.form_dependency rt ~kind:Asset.Commit_dep ~dependent:a ~on:b;
  match Asset.form_dependency rt ~kind:Asset.Commit_dep ~dependent:b ~on:a with
  | () -> Alcotest.fail "cycle accepted"
  | exception Asset.Dependency_cycle -> ()

(* --- split / join (§2.2.1) --- *)

let split_independent_fates () =
  let db, rt = mk () in
  let t1 = Asset.initiate_empty rt ~name:"t1" () in
  Asset.write rt t1 (oid 0) 10;
  Asset.write rt t1 (oid 1) 20;
  Asset.write rt t1 (oid 2) 30;
  (* split off responsibility for ob0 and ob1 *)
  let t2 = Split.split rt t1 ~objects:[ oid 0; oid 1 ] in
  Asset.abort rt t1;
  Alcotest.(check int) "t1's remaining work undone" 0 (Db.peek db (oid 2));
  Alcotest.(check int) "split-off work alive" 10 (Db.peek db (oid 0));
  Asset.commit rt t2;
  Alcotest.(check int) "split commits independently" 20 (Db.peek db (oid 1))

let split_then_join () =
  let db, rt = mk () in
  let t1 = Asset.initiate_empty rt ~name:"t1" () in
  Asset.write rt t1 (oid 0) 10;
  let t2 = Split.split rt t1 ~objects:[ oid 0 ] in
  Asset.write rt t2 (oid 1) 5;
  (* t2 rejoins t1: everything is t1's again *)
  Split.join rt ~from_:t2 ~into:t1;
  Asset.commit rt t1;
  Alcotest.(check int) "original write" 10 (Db.peek db (oid 0));
  Alcotest.(check int) "work done while split" 5 (Db.peek db (oid 1))

let split_join_then_abort () =
  let db, rt = mk () in
  let t1 = Asset.initiate_empty rt ~name:"t1" () in
  Asset.write rt t1 (oid 0) 10;
  let t2 = Split.split rt t1 ~objects:[ oid 0 ] in
  Split.join rt ~from_:t2 ~into:t1;
  Asset.abort rt t1;
  Alcotest.(check int) "everything undone after join + abort" 0
    (Db.peek db (oid 0))

(* --- nested transactions (§2.2.2) --- *)

let nested_trip () =
  (* the paper's trip example: airline + hotel; hotel failure cancels all *)
  let db, rt = mk () in
  let book_trip ~hotel_ok =
    let trip = Nested.start rt in
    let airline = Nested.run_sub trip (fun sub -> Nested.write sub (oid 0) 1) in
    Alcotest.(check bool) "airline reserved" true airline;
    let hotel =
      Nested.run_sub trip (fun sub ->
          Nested.write sub (oid 1) 1;
          if not hotel_ok then failwith "no rooms")
    in
    if airline && hotel then begin
      Nested.commit_root trip;
      true
    end
    else begin
      Nested.abort trip;
      false
    end
  in
  Alcotest.(check bool) "failed trip reports failure" false (book_trip ~hotel_ok:false);
  Alcotest.(check int) "airline reservation not permanent" 0 (Db.peek db (oid 0));
  Alcotest.(check int) "hotel reservation undone" 0 (Db.peek db (oid 1));
  Alcotest.(check bool) "successful trip" true (book_trip ~hotel_ok:true);
  Alcotest.(check int) "airline booked" 1 (Db.peek db (oid 0));
  Alcotest.(check int) "hotel booked" 1 (Db.peek db (oid 1))

let nested_subabort_does_not_doom_parent () =
  let db, rt = mk () in
  let root = Nested.start rt in
  Nested.write root (oid 0) 7;
  let ok = Nested.run_sub root (fun sub ->
      Nested.write sub (oid 1) 9;
      failwith "sub fails")
  in
  Alcotest.(check bool) "sub failed" false ok;
  Alcotest.(check int) "sub's work undone immediately" 0 (Db.peek db (oid 1));
  Nested.commit_root root;
  Alcotest.(check int) "parent survives" 7 (Db.peek db (oid 0))

let nested_child_sees_parent_objects () =
  let db, rt = mk () in
  let root = Nested.start rt in
  Nested.write root (oid 0) 7;
  let ok = Nested.run_sub root (fun sub ->
      (* would deadlock without the permit *)
      Nested.write sub (oid 0) 8)
  in
  Alcotest.(check bool) "child wrote the parent's object" true ok;
  Nested.commit_root root;
  Alcotest.(check int) "child's update inherited and committed" 8
    (Db.peek db (oid 0))

let nested_three_levels () =
  let db, rt = mk () in
  let root = Nested.start rt in
  let ok = Nested.run_sub root (fun mid ->
      Nested.write mid (oid 0) 1;
      let deep_ok = Nested.run_sub mid (fun deep -> Nested.write deep (oid 1) 2) in
      if not deep_ok then failwith "deep failed")
  in
  Alcotest.(check bool) "both levels succeeded" true ok;
  Alcotest.(check int) "nothing permanent before root commit" 0
    (Db.stable_value db (oid 0));
  Nested.commit_root root;
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "level 1 work permanent" 1 (Db.peek db (oid 0));
  Alcotest.(check int) "level 2 work permanent" 2 (Db.peek db (oid 1))

(* --- reporting transactions --- *)

let reporting_reports_survive_cancel () =
  let db, rt = mk () in
  let r = Reporting.start rt in
  Reporting.add r (oid 0) 5;
  Alcotest.(check int) "one object reported" 1 (Reporting.report r);
  Reporting.add r (oid 1) 7;
  Reporting.cancel r;
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "reported result is permanent" 5 (Db.peek db (oid 0));
  Alcotest.(check int) "unreported result dies with the reporter" 0
    (Db.peek db (oid 1))

let reporting_finish_commits_rest () =
  let db, rt = mk () in
  let r = Reporting.start rt in
  Reporting.add r (oid 0) 5;
  ignore (Reporting.report r);
  Reporting.add r (oid 1) 7;
  Reporting.finish r;
  Alcotest.(check int) "reported" 5 (Db.peek db (oid 0));
  Alcotest.(check int) "final work committed" 7 (Db.peek db (oid 1))

let reporting_empty_report () =
  let _, rt = mk () in
  let r = Reporting.start rt in
  Alcotest.(check int) "nothing to report" 0 (Reporting.report r);
  Reporting.finish r

(* --- joint transactions --- *)

let joint_commit_together () =
  let db, rt = mk () in
  let g = Joint.create rt in
  let m1 = Joint.join g in
  let m2 = Joint.join g in
  Asset.write rt m1 (oid 0) 1;
  Asset.write rt m2 (oid 1) 2;
  Alcotest.(check int) "two members" 2 (Joint.members g);
  Joint.commit g;
  Alcotest.(check int) "m1's work committed" 1 (Db.peek db (oid 0));
  Alcotest.(check int) "m2's work committed" 2 (Db.peek db (oid 1));
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "durable" 1 (Db.peek db (oid 0))

let joint_abort_together () =
  let db, rt = mk () in
  let g = Joint.create rt in
  let m1 = Joint.join g in
  let m2 = Joint.join g in
  Asset.write rt m1 (oid 0) 1;
  Asset.write rt m2 (oid 1) 2;
  Joint.abort g;
  Alcotest.(check int) "m1 undone" 0 (Db.peek db (oid 0));
  Alcotest.(check int) "m2 undone" 0 (Db.peek db (oid 1))

let joint_member_failure_cascades () =
  let db, rt = mk () in
  let g = Joint.create rt in
  let m1 = Joint.join g in
  let m2 = Joint.join g in
  Asset.write rt m1 (oid 0) 1;
  Asset.write rt m2 (oid 1) 2;
  (* one member dies: the whole unit dies with it *)
  Asset.abort rt m1;
  Alcotest.(check int) "m1 undone" 0 (Db.peek db (oid 0));
  Alcotest.(check int) "m2 cascaded" 0 (Db.peek db (oid 1))

(* --- open nested transactions --- *)

let open_nested_early_release () =
  let db, rt = mk () in
  let order = Open_nested.start rt in
  let ok =
    Open_nested.run_sub order
      ~compensate:(fun c -> Asset.add rt c (oid 0) 1)
      (fun sub -> Asset.add rt sub (oid 0) (-1))
  in
  Alcotest.(check bool) "sub committed" true ok;
  (* the sub's effect is durable before the parent finishes *)
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "early release is permanent" (-1) (Db.peek db (oid 0))

let open_nested_compensation_on_abort () =
  let db, rt = mk () in
  let order = Open_nested.start rt in
  ignore
    (Open_nested.run_sub order
       ~compensate:(fun c -> Asset.add rt c (oid 0) 5)
       (fun sub -> Asset.add rt sub (oid 0) (-5)));
  ignore
    (Open_nested.run_sub order
       ~compensate:(fun c -> Asset.add rt c (oid 1) 3)
       (fun sub -> Asset.add rt sub (oid 1) (-3)));
  Open_nested.write order (oid 2) 9;
  Alcotest.(check int) "two subs committed" 2 (Open_nested.committed_subs order);
  Open_nested.abort order;
  Alcotest.(check int) "first sub compensated" 0 (Db.peek db (oid 0));
  Alcotest.(check int) "second sub compensated" 0 (Db.peek db (oid 1));
  Alcotest.(check int) "parent's own work undone normally" 0 (Db.peek db (oid 2))

let open_nested_commit_discards_compensations () =
  let db, rt = mk () in
  let order = Open_nested.start rt in
  ignore
    (Open_nested.run_sub order
       ~compensate:(fun c -> Asset.add rt c (oid 0) 99)
       (fun sub -> Asset.add rt sub (oid 0) 1));
  Open_nested.commit order;
  Alcotest.(check int) "no compensation after commit" 1 (Db.peek db (oid 0))

let open_nested_failed_sub () =
  let db, rt = mk () in
  let order = Open_nested.start rt in
  let ok =
    Open_nested.run_sub order
      ~compensate:(fun _ -> Alcotest.fail "must not be registered")
      (fun sub ->
        Asset.add rt sub (oid 0) 1;
        failwith "boom")
  in
  Alcotest.(check bool) "failed" false ok;
  Alcotest.(check int) "aborted cleanly" 0 (Db.peek db (oid 0));
  Open_nested.abort order

(* --- co-transactions --- *)

let cotrans_handoff () =
  let db, rt = mk () in
  let pair = Cotrans.start rt in
  Cotrans.write pair (oid 0) 1;
  Cotrans.switch pair;
  (* the other side continues where the first left off *)
  Alcotest.(check int) "sees the passed state" 1 (Cotrans.read pair (oid 0));
  Cotrans.write pair (oid 1) 2;
  Cotrans.switch pair;
  Cotrans.write pair (oid 2) 3;
  Cotrans.commit pair;
  Alcotest.(check int) "first side's work" 1 (Db.peek db (oid 0));
  Alcotest.(check int) "second side's work" 2 (Db.peek db (oid 1));
  Alcotest.(check int) "third hop's work" 3 (Db.peek db (oid 2))

let cotrans_abort_undoes_everything () =
  let db, rt = mk () in
  let pair = Cotrans.start rt in
  Cotrans.write pair (oid 0) 1;
  Cotrans.switch pair;
  Cotrans.write pair (oid 1) 2;
  Cotrans.abort pair;
  Alcotest.(check int) "hop 1 undone" 0 (Db.peek db (oid 0));
  Alcotest.(check int) "hop 2 undone" 0 (Db.peek db (oid 1))

let suite =
  [
    Alcotest.test_case "asset run and wait" `Quick asset_run_and_wait;
    Alcotest.test_case "asset failed body aborts" `Quick asset_failed_body_aborts;
    Alcotest.test_case "asset commit dependency blocks" `Quick asset_commit_dependency;
    Alcotest.test_case "asset commit dependency satisfied" `Quick
      asset_commit_dependency_satisfied;
    Alcotest.test_case "asset abort dependency cascades" `Quick
      asset_abort_dependency_cascades;
    Alcotest.test_case "asset dependency cycle rejected" `Quick
      asset_dependency_cycle_rejected;
    Alcotest.test_case "split: independent fates" `Quick split_independent_fates;
    Alcotest.test_case "split then join" `Quick split_then_join;
    Alcotest.test_case "split, join, abort" `Quick split_join_then_abort;
    Alcotest.test_case "nested: the trip example" `Quick nested_trip;
    Alcotest.test_case "nested: sub abort spares parent" `Quick
      nested_subabort_does_not_doom_parent;
    Alcotest.test_case "nested: child accesses parent objects" `Quick
      nested_child_sees_parent_objects;
    Alcotest.test_case "nested: three levels + crash" `Quick nested_three_levels;
    Alcotest.test_case "reporting: reports survive cancel" `Quick
      reporting_reports_survive_cancel;
    Alcotest.test_case "reporting: finish commits rest" `Quick
      reporting_finish_commits_rest;
    Alcotest.test_case "reporting: empty report" `Quick reporting_empty_report;
    Alcotest.test_case "joint: commit together" `Quick joint_commit_together;
    Alcotest.test_case "joint: abort together" `Quick joint_abort_together;
    Alcotest.test_case "joint: member failure cascades" `Quick
      joint_member_failure_cascades;
    Alcotest.test_case "open nested: early release" `Quick
      open_nested_early_release;
    Alcotest.test_case "open nested: compensation on abort" `Quick
      open_nested_compensation_on_abort;
    Alcotest.test_case "open nested: commit discards compensations" `Quick
      open_nested_commit_discards_compensations;
    Alcotest.test_case "open nested: failed sub" `Quick open_nested_failed_sub;
    Alcotest.test_case "cotrans: handoff" `Quick cotrans_handoff;
    Alcotest.test_case "cotrans: abort undoes everything" `Quick
      cotrans_abort_undoes_everything;
  ]
