(* Property-based tests: the §4.1 correctness obligations checked on
   random workloads against the semantic oracle, for every engine
   variant, every crash point, and crashes during recovery itself. *)

open Ariesrh_core
open Ariesrh_workload

let n_objects = 48

let spec steps ~delegation =
  {
    Gen.default with
    n_objects;
    n_steps = steps;
    p_delegate = (if delegation then Gen.default.p_delegate else 0.0);
  }

type params = {
  seed : int64;
  steps : int;
  crash_frac : float;
  delegation : bool;
}

let print_params p =
  Printf.sprintf "{seed=%Ld; steps=%d; crash_frac=%.2f; delegation=%b}" p.seed
    p.steps p.crash_frac p.delegation

let gen_params ~delegation =
  QCheck.Gen.(
    map3
      (fun seed steps crash_frac ->
        { seed = Int64.of_int seed; steps; crash_frac; delegation })
      (int_bound 1_000_000) (int_range 20 150) (float_bound_inclusive 1.0))

let arb ~delegation =
  QCheck.make ~print:print_params (gen_params ~delegation)

let script_of p = Gen.generate (spec p.steps ~delegation:p.delegation) ~seed:p.seed

let crash_point p script =
  let n = List.length script in
  min n (int_of_float (p.crash_frac *. float_of_int n))

let check_state ~msg db expected =
  let got = Db.peek_all db in
  if got <> expected then
    QCheck.Test.fail_reportf "%s:@ expected %s@ got %s" msg
      (String.concat "," (Array.to_list (Array.map string_of_int expected)))
      (String.concat "," (Array.to_list (Array.map string_of_int got)))

let recovery_matches_oracle impl name =
  QCheck.Test.make ~count:250 ~name (arb ~delegation:true) (fun p ->
      let script = script_of p in
      let at = crash_point p script in
      let db = Driver.fresh_db ~impl ~n_objects () in
      ignore (Driver.run_to_crash db script ~crash_at:at);
      check_state ~msg:"post-recovery state" db
        (Oracle.expected ~n_objects ~crash_at:at script);
      true)

let no_crash_matches_oracle =
  QCheck.Test.make ~count:250 ~name:"no-crash end state matches oracle"
    (arb ~delegation:true) (fun p ->
      let script = script_of p in
      let db = Driver.fresh_db ~n_objects () in
      Driver.run db script;
      check_state ~msg:"end state" db (Oracle.expected ~n_objects script);
      true)

let engines_agree =
  QCheck.Test.make ~count:150 ~name:"rh and eager agree after recovery"
    (arb ~delegation:true) (fun p ->
      let script = script_of p in
      let at = crash_point p script in
      let rh = Driver.fresh_db ~impl:Config.Rh ~n_objects () in
      let eager = Driver.fresh_db ~impl:Config.Eager ~n_objects () in
      ignore (Driver.run_to_crash rh script ~crash_at:at);
      ignore (Driver.run_to_crash eager script ~crash_at:at);
      Db.peek_all rh = Db.peek_all eager)

let interrupted_recovery_idempotent =
  QCheck.Test.make ~count:150 ~name:"crash during recovery, recover again"
    (QCheck.pair (arb ~delegation:true) (QCheck.make QCheck.Gen.(int_bound 10)))
    (fun (p, fuel) ->
      let script = script_of p in
      let at = crash_point p script in
      let db = Driver.fresh_db ~impl:Config.Rh ~n_objects () in
      Driver.run ~upto:at db script;
      Db.crash db;
      (match Db.recover_with_fuel db ~fuel with
      | `Done _ -> ()
      | `Interrupted ->
          Db.crash db;
          ignore (Db.recover db));
      check_state ~msg:"after interrupted recovery" db
        (Oracle.expected ~n_objects ~crash_at:at script);
      true)

let reduction_no_delegation =
  QCheck.Test.make ~count:150
    ~name:"without delegation ARIES/RH decides exactly as ARIES"
    (arb ~delegation:false) (fun p ->
      let script = script_of p in
      let at = crash_point p script in
      let rh = Driver.fresh_db ~impl:Config.Rh ~n_objects () in
      let plain = Driver.fresh_db ~impl:Config.Eager ~n_objects () in
      let r1 = Driver.run_to_crash rh script ~crash_at:at in
      let r2 = Driver.run_to_crash plain script ~crash_at:at in
      Db.peek_all rh = Db.peek_all plain
      && Ariesrh_types.Xid.Set.equal r1.winners r2.winners
      && Ariesrh_types.Xid.Set.equal r1.losers r2.losers
      && r1.undos = r2.undos)

let invariants_hold_mid_flight =
  QCheck.Test.make ~count:200
    ~name:"engine invariants hold at every prefix (validate)"
    (QCheck.pair (arb ~delegation:true)
       (QCheck.make QCheck.Gen.(int_range 0 2)))
    (fun (p, which) ->
      let impl =
        match which with 0 -> Config.Rh | 1 -> Config.Eager | _ -> Config.Lazy
      in
      let script = script_of p in
      let at = crash_point p script in
      let db = Driver.fresh_db ~impl ~n_objects () in
      Driver.run ~upto:at db script;
      (match Db.validate db with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "mid-flight: %s" e);
      Db.crash db;
      ignore (Db.recover db);
      match Db.validate db with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "post-recovery: %s" e)

let separate_passes_agree =
  QCheck.Test.make ~count:150
    ~name:"separate analysis/redo passes decide exactly as merged"
    (arb ~delegation:true) (fun p ->
      let script = script_of p in
      let at = crash_point p script in
      let mk passes =
        Ariesrh_core.Db.create
          (Config.make ~n_objects ~objects_per_page:8 ~buffer_capacity:4
             ~forward_passes:passes ())
      in
      let merged = mk Config.Merged in
      let separate = mk Config.Separate in
      let r1 = Driver.run_to_crash merged script ~crash_at:at in
      let r2 = Driver.run_to_crash separate script ~crash_at:at in
      Db.peek_all merged = Db.peek_all separate
      && Db.peek_all merged = Oracle.expected ~n_objects ~crash_at:at script
      && r1.undos = r2.undos
      && r2.forward_records >= r1.forward_records)

let repeated_recovery_stable =
  QCheck.Test.make ~count:100 ~name:"recovering twice changes nothing"
    (arb ~delegation:true) (fun p ->
      let script = script_of p in
      let at = crash_point p script in
      let db = Driver.fresh_db ~impl:Config.Rh ~n_objects () in
      ignore (Driver.run_to_crash db script ~crash_at:at);
      let first = Db.peek_all db in
      Db.crash db;
      let report = Db.recover db in
      first = Db.peek_all db && report.undos = 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      recovery_matches_oracle Config.Rh "rh recovery matches oracle";
      recovery_matches_oracle Config.Eager "eager recovery matches oracle";
      recovery_matches_oracle Config.Lazy "lazy recovery matches oracle";
      no_crash_matches_oracle;
      engines_agree;
      interrupted_recovery_idempotent;
      reduction_no_delegation;
      invariants_hold_mid_flight;
      separate_passes_agree;
      repeated_recovery_stable;
    ]
