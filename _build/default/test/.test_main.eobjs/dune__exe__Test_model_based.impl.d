test/test_model_based.ml: Ariesrh_storage Ariesrh_txn Ariesrh_types Ariesrh_util Ariesrh_wal Array Int64 List Lsn Oid Page_id QCheck QCheck_alcotest Xid
