test/test_wal.ml: Alcotest Ariesrh_types Ariesrh_wal Bytes Char List Log_store Lsn Oid Page_id Printf QCheck QCheck_alcotest Record String Xid
