test/test_workload.ml: Alcotest Ariesrh_core Ariesrh_workload Config Db Driver Gen Int64 List Oracle QCheck QCheck_alcotest Script Sim String
