test/test_small.ml: Alcotest Ariesrh_eos Ariesrh_txn Ariesrh_types Ariesrh_util Ariesrh_wal Array Format List Lsn Oid Page_id String Xid
