test/test_properties.ml: Ariesrh_core Ariesrh_types Ariesrh_workload Array Config Db Driver Gen Int64 List Oracle Printf QCheck QCheck_alcotest String
