test/test_lock.ml: Alcotest Ariesrh_lock Ariesrh_types Deadlock List Lock_table Mode Oid Xid
