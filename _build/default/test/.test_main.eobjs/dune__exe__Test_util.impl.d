test/test_util.ml: Alcotest Ariesrh_util Array Fun List QCheck QCheck_alcotest
