test/test_eos.ml: Alcotest Ariesrh_core Ariesrh_eos Ariesrh_types Ariesrh_workload Driver Eos_db Gen Hashtbl Int64 List Oid Oracle Printf QCheck QCheck_alcotest Script Xid
