test/test_introspection.ml: Alcotest Ariesrh_core Ariesrh_recovery Ariesrh_types Config Db Errors Format List Lsn Oid String Xid
