test/test_db.ml: Alcotest Ariesrh_core Ariesrh_types Ariesrh_wal Config Db Errors List Lsn Oid Printf Xid
