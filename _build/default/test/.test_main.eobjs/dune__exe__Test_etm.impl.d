test/test_etm.ml: Alcotest Ariesrh_core Ariesrh_etm Ariesrh_types Asset Config Cotrans Db Joint Nested Oid Open_nested Reporting Split
