test/test_model.ml: Alcotest Ariesrh_core Ariesrh_model Ariesrh_types Ariesrh_wal Ariesrh_workload Config Db Driver Gen History Int64 List Lsn Oid Printf QCheck QCheck_alcotest Xid
