test/test_storage.ml: Alcotest Ariesrh_storage Ariesrh_types Buffer_pool Disk List Lsn Page Page_id
