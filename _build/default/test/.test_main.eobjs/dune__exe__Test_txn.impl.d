test/test_txn.ml: Alcotest Ariesrh_txn Ariesrh_types List Lsn Ob_list Oid Option Scope Txn_table Xid
