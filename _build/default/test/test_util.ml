(* Unit and property tests for the utility substrate. *)

module Prng = Ariesrh_util.Prng
module Zipf = Ariesrh_util.Zipf
module Heap = Ariesrh_util.Heap

let prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let prng_differs_by_seed () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different seeds diverge" false
    (List.init 10 (fun _ -> Prng.next a) = List.init 10 (fun _ -> Prng.next b))

let prng_int_range () =
  let rng = Prng.create 7L in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let prng_int_in () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let prng_float_range () =
  let rng = Prng.create 9L in
  for _ = 1 to 1000 do
    let v = Prng.float rng 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of range: %f" v
  done

let prng_copy_independent () =
  let a = Prng.create 5L in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next a) (Prng.next b)

let prng_shuffle_permutes () =
  let rng = Prng.create 11L in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Prng.shuffle rng b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a)

let zipf_bounds () =
  let rng = Prng.create 3L in
  let z = Zipf.create ~n:100 ~theta:0.99 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z rng in
    if v < 0 || v >= 100 then Alcotest.failf "out of range: %d" v
  done

let zipf_skew () =
  let rng = Prng.create 3L in
  let z = Zipf.create ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "item 0 much more popular than item 99" true
    (counts.(0) > 10 * max 1 counts.(99))

let zipf_uniform_when_theta_zero () =
  let rng = Prng.create 3L in
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      if c < 4_000 || c > 6_000 then Alcotest.failf "not uniform: %d" c)
    counts

let heap_pop_order =
  QCheck.Test.make ~count:200 ~name:"heap pops in decreasing order"
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort (fun a b -> compare b a) xs)

let heap_peek () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 9;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek is max" (Some 9) (Heap.peek h);
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "pop" (Some 9) (Heap.pop h);
  Alcotest.(check int) "length after pop" 2 (Heap.length h)

let heap_to_list () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Heap.push h) [ 4; 2; 7 ];
  Alcotest.(check (list int)) "all elements" [ 2; 4; 7 ]
    (List.sort compare (Heap.to_list h));
  Alcotest.(check int) "unchanged" 3 (Heap.length h)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick prng_deterministic;
    Alcotest.test_case "prng differs by seed" `Quick prng_differs_by_seed;
    Alcotest.test_case "prng int range" `Quick prng_int_range;
    Alcotest.test_case "prng int_in range" `Quick prng_int_in;
    Alcotest.test_case "prng float range" `Quick prng_float_range;
    Alcotest.test_case "prng copy independent" `Quick prng_copy_independent;
    Alcotest.test_case "prng shuffle permutes" `Quick prng_shuffle_permutes;
    Alcotest.test_case "zipf bounds" `Quick zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick zipf_skew;
    Alcotest.test_case "zipf uniform at theta 0" `Quick zipf_uniform_when_theta_zero;
    QCheck_alcotest.to_alcotest heap_pop_order;
    Alcotest.test_case "heap peek/pop/length" `Quick heap_peek;
    Alcotest.test_case "heap to_list" `Quick heap_to_list;
  ]
