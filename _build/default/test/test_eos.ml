(* The EOS-style NO-UNDO/REDO engine with delegation (§3.7), including
   its equivalence with ARIES/RH on read/write workloads. *)

open Ariesrh_types
open Ariesrh_eos
open Ariesrh_workload

let oid = Oid.of_int

let no_undo_isolation () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 5;
  Alcotest.(check int) "uncommitted write invisible outside" 0
    (Eos_db.peek db (oid 0));
  Alcotest.(check int) "but visible to the writer" 5 (Eos_db.read db t1 (oid 0));
  Eos_db.commit db t1;
  Alcotest.(check int) "installed at commit" 5 (Eos_db.peek db (oid 0))

let abort_is_free () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 5;
  Eos_db.abort db t1;
  Alcotest.(check int) "nothing ever applied" 0 (Eos_db.peek db (oid 0));
  Alcotest.(check int) "nothing logged" 0 (Eos_db.global_log_length db)

let delegation_image () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  let t2 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 7;
  Eos_db.delegate db ~from_:t1 ~to_:t2 (oid 0);
  (* visibility passed with the image *)
  Alcotest.(check int) "delegatee sees the tentative value" 7
    (Eos_db.read db t2 (oid 0));
  Alcotest.(check bool) "delegator no longer responsible" false
    (Eos_db.responsible db t1 (oid 0));
  Eos_db.abort db t1;
  Eos_db.commit db t2;
  Alcotest.(check int) "delegated write survives delegator abort" 7
    (Eos_db.peek db (oid 0))

let delegation_dies_with_delegatee () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  let t2 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 7;
  Eos_db.delegate db ~from_:t1 ~to_:t2 (oid 0);
  Eos_db.commit db t1;
  (* t1 filtered the delegated write out: commits nothing for ob0 *)
  Alcotest.(check int) "not installed by the delegator" 0 (Eos_db.peek db (oid 0));
  Eos_db.abort db t2;
  Alcotest.(check int) "gone with the delegatee" 0 (Eos_db.peek db (oid 0))

let delegate_requires_state () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  let t2 = Eos_db.begin_txn db in
  match Eos_db.delegate db ~from_:t1 ~to_:t2 (oid 0) with
  | () -> Alcotest.fail "expected precondition failure"
  | exception Invalid_argument _ -> ()

let crash_recovery () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 3;
  Eos_db.commit db t1;
  let t2 = Eos_db.begin_txn db in
  Eos_db.write db t2 (oid 1) 9;
  (* t2 never commits *)
  Eos_db.crash db;
  let report = Eos_db.recover db in
  Alcotest.(check int) "winner restored" 3 (Eos_db.peek db (oid 0));
  Alcotest.(check int) "loser never existed" 0 (Eos_db.peek db (oid 1));
  Alcotest.(check int) "one winner" 1 (Xid.Set.cardinal report.winners)

let chain_delegation () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  let t2 = Eos_db.begin_txn db in
  let t3 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 1;
  Eos_db.delegate db ~from_:t1 ~to_:t2 (oid 0);
  Eos_db.write db t2 (oid 0) 2;
  Eos_db.delegate db ~from_:t2 ~to_:t3 (oid 0);
  Eos_db.abort db t1;
  Eos_db.abort db t2;
  Eos_db.commit db t3;
  Alcotest.(check int) "last delegatee's view wins" 2 (Eos_db.peek db (oid 0))

let checkpoint_bounds_recovery () =
  let db = Eos_db.create ~n_objects:8 in
  for i = 0 to 4 do
    let t = Eos_db.begin_txn db in
    Eos_db.write db t (oid 0) i;
    Eos_db.commit db t
  done;
  Eos_db.checkpoint db;
  let reclaimed = Eos_db.truncate_global_log db in
  Alcotest.(check int) "old entries reclaimed" 5 reclaimed;
  let t = Eos_db.begin_txn db in
  Eos_db.write db t (oid 1) 9;
  Eos_db.commit db t;
  Eos_db.crash db;
  let r = Eos_db.recover db in
  Alcotest.(check int) "only the post-checkpoint entry replayed" 1
    r.entries_replayed;
  Alcotest.(check int) "checkpointed state restored" 4 (Eos_db.peek db (oid 0));
  Alcotest.(check int) "post-checkpoint work restored" 9 (Eos_db.peek db (oid 1))

let checkpoint_with_pending_delegation () =
  let db = Eos_db.create ~n_objects:8 in
  let t1 = Eos_db.begin_txn db in
  let t2 = Eos_db.begin_txn db in
  Eos_db.write db t1 (oid 0) 7;
  Eos_db.delegate db ~from_:t1 ~to_:t2 (oid 0);
  (* checkpoint sees no uncommitted data by construction *)
  Eos_db.checkpoint db;
  Eos_db.commit db t2;
  Eos_db.abort db t1;
  Eos_db.crash db;
  ignore (Eos_db.recover db);
  Alcotest.(check int) "delegated write replayed after the checkpoint" 7
    (Eos_db.peek db (oid 0))

(* scripted equivalence: EOS and the ARIES/RH engine agree on committed
   state for write-only workloads (EOS is read/write per §3.7) *)
let eos_spec steps =
  {
    Gen.default with
    n_objects = 32;
    n_steps = steps;
    p_add = 0.0;
    p_checkpoint = 0.0;
    p_savepoint = 0.0;
    p_rollback = 0.0;
  }

let run_eos db script ~upto =
  let xids = Hashtbl.create 16 in
  let x t = Hashtbl.find xids t in
  List.iteri
    (fun i action ->
      if i < upto then
        match action with
        | Script.Begin t -> Hashtbl.replace xids t (Eos_db.begin_txn db)
        | Script.Read (t, o) -> ignore (Eos_db.read db (x t) (oid o))
        | Script.Write (t, o, v) -> Eos_db.write db (x t) (oid o) v
        | Script.Add _ -> Alcotest.fail "EOS scripts must be write-only"
        | Script.Delegate (f, g, o) ->
            (* the generator only delegates objects in the Ob_List, which
               for EOS means tentative state exists *)
            Eos_db.delegate db ~from_:(x f) ~to_:(x g) (oid o)
        | Script.Savepoint _ | Script.Rollback_to _ ->
            Alcotest.fail "EOS scripts do not use savepoints"
        | Script.Commit t -> Eos_db.commit db (x t)
        | Script.Abort t -> Eos_db.abort db (x t)
        | Script.Checkpoint -> ())
    script

let matches_oracle =
  QCheck.Test.make ~count:200 ~name:"EOS matches oracle after crash"
    (QCheck.make
       ~print:(fun (s, f) -> Printf.sprintf "seed=%Ld frac=%.2f" s f)
       QCheck.Gen.(
         map2
           (fun s f -> (Int64.of_int s, f))
           (int_bound 1_000_000) (float_bound_inclusive 1.0)))
    (fun (seed, frac) ->
      let script = Gen.generate (eos_spec 120) ~seed in
      let n = List.length script in
      let at = min n (int_of_float (frac *. float_of_int n)) in
      let db = Eos_db.create ~n_objects:32 in
      run_eos db script ~upto:at;
      Eos_db.crash db;
      ignore (Eos_db.recover db);
      Eos_db.peek_all db = Oracle.expected ~n_objects:32 ~crash_at:at script)

let agrees_with_rh =
  QCheck.Test.make ~count:120 ~name:"EOS and ARIES/RH agree"
    (QCheck.make ~print:Int64.to_string
       QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
    (fun seed ->
      let script = Gen.generate (eos_spec 100) ~seed in
      let n = List.length script in
      let eos = Eos_db.create ~n_objects:32 in
      run_eos eos script ~upto:n;
      Eos_db.crash eos;
      ignore (Eos_db.recover eos);
      let rh = Driver.fresh_db ~n_objects:32 () in
      Driver.run rh script;
      Ariesrh_core.Db.crash rh;
      ignore (Ariesrh_core.Db.recover rh);
      Eos_db.peek_all eos = Ariesrh_core.Db.peek_all rh)

let suite =
  [
    Alcotest.test_case "no-undo isolation" `Quick no_undo_isolation;
    Alcotest.test_case "abort is free" `Quick abort_is_free;
    Alcotest.test_case "delegation carries an image" `Quick delegation_image;
    Alcotest.test_case "delegation dies with delegatee" `Quick
      delegation_dies_with_delegatee;
    Alcotest.test_case "delegate requires tentative state" `Quick
      delegate_requires_state;
    Alcotest.test_case "crash recovery is redo-only" `Quick crash_recovery;
    Alcotest.test_case "chain delegation" `Quick chain_delegation;
    Alcotest.test_case "checkpoint bounds recovery" `Quick
      checkpoint_bounds_recovery;
    Alcotest.test_case "checkpoint with pending delegation" `Quick
      checkpoint_with_pending_delegation;
    QCheck_alcotest.to_alcotest matches_oracle;
    QCheck_alcotest.to_alcotest agrees_with_rh;
  ]
