(* Lock modes, the lock table (with transfer — the delegation hook), and
   the waits-for graph. *)

open Ariesrh_types
open Ariesrh_lock

let xid = Xid.of_int
let oid = Oid.of_int

let mode_matrix () =
  let open Mode in
  Alcotest.(check bool) "S/S" true (compatible S S);
  Alcotest.(check bool) "S/X" false (compatible S X);
  Alcotest.(check bool) "S/I" false (compatible S I);
  Alcotest.(check bool) "X/anything" false
    (compatible X S || compatible X X || compatible X I);
  Alcotest.(check bool) "I/I commute" true (compatible I I);
  Alcotest.(check bool) "I/S" false (compatible I S);
  Alcotest.(check bool) "sup S I = X" true (equal (sup S I) X);
  Alcotest.(check bool) "X covers all" true
    (covers X S && covers X X && covers X I);
  Alcotest.(check bool) "S does not cover X" false (covers S X)

let grant expect t x o m =
  match Lock_table.acquire t (xid x) (oid o) m with
  | Lock_table.Granted -> if not expect then Alcotest.fail "unexpected grant"
  | Lock_table.Conflict _ -> if expect then Alcotest.fail "unexpected conflict"

let basic_locking () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.S;
  grant true t 2 0 Mode.S;
  grant false t 3 0 Mode.X;
  grant true t 1 1 Mode.X;
  grant false t 2 1 Mode.S;
  Lock_table.release_all t (xid 1);
  grant true t 2 1 Mode.S

let increment_locks_commute () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.I;
  grant true t 2 0 Mode.I;
  grant true t 3 0 Mode.I;
  grant false t 4 0 Mode.S;
  grant false t 4 0 Mode.X

let upgrade () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.S;
  grant true t 1 0 Mode.X;
  (* sole holder upgrades *)
  grant false t 2 0 Mode.S;
  let t2 = Lock_table.create () in
  grant true t2 1 1 Mode.S;
  grant true t2 2 1 Mode.S;
  grant false t2 1 1 Mode.X (* cannot upgrade past another reader *)

let reacquire_is_noop () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.X;
  grant true t 1 0 Mode.S;
  (* covered *)
  Alcotest.(check int) "still one entry" 1 (Lock_table.locked_count t)

let transfer_moves_lock () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.X;
  Lock_table.transfer t (oid 0) ~from_:(xid 1) ~to_:(xid 2);
  Alcotest.(check bool) "from released" true (Lock_table.held t (xid 1) (oid 0) = None);
  Alcotest.(check bool) "to holds X" true
    (match Lock_table.held t (xid 2) (oid 0) with
    | Some m -> Mode.equal m Mode.X
    | None -> false);
  grant false t 1 0 Mode.X

let transfer_merges () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.I;
  grant true t 2 0 Mode.I;
  Lock_table.transfer t (oid 0) ~from_:(xid 1) ~to_:(xid 2);
  Alcotest.(check bool) "merged into I" true
    (match Lock_table.held t (xid 2) (oid 0) with
    | Some m -> Mode.equal m Mode.I
    | None -> false);
  (* other increment holders are unaffected *)
  grant true t 3 0 Mode.I

let permit_bypasses () =
  let t = Lock_table.create () in
  grant true t 1 0 Mode.X;
  (match Lock_table.acquire ~permit:(fun h -> Xid.equal h (xid 1)) t (xid 2) (oid 0) Mode.X with
  | Lock_table.Granted -> ()
  | Lock_table.Conflict _ -> Alcotest.fail "permit should bypass");
  (* a third party is still blocked, by both holders now *)
  match Lock_table.acquire t (xid 3) (oid 0) Mode.X with
  | Lock_table.Granted -> Alcotest.fail "expected conflict"
  | Lock_table.Conflict hs -> Alcotest.(check int) "two blockers" 2 (List.length hs)

let deadlock_cycle () =
  let g = Deadlock.create () in
  Deadlock.add_wait g ~waiter:(xid 1) ~holder:(xid 2);
  Deadlock.add_wait g ~waiter:(xid 2) ~holder:(xid 3);
  Alcotest.(check bool) "2-cycle detected" true
    (Deadlock.would_cycle g ~waiter:(xid 2) ~holder:(xid 1));
  Alcotest.(check bool) "3-cycle detected" true
    (Deadlock.would_cycle g ~waiter:(xid 3) ~holder:(xid 1));
  Alcotest.(check bool) "unrelated edge is fine" false
    (Deadlock.would_cycle g ~waiter:(xid 4) ~holder:(xid 1));
  Deadlock.add_wait g ~waiter:(xid 3) ~holder:(xid 1);
  (match Deadlock.cycle_through g (xid 1) with
  | Some cycle -> Alcotest.(check int) "cycle length" 3 (List.length cycle)
  | None -> Alcotest.fail "cycle not found");
  Deadlock.remove_txn g (xid 2);
  Alcotest.(check bool) "cycle broken" true (Deadlock.cycle_through g (xid 1) = None)

let deadlock_clear_waits () =
  let g = Deadlock.create () in
  Deadlock.add_wait g ~waiter:(xid 1) ~holder:(xid 2);
  Deadlock.clear_waits g (xid 1);
  Alcotest.(check bool) "no cycle after clearing" false
    (Deadlock.would_cycle g ~waiter:(xid 2) ~holder:(xid 1))

let suite =
  [
    Alcotest.test_case "mode matrix" `Quick mode_matrix;
    Alcotest.test_case "basic locking" `Quick basic_locking;
    Alcotest.test_case "increment locks commute" `Quick increment_locks_commute;
    Alcotest.test_case "upgrade" `Quick upgrade;
    Alcotest.test_case "reacquire is noop" `Quick reacquire_is_noop;
    Alcotest.test_case "transfer moves lock" `Quick transfer_moves_lock;
    Alcotest.test_case "transfer merges" `Quick transfer_merges;
    Alcotest.test_case "permit bypasses" `Quick permit_bypasses;
    Alcotest.test_case "deadlock cycle detection" `Quick deadlock_cycle;
    Alcotest.test_case "deadlock clear waits" `Quick deadlock_clear_waits;
  ]
