bin/ariesrh.mli:
