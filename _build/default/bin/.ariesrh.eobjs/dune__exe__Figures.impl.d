bin/figures.ml: Ariesrh_core Ariesrh_recovery Ariesrh_storage Ariesrh_txn Ariesrh_types Ariesrh_wal Config Db Format List Lsn Oid Page_id String Xid
