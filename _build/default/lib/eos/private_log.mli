(** A transaction's private log in the EOS-style NO-UNDO/REDO engine
    (§3.7 of the paper).

    Updates accumulate here and touch the database only at commit. A
    delegation appends, on the delegatee's side, a record carrying the
    {e image} of the object as the delegator saw it — the paper's
    read/write-case construction, which frees the delegatee from ever
    consulting the delegator's log again. On the delegator's side the
    delegated updates are filtered out so they are not committed twice. *)

open Ariesrh_types

type entry =
  | Write of Oid.t * int
  | Received of { from_ : Xid.t; oid : Oid.t; image : int }

type t

val create : unit -> t
val append : t -> entry -> unit
val entries : t -> entry list
(** Oldest first. *)

val value_of : t -> Oid.t -> int option
(** The value the owner currently sees for the object, if its private
    log determines one (its own last write, or the last received image,
    whichever is later). *)

val filter_delegated : t -> Oid.t -> unit
(** Drop the owner's entries for the object (both own writes and
    previously received images): they have been delegated away. *)

val effective : t -> (Oid.t * int) list
(** Final value per object this log would install at commit, in first-
    touch order. *)

val length : t -> int
