(** The EOS-style NO-UNDO/REDO engine with delegation (§3.7).

    No uncommitted update ever reaches the database: each transaction
    works against its private log, and commit atomically installs the
    transaction's effective updates and appends them to the global log
    (force-flushed). Abort merely discards the private log. Restart
    recovery is a single forward sweep of the global log — no undo pass
    exists by construction.

    Delegation transfers an object's tentative image into the
    delegatee's private log and filters the delegator's entries, so the
    delegated state survives the delegator's abort and dies with the
    delegatee's. Operations are restricted to reads and writes, the case
    for which the paper gives the image construction. *)

open Ariesrh_types

type t

type report = { winners : Xid.Set.t; entries_replayed : int; updates_redone : int }

val create : n_objects:int -> t
val n_objects : t -> int

val begin_txn : t -> Xid.t
val read : t -> Xid.t -> Oid.t -> int
(** The transaction's view: its tentative value for the object (own
    write or received image), else the committed value. *)

val write : t -> Xid.t -> Oid.t -> int -> unit
val delegate : t -> from_:Xid.t -> to_:Xid.t -> Oid.t -> unit
(** Raises [Invalid_argument] if the delegator has no tentative state
    for the object (the delegation precondition). *)

val responsible : t -> Xid.t -> Oid.t -> bool
val commit : t -> Xid.t -> unit
val abort : t -> Xid.t -> unit
val active_count : t -> int

val crash : t -> unit
(** Private logs and the volatile database are lost; the global log
    survives in full (every entry is force-written at commit). *)

val recover : t -> report

val peek : t -> Oid.t -> int
(** Committed state. *)

val peek_all : t -> int array
val global_log_length : t -> int

(** {1 Checkpointing}

    EOS checkpoints are trivial compared to ARIES's: the committed state
    is always consistent (no uncommitted data ever reaches it), so a
    checkpoint is just a stable copy of the image plus the global-log
    position it reflects. *)

val checkpoint : t -> unit
(** Snapshot the committed image to stable storage. *)

val truncate_global_log : t -> int
(** Drop the global-log prefix covered by the last checkpoint; returns
    the number of entries reclaimed. 0 if never checkpointed. *)
