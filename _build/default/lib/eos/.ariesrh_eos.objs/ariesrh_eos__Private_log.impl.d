lib/eos/private_log.ml: Ariesrh_types Hashtbl List Oid Xid
