lib/eos/eos_db.ml: Ariesrh_types Array Format List Oid Private_log Xid
