lib/eos/eos_db.mli: Ariesrh_types Oid Xid
