lib/eos/private_log.mli: Ariesrh_types Oid Xid
