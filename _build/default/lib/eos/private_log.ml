open Ariesrh_types

type entry =
  | Write of Oid.t * int
  | Received of { from_ : Xid.t; oid : Oid.t; image : int }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }
let append t e = t.entries <- e :: t.entries
let entries t = List.rev t.entries

let oid_of = function Write (o, _) -> o | Received { oid; _ } -> oid
let value_of_entry = function Write (_, v) -> v | Received { image; _ } -> image

let value_of t oid =
  let rec go = function
    | [] -> None
    | e :: rest -> if Oid.equal (oid_of e) oid then Some (value_of_entry e) else go rest
  in
  go t.entries

let filter_delegated t oid =
  t.entries <- List.filter (fun e -> not (Oid.equal (oid_of e) oid)) t.entries

let effective t =
  (* newest entry per object wins; report in first-touch order *)
  let final = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let o = oid_of e in
      if not (Hashtbl.mem final o) then Hashtbl.replace final o (value_of_entry e))
    t.entries;
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc e ->
      let o = oid_of e in
      if Hashtbl.mem seen o then acc
      else begin
        Hashtbl.replace seen o ();
        (o, Hashtbl.find final o) :: acc
      end)
    [] (List.rev t.entries)
  |> List.rev

let length t = List.length t.entries
