open Ariesrh_types

type global_entry = { xid : Xid.t; updates : (Oid.t * int) list }

type report = { winners : Xid.Set.t; entries_replayed : int; updates_redone : int }

type t = {
  n_objects : int;
  mutable db : int array;  (* volatile committed state *)
  mutable global : global_entry list;  (* newest first; stable *)
  mutable global_len : int;
  mutable ckpt : (int array * int) option;
      (* stable image + the global-log length it reflects *)
  privates : Private_log.t Xid.Tbl.t;
  mutable next_xid : int;
}

let create ~n_objects =
  if n_objects <= 0 then invalid_arg "Eos_db.create: n_objects";
  {
    n_objects;
    db = Array.make n_objects 0;
    global = [];
    global_len = 0;
    ckpt = None;
    privates = Xid.Tbl.create 16;
    next_xid = 1;
  }

let n_objects t = t.n_objects

let check_oid t oid =
  if Oid.to_int oid >= t.n_objects then invalid_arg "Eos_db: oid out of range"

let begin_txn t =
  let xid = Xid.of_int t.next_xid in
  t.next_xid <- t.next_xid + 1;
  Xid.Tbl.replace t.privates xid (Private_log.create ());
  xid

let plog t xid =
  match Xid.Tbl.find_opt t.privates xid with
  | Some p -> p
  | None -> invalid_arg (Format.asprintf "Eos_db: %a is not active" Xid.pp xid)

let read t xid oid =
  check_oid t oid;
  match Private_log.value_of (plog t xid) oid with
  | Some v -> v
  | None -> t.db.(Oid.to_int oid)

let write t xid oid v =
  check_oid t oid;
  Private_log.append (plog t xid) (Private_log.Write (oid, v))

let responsible t xid oid =
  Private_log.value_of (plog t xid) oid <> None

let delegate t ~from_ ~to_ oid =
  check_oid t oid;
  let from_log = plog t from_ in
  let to_log = plog t to_ in
  match Private_log.value_of from_log oid with
  | None ->
      invalid_arg
        (Format.asprintf "Eos_db.delegate: %a has no tentative state for %a"
           Xid.pp from_ Oid.pp oid)
  | Some image ->
      Private_log.append to_log (Private_log.Received { from_; oid; image });
      Private_log.filter_delegated from_log oid

let commit t xid =
  let p = plog t xid in
  let updates = Private_log.effective p in
  (* force-write the entry: EOS logs only commits, atomically *)
  t.global <- { xid; updates } :: t.global;
  t.global_len <- t.global_len + 1;
  List.iter (fun (oid, v) -> t.db.(Oid.to_int oid) <- v) updates;
  Xid.Tbl.remove t.privates xid

let abort t xid =
  ignore (plog t xid);
  Xid.Tbl.remove t.privates xid

let active_count t = Xid.Tbl.length t.privates

let crash t =
  Xid.Tbl.reset t.privates;
  t.db <- Array.make t.n_objects 0
(* committed state must be rebuilt from the global log *)

let recover t =
  let winners = ref Xid.Set.empty in
  let redone = ref 0 in
  let base_len =
    match t.ckpt with
    | Some (image, len) ->
        t.db <- Array.copy image;
        len
    | None -> 0
  in
  let to_replay = t.global_len - base_len in
  (* entries are newest-first: replay the suffix after the checkpoint *)
  let suffix = List.filteri (fun i _ -> i < to_replay) t.global in
  List.iter
    (fun entry ->
      winners := Xid.Set.add entry.xid !winners;
      List.iter
        (fun (oid, v) ->
          incr redone;
          t.db.(Oid.to_int oid) <- v)
        entry.updates)
    (List.rev suffix);
  { winners = !winners; entries_replayed = to_replay; updates_redone = !redone }

let checkpoint t = t.ckpt <- Some (Array.copy t.db, t.global_len)

let truncate_global_log t =
  match t.ckpt with
  | None -> 0
  | Some (_, len) ->
      let live = t.global_len - len in
      let reclaimed = List.length t.global - live in
      t.global <- List.filteri (fun i _ -> i < live) t.global;
      reclaimed

let peek t oid =
  check_oid t oid;
  t.db.(Oid.to_int oid)

let peek_all t = Array.copy t.db
let global_log_length t = t.global_len
