lib/model/history.ml: Ariesrh_types Ariesrh_wal Format Hashtbl List Lsn Oid Option Xid
