lib/model/history.mli: Ariesrh_types Ariesrh_wal Lsn Oid Xid
