(** An executable rendering of the paper's formal framework: the history
    H as a sequence of events (§2.1.1), the ResponsibleTr function, the
    delegation preconditions (§2.1.2), and the §4.1 undo/redo correctness
    properties — checked directly {e on a log}, independently of the
    engine's own data structures and of the value-level oracle.

    The checker applies to ARIES/RH logs (delegate records present, no
    physical rewriting); an eager-rewritten log encodes its history in
    the record attributions instead, which is precisely why the paper
    calls that design "hard to prove correct". *)

open Ariesrh_types

type event =
  | Began of Xid.t
  | Updated of { lsn : Lsn.t; invoker : Xid.t; oid : Oid.t }
  | Delegated of {
      lsn : Lsn.t;
      tor : Xid.t;
      tee : Xid.t;
      oid : Oid.t;
      op : Lsn.t option;
    }
  | Compensated of { lsn : Lsn.t; by : Xid.t; oid : Oid.t; undone : Lsn.t }
  | Committed of Xid.t
  | Aborted of Xid.t
  | Ended of Xid.t

type t = event list
(** In LSN (= temporal) order. *)

val of_log : Ariesrh_wal.Log_store.t -> t
(** Extract the history from a log (checkpoint records are not events). *)

val winners : t -> Xid.Set.t
val losers : t -> Xid.Set.t
(** Began but never committed (§4.1's definitions). *)

val responsible : t -> (Lsn.t * Xid.t) list
(** ResponsibleTr at the end of the history, per update: the invoker,
    rewritten by each delegation in order (object-granularity
    delegations move every update on the object the delegator is
    responsible for; operation-granularity ones move the single
    operation). *)

val delegation_chain : t -> Lsn.t -> Xid.t list
(** The §4.1 delegation chain for one update: invoker first, then each
    successive delegatee. *)

val check_well_formed : t -> (unit, string) result
(** §2.1.2 preconditions on every delegate event: delegator and
    delegatee initiated and not terminated, delegator distinct from
    delegatee, and the delegator responsible for what it delegates
    (object membership: it invoked or received something on the object
    and has not delegated it away since). Also structural sanity: at
    most one commit/abort per transaction and nothing after its end. *)

val check_recovery : t -> (unit, string) result
(** The §4.1 obligations on a post-recovery history:
    {ul
    {- {b undo}: every update whose responsible transaction is a loser
       is compensated exactly once;}
    {- {b no over-undo}: no update is compensated twice, and every
       compensation names an existing update on the same object;}
    {- {b redo}: an update whose responsible transaction is a winner is
       never compensated after that winner's commit (compensations
       before it are partial rollbacks the transaction itself chose);}
    {- every loser reaches its End record (recovery finished the job).}} *)
