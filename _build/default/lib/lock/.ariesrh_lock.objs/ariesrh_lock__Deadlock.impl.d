lib/lock/deadlock.ml: Ariesrh_types List Xid
