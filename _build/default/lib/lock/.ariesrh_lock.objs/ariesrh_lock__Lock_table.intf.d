lib/lock/lock_table.mli: Ariesrh_types Mode Oid Xid
