lib/lock/lock_table.ml: Ariesrh_types Mode Oid Xid
