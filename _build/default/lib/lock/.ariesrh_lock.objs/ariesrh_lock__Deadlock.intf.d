lib/lock/deadlock.mli: Ariesrh_types Xid
