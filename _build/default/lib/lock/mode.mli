(** Lock modes.

    [I] (increment) is compatible with itself: commuting [Add] updates by
    different transactions may run concurrently on the same object, the
    situation §2.1.2 of the paper uses to show one object appearing in
    several Ob_Lists. *)

type t = S  (** shared (read) *) | X  (** exclusive (set) *) | I  (** increment *)

val compatible : t -> t -> bool
(** [compatible held requested]. *)

val sup : t -> t -> t
(** Least mode covering both (used for upgrades). [sup S I = X]. *)

val covers : t -> t -> bool
(** [covers held requested]: a holder of [held] may perform actions
    needing [requested]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
