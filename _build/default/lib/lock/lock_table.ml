open Ariesrh_types

type outcome = Granted | Conflict of Xid.t list

type t = {
  by_object : Mode.t Xid.Map.t ref Oid.Tbl.t;
  by_txn : Oid.Set.t Xid.Tbl.t;
}

let create () = { by_object = Oid.Tbl.create 256; by_txn = Xid.Tbl.create 64 }

let entry t oid =
  match Oid.Tbl.find_opt t.by_object oid with
  | Some e -> e
  | None ->
      let e = ref Xid.Map.empty in
      Oid.Tbl.replace t.by_object oid e;
      e

let note_txn t xid oid =
  let cur =
    match Xid.Tbl.find_opt t.by_txn xid with
    | Some s -> s
    | None -> Oid.Set.empty
  in
  Xid.Tbl.replace t.by_txn xid (Oid.Set.add oid cur)

let acquire ?(permit = fun _ -> false) t xid oid mode =
  let e = entry t oid in
  let requested =
    match Xid.Map.find_opt xid !e with
    | Some held when Mode.covers held mode -> None  (* already sufficient *)
    | Some held -> Some (Mode.sup held mode)
    | None -> Some mode
  in
  match requested with
  | None -> Granted
  | Some want ->
      let blockers =
        Xid.Map.fold
          (fun holder held acc ->
            if Xid.equal holder xid then acc
            else if Mode.compatible held want then acc
            else if permit holder then acc
            else holder :: acc)
          !e []
      in
      if blockers = [] then begin
        e := Xid.Map.add xid want !e;
        note_txn t xid oid;
        Granted
      end
      else Conflict blockers

let held t xid oid =
  match Oid.Tbl.find_opt t.by_object oid with
  | None -> None
  | Some e -> Xid.Map.find_opt xid !e

let holders t oid =
  match Oid.Tbl.find_opt t.by_object oid with
  | None -> []
  | Some e -> Xid.Map.bindings !e

let release_all t xid =
  (match Xid.Tbl.find_opt t.by_txn xid with
  | None -> ()
  | Some oids ->
      Oid.Set.iter
        (fun oid ->
          match Oid.Tbl.find_opt t.by_object oid with
          | None -> ()
          | Some e ->
              e := Xid.Map.remove xid !e;
              if Xid.Map.is_empty !e then Oid.Tbl.remove t.by_object oid)
        oids);
  Xid.Tbl.remove t.by_txn xid

let transfer t oid ~from_ ~to_ =
  if not (Xid.equal from_ to_) then
    match Oid.Tbl.find_opt t.by_object oid with
    | None -> ()
    | Some e -> (
        match Xid.Map.find_opt from_ !e with
        | None -> ()
        | Some mode ->
            let merged =
              match Xid.Map.find_opt to_ !e with
              | Some m -> Mode.sup m mode
              | None -> mode
            in
            e := Xid.Map.add to_ merged (Xid.Map.remove from_ !e);
            note_txn t to_ oid;
            (match Xid.Tbl.find_opt t.by_txn from_ with
            | Some s -> Xid.Tbl.replace t.by_txn from_ (Oid.Set.remove oid s)
            | None -> ()))

let iter t f =
  Oid.Tbl.iter (fun oid e -> Xid.Map.iter (fun x m -> f oid x m) !e) t.by_object

let locked_count t =
  Oid.Tbl.fold (fun _ e acc -> acc + Xid.Map.cardinal !e) t.by_object 0
