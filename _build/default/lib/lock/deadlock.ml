open Ariesrh_types

type t = { edges : Xid.Set.t Xid.Tbl.t }

let create () = { edges = Xid.Tbl.create 64 }

let successors t x =
  match Xid.Tbl.find_opt t.edges x with None -> Xid.Set.empty | Some s -> s

let add_wait t ~waiter ~holder =
  if not (Xid.equal waiter holder) then
    Xid.Tbl.replace t.edges waiter (Xid.Set.add holder (successors t waiter))

let clear_waits t x = Xid.Tbl.remove t.edges x

let remove_txn t x =
  Xid.Tbl.remove t.edges x;
  Xid.Tbl.iter
    (fun w s -> if Xid.Set.mem x s then Xid.Tbl.replace t.edges w (Xid.Set.remove x s))
    (Xid.Tbl.copy t.edges)

let reachable t ~src ~dst =
  let visited = Xid.Tbl.create 16 in
  let rec go x =
    if Xid.equal x dst then true
    else if Xid.Tbl.mem visited x then false
    else begin
      Xid.Tbl.replace visited x ();
      Xid.Set.exists go (successors t x)
    end
  in
  go src

let would_cycle t ~waiter ~holder =
  Xid.equal waiter holder || reachable t ~src:holder ~dst:waiter

let cycle_through t x =
  (* DFS looking for a path x -> ... -> x, returning it if found *)
  let visited = Xid.Tbl.create 16 in
  let rec go path node =
    Xid.Set.fold
      (fun succ acc ->
        match acc with
        | Some _ -> acc
        | None ->
            if Xid.equal succ x then Some (List.rev path)
            else if Xid.Tbl.mem visited succ then None
            else begin
              Xid.Tbl.replace visited succ ();
              go (succ :: path) succ
            end)
      (successors t node) None
  in
  go [ x ] x
