type t = S | X | I

let compatible held requested =
  match (held, requested) with
  | S, S -> true
  | I, I -> true
  | _, _ -> false

let sup a b =
  match (a, b) with
  | S, S -> S
  | I, I -> I
  | _, _ -> X

let covers held requested =
  match (held, requested) with
  | X, _ -> true
  | S, S -> true
  | I, I -> true
  | _, _ -> false

let equal a b = a = b

let pp ppf = function
  | S -> Format.pp_print_char ppf 'S'
  | X -> Format.pp_print_char ppf 'X'
  | I -> Format.pp_print_char ppf 'I'
