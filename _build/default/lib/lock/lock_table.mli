(** Object-granularity lock table.

    Requests are non-blocking: a conflicting request reports the holders
    in the way, and the caller (the workload driver) decides whether to
    wait (recording the edge in {!Deadlock}) or abort. [transfer] moves a
    transaction's lock on an object to another transaction — delegation
    must hand the delegatee the means to commit or roll back the
    delegated updates. *)

open Ariesrh_types

type t

type outcome =
  | Granted
  | Conflict of Xid.t list  (** transactions holding incompatible locks *)

val create : unit -> t

val acquire : ?permit:(Xid.t -> bool) -> t -> Xid.t -> Oid.t -> Mode.t -> outcome
(** Re-acquisition upgrades when no other holder conflicts with the
    upgraded mode. [permit holder] (default: always false) makes an
    otherwise-incompatible holder non-blocking — the hook behind ASSET's
    [permit] primitive. *)

val held : t -> Xid.t -> Oid.t -> Mode.t option
val holders : t -> Oid.t -> (Xid.t * Mode.t) list

val release_all : t -> Xid.t -> unit

val transfer : t -> Oid.t -> from_:Xid.t -> to_:Xid.t -> unit
(** Moves [from_]'s lock on the object to [to_] (merging with any lock
    [to_] already holds). No-op if [from_] holds nothing. *)

val locked_count : t -> int
(** Number of (transaction, object) lock entries, for tests. *)

val iter : t -> (Oid.t -> Xid.t -> Mode.t -> unit) -> unit
(** Visit every (object, holder, mode) entry (validation, debugging). *)
