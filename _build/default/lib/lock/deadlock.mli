(** Waits-for graph with cycle detection.

    The engine is step-interleaved rather than threaded, so blocking is
    represented explicitly: when a lock request conflicts, the driver
    records the wait here and asks whether granting it would close a
    cycle. *)

open Ariesrh_types

type t

val create : unit -> t

val add_wait : t -> waiter:Xid.t -> holder:Xid.t -> unit
val clear_waits : t -> Xid.t -> unit
(** Remove all edges out of a transaction (it stopped waiting). *)

val remove_txn : t -> Xid.t -> unit
(** Remove the transaction entirely (incoming and outgoing edges). *)

val would_cycle : t -> waiter:Xid.t -> holder:Xid.t -> bool
(** Would adding the edge create a cycle? *)

val cycle_through : t -> Xid.t -> Xid.t list option
(** A cycle containing the given transaction, if any: each participant
    listed once, starting with the given transaction. *)
