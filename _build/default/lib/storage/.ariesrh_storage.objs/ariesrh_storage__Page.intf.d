lib/storage/page.mli: Ariesrh_types Format Lsn
