lib/storage/disk.mli: Ariesrh_types Page Page_id
