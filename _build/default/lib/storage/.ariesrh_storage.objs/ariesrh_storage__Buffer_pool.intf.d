lib/storage/buffer_pool.mli: Ariesrh_types Disk Lsn Page Page_id
