lib/storage/disk.ml: Ariesrh_types Array Page Page_id Printf
