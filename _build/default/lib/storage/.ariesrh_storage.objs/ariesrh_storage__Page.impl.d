lib/storage/page.ml: Ariesrh_types Array Format Lsn String
