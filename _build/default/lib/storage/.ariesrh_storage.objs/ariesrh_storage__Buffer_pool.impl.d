lib/storage/buffer_pool.ml: Ariesrh_types Disk Lsn Page Page_id
