open Ariesrh_types

type stats = { mutable page_reads : int; mutable page_writes : int }

type t = { pages : Page.t array; slots_per_page : int; stats : stats }

let create ~pages ~slots_per_page =
  if pages <= 0 then invalid_arg "Disk.create: pages must be positive";
  {
    pages = Array.init pages (fun _ -> Page.create ~slots:slots_per_page);
    slots_per_page;
    stats = { page_reads = 0; page_writes = 0 };
  }

let page_count t = Array.length t.pages
let slots_per_page t = t.slots_per_page

let check t pid =
  let i = Page_id.to_int pid in
  if i >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Disk: page %d out of range" i);
  i

let read_page t pid =
  let i = check t pid in
  t.stats.page_reads <- t.stats.page_reads + 1;
  Page.copy t.pages.(i)

let write_page t pid p =
  let i = check t pid in
  t.stats.page_writes <- t.stats.page_writes + 1;
  t.pages.(i) <- Page.copy p

let stats t = t.stats

let reset_stats t =
  t.stats.page_reads <- 0;
  t.stats.page_writes <- 0
