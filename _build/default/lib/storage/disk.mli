(** Simulated stable storage for data pages.

    Pages written here survive crashes. Reads and writes are counted so
    experiments can report data I/O alongside log I/O. *)

open Ariesrh_types

type stats = { mutable page_reads : int; mutable page_writes : int }

type t

val create : pages:int -> slots_per_page:int -> t
val page_count : t -> int
val slots_per_page : t -> int
val read_page : t -> Page_id.t -> Page.t
(** Returns a private copy; mutating it does not affect the disk. *)

val write_page : t -> Page_id.t -> Page.t -> unit
(** Stores a copy of the given page. *)

val stats : t -> stats
val reset_stats : t -> unit
