open Ariesrh_types

type t = { mutable page_lsn : Lsn.t; values : int array }

let create ~slots =
  if slots <= 0 then invalid_arg "Page.create: slots must be positive";
  { page_lsn = Lsn.nil; values = Array.make slots 0 }

let copy t = { page_lsn = t.page_lsn; values = Array.copy t.values }
let slots t = Array.length t.values
let page_lsn t = t.page_lsn
let set_page_lsn t lsn = t.page_lsn <- lsn
let get t i = t.values.(i)
let set t i v = t.values.(i) <- v

let pp ppf t =
  Format.fprintf ppf "page_lsn=%a [%s]" Lsn.pp t.page_lsn
    (String.concat ";" (Array.to_list (Array.map string_of_int t.values)))
