module Prng = Ariesrh_util.Prng
module Zipf = Ariesrh_util.Zipf
module Lock_table = Ariesrh_lock.Lock_table
module Mode = Ariesrh_lock.Mode
open Ariesrh_types

type spec = {
  n_objects : int;
  n_steps : int;
  max_concurrent : int;
  theta : float;
  p_begin : float;
  p_read : float;
  p_write : float;
  p_add : float;
  p_delegate : float;
  p_savepoint : float;
  p_rollback : float;
  p_commit : float;
  p_abort : float;
  p_checkpoint : float;
  terminate_all : bool;
}

let default =
  {
    n_objects = 64;
    n_steps = 200;
    max_concurrent = 6;
    theta = 0.6;
    p_begin = 0.08;
    p_read = 0.10;
    p_write = 0.25;
    p_add = 0.25;
    p_delegate = 0.12;
    p_savepoint = 0.04;
    p_rollback = 0.03;
    p_commit = 0.10;
    p_abort = 0.05;
    p_checkpoint = 0.02;
    terminate_all = true;
  }

let spec_no_delegation = { default with p_delegate = 0.0 }

(* The generator runs the engine's own lock table over symbolic
   transactions, so a script it emits can never conflict at replay. *)
type state = {
  rng : Prng.t;
  zipf : Zipf.t;
  mutable next_txn : int;
  mutable active : int list;
  locks : Lock_table.t;
  responsible : (int, int list) Hashtbl.t;  (* txn -> objects (Ob_List) *)
  savepoints : (int, int list) Hashtbl.t;  (* txn -> issued tags *)
  mutable next_tag : int;
}

let xid_of t = Xid.of_int (t + 1)

let resp_add st txn obj =
  let cur = Option.value ~default:[] (Hashtbl.find_opt st.responsible txn) in
  if not (List.mem obj cur) then Hashtbl.replace st.responsible txn (obj :: cur)

let resp_remove st txn obj =
  match Hashtbl.find_opt st.responsible txn with
  | None -> ()
  | Some objs ->
      Hashtbl.replace st.responsible txn (List.filter (( <> ) obj) objs)

let try_lock st txn obj mode =
  match Lock_table.acquire st.locks (xid_of txn) (Oid.of_int obj) mode with
  | Lock_table.Granted -> true
  | Lock_table.Conflict _ -> false

let pick_active st =
  match st.active with
  | [] -> None
  | l -> Some (List.nth l (Prng.int st.rng (List.length l)))

let finish_txn st t =
  Lock_table.release_all st.locks (xid_of t);
  st.active <- List.filter (( <> ) t) st.active;
  Hashtbl.remove st.responsible t;
  Hashtbl.remove st.savepoints t

(* try to produce one action of the requested kind; None if infeasible *)
let try_kind st spec kind =
  match kind with
  | `Begin ->
      if List.length st.active >= spec.max_concurrent then None
      else begin
        let t = st.next_txn in
        st.next_txn <- t + 1;
        st.active <- t :: st.active;
        Hashtbl.replace st.responsible t [];
        Some (Script.Begin t)
      end
  | `Read -> (
      match pick_active st with
      | None -> None
      | Some t ->
          let o = Zipf.sample st.zipf st.rng in
          if try_lock st t o Mode.S then Some (Script.Read (t, o)) else None)
  | `Write -> (
      match pick_active st with
      | None -> None
      | Some t ->
          let o = Zipf.sample st.zipf st.rng in
          if try_lock st t o Mode.X then begin
            resp_add st t o;
            Some (Script.Write (t, o, Prng.int st.rng 1000))
          end
          else None)
  | `Add -> (
      match pick_active st with
      | None -> None
      | Some t ->
          let o = Zipf.sample st.zipf st.rng in
          if try_lock st t o Mode.I then begin
            resp_add st t o;
            Some (Script.Add (t, o, 1 + Prng.int st.rng 9))
          end
          else None)
  | `Delegate -> (
      match pick_active st with
      | None -> None
      | Some from_ -> (
          match Hashtbl.find_opt st.responsible from_ with
          | None | Some [] -> None
          | Some objs -> (
              match List.filter (( <> ) from_) st.active with
              | [] -> None
              | others ->
                  let to_ =
                    List.nth others (Prng.int st.rng (List.length others))
                  in
                  let o = List.nth objs (Prng.int st.rng (List.length objs)) in
                  Lock_table.transfer st.locks (Oid.of_int o)
                    ~from_:(xid_of from_) ~to_:(xid_of to_);
                  resp_remove st from_ o;
                  resp_add st to_ o;
                  Some (Script.Delegate (from_, to_, o)))))
  | `Savepoint -> (
      match pick_active st with
      | None -> None
      | Some t ->
          let tag = st.next_tag in
          st.next_tag <- tag + 1;
          let cur = Option.value ~default:[] (Hashtbl.find_opt st.savepoints t) in
          Hashtbl.replace st.savepoints t (tag :: cur);
          Some (Script.Savepoint (t, tag)))
  | `Rollback -> (
      match pick_active st with
      | None -> None
      | Some t -> (
          match Hashtbl.find_opt st.savepoints t with
          | None | Some [] -> None
          | Some tags ->
              let tag = List.nth tags (Prng.int st.rng (List.length tags)) in
              (* locks are retained across a partial rollback, and objects
                 stay in the Ob_List (possibly with empty scopes), so the
                 symbolic state needs no adjustment *)
              Some (Script.Rollback_to (t, tag))))
  | `Commit -> (
      match pick_active st with
      | None -> None
      | Some t ->
          finish_txn st t;
          Some (Script.Commit t))
  | `Abort -> (
      match pick_active st with
      | None -> None
      | Some t ->
          finish_txn st t;
          Some (Script.Abort t))
  | `Checkpoint -> Some Script.Checkpoint

let generate spec ~seed =
  if spec.n_objects <= 0 then invalid_arg "Gen.generate: n_objects";
  let st =
    {
      rng = Prng.create seed;
      zipf = Zipf.create ~n:spec.n_objects ~theta:spec.theta;
      next_txn = 0;
      active = [];
      locks = Lock_table.create ();
      responsible = Hashtbl.create 16;
      savepoints = Hashtbl.create 16;
      next_tag = 0;
    }
  in
  let kinds =
    [|
      (`Begin, spec.p_begin);
      (`Read, spec.p_read);
      (`Write, spec.p_write);
      (`Add, spec.p_add);
      (`Delegate, spec.p_delegate);
      (`Savepoint, spec.p_savepoint);
      (`Rollback, spec.p_rollback);
      (`Commit, spec.p_commit);
      (`Abort, spec.p_abort);
      (`Checkpoint, spec.p_checkpoint);
    |]
  in
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 kinds in
  let pick_kind () =
    let x = Prng.float st.rng total in
    let rec go i acc =
      if i = Array.length kinds - 1 then fst kinds.(i)
      else
        let acc = acc +. snd kinds.(i) in
        if x < acc then fst kinds.(i) else go (i + 1) acc
    in
    go 0 0.0
  in
  let acc = ref [] in
  for _ = 1 to spec.n_steps do
    let rec attempt n =
      if n = 0 then ()
      else
        match try_kind st spec (pick_kind ()) with
        | Some a -> acc := a :: !acc
        | None -> attempt (n - 1)
    in
    attempt 4
  done;
  if spec.terminate_all then
    List.iter
      (fun t ->
        let a = if Prng.bool st.rng then Script.Commit t else Script.Abort t in
        acc := a :: !acc)
      st.active;
  List.rev !acc
