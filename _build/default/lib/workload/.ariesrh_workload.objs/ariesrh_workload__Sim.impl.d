lib/workload/sim.ml: Ariesrh_core Ariesrh_lock Ariesrh_types Ariesrh_util Array Config Db Errors List Lsn Oid Seq Xid
