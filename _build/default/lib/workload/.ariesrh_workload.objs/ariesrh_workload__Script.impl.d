lib/workload/script.ml: Format List Option Printf String
