lib/workload/driver.mli: Ariesrh_core Ariesrh_recovery Config Db Script
