lib/workload/oracle.ml: Array Hashtbl List Script
