lib/workload/sim.mli: Ariesrh_core Db
