lib/workload/oracle.mli: Script
