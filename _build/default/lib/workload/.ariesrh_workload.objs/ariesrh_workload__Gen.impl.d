lib/workload/gen.ml: Ariesrh_lock Ariesrh_types Ariesrh_util Array Hashtbl List Oid Option Script Xid
