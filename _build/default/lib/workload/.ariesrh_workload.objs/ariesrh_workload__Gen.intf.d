lib/workload/gen.mli: Script
