lib/workload/script.mli: Format
