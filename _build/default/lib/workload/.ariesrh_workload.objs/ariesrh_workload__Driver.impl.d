lib/workload/driver.ml: Ariesrh_core Ariesrh_types Config Db Hashtbl List Oid Option Script
