(** Replaying scripts against a live engine. *)

open Ariesrh_core

val run : ?upto:int -> ?on_action:(int -> unit) -> Db.t -> Script.t -> unit
(** Execute the first [upto] actions (default: all). [on_action] runs
    after each executed action with its index — experiment harnesses use
    it to inject checkpoints at chosen intervals. A {!Errors.Conflict}
    here means the generator and engine disagree about locking — a bug,
    so it propagates. *)

val run_to_crash :
  Db.t -> Script.t -> crash_at:int -> Ariesrh_recovery.Report.t
(** Execute the prefix, crash, recover; returns the recovery report. *)

val fresh_db :
  ?impl:Config.delegation_impl -> ?locking:bool -> n_objects:int -> unit -> Db.t
(** A Db sized for scripts over [n_objects] symbolic objects. *)
