(** Random workload generation.

    Scripts are generated against a symbolic lock table so that replaying
    them on the engine (with locking on) never hits a conflict: writes
    require exclusive access, adds share increment locks, and delegation
    transfers lock ownership — the same rules the engine enforces. Every
    prefix of a valid script is valid, which is what makes crash-point
    sweeps and shrinking sound. *)

type spec = {
  n_objects : int;
  n_steps : int;
  max_concurrent : int;
  theta : float;  (** zipf skew for object choice; 0 = uniform *)
  p_begin : float;
  p_read : float;
  p_write : float;
  p_add : float;
  p_delegate : float;
  p_savepoint : float;
  p_rollback : float;  (** partial rollback to a random live savepoint *)
  p_commit : float;
  p_abort : float;
  p_checkpoint : float;
  terminate_all : bool;
      (** append commits/aborts for transactions still running at the
          end, so the no-crash end state is deterministic *)
}

val default : spec
(** 64 objects, 200 steps, up to 6 concurrent transactions, mild skew,
    moderate delegation, [terminate_all = true]. *)

val spec_no_delegation : spec
(** Same mix with [p_delegate = 0] — the "boring" workload used for the
    no-overhead experiments. *)

val generate : spec -> seed:int64 -> Script.t
