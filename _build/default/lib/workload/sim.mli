(** A step-interleaved concurrency simulator.

    Unlike {!Gen}, which emits conflict-free scripts, the simulator
    drives a population of client "threads" that freely collide: a
    blocked lock request parks the client on a waits-for edge; deadlock
    cycles are detected on the spot and broken by aborting the youngest
    participant. This exercises the lock manager, the waits-for graph,
    and delegation's lock transfer under contention — and the final
    state is still checked, because every client records the increments
    it {e successfully committed responsibility for}.

    Clients run closed-loop: each picks a transaction profile, performs
    its operations step by step (yielding between steps), and retries
    from scratch when chosen as a deadlock victim. All updates are
    commutative [Add]s, so the expected final value of every object is
    the sum of committed increments, delegation notwithstanding —
    delegated increments count for the committer. *)

open Ariesrh_core

type outcome = {
  committed : int;  (** transactions committed *)
  aborted : int;  (** deadlock victims (before their retries) *)
  waits : int;  (** times a client parked on a lock *)
  deadlocks : int;  (** cycles broken *)
  delegations : int;
  state_ok : bool;  (** engine state matches the committed-increment sums *)
}

val run :
  ?clients:int ->
  ?txns_per_client:int ->
  ?ops_per_txn:int ->
  ?n_objects:int ->
  ?delegation_rate:float ->
  ?seed:int64 ->
  Db.t ->
  outcome
(** Raises [Invalid_argument] if the database was not created with
    locking enabled. *)
