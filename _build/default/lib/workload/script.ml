type action =
  | Begin of int
  | Read of int * int
  | Write of int * int * int
  | Add of int * int * int
  | Delegate of int * int * int
  | Savepoint of int * int
  | Rollback_to of int * int
  | Commit of int
  | Abort of int
  | Checkpoint

type t = action list

let pp_action ppf = function
  | Begin t -> Format.fprintf ppf "begin t%d" t
  | Read (t, o) -> Format.fprintf ppf "read t%d ob%d" t o
  | Write (t, o, v) -> Format.fprintf ppf "write t%d ob%d %d" t o v
  | Add (t, o, d) -> Format.fprintf ppf "add t%d ob%d %+d" t o d
  | Delegate (a, b, o) -> Format.fprintf ppf "delegate t%d->t%d ob%d" a b o
  | Savepoint (t, tag) -> Format.fprintf ppf "savepoint t%d #%d" t tag
  | Rollback_to (t, tag) -> Format.fprintf ppf "rollback t%d to #%d" t tag
  | Commit t -> Format.fprintf ppf "commit t%d" t
  | Abort t -> Format.fprintf ppf "abort t%d" t
  | Checkpoint -> Format.pp_print_string ppf "checkpoint"

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
    pp_action ppf t

let stats t =
  let b = ref 0
  and r = ref 0
  and w = ref 0
  and a = ref 0
  and d = ref 0
  and c = ref 0
  and ab = ref 0
  and sp = ref 0
  and rb = ref 0
  and ck = ref 0 in
  List.iter
    (function
      | Begin _ -> incr b
      | Read _ -> incr r
      | Write _ -> incr w
      | Add _ -> incr a
      | Delegate _ -> incr d
      | Savepoint _ -> incr sp
      | Rollback_to _ -> incr rb
      | Commit _ -> incr c
      | Abort _ -> incr ab
      | Checkpoint -> incr ck)
    t;
  Printf.sprintf
    "begin=%d read=%d write=%d add=%d delegate=%d savepoint=%d rollback=%d \
     commit=%d abort=%d ckpt=%d"
    !b !r !w !a !d !sp !rb !c !ab !ck

let txns t =
  List.fold_left (fun acc -> function Begin _ -> acc + 1 | _ -> acc) 0 t

let action_to_string = function
  | Begin t -> Printf.sprintf "begin %d" t
  | Read (t, o) -> Printf.sprintf "read %d %d" t o
  | Write (t, o, v) -> Printf.sprintf "write %d %d %d" t o v
  | Add (t, o, d) -> Printf.sprintf "add %d %d %d" t o d
  | Delegate (a, b, o) -> Printf.sprintf "delegate %d %d %d" a b o
  | Savepoint (t, tag) -> Printf.sprintf "savepoint %d %d" t tag
  | Rollback_to (t, tag) -> Printf.sprintf "rollback %d %d" t tag
  | Commit t -> Printf.sprintf "commit %d" t
  | Abort t -> Printf.sprintf "abort %d" t
  | Checkpoint -> "checkpoint"

let to_string t = String.concat "\n" (List.map action_to_string t) ^ "\n"

let action_of_string line =
  let parts = String.split_on_char ' ' (String.trim line) in
  let int s = int_of_string_opt s in
  match parts with
  | [ "begin"; a ] -> Option.map (fun t -> Begin t) (int a)
  | [ "read"; a; b ] -> (
      match (int a, int b) with
      | Some t, Some o -> Some (Read (t, o))
      | _ -> None)
  | [ "write"; a; b; c ] -> (
      match (int a, int b, int c) with
      | Some t, Some o, Some v -> Some (Write (t, o, v))
      | _ -> None)
  | [ "add"; a; b; c ] -> (
      match (int a, int b, int c) with
      | Some t, Some o, Some d -> Some (Add (t, o, d))
      | _ -> None)
  | [ "delegate"; a; b; c ] -> (
      match (int a, int b, int c) with
      | Some f, Some g, Some o -> Some (Delegate (f, g, o))
      | _ -> None)
  | [ "savepoint"; a; b ] -> (
      match (int a, int b) with
      | Some t, Some tag -> Some (Savepoint (t, tag))
      | _ -> None)
  | [ "rollback"; a; b ] -> (
      match (int a, int b) with
      | Some t, Some tag -> Some (Rollback_to (t, tag))
      | _ -> None)
  | [ "commit"; a ] -> Option.map (fun t -> Commit t) (int a)
  | [ "abort"; a ] -> Option.map (fun t -> Abort t) (int a)
  | [ "checkpoint" ] -> Some Checkpoint
  | _ -> None

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (i + 1) acc rest
        else (
          match action_of_string trimmed with
          | Some a -> go (i + 1) (a :: acc) rest
          | None -> Error (Printf.sprintf "line %d: cannot parse %S" i line))
  in
  go 1 [] lines
