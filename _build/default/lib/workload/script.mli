(** Workload scripts: sequences of engine actions over symbolic
    transaction indices, independent of any particular [Db] instance so
    the same script can be replayed against every engine variant and
    against the semantic oracle. *)

type action =
  | Begin of int
  | Read of int * int  (** txn, object *)
  | Write of int * int * int  (** txn, object, value *)
  | Add of int * int * int  (** txn, object, delta *)
  | Delegate of int * int * int  (** from txn, to txn, object *)
  | Savepoint of int * int  (** txn, savepoint tag (unique per txn) *)
  | Rollback_to of int * int  (** txn, savepoint tag *)
  | Commit of int
  | Abort of int
  | Checkpoint

type t = action list

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit

val stats : t -> string
(** One-line summary (counts per action kind). *)

val txns : t -> int
(** Number of distinct transactions begun. *)

val to_string : t -> string
(** Line-based textual form, one action per line — stable across
    versions, suitable for saving a workload to a file and replaying it
    (the CLI's [--save-script]/[--script]). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; the error names the offending line. *)
