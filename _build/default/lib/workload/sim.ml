open Ariesrh_types
open Ariesrh_core
module Prng = Ariesrh_util.Prng
module Deadlock = Ariesrh_lock.Deadlock

type outcome = {
  committed : int;
  aborted : int;
  waits : int;
  deadlocks : int;
  delegations : int;
  state_ok : bool;
}

(* one planned operation of a client transaction; all updates are
   commutative adds, reads provide the S/I contention *)
type op = Add_op of int * int | Read_op of int | Delegate_op

type phase =
  | Idle  (** about to (re)start the current transaction *)
  | Running of { xid : Xid.t; remaining : op list }
  | Blocked of { xid : Xid.t; op : op; remaining : op list }
  | Finished

type client = {
  id : int;
  mutable txns_left : int;
  mutable plan : op list;  (** ops of the current transaction *)
  mutable phase : phase;
}

let plan_txn rng ~ops_per_txn ~n_objects ~delegation_rate =
  let ops =
    List.init ops_per_txn (fun _ ->
        let o = Prng.int rng n_objects in
        if Prng.int rng 100 < 30 then Read_op o
        else Add_op (o, 1 + Prng.int rng 9))
  in
  if Prng.float rng 1.0 < delegation_rate then ops @ [ Delegate_op ] else ops

let run ?(clients = 8) ?(txns_per_client = 50) ?(ops_per_txn = 6)
    ?(n_objects = 32) ?(delegation_rate = 0.2) ?(seed = 42L) db =
  if not (Db.config db).Config.locking then
    invalid_arg "Sim.run: the database must have locking enabled";
  if n_objects > (Db.config db).Config.n_objects then
    invalid_arg "Sim.run: more objects than the database holds";
  let rng = Prng.create seed in
  let graph = Deadlock.create () in
  let committed = ref 0
  and aborted = ref 0
  and waits = ref 0
  and deadlocks = ref 0
  and delegations = ref 0 in
  (* per-operation increments each live transaction is responsible for:
     (object, delta, update lsn) — lsn-level tracking lets the simulator
     exercise operation-granularity delegation too *)
  let pending : (int * int * Lsn.t) list ref Xid.Tbl.t = Xid.Tbl.create 32 in
  let expected = Array.make n_objects 0 in
  let pend_list xid =
    match Xid.Tbl.find_opt pending xid with
    | Some l -> l
    | None ->
        let l = ref [] in
        Xid.Tbl.replace pending xid l;
        l
  in
  let pend_add xid o d lsn = pend_list xid := (o, d, lsn) :: !(pend_list xid) in
  let pend_move ~from_ ~to_ =
    match Xid.Tbl.find_opt pending from_ with
    | None -> ()
    | Some l ->
        pend_list to_ := !l @ !(pend_list to_);
        Xid.Tbl.remove pending from_
  in
  let pend_move_one ~from_ ~to_ lsn =
    match Xid.Tbl.find_opt pending from_ with
    | None -> ()
    | Some l ->
        let moved, kept =
          List.partition (fun (_, _, u) -> Lsn.equal u lsn) !l
        in
        l := kept;
        pend_list to_ := moved @ !(pend_list to_)
  in
  let pend_commit xid =
    (match Xid.Tbl.find_opt pending xid with
    | None -> ()
    | Some l ->
        List.iter (fun (o, d, _) -> expected.(o) <- expected.(o) + d) !l);
    Xid.Tbl.remove pending xid
  in
  let cs =
    Array.init clients (fun id ->
        { id; txns_left = txns_per_client; plan = []; phase = Idle })
  in
  let client_of_xid xid =
    Array.to_seq cs
    |> Seq.find (fun c ->
           match c.phase with
           | Running r -> Xid.equal r.xid xid
           | Blocked b -> Xid.equal b.xid xid
           | Idle | Finished -> false)
  in
  let victimize xid =
    match client_of_xid xid with
    | None -> ()
    | Some c ->
        Db.abort db xid;
        Xid.Tbl.remove pending xid;
        Deadlock.remove_txn graph xid;
        incr aborted;
        c.phase <- Idle (* retries the same plan with a fresh xid *)
  in
  (* execute one op for [xid]; true if it went through *)
  let attempt c xid op =
    match op with
    | Read_op o -> (
        match Db.read db xid (Oid.of_int o) with
        | _ ->
            Deadlock.clear_waits graph xid;
            true
        | exception Errors.Conflict { holders; _ } ->
            incr waits;
            Deadlock.clear_waits graph xid;
            List.iter (fun h -> Deadlock.add_wait graph ~waiter:xid ~holder:h) holders;
            false)
    | Add_op (o, d) -> (
        match Db.add db xid (Oid.of_int o) d with
        | () ->
            Deadlock.clear_waits graph xid;
            pend_add xid o d (Db.last_lsn_of db xid);
            true
        | exception Errors.Conflict { holders; _ } ->
            incr waits;
            Deadlock.clear_waits graph xid;
            List.iter (fun h -> Deadlock.add_wait graph ~waiter:xid ~holder:h) holders;
            false)
    | Delegate_op ->
        (* hand everything to some other running transaction *)
        let targets =
          Array.to_list cs
          |> List.filter_map (fun c' ->
                 if c'.id = c.id then None
                 else
                   match c'.phase with
                   | Running r -> Some r.xid
                   | Blocked b -> Some b.xid
                   | Idle | Finished -> None)
        in
        (match targets with
        | [] -> ()
        | _ -> (
            let to_ = List.nth targets (Prng.int rng (List.length targets)) in
            let ops = !(pend_list xid) in
            let whole_object () =
              match Db.responsible_objects db xid with
              | [] -> ()
              | _ ->
                  Db.delegate_all db ~from_:xid ~to_;
                  pend_move ~from_:xid ~to_;
                  incr delegations
            in
            match ((Db.config db).Config.impl, ops) with
            | (Config.Rh | Config.Lazy), _ :: _ when Prng.bool rng -> (
                (* operation granularity: hand over one random update —
                   unless this client read the object too and upgraded
                   to an exclusive lock, in which case it goes whole *)
                let o, _, lsn = List.nth ops (Prng.int rng (List.length ops)) in
                match Db.delegate_update db ~from_:xid ~to_ (Oid.of_int o) lsn with
                | () ->
                    pend_move_one ~from_:xid ~to_ lsn;
                    incr delegations
                | exception Invalid_argument _ -> whole_object ())
            | _, _ -> whole_object ()));
        true
  in
  let break_deadlock xid =
    match Deadlock.cycle_through graph xid with
    | None -> ()
    | Some cycle ->
        incr deadlocks;
        (* youngest participant dies *)
        let victim =
          List.fold_left
            (fun acc x -> if Xid.to_int x > Xid.to_int acc then x else acc)
            xid cycle
        in
        victimize victim
  in
  let step c =
    match c.phase with
    | Finished -> ()
    | Idle ->
        if c.txns_left = 0 then c.phase <- Finished
        else begin
          if c.plan = [] then
            c.plan <- plan_txn rng ~ops_per_txn ~n_objects ~delegation_rate;
          let xid = Db.begin_txn db in
          c.phase <- Running { xid; remaining = c.plan }
        end
    | Running { xid; remaining = [] } ->
        Db.commit db xid;
        pend_commit xid;
        Deadlock.remove_txn graph xid;
        incr committed;
        c.txns_left <- c.txns_left - 1;
        c.plan <- [];
        c.phase <- Idle
    | Running { xid; remaining = op :: rest } ->
        if attempt c xid op then c.phase <- Running { xid; remaining = rest }
        else begin
          c.phase <- Blocked { xid; op; remaining = rest };
          break_deadlock xid
        end
    | Blocked { xid; op; remaining } ->
        if attempt c xid op then c.phase <- Running { xid; remaining }
        else break_deadlock xid
  in
  let budget = ref (clients * txns_per_client * (ops_per_txn + 4) * 50) in
  let all_done () =
    Array.for_all (fun c -> c.phase = Finished) cs
  in
  while (not (all_done ())) && !budget > 0 do
    decr budget;
    step cs.(Prng.int rng clients)
  done;
  if !budget = 0 then failwith "Sim.run: live-lock (scheduling budget exhausted)";
  let state_ok =
    let ok = ref true in
    for o = 0 to n_objects - 1 do
      if Db.peek db (Oid.of_int o) <> expected.(o) then ok := false
    done;
    (match Db.validate db with Ok () -> () | Error _ -> ok := false);
    !ok
  in
  {
    committed = !committed;
    aborted = !aborted;
    waits = !waits;
    deadlocks = !deadlocks;
    delegations = !delegations;
    state_ok;
  }
