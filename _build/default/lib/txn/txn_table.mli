(** The transaction list (Tr_List, §3.4).

    Holds, per live transaction, its status, the head of its backward
    chain ([last_lsn]), the next record to undo during conventional
    rollback ([undo_next]), and its Ob_List. Entries are removed when the
    transaction's End record is written. *)

open Ariesrh_types

type status =
  | Active
  | Committed  (** commit record written, End not yet *)
  | Rolling_back  (** abort record pending; CLRs being written *)

type info = {
  xid : Xid.t;
  mutable status : status;
  mutable begin_lsn : Lsn.t;
      (** LSN of the begin record (volatile bookkeeping for the log
          truncation horizon; not checkpointed — restart rebuilds its
          own table) *)
  mutable last_lsn : Lsn.t;
  mutable undo_next : Lsn.t;
  mutable ob_list : Ob_list.t;
}

type t

val create : unit -> t

val add : t -> Xid.t -> info
(** Fresh entry, [Active], nil LSNs, empty Ob_List. Raises
    [Invalid_argument] if already present. *)

val restore : t -> Ariesrh_wal.Record.ckpt_txn -> info
(** Re-create an entry from a checkpoint. *)

val find : t -> Xid.t -> info option
val find_exn : t -> Xid.t -> info
val mem : t -> Xid.t -> bool
val remove : t -> Xid.t -> unit
val iter : t -> (info -> unit) -> unit
val fold : t -> init:'a -> f:('a -> info -> 'a) -> 'a
val count : t -> int

val max_xid : t -> int
(** Largest xid ever added (0 if none); survives removals. Used to keep
    xid allocation monotone across entries. *)

val to_ckpt :
  t -> Ariesrh_wal.Record.ckpt_txn list * Ariesrh_wal.Record.ckpt_ob list
(** Snapshot for a fuzzy checkpoint: live transactions and every
    Ob_List entry (with scopes). *)
