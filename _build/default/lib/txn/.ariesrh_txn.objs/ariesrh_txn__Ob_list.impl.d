lib/txn/ob_list.ml: Ariesrh_types Ariesrh_wal Format List Lsn Oid Scope Xid
