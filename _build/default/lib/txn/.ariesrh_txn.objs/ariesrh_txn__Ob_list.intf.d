lib/txn/ob_list.mli: Ariesrh_types Ariesrh_wal Format Lsn Oid Scope Xid
