lib/txn/txn_table.mli: Ariesrh_types Ariesrh_wal Lsn Ob_list Xid
