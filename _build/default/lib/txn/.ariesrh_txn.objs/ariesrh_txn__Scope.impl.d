lib/txn/scope.ml: Ariesrh_types Format Lsn Oid Xid
