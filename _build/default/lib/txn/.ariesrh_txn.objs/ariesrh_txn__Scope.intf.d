lib/txn/scope.mli: Ariesrh_types Format Lsn Oid Xid
