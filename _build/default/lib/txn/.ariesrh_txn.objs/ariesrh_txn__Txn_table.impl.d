lib/txn/txn_table.ml: Ariesrh_types Ariesrh_wal Format Lsn Ob_list Xid
