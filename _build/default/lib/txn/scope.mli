(** Update scopes (§3.4 of the paper).

    A scope [(invoker, ob, first, last)] says: {e the owner of the
    Ob_List entry holding this scope is responsible for every update to
    object [ob] invoked by [invoker] whose LSN lies in [\[first, last\]].}
    Scopes are how ARIES/RH computes ResponsibleTr without touching the
    log.

    Two deliberate deviations from the paper's presentation, both needed
    for correctness (see DESIGN.md):

    - Scopes carry their object. Fig. 8's loser-update test matches on
      invoking transaction only; when an invoker's scope range spans its
      updates to {e other} objects (delegated elsewhere), that test
      undoes the wrong records.
    - [last] is mutable: when an update inside the scope is compensated
      (a CLR is written), the scope is trimmed down past it. Rollback
      proceeds in decreasing LSN order within a scope, so trimming keeps
      the scope exactly equal to its not-yet-undone suffix; checkpoints
      and repeated recoveries then never re-undo compensated updates. *)

open Ariesrh_types

type t = {
  invoker : Xid.t;  (** transaction that invoked the updates *)
  oid : Oid.t;
  first : Lsn.t;
  mutable last : Lsn.t;
}

val make : invoker:Xid.t -> oid:Oid.t -> first:Lsn.t -> last:Lsn.t -> t
val singleton : invoker:Xid.t -> oid:Oid.t -> Lsn.t -> t

val covers : t -> invoker:Xid.t -> oid:Oid.t -> Lsn.t -> bool
(** Does the scope claim the update at this LSN? *)

val is_empty : t -> bool
(** True once trimmed past its beginning. *)

val trim_below : t -> Lsn.t -> unit
(** [trim_below s lsn] shrinks [s.last] to [lsn - 1] if it currently
    reaches [lsn] or beyond. *)

val overlaps : t -> t -> bool
(** LSN ranges intersect (used to form clusters). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
