open Ariesrh_types

type status = Active | Committed | Rolling_back

type info = {
  xid : Xid.t;
  mutable status : status;
  mutable begin_lsn : Lsn.t;
  mutable last_lsn : Lsn.t;
  mutable undo_next : Lsn.t;
  mutable ob_list : Ob_list.t;
}

type t = { tbl : info Xid.Tbl.t; mutable max_xid : int }

let create () = { tbl = Xid.Tbl.create 64; max_xid = 0 }

let note_max t xid = if Xid.to_int xid > t.max_xid then t.max_xid <- Xid.to_int xid

let add t xid =
  if Xid.Tbl.mem t.tbl xid then
    invalid_arg (Format.asprintf "Txn_table.add: %a already present" Xid.pp xid);
  let info =
    {
      xid;
      status = Active;
      begin_lsn = Lsn.nil;
      last_lsn = Lsn.nil;
      undo_next = Lsn.nil;
      ob_list = Ob_list.empty;
    }
  in
  Xid.Tbl.replace t.tbl xid info;
  note_max t xid;
  info

let restore t (ck : Ariesrh_wal.Record.ckpt_txn) =
  let status =
    match ck.ck_status with
    | Ariesrh_wal.Record.Ck_active -> Active
    | Ariesrh_wal.Record.Ck_committed -> Committed
    | Ariesrh_wal.Record.Ck_rolling_back -> Rolling_back
  in
  let info =
    {
      xid = ck.ck_xid;
      status;
      begin_lsn = Lsn.nil;
      last_lsn = ck.ck_last_lsn;
      undo_next = ck.ck_undo_next;
      ob_list = Ob_list.empty;
    }
  in
  Xid.Tbl.replace t.tbl ck.ck_xid info;
  note_max t ck.ck_xid;
  info

let find t xid = Xid.Tbl.find_opt t.tbl xid

let find_exn t xid =
  match find t xid with
  | Some i -> i
  | None ->
      invalid_arg (Format.asprintf "Txn_table: unknown transaction %a" Xid.pp xid)

let mem t xid = Xid.Tbl.mem t.tbl xid
let remove t xid = Xid.Tbl.remove t.tbl xid
let iter t f = Xid.Tbl.iter (fun _ info -> f info) t.tbl
let fold t ~init ~f = Xid.Tbl.fold (fun _ info acc -> f acc info) t.tbl init
let count t = Xid.Tbl.length t.tbl
let max_xid t = t.max_xid

let to_ckpt t =
  fold t ~init:([], []) ~f:(fun (txns, obs) info ->
      let ck_txn =
        {
          Ariesrh_wal.Record.ck_xid = info.xid;
          ck_status =
            (match info.status with
            | Active -> Ariesrh_wal.Record.Ck_active
            | Committed -> Ariesrh_wal.Record.Ck_committed
            | Rolling_back -> Ariesrh_wal.Record.Ck_rolling_back);
          ck_last_lsn = info.last_lsn;
          ck_undo_next = info.undo_next;
        }
      in
      (ck_txn :: txns, Ob_list.to_ckpt ~owner:info.xid info.ob_list @ obs))
