open Ariesrh_types

type t = {
  invoker : Xid.t;
  oid : Oid.t;
  first : Lsn.t;
  mutable last : Lsn.t;
}

let make ~invoker ~oid ~first ~last =
  (* nb: [Lsn.(last < first)] would silently compare against the
     module's [Lsn.first] constant — compare explicitly *)
  if Lsn.compare last first < 0 then invalid_arg "Scope.make: last < first";
  { invoker; oid; first; last }

let singleton ~invoker ~oid lsn = { invoker; oid; first = lsn; last = lsn }

let covers t ~invoker ~oid lsn =
  Xid.equal t.invoker invoker
  && Oid.equal t.oid oid
  && Lsn.(t.first <= lsn)
  && Lsn.(lsn <= t.last)

let is_empty t = Lsn.(t.last < t.first)

let trim_below t lsn =
  if Lsn.(t.last >= lsn) then
    t.last <- (if Lsn.is_nil lsn then Lsn.nil else Lsn.prev lsn)

let overlaps a b = Lsn.(a.first <= b.last) && Lsn.(b.first <= a.last)

let equal a b =
  Xid.equal a.invoker b.invoker
  && Oid.equal a.oid b.oid
  && Lsn.equal a.first b.first
  && Lsn.equal a.last b.last

let pp ppf t =
  Format.fprintf ppf "(%a,%a,%a..%a)" Xid.pp t.invoker Oid.pp t.oid Lsn.pp
    t.first Lsn.pp t.last
