open Ariesrh_types

exception Conflict of { requester : Xid.t; holders : Xid.t list }
exception No_such_txn of Xid.t
exception Txn_not_active of Xid.t
exception Not_responsible of { xid : Xid.t; oid : Oid.t }

let pp_exn ppf = function
  | Conflict { requester; holders } ->
      Format.fprintf ppf "lock conflict: %a blocked by %a" Xid.pp requester
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Xid.pp)
        holders
  | No_such_txn x -> Format.fprintf ppf "no such transaction: %a" Xid.pp x
  | Txn_not_active x -> Format.fprintf ppf "transaction not active: %a" Xid.pp x
  | Not_responsible { xid; oid } ->
      Format.fprintf ppf "%a is not responsible for %a" Xid.pp xid Oid.pp oid
  | e -> Format.pp_print_string ppf (Printexc.to_string e)
