lib/core/db.mli: Ariesrh_recovery Ariesrh_storage Ariesrh_txn Ariesrh_types Ariesrh_wal Config Lsn Oid Page_id Xid
