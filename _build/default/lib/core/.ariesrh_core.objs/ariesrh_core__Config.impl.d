lib/core/config.ml:
