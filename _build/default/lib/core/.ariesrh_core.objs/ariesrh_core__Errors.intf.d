lib/core/errors.mli: Ariesrh_types Format Oid Xid
