lib/core/errors.ml: Ariesrh_types Format Oid Printexc Xid
