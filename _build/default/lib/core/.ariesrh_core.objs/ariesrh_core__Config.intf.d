lib/core/config.mli:
