type t = {
  runtime : Asset.t;
  a : Asset.handle;
  b : Asset.handle;
  mutable active_is_a : bool;
}

let start runtime =
  {
    runtime;
    a = Asset.initiate_empty runtime ~name:"co-a" ();
    b = Asset.initiate_empty runtime ~name:"co-b" ();
    active_is_a = true;
  }

let active t = if t.active_is_a then t.a else t.b
let idle t = if t.active_is_a then t.b else t.a
let active_xid t = Asset.xid (active t)
let idle_xid t = Asset.xid (idle t)

let read t oid = Asset.read t.runtime (active t) oid
let write t oid v = Asset.write t.runtime (active t) oid v
let add t oid d = Asset.add t.runtime (active t) oid d

let switch t =
  Asset.delegate_all t.runtime ~from_:(active t) ~to_:(idle t);
  t.active_is_a <- not t.active_is_a

let commit t =
  Asset.commit t.runtime (active t);
  Asset.abort t.runtime (idle t)

let abort t =
  Asset.abort t.runtime (active t);
  Asset.abort t.runtime (idle t)
