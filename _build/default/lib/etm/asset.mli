(** The ASSET primitives (Biliris et al., SIGMOD '94) over the engine:
    [initiate]/[begin]/[wait]/[commit]/[abort] plus the three extended
    primitives — [delegate], [permit], and [form_dependency] — from which
    §2.2 of the paper synthesizes extended transaction models.

    Execution is synchronous: [begin_run] runs the transaction's body to
    completion in the caller (the paper's code fragments always pair
    [begin] with a [wait], which this collapses). A body signals failure
    by raising; the runtime then aborts its transaction. *)

open Ariesrh_types
open Ariesrh_core

type t
type handle

type dep_kind =
  | Commit_dep
      (** ordering: the dependent may commit only once the other side
          has terminated (ACTA's commit dependency) *)
  | Abort_dep
      (** if the other side aborts, the dependent must abort too (ACTA's
          abort dependency); aborts cascade eagerly *)

exception Dependency_cycle
exception Aborted of string
(** Raised into a caller when a dependency forces an abort. *)

val create : Db.t -> t
val db : t -> Db.t

val initiate : t -> ?name:string -> (handle -> unit) -> handle
(** Create a transaction (begins it in the engine) with a body to run
    later; the handle can immediately receive delegations — the split
    transaction pattern delegates before [begin]. *)

val initiate_empty : t -> ?name:string -> unit -> handle
(** A transaction with no body, driven entirely through primitives. *)

val begin_run : t -> handle -> bool
(** Run the body. [false] if it raised (the transaction is then
    aborted). Also the result later returned by {!wait}. *)

val wait : t -> handle -> bool
(** Completion status of a run body ([true] = ran to completion). *)

val xid : handle -> Xid.t
val name : handle -> string
val is_live : t -> handle -> bool

val read : t -> handle -> Oid.t -> int
val write : t -> handle -> Oid.t -> int -> unit
val add : t -> handle -> Oid.t -> int -> unit

val delegate : t -> from_:handle -> to_:handle -> Oid.t -> unit
val delegate_all : t -> from_:handle -> to_:handle -> unit
val permit : t -> holder:handle -> grantee:handle -> unit

val form_dependency : t -> kind:dep_kind -> dependent:handle -> on:handle -> unit
(** Raises {!Dependency_cycle} if the new edge closes a commit-dependency
    cycle. *)

val commit : t -> handle -> unit
(** Enforces commit dependencies: if a target is still live the runtime
    cannot wait (execution is synchronous), so the transaction is
    aborted and {!Aborted} raised. *)

val abort : t -> handle -> unit
(** Aborts, cascading to abort-dependents (transitively). *)
