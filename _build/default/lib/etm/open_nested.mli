(** Open nested transactions: subtransactions whose results become
    permanent (and visible) as soon as they commit — released early for
    concurrency — with {e compensating actions} registered on the parent
    to semantically undo them if the parent later aborts. One of the
    models §1 of the paper lists as synthesizable from delegation: the
    subtransaction delegates nothing up; it commits its own updates, and
    the recovery coupling to the parent is replaced by compensation. *)

open Ariesrh_types

type t

val start : Asset.t -> t
val handle : t -> Asset.handle
val xid : t -> Xid.t

val read : t -> Oid.t -> int
val write : t -> Oid.t -> int -> unit
val add : t -> Oid.t -> int -> unit
(** The parent's own (closed, normally recoverable) work. *)

val run_sub :
  t ->
  compensate:(Asset.handle -> unit) ->
  (Asset.handle -> unit) ->
  bool
(** [run_sub parent ~compensate body] runs [body] in a subtransaction.
    On success the subtransaction {e commits immediately} — its effects
    are durable and visible to everyone — and [compensate] is stacked on
    the parent. On failure ([body] raises) the subtransaction aborts and
    nothing is registered; returns whether it succeeded. *)

val committed_subs : t -> int

val commit : t -> unit
(** Commit the parent; the compensation stack is discarded. *)

val abort : t -> unit
(** Abort the parent's own work, then run the compensations in reverse
    order, each as its own committed transaction. A compensation that
    raises is skipped (logged as impossible to apply) — compensation
    must be designed to succeed. *)
