
type t = {
  runtime : Asset.t;
  h : Asset.handle;
  mutable comps : (Asset.handle -> unit) list;  (* newest first *)
  mutable committed_subs : int;
}

let start runtime =
  {
    runtime;
    h = Asset.initiate_empty runtime ~name:"open-root" ();
    comps = [];
    committed_subs = 0;
  }

let handle t = t.h
let xid t = Asset.xid t.h
let read t oid = Asset.read t.runtime t.h oid
let write t oid v = Asset.write t.runtime t.h oid v
let add t oid d = Asset.add t.runtime t.h oid d

let run_sub t ~compensate body =
  let sub =
    Asset.initiate_empty t.runtime
      ~name:(Printf.sprintf "open-sub-%d" (t.committed_subs + 1))
      ()
  in
  match body sub with
  | () ->
      Asset.commit t.runtime sub;
      t.comps <- compensate :: t.comps;
      t.committed_subs <- t.committed_subs + 1;
      true
  | exception _ ->
      Asset.abort t.runtime sub;
      false

let committed_subs t = t.committed_subs

let commit t =
  Asset.commit t.runtime t.h;
  t.comps <- []

let abort t =
  Asset.abort t.runtime t.h;
  (* semantic undo of the already-committed subtransactions, newest
     first, each in its own top-level transaction *)
  List.iter
    (fun compensate ->
      let c = Asset.initiate_empty t.runtime ~name:"compensation" () in
      match compensate c with
      | () -> Asset.commit t.runtime c
      | exception _ -> Asset.abort t.runtime c)
    t.comps;
  t.comps <- []
