open Ariesrh_types
open Ariesrh_core

type dep_kind = Commit_dep | Abort_dep

exception Dependency_cycle
exception Aborted of string

type status = Live | Ran of bool | Committed | Aborted_st

type handle = {
  hxid : Xid.t;
  hname : string;
  body : (handle -> unit) option;
  mutable status : status;
}

type t = {
  db : Db.t;
  mutable deps : (handle * dep_kind * handle) list;  (* dependent, kind, on *)
}

let create db = { db; deps = [] }
let db t = t.db

let initiate t ?name body =
  let hxid = Db.begin_txn t.db in
  let hname =
    match name with Some n -> n | None -> Format.asprintf "%a" Xid.pp hxid
  in
  { hxid; hname; body = Some body; status = Live }

let initiate_empty t ?name () =
  let hxid = Db.begin_txn t.db in
  let hname =
    match name with Some n -> n | None -> Format.asprintf "%a" Xid.pp hxid
  in
  { hxid; hname; body = None; status = Live }

let xid h = h.hxid
let name h = h.hname

let is_live t h =
  ignore t;
  h.status = Live || (match h.status with Ran _ -> true | _ -> false)

let terminated h =
  match h.status with Committed | Aborted_st -> true | Live | Ran _ -> false

let rec abort t h =
  if not (terminated h) then begin
    h.status <- Aborted_st;
    if Db.is_active t.db h.hxid then Db.abort t.db h.hxid;
    (* cascade to abort-dependents *)
    List.iter
      (fun (dependent, kind, on) ->
        if kind = Abort_dep && on == h && not (terminated dependent) then
          abort t dependent)
      t.deps
  end

let begin_run t h =
  match h.body with
  | None -> invalid_arg "Asset.begin_run: transaction has no body"
  | Some body -> (
      match body h with
      | () ->
          h.status <- Ran true;
          true
      | exception _ ->
          h.status <- Ran false;
          abort t h;
          h.status <- Aborted_st;
          false)

let wait _t h =
  match h.status with
  | Ran ok -> ok
  | Committed -> true
  | Aborted_st -> false
  | Live -> invalid_arg "Asset.wait: body was never run"

let ensure_live h =
  if terminated h then raise (Aborted (h.hname ^ " already terminated"))

let read t h oid =
  ensure_live h;
  Db.read t.db h.hxid oid

let write t h oid v =
  ensure_live h;
  Db.write t.db h.hxid oid v

let add t h oid d =
  ensure_live h;
  Db.add t.db h.hxid oid d

let delegate t ~from_ ~to_ oid =
  ensure_live from_;
  ensure_live to_;
  Db.delegate t.db ~from_:from_.hxid ~to_:to_.hxid oid

let delegate_all t ~from_ ~to_ =
  ensure_live from_;
  ensure_live to_;
  Db.delegate_all t.db ~from_:from_.hxid ~to_:to_.hxid

let permit t ~holder ~grantee =
  Db.permit t.db ~holder:holder.hxid ~grantee:grantee.hxid

let would_cycle t ~dependent ~on =
  (* commit dependencies define a commit order; a cycle would deadlock *)
  let rec reach src dst seen =
    List.exists
      (fun (d, kind, o) ->
        kind = Commit_dep && d == src
        && (o == dst || ((not (List.memq o seen)) && reach o dst (o :: seen))))
      t.deps
  in
  on == dependent || reach on dependent []

let form_dependency t ~kind ~dependent ~on =
  if kind = Commit_dep && would_cycle t ~dependent ~on then
    raise Dependency_cycle;
  t.deps <- (dependent, kind, on) :: t.deps

let commit t h =
  ensure_live h;
  let blocking =
    List.filter
      (fun (dependent, kind, on) ->
        dependent == h && kind = Commit_dep && not (terminated on))
      t.deps
  in
  (match blocking with
  | [] -> ()
  | (_, _, on) :: _ ->
      abort t h;
      raise
        (Aborted
           (Format.asprintf "%s: commit dependency on %s still pending" h.hname
              on.hname)));
  Db.commit t.db h.hxid;
  h.status <- Committed
