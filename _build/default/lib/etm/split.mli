(** Split/join transactions (Pu, Kaiser & Hutchinson, VLDB '88),
    synthesized with [delegate] exactly as in §2.2.1 of the paper.

    [split] carves a new transaction out of a running one, handing it
    responsibility for a set of objects; the two then commit or abort
    independently. [join] is the converse: one transaction delegates
    everything it is responsible for to another and disappears. *)

open Ariesrh_types

val split : Asset.t -> Asset.handle -> objects:Oid.t list -> Asset.handle
(** [split t t1 ~objects] initiates [t2], delegates each object (which
    [t1] must be responsible for) and returns [t2]. Mirrors the paper's
    [t2 = initiate(f); delegate(self(), t2, ob_set); begin(t2)]. *)

val join : Asset.t -> from_:Asset.handle -> into:Asset.handle -> unit
(** [join t ~from_ ~into] delegates {e all} of [from_]'s objects to
    [into] and commits the now-empty [from_] (the paper's
    [wait(t2); delegate(t2, t1)]). *)
