(** Joint transactions (Chrysanthis & Ramamritham) — §1 of the paper
    lists them among the models delegation synthesizes: a set of
    transactions working as one atomic unit. Members fail together
    (mutual abort dependencies through a group anchor) and commit
    together: at group commit every member delegates everything it is
    responsible for to the anchor, which commits the joint work in one
    decision. *)

open Ariesrh_types

type t

val create : Asset.t -> t
val join : t -> Asset.handle
(** A new member transaction. Raises [Invalid_argument] after the group
    terminated. *)

val members : t -> int
val anchor_xid : t -> Xid.t

val commit : t -> unit
(** Commit the whole unit: all members' responsibility flows to the
    anchor and commits atomically with it. *)

val abort : t -> unit
(** Abort the whole unit (any member's failure can also cascade here
    through the dependency graph). *)
