let split t t1 ~objects =
  let t2 = Asset.initiate_empty t ~name:(Asset.name t1 ^ "-split") () in
  List.iter (fun ob -> Asset.delegate t ~from_:t1 ~to_:t2 ob) objects;
  t2

let join t ~from_ ~into =
  Asset.delegate_all t ~from_ ~to_:into;
  Asset.commit t from_
