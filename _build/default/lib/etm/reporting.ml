open Ariesrh_core

type t = { runtime : Asset.t; h : Asset.handle; mutable reports : int }

let start runtime =
  { runtime; h = Asset.initiate_empty runtime ~name:"reporter" (); reports = 0 }

let xid t = Asset.xid t.h
let read t oid = Asset.read t.runtime t.h oid
let write t oid v = Asset.write t.runtime t.h oid v
let add t oid d = Asset.add t.runtime t.h oid d

let report t =
  let db = Asset.db t.runtime in
  let objects = Db.responsible_objects db (Asset.xid t.h) in
  let n = List.length objects in
  if n > 0 then begin
    t.reports <- t.reports + 1;
    let sink =
      Asset.initiate_empty t.runtime
        ~name:(Printf.sprintf "report-%d" t.reports)
        ()
    in
    Asset.delegate_all t.runtime ~from_:t.h ~to_:sink;
    Asset.commit t.runtime sink
  end;
  n

let finish t = Asset.commit t.runtime t.h
let cancel t = Asset.abort t.runtime t.h
