type t = { runtime : Asset.t; h : Asset.handle; parent : t option }

let start runtime =
  { runtime; h = Asset.initiate_empty runtime ~name:"root" (); parent = None }

let handle t = t.h
let xid t = Asset.xid t.h
let read t oid = Asset.read t.runtime t.h oid
let write t oid v = Asset.write t.runtime t.h oid v
let add t oid d = Asset.add t.runtime t.h oid d

let run_sub parent body =
  let child_h =
    Asset.initiate_empty parent.runtime ~name:(Asset.name parent.h ^ "/sub") ()
  in
  let child = { runtime = parent.runtime; h = child_h; parent = Some parent } in
  (* a subtransaction may access objects held anywhere up its ancestor
     chain without conflicting *)
  let rec grant = function
    | None -> ()
    | Some ancestor ->
        Asset.permit parent.runtime ~holder:ancestor.h ~grantee:child_h;
        grant ancestor.parent
  in
  grant (Some parent);
  match body child with
  | () ->
      (* inheritance: everything the child is responsible for passes to
         the parent at child commit *)
      Asset.delegate_all parent.runtime ~from_:child_h ~to_:parent.h;
      Asset.commit parent.runtime child_h;
      true
  | exception _ ->
      Asset.abort parent.runtime child_h;
      false

let commit_root t =
  match t.parent with
  | Some _ -> invalid_arg "Nested.commit_root: not a root transaction"
  | None -> Asset.commit t.runtime t.h

let abort t = Asset.abort t.runtime t.h
