(** Nested transactions (Moss '81), synthesized per §2.2.2: a committing
    subtransaction delegates all its changes to its parent — the
    "inheritance" of nested transactions is delegation at child commit —
    while an aborting subtransaction discards them without dooming the
    parent. Effects become permanent only at root commit. *)

open Ariesrh_types

type t
(** A node in the transaction tree (root or subtransaction). *)

val start : Asset.t -> t
(** A new root (top-level) transaction. *)

val handle : t -> Asset.handle
val xid : t -> Xid.t

val read : t -> Oid.t -> int
val write : t -> Oid.t -> int -> unit
val add : t -> Oid.t -> int -> unit

val run_sub : t -> (t -> unit) -> bool
(** [run_sub parent body] runs a subtransaction: it may access its
    ancestors' objects without conflict (realized with [permit], as
    ASSET prescribes). If [body] returns, the child's changes are
    delegated to [parent] and the child commits — [true]. If [body]
    raises, the child aborts alone — [false], and the parent continues. *)

val commit_root : t -> unit
(** Raises [Invalid_argument] on a subtransaction. *)

val abort : t -> unit
