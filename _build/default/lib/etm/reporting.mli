(** Reporting transactions (Chrysanthis & Ramamritham): a long-running
    transaction that periodically {e reports} — makes its results so far
    permanent and visible — by delegating its current objects to an
    ephemeral transaction that immediately commits them. The reporter
    keeps running and may later abort without taking back what it has
    already reported. *)

open Ariesrh_types

type t

val start : Asset.t -> t
val xid : t -> Xid.t
val read : t -> Oid.t -> int
val write : t -> Oid.t -> int -> unit
val add : t -> Oid.t -> int -> unit

val report : t -> int
(** Delegate every object currently in the reporter's Ob_List to a fresh
    transaction and commit it. Returns how many objects were reported. *)

val finish : t -> unit
(** Final report and commit of the reporter itself. *)

val cancel : t -> unit
(** Abort the reporter. Already-reported results stay committed. *)
