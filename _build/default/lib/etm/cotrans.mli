(** Co-transactions (Chrysanthis & Ramamritham): two cooperating
    transactions that pass control — and, with it, responsibility for
    the shared state — back and forth. At each hand-off the active side
    delegates everything it is responsible for to the other, so whichever
    side ultimately commits carries the whole joint computation, and a
    mid-flight abort of the idle side costs nothing. *)

open Ariesrh_types

type t

val start : Asset.t -> t
val active_xid : t -> Xid.t
val idle_xid : t -> Xid.t

val read : t -> Oid.t -> int
val write : t -> Oid.t -> int -> unit
val add : t -> Oid.t -> int -> unit
(** Operations run on the currently active side. *)

val switch : t -> unit
(** Hand control (and all responsibility) to the other side. *)

val commit : t -> unit
(** The active side commits (carrying all delegated work); the idle side
    is closed with an abort, which by then is responsible for nothing. *)

val abort : t -> unit
(** Abort both sides: the whole cooperative computation is undone. *)
