lib/etm/open_nested.mli: Ariesrh_types Asset Oid Xid
