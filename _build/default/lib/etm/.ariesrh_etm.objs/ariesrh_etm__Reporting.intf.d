lib/etm/reporting.mli: Ariesrh_types Asset Oid Xid
