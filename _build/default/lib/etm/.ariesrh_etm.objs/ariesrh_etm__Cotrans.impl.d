lib/etm/cotrans.ml: Asset
