lib/etm/open_nested.ml: Asset List Printf
