lib/etm/asset.mli: Ariesrh_core Ariesrh_types Db Oid Xid
