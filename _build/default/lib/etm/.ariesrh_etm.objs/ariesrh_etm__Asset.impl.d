lib/etm/asset.ml: Ariesrh_core Ariesrh_types Db Format List Xid
