lib/etm/cotrans.mli: Ariesrh_types Asset Oid Xid
