lib/etm/joint.ml: Asset List Printf
