lib/etm/reporting.ml: Ariesrh_core Asset Db List Printf
