lib/etm/split.ml: Asset List
