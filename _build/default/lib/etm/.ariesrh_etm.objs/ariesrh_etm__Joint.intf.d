lib/etm/joint.mli: Ariesrh_types Asset Xid
