lib/etm/nested.ml: Asset
