lib/etm/split.mli: Ariesrh_types Asset Oid
