lib/etm/nested.mli: Ariesrh_types Asset Oid Xid
