type t = {
  runtime : Asset.t;
  anchor : Asset.handle;
  mutable member_list : Asset.handle list;
  mutable terminated : bool;
}

let create runtime =
  {
    runtime;
    anchor = Asset.initiate_empty runtime ~name:"joint-anchor" ();
    member_list = [];
    terminated = false;
  }

let join t =
  if t.terminated then invalid_arg "Joint.join: group already terminated";
  let m =
    Asset.initiate_empty t.runtime
      ~name:(Printf.sprintf "joint-%d" (List.length t.member_list + 1))
      ()
  in
  (* fail together: aborts cascade through the anchor in both directions *)
  Asset.form_dependency t.runtime ~kind:Asset.Abort_dep ~dependent:m
    ~on:t.anchor;
  Asset.form_dependency t.runtime ~kind:Asset.Abort_dep ~dependent:t.anchor
    ~on:m;
  t.member_list <- m :: t.member_list;
  m

let members t = List.length t.member_list
let anchor_xid t = Asset.xid t.anchor

let commit t =
  if t.terminated then invalid_arg "Joint.commit: group already terminated";
  t.terminated <- true;
  (* the whole unit's responsibility converges on the anchor, which
     makes the single commit decision *)
  List.iter
    (fun m -> Asset.delegate_all t.runtime ~from_:m ~to_:t.anchor)
    t.member_list;
  Asset.commit t.runtime t.anchor;
  List.iter (fun m -> Asset.commit t.runtime m) t.member_list

let abort t =
  if not t.terminated then begin
    t.terminated <- true;
    Asset.abort t.runtime t.anchor
    (* members cascade via the dependency graph *)
  end
