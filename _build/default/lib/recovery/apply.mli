(** Applying logged operations to pages: redo, and inversion for undo. *)

open Ariesrh_types
open Ariesrh_wal

val inverse : Record.op -> Record.op
(** [inverse (Set {before; after}) = Set {before = after; after = before}];
    [inverse (Add d) = Add (-d)]. The inverse is itself redoable. *)

val run_op : Ariesrh_storage.Page.t -> slot:int -> Record.op -> unit
(** Apply the operation to the slot ([Set] writes [after]). *)

val redo : Env.t -> Lsn.t -> Record.update -> bool
(** ARIES redo step: apply iff the page LSN is older than the record's
    LSN; returns whether it applied. *)

val force : Env.t -> Lsn.t -> Record.update -> unit
(** Apply unconditionally, stamping the page with the given LSN (used
    during normal processing and for undo, where the applied LSN is the
    CLR's). *)
