lib/recovery/aries.ml: Apply Ariesrh_txn Ariesrh_types Ariesrh_util Ariesrh_wal Env Forward Hashtbl List Log_stats Log_store Lsn Record Report Txn_table Xid
