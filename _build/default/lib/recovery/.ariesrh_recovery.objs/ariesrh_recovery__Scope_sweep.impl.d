lib/recovery/scope_sweep.ml: Apply Ariesrh_txn Ariesrh_types Ariesrh_util Ariesrh_wal Env List Log_store Lsn Record Xid
