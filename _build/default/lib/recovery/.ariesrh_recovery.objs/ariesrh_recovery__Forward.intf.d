lib/recovery/forward.mli: Ariesrh_txn Ariesrh_types Env Txn_table Xid
