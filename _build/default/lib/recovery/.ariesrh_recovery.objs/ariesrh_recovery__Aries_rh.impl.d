lib/recovery/aries_rh.ml: Ariesrh_txn Ariesrh_types Ariesrh_wal Env Forward List Log_stats Log_store Lsn Ob_list Record Report Scope_sweep Trace Txn_table Xid
