lib/recovery/trace.mli: Logs
