lib/recovery/env.ml: Ariesrh_storage Ariesrh_types Ariesrh_wal Oid Page_id
