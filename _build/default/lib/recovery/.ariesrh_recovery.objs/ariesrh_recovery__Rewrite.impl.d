lib/recovery/rewrite.ml: Ariesrh_txn Ariesrh_types Ariesrh_wal Env Hashtbl Log_store Lsn Oid Record Txn_table Xid
