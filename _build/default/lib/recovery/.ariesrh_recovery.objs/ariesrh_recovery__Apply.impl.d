lib/recovery/apply.ml: Ariesrh_storage Ariesrh_wal Env Record
