lib/recovery/report.mli: Ariesrh_types Ariesrh_wal Format Xid
