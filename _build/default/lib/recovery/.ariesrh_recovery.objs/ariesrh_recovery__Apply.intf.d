lib/recovery/apply.mli: Ariesrh_storage Ariesrh_types Ariesrh_wal Env Lsn Record
