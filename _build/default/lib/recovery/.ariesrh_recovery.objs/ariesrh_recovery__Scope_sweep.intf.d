lib/recovery/scope_sweep.mli: Ariesrh_txn Ariesrh_types Ariesrh_wal Env Lsn Record Xid
