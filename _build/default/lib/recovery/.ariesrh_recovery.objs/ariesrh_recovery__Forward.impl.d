lib/recovery/forward.ml: Apply Ariesrh_txn Ariesrh_types Ariesrh_wal Env List Log_store Lsn Ob_list Page_id Record Scope Txn_table Xid
