lib/recovery/env.mli: Ariesrh_storage Ariesrh_types Ariesrh_wal Oid Page_id
