lib/recovery/rewrite.mli: Ariesrh_txn Ariesrh_types Env Lsn Oid Txn_table Xid
