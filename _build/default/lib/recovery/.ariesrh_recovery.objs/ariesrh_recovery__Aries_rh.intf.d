lib/recovery/aries_rh.mli: Env Forward Report
