lib/recovery/report.ml: Ariesrh_types Ariesrh_wal Format Xid
