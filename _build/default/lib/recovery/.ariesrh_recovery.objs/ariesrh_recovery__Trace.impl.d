lib/recovery/trace.ml: Logs
