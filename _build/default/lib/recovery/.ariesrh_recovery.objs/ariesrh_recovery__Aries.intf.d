lib/recovery/aries.mli: Env Forward Report
