(** The cluster-based backward sweep of Fig. 8.

    Given the loser scopes (each tagged with the {e owner}: the loser
    transaction responsible for it), the sweep visits the log strictly
    backwards, examining records only inside {e clusters} — maximal sets
    of overlapping loser scopes — and jumping over the gaps between
    clusters. Every update covered by a live scope of a matching invoker
    and object is undone through the [on_undo] callback, and the scope is
    trimmed below the undone LSN so it is never undone again.

    This one function implements both normal-processing abort (§3.5: the
    scopes of a single transaction) and the restart backward pass (§3.6.2:
    the scopes of every loser). *)

open Ariesrh_types
open Ariesrh_wal

type stats = {
  mutable examined : int;  (** records read inside clusters *)
  mutable skipped : int;  (** records jumped over between clusters *)
  mutable clusters : int;
  mutable undone : int;
}

val sweep :
  ?floor:Lsn.t ->
  Env.t ->
  scopes:(Xid.t * Ariesrh_txn.Scope.t) list ->
  on_undo:
    (owner:Xid.t ->
    invoker:Xid.t ->
    undone:Lsn.t ->
    undo_next:Lsn.t ->
    Record.update ->
    Lsn.t) ->
  stats
(** [on_undo] receives the {e inverse} update; it must append the CLR to
    the log (on [owner]'s backward chain) and return the CLR's LSN — the
    sweep then applies the inverse to the page stamped with that LSN.
    Empty scopes in the input are ignored.

    [floor] (default [Lsn.nil]) stops the sweep: records at or below it
    are neither examined nor undone. This is partial rollback — undoing
    a transaction back to a savepoint undoes only the scope suffixes
    above the savepoint's LSN, and the per-undo scope trimming keeps the
    remaining scopes exact. *)

val sweep_naive :
  Env.t ->
  scopes:(Xid.t * Ariesrh_txn.Scope.t) list ->
  on_undo:
    (owner:Xid.t ->
    invoker:Xid.t ->
    undone:Lsn.t ->
    undo_next:Lsn.t ->
    Record.update ->
    Lsn.t) ->
  stats
(** The strawman §3.6.2 rejects: examine {e every} record from the
    newest loser-scope end down to the oldest loser-scope beginning,
    with no cluster jumps. Undo decisions are identical to {!sweep};
    only the visit pattern differs. Exists for the ablation experiment
    that measures what cluster skipping buys. *)
