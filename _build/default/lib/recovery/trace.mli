(** Recovery tracing. Applications that want to watch restart recovery
    set this source's level to [Debug] and install a [Logs] reporter. *)

val src : Logs.src

module Log : Logs.LOG
