(** The eager history-rewriting baseline (§3.1–3.2, Fig. 1).

    Eager delegation physically rewrites the log at the moment of each
    [delegate]: every record of the delegator on the delegated object is
    re-attributed to the delegatee ([setTransID]) {e and} moved from the
    delegator's backward chain to the delegatee's (the chain surgery the
    paper notes is required for recovery to remain correct). After eager
    delegation the log contains no delegate records, and conventional
    ARIES recovery applies unchanged — at the price of random mid-log
    reads and in-place writes that ARIES/RH avoids entirely. *)

open Ariesrh_types
open Ariesrh_txn

val eager_delegate :
  Env.t ->
  tor_info:Txn_table.info ->
  tee_info:Txn_table.info ->
  Oid.t ->
  int
(** Perform the surgery; maintains both transactions' [last_lsn] chain
    heads. Returns the number of in-place record rewrites performed. *)

val attribute_only : Env.t -> tor:Xid.t -> tee:Xid.t -> Oid.t -> from:Lsn.t -> int
(** The {e literal} Fig. 1 loop: walk the delegator's backward chain from
    [from], re-attributing matching update records, without chain
    surgery. Kept for the figure reproductions; not a correct
    implementation on its own (the paper's point). Returns the number of
    records re-attributed. *)
