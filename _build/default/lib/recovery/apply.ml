open Ariesrh_wal

let inverse = function
  | Record.Set { before; after } -> Record.Set { before = after; after = before }
  | Record.Add d -> Record.Add (-d)

let run_op page ~slot = function
  | Record.Set { after; _ } -> Ariesrh_storage.Page.set page slot after
  | Record.Add d ->
      Ariesrh_storage.Page.set page slot (Ariesrh_storage.Page.get page slot + d)

let redo (env : Env.t) lsn (u : Record.update) =
  let _page_id, slot = env.place u.oid in
  Ariesrh_storage.Buffer_pool.apply_if_newer env.pool u.page ~lsn (fun page ->
      run_op page ~slot u.op)

let force (env : Env.t) lsn (u : Record.update) =
  let _page_id, slot = env.place u.oid in
  Ariesrh_storage.Buffer_pool.apply env.pool u.page ~lsn (fun page ->
      run_op page ~slot u.op)
