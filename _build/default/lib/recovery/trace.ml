(* Logs source for recovery tracing. Enable with
   [Logs.Src.set_level Ariesrh_recovery.Trace.src (Some Logs.Debug)]. *)

let src = Logs.Src.create "ariesrh.recovery" ~doc:"ARIES/RH restart recovery"

module Log = (val Logs.src_log src : Logs.LOG)
