(** The pieces of the database that recovery algorithms operate on. *)

open Ariesrh_types

type t = {
  log : Ariesrh_wal.Log_store.t;
  pool : Ariesrh_storage.Buffer_pool.t;
  place : Oid.t -> Page_id.t * int;  (** object -> (page, slot) *)
}

val make :
  log:Ariesrh_wal.Log_store.t ->
  pool:Ariesrh_storage.Buffer_pool.t ->
  place:(Oid.t -> Page_id.t * int) ->
  t
