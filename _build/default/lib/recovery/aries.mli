(** Conventional ARIES restart recovery (§3.3): forward pass, then undo
    by following each loser's backward chain in globally decreasing LSN
    order. Supports logs {e without} delegate records only; ARIES/RH
    reduces to this when delegation is unused, which test suites verify. *)

val recover : ?passes:Forward.passes -> Env.t -> Report.t
(** Raises [Failure] if the log contains a delegate record. *)
