(** ARIES/RH restart recovery (§3.6): forward pass rebuilding scopes,
    then the cluster-based backward pass undoing exactly the updates that
    were ultimately delegated to loser transactions. The log is never
    rewritten; history is {e interpreted} according to the logged
    delegations. *)

exception Interrupted
(** Raised by {!recover} when its [fuel] runs out. *)

val recover : ?passes:Forward.passes -> ?fuel:int -> Env.t -> Report.t
(** Run full restart recovery and terminate every loser (CLRs,
    abort/end records, flushed). Afterwards the system state reflects
    every winner update and no loser update, per the paper's undo/redo
    properties (§4.1).

    [passes] selects the forward-pass organisation (default
    {!Forward.Merged}).

    [fuel] is a fault-injection hook: after that many CLRs the backward
    pass stops and {!Interrupted} is raised with the log flushed — the
    observable state of a crash in the middle of recovery. Tests use it
    to verify that re-running recovery from scratch is idempotent. *)

val recover_naive_sweep : Env.t -> Report.t
(** Ablation: same recovery decisions, but the backward pass scans every
    record between the newest and oldest loser scope instead of jumping
    between clusters ({!Scope_sweep.sweep_naive}). *)

val recover_physical : Env.t -> Report.t
(** The "lazy rewriting" baseline of §3.2: identical decisions, but the
    backward pass additionally performs the physical history rewrite it
    implies — attributing each delegated loser update to its responsible
    transaction in place, plus the matching backward-chain pointer patch
    — so the log I/O cost of actually rewriting history during recovery
    can be measured. *)
