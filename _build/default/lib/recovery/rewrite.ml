open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn

(* Only live update records move. A compensated update is dead history:
   moving it without its CLR would make the delegatee undo it again, and
   moving the CLR would carry an undo_next pointer into the delegator's
   chain. Both stay put; the delegator's own chain walk skips them. The
   walk sees CLRs before the updates they compensate (they are newer),
   so a set of compensated LSNs collected on the way down suffices. *)
let moves_with record tor oid ~compensated ~at =
  match record.Record.xid with
  | Some w when Xid.equal w tor -> (
      match record.Record.body with
      | Record.Update u ->
          Oid.equal u.oid oid && not (Hashtbl.mem compensated (Lsn.to_int at))
      | _ -> false)
  | _ -> false

let eager_delegate (env : Env.t) ~tor_info ~tee_info oid =
  let log = env.Env.log in
  let tor = tor_info.Txn_table.xid and tee = tee_info.Txn_table.xid in
  let rewrites = ref 0 in
  let patch lsn record =
    Log_store.rewrite log lsn record;
    incr rewrites
  in
  (* most recent record retained on the delegator's chain, whose pointer
     must be patched when the record below it moves away *)
  let succ_tor : (Lsn.t * Record.t) option ref = ref None in
  (* lowest-LSN record visited so far on the delegatee's chain; the next
     insertion happens directly below it *)
  let tee_succ : (Lsn.t * Record.t) option ref = ref None in
  (* advance the delegatee-side cursor until the position below it is < k *)
  let rec advance_tee k =
    let below =
      match !tee_succ with
      | None -> tee_info.Txn_table.last_lsn
      | Some (_, r) -> Record.prev_for r tee
    in
    if (not (Lsn.is_nil below)) && Lsn.(below > k) then begin
      tee_succ := Some (below, Log_store.read log below);
      advance_tee k
    end
  in
  let compensated = Hashtbl.create 8 in
  let k = ref tor_info.Txn_table.last_lsn in
  while not (Lsn.is_nil !k) do
    let record = Log_store.read log !k in
    let next = Record.prev_for record tor in
    (match record.Record.body with
    | Record.Clr { undone; _ } ->
        Hashtbl.replace compensated (Lsn.to_int undone) ()
    | _ -> ());
    if moves_with record tor oid ~compensated ~at:!k then begin
      (* detach from the delegator's chain *)
      (match !succ_tor with
      | None -> tor_info.Txn_table.last_lsn <- next
      | Some (sl, sr) ->
          let sr' = Record.set_prev_for sr tor next in
          patch sl sr';
          succ_tor := Some (sl, sr'));
      (* splice into the delegatee's chain, keeping it LSN-ordered *)
      advance_tee !k;
      let below =
        match !tee_succ with
        | None -> tee_info.Txn_table.last_lsn
        | Some (_, r) -> Record.prev_for r tee
      in
      let moved = Record.set_prev_for (Record.set_writer record tee) tee below in
      patch !k moved;
      (match !tee_succ with
      | None -> tee_info.Txn_table.last_lsn <- !k
      | Some (sl, sr) -> patch sl (Record.set_prev_for sr tee !k));
      tee_succ := Some (!k, moved)
    end
    else succ_tor := Some (!k, record);
    k := next
  done;
  !rewrites

let attribute_only (env : Env.t) ~tor ~tee oid ~from =
  let log = env.Env.log in
  let count = ref 0 in
  let k = ref from in
  while not (Lsn.is_nil !k) do
    let record = Log_store.read log !k in
    (match (record.Record.xid, record.Record.body) with
    | Some w, Record.Update u when Xid.equal w tor && Oid.equal u.oid oid ->
        Log_store.rewrite log !k (Record.set_writer record tee);
        incr count
    | _ -> ());
    k :=
      (match record.Record.xid with
      | Some w when Xid.equal w tor -> Record.prev_for record tor
      | _ -> if Lsn.equal !k Lsn.first then Lsn.nil else Lsn.prev !k)
  done;
  !count
