(** Zipfian distribution sampler over [\[0, n)].

    Used by workload generators to create skewed object access patterns,
    the common case in transaction-processing benchmarks. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over [n] items with skew
    [theta] (0.0 = uniform; typical skew 0.99). Raises [Invalid_argument]
    if [n <= 0] or [theta < 0.]. *)

val sample : t -> Prng.t -> int
(** Draw an item; item 0 is the most popular. *)

val n : t -> int
