lib/util/heap.mli:
