lib/util/prng.mli:
