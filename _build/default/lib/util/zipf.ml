(* Inverse-CDF sampling over a precomputed cumulative table. Exact (no
   approximation); fine for the n <= ~1e6 range used in experiments. *)

type t = { n : int; cdf : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0. then invalid_arg "Zipf.create: theta must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* binary search for first index with cdf >= u *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (t.n - 1)

let n t = t.n
