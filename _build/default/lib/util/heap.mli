(** Imperative binary max-heap with a caller-supplied ordering.

    The ARIES/RH backward pass keeps the outstanding loser scopes in a
    priority queue ordered by the right end of each scope (§3.6.2); this
    is that queue. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] makes an empty heap. [leq a b] must hold iff [a] has
    lower-or-equal priority than [b]; [pop] returns a maximal element. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Maximal element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return a maximal element. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order (heap unchanged). *)
