(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in workloads, tests, and benchmarks flows through this
    module so that every experiment is reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for parallel streams). *)
