(** The simulated stable log.

    Records are appended to a volatile tail and become durable when
    flushed; a {!crash} discards the unflushed tail, exactly the failure
    model the WAL protocol assumes. LSNs are dense (the n-th record ever
    appended has LSN n), so recovery's "K <- K - 1" sweep from the paper's
    Fig. 1/Fig. 8 maps directly onto {!read}.

    Records are held encoded; {!read} decodes (and verifies the checksum
    of) the stored bytes, so every recovery run exercises the codec.

    In-place {!rewrite} exists solely for the eager/lazy
    history-rewriting baselines of §3.1–3.2; ARIES/RH never calls it. *)

open Ariesrh_types

type t

val create : ?page_size:int -> unit -> t
(** [page_size] (bytes, default 4096) governs the I/O cost model; see
    {!Log_stats}. *)

val stats : t -> Log_stats.t
val head : t -> Lsn.t
(** LSN of the most recently appended record; [Lsn.nil] when empty. *)

val durable : t -> Lsn.t
(** LSN up to which the log is flushed; [Lsn.nil] when nothing is. *)

val append : t -> Record.t -> Lsn.t
val flush : t -> upto:Lsn.t -> unit
(** No-op if already durable up to [upto]. Clamped to [head]. *)

val crash : t -> unit
(** Discard the unflushed tail. The stable prefix survives. *)

val read : t -> Lsn.t -> Record.t
(** Raises [Invalid_argument] for [Lsn.nil] or beyond [head]. Reads
    above [durable] come from the in-memory tail and cost nothing. *)

val rewrite : t -> Lsn.t -> Record.t -> unit
(** Replace the record at an LSN (history surgery, baselines only).
    Charged as a page fetch + page write when the record is stable. *)

val iter_forward :
  ?upto:Lsn.t -> t -> from:Lsn.t -> (Lsn.t -> Record.t -> unit) -> unit
(** Sequential sweep from [from] (or [Lsn.first] if nil) to [upto]
    (default: [head]). *)

val iter_backward : t -> from:Lsn.t -> (Lsn.t -> Record.t -> unit) -> unit
(** Sequential sweep from [from] (or [head] if nil) down to [Lsn.first]. *)

val length : t -> int
(** Total records (stable + tail). *)

val truncate : t -> below:Lsn.t -> int
(** [truncate t ~below] reclaims every record with LSN strictly below
    [below]; returns how many were discarded. LSNs are never renumbered;
    reading a reclaimed LSN raises. Requires a completed checkpoint with
    [master >= below] (restart must never need the reclaimed prefix) and
    [below <= durable]. *)

val truncated_below : t -> Lsn.t
(** First retained LSN ([Lsn.first] if nothing was ever truncated). *)

val master : t -> Lsn.t
(** The master record: LSN of the end record of the last complete
    checkpoint, where restart recovery begins. [Lsn.nil] if no
    checkpoint ever completed. Stable: survives {!crash}. *)

val set_master : t -> Lsn.t -> unit
(** Raises [Invalid_argument] unless the LSN is durable — the WAL rule
    for the master record itself. *)
