lib/wal/log_stats.mli: Format
