lib/wal/record.ml: Ariesrh_types Buffer Char Format Int64 List Lsn Oid Page_id Printf String Xid
