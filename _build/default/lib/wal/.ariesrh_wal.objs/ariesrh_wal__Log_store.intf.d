lib/wal/log_store.mli: Ariesrh_types Log_stats Lsn Record
