lib/wal/record.mli: Ariesrh_types Format Lsn Oid Page_id Xid
