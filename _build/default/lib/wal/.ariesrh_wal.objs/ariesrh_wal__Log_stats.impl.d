lib/wal/log_stats.ml: Format
