lib/wal/log_store.ml: Ariesrh_types Array Log_stats Lsn Printf Record String
