(** Transaction identifiers. *)

type t

val of_int : int -> t
(** Raises [Invalid_argument] on non-positive values: xids start at 1. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
