type t = int

let of_int i =
  if i <= 0 then invalid_arg "Xid.of_int: xids are positive";
  i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "t%d" t

module Key = struct
  type nonrec t = t

  let compare = compare
  let equal = equal
  let hash = hash
end

module Set = Set.Make (Key)
module Map = Map.Make (Key)
module Tbl = Hashtbl.Make (Key)
