(** Page identifiers for the simulated disk. *)

type t

val of_int : int -> t
val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
