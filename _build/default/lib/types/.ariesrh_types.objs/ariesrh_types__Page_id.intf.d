lib/types/page_id.mli: Format Hashtbl Map
