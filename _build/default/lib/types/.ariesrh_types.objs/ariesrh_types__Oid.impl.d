lib/types/oid.ml: Format Hashtbl Int Map Set
