lib/types/xid.ml: Format Hashtbl Int Map Set
