lib/types/xid.mli: Format Hashtbl Map Set
