lib/types/lsn.mli: Format
