lib/types/oid.mli: Format Hashtbl Map Set
