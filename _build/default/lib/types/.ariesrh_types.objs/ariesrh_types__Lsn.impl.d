lib/types/lsn.ml: Format Int Stdlib
