lib/types/page_id.ml: Format Hashtbl Int Map
