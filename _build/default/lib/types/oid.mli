(** Object identifiers.

    The engine stores a fixed population of integer-valued objects; an
    [Oid.t] names one of them. The paper delegates at object granularity
    (§2.1.2), so oids are the unit of delegation. *)

type t

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
