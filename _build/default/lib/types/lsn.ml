type t = int

let nil = 0
let first = 1

let of_int i =
  if i < 0 then invalid_arg "Lsn.of_int: negative";
  i

let to_int t = t
let is_nil t = t = 0
let next t = t + 1

let prev t =
  if t = 0 then invalid_arg "Lsn.prev: nil has no predecessor";
  t - 1

let compare = Int.compare
let equal = Int.equal
let ( < ) a b = Stdlib.( < ) a b
let ( <= ) a b = Stdlib.( <= ) a b
let ( > ) a b = Stdlib.( > ) a b
let ( >= ) a b = Stdlib.( >= ) a b
let max = Stdlib.max
let min = Stdlib.min
let pp ppf t = if t = 0 then Format.fprintf ppf "nil" else Format.fprintf ppf "%d" t
