(** Log sequence numbers.

    LSNs identify log records and increase monotonically with append
    order. [nil] is smaller than every real LSN and marks "no previous
    record" in backward chains. *)

type t

val nil : t
(** The null LSN: no record. Compares below every real LSN. *)

val first : t
(** LSN of the first record ever appended. *)

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. [of_int 0 = nil]. *)

val to_int : t -> int
val is_nil : t -> bool
val next : t -> t
val prev : t -> t
(** [prev first = nil]; [prev nil] raises [Invalid_argument]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
