bench/bech.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Test Time Toolkit
