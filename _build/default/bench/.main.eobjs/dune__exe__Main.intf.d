bench/main.mli:
