bench/scenario.ml: Ariesrh_core Ariesrh_types Ariesrh_wal Config Db List Lsn Oid
