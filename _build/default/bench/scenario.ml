(* Synthetic log scenarios for the recovery experiments: parameterized
   versions of the paper's Fig. 7 situation — groups of loser scopes
   separated by stretches of winner activity. *)

open Ariesrh_types
open Ariesrh_core

type t = {
  db : Db.t;
  total_records : int;
  loser_updates : int;  (** updates that recovery must undo *)
}

(* [build ~groups ~losers_per_group ~updates_per_loser ~gap] builds a
   database whose durable log contains [groups] clusters of overlapping
   loser scopes, separated by [gap] winner records, then crashes it.
   Delegation: each loser's updates are made by a worker transaction and
   delegated to the loser, so undoing exercises the scope machinery. *)
let build ?(objects = 4096) ~groups ~losers_per_group ~updates_per_loser ~gap
    ~delegated () =
  let db =
    Db.create
      (Config.make ~n_objects:objects ~objects_per_page:8 ~buffer_capacity:64
         ~locking:false ())
  in
  let next_ob = ref 0 in
  let fresh_ob () =
    let o = !next_ob in
    incr next_ob;
    if o >= objects then invalid_arg "Scenario.build: too few objects";
    Oid.of_int o
  in
  let filler_ob = Oid.of_int (objects - 1) in
  let filler n =
    let w = Db.begin_txn db in
    for _ = 1 to n do
      Db.add db w filler_ob 1
    done;
    Db.commit db w
  in
  for _ = 1 to groups do
    let losers = List.init losers_per_group (fun _ -> Db.begin_txn db) in
    let obs = List.map (fun _ -> fresh_ob ()) losers in
    (* interleave so all the group's scopes overlap: round-robin the
       losers' updates *)
    for _ = 1 to updates_per_loser do
      List.iter2
        (fun l o ->
          if delegated then begin
            (* a worker invokes the update and delegates it *)
            let w = Db.begin_txn db in
            Db.add db w o 1;
            Db.delegate db ~from_:w ~to_:l o;
            Db.commit db w
          end
          else Db.add db l o 1)
        losers obs
    done;
    filler gap
  done;
  (* make the whole log durable (a full log buffer), then crash *)
  Ariesrh_wal.Log_store.flush (Db.log_store db)
    ~upto:(Ariesrh_wal.Log_store.head (Db.log_store db));
  let total_records =
    Lsn.to_int (Ariesrh_wal.Log_store.head (Db.log_store db))
  in
  Db.crash db;
  {
    db;
    total_records;
    loser_updates = groups * losers_per_group * updates_per_loser;
  }
