(** Log records and their binary codec.

    A record is written by at most one transaction (checkpoints have no
    writer). [prev] is the backward-chain pointer of the writer: the LSN
    of the previous record written on behalf of the same transaction
    ([Lsn.nil] for the first). A {!Delegate} record sits on {e two}
    backward chains (Fig. 6 of the paper): [prev] is the delegator's
    pointer ([torBC]) and [tee_prev] the delegatee's ([teeBC]). *)

open Ariesrh_types

type op =
  | Set of { before : int; after : int }
      (** Overwrite; conflicts with everything. Undone by restoring
          [before]. *)
  | Add of int
      (** Commutative increment by a (possibly negative) delta. Undone by
          adding the negation; commutes with other [Add]s, which is how
          several transactions can be responsible for updates to the same
          object at once (§2.1.2). *)

type update = { oid : Oid.t; page : Page_id.t; op : op }

type ckpt_status = Ck_active | Ck_committed | Ck_rolling_back

type ckpt_txn = {
  ck_xid : Xid.t;
  ck_status : ckpt_status;
  ck_last_lsn : Lsn.t;
  ck_undo_next : Lsn.t;
}

type ckpt_scope = { ck_invoker : Xid.t; ck_first : Lsn.t; ck_last : Lsn.t }

type ckpt_ob = {
  ck_owner : Xid.t;  (** transaction whose Ob_List holds the entry *)
  ck_oid : Oid.t;
  ck_deleg : Xid.t option;  (** last delegator of the object, if any *)
  ck_scopes : ckpt_scope list;
}

type ckpt = {
  ck_txns : ckpt_txn list;
  ck_dpt : (Page_id.t * Lsn.t) list;  (** dirty page table: (page, recLSN) *)
  ck_obs : ckpt_ob list;  (** Ob_Lists with scopes, needed by ARIES/RH *)
}

type body =
  | Begin
  | Update of update
  | Commit
  | Abort  (** rollback has started; an [End] follows when it completes *)
  | End
  | Clr of {
      upd : update;  (** the {e inverse} operation, as applied — redoable *)
      undone : Lsn.t;  (** LSN of the update record this CLR compensates *)
      invoker : Xid.t;  (** invoking transaction of the undone update *)
      undo_next : Lsn.t;  (** next record of the writer left to undo *)
    }
      (** Compensation log record. [undone]/[invoker] let the ARIES/RH
          forward pass trim the covering scope so that re-recovery (and
          recovery after a crash mid-rollback) never undoes twice. *)
  | Delegate of {
      tee : Xid.t;
      tee_prev : Lsn.t;
      oid : Oid.t;
      op : (Lsn.t * Xid.t) option;
          (** [None]: the whole object (the granularity §3 implements);
              [Some (lsn, invoker)]: a single operation — the paper's
              general model of §2.1.2, where one update is delegated *)
    }
  | Ckpt_begin
  | Ckpt_end of ckpt
  | Anchor
      (** chain-head anchor: a no-op record whose only job is to make a
          transaction's current backward-chain head durable. Written (and
          force-flushed) by {e eager} delegation after its log surgery —
          without it, a spliced stable record can become unreachable when
          a crash eats the volatile records that pointed at it. ARIES/RH
          never needs one; the delegate record plays this role. *)
  | Rewrite_begin of {
      deleg : (Xid.t * Xid.t * Oid.t) option;
          (** the pending delegation this surgery serves:
              (delegator, delegatee, object); [None] for surgeries with
              no driving delegation (e.g. lazy restart splices) *)
      targets : Lsn.t list;  (** LSNs the surgery will rewrite in place *)
    }
      (** Intent record of a rewrite system transaction. Forced to disk
          {e before} any in-place rewrite touches the stable log, so
          restart knows a surgery may be half-applied. *)
  | Rewrite_clr of { target : Lsn.t; before : string; after : string }
      (** Redo-idempotent compensation for one in-place rewrite: the
          encoded bytes of [target]'s record before and after surgery
          (same length — only writer/chain fields differ). Restart rolls
          the surgery forward by re-applying [after], or back by
          restoring [before]; both are idempotent. *)
  | Rewrite_end of { begin_lsn : Lsn.t; committed : bool }
      (** Closes the system transaction opened at [begin_lsn].
          [committed = true]: all rewrites (and the justifying
          delegation/anchor records) are in the log — restart re-applies
          the [after] images if in doubt. [committed = false]: the
          surgery was rolled back (restart or fallback); the [before]
          images have been restored. *)
  | Xfer_out of { xfer_id : int; hop : int; oid : Oid.t; target : int; value : int }
      (** Cross-shard transfer intent, forced on the {e source} shard's
          log before anything touches the target. [hop] is the per-object
          transfer sequence number (strictly increasing across the
          object's whole migration history); [value] is the durably
          committed value being carried. An [Xfer_out] with no matching
          [Xfer_end] on the same log is an in-doubt transfer: restart
          resolves it against the target shard's durable log. *)
  | Xfer_in of {
      xfer_id : int;
      hop : int;
      oid : Oid.t;
      page : Page_id.t;
      source : int;
      before : int;
      value : int;
    }
      (** Transfer record forced on the {e target} shard's log. It is
          both the durable transfer marker and a redo-conditioned page
          update ([before]→[value] on [page], applied by the forward
          pass like an [Update]), so adopting the value and recording
          the adoption are one atomic log write. Its durable presence is
          the commit point of the transfer. *)
  | Xfer_end of { xfer_id : int; oid : Oid.t; committed : bool }
      (** Closes the transfer opened by the matching [Xfer_out] on the
          same (source) log. [committed = true]: the target's [Xfer_in]
          is durable — the object now lives there. [committed = false]:
          the transfer was rolled back; the object never left. Written
          via reserved log space so resolution cannot die of
          [Log_full]. *)

type t = {
  xid : Xid.t option;  (** writer; [None] only for checkpoint records *)
  prev : Lsn.t;  (** writer's backward-chain pointer *)
  body : body;
}

val mk : Xid.t -> prev:Lsn.t -> body -> t
val mk_system : body -> t

val writer_exn : t -> Xid.t
(** Raises [Invalid_argument] on checkpoint records. *)

val prev_for : t -> Xid.t -> Lsn.t
(** [prev_for r x]: the next-older LSN on [x]'s backward chain, assuming
    [r] lies on it. For a delegate record this is [prev] when [x] is the
    delegator and [tee_prev] when [x] is the delegatee. Raises
    [Invalid_argument] if [r] is not on [x]'s chain. *)

val set_writer : t -> Xid.t -> t
(** [set_writer r x] is [setTransID] from Fig. 1: the same record
    attributed to [x]. Only meaningful for [Update]/[Clr] records. *)

val set_prev_for : t -> Xid.t -> Lsn.t -> t
(** Patch the backward-chain pointer that [x] follows through this
    record (the [prev] field, or [tee_prev] when [x] is the delegatee of
    a delegate record). Used only by the history-rewriting baselines. *)

val is_update : t -> bool
val pp : Format.formatter -> t -> unit

val encode : t -> string
(** Binary encoding, checksummed. *)

type decode_error =
  | Truncated  (** fewer bytes than the fixed header + trailer *)
  | Checksum_mismatch
  | Bad_tag of int
  | Bad_encoding of string

val pp_decode_error : Format.formatter -> decode_error -> unit

val decode : string -> (t, decode_error) result
(** Inverse of {!encode}. A torn or bit-flipped stable record surfaces
    as [Error] — recovery treats a corrupt record at the stable tail as
    end-of-log rather than failing restart. *)

val encoded_size : t -> int
