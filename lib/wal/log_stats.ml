type t = {
  mutable appends : int;
  mutable reads : int;
  mutable page_fetches : int;
  mutable random_seeks : int;
  mutable rewrites : int;
  mutable rewrite_page_writes : int;
  mutable flushes : int;
  mutable bytes_flushed : int;
  mutable reservations : int;
  mutable admission_rejects : int;
}

let create () =
  {
    appends = 0;
    reads = 0;
    page_fetches = 0;
    random_seeks = 0;
    rewrites = 0;
    rewrite_page_writes = 0;
    flushes = 0;
    bytes_flushed = 0;
    reservations = 0;
    admission_rejects = 0;
  }

let reset t =
  t.appends <- 0;
  t.reads <- 0;
  t.page_fetches <- 0;
  t.random_seeks <- 0;
  t.rewrites <- 0;
  t.rewrite_page_writes <- 0;
  t.flushes <- 0;
  t.bytes_flushed <- 0;
  t.reservations <- 0;
  t.admission_rejects <- 0

let copy t = { t with appends = t.appends }

let diff a b =
  {
    appends = a.appends - b.appends;
    reads = a.reads - b.reads;
    page_fetches = a.page_fetches - b.page_fetches;
    random_seeks = a.random_seeks - b.random_seeks;
    rewrites = a.rewrites - b.rewrites;
    rewrite_page_writes = a.rewrite_page_writes - b.rewrite_page_writes;
    flushes = a.flushes - b.flushes;
    bytes_flushed = a.bytes_flushed - b.bytes_flushed;
    reservations = a.reservations - b.reservations;
    admission_rejects = a.admission_rejects - b.admission_rejects;
  }

let pp ppf t =
  Format.fprintf ppf
    "appends=%d reads=%d page_fetches=%d random_seeks=%d rewrites=%d \
     rewrite_page_writes=%d flushes=%d bytes_flushed=%d reservations=%d \
     admission_rejects=%d"
    t.appends t.reads t.page_fetches t.random_seeks t.rewrites
    t.rewrite_page_writes t.flushes t.bytes_flushed t.reservations
    t.admission_rejects
