(* Bucket upper bounds (bytes) for the record-size histogram. *)
let size_bounds = [| 16; 32; 64; 96; 128; 192; 256; 512 |]

type t = {
  mutable appends : int;
  mutable reads : int;
  mutable page_fetches : int;
  mutable random_seeks : int;
  mutable rewrites : int;
  mutable rewrite_page_writes : int;
  mutable flushes : int;
  mutable bytes_flushed : int;
  mutable reservations : int;
  mutable admission_rejects : int;
  size_counts : int array;  (* length = Array.length size_bounds + 1 *)
  mutable size_sum : int;
}

let create () =
  {
    appends = 0;
    reads = 0;
    page_fetches = 0;
    random_seeks = 0;
    rewrites = 0;
    rewrite_page_writes = 0;
    flushes = 0;
    bytes_flushed = 0;
    reservations = 0;
    admission_rejects = 0;
    size_counts = Array.make (Array.length size_bounds + 1) 0;
    size_sum = 0;
  }

let reset t =
  t.appends <- 0;
  t.reads <- 0;
  t.page_fetches <- 0;
  t.random_seeks <- 0;
  t.rewrites <- 0;
  t.rewrite_page_writes <- 0;
  t.flushes <- 0;
  t.bytes_flushed <- 0;
  t.reservations <- 0;
  t.admission_rejects <- 0;
  Array.fill t.size_counts 0 (Array.length t.size_counts) 0;
  t.size_sum <- 0

let observe_size t bytes =
  let n = Array.length size_bounds in
  let rec idx i = if i >= n || bytes <= size_bounds.(i) then i else idx (i + 1) in
  let i = idx 0 in
  t.size_counts.(i) <- t.size_counts.(i) + 1;
  t.size_sum <- t.size_sum + bytes

let copy t = { t with size_counts = Array.copy t.size_counts }

let diff a b =
  {
    appends = a.appends - b.appends;
    reads = a.reads - b.reads;
    page_fetches = a.page_fetches - b.page_fetches;
    random_seeks = a.random_seeks - b.random_seeks;
    rewrites = a.rewrites - b.rewrites;
    rewrite_page_writes = a.rewrite_page_writes - b.rewrite_page_writes;
    flushes = a.flushes - b.flushes;
    bytes_flushed = a.bytes_flushed - b.bytes_flushed;
    reservations = a.reservations - b.reservations;
    admission_rejects = a.admission_rejects - b.admission_rejects;
    size_counts = Array.mapi (fun i c -> c - b.size_counts.(i)) a.size_counts;
    size_sum = a.size_sum - b.size_sum;
  }

let size_hist t =
  Ariesrh_obs.Metrics.
    { bounds = size_bounds; counts = Array.copy t.size_counts;
      sum = t.size_sum }

let register t m =
  let module M = Ariesrh_obs.Metrics in
  let c name help f = M.counter m ~help name f in
  c "ariesrh_log_appends_total" "records appended" (fun () -> t.appends);
  c "ariesrh_log_reads_total" "stable records decoded" (fun () -> t.reads);
  c "ariesrh_log_page_fetches_total" "log pages brought into the buffer"
    (fun () -> t.page_fetches);
  c "ariesrh_log_random_seeks_total" "non-adjacent page fetches" (fun () ->
      t.random_seeks);
  c "ariesrh_log_rewrites_total" "in-place record rewrites" (fun () ->
      t.rewrites);
  c "ariesrh_log_rewrite_page_writes_total" "pages written back by rewrites"
    (fun () -> t.rewrite_page_writes);
  c "ariesrh_log_flushes_total" "flush calls that wrote something" (fun () ->
      t.flushes);
  c "ariesrh_log_bytes_flushed_total" "bytes made durable" (fun () ->
      t.bytes_flushed);
  c "ariesrh_log_reservations_total" "CLR-space reservations taken" (fun () ->
      t.reservations);
  c "ariesrh_log_admission_rejects_total" "appends refused with Log_full"
    (fun () -> t.admission_rejects);
  M.histogram m ~help:"encoded record size in bytes"
    "ariesrh_log_record_bytes" (fun () -> size_hist t)

let pp ppf t =
  Format.fprintf ppf
    "appends=%d reads=%d page_fetches=%d random_seeks=%d rewrites=%d \
     rewrite_page_writes=%d flushes=%d bytes_flushed=%d reservations=%d \
     admission_rejects=%d"
    t.appends t.reads t.page_fetches t.random_seeks t.rewrites
    t.rewrite_page_writes t.flushes t.bytes_flushed t.reservations
    t.admission_rejects
