(** The simulated stable log.

    Records are appended to a volatile tail and become durable when
    flushed; a {!crash} discards the unflushed tail, exactly the failure
    model the WAL protocol assumes. LSNs are dense (the n-th record ever
    appended has LSN n), so recovery's "K <- K - 1" sweep from the paper's
    Fig. 1/Fig. 8 maps directly onto {!read}.

    Records are held encoded; {!read} decodes (and verifies the checksum
    of) the stored bytes, so every recovery run exercises the codec.

    In-place {!rewrite} exists solely for the eager/lazy
    history-rewriting baselines of §3.1–3.2; ARIES/RH never calls it. *)

open Ariesrh_types

exception Corrupt_record of { lsn : Lsn.t; error : Record.decode_error }
(** Raised by {!read} when the stored bytes fail to decode — a torn or
    bit-flipped stable tail. Restart amputates such records up front
    ({!recover_tail}); seeing this exception later means the log was
    corrupted somewhere other than the tail, which the failure model
    does not produce. *)

type dimension = Bytes | Records

val pp_dimension : Format.formatter -> dimension -> unit

exception
  Log_full of {
    dimension : dimension;
    need : int;  (** bytes or records the rejected operation asked for *)
    used : int;  (** live bytes / retained records at the rejection *)
    reserved : int;  (** pool set aside for rollback obligations *)
    capacity : int;
  }
(** Raised by admission-checked appends and by {!reserve} when the
    request does not fit within the configured capacity net of existing
    reservations. Typed so callers can distinguish log pressure from
    programming errors and react (back off, checkpoint, truncate). *)

type t

val create :
  ?page_size:int ->
  ?capacity_bytes:int ->
  ?capacity_records:int ->
  ?record_cache:int ->
  ?fault:Ariesrh_fault.Fault.t ->
  ?backend:Ariesrh_storage.Backend.t ->
  unit ->
  t
(** [backend] (default [Sim]) selects the stable device behind the log.
    With [File { dir }] the durable prefix is mirrored write-through into
    a segmented WAL under [dir] (frames fsynced on flush — the commit
    force), and an existing WAL's surviving frames are loaded back as the
    reopened durable prefix: the restart path after a real process death.
    The in-memory array stays authoritative in-process, so I/O accounting
    and fault scheduling are identical across backends.

    [page_size] (bytes, default 4096) governs the I/O cost model; see
    {!Log_stats}. [capacity_bytes] / [capacity_records] bound the log
    (default: unbounded); see {!append} and {!reserve}. [record_cache]
    (default 8192, [0] disables) bounds the decoded-record cache: {!read}
    memoises successful decodes by LSN so repeated reads — backward
    rollback chains, restart passes, history scans — skip the codec. The
    cache is semantically invisible: the I/O cost model charges hits and
    misses identically, and {!rewrite}, {!truncate}, {!crash} (volatile
    tail + applied tears) and {!recover_tail} evict the affected entries.
    When full it is cleared wholesale, keeping same-seed runs
    deterministic. A live [fault] injector can tear the last record of a
    crashing flush, raise [Fault.Injected_crash] at flush points, and
    squeeze the byte budget at append points. *)

val stats : t -> Log_stats.t

val decode_calls : t -> int
(** Lifetime number of [Record.decode] invocations — the counter the E16
    perf gate tracks. Deliberately {e not} a registered metric: it
    differs cache-on vs cache-off, and forensic dumps embed the metrics
    snapshot, which must stay byte-identical either way. *)

val record_cache_hits : t -> int
(** Reads served from the decoded-record cache. *)

val record_cache_misses : t -> int
(** Cache-enabled reads that had to decode. *)

val amputated_total : t -> int
(** Lifetime count of corrupt tail records dropped by {!recover_tail}.
    Fault harnesses read this rather than the restart report because an
    injected crash can kill the very restart that amputated the tail —
    the work still happened and must be observable. *)

val head : t -> Lsn.t
(** LSN of the most recently appended record; [Lsn.nil] when empty. *)

val durable : t -> Lsn.t
(** LSN up to which the log is flushed; [Lsn.nil] when nothing is. *)

val append : t -> Record.t -> Lsn.t
(** Admission-checked: raises {!Log_full} if the encoded record does not
    fit within the capacity net of the reservation pool. *)

val append_reserved : t -> Record.t -> Lsn.t
(** Append bypassing admission, for records whose space was secured up
    front by {!reserve} (rollback CLRs, Abort/Commit/End, checkpoint
    records) and for everything restart recovery writes. Does {e not}
    draw down the pool — the caller releases exact obligations via
    {!unreserve}, keeping the pool equal to the sum of live
    obligations. *)

val append_with_reserve :
  t -> reserve_bytes:int -> reserve_records:int -> Record.t -> Lsn.t
(** Atomically admit [record + reservation] and take the reservation,
    then append. Used for updates: an update is only admitted if the CLR
    that may later undo it is guaranteed to fit too. Raises {!Log_full}
    without any side effect if the combined request does not fit. *)

val reserve : t -> bytes:int -> records:int -> unit
(** Set aside space for future {!append_reserved} calls. Raises
    {!Log_full} (with no side effect) if the request does not fit. *)

val unreserve : t -> bytes:int -> records:int -> unit
(** Release previously reserved space (clamped at zero). *)

val capacity_bytes : t -> int option
val capacity_records : t -> int option
val set_capacity_bytes : t -> int option -> unit
val set_capacity_records : t -> int option -> unit

val used_bytes : t -> int
(** Encoded bytes of all retained records (stable + volatile tail). *)

val used_records : t -> int
(** Retained records, i.e. [length] minus the truncated prefix. *)

val reserved_bytes : t -> int
val reserved_records : t -> int

val pressure : t -> float
(** [(used + reserved) / capacity], the worse of the byte and record
    ratios; [0.] when unbounded. The governor's watermark input. *)

val flush : t -> upto:Lsn.t -> unit
(** No-op if already durable up to [upto]. Clamped to [head]. *)

val crash : t -> unit
(** Discard the unflushed tail. The stable prefix survives — except that
    a tear scheduled by the fault injector at the last flush is applied
    to the final stable record now (the power failure interrupted that
    log page write). *)

val read : t -> Lsn.t -> Record.t
(** Raises [Invalid_argument] for [Lsn.nil] or beyond [head], and
    {!Corrupt_record} if the stored bytes fail to decode. Reads above
    [durable] come from the in-memory tail and cost nothing. *)

val read_result : t -> Lsn.t -> (Record.t, Record.decode_error) result
(** Like {!read} but surfaces corruption as a typed result. Still raises
    [Invalid_argument] for out-of-range or truncated-away LSNs. *)

val rewrite : t -> Lsn.t -> Record.t -> unit
(** Replace the record at an LSN (history surgery, baselines only).
    Charged as a page fetch + page write when the record is stable. *)

val set_rewrite_hook : t -> (idx:int -> string -> unit) option -> unit
(** Observe every in-place {!rewrite} (surgery apply {e and} its
    crash-recovery rollback) with the new encoded bytes. The WAL
    archiver uses this to refresh its copy of an already-archived
    record — without it a cold restore would resurrect pre-surgery
    attributions the live log has since disowned. *)

val iter_forward :
  ?upto:Lsn.t -> t -> from:Lsn.t -> (Lsn.t -> Record.t -> unit) -> unit
(** Sequential sweep from [from] (or [Lsn.first] if nil) to [upto]
    (default: [head]). *)

val iter_valid_forward :
  ?upto:Lsn.t ->
  t ->
  from:Lsn.t ->
  (Lsn.t -> Record.t -> unit) ->
  (Lsn.t * Record.decode_error) option
(** Like {!iter_forward} but stops at the first record that fails to
    decode and returns it, instead of raising. [None] means the whole
    range decoded. This is how scans treat a corrupt record as
    end-of-log. *)

val iter_backward : t -> from:Lsn.t -> (Lsn.t -> Record.t -> unit) -> unit
(** Sequential sweep from [from] (or [head] if nil) down to [Lsn.first]. *)

val recover_tail : t -> (Lsn.t * Record.decode_error) list
(** Restart preamble: drop trailing stable records that fail to decode
    (in the failure model only the very last record of the crashing
    flush can be corrupt, but amputation loops to be safe). Returns the
    dropped (lsn, error) pairs, oldest first; the freed LSNs will be
    reused by new appends, exactly as if those records had never been
    flushed. If the master checkpoint pointer points into the amputated
    tail it falls back to [0] (full-scan restart); raises
    [Invalid_argument] if that fallback is impossible because the log
    prefix was truncated. *)

val length : t -> int
(** Total records (stable + tail). *)

val truncate : t -> below:Lsn.t -> int
(** [truncate t ~below] reclaims every record with LSN strictly below
    [below]; returns how many were discarded. LSNs are never renumbered;
    reading a reclaimed LSN raises. Requires a completed checkpoint with
    [master >= below] (restart must never need the reclaimed prefix) and
    [below <= durable]. *)

val truncated_below : t -> Lsn.t
(** First retained LSN ([Lsn.first] if nothing was ever truncated). *)

val master : t -> Lsn.t
(** The master record: LSN of the end record of the last complete
    checkpoint, where restart recovery begins. [Lsn.nil] if no
    checkpoint ever completed. Stable: survives {!crash}. *)

val set_master : t -> Lsn.t -> unit
(** Raises [Invalid_argument] unless the LSN is durable — the WAL rule
    for the master record itself. *)

(** {2 Media: archive access, scrub and heal}

    None of these advance the fault injector's I/O clock or the decode
    counters — integrity maintenance must never shift a crash schedule
    or an E16-gated counter. All take 0-based absolute record indices
    (idx = lsn - 1) within the durable retained window. *)

val raw_get : t -> idx:int -> string
(** Encoded bytes of a durable record, verbatim — the archiver's read.
    Raises [Invalid_argument] outside the durable retained window. *)

val archive_bound : t -> int
(** Records with idx < this are safe to archive: durable, and not
    scheduled to tear by a pending torn flush (archiving a record whose
    stable copy may still tear would resurrect bytes a crash
    amputates). *)

val record_intact : t -> idx:int -> bool
(** Does the stored record still decode? Every record carries its own
    trailing FNV-1a checksum, so rot anywhere in the payload is caught.
    Cache-bypassing. *)

val heal_record : t -> idx:int -> string -> unit
(** Replace a rotted durable record with its archived copy (same
    length), in memory and on the device. *)

val bitrot_record : t -> idx:int -> unit
(** Injection primitive: flip bits in one durable record's stored
    bytes, memory and device alike. The device frame keeps a valid
    frame crc so a reopen loads the rot verbatim — detection happens,
    as on Sim, at the record checksum. *)

val install_archive : t -> low:int -> master:int -> string array -> unit
(** Cold-restore install on an empty, freshly created store: adopt the
    archived record sequence (absolute indices [low..]) as the durable
    prefix, with [master] set and everything below [low] reclaimed.
    The store comes out exactly as a reopen after that history. *)

val sync : t -> unit
(** [fsync] the active WAL segment on the file backend; no-op on sim. *)

val fsyncs : t -> int
(** Lifetime WAL fsyncs — segments plus the control file ([0] on sim).
    An accessor rather than a registered metric so forensic dumps stay
    byte-identical across backends (same precedent as {!decode_calls}). *)

val close : t -> unit
(** Release the WAL file descriptors (idempotent; no-op on sim). *)

val register_metrics : t -> Ariesrh_obs.Metrics.t -> unit
(** Register this log's counters (via {!Log_stats.register}), the
    record-size histogram, and gauges for usage, reservations, head,
    durable horizon, and pressure. *)
