(** The stable device behind {!Log_store}.

    The simulated device is a no-op — the store's in-memory encoded-record
    array is the whole story. The file device mirrors the durable prefix
    into an append-only {e segmented} WAL under the backend directory:
    length+crc-framed records in numbered [<id>.wal] segments plus a
    [wal.ctl] control file holding the master-checkpoint pointer and the
    truncation point, both fsynced on update.

    Write-through discipline: {!flush} receives exactly the records the
    in-memory store is making durable and [fsync]s them (the commit
    force), so the on-disk file always equals the store's durable prefix.
    The volatile tail never touches the device — records a process never
    flushed are simply absent after a kill, which is the honest
    userspace-buffer durability model. An injected torn flush is written
    for real (a cut or bit-flipped file tail) and skips the fsync: the
    power failed mid-write. *)

exception Wal_frame_corrupt of { offset : int; expected : int; got : int }
(** A frame violates the WAL's framing away from the tail: short header
    or payload followed by further frames, or a crc mismatch that is not
    the final frame. (A damaged {e tail} frame is not an error — the
    reopen scan loads it so restart amputates it.) [expected]/[got] are
    the violated quantity (byte count or crc). *)

type t

type loaded = {
  enc : string array;  (** stored payload per record index; [""] below [low] *)
  count : int;  (** frames present — the reopened durable prefix *)
  low : int;  (** records below this index were truncated away *)
  master : int;  (** master checkpoint pointer from the control file *)
}

val sim : t
val is_file : t -> bool

val create : dir:string -> ?seg_max:int -> unit -> t
(** Open (or initialise) the WAL under [dir]. [seg_max] (default 64 KiB)
    caps a segment's size; a frame never spans segments. *)

val load : t -> loaded option
(** Scan the segments and return the surviving log, or [None] when the
    device is simulated or the WAL is empty. A genuinely cut tail frame
    (partial header) is discarded as never-flushed; a cut or corrupt
    tail {e payload} is loaded verbatim so [recover_tail] amputates it.
    Raises {!Wal_frame_corrupt} for damage anywhere but the tail. *)

val flush : t -> start_idx:int -> frames:string list -> tear:Ariesrh_fault.Fault.log_tear option -> unit
(** Append the encoded records for indices [start_idx..] and fsync. If
    [start_idx] is below the device's frame count the obsolete tail
    frames are ftruncated away first (LSN reuse after crash/amputation).
    [tear] damages the final frame for real and skips the fsync. *)

val install : t -> low:int -> master:int -> frames:string list -> unit
(** Cold-restore install: discard whatever a fresh open created and
    write the archived frame sequence (absolute indices [low..]) plus
    the control state. Only valid before any flush has been accepted. *)

val rewrite : t -> idx:int -> string -> unit
(** In-place rewrite of a durable frame (same payload length — history
    surgery). Covered by the next fsync. *)

val set_master : t -> int -> unit
(** Persist the master checkpoint pointer (control-file write + fsync). *)

val set_low : t -> int -> unit
(** Persist the truncation point and unlink whole segments that fell
    entirely below it. *)

val sync : t -> unit
(** fsync the active segment (counted). *)

val fsyncs : t -> int
(** Lifetime fsync count across segments and the control file; [0] on
    the sim device. An accessor, not a registered metric — see
    {!Log_store.decode_calls} for the precedent. *)

val close : t -> unit
