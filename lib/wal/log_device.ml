module Backend = Ariesrh_storage.Backend
module Fault = Ariesrh_fault.Fault

exception Wal_frame_corrupt of { offset : int; expected : int; got : int }

(* On-disk layout.

   Control file [wal.ctl] (all int64 little-endian after the magic):

     magic "ARWLv1\n\000" | master | low | reserved

   Segment files [<id>.wal], id ascending, each:

     magic "ARWSv1\n\000" | first_idx          (16-byte segment header)
     frame*                                    (consecutive record idxs)

   Frame: [len : u32 LE][crc : u32 LE][payload : len bytes]. [crc] is a
   32-bit FNV-1a over the payload. Frames are append-only; the only
   in-place mutation is {!rewrite} (same-length payload, baselines only)
   and the ftruncate that reclaims amputated/discarded tail frames when
   their LSNs are reused.

   Torn-tail realism: an injected [Truncate_tail n] is written as the
   full frame header followed by only [len - n] payload bytes — a
   genuinely cut file tail. [Flip_byte i] writes the full frame with the
   payload byte flipped under the original crc. Either way the reopen
   scan loads the damaged payload as the record's stored bytes, and
   restart's [recover_tail] amputates it exactly as on the sim backend. *)

let ctl_magic = "ARWLv1\n\000"
let seg_magic = "ARWSv1\n\000"
let ctl_bytes = 32
let seg_header_bytes = 16
let max_frame_payload = 16 * 1024 * 1024

let crc32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

type seg = {
  id : int;
  path : string;
  mutable fd : Unix.file_descr option;
  mutable first_idx : int;
  mutable size : int;  (* bytes, including the segment header *)
}

type file = {
  dir : string;
  ctl_path : string;
  ctl_fd : Unix.file_descr;
  seg_max : int;
  mutable segs : seg list;  (* oldest first; never empty after open *)
  (* idx -> (segment id, byte offset, bytes actually on disk) *)
  mutable pos_seg : int array;
  mutable pos_off : int array;
  mutable pos_len : int array;
  mutable count : int;
  mutable master : int;
  mutable low : int;
  mutable fsyncs : int;
  mutable need_sync : bool;
  mutable closed : bool;
}

type t = Sim_dev | File_dev of file

let sim = Sim_dev
let is_file = function File_dev _ -> true | Sim_dev -> false

(* --- raw I/O helpers ------------------------------------------------ *)

let write_all fd path b off len =
  let written = ref 0 in
  while !written < len do
    let n =
      Backend.wrap ~op:"write" ~path (fun () ->
          Unix.write fd b (off + !written) (len - !written))
    in
    if n <= 0 then
      raise (Backend.Io_error { op = "write"; path; error = Unix.EIO });
    written := !written + n
  done

let pwrite fd path ~off b len =
  Backend.wrap ~op:"lseek" ~path (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET));
  write_all fd path b 0 len

let read_upto fd path ~off b len =
  Backend.wrap ~op:"lseek" ~path (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET));
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n =
      Backend.wrap ~op:"read" ~path (fun () ->
          Unix.read fd b !got (len - !got))
    in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let seg_path dir id = Filename.concat dir (Printf.sprintf "%08d.wal" id)

let seg_fd s =
  match s.fd with
  | Some fd -> fd
  | None ->
      let fd =
        Backend.wrap ~op:"open" ~path:s.path (fun () ->
            Unix.openfile s.path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
      in
      s.fd <- Some fd;
      fd

let fsync_fd f path fd =
  Backend.wrap ~op:"fsync" ~path (fun () -> Unix.fsync fd);
  f.fsyncs <- f.fsyncs + 1

let ensure_pos f idx =
  let cap = Array.length f.pos_seg in
  if idx >= cap then begin
    let ncap = max 64 (max (idx + 1) (cap * 2)) in
    let grow a = Array.append a (Array.make (ncap - cap) 0) in
    f.pos_seg <- grow f.pos_seg;
    f.pos_off <- grow f.pos_off;
    f.pos_len <- grow f.pos_len
  end

let record_pos f idx ~seg ~off ~len =
  ensure_pos f idx;
  f.pos_seg.(idx) <- seg;
  f.pos_off.(idx) <- off;
  f.pos_len.(idx) <- len

let find_seg f id = List.find (fun s -> s.id = id) f.segs
let last_seg f = List.nth f.segs (List.length f.segs - 1)

(* --- open / reopen -------------------------------------------------- *)

let write_ctl f =
  let b = Bytes.make ctl_bytes '\000' in
  Bytes.blit_string ctl_magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int f.master);
  Bytes.set_int64_le b 16 (Int64.of_int f.low);
  pwrite f.ctl_fd f.ctl_path ~off:0 b ctl_bytes;
  fsync_fd f f.ctl_path f.ctl_fd

let new_segment f ~first_idx =
  let id =
    match List.rev f.segs with [] -> 1 | s :: _ -> s.id + 1
  in
  let s =
    { id; path = seg_path f.dir id; fd = None; first_idx;
      size = seg_header_bytes }
  in
  let h = Bytes.make seg_header_bytes '\000' in
  Bytes.blit_string seg_magic 0 h 0 8;
  Bytes.set_int64_le h 8 (Int64.of_int first_idx);
  pwrite (seg_fd s) s.path ~off:0 h seg_header_bytes;
  f.segs <- f.segs @ [ s ];
  s

(* Scan one segment's frames, loading payloads into [acc] (a reversed
   list of strings). Returns [`Clean end_off | `Stop end_off] — [`Stop]
   means the scan hit a damaged tail and nothing after it may be kept. *)
let scan_segment f s ~is_last acc =
  let fd = seg_fd s in
  let size =
    Backend.wrap ~op:"fstat" ~path:s.path (fun () ->
        (Unix.fstat fd).Unix.st_size)
  in
  let hdr = Bytes.create 8 in
  let off = ref seg_header_bytes in
  let stop = ref None in
  let idx = ref s.first_idx in
  (* a crc-damaged frame is only tolerable as the very last frame of the
     log; remember it and fail if anything follows *)
  let pending_corrupt = ref None in
  while !stop = None && !off < size do
    (match !pending_corrupt with
    | Some (o, expected, got) ->
        raise (Wal_frame_corrupt { offset = o; expected; got })
    | None -> ());
    let got_h = read_upto fd s.path ~off:!off hdr 8 in
    if got_h < 8 then
      if is_last then stop := Some !off  (* partial header: never flushed *)
      else raise (Wal_frame_corrupt { offset = !off; expected = 8; got = got_h })
    else begin
      let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xffffffff in
      let crc = Int32.to_int (Bytes.get_int32_le hdr 4) land 0xffffffff in
      if len <= 0 || len > max_frame_payload then
        if is_last then stop := Some !off
        else raise (Wal_frame_corrupt { offset = !off; expected = 1; got = len })
      else begin
        let payload = Bytes.create len in
        let got_p = read_upto fd s.path ~off:(!off + 8) payload len in
        if got_p < len then
          if is_last then begin
            (* torn tail: the frame header promises [len] bytes but the
               file was cut mid-payload — load what survived so restart
               amputates it like any corrupt tail record *)
            acc := Bytes.sub_string payload 0 got_p :: !acc;
            record_pos f !idx ~seg:s.id ~off:!off ~len:(8 + got_p);
            incr idx;
            stop := Some (!off + 8 + got_p)
          end
          else
            raise (Wal_frame_corrupt { offset = !off; expected = len; got = got_p })
        else begin
          let payload = Bytes.to_string payload in
          let computed = crc32 payload in
          if computed <> crc then
            (* tolerated only if nothing follows (torn tail flip) *)
            pending_corrupt := Some (!off, crc, computed);
          acc := payload :: !acc;
          record_pos f !idx ~seg:s.id ~off:!off ~len:(8 + len);
          incr idx;
          off := !off + 8 + len
        end
      end
    end
  done;
  (match !pending_corrupt with
  | Some _ when not is_last ->
      (* the damaged frame closed this segment but later segments exist *)
      let o, expected, got = Option.get !pending_corrupt in
      raise (Wal_frame_corrupt { offset = o; expected; got })
  | _ -> ());
  match !stop with Some e -> `Stop e | None -> `Clean !off

type loaded = {
  enc : string array;  (* [""] below [low] *)
  count : int;
  low : int;
  master : int;
}

let open_file ~dir ~seg_max =
  Backend.mkdir_p dir;
  let ctl_path = Filename.concat dir "wal.ctl" in
  let ctl_fd =
    Backend.wrap ~op:"open" ~path:ctl_path (fun () ->
        Unix.openfile ctl_path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  in
  let f =
    {
      dir;
      ctl_path;
      ctl_fd;
      seg_max;
      segs = [];
      pos_seg = [||];
      pos_off = [||];
      pos_len = [||];
      count = 0;
      master = 0;
      low = 0;
      fsyncs = 0;
      need_sync = false;
      closed = false;
    }
  in
  let size =
    Backend.wrap ~op:"fstat" ~path:ctl_path (fun () ->
        (Unix.fstat ctl_fd).Unix.st_size)
  in
  let fresh = size < ctl_bytes in
  if fresh then write_ctl f
  else begin
    let b = Bytes.create ctl_bytes in
    if read_upto ctl_fd ctl_path ~off:0 b ctl_bytes < ctl_bytes then
      raise (Backend.Io_error { op = "read-ctl"; path = ctl_path; error = Unix.EIO });
    if Bytes.sub_string b 0 8 <> ctl_magic then
      invalid_arg (Printf.sprintf "Log_device: %s is not a WAL control file" ctl_path);
    f.master <- Int64.to_int (Bytes.get_int64_le b 8);
    f.low <- Int64.to_int (Bytes.get_int64_le b 16)
  end;
  (* discover segments *)
  let ids =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           if Filename.check_suffix name ".wal" then
             int_of_string_opt (Filename.chop_suffix name ".wal")
           else None)
    |> List.sort compare
  in
  let segs =
    List.map
      (fun id ->
        let path = seg_path dir id in
        let s = { id; path; fd = None; first_idx = 0; size = 0 } in
        let fd = seg_fd s in
        let h = Bytes.create seg_header_bytes in
        if read_upto fd path ~off:0 h seg_header_bytes < seg_header_bytes
           || Bytes.sub_string h 0 8 <> seg_magic
        then invalid_arg (Printf.sprintf "Log_device: %s is not a WAL segment" path);
        s.first_idx <- Int64.to_int (Bytes.get_int64_le h 8);
        s)
      ids
  in
  f.segs <- segs;
  f

let load = function
  | Sim_dev -> None
  | File_dev f ->
      if f.segs = [] then begin
        ignore (new_segment f ~first_idx:0);
        None
      end
      else begin
        let acc = ref [] in
        let n = List.length f.segs in
        let stopped = ref false in
        List.iteri
          (fun i s ->
            if !stopped then begin
              (* a damaged tail amputated the log inside an earlier
                 segment; later segments must not exist *)
              (match s.fd with Some fd -> Unix.close fd; s.fd <- None | None -> ());
              (try Sys.remove s.path with Sys_error _ -> ())
            end
            else begin
              match scan_segment f s ~is_last:(i = n - 1) acc with
              | `Clean e -> s.size <- e
              | `Stop e ->
                  s.size <- e;
                  stopped := true;
                  (* cut dead bytes so future appends land cleanly *)
                  Backend.wrap ~op:"ftruncate" ~path:s.path (fun () ->
                      Unix.ftruncate (seg_fd s) e)
            end)
          f.segs;
        f.segs <- List.filter (fun s -> Sys.file_exists s.path) f.segs;
        let frames = Array.of_list (List.rev !acc) in
        let first_idx = (List.hd f.segs).first_idx in
        f.count <- first_idx + Array.length frames;
        if f.count = 0 then None
        else begin
          let enc = Array.make f.count "" in
          Array.iteri (fun i s -> enc.(first_idx + i) <- s) frames;
          (* anything below the truncation point is reclaimed space *)
          for i = 0 to min f.low f.count - 1 do
            enc.(i) <- ""
          done;
          Some { enc; count = f.count; low = f.low; master = f.master }
        end
      end

let create ~dir ?(seg_max = 65536) () = File_dev (open_file ~dir ~seg_max)

(* --- appends / flush ------------------------------------------------ *)

let frame_bytes payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b 8 len;
  b

(* Drop every frame with idx >= start_idx: ftruncate the owning segment
   and unlink any later segments. Reuses of amputated / crash-discarded
   LSNs land here before their replacement frames are written. *)
let truncate_to (f : file) start_idx =
  if start_idx < f.count then begin
    let seg_id = f.pos_seg.(start_idx) in
    let off = f.pos_off.(start_idx) in
    let keep, drop = List.partition (fun s -> s.id <= seg_id) f.segs in
    List.iter
      (fun s ->
        (match s.fd with Some fd -> Unix.close fd; s.fd <- None | None -> ());
        (try Sys.remove s.path with Sys_error _ -> ()))
      drop;
    f.segs <- keep;
    let s = find_seg f seg_id in
    Backend.wrap ~op:"ftruncate" ~path:s.path (fun () ->
        Unix.ftruncate (seg_fd s) off);
    s.size <- off;
    f.count <- start_idx
  end

let flush t ~start_idx ~frames ~tear =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      truncate_to f start_idx;
      if f.segs = [] then ignore (new_segment f ~first_idx:start_idx);
      let n = List.length frames in
      let idx = ref start_idx in
      (* batch contiguous writes per segment: one write() per segment
         touched, so a kill between syscalls can only cut at a frame
         boundary or inside the deliberately torn tail *)
      let buf = Buffer.create 512 in
      let buf_seg = ref (last_seg f) in
      let buf_off = ref !buf_seg.size in
      let flush_buf () =
        if Buffer.length buf > 0 then begin
          let s = !buf_seg in
          let b = Buffer.to_bytes buf in
          pwrite (seg_fd s) s.path ~off:!buf_off b (Bytes.length b);
          s.size <- !buf_off + Bytes.length b;
          Buffer.clear buf
        end
      in
      List.iteri
        (fun i payload ->
          let is_last = i = n - 1 in
          let s = !buf_seg in
          let full = frame_bytes payload in
          if
            s.size + Buffer.length buf + Bytes.length full > f.seg_max
            && s.first_idx < !idx
          then begin
            flush_buf ();
            let ns = new_segment f ~first_idx:!idx in
            buf_seg := ns;
            buf_off := ns.size
          end;
          let written =
            match (tear, is_last) with
            | Some (Fault.Truncate_tail cut), true ->
                let keep = max 0 (String.length payload - cut) in
                Bytes.sub full 0 (8 + keep)
            | Some (Fault.Flip_byte i), true ->
                let b = Bytes.copy full in
                let p = 8 + i in
                Bytes.set b p
                  (Char.chr (Char.code (Bytes.get b p) lxor 0x40));
                b
            | _ -> full
          in
          record_pos f !idx ~seg:!buf_seg.id
            ~off:(!buf_off + Buffer.length buf)
            ~len:(Bytes.length written);
          Buffer.add_bytes buf written;
          incr idx)
        frames;
      flush_buf ();
      f.count <- start_idx + n;
      (* force: the whole point. A torn flush is a power failure mid-write;
         the sync never happened. *)
      if tear = None then begin
        let s = last_seg f in
        fsync_fd f s.path (seg_fd s);
        f.need_sync <- false
      end

(* Cold-restore install: replace whatever a fresh open created with the
   archived frame sequence starting at absolute idx [low]. Only valid on
   a device that has not accepted any flushes yet. *)
let install t ~low ~master ~frames =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      List.iter
        (fun s ->
          (match s.fd with
          | Some fd -> Unix.close fd; s.fd <- None
          | None -> ());
          try Sys.remove s.path with Sys_error _ -> ())
        f.segs;
      f.segs <- [];
      f.pos_seg <- [||];
      f.pos_off <- [||];
      f.pos_len <- [||];
      f.count <- low;
      ignore (new_segment f ~first_idx:low);
      flush t ~start_idx:low ~frames ~tear:None;
      f.master <- master;
      f.low <- low;
      write_ctl f

(* --- in-place rewrite (history surgery, baselines only) ------------- *)

let rewrite t ~idx payload =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      if idx < f.count then begin
        let s = find_seg f f.pos_seg.(idx) in
        let b = frame_bytes payload in
        pwrite (seg_fd s) s.path ~off:(f.pos_off.(idx)) b (Bytes.length b);
        (* healing a previously torn tail frame can extend the segment *)
        let endpos = f.pos_off.(idx) + Bytes.length b in
        if endpos > s.size then s.size <- endpos;
        f.pos_len.(idx) <- Bytes.length b;
        f.need_sync <- true
      end

(* --- control-state updates ------------------------------------------ *)

let set_master t master =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      f.master <- master;
      write_ctl f

let set_low t low =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      f.low <- low;
      write_ctl f;
      (* reclaim whole segments that fell entirely below the truncation
         point (a straddling segment keeps its dead frames; the reopen
         scan skips them) *)
      let rec keep_from = function
        | a :: (b :: _ as rest) when b.first_idx <= low ->
            (match a.fd with Some fd -> Unix.close fd; a.fd <- None | None -> ());
            (try Sys.remove a.path with Sys_error _ -> ());
            keep_from rest
        | segs -> segs
      in
      f.segs <- keep_from f.segs

let sync t =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      let s = last_seg f in
      fsync_fd f s.path (seg_fd s);
      f.need_sync <- false

let fsyncs = function Sim_dev -> 0 | File_dev f -> f.fsyncs

let close t =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      if not f.closed then begin
        f.closed <- true;
        List.iter
          (fun s ->
            match s.fd with
            | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()); s.fd <- None
            | None -> ())
          f.segs;
        try Unix.close f.ctl_fd with Unix.Unix_error _ -> ()
      end
