(** I/O accounting for the simulated log device.

    The paper's efficiency argument (§4.2) is about log access patterns:
    appends are cheap, sequential sweeps are cheap, random mid-log reads
    and in-place rewrites are expensive. These counters make that
    measurable. The device model keeps one log page buffered; touching a
    record on another page costs a page fetch, and a fetch of a page not
    adjacent to the previous one also costs a random seek. *)

type t = {
  mutable appends : int;  (** records appended *)
  mutable reads : int;  (** stable records decoded *)
  mutable page_fetches : int;  (** log pages brought into the buffer *)
  mutable random_seeks : int;  (** non-adjacent page fetches *)
  mutable rewrites : int;  (** in-place record rewrites (history surgery) *)
  mutable rewrite_page_writes : int;  (** pages written back by rewrites *)
  mutable flushes : int;  (** flush calls that wrote something *)
  mutable bytes_flushed : int;
  mutable reservations : int;  (** CLR-space reservations taken *)
  mutable admission_rejects : int;  (** appends refused with [Log_full] *)
  size_counts : int array;
      (** record-size histogram buckets (see {!size_bounds}); last slot
          is the overflow bucket *)
  mutable size_sum : int;  (** total encoded bytes observed *)
}

val size_bounds : int array
(** Inclusive byte upper bounds of the size-histogram buckets. *)

val create : unit -> t
val reset : t -> unit

val observe_size : t -> int -> unit
(** Record one encoded record of the given size into the histogram.
    A field increment pair — no allocation. *)

val copy : t -> t
val diff : t -> t -> t
(** [diff after before] — counter-wise subtraction. *)

val size_hist : t -> Ariesrh_obs.Metrics.hist
val register : t -> Ariesrh_obs.Metrics.t -> unit
(** Register every counter plus the size histogram, read-through. *)

val pp : Format.formatter -> t -> unit
