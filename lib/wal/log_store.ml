open Ariesrh_types
module Fault = Ariesrh_fault.Fault

exception Corrupt_record of { lsn : Lsn.t; error : Record.decode_error }

type dimension = Bytes | Records

let pp_dimension ppf = function
  | Bytes -> Format.pp_print_string ppf "bytes"
  | Records -> Format.pp_print_string ppf "records"

exception
  Log_full of {
    dimension : dimension;
    need : int;
    used : int;
    reserved : int;
    capacity : int;
  }

type t = {
  page_size : int;
  mutable enc : string array;  (* encoded records, index = lsn - 1 *)
  mutable offsets : int array;  (* byte offset of each record *)
  mutable count : int;  (* total records, stable + tail *)
  mutable next_offset : int;
  mutable durable_count : int;  (* records flushed *)
  mutable buffered_page : int;  (* log page currently in the device buffer *)
  mutable master : int;  (* stable pointer to the last complete checkpoint *)
  mutable low : int;  (* records with lsn <= low were truncated away *)
  (* A tear scheduled for the last record of the most recent flush:
     (index, corrupted bytes). It materialises only if a crash happens
     before the next flush rewrites that log page. *)
  mutable pending_tear : (int * string) option;
  mutable amputated_total : int;
      (* lifetime count of corrupt tail records dropped by recover_tail;
         lets harnesses observe amputation even when the restart that
         performed it is itself killed by an injected crash *)
  (* --- bounded-log accounting --- *)
  mutable cap_bytes : int option;  (* hard byte budget; None = unbounded *)
  mutable cap_records : int option;
  mutable live_bytes : int;  (* encoded bytes of retained records *)
  mutable reserved_bytes : int;  (* pool set aside for rollback CLRs *)
  mutable reserved_records : int;
  fault : Fault.t;
  stats : Log_stats.t;
  (* The stable device mirroring the durable prefix: a no-op for the sim
     backend, the segmented WAL file for the file backend. The in-memory
     arrays stay authoritative in-process. *)
  device : Log_device.t;
  (* Observer for in-place history surgery: continuous WAL archiving
     must see rewritten bytes, or a cold restore resurrects the
     pre-surgery attribution the live log has since disowned. *)
  mutable rewrite_hook : (idx:int -> string -> unit) option;
  (* --- decoded-record cache --- *)
  cache : (int, Record.t) Hashtbl.t;  (* idx -> decoded record *)
  cache_cap : int;  (* 0 = caching disabled *)
  mutable decode_calls : int;  (* lifetime Record.decode invocations *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ?(page_size = 4096) ?capacity_bytes ?capacity_records
    ?(record_cache = 8192) ?(fault = Fault.none ())
    ?(backend = Ariesrh_storage.Backend.Sim) () =
  let device =
    match backend with
    | Ariesrh_storage.Backend.Sim -> Log_device.sim
    | Ariesrh_storage.Backend.File { dir } -> Log_device.create ~dir ()
  in
  let t =
    {
      page_size;
      enc = [||];
      offsets = [||];
      count = 0;
      next_offset = 0;
      durable_count = 0;
      buffered_page = -1;
      master = 0;
      low = 0;
      pending_tear = None;
      amputated_total = 0;
      cap_bytes = capacity_bytes;
      cap_records = capacity_records;
      live_bytes = 0;
      reserved_bytes = 0;
      reserved_records = 0;
      fault;
      stats = Log_stats.create ();
      device;
      rewrite_hook = None;
      cache = Hashtbl.create (min 64 (max 1 record_cache));
      cache_cap = max 0 record_cache;
      decode_calls = 0;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  (* Reopen path: rebuild the durable prefix from whatever frames the
     previous process (possibly killed mid-run) left on disk. Everything
     loaded was flushed — the volatile tail died with that process. *)
  (match Log_device.load device with
  | None -> ()
  | Some l ->
      t.enc <- Array.copy l.Log_device.enc;
      t.count <- l.Log_device.count;
      t.durable_count <- l.Log_device.count;
      t.master <- l.Log_device.master;
      t.low <- l.Log_device.low;
      t.offsets <- Array.make (max 1 t.count) 0;
      let off = ref 0 in
      for i = 0 to t.count - 1 do
        t.offsets.(i) <- !off;
        off := !off + String.length t.enc.(i);
        if i >= t.low then
          t.live_bytes <- t.live_bytes + String.length t.enc.(i)
      done;
      t.next_offset <- !off);
  t

let stats t = t.stats
let decode_calls t = t.decode_calls
let record_cache_hits t = t.cache_hits
let record_cache_misses t = t.cache_misses

(* The cache holds only successfully decoded records, keyed by array
   index. It must be invisible: I/O accounting (reads, page fetches,
   seeks) is charged identically on hits and misses, and every mutation
   of [enc] — rewrite, truncate, crash-applied tears, tail amputation,
   LSN reuse after a crash — evicts the affected indices. Bounded
   deterministically: when full, it is cleared wholesale (no
   recency/randomness, so same-seed runs stay byte-identical). *)
let raw_decode t s =
  t.decode_calls <- t.decode_calls + 1;
  Record.decode s

let decode_at t idx =
  if t.cache_cap = 0 then raw_decode t t.enc.(idx)
  else
    match Hashtbl.find_opt t.cache idx with
    | Some r ->
        t.cache_hits <- t.cache_hits + 1;
        Ok r
    | None ->
        t.cache_misses <- t.cache_misses + 1;
        let res = raw_decode t t.enc.(idx) in
        (match res with
        | Ok r ->
            if Hashtbl.length t.cache >= t.cache_cap then Hashtbl.reset t.cache;
            Hashtbl.replace t.cache idx r
        | Error _ -> ());
        res

let cache_invalidate t idx = Hashtbl.remove t.cache idx

let cache_invalidate_range t lo hi =
  for i = lo to hi do
    Hashtbl.remove t.cache i
  done
let amputated_total t = t.amputated_total
let head t = Lsn.of_int t.count
let durable t = Lsn.of_int t.durable_count
let length t = t.count

let ensure_capacity t =
  let cap = Array.length t.enc in
  if t.count = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ne = Array.make ncap "" in
    Array.blit t.enc 0 ne 0 t.count;
    t.enc <- ne;
    let no = Array.make ncap 0 in
    Array.blit t.offsets 0 no 0 t.count;
    t.offsets <- no
  end

let capacity_bytes t = t.cap_bytes
let capacity_records t = t.cap_records
let set_capacity_bytes t c = t.cap_bytes <- c
let set_capacity_records t c = t.cap_records <- c
let used_bytes t = t.live_bytes
let used_records t = t.count - t.low
let reserved_bytes t = t.reserved_bytes
let reserved_records t = t.reserved_records

let pressure t =
  let ratio used reserved = function
    | None -> 0.
    | Some cap when cap <= 0 -> 1.
    | Some cap -> float_of_int (used + reserved) /. float_of_int cap
  in
  max
    (ratio t.live_bytes t.reserved_bytes t.cap_bytes)
    (ratio (used_records t) t.reserved_records t.cap_records)

(* A log-pressure squeeze shrinks the byte budget mid-run. On an
   unbounded log it imposes one, scaled from current usage, so the fault
   is meaningful in every configuration. *)
let apply_squeeze t =
  match Fault.on_log_append t.fault with
  | None -> ()
  | Some keep ->
      let base =
        match t.cap_bytes with
        | Some c -> c
        | None -> max 1 (t.live_bytes + t.reserved_bytes)
      in
      let floor = t.live_bytes + t.reserved_bytes in
      t.cap_bytes <-
        Some (max floor (int_of_float (keep *. float_of_int base)))

let admit t ~bytes ~records =
  (match t.cap_bytes with
  | Some cap when t.live_bytes + t.reserved_bytes + bytes > cap ->
      t.stats.admission_rejects <- t.stats.admission_rejects + 1;
      raise
        (Log_full
           {
             dimension = Bytes;
             need = bytes;
             used = t.live_bytes;
             reserved = t.reserved_bytes;
             capacity = cap;
           })
  | _ -> ());
  match t.cap_records with
  | Some cap when used_records t + t.reserved_records + records > cap ->
      t.stats.admission_rejects <- t.stats.admission_rejects + 1;
      raise
        (Log_full
           {
             dimension = Records;
             need = records;
             used = used_records t;
             reserved = t.reserved_records;
             capacity = cap;
           })
  | _ -> ()

let reserve t ~bytes ~records =
  admit t ~bytes ~records;
  t.reserved_bytes <- t.reserved_bytes + bytes;
  t.reserved_records <- t.reserved_records + records;
  t.stats.reservations <- t.stats.reservations + 1

let unreserve t ~bytes ~records =
  t.reserved_bytes <- max 0 (t.reserved_bytes - bytes);
  t.reserved_records <- max 0 (t.reserved_records - records)

let store t s =
  ensure_capacity t;
  (* this index may have held an amputated/crash-discarded record whose
     LSN is being reused — a stale decode must not survive that *)
  cache_invalidate t t.count;
  t.enc.(t.count) <- s;
  t.offsets.(t.count) <- t.next_offset;
  t.next_offset <- t.next_offset + String.length s;
  t.count <- t.count + 1;
  t.live_bytes <- t.live_bytes + String.length s;
  t.stats.appends <- t.stats.appends + 1;
  Log_stats.observe_size t.stats (String.length s);
  Lsn.of_int t.count

let append t r =
  apply_squeeze t;
  let s = Record.encode r in
  admit t ~bytes:(String.length s) ~records:1;
  store t s

(* Bypasses admission: for records whose space was paid for up front by
   [reserve] (rollback CLRs, Abort/Commit/End, checkpoint records) and
   for everything restart recovery writes. The pool is not drawn down
   here — the caller releases exact obligations via [unreserve], so the
   pool always equals the sum of live obligations. *)
let append_reserved t r =
  apply_squeeze t;
  store t (Record.encode r)

let append_with_reserve t ~reserve_bytes ~reserve_records r =
  apply_squeeze t;
  let s = Record.encode r in
  admit t
    ~bytes:(String.length s + reserve_bytes)
    ~records:(1 + reserve_records);
  t.reserved_bytes <- t.reserved_bytes + reserve_bytes;
  t.reserved_records <- t.reserved_records + reserve_records;
  t.stats.reservations <- t.stats.reservations + 1;
  store t s

let flush t ~upto =
  let target = min (Lsn.to_int upto) t.count in
  if target > t.durable_count then begin
    let start_idx = t.durable_count in
    let bytes = ref 0 in
    for i = t.durable_count to target - 1 do
      bytes := !bytes + String.length t.enc.(i)
    done;
    (* rewriting the tail log page heals any previously scheduled tear —
       on the file backend the torn frame must be healed for real *)
    (match t.pending_tear with
    | Some (idx, _) when idx < t.durable_count ->
        Log_device.rewrite t.device ~idx t.enc.(idx)
    | _ -> ());
    t.pending_tear <- None;
    t.durable_count <- target;
    t.stats.flushes <- t.stats.flushes + 1;
    t.stats.bytes_flushed <- t.stats.bytes_flushed + !bytes;
    let last = t.enc.(target - 1) in
    let d = Fault.on_log_flush t.fault ~last_len:(String.length last) in
    (* the device write happens before the injected power failure fires:
       a torn flush leaves a genuinely damaged file tail and no fsync *)
    (if Log_device.is_file t.device then
       let frames = ref [] in
       (for i = target - 1 downto start_idx do
          frames := t.enc.(i) :: !frames
        done);
       Log_device.flush t.device ~start_idx ~frames:!frames ~tear:d.Fault.tear);
    (match d.Fault.tear with
    | None -> ()
    | Some (Fault.Truncate_tail n) ->
        t.pending_tear <-
          Some (target - 1, String.sub last 0 (max 0 (String.length last - n)))
    | Some (Fault.Flip_byte i) ->
        let b = Bytes.of_string last in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        t.pending_tear <- Some (target - 1, Bytes.to_string b));
    if d.Fault.crash then Fault.die t.fault Fault.Log_flush
  end

let crash t =
  (match t.pending_tear with
  | Some (idx, bytes) ->
      if idx < t.durable_count then begin
        t.live_bytes <-
          t.live_bytes - String.length t.enc.(idx) + String.length bytes;
        t.enc.(idx) <- bytes;
        cache_invalidate t idx
      end;
      t.pending_tear <- None
  | None -> ());
  (* volatile tail dies with the crash — cached decodes of it must too *)
  cache_invalidate_range t t.durable_count (t.count - 1);
  for i = t.durable_count to t.count - 1 do
    t.live_bytes <- t.live_bytes - String.length t.enc.(i)
  done;
  t.count <- t.durable_count;
  t.next_offset <-
    (if t.count = 0 then 0
     else t.offsets.(t.count - 1) + String.length t.enc.(t.count - 1));
  t.buffered_page <- -1;
  (* reservations are volatile bookkeeping for live transactions; after a
     crash no transaction is live, so the pool resets and restart's own
     CLRs go through [append_reserved] unchecked *)
  t.reserved_bytes <- 0;
  t.reserved_records <- 0

let master t = Lsn.of_int t.master

let set_master t lsn =
  if Lsn.to_int lsn > t.durable_count then
    invalid_arg "Log_store.set_master: checkpoint record not durable";
  t.master <- Lsn.to_int lsn;
  Log_device.set_master t.device t.master

let page_of t idx = t.offsets.(idx) / t.page_size

let touch_page t idx =
  let page = page_of t idx in
  if page <> t.buffered_page then begin
    t.stats.page_fetches <- t.stats.page_fetches + 1;
    if t.buffered_page >= 0 && abs (page - t.buffered_page) > 1 then
      t.stats.random_seeks <- t.stats.random_seeks + 1;
    t.buffered_page <- page
  end

let check_lsn t lsn =
  let i = Lsn.to_int lsn in
  if i <= t.low then
    invalid_arg (Printf.sprintf "Log_store: lsn %d was truncated away" i);
  if i < 1 || i > t.count then
    invalid_arg
      (Printf.sprintf "Log_store: lsn %d out of range [1..%d]" i t.count);
  i - 1

let truncate t ~below =
  let b = Lsn.to_int below in
  if t.master = 0 || b > t.master then
    invalid_arg "Log_store.truncate: would discard records restart needs";
  if b > t.durable_count then
    invalid_arg "Log_store.truncate: prefix not durable";
  let reclaimed = max 0 (b - 1 - t.low) in
  if reclaimed > 0 then begin
    (* drop the encoded bytes so the space is really gone *)
    cache_invalidate_range t t.low (b - 2);
    for i = t.low to b - 2 do
      t.live_bytes <- t.live_bytes - String.length t.enc.(i);
      t.enc.(i) <- ""
    done;
    t.low <- b - 1;
    Log_device.set_low t.device t.low
  end;
  reclaimed

let truncated_below t = Lsn.of_int (t.low + 1)

let read_result t lsn =
  let idx = check_lsn t lsn in
  if idx < t.durable_count then begin
    t.stats.reads <- t.stats.reads + 1;
    touch_page t idx
  end;
  decode_at t idx

let read t lsn =
  match read_result t lsn with
  | Ok r -> r
  | Error error -> raise (Corrupt_record { lsn; error })

let rewrite t lsn r =
  let idx = check_lsn t lsn in
  let s = Record.encode r in
  if String.length s <> String.length t.enc.(idx) then
    invalid_arg "Log_store.rewrite: record size changed";
  (* rewriting a durable record is a synchronous in-place I/O: it gets
     its own crash point, fired before the bytes change so an injected
     crash leaves the record intact *)
  if idx < t.durable_count then Fault.on_log_rewrite t.fault;
  t.enc.(idx) <- s;
  cache_invalidate t idx;
  t.stats.rewrites <- t.stats.rewrites + 1;
  if idx < t.durable_count then begin
    Log_device.rewrite t.device ~idx s;
    touch_page t idx;
    t.stats.rewrite_page_writes <- t.stats.rewrite_page_writes + 1
  end;
  match t.rewrite_hook with None -> () | Some h -> h ~idx s

let set_rewrite_hook t h = t.rewrite_hook <- h

let iter_forward ?upto t ~from f =
  let start = if Lsn.is_nil from then 1 else Lsn.to_int from in
  let start = max start (t.low + 1) in
  let stop =
    match upto with
    | None -> t.count
    | Some l -> min (Lsn.to_int l) t.count
  in
  for i = start to stop do
    f (Lsn.of_int i) (read t (Lsn.of_int i))
  done

let iter_valid_forward ?upto t ~from f =
  let start = if Lsn.is_nil from then 1 else Lsn.to_int from in
  let start = max start (t.low + 1) in
  let stop =
    match upto with
    | None -> t.count
    | Some l -> min (Lsn.to_int l) t.count
  in
  let corrupt = ref None in
  let i = ref start in
  while !corrupt = None && !i <= stop do
    let lsn = Lsn.of_int !i in
    (match read_result t lsn with
    | Ok r -> f lsn r
    | Error e -> corrupt := Some (lsn, e));
    incr i
  done;
  !corrupt

let iter_backward t ~from f =
  let start = if Lsn.is_nil from then t.count else Lsn.to_int from in
  for i = start downto t.low + 1 do
    f (Lsn.of_int i) (read t (Lsn.of_int i))
  done

let recover_tail t =
  let dropped = ref [] in
  let continue = ref true in
  while !continue && t.count > t.low do
    (* decode the raw bytes, never a cached entry: this is the integrity
       check on what actually survived the crash *)
    match raw_decode t t.enc.(t.count - 1) with
    | Ok _ -> continue := false
    | Error e ->
        dropped := (Lsn.of_int t.count, e) :: !dropped;
        cache_invalidate t (t.count - 1);
        t.live_bytes <- t.live_bytes - String.length t.enc.(t.count - 1);
        t.enc.(t.count - 1) <- "";
        t.count <- t.count - 1;
        t.durable_count <- min t.durable_count t.count;
        t.amputated_total <- t.amputated_total + 1
  done;
  t.next_offset <-
    (if t.count = 0 then 0
     else t.offsets.(t.count - 1) + String.length t.enc.(t.count - 1));
  t.pending_tear <- None;
  if t.master > t.count then begin
    (* the master checkpoint was amputated with the corrupt tail; fall
       back to a full-scan restart from the log's beginning *)
    if t.low > 0 then
      invalid_arg
        "Log_store.recover_tail: master checkpoint corrupt after truncation";
    t.master <- 0
  end;
  !dropped

(* --- media: archive access, scrub and heal -------------------------- *)

(* None of these advance the fault injector's I/O clock or the decode
   counters: they are the archiver's and the scrubber's own access
   paths, and integrity maintenance must never shift a crash schedule
   (or an E16-gated counter). *)

let check_idx t idx =
  if idx < t.low || idx >= t.durable_count then
    invalid_arg
      (Printf.sprintf "Log_store: idx %d outside durable window [%d..%d)"
         idx t.low t.durable_count)

(* Encoded bytes of a durable record, verbatim — the archiver's read. *)
let raw_get t ~idx =
  check_idx t idx;
  t.enc.(idx)

(* The continuous archiver must stop short of a record whose stable copy
   is scheduled to tear: archiving it clean would resurrect bytes that a
   crash before the next flush amputates. *)
let archive_bound t =
  match t.pending_tear with
  | Some (idx, _) -> min idx t.durable_count
  | None -> t.durable_count

(* Raw integrity check: does the stored record still decode? Every
   record carries its own trailing FNV-1a checksum, so rot anywhere in
   the payload is caught here. Cache-bypassing by construction. *)
let record_intact t ~idx =
  check_idx t idx;
  match Record.decode t.enc.(idx) with Ok _ -> true | Error _ -> false

(* Heal a rotted durable record from its archive copy. *)
let heal_record t ~idx s =
  check_idx t idx;
  if String.length s <> String.length t.enc.(idx) then
    invalid_arg "Log_store.heal_record: archived copy length mismatch";
  t.enc.(idx) <- s;
  cache_invalidate t idx;
  Log_device.rewrite t.device ~idx s

(* Injection primitive: flip bits in one durable record's stored bytes,
   memory and device alike. The device frame is rewritten with a crc
   over the rotted payload, so the reopen scan loads the rot verbatim
   and detection happens — as on Sim — at the record checksum. *)
let bitrot_record t ~idx =
  check_idx t idx;
  if String.length t.enc.(idx) > 0 then begin
    let b = Bytes.of_string t.enc.(idx) in
    let i = Bytes.length b - 1 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x08));
    t.enc.(idx) <- Bytes.to_string b;
    cache_invalidate t idx;
    Log_device.rewrite t.device ~idx t.enc.(idx)
  end

(* Cold-restore install: populate an empty, freshly created store with
   the archived record sequence (absolute indices [low..low+n)). The
   store comes out exactly as a reopen after the archived history:
   everything durable, master set, records below [low] reclaimed. *)
let install_archive t ~low ~master frames =
  if t.count <> 0 then
    invalid_arg "Log_store.install_archive: store not empty";
  let n = Array.length frames in
  let count = low + n in
  if master > count then
    invalid_arg "Log_store.install_archive: master beyond archived head";
  t.enc <- Array.make (max 1 count) "";
  Array.blit frames 0 t.enc low n;
  t.offsets <- Array.make (max 1 count) 0;
  let off = ref 0 in
  for i = 0 to count - 1 do
    t.offsets.(i) <- !off;
    off := !off + String.length t.enc.(i);
    if i >= low then t.live_bytes <- t.live_bytes + String.length t.enc.(i)
  done;
  t.next_offset <- !off;
  t.count <- count;
  t.durable_count <- count;
  t.master <- master;
  t.low <- low;
  t.pending_tear <- None;
  Hashtbl.reset t.cache;
  Log_device.install t.device ~low ~master ~frames:(Array.to_list frames)

let sync t = Log_device.sync t.device
let fsyncs t = Log_device.fsyncs t.device
let close t = Log_device.close t.device

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  Log_stats.register t.stats m;
  M.counter m ~help:"corrupt stable tail records dropped at restart"
    "ariesrh_log_amputated_total" (fun () -> t.amputated_total);
  M.gauge m ~help:"encoded bytes of retained records"
    "ariesrh_log_used_bytes" (fun () -> t.live_bytes);
  M.gauge m ~help:"retained record count" "ariesrh_log_used_records"
    (fun () -> used_records t);
  M.gauge m ~help:"bytes reserved for rollback CLRs"
    "ariesrh_log_reserved_bytes" (fun () -> t.reserved_bytes);
  M.gauge m ~help:"records reserved for rollback CLRs"
    "ariesrh_log_reserved_records" (fun () -> t.reserved_records);
  M.gauge m ~help:"LSN of the next record to be appended"
    "ariesrh_log_head" (fun () -> t.count);
  M.gauge m ~help:"durable LSN" "ariesrh_log_durable" (fun () ->
      t.durable_count);
  M.gauge_f m ~help:"log-space pressure in [0,1]" "ariesrh_log_pressure"
    (fun () -> pressure t)
