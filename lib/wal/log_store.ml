open Ariesrh_types
module Fault = Ariesrh_fault.Fault

exception Corrupt_record of { lsn : Lsn.t; error : Record.decode_error }

type t = {
  page_size : int;
  mutable enc : string array;  (* encoded records, index = lsn - 1 *)
  mutable offsets : int array;  (* byte offset of each record *)
  mutable count : int;  (* total records, stable + tail *)
  mutable next_offset : int;
  mutable durable_count : int;  (* records flushed *)
  mutable buffered_page : int;  (* log page currently in the device buffer *)
  mutable master : int;  (* stable pointer to the last complete checkpoint *)
  mutable low : int;  (* records with lsn <= low were truncated away *)
  (* A tear scheduled for the last record of the most recent flush:
     (index, corrupted bytes). It materialises only if a crash happens
     before the next flush rewrites that log page. *)
  mutable pending_tear : (int * string) option;
  mutable amputated_total : int;
      (* lifetime count of corrupt tail records dropped by recover_tail;
         lets harnesses observe amputation even when the restart that
         performed it is itself killed by an injected crash *)
  fault : Fault.t;
  stats : Log_stats.t;
}

let create ?(page_size = 4096) ?(fault = Fault.none ()) () =
  {
    page_size;
    enc = [||];
    offsets = [||];
    count = 0;
    next_offset = 0;
    durable_count = 0;
    buffered_page = -1;
    master = 0;
    low = 0;
    pending_tear = None;
    amputated_total = 0;
    fault;
    stats = Log_stats.create ();
  }

let stats t = t.stats
let amputated_total t = t.amputated_total
let head t = Lsn.of_int t.count
let durable t = Lsn.of_int t.durable_count
let length t = t.count

let ensure_capacity t =
  let cap = Array.length t.enc in
  if t.count = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ne = Array.make ncap "" in
    Array.blit t.enc 0 ne 0 t.count;
    t.enc <- ne;
    let no = Array.make ncap 0 in
    Array.blit t.offsets 0 no 0 t.count;
    t.offsets <- no
  end

let append t r =
  ensure_capacity t;
  let s = Record.encode r in
  t.enc.(t.count) <- s;
  t.offsets.(t.count) <- t.next_offset;
  t.next_offset <- t.next_offset + String.length s;
  t.count <- t.count + 1;
  t.stats.appends <- t.stats.appends + 1;
  Lsn.of_int t.count

let flush t ~upto =
  let target = min (Lsn.to_int upto) t.count in
  if target > t.durable_count then begin
    let bytes = ref 0 in
    for i = t.durable_count to target - 1 do
      bytes := !bytes + String.length t.enc.(i)
    done;
    (* rewriting the tail log page heals any previously scheduled tear *)
    t.pending_tear <- None;
    t.durable_count <- target;
    t.stats.flushes <- t.stats.flushes + 1;
    t.stats.bytes_flushed <- t.stats.bytes_flushed + !bytes;
    let last = t.enc.(target - 1) in
    let d = Fault.on_log_flush t.fault ~last_len:(String.length last) in
    (match d.Fault.tear with
    | None -> ()
    | Some (Fault.Truncate_tail n) ->
        t.pending_tear <-
          Some (target - 1, String.sub last 0 (max 0 (String.length last - n)))
    | Some (Fault.Flip_byte i) ->
        let b = Bytes.of_string last in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        t.pending_tear <- Some (target - 1, Bytes.to_string b));
    if d.Fault.crash then Fault.die t.fault Fault.Log_flush
  end

let crash t =
  (match t.pending_tear with
  | Some (idx, bytes) ->
      if idx < t.durable_count then t.enc.(idx) <- bytes;
      t.pending_tear <- None
  | None -> ());
  t.count <- t.durable_count;
  t.next_offset <-
    (if t.count = 0 then 0
     else t.offsets.(t.count - 1) + String.length t.enc.(t.count - 1));
  t.buffered_page <- -1

let master t = Lsn.of_int t.master

let set_master t lsn =
  if Lsn.to_int lsn > t.durable_count then
    invalid_arg "Log_store.set_master: checkpoint record not durable";
  t.master <- Lsn.to_int lsn

let page_of t idx = t.offsets.(idx) / t.page_size

let touch_page t idx =
  let page = page_of t idx in
  if page <> t.buffered_page then begin
    t.stats.page_fetches <- t.stats.page_fetches + 1;
    if t.buffered_page >= 0 && abs (page - t.buffered_page) > 1 then
      t.stats.random_seeks <- t.stats.random_seeks + 1;
    t.buffered_page <- page
  end

let check_lsn t lsn =
  let i = Lsn.to_int lsn in
  if i <= t.low then
    invalid_arg (Printf.sprintf "Log_store: lsn %d was truncated away" i);
  if i < 1 || i > t.count then
    invalid_arg
      (Printf.sprintf "Log_store: lsn %d out of range [1..%d]" i t.count);
  i - 1

let truncate t ~below =
  let b = Lsn.to_int below in
  if t.master = 0 || b > t.master then
    invalid_arg "Log_store.truncate: would discard records restart needs";
  if b > t.durable_count then
    invalid_arg "Log_store.truncate: prefix not durable";
  let reclaimed = max 0 (b - 1 - t.low) in
  if reclaimed > 0 then begin
    (* drop the encoded bytes so the space is really gone *)
    for i = t.low to b - 2 do
      t.enc.(i) <- ""
    done;
    t.low <- b - 1
  end;
  reclaimed

let truncated_below t = Lsn.of_int (t.low + 1)

let read_result t lsn =
  let idx = check_lsn t lsn in
  if idx < t.durable_count then begin
    t.stats.reads <- t.stats.reads + 1;
    touch_page t idx
  end;
  Record.decode t.enc.(idx)

let read t lsn =
  match read_result t lsn with
  | Ok r -> r
  | Error error -> raise (Corrupt_record { lsn; error })

let rewrite t lsn r =
  let idx = check_lsn t lsn in
  let s = Record.encode r in
  if String.length s <> String.length t.enc.(idx) then
    invalid_arg "Log_store.rewrite: record size changed";
  t.enc.(idx) <- s;
  t.stats.rewrites <- t.stats.rewrites + 1;
  if idx < t.durable_count then begin
    touch_page t idx;
    t.stats.rewrite_page_writes <- t.stats.rewrite_page_writes + 1
  end

let iter_forward ?upto t ~from f =
  let start = if Lsn.is_nil from then 1 else Lsn.to_int from in
  let start = max start (t.low + 1) in
  let stop =
    match upto with
    | None -> t.count
    | Some l -> min (Lsn.to_int l) t.count
  in
  for i = start to stop do
    f (Lsn.of_int i) (read t (Lsn.of_int i))
  done

let iter_valid_forward ?upto t ~from f =
  let start = if Lsn.is_nil from then 1 else Lsn.to_int from in
  let start = max start (t.low + 1) in
  let stop =
    match upto with
    | None -> t.count
    | Some l -> min (Lsn.to_int l) t.count
  in
  let corrupt = ref None in
  let i = ref start in
  while !corrupt = None && !i <= stop do
    let lsn = Lsn.of_int !i in
    (match read_result t lsn with
    | Ok r -> f lsn r
    | Error e -> corrupt := Some (lsn, e));
    incr i
  done;
  !corrupt

let iter_backward t ~from f =
  let start = if Lsn.is_nil from then t.count else Lsn.to_int from in
  for i = start downto t.low + 1 do
    f (Lsn.of_int i) (read t (Lsn.of_int i))
  done

let recover_tail t =
  let dropped = ref [] in
  let continue = ref true in
  while !continue && t.count > t.low do
    match Record.decode t.enc.(t.count - 1) with
    | Ok _ -> continue := false
    | Error e ->
        dropped := (Lsn.of_int t.count, e) :: !dropped;
        t.enc.(t.count - 1) <- "";
        t.count <- t.count - 1;
        t.durable_count <- min t.durable_count t.count;
        t.amputated_total <- t.amputated_total + 1
  done;
  t.next_offset <-
    (if t.count = 0 then 0
     else t.offsets.(t.count - 1) + String.length t.enc.(t.count - 1));
  t.pending_tear <- None;
  if t.master > t.count then begin
    (* the master checkpoint was amputated with the corrupt tail; fall
       back to a full-scan restart from the log's beginning *)
    if t.low > 0 then
      invalid_arg
        "Log_store.recover_tail: master checkpoint corrupt after truncation";
    t.master <- 0
  end;
  !dropped
