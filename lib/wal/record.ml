open Ariesrh_types

type op = Set of { before : int; after : int } | Add of int

type update = { oid : Oid.t; page : Page_id.t; op : op }

type ckpt_status = Ck_active | Ck_committed | Ck_rolling_back

type ckpt_txn = {
  ck_xid : Xid.t;
  ck_status : ckpt_status;
  ck_last_lsn : Lsn.t;
  ck_undo_next : Lsn.t;
}

type ckpt_scope = { ck_invoker : Xid.t; ck_first : Lsn.t; ck_last : Lsn.t }

type ckpt_ob = {
  ck_owner : Xid.t;
  ck_oid : Oid.t;
  ck_deleg : Xid.t option;
  ck_scopes : ckpt_scope list;
}

type ckpt = {
  ck_txns : ckpt_txn list;
  ck_dpt : (Page_id.t * Lsn.t) list;
  ck_obs : ckpt_ob list;
}

type body =
  | Begin
  | Update of update
  | Commit
  | Abort
  | End
  | Clr of { upd : update; undone : Lsn.t; invoker : Xid.t; undo_next : Lsn.t }
  | Delegate of {
      tee : Xid.t;
      tee_prev : Lsn.t;
      oid : Oid.t;
      op : (Lsn.t * Xid.t) option;
    }
  | Ckpt_begin
  | Ckpt_end of ckpt
  | Anchor
  | Rewrite_begin of {
      deleg : (Xid.t * Xid.t * Oid.t) option;
      targets : Lsn.t list;
    }
  | Rewrite_clr of { target : Lsn.t; before : string; after : string }
  | Rewrite_end of { begin_lsn : Lsn.t; committed : bool }
  | Xfer_out of {
      xfer_id : int;
      hop : int;
      oid : Oid.t;
      target : int;
      value : int;
    }
  | Xfer_in of {
      xfer_id : int;
      hop : int;
      oid : Oid.t;
      page : Page_id.t;
      source : int;
      before : int;
      value : int;
    }
  | Xfer_end of { xfer_id : int; oid : Oid.t; committed : bool }

type t = { xid : Xid.t option; prev : Lsn.t; body : body }

let mk xid ~prev body = { xid = Some xid; prev; body }
let mk_system body = { xid = None; prev = Lsn.nil; body }

let writer_exn t =
  match t.xid with
  | Some x -> x
  | None -> invalid_arg "Record.writer_exn: checkpoint record has no writer"

let prev_for t x =
  match (t.body, t.xid) with
  | Delegate { tee; tee_prev; _ }, Some tor ->
      if Xid.equal x tor then t.prev
      else if Xid.equal x tee then tee_prev
      else invalid_arg "Record.prev_for: not on this transaction's chain"
  | _, Some w when Xid.equal w x -> t.prev
  | _ -> invalid_arg "Record.prev_for: not on this transaction's chain"

let set_writer t x = { t with xid = Some x }

let set_prev_for t x lsn =
  match (t.body, t.xid) with
  | Delegate d, Some tor when Xid.equal x d.tee && not (Xid.equal x tor) ->
      { t with body = Delegate { d with tee_prev = lsn } }
  | _, Some w when Xid.equal w x -> { t with prev = lsn }
  | _ -> invalid_arg "Record.set_prev_for: not on this transaction's chain"

let is_update t = match t.body with Update _ -> true | _ -> false

let pp_op ppf = function
  | Set { before; after } -> Format.fprintf ppf "set %d->%d" before after
  | Add d -> Format.fprintf ppf "add %+d" d

let pp_body ppf = function
  | Begin -> Format.pp_print_string ppf "begin"
  | Update u -> Format.fprintf ppf "update %a (%a)" Oid.pp u.oid pp_op u.op
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"
  | End -> Format.pp_print_string ppf "end"
  | Clr { upd; undone; invoker; undo_next } ->
      Format.fprintf ppf "clr %a (%a) undone=%a invoker=%a undo_next=%a" Oid.pp
        upd.oid pp_op upd.op Lsn.pp undone Xid.pp invoker Lsn.pp undo_next
  | Delegate { tee; tee_prev; oid; op } ->
      Format.fprintf ppf "delegate %a%s -> %a (teeBC=%a)" Oid.pp oid
        (match op with
        | None -> ""
        | Some (l, x) -> Format.asprintf "@@%a by %a" Lsn.pp l Xid.pp x)
        Xid.pp tee Lsn.pp tee_prev
  | Ckpt_begin -> Format.pp_print_string ppf "ckpt_begin"
  | Ckpt_end _ -> Format.pp_print_string ppf "ckpt_end"
  | Anchor -> Format.pp_print_string ppf "anchor"
  | Rewrite_begin { deleg; targets } ->
      Format.fprintf ppf "rewrite_begin%s targets=[%a]"
        (match deleg with
        | None -> ""
        | Some (tor, tee, oid) ->
            Format.asprintf " %a: %a->%a" Oid.pp oid Xid.pp tor Xid.pp tee)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Lsn.pp)
        targets
  | Rewrite_clr { target; before; after } ->
      Format.fprintf ppf "rewrite_clr target=%a before=%dB after=%dB" Lsn.pp
        target (String.length before) (String.length after)
  | Rewrite_end { begin_lsn; committed } ->
      Format.fprintf ppf "rewrite_end begin=%a %s" Lsn.pp begin_lsn
        (if committed then "committed" else "aborted")
  | Xfer_out { xfer_id; hop; oid; target; value } ->
      Format.fprintf ppf "xfer_out #%d hop=%d %a -> shard%d value=%d" xfer_id
        hop Oid.pp oid target value
  | Xfer_in { xfer_id; hop; oid; source; before; value; _ } ->
      Format.fprintf ppf "xfer_in #%d hop=%d %a <- shard%d %d->%d" xfer_id hop
        Oid.pp oid source before value
  | Xfer_end { xfer_id; oid; committed } ->
      Format.fprintf ppf "xfer_end #%d %a %s" xfer_id Oid.pp oid
        (if committed then "committed" else "aborted")

let pp ppf t =
  (match t.xid with
  | Some x -> Format.fprintf ppf "[%a prev=%a] " Xid.pp x Lsn.pp t.prev
  | None -> Format.fprintf ppf "[sys] ");
  pp_body ppf t.body

(* --- codec --- *)

let tag_of_body = function
  | Begin -> 1
  | Update _ -> 2
  | Commit -> 3
  | Abort -> 4
  | End -> 5
  | Clr _ -> 6
  | Delegate _ -> 7
  | Ckpt_begin -> 8
  | Ckpt_end _ -> 9
  | Anchor -> 10
  | Rewrite_begin _ -> 11
  | Rewrite_clr _ -> 12
  | Rewrite_end _ -> 13
  | Xfer_out _ -> 14
  | Xfer_in _ -> 15
  | Xfer_end _ -> 16

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 then invalid_arg "Record codec: negative u32";
  put_u8 b (v land 0xff);
  put_u8 b ((v lsr 8) land 0xff);
  put_u8 b ((v lsr 16) land 0xff);
  put_u8 b ((v lsr 24) land 0xff)

let put_i64 b v =
  let v = Int64.of_int v in
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let put_op b = function
  | Set { before; after } ->
      put_u8 b 1;
      put_i64 b before;
      put_i64 b after
  | Add d ->
      put_u8 b 2;
      put_i64 b d

let put_update b (u : update) =
  put_u32 b (Oid.to_int u.oid);
  put_u32 b (Page_id.to_int u.page);
  put_op b u.op

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_bytes b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_ckpt b ck =
  put_list b
    (fun b (c : ckpt_txn) ->
      put_u32 b (Xid.to_int c.ck_xid);
      put_u8 b
        (match c.ck_status with
        | Ck_active -> 0
        | Ck_committed -> 1
        | Ck_rolling_back -> 2);
      put_u32 b (Lsn.to_int c.ck_last_lsn);
      put_u32 b (Lsn.to_int c.ck_undo_next))
    ck.ck_txns;
  put_list b
    (fun b (p, l) ->
      put_u32 b (Page_id.to_int p);
      put_u32 b (Lsn.to_int l))
    ck.ck_dpt;
  put_list b
    (fun b (o : ckpt_ob) ->
      put_u32 b (Xid.to_int o.ck_owner);
      put_u32 b (Oid.to_int o.ck_oid);
      put_u32 b (match o.ck_deleg with None -> 0 | Some x -> Xid.to_int x);
      put_list b
        (fun b (s : ckpt_scope) ->
          put_u32 b (Xid.to_int s.ck_invoker);
          put_u32 b (Lsn.to_int s.ck_first);
          put_u32 b (Lsn.to_int s.ck_last))
        o.ck_scopes)
    ck.ck_obs

let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x7fffffff)
    s;
  !h

let encode t =
  let b = Buffer.create 64 in
  put_u8 b (tag_of_body t.body);
  put_u32 b (match t.xid with None -> 0 | Some x -> Xid.to_int x);
  put_u32 b (Lsn.to_int t.prev);
  (match t.body with
  | Begin | Commit | Abort | End | Ckpt_begin | Anchor -> ()
  | Update u -> put_update b u
  | Clr { upd; undone; invoker; undo_next } ->
      put_update b upd;
      put_u32 b (Lsn.to_int undone);
      put_u32 b (Xid.to_int invoker);
      put_u32 b (Lsn.to_int undo_next)
  | Delegate { tee; tee_prev; oid; op } ->
      put_u32 b (Xid.to_int tee);
      put_u32 b (Lsn.to_int tee_prev);
      put_u32 b (Oid.to_int oid);
      (match op with
      | None -> put_u8 b 0
      | Some (l, x) ->
          put_u8 b 1;
          put_u32 b (Lsn.to_int l);
          put_u32 b (Xid.to_int x))
  | Ckpt_end ck -> put_ckpt b ck
  | Rewrite_begin { deleg; targets } ->
      (match deleg with
      | None -> put_u8 b 0
      | Some (tor, tee, oid) ->
          put_u8 b 1;
          put_u32 b (Xid.to_int tor);
          put_u32 b (Xid.to_int tee);
          put_u32 b (Oid.to_int oid));
      put_list b (fun b l -> put_u32 b (Lsn.to_int l)) targets
  | Rewrite_clr { target; before; after } ->
      put_u32 b (Lsn.to_int target);
      put_bytes b before;
      put_bytes b after
  | Rewrite_end { begin_lsn; committed } ->
      put_u32 b (Lsn.to_int begin_lsn);
      put_u8 b (if committed then 1 else 0)
  | Xfer_out { xfer_id; hop; oid; target; value } ->
      put_u32 b xfer_id;
      put_u32 b hop;
      put_u32 b (Oid.to_int oid);
      put_u32 b target;
      put_i64 b value
  | Xfer_in { xfer_id; hop; oid; page; source; before; value } ->
      put_u32 b xfer_id;
      put_u32 b hop;
      put_u32 b (Oid.to_int oid);
      put_u32 b (Page_id.to_int page);
      put_u32 b source;
      put_i64 b before;
      put_i64 b value
  | Xfer_end { xfer_id; oid; committed } ->
      put_u32 b xfer_id;
      put_u32 b (Oid.to_int oid);
      put_u8 b (if committed then 1 else 0));
  let payload = Buffer.contents b in
  let b2 = Buffer.create (String.length payload + 4) in
  Buffer.add_string b2 payload;
  put_u32 b2 (fnv1a payload);
  Buffer.contents b2

type decode_error =
  | Truncated
  | Checksum_mismatch
  | Bad_tag of int
  | Bad_encoding of string

let pp_decode_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated"
  | Checksum_mismatch -> Format.pp_print_string ppf "checksum mismatch"
  | Bad_tag n -> Format.fprintf ppf "bad tag %d" n
  | Bad_encoding what -> Format.fprintf ppf "bad encoding (%s)" what

exception Bad of decode_error

type cursor = { s : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.s then raise (Bad Truncated)

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  let a = get_u8 c in
  let b = get_u8 c in
  let d = get_u8 c in
  let e = get_u8 c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let get_i64 c =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 c)) (8 * i))
  done;
  Int64.to_int !v

let get_op c =
  match get_u8 c with
  | 1 ->
      let before = get_i64 c in
      let after = get_i64 c in
      Set { before; after }
  | 2 -> Add (get_i64 c)
  | n -> raise (Bad (Bad_encoding (Printf.sprintf "op tag %d" n)))

let get_update c =
  let oid = Oid.of_int (get_u32 c) in
  let page = Page_id.of_int (get_u32 c) in
  let op = get_op c in
  { oid; page; op }

let get_list c get =
  let n = get_u32 c in
  List.init n (fun _ -> get c)

let get_bytes c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_ckpt c =
  let ck_txns =
    get_list c (fun c ->
        let ck_xid = Xid.of_int (get_u32 c) in
        let ck_status =
          match get_u8 c with
          | 0 -> Ck_active
          | 1 -> Ck_committed
          | 2 -> Ck_rolling_back
          | n -> raise (Bad (Bad_encoding (Printf.sprintf "ckpt status %d" n)))
        in
        let ck_last_lsn = Lsn.of_int (get_u32 c) in
        let ck_undo_next = Lsn.of_int (get_u32 c) in
        { ck_xid; ck_status; ck_last_lsn; ck_undo_next })
  in
  let ck_dpt =
    get_list c (fun c ->
        let p = Page_id.of_int (get_u32 c) in
        let l = Lsn.of_int (get_u32 c) in
        (p, l))
  in
  let ck_obs =
    get_list c (fun c ->
        let ck_owner = Xid.of_int (get_u32 c) in
        let ck_oid = Oid.of_int (get_u32 c) in
        let d = get_u32 c in
        let ck_deleg = if d = 0 then None else Some (Xid.of_int d) in
        let ck_scopes =
          get_list c (fun c ->
              let ck_invoker = Xid.of_int (get_u32 c) in
              let ck_first = Lsn.of_int (get_u32 c) in
              let ck_last = Lsn.of_int (get_u32 c) in
              { ck_invoker; ck_first; ck_last })
        in
        { ck_owner; ck_oid; ck_deleg; ck_scopes })
  in
  { ck_txns; ck_dpt; ck_obs }

let decode_exn s =
  if String.length s < 13 then raise (Bad Truncated);
  let payload = String.sub s 0 (String.length s - 4) in
  let c = { s; pos = String.length s - 4 } in
  let sum = get_u32 c in
  if sum <> fnv1a payload then raise (Bad Checksum_mismatch);
  let c = { s = payload; pos = 0 } in
  let tag = get_u8 c in
  let xid_raw = get_u32 c in
  let xid = if xid_raw = 0 then None else Some (Xid.of_int xid_raw) in
  let prev = Lsn.of_int (get_u32 c) in
  let body =
    match tag with
    | 1 -> Begin
    | 2 -> Update (get_update c)
    | 3 -> Commit
    | 4 -> Abort
    | 5 -> End
    | 6 ->
        let upd = get_update c in
        let undone = Lsn.of_int (get_u32 c) in
        let invoker = Xid.of_int (get_u32 c) in
        let undo_next = Lsn.of_int (get_u32 c) in
        Clr { upd; undone; invoker; undo_next }
    | 7 ->
        let tee = Xid.of_int (get_u32 c) in
        let tee_prev = Lsn.of_int (get_u32 c) in
        let oid = Oid.of_int (get_u32 c) in
        let op =
          match get_u8 c with
          | 0 -> None
          | _ ->
              let l = Lsn.of_int (get_u32 c) in
              let x = Xid.of_int (get_u32 c) in
              Some (l, x)
        in
        Delegate { tee; tee_prev; oid; op }
    | 8 -> Ckpt_begin
    | 9 -> Ckpt_end (get_ckpt c)
    | 10 -> Anchor
    | 11 ->
        let deleg =
          match get_u8 c with
          | 0 -> None
          | _ ->
              let tor = Xid.of_int (get_u32 c) in
              let tee = Xid.of_int (get_u32 c) in
              let oid = Oid.of_int (get_u32 c) in
              Some (tor, tee, oid)
        in
        let targets = get_list c (fun c -> Lsn.of_int (get_u32 c)) in
        Rewrite_begin { deleg; targets }
    | 12 ->
        let target = Lsn.of_int (get_u32 c) in
        let before = get_bytes c in
        let after = get_bytes c in
        Rewrite_clr { target; before; after }
    | 13 ->
        let begin_lsn = Lsn.of_int (get_u32 c) in
        let committed = get_u8 c <> 0 in
        Rewrite_end { begin_lsn; committed }
    | 14 ->
        let xfer_id = get_u32 c in
        let hop = get_u32 c in
        let oid = Oid.of_int (get_u32 c) in
        let target = get_u32 c in
        let value = get_i64 c in
        Xfer_out { xfer_id; hop; oid; target; value }
    | 15 ->
        let xfer_id = get_u32 c in
        let hop = get_u32 c in
        let oid = Oid.of_int (get_u32 c) in
        let page = Page_id.of_int (get_u32 c) in
        let source = get_u32 c in
        let before = get_i64 c in
        let value = get_i64 c in
        Xfer_in { xfer_id; hop; oid; page; source; before; value }
    | 16 ->
        let xfer_id = get_u32 c in
        let oid = Oid.of_int (get_u32 c) in
        let committed = get_u8 c <> 0 in
        Xfer_end { xfer_id; oid; committed }
    | n -> raise (Bad (Bad_tag n))
  in
  if c.pos <> String.length payload then
    raise (Bad (Bad_encoding "trailing bytes"));
  { xid; prev; body }

let decode s = match decode_exn s with t -> Ok t | exception Bad e -> Error e

let encoded_size t = String.length (encode t)
