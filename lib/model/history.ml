open Ariesrh_types
module Record = Ariesrh_wal.Record
module Log_store = Ariesrh_wal.Log_store

type event =
  | Began of Xid.t
  | Updated of { lsn : Lsn.t; invoker : Xid.t; oid : Oid.t }
  | Delegated of {
      lsn : Lsn.t;
      tor : Xid.t;
      tee : Xid.t;
      oid : Oid.t;
      op : Lsn.t option;
    }
  | Compensated of { lsn : Lsn.t; by : Xid.t; oid : Oid.t; undone : Lsn.t }
  | Committed of Xid.t
  | Aborted of Xid.t
  | Ended of Xid.t

type t = event list

let of_log log =
  let events = ref [] in
  Log_store.iter_forward log ~from:(Log_store.truncated_below log)
    (fun lsn record ->
      let w () = Record.writer_exn record in
      match record.Record.body with
      | Record.Begin -> events := Began (w ()) :: !events
      | Record.Update u ->
          events := Updated { lsn; invoker = w (); oid = u.oid } :: !events
      | Record.Delegate { tee; oid; op; _ } ->
          events :=
            Delegated { lsn; tor = w (); tee; oid; op = Option.map fst op }
            :: !events
      | Record.Clr { upd; undone; _ } ->
          events :=
            Compensated { lsn; by = w (); oid = upd.oid; undone } :: !events
      | Record.Commit -> events := Committed (w ()) :: !events
      | Record.Abort -> events := Aborted (w ()) :: !events
      | Record.End -> events := Ended (w ()) :: !events
      | Record.Anchor | Record.Ckpt_begin | Record.Ckpt_end _
      | Record.Rewrite_begin _ | Record.Rewrite_clr _ | Record.Rewrite_end _
      | Record.Xfer_out _ | Record.Xfer_in _ | Record.Xfer_end _
        -> ());
  List.rev !events

let winners t =
  List.fold_left
    (fun acc -> function Committed x -> Xid.Set.add x acc | _ -> acc)
    Xid.Set.empty t

let losers t =
  let begun =
    List.fold_left
      (fun acc -> function Began x -> Xid.Set.add x acc | _ -> acc)
      Xid.Set.empty t
  in
  Xid.Set.diff begun (winners t)

(* Replay responsibility and delegation chains in one pass. Per update:
   the current responsible transaction and the chain so far. Compensated
   updates are dead and stop participating in delegation transfers. *)
type upd_state = {
  u_oid : Oid.t;
  mutable resp : Xid.t;
  mutable chain : Xid.t list;  (* reverse: most recent first *)
  mutable dead : bool;
}

let replay t =
  let updates : (int, upd_state) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Updated { lsn; invoker; oid } ->
          Hashtbl.replace updates (Lsn.to_int lsn)
            { u_oid = oid; resp = invoker; chain = [ invoker ]; dead = false }
      | Delegated { tor; tee; oid; op; _ } -> (
          match op with
          | Some op_lsn -> (
              match Hashtbl.find_opt updates (Lsn.to_int op_lsn) with
              | Some u when (not u.dead) && Xid.equal u.resp tor ->
                  u.resp <- tee;
                  u.chain <- tee :: u.chain
              | _ -> ())
          | None ->
              Hashtbl.iter
                (fun _ u ->
                  if (not u.dead) && Oid.equal u.u_oid oid && Xid.equal u.resp tor
                  then begin
                    u.resp <- tee;
                    u.chain <- tee :: u.chain
                  end)
                updates)
      | Compensated { undone; _ } -> (
          match Hashtbl.find_opt updates (Lsn.to_int undone) with
          | Some u -> u.dead <- true
          | None -> ())
      | Began _ | Committed _ | Aborted _ | Ended _ -> ())
    t;
  updates

let responsible t =
  Hashtbl.fold
    (fun lsn u acc -> (Lsn.of_int lsn, u.resp) :: acc)
    (replay t) []
  |> List.sort (fun (a, _) (b, _) -> Lsn.compare a b)

let delegation_chain t lsn =
  match Hashtbl.find_opt (replay t) (Lsn.to_int lsn) with
  | None -> []
  | Some u -> List.rev u.chain

(* --- §2.1.2 well-formedness --- *)

type txn_status = Live | Done

let check_well_formed t =
  let status : txn_status Xid.Tbl.t = Xid.Tbl.create 16 in
  let decided : Xid.Set.t ref = ref Xid.Set.empty in
  (* membership(x): objects x currently "has" — invoked or received and
     not delegated away since (the engine's Ob_List membership) *)
  let membership : Oid.Set.t Xid.Tbl.t = Xid.Tbl.create 16 in
  let member x =
    Option.value ~default:Oid.Set.empty (Xid.Tbl.find_opt membership x)
  in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec go = function
    | [] -> Ok ()
    | ev :: rest -> (
        match ev with
        | Began x ->
            if Xid.Tbl.mem status x then err "%a began twice" Xid.pp x
            else begin
              Xid.Tbl.replace status x Live;
              go rest
            end
        | Updated { invoker; oid; _ } ->
            if Xid.Tbl.find_opt status invoker <> Some Live then
              err "update by non-live %a" Xid.pp invoker
            else begin
              Xid.Tbl.replace membership invoker (Oid.Set.add oid (member invoker));
              go rest
            end
        | Delegated { tor; tee; oid; op; lsn } ->
            if Xid.equal tor tee then
              err "delegation to self at %a" Lsn.pp lsn
            else if Xid.Tbl.find_opt status tor <> Some Live then
              err "delegator %a not live at %a" Xid.pp tor Lsn.pp lsn
            else if Xid.Tbl.find_opt status tee <> Some Live then
              err "delegatee %a not live at %a" Xid.pp tee Lsn.pp lsn
            else if not (Oid.Set.mem oid (member tor)) then
              err "delegator %a not responsible for %a at %a (precondition)"
                Xid.pp tor Oid.pp oid Lsn.pp lsn
            else begin
              (match op with
              | Some _ ->
                  (* operation granularity: the object stays with both *)
                  Xid.Tbl.replace membership tee (Oid.Set.add oid (member tee))
              | None ->
                  Xid.Tbl.replace membership tor (Oid.Set.remove oid (member tor));
                  Xid.Tbl.replace membership tee (Oid.Set.add oid (member tee)));
              go rest
            end
        | Compensated { by; _ } ->
            if Xid.Tbl.find_opt status by <> Some Live then
              err "compensation by non-live %a" Xid.pp by
            else go rest
        | Committed x | Aborted x ->
            if Xid.Tbl.find_opt status x <> Some Live then
              err "decision by non-live %a" Xid.pp x
            else if Xid.Set.mem x !decided then
              err "%a decided twice" Xid.pp x
            else begin
              decided := Xid.Set.add x !decided;
              go rest
            end
        | Ended x ->
            if Xid.Tbl.find_opt status x <> Some Live then
              err "end of non-live %a" Xid.pp x
            else begin
              Xid.Tbl.replace status x Done;
              go rest
            end)
  in
  go t

(* --- §4.1 undo/redo on a post-recovery history --- *)

let check_recovery t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let winners = winners t in
  let losers = losers t in
  let updates = replay t in
  (* compensation map: undone lsn -> position(s) in the history *)
  let comp_positions : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let commit_pos : int Xid.Tbl.t = Xid.Tbl.create 16 in
  let ended : Xid.Set.t ref = ref Xid.Set.empty in
  List.iteri
    (fun i ev ->
      match ev with
      | Compensated { undone; _ } ->
          let k = Lsn.to_int undone in
          Hashtbl.replace comp_positions k
            (i :: Option.value ~default:[] (Hashtbl.find_opt comp_positions k))
      | Committed x -> Xid.Tbl.replace commit_pos x i
      | Ended x -> ended := Xid.Set.add x !ended
      | _ -> ())
    t;
  let problem = ref None in
  let fail fmt = Format.kasprintf (fun m -> problem := Some m) fmt in
  (* no over-undo, and compensations hit real updates on the same object *)
  Hashtbl.iter
    (fun k positions ->
      if List.length positions > 1 then
        fail "update at LSN %d compensated %d times" k (List.length positions);
      match Hashtbl.find_opt updates k with
      | None -> fail "compensation for a non-update at LSN %d" k
      | Some _ -> ())
    comp_positions;
  (* undo / redo *)
  Hashtbl.iter
    (fun k (u : upd_state) ->
      let compensated = Hashtbl.mem comp_positions k in
      if Xid.Set.mem u.resp losers && not compensated then
        fail "loser-responsible update at LSN %d (resp %a) never undone" k
          Xid.pp u.resp;
      if Xid.Set.mem u.resp winners && compensated then
        let cpos = List.hd (Hashtbl.find comp_positions k) in
        match Xid.Tbl.find_opt commit_pos u.resp with
        | Some cp when cpos > cp ->
            fail
              "winner-responsible update at LSN %d compensated after the \
               winner committed"
              k
        | _ -> ())
    updates;
  (* recovery finished every loser *)
  Xid.Set.iter
    (fun x ->
      if not (Xid.Set.mem x !ended) then
        fail "loser %a has no end record after recovery" Xid.pp x)
    losers;
  match !problem with None -> Ok () | Some m -> err "%s" m
