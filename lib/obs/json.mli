(** A minimal deterministic JSON value + printer.

    Field order is whatever the producer chose (producers sort where
    determinism matters) and the printer has no configuration, so the
    same value always serialises to the same bytes — a requirement for
    committed metrics/trace artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float_str : float -> string
(** Stable float rendering used by the printers. *)

val to_string : t -> string
(** Pretty-printed with two-space indent, no trailing newline. *)

val to_file : string -> t -> unit
(** [to_string] plus a trailing newline, written atomically enough for
    our purposes (single [output_string]). *)
