(** Typed trace events.

    One constructor per observable state transition in the engine:
    transaction lifecycle, updates and their compensation, delegation
    (whole-object and op-granularity) with the accompanying scope and
    lock transfers, checkpoint/truncation maintenance, crashes, restart
    phase transitions, governor actions, and fault-injector firings.

    The [op] type mirrors [Ariesrh_wal.Record.op] without depending on
    the WAL library — [lib/obs] sits below every other library so that
    all of them can emit into it. *)

open Ariesrh_types

type op = Add of int | Set of { before : int; after : int }

type restart_phase =
  | Amputate
  | Surgery  (** rewrite system-transaction resolution *)
  | Forward
  | Backward
  | Repair
  | Finish
  | Audit  (** post-recovery self-audit *)

type fault_kind =
  | Crash_point
  | Torn_write
  | Torn_flush
  | Squeeze
  | Bitrot  (** silent checksum-detectable byte corruption at rest *)
  | Lost_write  (** a page write acknowledged but never applied *)
  | Misdirected_write  (** a page write applied to the wrong page slot *)

type gov_action =
  | Escalate of string  (** policy name *)
  | Deescalate of string
  | Gov_checkpoint
  | Gov_truncate of { below : Lsn.t; reclaimed : int }
  | Victimize of Xid.t

type t =
  | Begin of { xid : Xid.t; lsn : Lsn.t }
  | Commit of { xid : Xid.t; lsn : Lsn.t }
  | Abort of { xid : Xid.t; lsn : Lsn.t }
  | Update of { xid : Xid.t; oid : Oid.t; lsn : Lsn.t; op : op }
  | Clr of {
      xid : Xid.t;
      invoker : Xid.t;
      oid : Oid.t;
      lsn : Lsn.t;
      undone : Lsn.t;
    }
  | Delegate of {
      from_ : Xid.t;
      to_ : Xid.t;
      oid : Oid.t;
      lsn : Lsn.t;
      op_lsn : Lsn.t option;
    }
  | Scope_transfer of { from_ : Xid.t; to_ : Xid.t; oid : Oid.t }
  | Lock_transfer of { from_ : Xid.t; to_ : Xid.t; oid : Oid.t }
  | Checkpoint of { begin_lsn : Lsn.t; end_lsn : Lsn.t }
  | Truncate of { below : Lsn.t; reclaimed : int }
  | Crash of { durable : Lsn.t }
  | Restart_enter of restart_phase
  | Restart_leave of restart_phase
  | Recovered of { winners : int; losers : int; undos : int }
  | Governor of gov_action
  | Fault of { kind : fault_kind; site : string }
  | Surgery_resolved of { rolled_back : int; rolled_forward : int }
      (** restart resolved rewrite system transactions *)
  | Rewrite_fallback of { from_ : Xid.t; to_ : Xid.t; oid : Oid.t }
      (** eager surgery could not complete; fell back to a logical
          delegate record *)
  | Scrub_pass of { target : string; checked : int; corrupt : int }
      (** one incremental scrubber sweep over [target]
          ("pages"/"wal"/"archive") *)
  | Quarantine of { target : string; id : int }
      (** corruption detected and the object fenced pending heal *)
  | Media_heal of { target : string; id : int; how : string }
      (** a quarantined object healed ([how] = "shadow"/"archive"/...) *)
  | Archive_catchup of { upto : Lsn.t }
      (** continuous WAL archiving copied durable records below [upto] *)

val op_str : op -> string
val phase_str : restart_phase -> string
val fault_str : fault_kind -> string
val kind_str : t -> string
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
