type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Floats never appear in committed artifacts (determinism), but the
   printer must still be stable for the values that do occur. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit b ~level v =
  let pad n = Buffer.add_string b (String.make (2 * n) ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (level + 1);
          emit b ~level:(level + 1) item)
        items;
      Buffer.add_char b '\n';
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (level + 1);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          emit b ~level:(level + 1) item)
        fields;
      Buffer.add_char b '\n';
      pad level;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b ~level:0 v;
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
