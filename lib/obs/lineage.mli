(** Delegation-lineage query: who is responsible for the update at LSN
    [n] as of step [k]?

    The answer is reconstructed by folding the trace ring: the matching
    [Update] event names the invoker; each matching [Delegate] event
    (whole-object, or op-granularity naming this LSN) transfers
    responsibility along the chain; a [Clr] naming this LSN marks it
    compensated; [Commit]/[Abort] by the current holder resolves it;
    and a [Crash] annuls the update — or any transfers/resolutions —
    whose LSN lies above the durable horizon, exactly mirroring what
    tail amputation does to the log itself. A later [Update] event
    reusing the LSN (possible after amputation) restarts the fold.

    Requires the ring to have been enabled for the events in question;
    returns [None] when no matching update is in the retained window. *)

open Ariesrh_types

type transfer = {
  seq : int;  (** ring step at which the delegation was observed *)
  io : int;  (** logical I/O clock at that step *)
  from_ : Xid.t;
  to_ : Xid.t;
  at : Lsn.t;  (** LSN of the Delegate record *)
  op_level : bool;  (** true = op-granularity, false = whole object *)
}

type status =
  | Live  (** uncommitted, holder still responsible *)
  | Committed of { by : Xid.t; at : Lsn.t }
  | Aborted of { by : Xid.t; at : Lsn.t }
  | Compensated of { by : Xid.t; clr : Lsn.t }
  | Annulled of { durable : Lsn.t }
      (** the update itself was lost to a crash *)

type t = {
  lsn : Lsn.t;
  oid : Oid.t;
  op : Event.op;
  invoker : Xid.t;  (** transaction that performed the update *)
  transfers : transfer list;  (** responsibility chain, oldest first *)
  holder : Xid.t;  (** currently responsible transaction *)
  status : status;
}

val query : Ring.t -> lsn:Lsn.t -> ?as_of:int -> unit -> t option
(** [as_of] is an exclusive ring sequence bound (events with
    [seq >= as_of] are ignored); default = everything emitted so far. *)

val status_str : status -> string
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
