(** Pull-based metrics registry.

    Components keep their existing mutable stat records and increment
    plain fields on the hot path — zero allocation, no call-site churn.
    At registration time a component hands the registry a read closure
    over that record; [snapshot] evaluates every closure and returns a
    deterministic (name, labels)-sorted sample list that the exporters
    serialise. Re-registering the same (name, labels) replaces the old
    source, so a component whose internals are rebuilt (e.g. across a
    simulated crash) can just register again. *)

type kind = Counter | Gauge | Histogram

type hist = {
  bounds : int array;  (** inclusive upper bounds, ascending *)
  counts : int array;  (** per-bucket (not cumulative); length bounds+1, last = overflow *)
  sum : int;
}

type value = Int of int | Float of float | Hist of hist

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  kind : kind;
  help : string;
  value : value;
}

type t

val create : ?labels:(string * string) list -> unit -> t
(** [labels] are base labels stamped onto every registration — e.g.
    [("backend", "file")] so every export says which storage backend
    produced it. *)

val register :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  name:string ->
  kind ->
  (unit -> value) ->
  unit

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> int) -> unit

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> int) -> unit

val gauge_f :
  t -> ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> float) -> unit

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> hist) -> unit

val snapshot : t -> sample list
(** Sorted by (name, labels); deterministic for a fixed registry state. *)

val find : sample list -> ?labels:(string * string) list -> string ->
  sample option

val diff : sample list -> sample list -> sample list
(** [diff after before]: counters and histograms are subtracted
    pointwise; gauges keep the [after] value. *)

val merge : sample list list -> sample list
(** Aggregate snapshots from many registries: counters and histograms
    sum, gauges take the value from the last snapshot that carries
    them. Result is (name, labels)-sorted. *)

val hist_count : hist -> int

val to_json : sample list -> Json.t
val to_openmetrics : sample list -> string
(** OpenMetrics/Prometheus text exposition, ending in [# EOF]. *)
