type phase = {
  name : string;
  mutable runs : int;
  mutable seconds : float;
  mutable counts : (string * int) list;
}

type t = { mutable rev_phases : phase list }

let create () = { rev_phases = [] }

let phase t name =
  match List.find_opt (fun p -> p.name = name) t.rev_phases with
  | Some p -> p
  | None ->
      let p = { name; runs = 0; seconds = 0.; counts = [] } in
      t.rev_phases <- p :: t.rev_phases;
      p

let time t name f =
  let p = phase t name in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      p.runs <- p.runs + 1;
      p.seconds <- p.seconds +. (Unix.gettimeofday () -. t0))
    f

let count t name key n =
  let p = phase t name in
  let rec bump = function
    | [] -> [ (key, n) ]
    | (k, v) :: rest when k = key -> (k, v + n) :: rest
    | kv :: rest -> kv :: bump rest
  in
  p.counts <- bump p.counts

let phases t = List.rev t.rev_phases

let total_seconds t =
  List.fold_left (fun acc p -> acc +. p.seconds) 0. (phases t)

let wall_ms t name =
  match List.find_opt (fun p -> p.name = name) t.rev_phases with
  | Some p -> 1000. *. p.seconds
  | None -> 0.

(* Wall time is deliberately excluded: profiler JSON lands in committed
   artifacts that must be byte-identical across same-seed runs. *)
let to_json t =
  Json.List
    (phases t
    |> List.map (fun p ->
           Json.Obj
             [
               ("phase", Json.String p.name);
               ("runs", Json.Int p.runs);
               ( "counts",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p.counts)
               );
             ]))

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    (fun ppf p ->
      Format.fprintf ppf "%s: runs=%d %.3fms%s" p.name p.runs
        (1000. *. p.seconds)
        (if p.counts = [] then ""
         else
           " "
           ^ String.concat " "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                  p.counts)))
    ppf (phases t)
