type kind = Counter | Gauge | Histogram

type hist = { bounds : int array; counts : int array; sum : int }

type value = Int of int | Float of float | Hist of hist

type sample = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  help : string;
  value : value;
}

type source = {
  s_name : string;
  s_labels : (string * string) list;
  s_kind : kind;
  s_help : string;
  read : unit -> value;
}

type t = {
  mutable sources : source list;
  base_labels : (string * string) list;
      (* stamped onto every registration — e.g. [("backend", "file")] *)
}

let create ?(labels = []) () = { sources = []; base_labels = labels }

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t ?(help = "") ?(labels = []) ~name kind read =
  let labels = canon_labels (t.base_labels @ labels) in
  let fresh =
    { s_name = name; s_labels = labels; s_kind = kind; s_help = help; read }
  in
  t.sources <-
    fresh
    :: List.filter
         (fun s -> not (s.s_name = name && s.s_labels = labels))
         t.sources

let counter t ?help ?labels name f =
  register t ?help ?labels ~name Counter (fun () -> Int (f ()))

let gauge t ?help ?labels name f =
  register t ?help ?labels ~name Gauge (fun () -> Int (f ()))

let gauge_f t ?help ?labels name f =
  register t ?help ?labels ~name Gauge (fun () -> Float (f ()))

let histogram t ?help ?labels name f =
  register t ?help ?labels ~name Histogram (fun () -> Hist (f ()))

let compare_sample a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot t =
  t.sources
  |> List.map (fun s ->
         {
           name = s.s_name;
           labels = s.s_labels;
           kind = s.s_kind;
           help = s.s_help;
           value = s.read ();
         })
  |> List.sort compare_sample

let find samples ?(labels = []) name =
  let labels = canon_labels labels in
  List.find_opt (fun s -> s.name = name && s.labels = labels) samples

let sub_value a b =
  match (a, b) with
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | Hist x, Hist y when x.bounds = y.bounds ->
      Hist
        {
          bounds = x.bounds;
          counts = Array.mapi (fun i c -> c - y.counts.(i)) x.counts;
          sum = x.sum - y.sum;
        }
  | v, _ -> v

let diff after before =
  List.map
    (fun s ->
      match s.kind with
      | Gauge -> s
      | Counter | Histogram -> (
          match find before ~labels:s.labels s.name with
          | Some b -> { s with value = sub_value s.value b.value }
          | None -> s))
    after

let add_value a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Hist x, Hist y when x.bounds = y.bounds ->
      Hist
        {
          bounds = x.bounds;
          counts = Array.mapi (fun i c -> c + y.counts.(i)) x.counts;
          sum = x.sum + y.sum;
        }
  | v, _ -> v

(* Counters and histograms sum across snapshots; for gauges the value
   from the last snapshot in list order wins (the merge is used to
   aggregate the many short-lived databases a storm creates, where the
   final database's state is the meaningful one). *)
let merge snapshots =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun samples ->
      List.iter
        (fun s ->
          let k = (s.name, s.labels) in
          match Hashtbl.find_opt tbl k with
          | None ->
              Hashtbl.add tbl k s;
              order := k :: !order
          | Some prev ->
              let value =
                match s.kind with
                | Gauge -> s.value
                | Counter | Histogram -> add_value prev.value s.value
              in
              Hashtbl.replace tbl k { s with value })
        samples)
    snapshots;
  !order |> List.rev_map (Hashtbl.find tbl) |> List.sort compare_sample

let kind_str = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let value_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Hist h ->
      Json.Obj
        [
          ("bounds", Json.List (Array.to_list h.bounds |> List.map (fun b -> Json.Int b)));
          ("counts", Json.List (Array.to_list h.counts |> List.map (fun c -> Json.Int c)));
          ("sum", Json.Int h.sum);
        ]

let to_json samples =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           (("name", Json.String s.name)
           :: (if s.labels = [] then []
               else
                 [
                   ( "labels",
                     Json.Obj
                       (List.map (fun (k, v) -> (k, Json.String v)) s.labels)
                   );
                 ])
           @ [
               ("kind", Json.String (kind_str s.kind));
               ("value", value_json s.value);
             ]))
       samples)

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let hist_count h = Array.fold_left ( + ) 0 h.counts

let to_openmetrics samples =
  let b = Buffer.create 1024 in
  let seen_meta = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_meta s.name) then begin
        Hashtbl.add seen_meta s.name ();
        if s.help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" s.name s.help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.name (kind_str s.kind))
      end;
      match s.value with
      | Int i ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.name (label_str s.labels) i)
      | Float f ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.name (label_str s.labels)
               (Json.float_str f))
      | Hist h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.bounds then
                  string_of_int h.bounds.(i)
                else "+Inf"
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (label_str (s.labels @ [ ("le", le) ]))
                   !cum))
            h.counts;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" s.name (label_str s.labels) h.sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.name (label_str s.labels)
               (hist_count h)))
    samples;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
