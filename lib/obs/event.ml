open Ariesrh_types

type op = Add of int | Set of { before : int; after : int }

type restart_phase =
  | Amputate
  | Surgery
  | Forward
  | Backward
  | Repair
  | Finish
  | Audit

type fault_kind =
  | Crash_point
  | Torn_write
  | Torn_flush
  | Squeeze
  | Bitrot
  | Lost_write
  | Misdirected_write

type gov_action =
  | Escalate of string
  | Deescalate of string
  | Gov_checkpoint
  | Gov_truncate of { below : Lsn.t; reclaimed : int }
  | Victimize of Xid.t

type t =
  | Begin of { xid : Xid.t; lsn : Lsn.t }
  | Commit of { xid : Xid.t; lsn : Lsn.t }
  | Abort of { xid : Xid.t; lsn : Lsn.t }
  | Update of { xid : Xid.t; oid : Oid.t; lsn : Lsn.t; op : op }
  | Clr of {
      xid : Xid.t;  (** transaction whose rollback wrote the CLR *)
      invoker : Xid.t;  (** original invoker of the compensated update *)
      oid : Oid.t;
      lsn : Lsn.t;  (** LSN of the CLR itself *)
      undone : Lsn.t;  (** LSN of the update it compensates *)
    }
  | Delegate of {
      from_ : Xid.t;
      to_ : Xid.t;
      oid : Oid.t;
      lsn : Lsn.t;
      op_lsn : Lsn.t option;  (** [None] = whole object *)
    }
  | Scope_transfer of { from_ : Xid.t; to_ : Xid.t; oid : Oid.t }
  | Lock_transfer of { from_ : Xid.t; to_ : Xid.t; oid : Oid.t }
  | Checkpoint of { begin_lsn : Lsn.t; end_lsn : Lsn.t }
  | Truncate of { below : Lsn.t; reclaimed : int }
  | Crash of { durable : Lsn.t }
  | Restart_enter of restart_phase
  | Restart_leave of restart_phase
  | Recovered of { winners : int; losers : int; undos : int }
  | Governor of gov_action
  | Fault of { kind : fault_kind; site : string }
  | Surgery_resolved of { rolled_back : int; rolled_forward : int }
  | Rewrite_fallback of { from_ : Xid.t; to_ : Xid.t; oid : Oid.t }
  | Scrub_pass of { target : string; checked : int; corrupt : int }
  | Quarantine of { target : string; id : int }
  | Media_heal of { target : string; id : int; how : string }
  | Archive_catchup of { upto : Lsn.t }

let op_str = function
  | Add d -> Printf.sprintf "add(%+d)" d
  | Set { before; after } -> Printf.sprintf "set(%d->%d)" before after

let phase_str = function
  | Amputate -> "amputate"
  | Surgery -> "surgery"
  | Forward -> "forward"
  | Backward -> "backward"
  | Repair -> "repair"
  | Finish -> "finish"
  | Audit -> "audit"

let fault_str = function
  | Crash_point -> "crash"
  | Torn_write -> "torn-write"
  | Torn_flush -> "torn-flush"
  | Squeeze -> "squeeze"
  | Bitrot -> "bitrot"
  | Lost_write -> "lost-write"
  | Misdirected_write -> "misdirected-write"

let xi = Xid.to_int
let oi = Oid.to_int
let li = Lsn.to_int

let kind_str = function
  | Begin _ -> "begin"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Update _ -> "update"
  | Clr _ -> "clr"
  | Delegate _ -> "delegate"
  | Scope_transfer _ -> "scope-transfer"
  | Lock_transfer _ -> "lock-transfer"
  | Checkpoint _ -> "checkpoint"
  | Truncate _ -> "truncate"
  | Crash _ -> "crash"
  | Restart_enter _ -> "restart-enter"
  | Restart_leave _ -> "restart-leave"
  | Recovered _ -> "recovered"
  | Governor _ -> "governor"
  | Fault _ -> "fault"
  | Surgery_resolved _ -> "surgery-resolved"
  | Rewrite_fallback _ -> "rewrite-fallback"
  | Scrub_pass _ -> "scrub-pass"
  | Quarantine _ -> "quarantine"
  | Media_heal _ -> "media-heal"
  | Archive_catchup _ -> "archive-catchup"

let fields = function
  | Begin { xid; lsn } | Commit { xid; lsn } | Abort { xid; lsn } ->
      [ ("xid", Json.Int (xi xid)); ("lsn", Json.Int (li lsn)) ]
  | Update { xid; oid; lsn; op } ->
      [
        ("xid", Json.Int (xi xid));
        ("oid", Json.Int (oi oid));
        ("lsn", Json.Int (li lsn));
        ("op", Json.String (op_str op));
      ]
  | Clr { xid; invoker; oid; lsn; undone } ->
      [
        ("xid", Json.Int (xi xid));
        ("invoker", Json.Int (xi invoker));
        ("oid", Json.Int (oi oid));
        ("lsn", Json.Int (li lsn));
        ("undone", Json.Int (li undone));
      ]
  | Delegate { from_; to_; oid; lsn; op_lsn } ->
      [
        ("from", Json.Int (xi from_));
        ("to", Json.Int (xi to_));
        ("oid", Json.Int (oi oid));
        ("lsn", Json.Int (li lsn));
        ( "op_lsn",
          match op_lsn with None -> Json.Null | Some l -> Json.Int (li l) );
      ]
  | Scope_transfer { from_; to_; oid } | Lock_transfer { from_; to_; oid } ->
      [
        ("from", Json.Int (xi from_));
        ("to", Json.Int (xi to_));
        ("oid", Json.Int (oi oid));
      ]
  | Checkpoint { begin_lsn; end_lsn } ->
      [
        ("begin_lsn", Json.Int (li begin_lsn));
        ("end_lsn", Json.Int (li end_lsn));
      ]
  | Truncate { below; reclaimed } ->
      [ ("below", Json.Int (li below)); ("reclaimed", Json.Int reclaimed) ]
  | Crash { durable } -> [ ("durable", Json.Int (li durable)) ]
  | Restart_enter phase | Restart_leave phase ->
      [ ("phase", Json.String (phase_str phase)) ]
  | Recovered { winners; losers; undos } ->
      [
        ("winners", Json.Int winners);
        ("losers", Json.Int losers);
        ("undos", Json.Int undos);
      ]
  | Governor g -> (
      match g with
      | Escalate p -> [ ("action", Json.String "escalate"); ("policy", Json.String p) ]
      | Deescalate p ->
          [ ("action", Json.String "deescalate"); ("policy", Json.String p) ]
      | Gov_checkpoint -> [ ("action", Json.String "checkpoint") ]
      | Gov_truncate { below; reclaimed } ->
          [
            ("action", Json.String "truncate");
            ("below", Json.Int (li below));
            ("reclaimed", Json.Int reclaimed);
          ]
      | Victimize x ->
          [ ("action", Json.String "victimize"); ("xid", Json.Int (xi x)) ])
  | Fault { kind; site } ->
      [
        ("fault", Json.String (fault_str kind));
        ("site", Json.String site);
      ]
  | Surgery_resolved { rolled_back; rolled_forward } ->
      [
        ("rolled_back", Json.Int rolled_back);
        ("rolled_forward", Json.Int rolled_forward);
      ]
  | Rewrite_fallback { from_; to_; oid } ->
      [
        ("from", Json.Int (xi from_));
        ("to", Json.Int (xi to_));
        ("oid", Json.Int (oi oid));
      ]
  | Scrub_pass { target; checked; corrupt } ->
      [
        ("target", Json.String target);
        ("checked", Json.Int checked);
        ("corrupt", Json.Int corrupt);
      ]
  | Quarantine { target; id } ->
      [ ("target", Json.String target); ("id", Json.Int id) ]
  | Media_heal { target; id; how } ->
      [
        ("target", Json.String target);
        ("id", Json.Int id);
        ("how", Json.String how);
      ]
  | Archive_catchup { upto } -> [ ("upto", Json.Int (li upto)) ]

let to_json ev = Json.Obj (("event", Json.String (kind_str ev)) :: fields ev)

let pp ppf ev =
  let fs =
    fields ev
    |> List.map (fun (k, v) ->
           let s =
             match v with
             | Json.Int i -> string_of_int i
             | Json.String s -> s
             | Json.Null -> "-"
             | other -> Json.to_string other
           in
           Printf.sprintf "%s=%s" k s)
  in
  Format.fprintf ppf "%s %s" (kind_str ev) (String.concat " " fs)
