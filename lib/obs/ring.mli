(** Bounded ring buffer of trace events.

    Memory is bounded by [capacity] slots; older events are overwritten
    once the buffer wraps. Each entry is stamped with a monotonically
    increasing sequence number ([seq], the global step counter used by
    lineage queries) and the current logical I/O clock ([io]), read from
    an installable closure — the database wires it to the fault
    injector's I/O counter so trace stamps line up with crash points.

    The ring is disabled by default; [emit] on a disabled ring does no
    work and allocates nothing, which is what keeps the observability
    overhead of the hot path under the benchmark budget. *)

type entry = { seq : int; io : int; ev : Event.t }

type t

val default_capacity : int
(** 4096 *)

val create : ?capacity:int -> ?enabled:bool -> unit -> t
val set_clock : t -> (unit -> int) -> unit
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val emit : t -> Event.t -> unit
(** No-op when disabled. *)

val total : t -> int
(** Events ever emitted (including overwritten ones). *)

val dropped : t -> int
(** Events lost to wraparound. *)

val clear : t -> unit

val entries : t -> entry list
(** Retained window, oldest first. *)

val last : t -> int -> entry list
(** Last [n] retained entries, oldest first. *)

val entry_to_json : entry -> Json.t
val to_json : ?last:int -> t -> Json.t
val pp_entry : Format.formatter -> entry -> unit
