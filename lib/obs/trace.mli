(** Unified [Logs] source for human-readable engine debug tracing.

    This replaces the old per-library sources (previously
    [Ariesrh_recovery.Trace]); every library logs through here so one
    CLI flag ([--verbosity]) controls all of it. *)

val src : Logs.src

module Log : Logs.LOG

val set_level : Logs.level option -> unit
