type entry = { seq : int; io : int; ev : Event.t }

type t = {
  cap : int;
  (* allocated lazily on first enable, so databases created with tracing
     off never pay for the window *)
  mutable slots : entry option array;
  mutable next : int;  (* total events ever emitted *)
  mutable enabled : bool;
  mutable clock : unit -> int;
}

let default_capacity = 4096

let ensure_slots t =
  if Array.length t.slots < t.cap then t.slots <- Array.make t.cap None

let create ?(capacity = default_capacity) ?(enabled = false) () =
  let t =
    { cap = max 1 capacity; slots = [||]; next = 0; enabled;
      clock = (fun () -> 0) }
  in
  if enabled then ensure_slots t;
  t

let set_clock t f = t.clock <- f
let enabled t = t.enabled

let set_enabled t b =
  if b then ensure_slots t;
  t.enabled <- b

let capacity t = t.cap
let total t = t.next
let dropped t = max 0 (t.next - t.cap)

let emit t ev =
  if t.enabled then begin
    let seq = t.next in
    t.next <- seq + 1;
    t.slots.(seq mod t.cap) <- Some { seq; io = t.clock (); ev }
  end

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0

let entries t =
  if Array.length t.slots = 0 then []
  else begin
  let cap = Array.length t.slots in
  let first = max 0 (t.next - cap) in
  let rec go i acc =
    if i < first then acc
    else
      match t.slots.(i mod cap) with
      | Some e when e.seq = i -> go (i - 1) (e :: acc)
      | _ -> go (i - 1) acc
  in
  go (t.next - 1) []
  end

let last t n =
  let es = entries t in
  let len = List.length es in
  if len <= n then es else List.filteri (fun i _ -> i >= len - n) es

let entry_to_json e =
  match Event.to_json e.ev with
  | Json.Obj fields ->
      Json.Obj (("seq", Json.Int e.seq) :: ("io", Json.Int e.io) :: fields)
  | other -> other

let to_json ?last:(n = max_int) t =
  Json.List (List.map entry_to_json (last t n))

let pp_entry ppf e =
  Format.fprintf ppf "[%d io=%d] %a" e.seq e.io Event.pp e.ev
