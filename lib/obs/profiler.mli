(** Recovery profiler: per-phase wall time and counters.

    Restart recovery wraps each pass (amputate, forward, backward,
    repair, finish) in [time] and attaches pass-specific counters with
    [count]. Phases are reported in first-use order. Wall-clock time is
    available to [pp] and [total_seconds] but is excluded from
    [to_json], because profiler JSON is part of deterministic committed
    artifacts. *)

type phase = {
  name : string;
  mutable runs : int;
  mutable seconds : float;
  mutable counts : (string * int) list;  (** insertion order *)
}

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk under the named phase, accumulating wall time even if
    it raises (recovery passes can be killed by injected crashes). *)

val count : t -> string -> string -> int -> unit
(** [count t phase key n] adds [n] to counter [key] of [phase]. *)

val phases : t -> phase list
val total_seconds : t -> float

val wall_ms : t -> string -> float
(** Accumulated wall milliseconds of the named phase (0 if it never
    ran). The accessor exists so benches can read per-pass wall time
    without it leaking into [to_json] — committed forensic artifacts
    must stay byte-identical across same-seed runs. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
