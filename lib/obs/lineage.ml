open Ariesrh_types

type transfer = {
  seq : int;
  io : int;
  from_ : Xid.t;
  to_ : Xid.t;
  at : Lsn.t;
  op_level : bool;
}

type status =
  | Live
  | Committed of { by : Xid.t; at : Lsn.t }
  | Aborted of { by : Xid.t; at : Lsn.t }
  | Compensated of { by : Xid.t; clr : Lsn.t }
  | Annulled of { durable : Lsn.t }

type t = {
  lsn : Lsn.t;
  oid : Oid.t;
  op : Event.op;
  invoker : Xid.t;
  transfers : transfer list;
  holder : Xid.t;
  status : status;
}

let holder_of invoker transfers =
  match List.rev transfers with [] -> invoker | last :: _ -> last.to_

let status_lsn = function
  | Live -> None
  | Committed { at; _ } | Aborted { at; _ } -> Some at
  | Compensated { clr; _ } -> Some clr
  | Annulled _ -> None

let query ring ~lsn ?as_of () =
  let as_of = match as_of with Some k -> k | None -> Ring.total ring in
  let step st (e : Ring.entry) =
    if e.seq >= as_of then st
    else
      match (e.ev, st) with
      (* A fresh matching update (re-)starts the fold: after a crash
         amputates the tail, the same LSN can be reassigned. *)
      | Event.Update { xid; oid; lsn = l; op }, _ when Lsn.equal l lsn ->
          Some
            {
              lsn;
              oid;
              op;
              invoker = xid;
              transfers = [];
              holder = xid;
              status = Live;
            }
      | _, None -> None
      | ev, Some t -> (
          match ev with
          | Event.Delegate { from_; to_; oid; lsn = dlsn; op_lsn }
            when t.status = Live && Xid.equal from_ t.holder
                 && (match op_lsn with
                    | Some l -> Lsn.equal l t.lsn
                    | None -> Oid.equal oid t.oid) ->
              let tr =
                {
                  seq = e.seq;
                  io = e.io;
                  from_;
                  to_;
                  at = dlsn;
                  op_level = op_lsn <> None;
                }
              in
              Some
                {
                  t with
                  transfers = t.transfers @ [ tr ];
                  holder = to_;
                }
          | Event.Clr { xid; lsn = clr; undone; _ }
            when Lsn.equal undone t.lsn ->
              Some { t with status = Compensated { by = xid; clr } }
          | Event.Commit { xid; lsn = at }
            when t.status = Live && Xid.equal xid t.holder ->
              Some { t with status = Committed { by = xid; at } }
          | Event.Abort { xid; lsn = at }
            when t.status = Live && Xid.equal xid t.holder ->
              Some { t with status = Aborted { by = xid; at } }
          | Event.Crash { durable } ->
              if Lsn.( > ) t.lsn durable then
                (* the update itself was never durable: it is gone *)
                Some { t with status = Annulled { durable }; transfers = [] }
              else
                let transfers =
                  List.filter
                    (fun tr -> Lsn.( <= ) tr.at durable)
                    t.transfers
                in
                let status =
                  match status_lsn t.status with
                  | Some l when Lsn.( > ) l durable -> Live
                  | _ -> t.status
                in
                Some
                  {
                    t with
                    transfers;
                    holder = holder_of t.invoker transfers;
                    status;
                  }
          | _ -> Some t)
  in
  List.fold_left step None (Ring.entries ring)

let status_str = function
  | Live -> "live"
  | Committed _ -> "committed"
  | Aborted _ -> "aborted"
  | Compensated _ -> "compensated"
  | Annulled _ -> "annulled"

let status_json s =
  let base = [ ("state", Json.String (status_str s)) ] in
  Json.Obj
    (base
    @
    match s with
    | Live -> []
    | Committed { by; at } | Aborted { by; at } ->
        [ ("by", Json.Int (Xid.to_int by)); ("at", Json.Int (Lsn.to_int at)) ]
    | Compensated { by; clr } ->
        [ ("by", Json.Int (Xid.to_int by)); ("clr", Json.Int (Lsn.to_int clr)) ]
    | Annulled { durable } -> [ ("durable", Json.Int (Lsn.to_int durable)) ])

let transfer_json tr =
  Json.Obj
    [
      ("seq", Json.Int tr.seq);
      ("io", Json.Int tr.io);
      ("from", Json.Int (Xid.to_int tr.from_));
      ("to", Json.Int (Xid.to_int tr.to_));
      ("at", Json.Int (Lsn.to_int tr.at));
      ("op_level", Json.Bool tr.op_level);
    ]

let to_json t =
  Json.Obj
    [
      ("lsn", Json.Int (Lsn.to_int t.lsn));
      ("oid", Json.Int (Oid.to_int t.oid));
      ("op", Json.String (Event.op_str t.op));
      ("invoker", Json.Int (Xid.to_int t.invoker));
      ("transfers", Json.List (List.map transfer_json t.transfers));
      ("responsible", Json.Int (Xid.to_int t.holder));
      ("status", status_json t.status);
    ]

let pp ppf t =
  let chain =
    String.concat " -> "
      (Printf.sprintf "t%d" (Xid.to_int t.invoker)
      :: List.map
           (fun tr ->
             Printf.sprintf "t%d@%d" (Xid.to_int tr.to_) (Lsn.to_int tr.at))
           t.transfers)
  in
  Format.fprintf ppf "lsn %a ob%d %s: invoker %a, responsible %a (%s), %s"
    Lsn.pp t.lsn (Oid.to_int t.oid) (Event.op_str t.op) Xid.pp t.invoker
    Xid.pp t.holder (status_str t.status) chain
