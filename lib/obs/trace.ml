(* The single Logs source for engine debug tracing (recovery passes,
   scope sweeps, rewrite surgery). Enable programmatically with
   [Logs.Src.set_level Ariesrh_obs.Trace.src (Some Logs.Debug)] or from
   the CLI with [--verbosity debug]. *)

let src = Logs.Src.create "ariesrh" ~doc:"ARIES/RH engine tracing"

module Log = (val Logs.src_log src : Logs.LOG)

let set_level l = Logs.Src.set_level src l
