(** One OCaml domain per shard, each draining its own job queue.

    The router uses this to pin each shard's engine to a single domain:
    any domain that wants to touch shard [i]'s state ships a closure to
    worker [i], so no [Db.t] is ever shared across domains. Without a
    pool the router runs inline on the calling domain (the
    deterministic mode the storms use). *)

type t

val create : int -> t
(** Spawn one worker domain per shard. *)

val size : t -> int

val exec : t -> int -> (unit -> 'a) -> 'a
(** [exec t i f] runs [f] on shard [i]'s worker and returns its result
    (re-raising its exception). From worker [i] itself, [f] runs
    inline. A worker waiting on a peer drains its own queue while
    blocked, so cross-shard calls between workers never deadlock. *)

val poll : t -> unit
(** Run one pending job of the calling worker's own queue, if any; a
    no-op from the main domain. A worker running a long job (a
    closed-loop benchmark driver, say) must call this periodically so
    peers' cross-shard calls make progress. *)

val map : t -> (int -> 'a) -> 'a array
(** Run [f i] on every shard's worker concurrently and collect the
    results; re-raises the first exception encountered. How per-shard
    recovery becomes parallel. *)

val shutdown : t -> unit
(** Drain every queue, stop the workers and join the domains. *)
