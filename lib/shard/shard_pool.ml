(* One OCaml domain per shard, each draining its own job queue. The
   router uses this to pin every shard's engine to a single domain:
   whatever domain wants to touch shard [i]'s state ships a closure to
   worker [i] instead, so no [Db.t] is ever shared across domains.

   [exec] from worker [i] to shard [i] runs inline (re-entrancy);
   [exec] to another shard enqueues and waits, draining its own queue
   while blocked so two workers migrating into each other's shards
   cannot deadlock. *)

type job = unit -> unit

type t = {
  n : int;
  queues : job Queue.t array;
  locks : Mutex.t array;
  conds : Condition.t array;
  mutable domains : unit Domain.t array;
  mutable stopped : bool;
}

(* which shard the current domain works for, [None] on the main domain *)
let my_shard_key : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let push t i job =
  Mutex.lock t.locks.(i);
  Queue.push job t.queues.(i);
  Condition.signal t.conds.(i);
  Mutex.unlock t.locks.(i)

(* run one pending job of shard [i], if any; never blocks *)
let run_one t i =
  Mutex.lock t.locks.(i);
  let job = Queue.take_opt t.queues.(i) in
  Mutex.unlock t.locks.(i);
  match job with
  | Some j ->
      j ();
      true
  | None -> false

let rec worker_loop t i =
  Mutex.lock t.locks.(i);
  while Queue.is_empty t.queues.(i) && not t.stopped do
    Condition.wait t.conds.(i) t.locks.(i)
  done;
  let job = Queue.take_opt t.queues.(i) in
  Mutex.unlock t.locks.(i);
  match job with
  | Some j ->
      j ();
      worker_loop t i
  | None -> () (* stopped with an empty queue *)

let create n =
  if n < 1 then invalid_arg "Shard_pool.create: need at least one shard";
  let t =
    {
      n;
      queues = Array.init n (fun _ -> Queue.create ());
      locks = Array.init n (fun _ -> Mutex.create ());
      conds = Array.init n (fun _ -> Condition.create ());
      domains = [||];
      stopped = false;
    }
  in
  t.domains <-
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set my_shard_key (Some i);
            worker_loop t i));
  t

let size t = t.n

(* let a worker running a long job service its own queue: without this,
   a peer's cross-shard call queued behind the long job waits for the
   whole job to finish (or deadlocks, if the job itself is waiting on
   that peer) *)
let poll t =
  match Domain.DLS.get my_shard_key with
  | Some i -> ignore (run_one t i)
  | None -> ()

let exec t i f =
  if i < 0 || i >= t.n then invalid_arg "Shard_pool.exec: no such shard";
  match Domain.DLS.get my_shard_key with
  | Some j when j = i -> f ()
  | me ->
      let slot = ref None in
      let m = Mutex.create () in
      let c = Condition.create () in
      push t i (fun () ->
          let r = try Ok (f ()) with e -> Error e in
          Mutex.lock m;
          slot := Some r;
          Condition.signal c;
          Mutex.unlock m);
      let result =
        match me with
        | None ->
            (* main domain: plain blocking wait *)
            Mutex.lock m;
            while !slot = None do
              Condition.wait c m
            done;
            let r = Option.get !slot in
            Mutex.unlock m;
            r
        | Some j ->
            (* a worker waiting on a peer must keep draining its own
               queue, or two cross-shard calls deadlock each other.
               Spin first (on real multicore the peer answers within
               microseconds), then back off to a short sleep so an
               oversubscribed host hands the core over at timer
               granularity instead of a whole scheduler quantum *)
            let idle = ref 0 in
            let rec spin () =
              let done_ =
                Mutex.lock m;
                let d = !slot in
                Mutex.unlock m;
                d
              in
              match done_ with
              | Some r -> r
              | None ->
                  if run_one t j then idle := 0
                  else begin
                    incr idle;
                    if !idle < 1000 then Domain.cpu_relax ()
                    else begin
                      idle := 0;
                      Unix.sleepf 1e-4
                    end
                  end;
                  spin ()
            in
            spin ()
      in
      (match result with Ok v -> v | Error e -> raise e)

let map t f =
  let results = Array.make t.n None in
  let m = Mutex.create () in
  let c = Condition.create () in
  let pending = ref t.n in
  for i = 0 to t.n - 1 do
    push t i (fun () ->
        let r = try Ok (f i) with e -> Error e in
        Mutex.lock m;
        results.(i) <- Some r;
        decr pending;
        Condition.signal c;
        Mutex.unlock m)
  done;
  Mutex.lock m;
  while !pending > 0 do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Array.map
    (fun r ->
      match Option.get r with Ok v -> v | Error e -> raise e)
    results

let shutdown t =
  if not t.stopped then begin
    Array.iteri
      (fun i l ->
        Mutex.lock l;
        t.stopped <- true;
        Condition.signal t.conds.(i);
        Mutex.unlock l)
      t.locks;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
