(** N independent engines behind the single-database API.

    Objects are hash-partitioned across [config.shards] shards, each a
    complete {!Ariesrh_core.Db} of its own (per-shard WAL, buffer pool,
    lock table, metrics shard label). Transactions are pinned to one
    shard for their whole life; touching an object homed elsewhere
    first {e migrates} it — a crash-atomic two-phase transfer of the
    object's durably committed state, built from the same forced-intent
    discipline as the rewrite system transactions:

    + forced [Xfer_out] intent on the source shard,
    + forced [Xfer_in] (marker + value adoption in one record) on the
      target — its durable presence is the transfer's commit point,
    + [Xfer_end] closing the intent through reserved log headroom.

    A crash at any I/O point leaves the pair resolvable at restart:
    {!recover} runs per-shard recovery (in parallel when a
    {!Shard_pool} is attached), closes in-doubt intents forward or
    backward from the target-side evidence ({!Ariesrh_recovery.Xfer}),
    rebuilds the routing tables from the durable logs alone, and — with
    [config.audit] — cross-checks every transfer pair across shards.

    [shards = 1] never migrates and is byte-identical to a plain [Db]. *)

open Ariesrh_types
module Db = Ariesrh_core.Db
module Config = Ariesrh_core.Config

type t

type xid = { shard : int; txn : Xid.t }
(** A transaction handle: raw xids are per-shard and collide across
    shards, so the façade pairs them with the owning shard. *)

val pp_xid : Format.formatter -> xid -> unit

type counters = {
  migrations : int;  (** committed cross-shard transfers *)
  migrations_refused : int;  (** transfers refused because of live locks *)
  resolved_forward : int;  (** in-doubt intents rolled forward at restart *)
  resolved_back : int;  (** in-doubt intents rolled back at restart *)
}

val create :
  ?fault:Ariesrh_fault.Fault.t ->
  ?tracing:bool ->
  ?pool:Shard_pool.t ->
  Config.t ->
  t
(** [config.shards] engines. A [fault] injector, when given, is shared
    by every shard — the single logical I/O clock the deterministic
    storms count on (share one only when running inline); without one
    each shard gets its own inert injector. [pool] (size must equal
    [config.shards]) routes every shard's work to its own domain;
    without it everything runs inline on the caller. Backends come from
    {!Db.set_backend_factory}, so [--backend file] hands each shard its
    own directory. *)

val shards : t -> int
val config : t -> Config.t

val db : t -> int -> Db.t
(** Direct access to one shard's engine (forensics, metrics, tests). *)

val dbs : t -> Db.t array

val counters : t -> counters

val base_home : t -> Oid.t -> int
(** Hash home of an object: where it lives before any migration. *)

val home : t -> Oid.t -> int
(** Current home (base, unless the object has migrated). *)

(** {1 Cross-shard migration} *)

val migrate : t -> Oid.t -> target:int -> unit
(** Move an object's durably committed state to [target] with the
    two-phase transfer protocol. No-op if already homed there. Raises
    {!Ariesrh_core.Errors.Xfer_refused} while any transaction holds a
    lock on the object — migration never preempts — and re-raises
    [Log_full] from either side's admission check (source-side: nothing
    happened; target-side: the durable intent is rolled back first). *)

(** {1 The single-database API, routed}

    Ops route to the transaction's shard; {!read}, {!write} and {!add}
    migrate the object there first when it is homed elsewhere
    (migrate-on-touch). Delegation and permits are same-shard —
    cross-shard responsibility moves via {!migrate}, not across live
    transactions. *)

val begin_txn : t -> shard:int -> xid
val commit : t -> xid -> unit
val abort : t -> xid -> unit
val is_active : t -> xid -> bool
val savepoint : t -> xid -> Lsn.t
val rollback_to : t -> xid -> Lsn.t -> unit
val read : t -> xid -> Oid.t -> int
val write : t -> xid -> Oid.t -> int -> unit
val add : t -> xid -> Oid.t -> int -> unit
val delegate : t -> from_:xid -> to_:xid -> Oid.t -> unit
val delegate_update : t -> from_:xid -> to_:xid -> Oid.t -> Lsn.t -> unit
val delegate_all : t -> from_:xid -> to_:xid -> unit
val permit : t -> holder:xid -> grantee:xid -> unit
val responsible_objects : t -> xid -> Oid.t list

(** {1 Whole-engine operations} *)

val flush_commits : t -> unit
val checkpoint : t -> unit

val truncate_log : t -> int
(** Sum of records dropped across shards. Each shard's horizon also
    respects the router's external pin: the latest [Xfer_in] of every
    migrated object stays readable for home reconstruction. *)

val crash : t -> unit

val recover : t -> Ariesrh_recovery.Report.t array
(** Per-shard recovery (parallel with a pool), transfer resolution,
    routing-table rebuild, and — with [config.audit] — the cross-shard
    transfer audit (raising {!Ariesrh_recovery.Audit.Audit_failed} on
    violation), in that order.

    With [Config.recovery_mode = On_demand] each shard runs only its
    analysis pass before this returns (parallel with a pool — the
    forward pass is partitioned by shard), and every shard is
    incrementally available afterwards: accesses drain on first touch
    or refuse with [Errors.Recovering], and the backlog is drained by
    {!recovery_step}/{!await_recovery} or the per-shard governors.
    Transfer resolution and routing rebuild are log-only, so they are
    safe before any page is redone; a migration of an undrained object
    repairs it in the foreground first. *)

val recovering : t -> bool
(** Any shard still has on-demand restart backlog. *)

val recovery_backlog : t -> int
(** Total remaining on-demand restart work across shards. *)

val recovery_step : t -> bool
(** One background drain unit on {e every} shard still recovering (in
    parallel with a pool); returns whether any backlog remains. *)

val await_recovery : t -> unit
(** Drain every shard's backlog to convergence (parallel with a pool). *)

val audit : t -> string list
(** Per-shard {!Db.audit} findings (prefixed with the shard) plus the
    cross-shard transfer pairing audit. *)

val validate : t -> (unit, string) result

val peek : t -> Oid.t -> int
(** Committed value, read at the object's current home. *)

val peek_all : t -> int array
val active_count : t -> int
val shutdown : t -> unit
val close : t -> unit
