open Ariesrh_types
module Db = Ariesrh_core.Db
module Config = Ariesrh_core.Config
module Errors = Ariesrh_core.Errors
module Audit = Ariesrh_recovery.Audit
module Xfer = Ariesrh_recovery.Xfer
module Log_store = Ariesrh_wal.Log_store
module Fault = Ariesrh_fault.Fault

(* The router: N independent engines (per-shard WAL, buffer pool, lock
   table), objects hash-partitioned by [base_home], transactions pinned
   to one shard for their whole life. Cross-shard work is crash-atomic
   object migration: when a transaction touches an object homed
   elsewhere, the router transfers the object's durably committed state
   to the transaction's shard with the two-phase protocol below, then
   runs the op locally. [shards = 1] routes everything to shard 0 and
   never migrates — byte-identical to a plain [Db].

   The two-phase migration protocol (delegation across WALs, built from
   the same forced-intent discipline as the rewrite system txns):

     1. forced [Xfer_out] intent on the source shard (admission-checked);
     2. forced [Xfer_in] on the target, carrying the committed value —
        its durable presence is the commit point;
     3. forced [Xfer_end committed=true] on the source (reserved space).

   A crash at any I/O point resolves at restart ([Xfer.resolve]): the
   intent rolls forward iff the target-side record became durable.
   Only the in-flight flush can tear, so each completed force above is
   durable before the next step begins — the same assumption the
   commit protocol makes. *)

type xid = { shard : int; txn : Xid.t }

let pp_xid ppf fx = Format.fprintf ppf "s%d:%a" fx.shard Xid.pp fx.txn

type counters = {
  migrations : int;
  migrations_refused : int;
  resolved_forward : int;
  resolved_back : int;
}

type t = {
  config : Config.t;
  n : int;
  dbs : Db.t array;
  pool : Shard_pool.t option;
  mu : Mutex.t;  (* guards the routing tables below *)
  homes : (int, int) Hashtbl.t;  (* oid -> home, only when <> base *)
  hops : (int, int) Hashtbl.t;  (* oid -> last transfer hop consumed *)
  latest_in : (int, int * Lsn.t) Hashtbl.t;
      (* oid -> (shard, lsn) of its latest Xfer_in: what the external
         truncation pin must keep readable for home reconstruction *)
  inflight : (int, int * Lsn.t) Hashtbl.t;
      (* xfer_id -> (source shard, intent lsn) while the transfer is
         between its Xfer_out and Xfer_end *)
  migrating : (int, unit) Hashtbl.t;
      (* oid -> claimed: at most one transfer of an object in flight,
         and shard workers treat a claimed object as unavailable *)
  mutable next_xfer_id : int;
  mutable migrations : int;
  mutable migrations_refused : int;
  mutable resolved_forward : int;
  mutable resolved_back : int;
}

let create ?fault ?(tracing = false) ?pool config =
  Config.validate config;
  let n = config.Config.shards in
  (match pool with
  | Some p when Shard_pool.size p <> n ->
      invalid_arg "Sharded.create: pool size does not match config.shards"
  | _ -> ());
  let dbs =
    Array.init n (fun i ->
        (* a shared injector keeps the single logical I/O clock the
           deterministic storms need; without one, each shard gets its
           own inert injector so parallel shards never share state *)
        let fault =
          match fault with Some f -> f | None -> Fault.none ()
        in
        Db.create ~fault ~tracing ~shard:i config)
  in
  {
    config;
    n;
    dbs;
    pool;
    mu = Mutex.create ();
    homes = Hashtbl.create 64;
    hops = Hashtbl.create 64;
    latest_in = Hashtbl.create 64;
    inflight = Hashtbl.create 4;
    migrating = Hashtbl.create 4;
    next_xfer_id = 1;
    migrations = 0;
    migrations_refused = 0;
    resolved_forward = 0;
    resolved_back = 0;
  }

let shards t = t.n
let config t = t.config
let db t i = t.dbs.(i)
let dbs t = Array.copy t.dbs

let counters t =
  {
    migrations = t.migrations;
    migrations_refused = t.migrations_refused;
    resolved_forward = t.resolved_forward;
    resolved_back = t.resolved_back;
  }

let exec t i f =
  match t.pool with None -> f () | Some p -> Shard_pool.exec p i f

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let base_home t oid = Oid.to_int oid mod t.n

let home t oid =
  locked t (fun () ->
      match Hashtbl.find_opt t.homes (Oid.to_int oid) with
      | Some h -> h
      | None -> base_home t oid)

(* recompute every shard's external truncation pin: the oldest LSN
   among (a) the latest Xfer_in of each object whose latest transfer
   landed on that shard and (b) any in-flight intent. Called with
   [t.mu] held; the pin itself is a plain word-sized field write, so it
   is published directly rather than shipped to the shard's worker
   (shipping would block under [t.mu], which workers also take). *)
let update_pins t =
  let mins = Array.make t.n Lsn.nil in
  let note s lsn =
    if Lsn.is_nil mins.(s) || Lsn.(lsn < mins.(s)) then mins.(s) <- lsn
  in
  Hashtbl.iter (fun _ (s, lsn) -> note s lsn) t.latest_in;
  Hashtbl.iter (fun _ (s, lsn) -> note s lsn) t.inflight;
  Array.iteri (fun i db -> Db.set_external_pin db mins.(i)) t.dbs

(* cooperative wait: a pool worker spinning on a router condition must
   keep servicing its own queue, or the migration it waits for can be
   stuck behind it. Spin first, then back off to a short sleep for
   oversubscribed hosts. *)
let relax t ~tries =
  (match t.pool with Some p -> Shard_pool.poll p | None -> ());
  if tries < 1000 then Domain.cpu_relax () else Unix.sleepf 1e-4

(* Crash-atomic migration of one object's durably committed state.
   Refuses (typed) while any transaction holds a lock on the object —
   migration never preempts; the value it carries is always a committed
   one.

   Concurrency discipline (pool mode): the object is first *claimed*
   under [t.mu] — at most one transfer of an object is ever in flight,
   and shard workers treat a claimed object as unavailable. [t.mu] is
   never held across a cross-worker call (that deadlocks against a
   worker blocked on [t.mu]); instead the whole source phase — holder
   check, commit hardening, value read, forced intent — ships as ONE
   job, so shard-local ops serialize either wholly before it (their
   lock makes the transfer refuse) or wholly after the claim is
   visible. *)
let migrate t oid ~target =
  if target < 0 || target >= t.n then invalid_arg "Sharded.migrate: no shard";
  let key = Oid.to_int oid in
  let rec claim tries =
    Mutex.lock t.mu;
    if Hashtbl.mem t.migrating key then begin
      (* someone else is moving this object; wait it out *)
      Mutex.unlock t.mu;
      relax t ~tries;
      claim (if tries >= 1000 then 0 else tries + 1)
    end
    else begin
      let source =
        match Hashtbl.find_opt t.homes key with
        | Some h -> h
        | None -> base_home t oid
      in
      if source = target then begin
        Mutex.unlock t.mu;
        None
      end
      else begin
        Hashtbl.replace t.migrating key ();
        let xfer_id = t.next_xfer_id in
        t.next_xfer_id <- xfer_id + 1;
        (* the hop number is consumed even if the transfer aborts:
           gaps are harmless, reuse of a never-durable hop likewise *)
        let hop = 1 + Option.value ~default:0 (Hashtbl.find_opt t.hops key) in
        Hashtbl.replace t.hops key hop;
        Mutex.unlock t.mu;
        Some (source, xfer_id, hop)
      end
    end
  in
  match claim 0 with
  | None -> ()
  | Some (source, xfer_id, hop) ->
      let release () = locked t (fun () -> Hashtbl.remove t.migrating key) in
      Fun.protect ~finally:release @@ fun () ->
      let src = t.dbs.(source) and dst = t.dbs.(target) in
      (* 1. the whole source phase as one shard job, ending in the
         forced intent (admission-checked: Log_full means nothing
         happened and the migration is abandoned) *)
      let value, out_lsn =
        try
          exec t source (fun () ->
              (match Db.lock_holders src oid with
              | [] -> ()
              | holders ->
                  raise
                    (Errors.Xfer_refused
                       { oid; holders = List.map fst holders }));
              (* harden any group-pending commit so the carried value
                 is a durably committed one *)
              Db.flush_commits src;
              let value = Db.peek src oid in
              let out_lsn =
                Db.xfer_out src ~xfer_id ~hop ~oid ~target ~value
              in
              (value, out_lsn))
        with Errors.Xfer_refused _ as e ->
          locked t (fun () ->
              t.migrations_refused <- t.migrations_refused + 1);
          raise e
      in
      (* the intent is durable and must stay readable until closed *)
      locked t (fun () ->
          Hashtbl.replace t.inflight xfer_id (source, out_lsn);
          update_pins t);
      let finish committed =
        locked t (fun () -> Hashtbl.remove t.inflight xfer_id);
        exec t source (fun () ->
            ignore (Db.xfer_end src ~xfer_id ~oid ~committed))
      in
      (* 2. transfer record + value adoption on the target — the
         commit point of the migration *)
      let in_lsn =
        try exec t target (fun () -> Db.xfer_in dst ~xfer_id ~hop ~oid ~source ~value)
        with Log_store.Log_full _ as e ->
          (* target refused admission: nothing durable landed there,
             roll the intent back and re-raise *)
          finish false;
          locked t (fun () -> update_pins t);
          raise e
      in
      locked t (fun () ->
          Hashtbl.replace t.latest_in key (target, in_lsn);
          if target = base_home t oid then Hashtbl.remove t.homes key
          else Hashtbl.replace t.homes key target;
          t.migrations <- t.migrations + 1);
      (* 3. close the intent (reserved space — cannot die of Log_full) *)
      finish true;
      locked t (fun () -> update_pins t)

(* --- the single-db API, routed --- *)

let begin_txn t ~shard =
  if shard < 0 || shard >= t.n then invalid_arg "Sharded.begin_txn: no shard";
  { shard; txn = exec t shard (fun () -> Db.begin_txn t.dbs.(shard)) }

let on_shard t fx f = exec t fx.shard (fun () -> f t.dbs.(fx.shard))
let commit t fx = on_shard t fx (fun db -> Db.commit db fx.txn)
let abort t fx = on_shard t fx (fun db -> Db.abort db fx.txn)
let is_active t fx = on_shard t fx (fun db -> Db.is_active db fx.txn)
let savepoint t fx = on_shard t fx (fun db -> Db.savepoint db fx.txn)

let rollback_to t fx sp =
  on_shard t fx (fun db -> Db.rollback_to db fx.txn sp)

(* Migrate-on-touch: an op on an object homed elsewhere first pulls the
   object to the transaction's shard (its whole durable history of
   record: the committed value), then runs locally under the local lock
   table.

   The availability check runs INSIDE the shard job: per-shard
   single-threading then makes check + op atomic against the migration
   protocol's source phase, which runs as one job on the same worker.
   A check done on the calling domain instead would race a concurrent
   migration and apply the op to a stale copy. *)
let rec on_object t fx oid f =
  let key = Oid.to_int oid in
  let ran =
    exec t fx.shard (fun () ->
        let at_home =
          locked t (fun () ->
              (not (Hashtbl.mem t.migrating key))
              && (match Hashtbl.find_opt t.homes key with
                 | Some h -> h
                 | None -> base_home t oid)
                 = fx.shard)
        in
        if at_home then Some (f t.dbs.(fx.shard)) else None)
  in
  match ran with
  | Some v -> v
  | None ->
      (* homed elsewhere or mid-transfer: pull it here and retry *)
      migrate t oid ~target:fx.shard;
      on_object t fx oid f

let read t fx oid = on_object t fx oid (fun db -> Db.read db fx.txn oid)
let write t fx oid v = on_object t fx oid (fun db -> Db.write db fx.txn oid v)
let add t fx oid d = on_object t fx oid (fun db -> Db.add db fx.txn oid d)

let same_shard op a b =
  if a.shard <> b.shard then
    invalid_arg
      (Printf.sprintf
         "Sharded.%s: transactions live on different shards (%d and %d) — \
          delegate after migrating the work, not across live transactions"
         op a.shard b.shard)

let delegate t ~from_ ~to_ oid =
  same_shard "delegate" from_ to_;
  on_shard t from_ (fun db -> Db.delegate db ~from_:from_.txn ~to_:to_.txn oid)

let delegate_update t ~from_ ~to_ oid op_lsn =
  same_shard "delegate_update" from_ to_;
  on_shard t from_ (fun db ->
      Db.delegate_update db ~from_:from_.txn ~to_:to_.txn oid op_lsn)

let delegate_all t ~from_ ~to_ =
  same_shard "delegate_all" from_ to_;
  on_shard t from_ (fun db -> Db.delegate_all db ~from_:from_.txn ~to_:to_.txn)

let permit t ~holder ~grantee =
  same_shard "permit" holder grantee;
  on_shard t holder (fun db ->
      Db.permit db ~holder:holder.txn ~grantee:grantee.txn)

let responsible_objects t fx =
  on_shard t fx (fun db -> Db.responsible_objects db fx.txn)

(* --- whole-engine operations --- *)

let each t f = Array.iteri (fun i db -> exec t i (fun () -> f db)) t.dbs

let sum t f =
  let acc = ref 0 in
  Array.iteri (fun i db -> acc := !acc + exec t i (fun () -> f db)) t.dbs;
  !acc

let flush_commits t = each t Db.flush_commits
let checkpoint t = each t Db.checkpoint
let truncate_log t = sum t Db.truncate_log
let crash t = each t Db.crash
let shutdown t = each t Db.shutdown
let close t = each t Db.close

let envs t = List.init t.n (fun i -> (i, Db.env t.dbs.(i)))

(* Restart: per-shard recovery (in parallel when a pool is attached —
   each shard's log is independent), then cross-shard resolution of
   in-doubt transfers, then routing-table reconstruction from the
   durable logs alone. With [config.audit] set, the cross-shard
   transfer audit runs after resolution (each shard's own restart
   self-audit already ran inside [Db.recover]). *)
let recover t =
  let reports =
    match t.pool with
    | Some p -> Shard_pool.map p (fun i -> Db.recover t.dbs.(i))
    | None -> Array.map Db.recover t.dbs
  in
  locked t (fun () ->
      let envs = envs t in
      let res = Xfer.resolve envs in
      t.resolved_forward <- t.resolved_forward + res.Xfer.rolled_forward;
      t.resolved_back <- t.resolved_back + res.Xfer.rolled_back;
      let rb = Xfer.rebuild envs ~base:(base_home t) in
      Hashtbl.reset t.homes;
      Hashtbl.iter (Hashtbl.replace t.homes) rb.Xfer.homes;
      Hashtbl.reset t.hops;
      Hashtbl.iter (Hashtbl.replace t.hops) rb.Xfer.last_hops;
      Hashtbl.reset t.latest_in;
      Hashtbl.iter (Hashtbl.replace t.latest_in) rb.Xfer.last_ins;
      Hashtbl.reset t.inflight;
      Hashtbl.reset t.migrating;
      t.next_xfer_id <- max t.next_xfer_id rb.Xfer.next_xfer_id;
      update_pins t;
      if t.config.Config.audit then
        match Audit.check_transfers envs with
        | [] -> ()
        | vs -> raise (Audit.Audit_failed vs));
  reports

(* On-demand restart, routed: each shard drains its own backlog, so the
   forward pass is partitioned by shard AND each shard is incrementally
   available — an access refused on one shard never blocks the rest. *)
let recovering t = sum t (fun db -> if Db.recovering db then 1 else 0) > 0
let recovery_backlog t = sum t Db.recovery_backlog

let recovery_step t =
  match t.pool with
  | Some p ->
      Array.exists Fun.id (Shard_pool.map p (fun i -> Db.recovery_step t.dbs.(i)))
  | None -> Array.exists Fun.id (Array.map Db.recovery_step t.dbs)

let await_recovery t =
  match t.pool with
  | Some p -> ignore (Shard_pool.map p (fun i -> Db.await_recovery t.dbs.(i)))
  | None -> Array.iter Db.await_recovery t.dbs

let audit t =
  let per_shard =
    List.concat (Array.to_list (Array.mapi
      (fun i db -> List.map (Printf.sprintf "shard %d: %s" i)
                     (exec t i (fun () -> Db.audit db)))
      t.dbs))
  in
  per_shard @ locked t (fun () -> Audit.check_transfers (envs t))

let validate t =
  let errs = ref [] in
  Array.iteri
    (fun i db ->
      match exec t i (fun () -> Db.validate db) with
      | Ok () -> ()
      | Error m -> errs := Printf.sprintf "shard %d: %s" i m :: !errs)
    t.dbs;
  (match locked t (fun () -> Audit.check_transfers (envs t)) with
  | [] -> ()
  | vs -> errs := vs @ !errs);
  match !errs with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let peek t oid =
  let h = home t oid in
  exec t h (fun () -> Db.peek t.dbs.(h) oid)

let peek_all t =
  Array.init t.config.Config.n_objects (fun i -> peek t (Oid.of_int i))

let active_count t = sum t Db.active_count
