open Ariesrh_types

(* On-disk layout of the page file (all fields int64 little-endian):

     header   : magic "ARPGv1\n\000" | pages | slots_per_page | reserved
     main     : pages x [checksum | page_lsn | value_0 .. value_{n-1}]
     shadow   : same layout as main

   The stored checksum is the one {!Page.seal} computed for the image the
   writer intended; a torn write persists only a prefix of the new image,
   so the stored checksum no longer matches the stored values — exactly
   the detectability contract the simulated disk models. *)

let magic = "ARPGv1\n\000"
let header_bytes = 32

type file = {
  fd : Unix.file_descr;
  path : string;
  pages : int;
  slots_per_page : int;
  page_bytes : int;
  mutable fsyncs : int;
  mutable closed : bool;
}

type t = Sim_dev | File_dev of file

let sim = Sim_dev
let is_file = function File_dev _ -> true | Sim_dev -> false

let write_all fd path b off len =
  let written = ref 0 in
  while !written < len do
    let n =
      Backend.wrap ~op:"write" ~path (fun () ->
          Unix.write fd b (off + !written) (len - !written))
    in
    if n <= 0 then raise (Backend.Io_error { op = "write"; path; error = Unix.EIO });
    written := !written + n
  done

let pwrite_at f ~off b len =
  Backend.wrap ~op:"lseek" ~path:f.path (fun () ->
      ignore (Unix.lseek f.fd off Unix.SEEK_SET));
  write_all f.fd f.path b 0 len

let read_exact f ~off b len =
  Backend.wrap ~op:"lseek" ~path:f.path (fun () ->
      ignore (Unix.lseek f.fd off Unix.SEEK_SET));
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n =
      Backend.wrap ~op:"read" ~path:f.path (fun () ->
          Unix.read f.fd b !got (len - !got))
    in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let encode_page f p =
  let b = Bytes.create f.page_bytes in
  Bytes.set_int64_le b 0 (Int64.of_int (Page.checksum p));
  Bytes.set_int64_le b 8 (Int64.of_int (Lsn.to_int (Page.page_lsn p)));
  for s = 0 to f.slots_per_page - 1 do
    Bytes.set_int64_le b ((2 + s) * 8) (Int64.of_int (Page.get p s))
  done;
  b

let decode_page f b =
  let checksum = Int64.to_int (Bytes.get_int64_le b 0) in
  let page_lsn = Lsn.of_int (Int64.to_int (Bytes.get_int64_le b 8)) in
  let values =
    Array.init f.slots_per_page (fun s ->
        Int64.to_int (Bytes.get_int64_le b ((2 + s) * 8)))
  in
  Page.restore ~page_lsn ~checksum values

let main_off f i = header_bytes + (i * f.page_bytes)
let shadow_off f i = header_bytes + ((f.pages + i) * f.page_bytes)

let init_fresh f =
  let h = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 h 0 8;
  Bytes.set_int64_le h 8 (Int64.of_int f.pages);
  Bytes.set_int64_le h 16 (Int64.of_int f.slots_per_page);
  pwrite_at f ~off:0 h header_bytes;
  (* materialise both regions so a reopen always finds full images *)
  let zero = encode_page f (Page.create ~slots:f.slots_per_page) in
  for i = 0 to f.pages - 1 do
    pwrite_at f ~off:(main_off f i) zero f.page_bytes;
    pwrite_at f ~off:(shadow_off f i) zero f.page_bytes
  done

let create ~dir ~pages ~slots_per_page =
  Backend.mkdir_p dir;
  let path = Filename.concat dir "data.pages" in
  let fd =
    Backend.wrap ~op:"open" ~path (fun () ->
        Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  in
  let f =
    {
      fd;
      path;
      pages;
      slots_per_page;
      page_bytes = (2 + slots_per_page) * 8;
      fsyncs = 0;
      closed = false;
    }
  in
  let size =
    Backend.wrap ~op:"fstat" ~path (fun () -> (Unix.fstat fd).Unix.st_size)
  in
  if size = 0 then init_fresh f
  else begin
    let h = Bytes.create header_bytes in
    if read_exact f ~off:0 h header_bytes < header_bytes then
      raise (Backend.Io_error { op = "read-header"; path; error = Unix.EIO });
    if Bytes.sub_string h 0 8 <> magic then
      invalid_arg (Printf.sprintf "Page_device: %s is not a page file" path);
    let got_pages = Int64.to_int (Bytes.get_int64_le h 8) in
    let got_slots = Int64.to_int (Bytes.get_int64_le h 16) in
    if got_pages <> pages || got_slots <> slots_per_page then
      invalid_arg
        (Printf.sprintf
           "Page_device: %s geometry mismatch (file %dx%d, want %dx%d)" path
           got_pages got_slots pages slots_per_page)
  end;
  File_dev f

let load = function
  | Sim_dev -> None
  | File_dev f ->
      let b = Bytes.create f.page_bytes in
      let region off0 =
        Array.init f.pages (fun i ->
            let off = off0 + (i * f.page_bytes) in
            if read_exact f ~off b f.page_bytes < f.page_bytes then
              (* the region was never fully materialised (the process died
                 inside [init_fresh]); treat the missing tail as fresh *)
              Page.create ~slots:f.slots_per_page
            else decode_page f b)
      in
      Some (region (main_off f 0), region (shadow_off f 0))

let write_main t i p =
  match t with
  | Sim_dev -> ()
  | File_dev f -> pwrite_at f ~off:(main_off f i) (encode_page f p) f.page_bytes

(* A torn write is a genuinely partial write of the new image: only the
   stored checksum, the page LSN and the first [keep] slot values reach
   the file; the remaining bytes keep whatever the previous image held —
   the same prefix-of-slots semantics the simulated disk applies. *)
let write_main_torn t i p ~keep =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      let b = encode_page f p in
      let partial = (2 + max 0 (min keep f.slots_per_page)) * 8 in
      Backend.wrap ~op:"lseek" ~path:f.path (fun () ->
          ignore (Unix.lseek f.fd (main_off f i) Unix.SEEK_SET));
      write_all f.fd f.path b 0 partial

let write_shadow t i p =
  match t with
  | Sim_dev -> ()
  | File_dev f ->
      pwrite_at f ~off:(shadow_off f i) (encode_page f p) f.page_bytes

let sync = function
  | Sim_dev -> ()
  | File_dev f ->
      Backend.wrap ~op:"fsync" ~path:f.path (fun () -> Unix.fsync f.fd);
      f.fsyncs <- f.fsyncs + 1

let fsyncs = function Sim_dev -> 0 | File_dev f -> f.fsyncs

let close = function
  | Sim_dev -> ()
  | File_dev f ->
      if not f.closed then begin
        f.closed <- true;
        Backend.wrap ~op:"close" ~path:f.path (fun () -> Unix.close f.fd)
      end
