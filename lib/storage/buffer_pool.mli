(** Buffer pool over the simulated disk, STEAL / NO-FORCE.

    STEAL: a dirty page holding uncommitted updates may be evicted and
    written to disk (after the WAL rule below), which is why recovery
    needs UNDO. NO-FORCE: commit does not write data pages, which is why
    recovery needs REDO. Together these are the policies ARIES assumes.

    WAL rule: before a dirty page is written to disk, the log is flushed
    up to that page's page LSN, via the [wal_flush] callback supplied at
    creation.

    The pool also maintains the dirty page table (page -> recLSN, the LSN
    of the first record that dirtied the page since it was last clean),
    used by checkpoints and by recovery's redo pass. *)

open Ariesrh_types

exception Torn_page of Page_id.t
(** A fetched page failed its checksum and no repair function is
    installed (see {!set_repair}). *)

type t

val create :
  ?fault:Ariesrh_fault.Fault.t ->
  capacity:int ->
  disk:Disk.t ->
  wal_flush:(Lsn.t -> unit) ->
  unit ->
  t

val set_repair : t -> (Page_id.t -> Page.t -> Page.t) -> unit
(** [set_repair t f] installs a torn-page repair function. When a fetch
    fails its checksum, [f pid shadow] is called with the last known-good
    image and must return the repaired page (typically by replaying the
    log onto [shadow] and writing the result back to disk). Without one,
    a torn fetch raises {!Torn_page}. *)

val disk : t -> Disk.t

val read_object : t -> Page_id.t -> slot:int -> int
(** Fetches the page (possibly evicting) and reads a slot. *)

val page_lsn : t -> Page_id.t -> Lsn.t

val apply : t -> Page_id.t -> lsn:Lsn.t -> (Page.t -> unit) -> unit
(** [apply t pid ~lsn f] runs [f] on the (fetched) page, marks it dirty
    with [recLSN = lsn] if it was clean, and sets its page LSN to [lsn].
    Unconditional — engine code installing a logged record's effect must
    use {!apply_if_newer} instead: the fetch itself can run torn-page
    repair, which may already have replayed that record onto the page. *)

val apply_if_newer : t -> Page_id.t -> lsn:Lsn.t -> (Page.t -> unit) -> bool
(** ARIES redo step: apply only when the page LSN is older than [lsn];
    returns whether the update was applied. Also maintains the dirty
    page table. *)

val dirty_page_table : t -> (Page_id.t * Lsn.t) list

val flush_all : t -> unit
(** Write every dirty page to disk (respecting the WAL rule) and mark
    the pool clean. Used by tests and by the "stop" shutdown path. *)

val crash : t -> unit
(** Drop all frames and the dirty page table; the disk keeps only pages
    already written. *)

val evictions : t -> int

val eviction_scans : t -> int
(** Total frames examined while choosing eviction victims. With the
    intrusive LRU list this is exactly one per eviction — independent of
    pool size — where the seed's fold examined every resident frame. *)

val hits : t -> int
val misses : t -> int

val dirty_count : t -> int
(** Current number of dirty frames, maintained incrementally on the
    dirty/clean transitions (no table scan). *)

val register_metrics : t -> Ariesrh_obs.Metrics.t -> unit
