open Ariesrh_types
module Fault = Ariesrh_fault.Fault

type stats = { mutable page_reads : int; mutable page_writes : int }

type t = {
  pages : Page.t array;
  (* Last known-good image of each page (doublewrite-style before-image):
     updated only by clean writes, so it always verifies. Torn-page repair
     starts from here and replays the log forward. *)
  shadow : Page.t array;
  slots_per_page : int;
  stats : stats;
  fault : Fault.t;
  (* The stable device behind the arrays: a no-op for the sim backend, a
     write-through page file for the file backend. The arrays stay
     authoritative in-process; the device is what a kill -9 leaves
     behind. *)
  device : Page_device.t;
}

let create ?(fault = Fault.none ()) ?(backend = Backend.Sim) ~pages
    ~slots_per_page () =
  if pages <= 0 then invalid_arg "Disk.create: pages must be positive";
  let device =
    match backend with
    | Backend.Sim -> Page_device.sim
    | Backend.File { dir } -> Page_device.create ~dir ~pages ~slots_per_page
  in
  let main, shadow =
    match Page_device.load device with
    | Some (main, shadow) -> (main, shadow)
    | None ->
        (Array.init pages (fun _ -> Page.create ~slots:slots_per_page),
         Array.init pages (fun _ -> Page.create ~slots:slots_per_page))
  in
  {
    pages = main;
    shadow;
    slots_per_page;
    stats = { page_reads = 0; page_writes = 0 };
    fault;
    device;
  }

let page_count t = Array.length t.pages
let slots_per_page t = t.slots_per_page

let check t pid =
  let i = Page_id.to_int pid in
  if i >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Disk: page %d out of range" i);
  i

let read_page t pid =
  let i = check t pid in
  Fault.on_disk_read t.fault;
  t.stats.page_reads <- t.stats.page_reads + 1;
  Page.copy t.pages.(i)

let read_page_checked t pid =
  let i = check t pid in
  Fault.on_disk_read t.fault;
  t.stats.page_reads <- t.stats.page_reads + 1;
  let p = t.pages.(i) in
  if Page.verify p then Ok (Page.copy p) else Error (Page.copy t.shadow.(i))

let write_page t pid p =
  let i = check t pid in
  let d = Fault.on_disk_write t.fault ~slots:(Page.slots p) in
  t.stats.page_writes <- t.stats.page_writes + 1;
  (match d.Fault.torn_keep with
  | None ->
      let stored = Page.copy p in
      Page.seal stored;
      t.pages.(i) <- stored;
      t.shadow.(i) <- Page.copy stored;
      Page_device.write_main t.device i stored;
      Page_device.write_shadow t.device i stored
  | Some keep ->
      (* Only the first [keep] slots of the new image reach the platter;
         the tail keeps the old contents. The checksum is the one intended
         for the full new image, so verification fails unless the tear
         happened to change nothing. The shadow is left alone. *)
      let torn = Page.copy p in
      Page.seal torn;
      (* the device tears for real: a partial write of the new image over
         the old bytes leaves exactly [torn] in the file *)
      Page_device.write_main_torn t.device i torn ~keep;
      let old = t.pages.(i) in
      for s = keep to Page.slots p - 1 do
        Page.set torn s (Page.get old s)
      done;
      t.pages.(i) <- torn);
  if d.Fault.crash then Fault.die t.fault Fault.Disk_write

let sync t = Page_device.sync t.device
let fsyncs t = Page_device.fsyncs t.device
let close t = Page_device.close t.device

let stats t = t.stats

let reset_stats t =
  t.stats.page_reads <- 0;
  t.stats.page_writes <- 0

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  let s = stats t in
  M.counter m ~help:"data pages read from stable storage"
    "ariesrh_disk_page_reads_total" (fun () -> s.page_reads);
  M.counter m ~help:"data pages written to stable storage"
    "ariesrh_disk_page_writes_total" (fun () -> s.page_writes)
