open Ariesrh_types
module Fault = Ariesrh_fault.Fault

type stats = { mutable page_reads : int; mutable page_writes : int }

type t = {
  pages : Page.t array;
  (* Last known-good image of each page (doublewrite-style before-image):
     updated only by clean writes, so it always verifies. Torn-page repair
     starts from here and replays the log forward. *)
  shadow : Page.t array;
  slots_per_page : int;
  stats : stats;
  fault : Fault.t;
  (* The stable device behind the arrays: a no-op for the sim backend, a
     write-through page file for the file backend. The arrays stay
     authoritative in-process; the device is what a kill -9 leaves
     behind. *)
  device : Page_device.t;
}

let create ?(fault = Fault.none ()) ?(backend = Backend.Sim) ~pages
    ~slots_per_page () =
  if pages <= 0 then invalid_arg "Disk.create: pages must be positive";
  let device =
    match backend with
    | Backend.Sim -> Page_device.sim
    | Backend.File { dir } -> Page_device.create ~dir ~pages ~slots_per_page
  in
  let main, shadow =
    match Page_device.load device with
    | Some (main, shadow) -> (main, shadow)
    | None ->
        (Array.init pages (fun _ -> Page.create ~slots:slots_per_page),
         Array.init pages (fun _ -> Page.create ~slots:slots_per_page))
  in
  {
    pages = main;
    shadow;
    slots_per_page;
    stats = { page_reads = 0; page_writes = 0 };
    fault;
    device;
  }

let page_count t = Array.length t.pages
let slots_per_page t = t.slots_per_page

let check t pid =
  let i = Page_id.to_int pid in
  if i >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Disk: page %d out of range" i);
  i

let read_page t pid =
  let i = check t pid in
  Fault.on_disk_read t.fault;
  t.stats.page_reads <- t.stats.page_reads + 1;
  Page.copy t.pages.(i)

let images_agree a b =
  Lsn.equal (Page.page_lsn a) (Page.page_lsn b)
  && Page.slots a = Page.slots b
  &&
  let rec eq s = s >= Page.slots a || (Page.get a s = Page.get b s && eq (s + 1)) in
  eq 0

let read_page_checked t pid =
  let i = check t pid in
  Fault.on_disk_read t.fault;
  t.stats.page_reads <- t.stats.page_reads + 1;
  let p = t.pages.(i) and s = t.shadow.(i) in
  if not (Page.verify p) then Error (Page.copy s)
  else if Page.verify s && not (images_agree p s) then
    (* Two checksum-valid images that disagree: a lost or misdirected
       write, caught at read time. Returning the stale main copy here
       would launder the corruption — the caller builds new updates on
       top of it and the next clean flush overwrites both copies, putting
       the lost delta beyond any detector forever. The shadow plus
       page-LSN-conditioned WAL replay reconstructs the true image
       whichever copy is really newer, so route it through the same
       repair path as a torn page. *)
    Error (Page.copy s)
  else Ok (Page.copy p)

let write_page t pid p =
  let i = check t pid in
  let d =
    Fault.on_disk_write t.fault ~slots:(Page.slots p)
      ~pages:(Array.length t.pages)
  in
  t.stats.page_writes <- t.stats.page_writes + 1;
  (if d.Fault.lost then begin
     (* the device acknowledged the write but the main image never made
        it: the old — still checksum-valid — image survives on both the
        array and the file. The doublewrite pair is two physical writes,
        so the shadow still lands; main <> shadow is what the scrubber
        later catches. *)
     let stored = Page.copy p in
     Page.seal stored;
     t.shadow.(i) <- Page.copy stored;
     Page_device.write_shadow t.device i stored
   end
   else
     match d.Fault.misdirect with
     | Some r ->
         (* the full — checksum-valid — new image lands on the wrong
            page; the intended target keeps its old image. Shadows stay
            where they should: the victim's shadow still holds its own
            last clean image, the target's shadow gets the new one. *)
         let n = Array.length t.pages in
         let v = (i + 1 + r) mod n in
         let stored = Page.copy p in
         Page.seal stored;
         t.pages.(v) <- Page.copy stored;
         Page_device.write_main t.device v stored;
         t.shadow.(i) <- Page.copy stored;
         Page_device.write_shadow t.device i stored
     | None -> (
         match d.Fault.torn_keep with
         | None ->
             let stored = Page.copy p in
             Page.seal stored;
             t.pages.(i) <- stored;
             t.shadow.(i) <- Page.copy stored;
             Page_device.write_main t.device i stored;
             Page_device.write_shadow t.device i stored
         | Some keep ->
             (* Only the first [keep] slots of the new image reach the
                platter; the tail keeps the old contents. The checksum is
                the one intended for the full new image, so verification
                fails unless the tear happened to change nothing. The
                shadow is left alone. *)
             let torn = Page.copy p in
             Page.seal torn;
             (* the device tears for real: a partial write of the new
                image over the old bytes leaves exactly [torn] in the
                file *)
             Page_device.write_main_torn t.device i torn ~keep;
             let old = t.pages.(i) in
             for s = keep to Page.slots p - 1 do
               Page.set torn s (Page.get old s)
             done;
             t.pages.(i) <- torn));
  if d.Fault.crash then Fault.die t.fault Fault.Disk_write

(* --- media scrub / heal primitives --------------------------------- *)

(* All of these bypass fault injection: they are the scrubber's and the
   injector's own access paths and must never advance the I/O clock
   (healing or rotting a page must not shift a crash schedule). *)

let verify_main t pid = Page.verify t.pages.(check t pid)
let verify_shadow t pid = Page.verify t.shadow.(check t pid)

let main_matches_shadow t pid =
  let i = check t pid in
  images_agree t.pages.(i) t.shadow.(i)

let peek_main t pid = Page.copy t.pages.(check t pid)
let shadow_copy t pid = Page.copy t.shadow.(check t pid)

(* Heal write: install a clean image on both the main and shadow copies
   of both the arrays and the device. *)
let install_page t pid p =
  let i = check t pid in
  let stored = Page.copy p in
  Page.seal stored;
  t.pages.(i) <- stored;
  t.shadow.(i) <- Page.copy stored;
  Page_device.write_main t.device i stored;
  Page_device.write_shadow t.device i stored

(* The shadow itself rotted while main is fine: refresh it from main. *)
let reseal_shadow_from_main t pid =
  let i = check t pid in
  let fresh = Page.copy t.pages.(i) in
  t.shadow.(i) <- fresh;
  Page_device.write_shadow t.device i fresh

(* Injection: flip low bits of one slot of the main image in place — the
   stored checksum keeps the value {!Page.seal} computed for the intact
   image, so the page no longer verifies, on the arrays and on the file
   alike. *)
let bitrot_main t pid ~slot =
  let i = check t pid in
  let p = t.pages.(i) in
  let s = if Page.slots p = 0 then 0 else slot mod Page.slots p in
  Page.set p s (Page.get p s lxor 0b101);
  Page_device.write_main t.device i p

let sync t = Page_device.sync t.device
let fsyncs t = Page_device.fsyncs t.device
let close t = Page_device.close t.device

let stats t = t.stats

let reset_stats t =
  t.stats.page_reads <- 0;
  t.stats.page_writes <- 0

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  let s = stats t in
  M.counter m ~help:"data pages read from stable storage"
    "ariesrh_disk_page_reads_total" (fun () -> s.page_reads);
  M.counter m ~help:"data pages written to stable storage"
    "ariesrh_disk_page_writes_total" (fun () -> s.page_writes)
