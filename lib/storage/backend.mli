(** Storage backend selector.

    Every stable store in the system (the data-page {!Disk}, the WAL's
    log device) is constructed against one of two backends:

    - [Sim] — the in-memory simulated devices the repo grew up on:
      deterministic, no real I/O, crashes are exceptions. Still the
      default everywhere.
    - [File { dir }] — real files under [dir]: an append-only segmented
      WAL with length+checksum-framed records and [fdatasync] on force,
      and a page file written with the same doublewrite-style
      before-image discipline the simulated disk models. Crash recovery
      runs unchanged over whatever bytes a dead process left behind.

    The file backend is {e write-through}: the in-memory image stays
    authoritative within a process, and the files mirror exactly the
    durable prefix. This keeps I/O accounting, fault-injection schedules
    and same-seed determinism byte-identical across backends — the sim
    and file backends differ only in whether the durable state also
    exists on disk (and in wall-clock time). *)

exception
  Io_error of { op : string; path : string; error : Unix.error }
(** A typed wrapper for every [Unix.Unix_error] the file backend can
    raise, so callers never see raw errno exceptions. [op] is the
    syscall ("open", "pwrite", "fdatasync", ...), [path] the file. *)

type t = Sim | File of { dir : string }

val kind : t -> string
(** ["sim"] or ["file"] — the value of the [backend] metrics label. *)

val label : t -> string * string
(** [("backend", kind t)], ready for {!Ariesrh_obs.Metrics.create}. *)

val is_file : t -> bool

val of_string : dir:string -> string -> (t, string) result
(** Parse a [--backend] CLI value; [dir] is used when the value is
    ["file"]. *)

val pp : Format.formatter -> t -> unit

val wrap : op:string -> path:string -> (unit -> 'a) -> 'a
(** Run [f], converting [Unix.Unix_error] into {!Io_error}. *)

val mkdir_p : string -> unit
(** Create a directory (and parents) if missing. *)

val remove_tree : string -> unit
(** Recursively delete a directory (or file); missing paths are fine.
    Storm harnesses use it to reclaim per-iteration database dirs. *)
