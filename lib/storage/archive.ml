open Ariesrh_types

(* A media archive: the durable copy of last resort.

   In-memory state is authoritative in-process (the Sim backend works
   without any directory at all); when a directory is attached, every
   mutation is written through, so a cold process can rebuild the whole
   archive from the files alone — that is what [ariesrh restore] does
   after total media loss.

   On-disk representation (all integers int64 little-endian unless
   noted):

     MANIFEST   : magic "ARAMv1\n\000" | complete_upto | master
                  | n_objects | objects_per_page | impl_tag | checksum
                  (checksum = FNV-1a over the preceding 48 bytes)
     pages.arc  : magic "ARAPv1\n\000" | pages | slots_per_page
                  then pages x [checksum | page_lsn | value_0 ..]
                  (same image encoding as the page device)
     wal.arc    : magic "ARAWv1\n\000" | wal_base
                  then frames [len u32 LE][crc u32 LE][payload],
                  consecutive record idxs starting at wal_base

   [wal.arc] is append-only: the archive never truncates, which is the
   whole point — any durable WAL record the live log has reclaimed or
   lost to rot can be fetched back from here. *)

exception Archive_corrupt of { path : string; what : string }

let manifest_magic = "ARAMv1\n\000"
let pages_magic = "ARAPv1\n\000"
let wal_magic = "ARAWv1\n\000"

let crc32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let fnv_bytes b len =
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * 0x01000193 land 0xffffffff
  done;
  !h

type geometry = { n_objects : int; objects_per_page : int; impl_tag : int }

type snapshot = {
  pages : Page.t array;  (** full committed page image at backup *)
  complete_upto : Lsn.t;  (** every update with lsn <= this is in it *)
  master : Lsn.t;  (** checkpoint master pointer at backup time *)
}

type t = {
  dir : string option;
  geometry : geometry;
  mutable snapshot : snapshot option;
  mutable wal_base : int;  (* absolute idx of the first archived record *)
  mutable frames : string array;  (* grows; [wal_count] are valid *)
  mutable crcs : int array;  (* crc recorded at append: rot detector *)
  mutable wal_count : int;
  mutable wal_fd : Unix.file_descr option;
  mutable fsyncs : int;
}

(* --- file helpers --------------------------------------------------- *)

let write_all fd path b len =
  let written = ref 0 in
  while !written < len do
    let n =
      Backend.wrap ~op:"write" ~path (fun () ->
          Unix.write fd b !written (len - !written))
    in
    if n <= 0 then
      raise (Backend.Io_error { op = "write"; path; error = Unix.EIO });
    written := !written + n
  done

let read_upto fd path ~off b len =
  Backend.wrap ~op:"lseek" ~path (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET));
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n =
      Backend.wrap ~op:"read" ~path (fun () ->
          Unix.read fd b !got (len - !got))
    in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let with_file path flags k =
  let fd =
    Backend.wrap ~op:"open" ~path (fun () -> Unix.openfile path flags 0o644)
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> k fd)

let manifest_path dir = Filename.concat dir "MANIFEST"
let pages_path dir = Filename.concat dir "pages.arc"
let wal_path dir = Filename.concat dir "wal.arc"

(* --- manifest ------------------------------------------------------- *)

let write_manifest t dir =
  let b = Bytes.make 56 '\000' in
  Bytes.blit_string manifest_magic 0 b 0 8;
  let upto, master =
    match t.snapshot with
    | None -> (0, 0)
    | Some s -> (Lsn.to_int s.complete_upto, Lsn.to_int s.master)
  in
  Bytes.set_int64_le b 8 (Int64.of_int upto);
  Bytes.set_int64_le b 16 (Int64.of_int master);
  Bytes.set_int64_le b 24 (Int64.of_int t.geometry.n_objects);
  Bytes.set_int64_le b 32 (Int64.of_int t.geometry.objects_per_page);
  Bytes.set_int64_le b 40 (Int64.of_int t.geometry.impl_tag);
  Bytes.set_int64_le b 48 (Int64.of_int (fnv_bytes b 48));
  let tmp = manifest_path dir ^ ".tmp" in
  with_file tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] (fun fd ->
      write_all fd tmp b 56;
      Backend.wrap ~op:"fsync" ~path:tmp (fun () -> Unix.fsync fd);
      t.fsyncs <- t.fsyncs + 1);
  Backend.wrap ~op:"rename" ~path:tmp (fun () ->
      Unix.rename tmp (manifest_path dir))

let read_manifest dir =
  let path = manifest_path dir in
  with_file path [ Unix.O_RDONLY ] (fun fd ->
      let b = Bytes.create 56 in
      if read_upto fd path ~off:0 b 56 < 56 then
        raise (Archive_corrupt { path; what = "manifest truncated" });
      if Bytes.sub_string b 0 8 <> manifest_magic then
        raise (Archive_corrupt { path; what = "bad manifest magic" });
      let stored = Int64.to_int (Bytes.get_int64_le b 48) in
      if stored <> fnv_bytes b 48 then
        raise (Archive_corrupt { path; what = "manifest checksum mismatch" });
      let gi o = Int64.to_int (Bytes.get_int64_le b o) in
      ( Lsn.of_int (gi 8),
        Lsn.of_int (gi 16),
        {
          n_objects = gi 24;
          objects_per_page = gi 32;
          impl_tag = gi 40;
        } ))

(* --- page snapshot file --------------------------------------------- *)

let page_bytes slots = (2 + slots) * 8

let write_pages_file t dir (s : snapshot) =
  let path = pages_path dir in
  let slots =
    if Array.length s.pages = 0 then 1 else Page.slots s.pages.(0)
  in
  let pb = page_bytes slots in
  let b = Bytes.make (16 + (Array.length s.pages * pb)) '\000' in
  Bytes.blit_string pages_magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int (Array.length s.pages));
  Array.iteri
    (fun i p ->
      let off = 16 + (i * pb) in
      Bytes.set_int64_le b off (Int64.of_int (Page.checksum p));
      Bytes.set_int64_le b (off + 8)
        (Int64.of_int (Lsn.to_int (Page.page_lsn p)));
      for sl = 0 to slots - 1 do
        Bytes.set_int64_le b (off + ((2 + sl) * 8))
          (Int64.of_int (Page.get p sl))
      done)
    s.pages;
  with_file path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] (fun fd ->
      write_all fd path b (Bytes.length b);
      Backend.wrap ~op:"fsync" ~path (fun () -> Unix.fsync fd);
      t.fsyncs <- t.fsyncs + 1)

let read_pages_file dir ~slots ~complete_upto ~master =
  let path = pages_path dir in
  if not (Sys.file_exists path) then None
  else
    with_file path [ Unix.O_RDONLY ] (fun fd ->
        let h = Bytes.create 16 in
        if read_upto fd path ~off:0 h 16 < 16 then
          raise (Archive_corrupt { path; what = "pages header truncated" });
        if Bytes.sub_string h 0 8 <> pages_magic then
          raise (Archive_corrupt { path; what = "bad pages magic" });
        let n = Int64.to_int (Bytes.get_int64_le h 8) in
        let pb = page_bytes slots in
        let b = Bytes.create pb in
        let pages =
          Array.init n (fun i ->
              if read_upto fd path ~off:(16 + (i * pb)) b pb < pb then
                raise (Archive_corrupt { path; what = "pages image truncated" });
              let checksum = Int64.to_int (Bytes.get_int64_le b 0) in
              let page_lsn =
                Lsn.of_int (Int64.to_int (Bytes.get_int64_le b 8))
              in
              let values =
                Array.init slots (fun sl ->
                    Int64.to_int (Bytes.get_int64_le b ((2 + sl) * 8)))
              in
              Page.restore ~page_lsn ~checksum values)
        in
        Some { pages; complete_upto; master })

(* --- WAL archive file ----------------------------------------------- *)

let wal_fd t dir =
  match t.wal_fd with
  | Some fd -> fd
  | None ->
      let path = wal_path dir in
      let fd =
        Backend.wrap ~op:"open" ~path (fun () ->
            Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
      in
      t.wal_fd <- Some fd;
      fd

let write_wal_header t dir =
  let path = wal_path dir in
  let fd = wal_fd t dir in
  let b = Bytes.make 16 '\000' in
  Bytes.blit_string wal_magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int t.wal_base);
  Backend.wrap ~op:"lseek" ~path (fun () ->
      ignore (Unix.lseek fd 0 Unix.SEEK_SET));
  write_all fd path b 16

let append_wal_file t dir payload =
  let path = wal_path dir in
  let fd = wal_fd t dir in
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b 8 len;
  Backend.wrap ~op:"lseek" ~path (fun () ->
      ignore (Unix.lseek fd 0 Unix.SEEK_END));
  write_all fd path b (8 + len)

let load_wal_file t dir =
  let path = wal_path dir in
  if not (Sys.file_exists path) then ()
  else begin
    let fd = wal_fd t dir in
    let size =
      Backend.wrap ~op:"fstat" ~path (fun () -> (Unix.fstat fd).Unix.st_size)
    in
    if size < 16 then ()
    else begin
      let h = Bytes.create 16 in
      if read_upto fd path ~off:0 h 16 < 16 then
        raise (Archive_corrupt { path; what = "wal header truncated" });
      if Bytes.sub_string h 0 8 <> wal_magic then
        raise (Archive_corrupt { path; what = "bad wal magic" });
      t.wal_base <- Int64.to_int (Bytes.get_int64_le h 8);
      let off = ref 16 in
      let frames = ref [] in
      let hdr = Bytes.create 8 in
      (* an archive append cut short by a crash is dropped: everything
         before it is intact (append-only file), and the live log still
         holds whatever the tail was *)
      let stop = ref false in
      while (not !stop) && !off < size do
        if read_upto fd path ~off:!off hdr 8 < 8 then stop := true
        else begin
          let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xffffffff in
          let crc = Int32.to_int (Bytes.get_int32_le hdr 4) land 0xffffffff in
          if len <= 0 || len > 16 * 1024 * 1024 then stop := true
          else begin
            let payload = Bytes.create len in
            if read_upto fd path ~off:(!off + 8) payload len < len then
              stop := true
            else begin
              frames := (Bytes.to_string payload, crc) :: !frames;
              off := !off + 8 + len
            end
          end
        end
      done;
      let l = List.rev !frames in
      t.wal_count <- List.length l;
      t.frames <- Array.make (max 1 t.wal_count) "";
      t.crcs <- Array.make (max 1 t.wal_count) 0;
      List.iteri
        (fun i (p, c) ->
          t.frames.(i) <- p;
          t.crcs.(i) <- c)
        l;
      (* drop the possibly-cut bytes so future appends land cleanly *)
      if !off < size then
        Backend.wrap ~op:"ftruncate" ~path (fun () ->
            Unix.ftruncate fd !off)
    end
  end

(* --- construction --------------------------------------------------- *)

let create ?dir ~n_objects ~objects_per_page ~impl_tag () =
  let t =
    {
      dir;
      geometry = { n_objects; objects_per_page; impl_tag };
      snapshot = None;
      wal_base = -1;
      frames = [||];
      crcs = [||];
      wal_count = 0;
      wal_fd = None;
      fsyncs = 0;
    }
  in
  (match dir with
  | None -> ()
  | Some d ->
      Backend.mkdir_p d;
      if Sys.file_exists (manifest_path d) then begin
        let upto, master, g = read_manifest d in
        if g.n_objects <> n_objects || g.objects_per_page <> objects_per_page
        then
          raise
            (Archive_corrupt
               { path = manifest_path d; what = "geometry mismatch" });
        let slots = objects_per_page in
        t.snapshot <-
          read_pages_file d ~slots ~complete_upto:upto ~master;
        load_wal_file t d
      end);
  t

(* Cold open: geometry comes from the manifest itself. *)
let open_dir dir =
  if not (Sys.file_exists (manifest_path dir)) then
    raise
      (Archive_corrupt { path = manifest_path dir; what = "no manifest" });
  let _, _, g = read_manifest dir in
  create ~dir ~n_objects:g.n_objects ~objects_per_page:g.objects_per_page
    ~impl_tag:g.impl_tag ()

let geometry t = t.geometry
let snapshot t = t.snapshot

(* --- WAL archiving -------------------------------------------------- *)

let archived_upto t = if t.wal_base < 0 then 0 else t.wal_base + t.wal_count

let ensure_frames t =
  if t.wal_count >= Array.length t.frames then begin
    let ncap = max 64 (Array.length t.frames * 2) in
    let nf = Array.make ncap "" in
    Array.blit t.frames 0 nf 0 t.wal_count;
    t.frames <- nf;
    let nc = Array.make ncap 0 in
    Array.blit t.crcs 0 nc 0 t.wal_count;
    t.crcs <- nc
  end

let append_wal t ~idx payload =
  if t.wal_base < 0 then begin
    t.wal_base <- idx;
    match t.dir with None -> () | Some d -> write_wal_header t d
  end;
  if idx <> archived_upto t then
    invalid_arg
      (Printf.sprintf "Archive.append_wal: idx %d, expected %d" idx
         (archived_upto t));
  ensure_frames t;
  t.frames.(t.wal_count) <- payload;
  t.crcs.(t.wal_count) <- crc32 payload;
  t.wal_count <- t.wal_count + 1;
  match t.dir with None -> () | Some d -> append_wal_file t d payload

let wal_base t = max 0 t.wal_base

let wal_get t ~idx =
  if t.wal_base < 0 || idx < t.wal_base || idx >= archived_upto t then None
  else Some t.frames.(idx - t.wal_base)

let iter_wal t f =
  for i = 0 to t.wal_count - 1 do
    f ~idx:(t.wal_base + i) t.frames.(i)
  done

(* --- snapshot ------------------------------------------------------- *)

let put_snapshot t ~pages ~complete_upto ~master =
  let s =
    { pages = Array.map Page.copy pages; complete_upto; master }
  in
  t.snapshot <- Some s;
  match t.dir with
  | None -> ()
  | Some d ->
      write_pages_file t d s;
      write_manifest t d

let sync t =
  match (t.dir, t.wal_fd) with
  | Some d, Some fd ->
      Backend.wrap ~op:"fsync" ~path:(wal_path d) (fun () -> Unix.fsync fd);
      t.fsyncs <- t.fsyncs + 1
  | _ -> ()

let fsyncs t = t.fsyncs

(* --- integrity ------------------------------------------------------ *)

(* Scrub support: recompute every stored checksum. Returns the indices of
   damaged archived WAL frames and damaged snapshot pages. *)
let check t =
  let bad_wal = ref [] in
  for i = t.wal_count - 1 downto 0 do
    if crc32 t.frames.(i) <> t.crcs.(i) then
      bad_wal := (t.wal_base + i) :: !bad_wal
  done;
  let bad_pages = ref [] in
  (match t.snapshot with
  | None -> ()
  | Some s ->
      for i = Array.length s.pages - 1 downto 0 do
        if not (Page.verify s.pages.(i)) then bad_pages := i :: !bad_pages
      done);
  (!bad_pages, !bad_wal)

(* Heal an archived frame back from an intact live copy. *)
let heal_wal t ~idx payload =
  if t.wal_base >= 0 && idx >= t.wal_base && idx < archived_upto t then begin
    t.frames.(idx - t.wal_base) <- payload;
    t.crcs.(idx - t.wal_base) <- crc32 payload;
    (* rewrite the whole mirror: frames are variable-length, and archive
       heals are rare enough that simplicity wins *)
    match t.dir with
    | None -> ()
    | Some d ->
        let path = wal_path d in
        let fd = wal_fd t d in
        Backend.wrap ~op:"ftruncate" ~path (fun () -> Unix.ftruncate fd 0);
        write_wal_header t d;
        for i = 0 to t.wal_count - 1 do
          append_wal_file t d t.frames.(i)
        done
  end

(* Test / injection primitive: rot one archived frame in place. *)
let bitrot_wal t ~idx =
  match wal_get t ~idx with
  | None -> ()
  | Some payload when String.length payload > 0 ->
      let b = Bytes.of_string payload in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      let rotted = Bytes.to_string b in
      t.frames.(idx - t.wal_base) <- rotted;
      (* the recorded crc keeps the intact value: that is the detector *)
      (match t.dir with
      | None -> ()
      | Some d ->
          let path = wal_path d in
          let fd = wal_fd t d in
          (* frames are append-only and contiguous: walk to the frame *)
          let off = ref 16 in
          let hdr = Bytes.create 8 in
          (try
             for _ = t.wal_base to idx - 1 do
               if read_upto fd path ~off:!off hdr 8 < 8 then raise Exit;
               let len =
                 Int32.to_int (Bytes.get_int32_le hdr 0) land 0xffffffff
               in
               off := !off + 8 + len
             done;
             Backend.wrap ~op:"lseek" ~path (fun () ->
                 ignore (Unix.lseek fd (!off + 8) Unix.SEEK_SET));
             let rb = Bytes.of_string rotted in
             write_all fd path rb (Bytes.length rb)
           with Exit -> ()))
  | Some _ -> ()

let close t =
  match t.wal_fd with
  | None -> ()
  | Some fd ->
      t.wal_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
