(** A database page: a fixed array of integer-valued object slots plus
    the page LSN (the LSN of the last log record whose update was applied
    to this page). Redo is conditioned on the page LSN, which is what
    makes ARIES redo idempotent. *)

open Ariesrh_types

type t

val create : slots:int -> t
(** All slots start at 0 with [page_lsn = Lsn.nil]. *)

val copy : t -> t
val slots : t -> int
val page_lsn : t -> Lsn.t
val set_page_lsn : t -> Lsn.t -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit

val seal : t -> unit
(** Recompute the stored checksum from the current LSN and slot values.
    [Disk.write_page] seals pages as they reach stable storage; in-memory
    buffer pool frames carry stale checksums between writes. *)

val verify : t -> bool
(** Whether the stored checksum matches the current contents. False for a
    torn write that persisted only part of a page image. *)

val checksum : t -> int

val restore : page_lsn:Lsn.t -> checksum:int -> int array -> t
(** Rebuild a page from its stored representation, keeping the stored
    checksum verbatim (it may legitimately mismatch: a torn page read
    back from the file backend must still fail {!verify}). The value
    array is copied. *)

val pp : Format.formatter -> t -> unit
