open Ariesrh_types

type t = { mutable page_lsn : Lsn.t; values : int array; mutable checksum : int }

(* FNV-1a-style mix over the page LSN and all slot values, truncated to
   62 bits so it stays a valid OCaml int on 64-bit platforms. *)
let fingerprint page_lsn values =
  let mask = (1 lsl 62) - 1 in
  let h = ref 0x811c9dc5 in
  let mix v =
    h := (!h lxor (v land 0xff)) * 0x01000193 land mask;
    h := (!h lxor ((v lsr 8) land 0xffff)) * 0x01000193 land mask;
    h := (!h lxor ((v lsr 24) land mask)) * 0x01000193 land mask
  in
  mix (Lsn.to_int page_lsn);
  Array.iter mix values;
  !h

let create ~slots =
  if slots <= 0 then invalid_arg "Page.create: slots must be positive";
  let values = Array.make slots 0 in
  { page_lsn = Lsn.nil; values; checksum = fingerprint Lsn.nil values }

let copy t = { page_lsn = t.page_lsn; values = Array.copy t.values; checksum = t.checksum }
let slots t = Array.length t.values
let page_lsn t = t.page_lsn
let set_page_lsn t lsn = t.page_lsn <- lsn
let get t i = t.values.(i)
let set t i v = t.values.(i) <- v
let seal t = t.checksum <- fingerprint t.page_lsn t.values
let verify t = t.checksum = fingerprint t.page_lsn t.values
let checksum t = t.checksum

let restore ~page_lsn ~checksum values =
  if Array.length values = 0 then
    invalid_arg "Page.restore: slots must be positive";
  { page_lsn; values = Array.copy values; checksum }

let pp ppf t =
  Format.fprintf ppf "page_lsn=%a [%s]" Lsn.pp t.page_lsn
    (String.concat ";" (Array.to_list (Array.map string_of_int t.values)))
