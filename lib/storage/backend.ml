exception
  Io_error of { op : string; path : string; error : Unix.error }

type t = Sim | File of { dir : string }

let kind = function Sim -> "sim" | File _ -> "file"
let label t = ("backend", kind t)
let is_file = function File _ -> true | Sim -> false

let of_string ~dir = function
  | "sim" -> Ok Sim
  | "file" -> Ok (File { dir })
  | s -> Error (Printf.sprintf "unknown backend %S (expected sim|file)" s)

let pp ppf t =
  match t with
  | Sim -> Format.pp_print_string ppf "sim"
  | File { dir } -> Format.fprintf ppf "file:%s" dir

let wrap ~op ~path f =
  try f ()
  with Unix.Unix_error (error, _, _) -> raise (Io_error { op; path; error })

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      wrap ~op:"mkdir" ~path:d (fun () ->
          try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let rec remove_tree dir =
  match Sys.is_directory dir with
  | true ->
      Array.iter
        (fun name -> remove_tree (Filename.concat dir name))
        (Sys.readdir dir);
      wrap ~op:"rmdir" ~path:dir (fun () -> Unix.rmdir dir)
  | false -> (try Sys.remove dir with Sys_error _ -> ())
  | exception Sys_error _ -> ()
