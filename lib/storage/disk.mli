(** Simulated stable storage for data pages.

    Pages written here survive crashes. Reads and writes are counted so
    experiments can report data I/O alongside log I/O.

    When a live {!Ariesrh_fault.Fault} injector is attached, writes can
    be torn (only a prefix of the new slot image persists) and any read
    or write can raise [Fault.Injected_crash]. Pages are checksummed as
    they are written, so torn images are detectable via
    {!read_page_checked}; the disk also keeps the last known-good image
    of every page (a doublewrite-style before-image) from which recovery
    repairs a torn page by replaying the log. *)

open Ariesrh_types

type stats = { mutable page_reads : int; mutable page_writes : int }

type t

val create :
  ?fault:Ariesrh_fault.Fault.t ->
  ?backend:Backend.t ->
  pages:int ->
  slots_per_page:int ->
  unit ->
  t
(** [backend] (default [Sim]) selects the stable device. With
    [File { dir }], every stable write is mirrored into [dir/data.pages]
    (main + doublewrite shadow regions) and an existing file's images are
    loaded back — the reopen path after a real process death. *)

val page_count : t -> int
val slots_per_page : t -> int

val read_page : t -> Page_id.t -> Page.t
(** Returns a private copy; mutating it does not affect the disk. No
    integrity check: a torn page is returned as stored. *)

val read_page_checked : t -> Page_id.t -> (Page.t, Page.t) result
(** Like {!read_page} but verifies the page checksum. [Error shadow]
    returns a copy of the last known-good image of the page instead;
    callers repair by replaying the log from that before-image. *)

val write_page : t -> Page_id.t -> Page.t -> unit
(** Stores a sealed copy of the given page (possibly torn under fault
    injection; may raise [Fault.Injected_crash] after the write). *)

(** {2 Media scrub / heal primitives}

    None of these advance the fault injector's I/O clock: they are the
    scrubber's and the injector's own access paths, and healing or
    rotting a page must never shift a crash schedule. *)

val verify_main : t -> Page_id.t -> bool
(** Does the stored main image pass its checksum? *)

val verify_shadow : t -> Page_id.t -> bool
(** Does the stored shadow (doublewrite) image pass its checksum? *)

val main_matches_shadow : t -> Page_id.t -> bool
(** Are the main and shadow images identical? Clean writes always update
    both together, so a checksum-valid mismatch is the signature of a
    lost or misdirected write. *)

val peek_main : t -> Page_id.t -> Page.t
(** Copy of the main image, no integrity check, no fault tick. *)

val shadow_copy : t -> Page_id.t -> Page.t
(** Copy of the shadow image, no fault tick. *)

val install_page : t -> Page_id.t -> Page.t -> unit
(** Heal write: seal and install the image as both main and shadow, on
    the arrays and the device. Never torn, never ticks the injector. *)

val reseal_shadow_from_main : t -> Page_id.t -> unit
(** The shadow itself rotted while main verifies: refresh shadow := main. *)

val bitrot_main : t -> Page_id.t -> slot:int -> unit
(** Injection primitive: flip bits in one slot of the stored main image
    without re-sealing, so the page stops verifying — on the file too. *)

val sync : t -> unit
(** [fsync] the page file on the file backend; no-op on sim. *)

val fsyncs : t -> int
(** Lifetime page-file fsyncs ([0] on sim). Deliberately an accessor and
    not a registered metric, so forensic dumps stay byte-identical across
    backends (the same precedent as {!Ariesrh_wal.Log_store.decode_calls}). *)

val close : t -> unit
(** Release the page-file descriptor (idempotent; no-op on sim). *)

val stats : t -> stats
val reset_stats : t -> unit

val register_metrics : t -> Ariesrh_obs.Metrics.t -> unit
