open Ariesrh_types
module Fault = Ariesrh_fault.Fault

exception Torn_page of Page_id.t

type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable rec_lsn : Lsn.t;  (* meaningful only when dirty *)
  mutable last_used : int;
}

type t = {
  capacity : int;
  disk : Disk.t;
  wal_flush : Lsn.t -> unit;
  frames : frame Page_id.Tbl.t;
  fault : Fault.t;
  (* Torn-page repair: given the page id and the last known-good image,
     return a repaired page (and persist it). Installed by Db so both
     normal operation and recovery transparently repair torn pages. *)
  mutable repair : (Page_id.t -> Page.t -> Page.t) option;
  mutable clock : int;
  mutable evictions : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(fault = Fault.none ()) ~capacity ~disk ~wal_flush () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    disk;
    wal_flush;
    frames = Page_id.Tbl.create capacity;
    fault;
    repair = None;
    clock = 0;
    evictions = 0;
    hits = 0;
    misses = 0;
  }

let set_repair t f = t.repair <- Some f
let disk t = t.disk

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let write_back t pid frame =
  if frame.dirty then begin
    t.wal_flush (Page.page_lsn frame.page);
    Disk.write_page t.disk pid frame.page;
    frame.dirty <- false;
    frame.rec_lsn <- Lsn.nil
  end

let evict_one t =
  (* LRU victim *)
  let victim =
    Page_id.Tbl.fold
      (fun pid frame acc ->
        match acc with
        | Some (_, best) when best.last_used <= frame.last_used -> acc
        | _ -> Some (pid, frame))
      t.frames None
  in
  match victim with
  | None -> ()
  | Some (pid, frame) ->
      write_back t pid frame;
      Page_id.Tbl.remove t.frames pid;
      t.evictions <- t.evictions + 1

let get_frame t pid =
  match Page_id.Tbl.find_opt t.frames pid with
  | Some frame ->
      frame.last_used <- tick t;
      t.hits <- t.hits + 1;
      frame
  | None ->
      if Page_id.Tbl.length t.frames >= t.capacity then evict_one t;
      Fault.on_pool_miss t.fault;
      let page =
        match Disk.read_page_checked t.disk pid with
        | Ok p -> p
        | Error shadow -> (
            match t.repair with
            | Some f -> f pid shadow
            | None -> raise (Torn_page pid))
      in
      let frame = { page; dirty = false; rec_lsn = Lsn.nil; last_used = tick t } in
      Page_id.Tbl.replace t.frames pid frame;
      t.misses <- t.misses + 1;
      frame

let read_object t pid ~slot =
  let frame = get_frame t pid in
  Page.get frame.page slot

let page_lsn t pid =
  let frame = get_frame t pid in
  Page.page_lsn frame.page

let mark_dirty frame ~lsn =
  if not frame.dirty then begin
    frame.dirty <- true;
    frame.rec_lsn <- lsn
  end

let apply t pid ~lsn f =
  let frame = get_frame t pid in
  mark_dirty frame ~lsn;
  f frame.page;
  Page.set_page_lsn frame.page lsn

let apply_if_newer t pid ~lsn f =
  let frame = get_frame t pid in
  if Lsn.(Page.page_lsn frame.page < lsn) then begin
    mark_dirty frame ~lsn;
    f frame.page;
    Page.set_page_lsn frame.page lsn;
    true
  end
  else false

let dirty_page_table t =
  Page_id.Tbl.fold
    (fun pid frame acc -> if frame.dirty then (pid, frame.rec_lsn) :: acc else acc)
    t.frames []

let flush_all t =
  Page_id.Tbl.iter (fun pid frame -> write_back t pid frame) t.frames

let crash t =
  Page_id.Tbl.reset t.frames;
  t.clock <- 0

let evictions t = t.evictions
let hits t = t.hits
let misses t = t.misses

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  M.counter m ~help:"buffer pool hits" "ariesrh_pool_hits_total" (fun () ->
      hits t);
  M.counter m ~help:"buffer pool misses" "ariesrh_pool_misses_total"
    (fun () -> misses t);
  M.counter m ~help:"buffer pool evictions" "ariesrh_pool_evictions_total"
    (fun () -> evictions t);
  M.gauge m ~help:"entries in the dirty page table"
    "ariesrh_pool_dirty_pages" (fun () -> List.length (dirty_page_table t))
