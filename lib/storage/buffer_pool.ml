open Ariesrh_types
module Fault = Ariesrh_fault.Fault

exception Torn_page of Page_id.t

(* Frames are intrusive nodes of a doubly-linked LRU list: [prev] points
   towards the MRU end, [next] towards the LRU end. The list order *is*
   the recency order, so eviction pops the tail in O(1) instead of
   folding over the whole table for the oldest tick. *)
type frame = {
  pid : Page_id.t;
  page : Page.t;
  mutable dirty : bool;
  mutable rec_lsn : Lsn.t;  (* meaningful only when dirty *)
  mutable prev : frame option;
  mutable next : frame option;
}

type t = {
  capacity : int;
  disk : Disk.t;
  wal_flush : Lsn.t -> unit;
  frames : frame Page_id.Tbl.t;
  fault : Fault.t;
  (* Torn-page repair: given the page id and the last known-good image,
     return a repaired page (and persist it). Installed by Db so both
     normal operation and recovery transparently repair torn pages. *)
  mutable repair : (Page_id.t -> Page.t -> Page.t) option;
  mutable mru : frame option;
  mutable lru : frame option;
  mutable dirty_n : int;
  mutable evictions : int;
  mutable eviction_scans : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(fault = Fault.none ()) ~capacity ~disk ~wal_flush () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    disk;
    wal_flush;
    frames = Page_id.Tbl.create capacity;
    fault;
    repair = None;
    mru = None;
    lru = None;
    dirty_n = 0;
    evictions = 0;
    eviction_scans = 0;
    hits = 0;
    misses = 0;
  }

let set_repair t f = t.repair <- Some f
let disk t = t.disk

(* --- intrusive LRU list --- *)

let unlink t frame =
  (match frame.prev with
  | Some p -> p.next <- frame.next
  | None -> t.mru <- frame.next);
  (match frame.next with
  | Some n -> n.prev <- frame.prev
  | None -> t.lru <- frame.prev);
  frame.prev <- None;
  frame.next <- None

let push_mru t frame =
  frame.prev <- None;
  frame.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some frame | None -> ());
  t.mru <- Some frame;
  if t.lru = None then t.lru <- Some frame

let touch t frame =
  match frame.prev with
  | None -> ()  (* already the MRU head *)
  | Some _ ->
      unlink t frame;
      push_mru t frame

let set_dirty t frame dirty =
  if frame.dirty <> dirty then begin
    frame.dirty <- dirty;
    t.dirty_n <- t.dirty_n + (if dirty then 1 else -1)
  end

let write_back t pid frame =
  if frame.dirty then begin
    t.wal_flush (Page.page_lsn frame.page);
    Disk.write_page t.disk pid frame.page;
    set_dirty t frame false;
    frame.rec_lsn <- Lsn.nil
  end

let evict_one t =
  (* LRU victim: the list tail, found in one probe. (The seed version
     folded over every frame for the minimum tick; [eviction_scans]
     counts frames examined per eviction, so the fold cost was
     [length t.frames] here and is now exactly 1.) *)
  match t.lru with
  | None -> ()
  | Some frame ->
      t.eviction_scans <- t.eviction_scans + 1;
      write_back t frame.pid frame;
      unlink t frame;
      Page_id.Tbl.remove t.frames frame.pid;
      t.evictions <- t.evictions + 1

let get_frame t pid =
  match Page_id.Tbl.find_opt t.frames pid with
  | Some frame ->
      touch t frame;
      t.hits <- t.hits + 1;
      frame
  | None ->
      if Page_id.Tbl.length t.frames >= t.capacity then evict_one t;
      Fault.on_pool_miss t.fault;
      let page =
        match Disk.read_page_checked t.disk pid with
        | Ok p -> p
        | Error shadow -> (
            match t.repair with
            | Some f -> f pid shadow
            | None -> raise (Torn_page pid))
      in
      let frame =
        { pid; page; dirty = false; rec_lsn = Lsn.nil; prev = None; next = None }
      in
      push_mru t frame;
      Page_id.Tbl.replace t.frames pid frame;
      t.misses <- t.misses + 1;
      frame

let read_object t pid ~slot =
  let frame = get_frame t pid in
  Page.get frame.page slot

let page_lsn t pid =
  let frame = get_frame t pid in
  Page.page_lsn frame.page

let mark_dirty t frame ~lsn =
  if not frame.dirty then begin
    set_dirty t frame true;
    frame.rec_lsn <- lsn
  end

let apply t pid ~lsn f =
  let frame = get_frame t pid in
  mark_dirty t frame ~lsn;
  f frame.page;
  Page.set_page_lsn frame.page lsn

let apply_if_newer t pid ~lsn f =
  let frame = get_frame t pid in
  if Lsn.(Page.page_lsn frame.page < lsn) then begin
    mark_dirty t frame ~lsn;
    f frame.page;
    Page.set_page_lsn frame.page lsn;
    true
  end
  else false

let dirty_page_table t =
  Page_id.Tbl.fold
    (fun pid frame acc -> if frame.dirty then (pid, frame.rec_lsn) :: acc else acc)
    t.frames []

let flush_all t =
  Page_id.Tbl.iter (fun pid frame -> write_back t pid frame) t.frames

let crash t =
  Page_id.Tbl.reset t.frames;
  t.mru <- None;
  t.lru <- None;
  t.dirty_n <- 0

let evictions t = t.evictions
let eviction_scans t = t.eviction_scans
let hits t = t.hits
let misses t = t.misses
let dirty_count t = t.dirty_n

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  M.counter m ~help:"buffer pool hits" "ariesrh_pool_hits_total" (fun () ->
      hits t);
  M.counter m ~help:"buffer pool misses" "ariesrh_pool_misses_total"
    (fun () -> misses t);
  M.counter m ~help:"buffer pool evictions" "ariesrh_pool_evictions_total"
    (fun () -> evictions t);
  M.counter m ~help:"frames examined while choosing eviction victims"
    "ariesrh_pool_eviction_scans_total" (fun () -> eviction_scans t);
  M.gauge m ~help:"entries in the dirty page table"
    "ariesrh_pool_dirty_pages" (fun () -> dirty_count t)
