(** The stable-storage device behind {!Disk}.

    The simulated device is a no-op: the disk's in-memory arrays are the
    whole story. The file device mirrors every stable page write into a
    single page file ([data.pages] under the backend directory) holding a
    header, the main region and the doublewrite-style shadow region, so
    that a process killed mid-run leaves behind exactly the images the
    in-memory disk held — including genuinely partial (torn) writes.

    The in-memory arrays stay authoritative within a process; the file
    is only read back by {!load} when a new process reopens the
    database. *)

type t

val sim : t
(** The inert device: every write is a no-op, {!load} is [None]. *)

val create : dir:string -> pages:int -> slots_per_page:int -> t
(** Open (or create and zero-fill) [dir/data.pages]. Raises
    [Invalid_argument] if an existing file has different geometry and
    {!Backend.Io_error} on I/O failure. *)

val is_file : t -> bool

val load : t -> (Page.t array * Page.t array) option
(** [(main, shadow)] as stored — torn images come back failing
    [Page.verify], exactly as written. [None] for the sim device. *)

val write_main : t -> int -> Page.t -> unit
val write_shadow : t -> int -> Page.t -> unit

val write_main_torn : t -> int -> Page.t -> keep:int -> unit
(** Partial write of the new image: stored checksum, page LSN and the
    first [keep] slot values only — the file keeps the old bytes for the
    remaining slots. *)

val sync : t -> unit
(** [fsync] the page file (counted). No-op on the sim device. *)

val fsyncs : t -> int
val close : t -> unit
