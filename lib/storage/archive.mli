(** The media archive: durable copy of last resort.

    Holds a checksummed snapshot of the full page image (taken by
    [Db.backup]) plus a continuous, append-only copy of every durable
    WAL record from {!wal_base} onwards. The live log truncates;
    the archive never does — so any page lost to bit-rot and any
    reclaimed or rotted durable WAL record can be fetched back from
    here, and a cold [ariesrh restore] can rebuild the exact committed
    state after total media loss.

    In-memory state is authoritative in-process (the Sim backend works
    with no directory); with [?dir] every mutation is written through to
    [MANIFEST] / [pages.arc] / [wal.arc], each independently
    checksummed. *)

open Ariesrh_types

exception Archive_corrupt of { path : string; what : string }

type geometry = { n_objects : int; objects_per_page : int; impl_tag : int }

type snapshot = {
  pages : Page.t array;
  complete_upto : Lsn.t;
      (** every update with lsn <= this is reflected in [pages] *)
  master : Lsn.t;  (** checkpoint master pointer at backup time *)
}

type t

val create :
  ?dir:string ->
  n_objects:int ->
  objects_per_page:int ->
  impl_tag:int ->
  unit ->
  t
(** Fresh archive, or reopen of an existing one under [dir] (raises
    {!Archive_corrupt} on a geometry mismatch or damaged files). *)

val open_dir : string -> t
(** Cold open: geometry comes from the manifest. Raises
    {!Archive_corrupt} when there is no (valid) manifest. *)

val geometry : t -> geometry
val snapshot : t -> snapshot option

val put_snapshot :
  t -> pages:Page.t array -> complete_upto:Lsn.t -> master:Lsn.t -> unit
(** Install (and persist, when mirrored) a full page snapshot. *)

val append_wal : t -> idx:int -> string -> unit
(** Archive the encoded record at absolute log index [idx]. The first
    append fixes {!wal_base}; appends must be consecutive. *)

val archived_upto : t -> int
(** Records with idx < this are archived ([0] when none are). *)

val wal_base : t -> int
val wal_get : t -> idx:int -> string option
val iter_wal : t -> (idx:int -> string -> unit) -> unit

val sync : t -> unit
(** [fsync] the WAL archive file (no-op when unmirrored). *)

val fsyncs : t -> int

val check : t -> int list * int list
(** Recompute every stored checksum: [(bad_page_ids, bad_wal_idxs)]. *)

val heal_wal : t -> idx:int -> string -> unit
(** Replace a rotted archived frame with an intact live copy. *)

val bitrot_wal : t -> idx:int -> unit
(** Injection primitive: flip bits in one archived frame, memory and
    mirror alike, leaving the recorded crc as the detector. *)

val close : t -> unit
