(* A cluster-wide view of per-shard log pressure.

   Each shard's governor publishes its own pressure here on every
   evaluation and reads the cluster maximum back. Slots are
   single-writer (one per shard); readers may observe a slightly stale
   float, which is fine for an advisory watermark — the view trades
   precision for zero coordination. *)

type t = { slots : float array }

let create n =
  if n < 1 then invalid_arg "Pressure_view.create: need at least one slot";
  { slots = Array.make n 0. }

let size t = Array.length t.slots

let publish t i p =
  if i < 0 || i >= Array.length t.slots then
    invalid_arg "Pressure_view.publish: no such slot";
  t.slots.(i) <- p

let shard t i =
  if i < 0 || i >= Array.length t.slots then
    invalid_arg "Pressure_view.shard: no such slot";
  t.slots.(i)

let max_pressure t = Array.fold_left Float.max 0. t.slots

let mean t =
  Array.fold_left ( +. ) 0. t.slots /. float_of_int (Array.length t.slots)

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf p -> Format.fprintf ppf "%.2f" p))
    (Array.to_seq t.slots)
