(** A cluster-wide view of per-shard log pressure.

    One slot per shard; each shard's {!Governor} publishes its local
    {!Ariesrh_core.Db.log_pressure} on every evaluation and consults
    {!max_pressure} when engaging the advisory backpressure ladder — so
    one shard running hot throttles the whole cluster's intake before
    migrations pile more work onto it. Slots are single-writer and
    reads tolerate staleness; no locking anywhere. *)

type t

val create : int -> t
(** One slot per shard. *)

val size : t -> int

val publish : t -> int -> float -> unit
(** [publish t shard pressure] — called by shard [shard]'s governor. *)

val shard : t -> int -> float
(** Last published pressure of one shard. *)

val max_pressure : t -> float
(** The hottest shard right now (0 if nothing published yet). *)

val mean : t -> float
val pp : Format.formatter -> t -> unit
