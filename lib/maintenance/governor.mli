(** Autonomous log-space governance.

    A bounded WAL ({!Ariesrh_core.Config.log_capacity_bytes}) needs
    someone to reclaim space before admission control starts refusing
    work. The governor is that someone: ticked from the engine's step
    loop, it watches {!Ariesrh_core.Db.log_pressure} against two
    watermarks.

    - Below [soft]: do nothing; lift any backpressure still engaged.
    - At or above [soft]: run a fuzzy checkpoint (throttled by
      [min_ckpt_gap]) and truncate the reclaimable prefix.
    - Still at or above [hard] after reclaiming: the horizon is pinned —
      with delegation, typically by a transaction holding delegated-in
      scopes that reach far back (the paper's E8 effect). Escalate one
      [policies] step per tick: refuse new delegations (they extend
      pins), refuse new transactions (typed
      [Errors.Overloaded]), and finally victimize the oldest pinner by
      aborting it — abort draws only on reserved log space, so the
      victim's rollback cannot die of [Log_full].

    De-escalation is hysteretic: every policy disengages as soon as
    pressure falls back below [soft]. *)

open Ariesrh_types
open Ariesrh_core

type policy =
  | Refuse_delegations  (** delegations raise [Errors.Overloaded] *)
  | Refuse_begins  (** [begin_txn] raises [Errors.Overloaded] *)
  | Victimize_oldest  (** abort the transaction with the oldest pin *)

val pp_policy : Format.formatter -> policy -> unit

type config = {
  soft : float;  (** reclaim watermark, fraction of capacity *)
  hard : float;  (** backpressure watermark, [>= soft] *)
  tick_every : int;  (** evaluate every n-th {!tick} *)
  min_ckpt_gap : int;
      (** minimum log-head advance (records) between checkpoints *)
  policies : policy list;  (** escalation ladder, engaged left to right *)
}

val default_config : config
(** soft 0.60, hard 0.85, tick_every 8, min_ckpt_gap 16, all three
    policies in the order above. *)

type stats = {
  mutable ticks : int;  (** evaluations run *)
  mutable checkpoints : int;
  mutable truncations : int;  (** truncate calls that reclaimed > 0 *)
  mutable records_truncated : int;
  mutable soft_trips : int;  (** evaluations at or above [soft] *)
  mutable hard_trips : int;  (** evaluations still at or above [hard] *)
  mutable victims : int;
  mutable recovery_steps : int;
      (** evaluations spent draining an on-demand restart backlog *)
}

val pp_stats : Format.formatter -> stats -> unit

type t

val create :
  ?config:config ->
  ?scrubber:Scrubber.t ->
  ?view:Pressure_view.t * int ->
  Db.t ->
  t
(** Raises [Invalid_argument] on a nonsensical config (watermarks
    outside (0, 1], [hard < soft], non-positive [tick_every]) or a
    [view] slot out of range.

    [scrubber] attaches a background media scrubber: each evaluation
    advances it one batch, so checksum sweeps ride the governor's clock
    with no thread of their own.

    [view] plugs this governor into a sharded engine's shared
    {!Pressure_view} at the given slot: every evaluation publishes the
    local pressure and folds the cluster maximum into the advisory
    backpressure ladder (one hot shard throttles every shard's
    intake). Reclamation and victimization stay strictly local. *)

val tick : t -> unit
(** Call once per engine step. Every [tick_every]-th call evaluates the
    watermarks and acts — and first runs media maintenance: a WAL
    archiving catchup ({!Ariesrh_core.Db.archive_catchup}) and one
    scrubber batch when one is attached. While the database is
    {!Ariesrh_core.Db.recovering}, an evaluation instead advances the
    on-demand restart backlog one {!Ariesrh_core.Db.recovery_step} —
    the governor is the background sweeper. May raise
    [Fault.Injected_crash] out of a checkpoint's log flush when fault
    injection is live — exactly like any other engine step. *)

val force_tick : t -> unit
(** Evaluate immediately, ignoring the [tick_every] throttle. *)

val note_crash : t -> unit
(** Tell the governor the database crashed and restarted: resets the
    escalation level (the [Db] flags were already cleared by the crash)
    and resyncs its checkpoint bookkeeping to the recovered log. *)

val stats : t -> stats

val level : t -> int
(** How many policies are currently engaged (0 = no backpressure). *)

val victims : t -> Xid.t list
(** Every transaction victimized so far, oldest first. *)
