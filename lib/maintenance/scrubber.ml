open Ariesrh_types
open Ariesrh_wal
open Ariesrh_core

(* The sweep position: data pages, then the durable WAL window, then the
   archive's own files, then wrap. WAL indices are absolute (0-based,
   idx = lsn - 1); truncation may reclaim under a parked cursor, and
   [Db.scrub_wal] clamps to the retained window, so a stale cursor just
   skips what no longer exists. *)
type cursor = Pages of int | Wal of int | Arch

type t = {
  db : Db.t;
  batch : int;
  mutable cursor : cursor;
  mutable steps : int;
  mutable sweeps : int;  (* completed full passes over all three media *)
}

let create ?(batch = 16) db =
  if batch <= 0 then invalid_arg "Scrubber: batch must be positive";
  { db; batch; cursor = Pages 0; steps = 0; sweeps = 0 }

let page_count t =
  Config.pages_needed (Db.config t.db)

let step t =
  t.steps <- t.steps + 1;
  match t.cursor with
  | Pages i ->
      let out = Db.scrub_pages ~first:i ~count:t.batch t.db in
      let next = i + t.batch in
      (t.cursor <-
         (if next >= page_count t then
            Wal (Lsn.to_int (Log_store.truncated_below (Db.log_store t.db)) - 1)
          else Pages next));
      out
  | Wal i ->
      let durable = Lsn.to_int (Log_store.durable (Db.log_store t.db)) in
      let out = Db.scrub_wal ~first:i ~count:t.batch t.db in
      t.cursor <- (if i + t.batch >= durable then Arch else Wal (i + t.batch));
      out
  | Arch ->
      let out = Db.scrub_archive t.db in
      t.cursor <- Pages 0;
      t.sweeps <- t.sweeps + 1;
      out

(* Drive [step] until the sweep counter advances: one complete pass over
   pages, WAL and archive, whatever the batch size. *)
let run_full t =
  let target = t.sweeps + 1 in
  let acc =
    ref { Db.checked = 0; corrupt = 0; healed = 0; unhealable = 0 }
  in
  while t.sweeps < target do
    let o = step t in
    acc :=
      {
        Db.checked = (!acc).Db.checked + o.Db.checked;
        corrupt = (!acc).Db.corrupt + o.Db.corrupt;
        healed = (!acc).Db.healed + o.Db.healed;
        unhealable = (!acc).Db.unhealable + o.Db.unhealable;
      }
  done;
  !acc

let steps t = t.steps
let sweeps t = t.sweeps

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  M.counter m ~help:"incremental scrub steps taken"
    "ariesrh_scrubber_steps_total" (fun () -> t.steps);
  M.counter m ~help:"full scrub sweeps completed"
    "ariesrh_scrubber_sweeps_total" (fun () -> t.sweeps)
