open Ariesrh_types
open Ariesrh_wal
open Ariesrh_core
module Obs = Ariesrh_obs

type policy = Refuse_delegations | Refuse_begins | Victimize_oldest

let pp_policy ppf = function
  | Refuse_delegations -> Format.pp_print_string ppf "refuse-delegations"
  | Refuse_begins -> Format.pp_print_string ppf "refuse-begins"
  | Victimize_oldest -> Format.pp_print_string ppf "victimize-oldest"

type config = {
  soft : float;
  hard : float;
  tick_every : int;
  min_ckpt_gap : int;
  policies : policy list;
}

let default_config =
  {
    soft = 0.60;
    hard = 0.85;
    tick_every = 8;
    min_ckpt_gap = 16;
    policies = [ Refuse_delegations; Refuse_begins; Victimize_oldest ];
  }

let validate_config c =
  if not (c.soft > 0. && c.soft <= 1.) then
    invalid_arg "Governor: soft watermark must be in (0, 1]";
  if c.hard < c.soft then
    invalid_arg "Governor: hard watermark must be >= soft";
  if c.tick_every <= 0 then invalid_arg "Governor: tick_every must be positive";
  if c.min_ckpt_gap < 0 then
    invalid_arg "Governor: min_ckpt_gap must be non-negative"

type stats = {
  mutable ticks : int;
  mutable checkpoints : int;
  mutable truncations : int;
  mutable records_truncated : int;
  mutable soft_trips : int;
  mutable hard_trips : int;
  mutable victims : int;
  mutable recovery_steps : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "ticks=%d checkpoints=%d truncations=%d records_truncated=%d \
     soft_trips=%d hard_trips=%d victims=%d recovery_steps=%d"
    s.ticks s.checkpoints s.truncations s.records_truncated s.soft_trips
    s.hard_trips s.victims s.recovery_steps

type t = {
  config : config;
  db : Db.t;
  (* media maintenance riding the governor's clock: the incremental
     scrubber (one batch per evaluation) and, with an archive attached,
     a WAL-archiving catchup before each reclamation decision *)
  scrubber : Scrubber.t option;
  (* sharded engines: the shared per-shard pressure view and this
     governor's slot in it *)
  view : (Pressure_view.t * int) option;
  stats : stats;
  mutable steps : int;  (* engine steps observed since creation *)
  mutable last_ckpt_head : int;  (* log head at the last checkpoint taken *)
  mutable level : int;  (* how many policies are currently engaged *)
  mutable victims : Xid.t list;  (* every transaction ever victimized *)
}

let policy_name p = Format.asprintf "%a" pp_policy p

let create ?(config = default_config) ?scrubber ?view db =
  validate_config config;
  (match view with
  | Some (v, i) when i < 0 || i >= Pressure_view.size v ->
      invalid_arg "Governor: view slot out of range"
  | _ -> ());
  let t =
  {
    config;
    db;
    scrubber;
    view;
    stats =
      {
        ticks = 0;
        checkpoints = 0;
        truncations = 0;
        records_truncated = 0;
        soft_trips = 0;
        hard_trips = 0;
        victims = 0;
        recovery_steps = 0;
      };
    steps = 0;
    last_ckpt_head = 0;
    level = 0;
    victims = [];
  }
  in
  let m = Db.metrics db in
  let module M = Obs.Metrics in
  let s = t.stats in
  M.counter m ~help:"governor evaluations" "ariesrh_governor_ticks_total"
    (fun () -> s.ticks);
  M.counter m ~help:"checkpoints taken by the governor"
    "ariesrh_governor_checkpoints_total" (fun () -> s.checkpoints);
  M.counter m ~help:"log truncations performed"
    "ariesrh_governor_truncations_total" (fun () -> s.truncations);
  M.counter m ~help:"records reclaimed by truncation"
    "ariesrh_governor_records_truncated_total" (fun () ->
      s.records_truncated);
  M.counter m ~help:"soft watermark trips"
    "ariesrh_governor_soft_trips_total" (fun () -> s.soft_trips);
  M.counter m ~help:"hard watermark trips"
    "ariesrh_governor_hard_trips_total" (fun () -> s.hard_trips);
  M.counter m ~help:"transactions victimized under hard pressure"
    "ariesrh_governor_victims_total" (fun () -> s.victims);
  M.gauge m ~help:"policies currently engaged" "ariesrh_governor_level"
    (fun () -> t.level);
  t

let emit t ev =
  let ring = Db.ring t.db in
  if Obs.Ring.enabled ring then Obs.Ring.emit ring (Obs.Event.Governor ev)

let stats t = t.stats
let level t = t.level
let victims t = List.rev t.victims

let note_crash t =
  (* Db.crash already dropped the backpressure flags with the rest of
     the volatile state; resync the governor's view *)
  t.level <- 0;
  t.last_ckpt_head <- Lsn.to_int (Log_store.head (Db.log_store t.db))

let active p t =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  List.mem p (take t.level t.config.policies)

let apply_flags t =
  Db.set_backpressure t.db
    ~begins:(active Refuse_begins t)
    ~delegations:(active Refuse_delegations t)

(* A checkpoint only moves the truncation horizon if the log head has
   advanced since the last one; gate on that so a stuck horizon does not
   degenerate into a checkpoint per tick. *)
let maybe_checkpoint t =
  let head = Lsn.to_int (Log_store.head (Db.log_store t.db)) in
  if head - t.last_ckpt_head >= t.config.min_ckpt_gap then begin
    (* flush dirty pages first: their recLSNs pin the redo point, and a
       checkpoint over a dirty pool moves the horizon nowhere *)
    Db.shutdown t.db;
    Db.checkpoint t.db;
    t.last_ckpt_head <- Lsn.to_int (Log_store.head (Db.log_store t.db));
    t.stats.checkpoints <- t.stats.checkpoints + 1;
    emit t Obs.Event.Gov_checkpoint
  end

let reclaim t =
  let below_before = Db.truncation_horizon t.db in
  let n = Db.truncate_log t.db in
  if n > 0 then begin
    t.stats.truncations <- t.stats.truncations + 1;
    t.stats.records_truncated <- t.stats.records_truncated + n;
    emit t (Obs.Event.Gov_truncate { below = below_before; reclaimed = n })
  end

let victimize t =
  match Db.horizon_pinners t.db with
  | [] -> ()
  | (xid, _) :: _ ->
      (* abort draws only on reserved space, so the victim's rollback
         cannot itself die of Log_full *)
      Db.abort t.db xid;
      t.stats.victims <- t.stats.victims + 1;
      t.victims <- xid :: t.victims;
      emit t (Obs.Event.Victimize xid);
      (* the victim's scopes no longer pin the horizon *)
      maybe_checkpoint t;
      reclaim t

let evaluate t =
  t.stats.ticks <- t.stats.ticks + 1;
  (* an on-demand restart still draining owns this tick: advance the
     backlog one unit and defer everything else — checkpoints and
     truncation are gated off anyway, and the whole-store scrubber
     would refuse with [Recovery_incomplete] *)
  if Db.recovering t.db then begin
    ignore (Db.recovery_step t.db);
    t.stats.recovery_steps <- t.stats.recovery_steps + 1
  end
  else begin
  (* media maintenance first: keep the archive's WAL copy current (so
     the archive pin never needlessly blocks the reclamation below) and
     advance the scrubber one bounded batch *)
  ignore (Db.archive_catchup t.db);
  (match t.scrubber with Some s -> ignore (Scrubber.step s) | None -> ());
  let deescalate t =
    (match List.nth_opt t.config.policies (t.level - 1) with
    | Some p -> emit t (Obs.Event.Deescalate (policy_name p))
    | None -> ());
    t.level <- 0;
    apply_flags t
  in
  (* in a sharded engine, publish the local pressure and fold in the
     cluster maximum: the advisory ladder (refuse delegations/begins)
     engages when ANY shard runs hot — intake slows before migrations
     pile more work onto the hot shard. Reclamation and victimization
     stay strictly local: checkpointing this shard cannot relieve a
     peer, and aborting a local pinner is only justified by local
     pressure. *)
  let publish p =
    match t.view with Some (v, i) -> Pressure_view.publish v i p | None -> ()
  in
  let cluster p =
    match t.view with
    | Some (v, _) -> Float.max p (Pressure_view.max_pressure v)
    | None -> p
  in
  let p = Db.log_pressure t.db in
  publish p;
  if cluster p < t.config.soft then begin
    if t.level > 0 then deescalate t
  end
  else begin
    t.stats.soft_trips <- t.stats.soft_trips + 1;
    if p >= t.config.soft then begin
      maybe_checkpoint t;
      reclaim t
    end;
    let p = Db.log_pressure t.db in
    publish p;
    if cluster p >= t.config.hard then begin
      t.stats.hard_trips <- t.stats.hard_trips + 1;
      let before = t.level in
      t.level <- min (t.level + 1) (List.length t.config.policies);
      if t.level > before then (
        match List.nth_opt t.config.policies (t.level - 1) with
        | Some pol -> emit t (Obs.Event.Escalate (policy_name pol))
        | None -> ());
      apply_flags t;
      if active Victimize_oldest t && p >= t.config.hard then victimize t
    end
    else if cluster p < t.config.soft && t.level > 0 then
      (* hysteresis: drop backpressure only once below the soft mark *)
      deescalate t
  end
  end

let tick t =
  t.steps <- t.steps + 1;
  if t.steps mod t.config.tick_every = 0 then evaluate t

let force_tick t = evaluate t
