open Ariesrh_types
open Ariesrh_wal
open Ariesrh_core

type policy = Refuse_delegations | Refuse_begins | Victimize_oldest

let pp_policy ppf = function
  | Refuse_delegations -> Format.pp_print_string ppf "refuse-delegations"
  | Refuse_begins -> Format.pp_print_string ppf "refuse-begins"
  | Victimize_oldest -> Format.pp_print_string ppf "victimize-oldest"

type config = {
  soft : float;
  hard : float;
  tick_every : int;
  min_ckpt_gap : int;
  policies : policy list;
}

let default_config =
  {
    soft = 0.60;
    hard = 0.85;
    tick_every = 8;
    min_ckpt_gap = 16;
    policies = [ Refuse_delegations; Refuse_begins; Victimize_oldest ];
  }

let validate_config c =
  if not (c.soft > 0. && c.soft <= 1.) then
    invalid_arg "Governor: soft watermark must be in (0, 1]";
  if c.hard < c.soft then
    invalid_arg "Governor: hard watermark must be >= soft";
  if c.tick_every <= 0 then invalid_arg "Governor: tick_every must be positive";
  if c.min_ckpt_gap < 0 then
    invalid_arg "Governor: min_ckpt_gap must be non-negative"

type stats = {
  mutable ticks : int;
  mutable checkpoints : int;
  mutable truncations : int;
  mutable records_truncated : int;
  mutable soft_trips : int;
  mutable hard_trips : int;
  mutable victims : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "ticks=%d checkpoints=%d truncations=%d records_truncated=%d \
     soft_trips=%d hard_trips=%d victims=%d"
    s.ticks s.checkpoints s.truncations s.records_truncated s.soft_trips
    s.hard_trips s.victims

type t = {
  config : config;
  db : Db.t;
  stats : stats;
  mutable steps : int;  (* engine steps observed since creation *)
  mutable last_ckpt_head : int;  (* log head at the last checkpoint taken *)
  mutable level : int;  (* how many policies are currently engaged *)
  mutable victims : Xid.t list;  (* every transaction ever victimized *)
}

let create ?(config = default_config) db =
  validate_config config;
  {
    config;
    db;
    stats =
      {
        ticks = 0;
        checkpoints = 0;
        truncations = 0;
        records_truncated = 0;
        soft_trips = 0;
        hard_trips = 0;
        victims = 0;
      };
    steps = 0;
    last_ckpt_head = 0;
    level = 0;
    victims = [];
  }

let stats t = t.stats
let level t = t.level
let victims t = List.rev t.victims

let note_crash t =
  (* Db.crash already dropped the backpressure flags with the rest of
     the volatile state; resync the governor's view *)
  t.level <- 0;
  t.last_ckpt_head <- Lsn.to_int (Log_store.head (Db.log_store t.db))

let active p t =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  List.mem p (take t.level t.config.policies)

let apply_flags t =
  Db.set_backpressure t.db
    ~begins:(active Refuse_begins t)
    ~delegations:(active Refuse_delegations t)

(* A checkpoint only moves the truncation horizon if the log head has
   advanced since the last one; gate on that so a stuck horizon does not
   degenerate into a checkpoint per tick. *)
let maybe_checkpoint t =
  let head = Lsn.to_int (Log_store.head (Db.log_store t.db)) in
  if head - t.last_ckpt_head >= t.config.min_ckpt_gap then begin
    (* flush dirty pages first: their recLSNs pin the redo point, and a
       checkpoint over a dirty pool moves the horizon nowhere *)
    Db.shutdown t.db;
    Db.checkpoint t.db;
    t.last_ckpt_head <- Lsn.to_int (Log_store.head (Db.log_store t.db));
    t.stats.checkpoints <- t.stats.checkpoints + 1
  end

let reclaim t =
  let n = Db.truncate_log t.db in
  if n > 0 then begin
    t.stats.truncations <- t.stats.truncations + 1;
    t.stats.records_truncated <- t.stats.records_truncated + n
  end

let victimize t =
  match Db.horizon_pinners t.db with
  | [] -> ()
  | (xid, _) :: _ ->
      (* abort draws only on reserved space, so the victim's rollback
         cannot itself die of Log_full *)
      Db.abort t.db xid;
      t.stats.victims <- t.stats.victims + 1;
      t.victims <- xid :: t.victims;
      (* the victim's scopes no longer pin the horizon *)
      maybe_checkpoint t;
      reclaim t

let evaluate t =
  t.stats.ticks <- t.stats.ticks + 1;
  let p = Db.log_pressure t.db in
  if p < t.config.soft then begin
    if t.level > 0 then begin
      t.level <- 0;
      apply_flags t
    end
  end
  else begin
    t.stats.soft_trips <- t.stats.soft_trips + 1;
    maybe_checkpoint t;
    reclaim t;
    let p = Db.log_pressure t.db in
    if p >= t.config.hard then begin
      t.stats.hard_trips <- t.stats.hard_trips + 1;
      t.level <- min (t.level + 1) (List.length t.config.policies);
      apply_flags t;
      if active Victimize_oldest t then victimize t
    end
    else if p < t.config.soft && t.level > 0 then begin
      (* hysteresis: drop backpressure only once below the soft mark *)
      t.level <- 0;
      apply_flags t
    end
  end

let tick t =
  t.steps <- t.steps + 1;
  if t.steps mod t.config.tick_every = 0 then evaluate t

let force_tick t = evaluate t
