(** Background media scrubber.

    Drives {!Ariesrh_core.Db.scrub_pages} / [scrub_wal] /
    [scrub_archive] incrementally: each {!step} checks a bounded batch
    of objects and advances a cursor over the three media (data pages,
    the retained durable WAL, the archive), wrapping when a full sweep
    completes. Ticked from the governor so silent corruption is found
    and healed in bounded time without a stop-the-world scan; detection,
    quarantine and healing semantics live in [Db] — this module is only
    the pacing. *)

open Ariesrh_core

type t

val create : ?batch:int -> Db.t -> t
(** [batch] (default 16) objects checked per {!step}; raises
    [Invalid_argument] if non-positive. *)

val step : t -> Db.scrub_outcome
(** Check the next batch and advance the cursor. *)

val run_full : t -> Db.scrub_outcome
(** Step until one complete sweep over all three media finishes,
    returning the summed outcome. *)

val steps : t -> int
val sweeps : t -> int
(** Completed full sweeps. *)

val register_metrics : t -> Ariesrh_obs.Metrics.t -> unit
