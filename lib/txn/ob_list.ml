open Ariesrh_types

(* Scopes are indexed by invoker: every hot probe — [split_out] on an
   operation delegation, CLR scope trimming during restart analysis —
   names the invoker it is looking for, so it should touch only that
   invoker's scopes instead of scanning the whole object entry (which
   grows with the delegation chain). [covering_invokers] is the one
   caller that genuinely needs all invokers and still walks everything. *)
type entry = {
  deleg : Xid.t option;
  by_invoker : Scope.t list Xid.Map.t;
  open_scope : Scope.t option;
}

type t = entry Oid.Map.t

(* Scopes examined by covers-style probes, for the E16 perf gate. A
   module-global (not per-db) so harnesses that build many dbs can still
   difference it around a region of interest. *)
let probes = ref 0
let scope_probes () = !probes

let empty = Oid.Map.empty
let is_empty = Oid.Map.is_empty
let mem t oid = Oid.Map.mem oid t
let find t oid = Oid.Map.find_opt oid t
let objects t = List.map fst (Oid.Map.bindings t)
let cardinal = Oid.Map.cardinal

let add_scope m (s : Scope.t) =
  Xid.Map.update s.Scope.invoker
    (function None -> Some [ s ] | Some ss -> Some (s :: ss))
    m

let fold_scopes entry ~init ~f =
  Xid.Map.fold (fun _ ss acc -> List.fold_left f acc ss) entry.by_invoker init

let live_scopes entry =
  List.rev
    (fold_scopes entry ~init:[] ~f:(fun acc s ->
         if Scope.is_empty s then acc else s :: acc))

let entry_scopes = live_scopes
let entry_deleg entry = entry.deleg
let entry_open_scope entry = entry.open_scope

let note_update t ~owner ~oid lsn =
  match Oid.Map.find_opt oid t with
  | Some entry -> (
      match entry.open_scope with
      | Some s ->
          s.Scope.last <- Lsn.max s.Scope.last lsn;
          t
      | None ->
          let s = Scope.singleton ~invoker:owner ~oid lsn in
          Oid.Map.add oid
            {
              entry with
              by_invoker = add_scope entry.by_invoker s;
              open_scope = Some s;
            }
            t)
  | None ->
      let s = Scope.singleton ~invoker:owner ~oid lsn in
      Oid.Map.add oid
        {
          deleg = None;
          by_invoker = add_scope Xid.Map.empty s;
          open_scope = Some s;
        }
        t

let take t oid =
  match Oid.Map.find_opt oid t with
  | None -> None
  | Some entry -> Some (entry, Oid.Map.remove oid t)

let receive t ~oid ~from_ scopes =
  let incoming = List.filter (fun s -> not (Scope.is_empty s)) scopes in
  match Oid.Map.find_opt oid t with
  | Some entry ->
      Oid.Map.add oid
        {
          entry with
          deleg = Some from_;
          by_invoker = List.fold_right (Fun.flip add_scope) incoming entry.by_invoker;
        }
        t
  | None ->
      Oid.Map.add oid
        {
          deleg = Some from_;
          by_invoker = List.fold_right (Fun.flip add_scope) incoming Xid.Map.empty;
          open_scope = None;
        }
        t

let covering_invokers t ~oid lsn =
  match Oid.Map.find_opt oid t with
  | None -> []
  | Some entry ->
      List.rev
        (fold_scopes entry ~init:[] ~f:(fun acc (s : Scope.t) ->
             incr probes;
             if
               (not (Scope.is_empty s))
               && Lsn.(s.first <= lsn)
               && Lsn.(lsn <= s.last)
             then s.invoker :: acc
             else acc))

let split_out t ~oid ~invoker lsn =
  match Oid.Map.find_opt oid t with
  | None -> (None, t)
  | Some entry -> (
      let own = Option.value ~default:[] (Xid.Map.find_opt invoker entry.by_invoker) in
      let covering, rest =
        List.partition
          (fun s ->
            incr probes;
            Scope.covers s ~invoker ~oid lsn)
          own
      in
      match covering with
      | [] -> (None, t)
      | s :: extra ->
          (* same-invoker scopes on one object never overlap *)
          assert (extra = []);
          let moved = Scope.make ~invoker ~oid ~first:lsn ~last:lsn in
          let pre =
            if Lsn.(s.Scope.first < lsn) then
              [ Scope.make ~invoker ~oid ~first:s.Scope.first
                  ~last:(Lsn.prev lsn) ]
            else []
          in
          let post =
            if Lsn.(s.Scope.last > lsn) then
              [ Scope.make ~invoker ~oid ~first:(Lsn.next lsn)
                  ~last:s.Scope.last ]
            else []
          in
          let was_open =
            match entry.open_scope with Some o -> o == s | None -> false
          in
          let open_scope =
            if was_open then
              match post with suffix :: _ -> Some suffix | [] -> None
            else entry.open_scope
          in
          let by_invoker =
            match pre @ post @ rest with
            | [] -> Xid.Map.remove invoker entry.by_invoker
            | ss -> Xid.Map.add invoker ss entry.by_invoker
          in
          (Some moved, Oid.Map.add oid { entry with by_invoker; open_scope } t))

let trim_covering t ~oid ~invoker undone =
  match Oid.Map.find_opt oid t with
  | None -> ()
  | Some entry -> (
      match Xid.Map.find_opt invoker entry.by_invoker with
      | None -> ()
      | Some ss ->
          List.iter
            (fun (s : Scope.t) ->
              incr probes;
              if Scope.covers s ~invoker ~oid undone then
                Scope.trim_below s undone)
            ss)

(* After eager chain surgery re-attributes records to [owner], the
   owner's scope coverage must agree with the new log attribution, or a
   scope-based rollback (the degraded-mode fallback) misses them. Each
   moved LSN not already covered by one of the owner's own scopes gets a
   singleton; distinct LSNs never overlap, so the disjointness invariant
   holds. The open scope is closed first: extending it later could
   stretch it across a freshly added singleton. *)
let absorb t ~owner ~oid lsns =
  match Oid.Map.find_opt oid t with
  | None -> t
  | Some entry ->
      let own =
        Option.value ~default:[] (Xid.Map.find_opt owner entry.by_invoker)
      in
      let covered l =
        List.exists
          (fun (s : Scope.t) ->
            (not (Scope.is_empty s))
            && Lsn.(s.first <= l)
            && Lsn.(l <= s.last))
          own
      in
      let fresh =
        List.filter_map
          (fun l ->
            if covered l then None
            else Some (Scope.singleton ~invoker:owner ~oid l))
          lsns
      in
      Oid.Map.add oid
        {
          entry with
          by_invoker =
            (match fresh @ own with
            | [] -> entry.by_invoker
            | ss -> Xid.Map.add owner ss entry.by_invoker);
          open_scope = None;
        }
        t

let close_open t oid =
  match Oid.Map.find_opt oid t with
  | None | Some { open_scope = None; _ } -> t
  | Some entry -> Oid.Map.add oid { entry with open_scope = None } t

let close_all_open t =
  Oid.Map.map
    (fun entry ->
      match entry.open_scope with
      | None -> entry
      | Some _ -> { entry with open_scope = None })
    t

let all_scopes t =
  Oid.Map.fold (fun _ entry acc -> live_scopes entry @ acc) t []

let scopes_of t oid =
  match Oid.Map.find_opt oid t with None -> [] | Some e -> live_scopes e

let min_first t =
  Oid.Map.fold
    (fun _ entry acc ->
      fold_scopes entry ~init:acc ~f:(fun acc (s : Scope.t) ->
          if Scope.is_empty s then acc
          else
            match acc with
            | None -> Some s.first
            | Some m -> Some (Lsn.min m s.first)))
    t None

let to_ckpt ~owner t =
  let open Ariesrh_wal.Record in
  (* an entry whose scopes were all trimmed away (a partial rollback
     undid everything) is still Ob_List membership — the delegation
     precondition — so it is checkpointed with an empty scope list *)
  Oid.Map.fold
    (fun oid entry acc ->
      {
        ck_owner = owner;
        ck_oid = oid;
        ck_deleg = entry.deleg;
        ck_scopes =
          List.map
            (fun (s : Scope.t) ->
              { ck_invoker = s.invoker; ck_first = s.first; ck_last = s.last })
            (live_scopes entry);
      }
      :: acc)
    t []

let of_ckpt_entry t (ob : Ariesrh_wal.Record.ckpt_ob) =
  let scopes =
    List.map
      (fun (s : Ariesrh_wal.Record.ckpt_scope) ->
        Scope.make ~invoker:s.ck_invoker ~oid:ob.ck_oid ~first:s.ck_first
          ~last:s.ck_last)
      ob.ck_scopes
  in
  (* The checkpointed state is mid-flight; conservatively no scope is
     open — the next update by the owner opens a fresh one, which is
     always sound (scopes need not be maximal). *)
  Oid.Map.add ob.ck_oid
    {
      deleg = ob.ck_deleg;
      by_invoker = List.fold_right (Fun.flip add_scope) scopes Xid.Map.empty;
      open_scope = None;
    }
    t

let pp ppf t =
  Oid.Map.iter
    (fun oid entry ->
      Format.fprintf ppf "@[%a:%s {%a}@]@ " Oid.pp oid
        (match entry.deleg with
        | None -> ""
        | Some x -> Format.asprintf " deleg=%a" Xid.pp x)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Scope.pp)
        (live_scopes entry))
    t
