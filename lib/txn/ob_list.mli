(** Per-transaction object lists (§3.4, Fig. 5).

    [Ob_List(t)] maps each object [t] is responsible for to the scopes
    covering the updates delegated to (or invoked by) [t], plus the last
    delegator when the entry arrived by delegation.

    A transaction's {e open scope} on an object is the scope its own new
    updates extend. Delegating the object out closes it; the next update
    opens a fresh scope (this is the "first update since t started or
    last delegated ob" rule of §3.5, made explicit so that an object
    delegated {e back} never extends a scope across records that were
    meanwhile delegated to a third party). *)

open Ariesrh_types

type entry
(** One object's responsibility record: the last delegator (when the
    entry arrived by delegation), the scopes indexed {e by invoker} —
    the hot probes ([split_out], CLR trimming) name the invoker they
    want, so long delegation chains no longer cost a full scan — and the
    open scope. *)

type t

val entry_scopes : entry -> Scope.t list
(** The entry's live (non-empty) scopes, invoker-major order. *)

val entry_deleg : entry -> Xid.t option
(** The last delegator, if the entry arrived by delegation. *)

val entry_open_scope : entry -> Scope.t option
(** The scope the owner's own new updates extend, if one is open. *)

val scope_probes : unit -> int
(** Process-lifetime count of scopes examined by covers-style probes
    ({!split_out}, {!trim_covering}, {!covering_invokers}) — the E16
    perf-gate counter. Difference it around a region of interest. *)

val empty : t
val is_empty : t -> bool
val mem : t -> Oid.t -> bool
val find : t -> Oid.t -> entry option
val objects : t -> Oid.t list
val cardinal : t -> int

val note_update : t -> owner:Xid.t -> oid:Oid.t -> Lsn.t -> t
(** Extend the open scope on the object, or open one (§3.5 update). *)

val take : t -> Oid.t -> (entry * t) option
(** Remove the entry for delegation out; [None] if absent (the
    well-formedness precondition failed). *)

val receive : t -> oid:Oid.t -> from_:Xid.t -> Scope.t list -> t
(** Merge delegated-in scopes (§3.5 delegate step 3). The receiver's
    open scope, if any, stays open. *)

val split_out : t -> oid:Oid.t -> invoker:Xid.t -> Lsn.t -> Scope.t option * t
(** Extract a single operation for operation-granularity delegation
    (§2.1.2): find the scope of the given invoker covering the LSN,
    split it into the prefix below, the singleton at the LSN (returned),
    and the suffix above. [None] if no scope covers the operation (the
    precondition failed). If the covering scope was the open scope, the
    suffix (or nothing) stays open. *)

val covering_invokers : t -> oid:Oid.t -> Lsn.t -> Xid.t list
(** Invokers of the live scopes covering an LSN (used to disambiguate an
    operation handle before splitting). *)

val trim_covering : t -> oid:Oid.t -> invoker:Xid.t -> Lsn.t -> unit
(** Trim (in place, via {!Scope.trim_below}) the invoker's scopes on the
    object that cover the given LSN — restart analysis' CLR step.
    Probes only that invoker's scopes. *)

val absorb : t -> owner:Xid.t -> oid:Oid.t -> Lsn.t list -> t
(** After eager chain surgery re-attributed the records at these LSNs to
    [owner], realign the owner's scope coverage with the rewritten log:
    close the open scope on the object and add a singleton scope
    (invoker [owner]) for every moved LSN not already covered by one of
    the owner's own scopes. Keeps scope-based rollback (the
    degraded-mode fallback) sound over physically spliced history. *)

val close_open : t -> Oid.t -> t
(** Close the open scope on one object: the next own update opens a
    fresh scope instead of extending. Required after a partial rollback
    trims the open scope — extending it again would stretch it back
    across the compensated LSN range and resurrect undone updates. *)

val close_all_open : t -> t
(** {!close_open} on every entry (after a partial rollback). *)

val all_scopes : t -> Scope.t list
(** Every non-empty scope (trimmed-empty scopes are dropped). *)

val scopes_of : t -> Oid.t -> Scope.t list

val min_first : t -> Lsn.t option
(** Smallest scope beginning, the [minLSN] of §3.5 abort. *)

val to_ckpt : owner:Xid.t -> t -> Ariesrh_wal.Record.ckpt_ob list
val of_ckpt_entry : t -> Ariesrh_wal.Record.ckpt_ob -> t
(** Install one checkpointed entry into the (owner's) list. *)

val pp : Format.formatter -> t -> unit
