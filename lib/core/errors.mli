(** Engine exceptions. *)

open Ariesrh_types

exception Conflict of { requester : Xid.t; holders : Xid.t list }
(** A lock request was denied. The caller may wait (see
    {!Ariesrh_lock.Deadlock}) or abort. *)

exception No_such_txn of Xid.t
exception Txn_not_active of Xid.t

exception Not_responsible of { xid : Xid.t; oid : Oid.t }
(** The delegation precondition failed: the would-be delegator is not
    responsible for any update on the object (§2.1.2). *)

val pp_exn : Format.formatter -> exn -> unit
(** Also renders the storage/WAL corruption exceptions
    ([Ariesrh_wal.Log_store.Corrupt_record],
    [Ariesrh_storage.Buffer_pool.Torn_page]) and
    [Ariesrh_fault.Fault.Injected_crash]. *)
