(** Engine exceptions. *)

open Ariesrh_types

exception Conflict of { requester : Xid.t; holders : Xid.t list }
(** A lock request was denied. The caller may wait (see
    {!Ariesrh_lock.Deadlock}) or abort. *)

exception No_such_txn of Xid.t
exception Txn_not_active of Xid.t

exception Not_responsible of { xid : Xid.t; oid : Oid.t }
(** The delegation precondition failed: the would-be delegator is not
    responsible for any update on the object (§2.1.2). *)

type overload_reason = Begin_refused | Delegation_refused

exception Overloaded of { xid : Xid.t option; reason : overload_reason }
(** Admission control under log pressure: the governor has engaged
    backpressure and the engine refuses the request rather than risk an
    unrecoverable [Log_full] later. Retry after backing off. *)

exception Log_truncated_past_backup of { backup : Lsn.t; retained : Lsn.t }
(** Media recovery needs the log from the backup point forward, but
    truncation already reclaimed part of that range. *)

exception Unsupported_by_engine of { op : string; impl : string }
(** The operation requires a capability this engine variant lacks (e.g.
    operation-granularity delegation under [Eager]). *)

exception Archive_lagging of { durable : Lsn.t; archived : Lsn.t }
(** Continuous WAL archiving fell further behind the durable head than
    [Config.max_archive_lag] allows; admission refuses new transactions
    (typed backpressure) until the archiver catches up. *)

exception Xfer_refused of { oid : Oid.t; holders : Xid.t list }
(** A cross-shard migration was refused because live transactions still
    hold locks on the object. Migration only moves durably committed
    state, so it never preempts a lock; retry once the holders finish
    (or route the work to the object's current home shard). *)

exception Recovering of { oid : Oid.t; backlog : int }
(** On-demand restart ([Config.On_demand]): the object is still covered
    by an unresolved loser transaction's scope, so serving it now would
    expose uncommitted state. Retryable backpressure — [backlog] is the
    remaining restart work ([Db.recovery_backlog]) and shrinks with
    every sweeper step; the refusal clears once the covering losers are
    undone (first foreground touch via [Db.peek], a [Db.recovery_step],
    or [Db.await_recovery]). *)

exception Recovery_incomplete of { backlog : int }
(** A whole-store operation (backup, scrub, restore, media swap) was
    asked for while an on-demand restart is still draining its backlog.
    These operations need a settled store; retry after
    [Db.await_recovery]. *)

exception Media_unhealable of { target : string; id : int }
(** The scrubber found corruption it could not repair from any source
    (shadow, archive snapshot, archived WAL); [target] is
    ["page"], ["wal"] or an archive component and [id] the page number
    or 0-based record index. The object stays quarantined. *)

exception
  History_unavailable of {
    lsn : Lsn.t;
    available_from : Lsn.t;
    available_upto : Lsn.t;
  }
(** A time-travel query asked for a point the durable history does not
    cover: [lsn] lies outside [[available_from, available_upto]] — the
    prefix was truncated and no attached archive bridges the gap from
    genesis, or [lsn] is above the durable horizon. Raised by
    [Ariesrh_temporal.Temporal] instead of ever answering from a
    silently partial history. *)

val history_unavailable :
  lsn:Lsn.t -> available_from:Lsn.t -> available_upto:Lsn.t -> 'a
(** Raise {!History_unavailable}. *)

val pp_overload_reason : Format.formatter -> overload_reason -> unit

val pp_exn : Format.formatter -> exn -> unit
(** Also renders the storage/WAL corruption and capacity exceptions
    ([Ariesrh_wal.Log_store.Corrupt_record],
    [Ariesrh_wal.Log_store.Log_full],
    [Ariesrh_storage.Buffer_pool.Torn_page]), the file-backend I/O
    exceptions ([Ariesrh_storage.Backend.Io_error],
    [Ariesrh_wal.Log_device.Wal_frame_corrupt]) — so no raw
    [Unix.Unix_error] ever reaches the user —
    [Ariesrh_fault.Fault.Injected_crash], the restart-integrity
    exceptions ([Ariesrh_recovery.Audit.Audit_failed],
    [Ariesrh_recovery.Rewrite.Surgery_corrupt]), and the media-archive
    exception ([Ariesrh_storage.Archive.Archive_corrupt]). *)
