(** Engine configuration. *)

type delegation_impl =
  | Rh  (** ARIES/RH: log delegations, interpret at recovery (the paper) *)
  | Eager
      (** rewrite the log physically at each delegate (§3.1 baseline);
          recovery is conventional ARIES *)
  | Lazy
      (** log delegations, rewrite the log physically during recovery
          (§3.2 baseline) *)

type forward_passes =
  | Merged  (** one combined analysis+redo sweep (default, §3.3) *)
  | Separate  (** classic ARIES: analysis sweep, then redo sweep *)

type recovery_mode =
  | Offline
      (** [Db.recover] completes the full three-pass restart before
          returning (default) *)
  | On_demand
      (** [Db.recover] runs only the bounded analysis pass (tail
          amputation, surgery resolution, transaction table + dirty-page
          table since the last checkpoint), then opens for traffic:
          pages are redone lazily on first touch, loser transactions are
          undone lazily when their objects are touched or by the
          background sweeper ([Db.recovery_step], ridden by the
          governor), and accesses that cannot yet be served refuse with
          the retryable [Errors.Recovering] *)

type t = {
  n_objects : int;
  objects_per_page : int;
  buffer_capacity : int;  (** data pages held by the buffer pool *)
  log_page_size : int;  (** bytes per simulated log page *)
  impl : delegation_impl;
  forward_passes : forward_passes;
  locking : bool;  (** disable to drive pure recovery experiments *)
  log_capacity_bytes : int option;
      (** hard byte budget for the WAL; [None] = unbounded (default) *)
  log_capacity_records : int option;
      (** hard record budget for the WAL; [None] = unbounded (default) *)
  group_commit : int;
      (** commit batch size: [0] or [1] (default [0]) forces the log at
          every commit; [n > 1] lets commits join a group that shares one
          flush once [n] are pending (see [Db.flush_commits] for the
          explicit barrier and [Db.set_commit_durable_hook] for observing
          when a commit actually hardens) *)
  record_cache : int;
      (** decoded-record cache capacity for the log ([0] disables);
          see [Log_store.create] *)
  audit : bool;
      (** run the restart self-audit ([Db.audit]) after every recovery;
          a violated invariant raises [Audit.Audit_failed] (default
          [false]) *)
  rewrite_retries : int;
      (** eager delegation: attempts to secure log space for the rewrite
          surgery (with a checkpoint+truncate between attempts) before
          falling back to a logical delegate record (default [2]) *)
  max_archive_lag : int;
      (** with continuous WAL archiving attached: how many durable
          records the live log may run ahead of the archive before
          admission raises [Errors.Archive_lagging]. [0] (default) =
          no backpressure *)
  shards : int;
      (** shard count for [Sharded.create]: objects hash-partitioned
          across this many independent engines, each with its own WAL,
          buffer pool and lock table. A plain [Db] ignores it. [1]
          (default) = no sharding *)
  recovery_mode : recovery_mode;
      (** how [Db.recover] trades restart latency against availability:
          [Offline] (default) finishes everything before returning,
          [On_demand] opens after analysis and drains the rest lazily *)
}

val default : t
(** 1024 objects, 8 per page, 32-page pool, 4 KiB log pages, [Rh],
    locking on, unbounded log. *)

val make :
  ?n_objects:int ->
  ?objects_per_page:int ->
  ?buffer_capacity:int ->
  ?log_page_size:int ->
  ?impl:delegation_impl ->
  ?forward_passes:forward_passes ->
  ?locking:bool ->
  ?log_capacity_bytes:int ->
  ?log_capacity_records:int ->
  ?group_commit:int ->
  ?record_cache:int ->
  ?audit:bool ->
  ?rewrite_retries:int ->
  ?max_archive_lag:int ->
  ?shards:int ->
  ?recovery_mode:recovery_mode ->
  unit ->
  t

val pages_needed : t -> int
val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical values. *)
