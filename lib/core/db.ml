open Ariesrh_types
open Ariesrh_wal
open Ariesrh_storage
open Ariesrh_lock
open Ariesrh_txn
open Ariesrh_recovery
module Fault = Ariesrh_fault.Fault
module Obs = Ariesrh_obs

(* Per-transaction rollback reservation: space set aside in the log so
   that abort (or restart undo of the same work) can always write its
   CLRs and resolution records even when the log is otherwise full.
   [base_bytes] covers the Abort/Commit + End pair; [entries] holds one
   (oid, update lsn, clr bytes) obligation per update the transaction is
   currently responsible for — delegation moves entries between ledgers
   exactly as it moves responsibility. *)
type txn_reserve = {
  mutable base_bytes : int;
  mutable entries : (int * int * int) list;
}

(* Engine-level tallies, registered with the metrics registry like every
   other component's stat record: plain field increments on the hot
   path, read through a closure at snapshot time. *)
type db_stats = {
  mutable begins : int;
  mutable commits : int;
  mutable aborts : int;
  mutable delegations : int;
  mutable delegate_ops : int;
  mutable checkpoints : int;
  mutable recoveries : int;
  mutable group_joins : int;  (* commits that joined a pending group *)
  mutable group_flushes : int;  (* shared forces closing a full group *)
}

(* On-demand restart state: present between an [On_demand]-mode
   [recover] and backlog convergence. A separate mutable record (like
   [media_stats]) so the lazy metrics closures can read it without a
   cycle through [t]. [served_degraded] is a lifetime tally — it
   outlives the drain it counted. *)
type od_state = {
  mutable live : On_demand.t option;
  mutable served_degraded : int;
}

(* Media-integrity tallies: what the scrubber checked, what it found,
   what it could and could not put back. *)
type media_stats = {
  mutable scrub_passes : int;
  mutable scrub_checked : int;
  mutable scrub_corrupt : int;
  mutable media_heals : int;
  mutable scrub_unhealable : int;
  mutable archived_records : int;  (* WAL records copied into the archive *)
}

type t = {
  config : Config.t;
  shard : int;
      (* which shard of a [Sharded] engine this database is ([0] for a
         standalone db); stamps the metrics label and forensic dumps *)
  fault : Fault.t;
  backend : Backend.t;
  disk : Disk.t;
  log : Log_store.t;
  mutable pool : Buffer_pool.t;
  mutable locks : Lock_table.t;
  mutable tt : Txn_table.t;
  mutable next_xid : int;
      (* xid allocation survives crashes, as if drawn from a persistent
         counter block; keeps invoker identities in delegated scopes
         unambiguous across restarts *)
  mutable permits : (Xid.t * Xid.t) list;
  reserves : (int, txn_reserve) Hashtbl.t;  (* keyed by xid *)
  mutable refuse_begins : bool;  (* governor backpressure flags *)
  mutable refuse_delegations : bool;
  (* Group commit: committed-but-not-yet-forced transactions waiting on
     the shared flush, as (xid, commit-record LSN). Volatile — a crash
     drops the group, and those transactions roll back at restart. *)
  mutable gc_waiters : (Xid.t * Lsn.t) list;
  mutable on_commit_durable : (Xid.t -> unit) option;
  (* Eager engine only: at least one delegation fell back to a logical
     delegate record (surgery could not complete), so the log is no
     longer purely physical. Rollback switches to scope-based undo and
     the next restart heals the log via the lazy recovery path. *)
  mutable degraded : bool;
  (* Media resilience: the durable archive (page snapshot + continuous
     WAL copy) this database feeds, if any. Survives [crash] — the
     archive models separate media. [backup_pin] keeps truncation from
     reclaiming log an in-memory [backup] still needs for media replay;
     [quarantined] lists corruption the scrubber found but could not
     heal from any source. *)
  mutable archive : Archive.t option;
  mutable backup_pin : Lsn.t;
  mutable external_pin : Lsn.t;
      (* extra truncation pin owned by an outer layer: a [Sharded]
         router pins each shard's log at the oldest in-flight transfer
         so restart resolution can always find its intent records *)
  mutable quarantined : (string * int) list;
  od : od_state;
  media : media_stats;
  env : Env.t;
  ring : Obs.Ring.t;
  metrics : Obs.Metrics.t Lazy.t;
      (* the registry (and its ~30 read closures) is built on first
         access, so creating a database costs no registration work *)
  stats : db_stats;
}

(* Trace emission is guarded at every call site so a disabled ring (the
   default) costs one load and branch, with no event allocation. *)
let tracing t = Obs.Ring.enabled t.ring

let obs_op : Record.op -> Obs.Event.op = function
  | Record.Add d -> Obs.Event.Add d
  | Record.Set { before; after } -> Obs.Event.Set { before; after }

(* Session hook: lets a CLI collect every database a command creates so
   [--metrics-json] can aggregate their registries at exit. *)
let on_create : (t -> unit) option ref = ref None
let set_create_hook f = on_create := f

(* Session hook: default backend for databases created without an
   explicit [~backend]. A factory rather than a value because every
   file-backed database needs its own directory — a CLI [--backend file]
   installs one that hands out fresh subdirectories. *)
let backend_factory : (unit -> Backend.t) option ref = ref None
let set_backend_factory f = backend_factory := f

let place_of config oid =
  let i = Oid.to_int oid in
  (Page_id.of_int (i / config.Config.objects_per_page),
   i mod config.Config.objects_per_page)

let create ?(fault = Fault.none ()) ?backend ?(tracing = false)
    ?(trace_capacity = Obs.Ring.default_capacity) ?(shard = 0) config =
  Config.validate config;
  let backend =
    match backend with
    | Some b -> b
    | None -> (
        match !backend_factory with Some f -> f () | None -> Backend.Sim)
  in
  let disk =
    Disk.create ~fault ~backend
      ~pages:(Config.pages_needed config)
      ~slots_per_page:config.objects_per_page ()
  in
  let log =
    Log_store.create ~page_size:config.log_page_size
      ?capacity_bytes:config.log_capacity_bytes
      ?capacity_records:config.log_capacity_records
      ~record_cache:config.record_cache ~fault ~backend ()
  in
  (* Reopen path (file backend): the WAL a previous process left behind
     was loaded as the durable prefix. Xid allocation must resume above
     every xid that log mentions, as if drawn from a persistent counter
     block. The scan stops at the first undecodable record — that is the
     corrupt tail restart will amputate anyway. *)
  let initial_next_xid = ref 1 in
  if Log_store.length log > 0 then
    ignore
      (Log_store.iter_valid_forward log
         ~from:(Log_store.truncated_below log)
         (fun _ r ->
           match Record.writer_exn r with
           | x -> initial_next_xid := max !initial_next_xid (Xid.to_int x + 1)
           | exception _ -> ()));
  let pool =
    Buffer_pool.create ~fault ~capacity:config.buffer_capacity ~disk
      ~wal_flush:(fun lsn -> Log_store.flush log ~upto:lsn)
      ()
  in
  let ring = Obs.Ring.create ~capacity:trace_capacity ~enabled:tracing () in
  (* stamp every trace event with the fault injector's logical I/O
     clock, so trace positions line up with armed crash points *)
  Obs.Ring.set_clock ring (fun () -> (Fault.stats fault).Fault.ios);
  Fault.set_tracer fault
    (Some
       (fun kind site ->
         Obs.Ring.emit ring (Obs.Event.Fault { kind; site })));
  let env = Env.make ~ring ~log ~pool ~place:(place_of config) () in
  let od = { live = None; served_degraded = 0 } in
  let media =
    {
      scrub_passes = 0;
      scrub_checked = 0;
      scrub_corrupt = 0;
      media_heals = 0;
      scrub_unhealable = 0;
      archived_records = 0;
    }
  in
  (* A torn page found by any fetch is repaired in place: restore the
     before-image and replay the log for that page. *)
  Buffer_pool.set_repair pool (fun pid shadow -> Repair.page env pid shadow);
  let stats =
    {
      begins = 0;
      commits = 0;
      aborts = 0;
      delegations = 0;
      delegate_ops = 0;
      checkpoints = 0;
      recoveries = 0;
      group_joins = 0;
      group_flushes = 0;
    }
  in
  let metrics =
    lazy
      (* every export says which storage backend and shard produced it:
         ariesrh_*{backend="sim|file",shard="<i>"} *)
      (let metrics =
         Obs.Metrics.create
           ~labels:[ Backend.label backend; ("shard", string_of_int shard) ]
           ()
       in
       Log_store.register_metrics log metrics;
       Disk.register_metrics disk metrics;
       Buffer_pool.register_metrics pool metrics;
       Fault.register_metrics fault metrics;
       let module M = Obs.Metrics in
       M.counter metrics ~help:"transactions begun"
         "ariesrh_txn_begins_total" (fun () -> stats.begins);
       M.counter metrics ~help:"transactions committed"
         "ariesrh_txn_commits_total" (fun () -> stats.commits);
       M.counter metrics ~help:"transactions aborted"
         "ariesrh_txn_aborts_total" (fun () -> stats.aborts);
       M.counter metrics ~help:"whole-object delegations"
         "ariesrh_delegations_total" (fun () -> stats.delegations);
       M.counter metrics ~help:"operation-granularity delegations"
         "ariesrh_delegate_ops_total" (fun () -> stats.delegate_ops);
       M.counter metrics ~help:"fuzzy checkpoints taken"
         "ariesrh_checkpoints_total" (fun () -> stats.checkpoints);
       M.counter metrics ~help:"restart recoveries run"
         "ariesrh_recoveries_total" (fun () -> stats.recoveries);
       M.counter metrics ~help:"commits that joined a group-commit batch"
         "ariesrh_group_commit_joins_total" (fun () -> stats.group_joins);
       M.counter metrics ~help:"shared log forces closing a commit group"
         "ariesrh_group_commit_flushes_total" (fun () -> stats.group_flushes);
       M.counter metrics ~help:"torn pages repaired" "ariesrh_repairs_total"
         (fun () -> env.Env.repairs);
       M.counter metrics
         ~help:"eager delegations that fell back to a logical record"
         "ariesrh_rewrite_fallbacks_total" (fun () ->
           env.Env.rewrite_fallbacks);
       M.counter metrics
         ~help:"interrupted rewrite surgeries rolled back at restart"
         "ariesrh_surgery_rollbacks_total" (fun () ->
           env.Env.surgery_rolled_back);
       M.counter metrics
         ~help:"ended rewrite surgeries re-installed at restart"
         "ariesrh_surgery_rollforwards_total" (fun () ->
           env.Env.surgery_rolled_forward);
       M.counter metrics ~help:"restart self-audit passes run"
         "ariesrh_audit_runs_total" (fun () -> env.Env.audit_runs);
       M.counter metrics ~help:"restart self-audit passes that failed"
         "ariesrh_audit_failures_total" (fun () -> env.Env.audit_failures);
       M.counter metrics ~help:"scrub sweeps completed"
         "ariesrh_scrub_passes_total" (fun () -> media.scrub_passes);
       M.counter metrics ~help:"objects checked by the scrubber"
         "ariesrh_scrub_checked_total" (fun () -> media.scrub_checked);
       M.counter metrics ~help:"corrupt objects found by the scrubber"
         "ariesrh_scrub_corrupt_total" (fun () -> media.scrub_corrupt);
       M.counter metrics ~help:"corrupt objects healed from a redundant copy"
         "ariesrh_media_heals_total" (fun () -> media.media_heals);
       M.counter metrics ~help:"corrupt objects with no intact source"
         "ariesrh_scrub_unhealable_total" (fun () -> media.scrub_unhealable);
       M.counter metrics ~help:"WAL records copied into the media archive"
         "ariesrh_wal_archived_total" (fun () -> media.archived_records);
       M.gauge metrics
         ~help:"remaining on-demand restart work (pending pages + losers)"
         "ariesrh_recovery_backlog" (fun () ->
           match od.live with None -> 0 | Some o -> On_demand.backlog o);
       M.counter metrics
         ~help:"accesses served while an on-demand restart was draining"
         "ariesrh_recovery_served_degraded_total" (fun () ->
           od.served_degraded);
       M.counter metrics ~help:"trace events emitted"
         "ariesrh_trace_events_total" (fun () -> Obs.Ring.total ring);
       M.counter metrics ~help:"trace events lost to ring wraparound"
         "ariesrh_trace_dropped_total" (fun () -> Obs.Ring.dropped ring);
       metrics)
  in
  let t =
    {
      config;
      shard;
      fault;
      backend;
      disk;
      log;
      pool;
      locks = Lock_table.create ();
      tt = Txn_table.create ();
      next_xid = !initial_next_xid;
      permits = [];
      reserves = Hashtbl.create 16;
      refuse_begins = false;
      refuse_delegations = false;
      gc_waiters = [];
      on_commit_durable = None;
      degraded = false;
      archive = None;
      backup_pin = Lsn.nil;
      external_pin = Lsn.nil;
      quarantined = [];
      od;
      media;
      env;
      ring;
      metrics;
      stats;
    }
  in
  (* Silent-corruption injection: when the schedule says rot, pick a
     victim — a slot of a stored page image, or a durable WAL record —
     from the injector's own deterministic stream. With an archive
     attached, WAL rot prefers records the archive has already copied:
     rot takes time, so it hits cold data, and the model guarantees a
     heal source exists. The hook runs with the injector disabled, and
     the corruption primitives never tick the I/O clock, so arming
     bitrot shifts no crash schedule. *)
  Fault.set_bitrot_hook fault
    (Some
       (fun () ->
         let npages = Disk.page_count t.disk in
         let low = Lsn.to_int (Log_store.truncated_below t.log) - 1 in
         let hi =
           let durable = Lsn.to_int (Log_store.durable t.log) in
           match t.archive with
           | Some a -> min durable (Archive.archived_upto a)
           | None -> durable
         in
         let nwal = max 0 (hi - low) in
         let k = Fault.rng_int fault (npages + nwal) in
         if k < npages then
           Disk.bitrot_main t.disk (Page_id.of_int k)
             ~slot:(Fault.rng_int fault config.Config.objects_per_page)
         else Log_store.bitrot_record t.log ~idx:(low + (k - npages))));
  (* History surgery rewrites records in place; an already-archived copy
     must follow, or a cold restore resurrects bytes the live log has
     disowned — e.g. a mid-surgery attribution whose surgery later
     rolled back. *)
  Log_store.set_rewrite_hook t.log
    (Some
       (fun ~idx s ->
         match t.archive with
         | Some a when idx >= Archive.wal_base a && idx < Archive.archived_upto a
           ->
             Archive.heal_wal a ~idx s
         | _ -> ()));
  (match !on_create with None -> () | Some f -> f t);
  t

let config t = t.config
let shard t = t.shard
let fault t = t.fault
let backend t = t.backend
let ring t = t.ring
let metrics t = Lazy.force t.metrics
let set_tracing t b = Obs.Ring.set_enabled t.ring b
let log_store t = t.log
let disk_stats t = Disk.stats t.disk

let pool_counters t =
  (Buffer_pool.hits t.pool, Buffer_pool.misses t.pool,
   Buffer_pool.evictions t.pool)
let env t = t.env
let repairs_total t = t.env.Env.repairs
let recovering t = t.od.live <> None

let recovery_backlog t =
  match t.od.live with None -> 0 | Some o -> On_demand.backlog o

let recovery_served_degraded t = t.od.served_degraded

(* degraded covers both flavours of "up but not fully itself": the eager
   engine's logical-fallback mode, and an on-demand restart still
   draining its backlog *)
let degraded t = t.degraded || recovering t
let rewrite_fallbacks t = t.env.Env.rewrite_fallbacks
let place t oid = place_of t.config oid

let check_oid t oid =
  if Oid.to_int oid >= t.config.Config.n_objects then
    invalid_arg
      (Format.asprintf "Db: %a out of range (%d objects)" Oid.pp oid
         t.config.Config.n_objects)

let info_exn t xid =
  match Txn_table.find t.tt xid with
  | Some info -> info
  | None -> raise (Errors.No_such_txn xid)

let active_exn t xid =
  let info = info_exn t xid in
  if info.Txn_table.status <> Txn_table.Active then
    raise (Errors.Txn_not_active xid);
  info

(* Reserved chain append: for records whose space was secured up front
   (rollback CLRs, Abort/Commit/End, eager anchors). Never raises
   [Log_full]. Admission-checked appends (Begin, Update, Delegate) each
   go through [Log_store] directly because they bundle a reservation or
   need record-specific admission handling. *)
let append_on_chain_reserved t (info : Txn_table.info) body =
  let lsn =
    Log_store.append_reserved t.log (Record.mk info.xid ~prev:info.last_lsn body)
  in
  info.last_lsn <- lsn;
  lsn

(* --- rollback-space ledger --- *)

(* The codec is fixed-size per body shape, so the cost of any future
   record can be computed exactly from a throwaway instance. *)
let probe_xid = Xid.of_int 1
let record_cost body = Record.encoded_size (Record.mk probe_xid ~prev:Lsn.nil body)
let base_cost = lazy (record_cost Record.Abort + record_cost Record.End)
let anchor_cost = lazy (record_cost Record.Anchor)

let clr_cost (u : Record.update) =
  record_cost
    (Record.Clr
       { upd = u; undone = Lsn.nil; invoker = probe_xid; undo_next = Lsn.nil })

let ledger_of t xid =
  let k = Xid.to_int xid in
  match Hashtbl.find_opt t.reserves k with
  | Some r -> r
  | None ->
      let r = { base_bytes = 0; entries = [] } in
      Hashtbl.replace t.reserves k r;
      r

(* A CLR was written for [undone]: that obligation is discharged. *)
let release_clr t xid ~undone =
  let r = ledger_of t xid in
  match
    List.partition (fun (_, l, _) -> l = Lsn.to_int undone) r.entries
  with
  | (_, _, c) :: _, rest ->
      r.entries <- rest;
      Log_store.unreserve t.log ~bytes:c ~records:1
  | [], _ -> ()

(* Resolution (commit, or abort after all CLRs): the transaction will
   never need its remaining reserved space again. *)
let release_ledger t xid =
  let k = Xid.to_int xid in
  match Hashtbl.find_opt t.reserves k with
  | None -> ()
  | Some r ->
      let bytes =
        r.base_bytes + List.fold_left (fun a (_, _, c) -> a + c) 0 r.entries
      in
      let records =
        (if r.base_bytes > 0 then 2 else 0) + List.length r.entries
      in
      Hashtbl.remove t.reserves k;
      Log_store.unreserve t.log ~bytes ~records

(* Delegation moves rollback obligations with responsibility. *)
let move_reserved_object t ~from_ ~to_ oid =
  let src = ledger_of t from_ in
  let dst = ledger_of t to_ in
  let k = Oid.to_int oid in
  let mine, rest = List.partition (fun (o, _, _) -> o = k) src.entries in
  src.entries <- rest;
  dst.entries <- mine @ dst.entries

let move_reserved_update t ~from_ ~to_ op_lsn =
  let src = ledger_of t from_ in
  let dst = ledger_of t to_ in
  match
    List.partition (fun (_, l, _) -> l = Lsn.to_int op_lsn) src.entries
  with
  | e :: _, rest ->
      src.entries <- rest;
      dst.entries <- e :: dst.entries
  | [], _ -> ()

(* --- locking --- *)

let lock t xid oid mode =
  if t.config.Config.locking then
    let permit holder = List.mem (holder, xid) t.permits in
    match Lock_table.acquire ~permit t.locks xid oid mode with
    | Lock_table.Granted -> ()
    | Lock_table.Conflict holders ->
        raise (Errors.Conflict { requester = xid; holders })

let drop_permits t xid =
  t.permits <-
    List.filter
      (fun (a, b) -> not (Xid.equal a xid || Xid.equal b xid))
      t.permits

let permit t ~holder ~grantee =
  ignore (info_exn t holder);
  ignore (info_exn t grantee);
  if not (List.mem (holder, grantee) t.permits) then
    t.permits <- (holder, grantee) :: t.permits

(* --- transactions --- *)

let begin_txn t =
  if t.refuse_begins then
    raise (Errors.Overloaded { xid = None; reason = Errors.Begin_refused });
  (* typed media backpressure: with continuous archiving on, refuse new
     work once the live log runs too far ahead of the archive — a crash
     of the archive medium in that window would strand more history than
     the operator allowed *)
  (match t.archive with
  | Some a when t.config.Config.max_archive_lag > 0 ->
      let durable = Log_store.durable t.log in
      let archived = Archive.archived_upto a in
      if Lsn.to_int durable - archived > t.config.Config.max_archive_lag then
        raise
          (Errors.Archive_lagging { durable; archived = Lsn.of_int archived })
  | _ -> ());
  let base = Lazy.force base_cost in
  let xid = Xid.of_int t.next_xid in
  (* admit the Begin record and its resolution reservation atomically:
     once a transaction exists, its Abort/End (or Commit/End) pair is
     guaranteed log space *)
  let lsn =
    Log_store.append_with_reserve t.log ~reserve_bytes:base ~reserve_records:2
      (Record.mk xid ~prev:Lsn.nil Record.Begin)
  in
  t.next_xid <- t.next_xid + 1;
  let info = Txn_table.add t.tt xid in
  info.last_lsn <- lsn;
  info.begin_lsn <- lsn;
  (ledger_of t xid).base_bytes <- base;
  t.stats.begins <- t.stats.begins + 1;
  if tracing t then Obs.Ring.emit t.ring (Obs.Event.Begin { xid; lsn });
  xid

let is_active t xid =
  match Txn_table.find t.tt xid with
  | Some info -> info.status = Txn_table.Active
  | None -> false

let finish t (info : Txn_table.info) =
  Lock_table.release_all t.locks info.xid;
  drop_permits t info.xid;
  Txn_table.remove t.tt info.xid

(* --- group commit --- *)

let set_commit_durable_hook t f = t.on_commit_durable <- f

let notify_durable t xid =
  match t.on_commit_durable with None -> () | Some f -> f xid

(* Fire the durability hook for waiters whose commit record is already
   covered by the durable horizon — a WAL-rule eviction flush, a
   checkpoint, or an eager delegation force may harden a group as a side
   effect, and those commits must not wait for the batch to fill. *)
let settle_group t =
  match t.gc_waiters with
  | [] -> ()
  | ws ->
      let d = Log_store.durable t.log in
      let hard, still = List.partition (fun (_, l) -> Lsn.(l <= d)) ws in
      t.gc_waiters <- still;
      List.iter (fun (x, _) -> notify_durable t x) (List.rev hard)

let flush_commits t =
  settle_group t;
  match t.gc_waiters with
  | [] -> ()
  | ws ->
      let hi = List.fold_left (fun a (_, l) -> Lsn.max a l) Lsn.nil ws in
      Log_store.flush t.log ~upto:hi;
      t.stats.group_flushes <- t.stats.group_flushes + 1;
      settle_group t

let commit t xid =
  let info = active_exn t xid in
  (* commit must never be refused for log space: it only shrinks the
     obligation set, so it draws on the reservation taken at begin *)
  release_ledger t xid;
  let commit_lsn = append_on_chain_reserved t info Record.Commit in
  info.status <- Txn_table.Committed;
  (if t.config.Config.group_commit <= 1 then begin
     Log_store.flush t.log ~upto:commit_lsn;
     notify_durable t xid
   end
   else begin
     (* join the pending group; the shared force happens when the batch
        fills (or at an explicit [flush_commits] barrier). The End
        record, lock release, and table removal below do not wait: the
        commit record alone decides the outcome at restart. *)
     settle_group t;
     t.gc_waiters <- (xid, commit_lsn) :: t.gc_waiters;
     t.stats.group_joins <- t.stats.group_joins + 1;
     if List.length t.gc_waiters >= t.config.Config.group_commit then
       flush_commits t
   end);
  ignore (append_on_chain_reserved t info Record.End);
  t.stats.commits <- t.stats.commits + 1;
  if tracing t then
    Obs.Ring.emit t.ring (Obs.Event.Commit { xid; lsn = commit_lsn });
  finish t info

(* rollback over the transaction's scopes (§3.5 abort), shared by [Rh]
   and [Lazy]; [Eager] has no scopes and follows its chain instead.
   [floor] restricts the undo to records above a savepoint. *)
let rollback_scopes ?floor t (info : Txn_table.info) =
  let scopes =
    List.map (fun s -> (info.xid, s)) (Ob_list.all_scopes info.ob_list)
  in
  let on_undo ~owner:_ ~invoker ~undone ~undo_next upd =
    release_clr t info.xid ~undone;
    let lsn =
      append_on_chain_reserved t info
        (Record.Clr { upd; undone; invoker; undo_next })
    in
    if tracing t then
      Obs.Ring.emit t.ring
        (Obs.Event.Clr
           { xid = info.xid; invoker; oid = upd.Record.oid; lsn; undone });
    info.undo_next <- undo_next;
    lsn
  in
  ignore (Scope_sweep.sweep ?floor t.env ~scopes ~on_undo)

(* Chain-based rollback for [Eager]: after surgery the chain itself is
   the authority on responsibility, so start at its head — [undo_next]
   may point at a record that was delegated away. The chain is kept
   LSN-sorted by the splice, so a partial rollback just stops at the
   savepoint [floor]. *)
let rollback_chain ?(floor = Lsn.nil) t (info : Txn_table.info) =
  (* Never dereference a CLR's undo_next: after chain surgery it may
     point at a record that moved to another chain. Walking prev-for and
     skipping updates whose LSN a CLR higher up declared compensated is
     always sound. A begin record does not end the walk either — surgery
     may splice delegated-in records below it. *)
  let compensated = Hashtbl.create 8 in
  let k = ref info.last_lsn in
  while Lsn.(!k > floor) do
    let record = Log_store.read t.log !k in
    (match record.Record.body with
    | Record.Update u when not (Hashtbl.mem compensated (Lsn.to_int !k)) ->
        let inv = { u with op = Apply.inverse u.op } in
        release_clr t info.xid ~undone:!k;
        let clr_lsn =
          append_on_chain_reserved t info
            (Record.Clr
               {
                 upd = inv;
                 undone = !k;
                 invoker = info.xid;
                 undo_next = record.Record.prev;
               })
        in
        if tracing t then
          Obs.Ring.emit t.ring
            (Obs.Event.Clr
               {
                 xid = info.xid;
                 invoker = info.xid;
                 oid = u.Record.oid;
                 lsn = clr_lsn;
                 undone = !k;
               });
        info.undo_next <- record.Record.prev;
        Apply.force t.env clr_lsn inv
    | Record.Clr { undone; _ } ->
        Hashtbl.replace compensated (Lsn.to_int undone) ()
    | Record.Update _ | Record.Begin | Record.Abort | Record.Commit
    | Record.End | Record.Delegate _ | Record.Anchor | Record.Ckpt_begin
    | Record.Ckpt_end _ | Record.Rewrite_begin _ | Record.Rewrite_clr _
    | Record.Rewrite_end _ | Record.Xfer_out _ | Record.Xfer_in _
    | Record.Xfer_end _ ->
        ());
    k := Record.prev_for record info.xid
  done

(* A savepoint is a global point in history (the current log head), not
   the transaction's own last record: responsibility acquired afterwards
   — by update or by delegation — is what rollback_to must undo, and a
   delegated-in update invoked before the savepoint carries an LSN below
   the head but possibly above the transaction's stale last_lsn. *)
let savepoint t xid =
  ignore (active_exn t xid);
  Log_store.head t.log

let rollback_to t xid sp =
  let info = active_exn t xid in
  (match t.config.Config.impl with
  | Config.Rh | Config.Lazy -> rollback_scopes ~floor:sp t info
  | Config.Eager ->
      (* degraded: logical delegate records exist, so chains are no
         longer the full authority on responsibility — undo over scopes,
         which [Ob_list.absorb] keeps aligned with spliced history *)
      if t.degraded then rollback_scopes ~floor:sp t info
      else rollback_chain ~floor:sp t info);
  (* trimmed open scopes must not be extended again: new updates open
     fresh scopes, or they would stretch back across the compensated
     range *)
  info.ob_list <- Ob_list.close_all_open info.ob_list;
  Log_store.flush t.log ~upto:info.last_lsn

let abort t xid =
  let info = active_exn t xid in
  info.status <- Txn_table.Rolling_back;
  (* the whole rollback path draws on the reservation ledger: it must
     never be refused for log space, or a full log would be fatal *)
  (match t.config.Config.impl with
  | Config.Rh | Config.Lazy -> rollback_scopes t info
  | Config.Eager ->
      if t.degraded then rollback_scopes t info else rollback_chain t info);
  let abort_lsn = append_on_chain_reserved t info Record.Abort in
  Log_store.flush t.log ~upto:info.last_lsn;
  ignore (append_on_chain_reserved t info Record.End);
  release_ledger t xid;
  t.stats.aborts <- t.stats.aborts + 1;
  if tracing t then
    Obs.Ring.emit t.ring (Obs.Event.Abort { xid; lsn = abort_lsn });
  finish t info

(* --- object operations --- *)

(* The servability rule while an on-demand restart drains: first land
   the page's pending redo slice (bounded foreground work — also
   mandatory before any new update force-stamps the page, or the stamp
   would make the pending slice silently skip), then refuse with the
   retryable [Recovering] if a loser's scope still covers the object —
   its committed value is not yet separable from the loser's uncommitted
   writes. Post-restart transactions never wait on loser locks (early
   lock release); they wait on the shrinking backlog. *)
let od_guard t oid =
  match t.od.live with
  | None -> ()
  | Some o ->
      On_demand.ensure_object o oid;
      if On_demand.covered o oid then
        raise (Errors.Recovering { oid; backlog = On_demand.backlog o });
      t.od.served_degraded <- t.od.served_degraded + 1

let read t xid oid =
  check_oid t oid;
  od_guard t oid;
  let info = active_exn t xid in
  ignore info;
  lock t xid oid Mode.S;
  let page, slot = place t oid in
  Buffer_pool.read_object t.pool page ~slot

let log_update t (info : Txn_table.info) oid op =
  let page, slot = place t oid in
  let u = { Record.oid; page; op } in
  (* an update is admitted only together with space for the CLR that may
     later undo it — the invariant that keeps rollback Log_full-proof *)
  let clr = clr_cost u in
  let lsn =
    Log_store.append_with_reserve t.log ~reserve_bytes:clr ~reserve_records:1
      (Record.mk info.xid ~prev:info.last_lsn (Record.Update u))
  in
  info.last_lsn <- lsn;
  let r = ledger_of t info.xid in
  r.entries <- (Oid.to_int oid, Lsn.to_int lsn, clr) :: r.entries;
  info.undo_next <- lsn;
  info.ob_list <- Ob_list.note_update info.ob_list ~owner:info.xid ~oid lsn;
  Apply.force t.env lsn u;
  if tracing t then
    Obs.Ring.emit t.ring
      (Obs.Event.Update { xid = info.xid; oid; lsn; op = obs_op op });
  ignore slot

let write t xid oid v =
  check_oid t oid;
  od_guard t oid;
  let info = active_exn t xid in
  lock t xid oid Mode.X;
  let page, slot = place t oid in
  let before = Buffer_pool.read_object t.pool page ~slot in
  log_update t info oid (Record.Set { before; after = v })

let add t xid oid d =
  check_oid t oid;
  od_guard t oid;
  let info = active_exn t xid in
  lock t xid oid Mode.I;
  log_update t info oid (Record.Add d)

(* --- checkpointing and log-space maintenance --- *)

let checkpoint t =
  if recovering t then ()
    (* a fuzzy checkpoint taken mid-drain would record a transaction
       table without the undrained losers and a dirty-page table without
       the pending slices; a later restart starting from it would miss
       them. The drain is short — skip until converged. *)
  else begin
  (* checkpoints relieve log pressure — refusing one for log space would
     deadlock the governor, so they bypass admission *)
  let begin_lsn =
    Log_store.append_reserved t.log (Record.mk_system Record.Ckpt_begin)
  in
  let ck_txns, ck_obs = Txn_table.to_ckpt t.tt in
  let ck_dpt = Buffer_pool.dirty_page_table t.pool in
  let lsn =
    Log_store.append_reserved t.log
      (Record.mk_system (Record.Ckpt_end { Record.ck_txns; ck_dpt; ck_obs }))
  in
  Log_store.flush t.log ~upto:lsn;
  Log_store.set_master t.log lsn;
  (* the checkpoint force covers any pending commit group *)
  settle_group t;
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  if tracing t then
    Obs.Ring.emit t.ring (Obs.Event.Checkpoint { begin_lsn; end_lsn = lsn })
  end

let truncation_horizon t =
  let master = Log_store.master t.log in
  if Lsn.is_nil master then Lsn.nil
  else begin
    let horizon = ref master in
    List.iter
      (fun (_, rec_lsn) -> horizon := Lsn.min !horizon rec_lsn)
      (Buffer_pool.dirty_page_table t.pool);
    Txn_table.iter t.tt (fun info ->
        (* conventional (eager-mode) undo walks the whole chain, begin
           record included, so live transactions pin from their begin *)
        if not (Lsn.is_nil info.begin_lsn) then
          horizon := Lsn.min !horizon info.begin_lsn;
        match Ob_list.min_first info.ob_list with
        | Some first -> horizon := Lsn.min !horizon first
        | None -> ());
    !horizon
  end

(* --- continuous WAL archiving --- *)

(* Copy every newly-sealed durable record into the archive. The read
   side ([Log_store.raw_get]) and the archive append are both outside
   the fault injector's I/O clock, so archiving never perturbs a crash
   schedule. Records at or above [Log_store.archive_bound] — scheduled
   to tear at the next crash — are never archived: the archive must not
   resurrect bytes a crash amputates. *)
let archive_catchup t =
  match t.archive with
  | None -> 0
  | Some a ->
      let bound = Log_store.archive_bound t.log in
      let start =
        if Archive.archived_upto a > 0 then Archive.archived_upto a
        else Lsn.to_int (Log_store.truncated_below t.log) - 1
      in
      let n = ref 0 in
      (try
         for idx = start to bound - 1 do
           (* never archive bytes that already fail to decode: after a
              crash the stable tail may carry an applied tear that
              restart amputation has not dropped yet, and the archive
              must not adopt bytes the log is about to disown *)
           if not (Log_store.record_intact t.log ~idx) then raise Exit;
           Archive.append_wal a ~idx (Log_store.raw_get t.log ~idx);
           incr n
         done
       with Exit -> ());
      if !n > 0 then begin
        Archive.sync a;
        t.media.archived_records <- t.media.archived_records + !n;
        if tracing t then
          Obs.Ring.emit t.ring
            (Obs.Event.Archive_catchup { upto = Lsn.of_int bound })
      end;
      !n

(* The media pin: the first LSN that truncation must retain because the
   archive has not copied it yet, or because an outstanding in-memory
   backup needs it for media replay. [Lsn.nil] when unconstrained. *)
let media_pin t =
  let archive_pin =
    match t.archive with
    | Some a -> Lsn.of_int (Archive.archived_upto a + 1)
    | None -> Lsn.nil
  in
  let min_pin a b =
    if Lsn.is_nil a then b else if Lsn.is_nil b then a else Lsn.min a b
  in
  min_pin (min_pin archive_pin t.backup_pin) t.external_pin

let truncate_log t =
  if recovering t then 0
    (* the crash emptied the buffer pool, so [truncation_horizon] no
       longer sees the dirty pages' recLSNs — reclaiming now could drop
       the very slices the pending redo still needs *)
  else begin
  (* settle first: truncation may drop durable commit records, and any
     waiter they belong to must have been notified before its record
     becomes unreadable *)
  settle_group t;
  (* archive first too, so the pin only holds back what genuinely is not
     yet copied — reclamation must never strand a restore *)
  ignore (archive_catchup t);
  let horizon = truncation_horizon t in
  if Lsn.is_nil horizon then 0
  else begin
    let below = Lsn.min horizon (Log_store.durable t.log) in
    let below =
      let pin = media_pin t in
      if Lsn.is_nil pin then below else Lsn.min below pin
    in
    let reclaimed = Log_store.truncate t.log ~below in
    if reclaimed > 0 && tracing t then
      Obs.Ring.emit t.ring (Obs.Event.Truncate { below; reclaimed });
    reclaimed
  end
  end

let set_external_pin t lsn = t.external_pin <- lsn

(* --- cross-shard transfer primitives --- *)

(* The three log writes of the [Sharded] two-phase migration protocol.
   Each is a forced system record; sequencing lives in the router. Only
   the in-flight flush can tear at a crash, so a completed force here is
   durable — the same assumption the commit protocol makes. *)

let lock_holders t oid = Lock_table.holders t.locks oid

(* A migrating object must carry its settled committed value: bring the
   page current and drain any loser covering it before the transfer
   record bakes the value in. *)
let od_drain_for_xfer t oid =
  match t.od.live with
  | None -> ()
  | Some o -> On_demand.drain_object o oid

let xfer_out t ~xfer_id ~hop ~oid ~target ~value =
  check_oid t oid;
  od_drain_for_xfer t oid;
  (* admission-checked: migration is optional work and must not eat the
     space reserved for rollback or recovery *)
  let lsn =
    Log_store.append t.log
      (Record.mk_system (Record.Xfer_out { xfer_id; hop; oid; target; value }))
  in
  Log_store.flush t.log ~upto:lsn;
  lsn

let xfer_in t ~xfer_id ~hop ~oid ~source ~value =
  check_oid t oid;
  od_drain_for_xfer t oid;
  let page, slot = place t oid in
  let before = Buffer_pool.read_object t.pool page ~slot in
  let lsn =
    Log_store.append t.log
      (Record.mk_system
         (Record.Xfer_in { xfer_id; hop; oid; page; source; before; value }))
  in
  Log_store.flush t.log ~upto:lsn;
  (* the forward pass redoes this record page-LSN conditioned, exactly
     like an update — adopting the value now keeps the cache coherent *)
  Apply.force t.env lsn
    { Record.oid; page; op = Record.Set { before; after = value } };
  lsn

let xfer_end t ~xfer_id ~oid ~committed =
  (* resolution must never die of log exhaustion: like CLRs and
     checkpoints, the end record rides the reserved headroom *)
  let lsn =
    Log_store.append_reserved t.log
      (Record.mk_system (Record.Xfer_end { xfer_id; oid; committed }))
  in
  Log_store.flush t.log ~upto:lsn;
  lsn

(* --- delegation --- *)

(* Crash-atomic eager delegation (the §3.2 baseline hardened): plan the
   full chain surgery, secure log space for the whole protocol up front,
   force an intent record plus per-target before/after images, apply the
   in-place rewrites, then append the two chain anchors and the end
   record and force them as one unit. A crash at any I/O point resolves
   at the next restart to exactly the pre- or post-surgery log
   ([Rewrite.recover_surgeries]). If space for the surgery cannot be
   secured even after checkpoint-and-truncate retries, the delegation
   falls back to a logical ARIES/RH-style delegate record and the engine
   runs degraded until a restart heals the log. Returns the LSNs of the
   update records re-attributed to the delegatee ([] on the logical
   paths). *)
let delegate_eager t (tor_info : Txn_table.info) (tee_info : Txn_table.info)
    oid =
  let from_ = tor_info.Txn_table.xid and to_ = tee_info.Txn_table.xid in
  let anchors = 2 * Lazy.force anchor_cost in
  let plan = Rewrite.plan_eager t.env ~tor_info ~tee_info oid in
  let emit_delegate lsn =
    if tracing t then
      Obs.Ring.emit t.ring
        (Obs.Event.Delegate { from_; to_; oid; lsn; op_lsn = None })
  in
  if plan.Rewrite.patches = [] then begin
    (* no live records to move: no surgery, just the durable chain-head
       anchors; [Log_full] here aborts the delegation cleanly *)
    Log_store.reserve t.log ~bytes:anchors ~records:2;
    let anchor_lsn = append_on_chain_reserved t tor_info Record.Anchor in
    ignore (append_on_chain_reserved t tee_info Record.Anchor);
    Log_store.unreserve t.log ~bytes:anchors ~records:2;
    Log_store.flush t.log ~upto:(Log_store.head t.log);
    emit_delegate anchor_lsn;
    tor_info.undo_next <- tor_info.last_lsn;
    tee_info.undo_next <- tee_info.last_lsn;
    []
  end
  else begin
    let sbytes, srecords =
      Rewrite.surgery_cost ~deleg:(from_, to_, oid) plan.Rewrite.patches
    in
    let bytes = sbytes + anchors and records = srecords + 2 in
    let rec secure attempt =
      match Log_store.reserve t.log ~bytes ~records with
      | () -> true
      | exception Log_store.Log_full _
        when attempt < t.config.Config.rewrite_retries ->
          (* relieve pressure and retry: the checkpoint advances the
             truncation horizon, the truncation reclaims the prefix *)
          checkpoint t;
          ignore (truncate_log t);
          secure (attempt + 1)
      | exception Log_store.Log_full _ -> false
    in
    if secure 0 then begin
      let begin_lsn =
        Rewrite.surgery_begin t.env ~deleg:(from_, to_, oid)
          plan.Rewrite.patches
      in
      ignore (Rewrite.apply_plan t.env plan.Rewrite.patches);
      tor_info.last_lsn <- plan.Rewrite.tor_last;
      tee_info.last_lsn <- plan.Rewrite.tee_last;
      (* The anchors make the new chain heads durable and visible inside
         the next restart's analysis window (a spliced record below the
         checkpoint would otherwise be unreachable). They go in BEFORE
         the end record, so the closing force hardens anchors and
         surgery outcome as one unit — a torn tail can lose only the end
         record, and restart then rolls the fully-applied surgery
         forward, consistent with the durable anchors. *)
      let anchor_lsn = append_on_chain_reserved t tor_info Record.Anchor in
      ignore (append_on_chain_reserved t tee_info Record.Anchor);
      Rewrite.surgery_end t.env ~begin_lsn ~committed:true;
      Log_store.unreserve t.log ~bytes ~records;
      emit_delegate anchor_lsn;
      (* after surgery the chains are the only authority; undo must
         start at their heads (the old undo_next may point at a record
         that was delegated away) — and checkpoints persist these *)
      tor_info.undo_next <- tor_info.last_lsn;
      tee_info.undo_next <- tee_info.last_lsn;
      plan.Rewrite.moved
    end
    else begin
      (* degraded-mode fallback: surgery space cannot be found — record
         the delegation logically (admission-checked; [Log_full]
         propagates before any state change) and let the next restart
         heal the log via the lazy recovery path *)
      let lsn =
        Log_store.append t.log
          (Record.mk from_ ~prev:tor_info.last_lsn
             (Record.Delegate
                { tee = to_; tee_prev = tee_info.last_lsn; oid; op = None }))
      in
      tor_info.last_lsn <- lsn;
      tee_info.last_lsn <- lsn;
      t.degraded <- true;
      t.env.Env.rewrite_fallbacks <- t.env.Env.rewrite_fallbacks + 1;
      if tracing t then
        Obs.Ring.emit t.ring (Obs.Event.Rewrite_fallback { from_; to_; oid });
      emit_delegate lsn;
      []
    end
  end

let delegate t ~from_ ~to_ oid =
  check_oid t oid;
  let tor_info = active_exn t from_ in
  let tee_info = active_exn t to_ in
  if Xid.equal from_ to_ then invalid_arg "Db.delegate: delegator = delegatee";
  if t.refuse_delegations then
    raise
      (Errors.Overloaded
         { xid = Some from_; reason = Errors.Delegation_refused });
  if not (Ob_list.mem tor_info.ob_list oid) then
    raise (Errors.Not_responsible { xid = from_; oid });
  let moved =
    match t.config.Config.impl with
    | Config.Rh | Config.Lazy ->
        (* admission-checked; [Log_full] propagates before any state
           change, so a refused delegation is a clean no-op *)
        let lsn =
          Log_store.append t.log
            (Record.mk from_ ~prev:tor_info.last_lsn
               (Record.Delegate
                  { tee = to_; tee_prev = tee_info.last_lsn; oid; op = None }))
        in
        tor_info.last_lsn <- lsn;
        tee_info.last_lsn <- lsn;
        if tracing t then
          Obs.Ring.emit t.ring
            (Obs.Event.Delegate { from_; to_; oid; lsn; op_lsn = None });
        []
    | Config.Eager -> delegate_eager t tor_info tee_info oid
  in
  (match Ob_list.take tor_info.ob_list oid with
  | None -> assert false
  | Some (entry, rest) ->
      tor_info.ob_list <- rest;
      tee_info.ob_list <-
        Ob_list.receive tee_info.ob_list ~oid ~from_
          (Ob_list.entry_scopes entry));
  (* physical surgery re-attributed these records to the delegatee: its
     scope coverage must agree with the rewritten log, or the
     degraded-mode (scope-based) rollback would miss them *)
  if moved <> [] then
    tee_info.ob_list <- Ob_list.absorb tee_info.ob_list ~owner:to_ ~oid moved;
  move_reserved_object t ~from_ ~to_ oid;
  t.stats.delegations <- t.stats.delegations + 1;
  if tracing t then
    Obs.Ring.emit t.ring (Obs.Event.Scope_transfer { from_; to_; oid });
  if t.config.Config.locking then begin
    Lock_table.transfer t.locks oid ~from_ ~to_;
    if tracing t then
      Obs.Ring.emit t.ring (Obs.Event.Lock_transfer { from_; to_; oid })
  end

let delegate_update t ~from_ ~to_ oid op_lsn =
  check_oid t oid;
  let tor_info = active_exn t from_ in
  let tee_info = active_exn t to_ in
  if Xid.equal from_ to_ then
    invalid_arg "Db.delegate_update: delegator = delegatee";
  (match t.config.Config.impl with
  | Config.Eager ->
      raise
        (Errors.Unsupported_by_engine
           { op = "operation-granularity delegation"; impl = "eager" })
  | Config.Rh | Config.Lazy -> ());
  if t.refuse_delegations then
    raise
      (Errors.Overloaded
         { xid = Some from_; reason = Errors.Delegation_refused });
  (* identify the operation's invoker: usually a unique covering scope;
     with overlapping commuting scopes, consult the log record itself *)
  let invoker =
    match Ob_list.covering_invokers tor_info.ob_list ~oid op_lsn with
    | [] -> raise (Errors.Not_responsible { xid = from_; oid })
    | [ x ] -> x
    | _ -> (
        let r = Log_store.read t.log op_lsn in
        match r.Record.body with
        | Record.Update u when Oid.equal u.Record.oid oid ->
            Record.writer_exn r
        | _ -> raise (Errors.Not_responsible { xid = from_; oid }))
  in
  (* Operation-granularity delegation is for commuting updates — the
     §2.1.2 setting where several transactions are responsible for one
     object at once. The delegator keeps its own increment lock (it may
     still hold other updates); the delegatee gets one too, so the
     delegated update stays protected after the delegator resolves. An
     exclusively-locked object (Set updates) must be delegated whole. *)
  (if t.config.Config.locking then
     match Lock_table.held t.locks from_ oid with
     | Some m when Mode.equal m Mode.X ->
         invalid_arg
           "Db.delegate_update: operation granularity requires commuting \
            (increment) updates; delegate the whole object instead"
     | _ -> ());
  match Ob_list.split_out tor_info.ob_list ~oid ~invoker op_lsn with
  | None, _ -> raise (Errors.Not_responsible { xid = from_; oid })
  | Some moved, rest ->
      let lsn =
        Log_store.append t.log
          (Record.mk from_ ~prev:tor_info.last_lsn
             (Record.Delegate
                {
                  tee = to_;
                  tee_prev = tee_info.last_lsn;
                  oid;
                  op = Some (op_lsn, invoker);
                }))
      in
      tor_info.last_lsn <- lsn;
      tee_info.last_lsn <- lsn;
      tor_info.ob_list <- rest;
      tee_info.ob_list <- Ob_list.receive tee_info.ob_list ~oid ~from_ [ moved ];
      move_reserved_update t ~from_ ~to_ op_lsn;
      t.stats.delegate_ops <- t.stats.delegate_ops + 1;
      if tracing t then begin
        Obs.Ring.emit t.ring
          (Obs.Event.Delegate { from_; to_; oid; lsn; op_lsn = Some op_lsn });
        Obs.Ring.emit t.ring (Obs.Event.Scope_transfer { from_; to_; oid })
      end;
      if t.config.Config.locking then begin
        match Lock_table.acquire t.locks to_ oid Mode.I with
        | Lock_table.Granted -> ()
        | Lock_table.Conflict holders ->
            (* cannot happen: every holder is in increment mode *)
            raise (Errors.Conflict { requester = to_; holders })
      end

let delegate_all t ~from_ ~to_ =
  let tor_info = active_exn t from_ in
  List.iter
    (fun oid -> delegate t ~from_ ~to_ oid)
    (Ob_list.objects tor_info.ob_list)

let responsible_objects t xid = Ob_list.objects (info_exn t xid).ob_list

(* --- crash, recovery --- *)

(* Live transactions that keep the truncation horizon from advancing:
   each active transaction with the LSN it pins (its begin record or the
   start of its oldest scope, delegated-in scopes included), oldest pin
   first. The governor's victim list under hard log pressure. *)
let horizon_pinners t =
  let pins =
    Txn_table.fold t.tt ~init:[] ~f:(fun acc info ->
        if info.Txn_table.status <> Txn_table.Active then acc
        else
          let pin =
            match Ob_list.min_first info.ob_list with
            | Some first ->
                if Lsn.is_nil info.begin_lsn then first
                else Lsn.min info.begin_lsn first
            | None -> info.begin_lsn
          in
          if Lsn.is_nil pin then acc else (info.Txn_table.xid, pin) :: acc)
  in
  List.sort (fun (_, a) (_, b) -> Lsn.compare a b) pins

let log_pressure t = Log_store.pressure t.log

let set_backpressure t ~begins ~delegations =
  t.refuse_begins <- begins;
  t.refuse_delegations <- delegations

let backpressure t = (t.refuse_begins, t.refuse_delegations)

let crash t =
  if tracing t then
    Obs.Ring.emit t.ring
      (Obs.Event.Crash { durable = Log_store.durable t.log });
  (* an unforced commit group dies with the crash: its transactions have
     no durable commit record and roll back at restart, which is exactly
     the group-commit durability contract *)
  t.gc_waiters <- [];
  Log_store.crash t.log;
  Buffer_pool.crash t.pool;
  t.locks <- Lock_table.create ();
  t.tt <- Txn_table.create ();
  t.permits <- [];
  (* reservation ledgers and backpressure are volatile control state *)
  Hashtbl.reset t.reserves;
  t.refuse_begins <- false;
  t.refuse_delegations <- false;
  (* volatile too: recovery re-derives it from the durable log *)
  t.degraded <- false;
  (* an interrupted on-demand drain is volatile as well: the next
     restart's analysis re-derives a (smaller) backlog from the log *)
  t.od.live <- None

(* --- media recovery --- *)

(* Heal one page (shadow or snapshot base + page-LSN-conditioned WAL
   replay) with the fault injector parked: integrity maintenance must
   never shift a crash or corruption schedule. *)
let repair_quiet t pid base =
  let was = Fault.enabled t.fault in
  Fault.set_enabled t.fault false;
  Fun.protect
    ~finally:(fun () -> Fault.set_enabled t.fault was)
    (fun () -> ignore (Repair.page t.env pid base))

type backup = { pages : Page.t array; complete_upto : Lsn.t }

(* Whole-store media operations need a settled store: a snapshot taken
   mid-drain would bake un-redone pages and un-undone losers into the
   copy. Refuse (retryably) until the backlog converges. *)
let require_settled t =
  match t.od.live with
  | None -> ()
  | Some o ->
      raise (Errors.Recovery_incomplete { backlog = On_demand.backlog o })

let backup t =
  require_settled t;
  (* quiesce: every logged effect reaches the disk image *)
  Log_store.flush t.log ~upto:(Log_store.head t.log);
  settle_group t;
  Buffer_pool.flush_all t.pool;
  let b =
    {
      pages =
        Array.init (Disk.page_count t.disk) (fun i ->
            (* checked: a backup taken from a torn or stale (lost-write)
               main image would bake the corruption into the snapshot —
               heal first, then copy *)
            let pid = Page_id.of_int i in
            match Disk.read_page_checked t.disk pid with
            | Ok p -> p
            | Error shadow ->
                repair_quiet t pid shadow;
                Disk.peek_main t.disk pid);
      complete_upto = Log_store.durable t.log;
    }
  in
  (* media replay needs the log from the backup point forward: pin it so
     the governor cannot reclaim it out from under [restore_media]. The
     caller releases the pin ([release_backup_pin]) when it discards the
     backup. *)
  let pin = Lsn.next b.complete_upto in
  t.backup_pin <-
    (if Lsn.is_nil t.backup_pin then pin else Lsn.min t.backup_pin pin);
  b

let release_backup_pin t = t.backup_pin <- Lsn.nil
let backup_pin t = t.backup_pin

let media_failure t =
  if tracing t then
    Obs.Ring.emit t.ring
      (Obs.Event.Crash { durable = Log_store.durable t.log });
  let blank = Page.create ~slots:t.config.Config.objects_per_page in
  for i = 0 to Disk.page_count t.disk - 1 do
    Disk.write_page t.disk (Page_id.of_int i) blank
  done;
  t.gc_waiters <- [];
  Log_store.crash t.log;
  Buffer_pool.crash t.pool;
  t.locks <- Lock_table.create ();
  t.tt <- Txn_table.create ();
  t.permits <- [];
  Hashtbl.reset t.reserves;
  t.refuse_begins <- false;
  t.refuse_delegations <- false;
  t.degraded <- false;
  t.od.live <- None

let audit t = Audit.check t.env

let run_audit t =
  Obs.Ring.emit t.ring (Obs.Event.Restart_enter Obs.Event.Audit);
  Audit.run t.env;
  Obs.Ring.emit t.ring (Obs.Event.Restart_leave Obs.Event.Audit)

(* A degraded run may have left logical delegate records in the durable
   log; conventional ARIES cannot interpret them, so detect them
   (skipping any corrupt tail record — amputation has not run yet) and
   heal through the lazy recovery path, which splices them physically.
   After it, the log is purely physical again and the engine leaves
   degraded mode. *)
let has_delegate t =
  let exception Found in
  try
    ignore
      (Log_store.iter_valid_forward t.log
         ~from:(Log_store.truncated_below t.log)
         (fun _ r ->
           match r.Record.body with
           | Record.Delegate _ -> raise Found
           | _ -> ()));
    false
  with Found -> true

let recover t =
  (* re-entering restart subsumes any prior interrupted drain *)
  t.od.live <- None;
  let passes =
    match t.config.Config.forward_passes with
    | Config.Merged -> Forward.Merged
    | Config.Separate -> Forward.Separate
  in
  match t.config.Config.recovery_mode with
  | Config.Offline ->
      let report =
        match t.config.Config.impl with
        | Config.Rh -> Aries_rh.recover ~passes t.env
        | Config.Eager ->
            if has_delegate t then Aries_rh.recover_physical t.env
            else Aries.recover ~passes t.env
        | Config.Lazy -> Aries_rh.recover_physical t.env
      in
      t.degraded <- false;
      t.tt <- Txn_table.create ();
      t.locks <- Lock_table.create ();
      t.permits <- [];
      t.stats.recoveries <- t.stats.recoveries + 1;
      if t.config.Config.audit then run_audit t;
      report
  | Config.On_demand ->
      (* analysis only (bounded by the checkpoint interval), then open.
         The scope-sweep undo the drain uses works on every engine; the
         lazy splice ([physical]) is needed exactly where the offline
         path would have used [recover_physical]. *)
      let physical =
        match t.config.Config.impl with
        | Config.Rh -> false
        | Config.Eager -> has_delegate t
        | Config.Lazy -> true
      in
      let o, report = On_demand.start ~passes ~physical t.env in
      t.degraded <- false;
      t.tt <- Txn_table.create ();
      t.locks <- Lock_table.create ();
      t.permits <- [];
      t.stats.recoveries <- t.stats.recoveries + 1;
      if On_demand.backlog o = 0 then begin
        (* converged at once (e.g. clean shutdown): indistinguishable
           from an offline restart, audit now *)
        if t.config.Config.audit then run_audit t
      end
      else t.od.live <- Some o;
      report

(* Convergence: once the backlog is empty the store is exactly what the
   offline restart would have produced — drop the drain state, flush,
   and run the self-audit the open-for-traffic restart deferred. *)
let maybe_finalize_recovery t =
  match t.od.live with
  | None -> ()
  | Some o ->
      if On_demand.backlog o = 0 then begin
        t.od.live <- None;
        Log_store.flush t.log ~upto:(Log_store.head t.log);
        if t.config.Config.audit then run_audit t
      end

let recovery_step t =
  match t.od.live with
  | None -> false
  | Some o ->
      ignore (On_demand.step o);
      maybe_finalize_recovery t;
      t.od.live <> None

let await_recovery t =
  (match t.od.live with
  | None -> ()
  | Some o -> while On_demand.step o do () done);
  maybe_finalize_recovery t

let restore_media t (b : backup) =
  require_settled t;
  let replay_from = Lsn.next b.complete_upto in
  if Lsn.(Log_store.truncated_below t.log > replay_from) then
    raise
      (Errors.Log_truncated_past_backup
         {
           backup = b.complete_upto;
           retained = Log_store.truncated_below t.log;
         });
  Array.iteri (fun i page -> Disk.write_page t.disk (Page_id.of_int i) page)
    b.pages;
  Buffer_pool.crash t.pool;
  (* roll the archive image forward: redo everything since the backup,
     conditioned on page LSNs, then let normal restart recovery settle
     the in-flight transactions *)
  Log_store.iter_forward t.log ~from:replay_from (fun lsn record ->
      match record.Record.body with
      | Record.Update u -> ignore (Apply.redo t.env lsn u)
      | Record.Clr { upd; _ } -> ignore (Apply.redo t.env lsn upd)
      | _ -> ());
  recover t

(* --- the media archive: attach, backup, cold restore --- *)

let impl_tag_of = function
  | Config.Rh -> 0
  | Config.Eager -> 1
  | Config.Lazy -> 2

let archive t = t.archive

let set_archive t a =
  (match t.archive with
  | Some _ -> invalid_arg "Db.set_archive: an archive is already attached"
  | None -> ());
  let g = Archive.geometry a in
  if
    g.Archive.n_objects <> t.config.Config.n_objects
    || g.Archive.objects_per_page <> t.config.Config.objects_per_page
  then invalid_arg "Db.set_archive: archive geometry does not match";
  t.archive <- Some a;
  ignore (archive_catchup t)

let attach_archive ?dir t =
  let a =
    Archive.create ?dir ~n_objects:t.config.Config.n_objects
      ~objects_per_page:t.config.Config.objects_per_page
      ~impl_tag:(impl_tag_of t.config.Config.impl) ()
  in
  set_archive t a;
  a

let archived_upto t =
  match t.archive with None -> 0 | Some a -> Archive.archived_upto a

(* Full durable backup into the archive: page snapshot plus WAL catchup.
   After this, the archive alone can rebuild the exact committed state
   ([restore_from_archive]) — no in-memory pin needed. *)
let backup_to_archive t =
  require_settled t;
  match t.archive with
  | None -> invalid_arg "Db.backup_to_archive: no archive attached"
  | Some a ->
      Log_store.flush t.log ~upto:(Log_store.head t.log);
      settle_group t;
      Buffer_pool.flush_all t.pool;
      Disk.sync t.disk;
      let pages =
        Array.init (Disk.page_count t.disk) (fun i ->
            Disk.peek_main t.disk (Page_id.of_int i))
      in
      let complete_upto = Log_store.durable t.log in
      Archive.put_snapshot a ~pages ~complete_upto
        ~master:(Log_store.master t.log);
      ignore (archive_catchup t);
      complete_upto

(* Cold restore after total media loss: install the snapshot pages and
   the archived WAL into a {e fresh, empty} database of the same
   geometry, replay history since the snapshot (page-LSN conditioned),
   and run ordinary restart recovery to settle in-flight transactions.
   The database comes out exactly as a reopen after that history. *)
let restore_from_archive t a =
  if Log_store.length t.log > 0 then
    invalid_arg "Db.restore_from_archive: database is not empty";
  let g = Archive.geometry a in
  if
    g.Archive.n_objects <> t.config.Config.n_objects
    || g.Archive.objects_per_page <> t.config.Config.objects_per_page
  then invalid_arg "Db.restore_from_archive: archive geometry does not match";
  let s =
    match Archive.snapshot a with
    | Some s -> s
    | None ->
        raise
          (Archive.Archive_corrupt
             { path = "archive"; what = "no page snapshot to restore from" })
  in
  t.gc_waiters <- [];
  Buffer_pool.crash t.pool;
  Array.iteri
    (fun i p -> Disk.install_page t.disk (Page_id.of_int i) (Page.copy p))
    s.Archive.pages;
  let base = Archive.wal_base a in
  let frames = Array.make (Archive.archived_upto a - base) "" in
  Archive.iter_wal a (fun ~idx enc -> frames.(idx - base) <- enc);
  Log_store.install_archive t.log ~low:base
    ~master:(Lsn.to_int s.Archive.master)
    frames;
  let from =
    Lsn.max (Lsn.next s.Archive.complete_upto) (Log_store.truncated_below t.log)
  in
  Log_store.iter_forward t.log ~from (fun lsn record ->
      match record.Record.body with
      | Record.Update u -> ignore (Apply.redo t.env lsn u)
      | Record.Clr { upd; _ } -> ignore (Apply.redo t.env lsn upd)
      | _ -> ());
  let report = recover t in
  t.archive <- Some a;
  report

(* --- the scrubber: detect, quarantine, heal --- *)

type scrub_outcome = {
  checked : int;
  corrupt : int;
  healed : int;
  unhealable : int;
}

let zero_outcome = { checked = 0; corrupt = 0; healed = 0; unhealable = 0 }

let add_outcome a b =
  {
    checked = a.checked + b.checked;
    corrupt = a.corrupt + b.corrupt;
    healed = a.healed + b.healed;
    unhealable = a.unhealable + b.unhealable;
  }

let quarantined t = List.rev t.quarantined

let note_quarantine t ~target ~id =
  t.media.scrub_corrupt <- t.media.scrub_corrupt + 1;
  if tracing t then Obs.Ring.emit t.ring (Obs.Event.Quarantine { target; id })

let note_heal t ~target ~id ~how =
  t.media.media_heals <- t.media.media_heals + 1;
  t.quarantined <- List.filter (fun q -> q <> (target, id)) t.quarantined;
  if tracing t then
    Obs.Ring.emit t.ring (Obs.Event.Media_heal { target; id; how })

let note_unhealable t ~target ~id =
  t.media.scrub_unhealable <- t.media.scrub_unhealable + 1;
  if not (List.mem (target, id) t.quarantined) then
    t.quarantined <- (target, id) :: t.quarantined

(* Repair [pid] from an intact base image by replaying the durable log
   (page-LSN conditioned) with the fault injector held off: heal I/O
   must never shift a crash schedule or tear mid-heal. *)
(* Bridge a truncated gap from the archived WAL: replay archived records
   with LSN below the live log's retained start onto [img]. Used when a
   page must be rebuilt from the (older) archive snapshot. *)
let replay_archived_gap t a pid img =
  let low = Lsn.to_int (Log_store.truncated_below t.log) in
  let spp = t.config.Config.objects_per_page in
  Archive.iter_wal a (fun ~idx enc ->
      let lsn = idx + 1 in
      if lsn < low then
        match Record.decode enc with
        | Error _ -> ()
        | Ok r -> (
            match r.Record.body with
            | Record.Update u | Record.Clr { upd = u; _ } ->
                if
                  Page_id.to_int u.Record.page = Page_id.to_int pid
                  && Lsn.(Lsn.of_int lsn > Page.page_lsn img)
                then begin
                  let slot = Oid.to_int u.Record.oid mod spp in
                  (match u.Record.op with
                  | Record.Add d -> Page.set img slot (Page.get img slot + d)
                  | Record.Set { after; _ } -> Page.set img slot after);
                  Page.set_page_lsn img (Lsn.of_int lsn)
                end
            | _ -> ()))

(* One page: verify main, shadow, and their agreement. Clean writes
   update both images together, so two checksum-valid images that differ
   are the signature of a lost or misdirected write — and in every
   corrupt case the shadow (always WAL-covered: write-back forces the
   log first) plus durable replay reconstructs the true current image.
   Only when both images are dead does the archive snapshot serve as the
   base, bridging any truncated gap from the archived WAL. *)
let scrub_page t i =
  let pid = Page_id.of_int i in
  let main_ok = Disk.verify_main t.disk pid in
  let shadow_ok = Disk.verify_shadow t.disk pid in
  if main_ok && shadow_ok && Disk.main_matches_shadow t.disk pid then
    { zero_outcome with checked = 1 }
  else begin
    note_quarantine t ~target:"page" ~id:i;
    let healed ~how =
      note_heal t ~target:"page" ~id:i ~how;
      { checked = 1; corrupt = 1; healed = 1; unhealable = 0 }
    in
    let unhealable () =
      note_unhealable t ~target:"page" ~id:i;
      { checked = 1; corrupt = 1; healed = 0; unhealable = 1 }
    in
    if main_ok && not shadow_ok then begin
      (* the shadow itself rotted; main is intact *)
      Disk.reseal_shadow_from_main t.disk pid;
      healed ~how:"reseal-shadow"
    end
    else if shadow_ok then begin
      repair_quiet t pid (Disk.shadow_copy t.disk pid);
      if Disk.verify_main t.disk pid then healed ~how:"shadow-replay"
      else unhealable ()
    end
    else begin
      match t.archive with
      | Some a -> (
          match Archive.snapshot a with
          | Some s when Page.verify s.Archive.pages.(i) ->
              let img = Page.copy s.Archive.pages.(i) in
              replay_archived_gap t a pid img;
              Page.seal img;
              Disk.install_page t.disk pid img;
              repair_quiet t pid img;
              if Disk.verify_main t.disk pid then healed ~how:"archive-image"
              else unhealable ()
          | _ -> unhealable ())
      | None -> unhealable ()
    end
  end

(* One durable WAL record: every record carries its own trailing
   checksum, so rot anywhere in the payload is caught by a decode. The
   only source for a heal is the archive's copy. *)
let scrub_wal_record t idx =
  if Log_store.record_intact t.log ~idx then { zero_outcome with checked = 1 }
  else begin
    let heal_source =
      match t.archive with
      | None -> None
      | Some a -> (
          match Archive.wal_get a ~idx with
          | Some enc when Result.is_ok (Record.decode enc) -> Some enc
          | _ -> None)
    in
    match heal_source with
    | Some enc ->
        note_quarantine t ~target:"wal" ~id:idx;
        Log_store.heal_record t.log ~idx enc;
        note_heal t ~target:"wal" ~id:idx ~how:"archive-frame";
        { checked = 1; corrupt = 1; healed = 1; unhealable = 0 }
    | None when idx = Lsn.to_int (Log_store.durable t.log) - 1 ->
        (* the corrupt record is the very tail of the durable log and no
           archive copy exists: indistinguishable from a crash-torn
           flush, which is restart amputation's business, not the
           scrubber's — leave it to [recover_tail] *)
        { zero_outcome with checked = 1 }
    | None ->
        note_quarantine t ~target:"wal" ~id:idx;
        note_unhealable t ~target:"wal" ~id:idx;
        { checked = 1; corrupt = 1; healed = 0; unhealable = 1 }
  end

let scrub_pages ?(first = 0) ?count t =
  let n = Disk.page_count t.disk in
  let first = max 0 (min first n) in
  let count = match count with None -> n - first | Some c -> min c (n - first) in
  let out = ref zero_outcome in
  for i = first to first + count - 1 do
    out := add_outcome !out (scrub_page t i)
  done;
  t.media.scrub_checked <- t.media.scrub_checked + (!out).checked;
  if tracing t && count > 0 then
    Obs.Ring.emit t.ring
      (Obs.Event.Scrub_pass
         { target = "pages"; checked = (!out).checked; corrupt = (!out).corrupt });
  !out

let scrub_wal ?first ?count t =
  let low = Lsn.to_int (Log_store.truncated_below t.log) - 1 in
  let durable = Lsn.to_int (Log_store.durable t.log) in
  let first = match first with None -> low | Some f -> max f low in
  let avail = max 0 (durable - first) in
  let count = match count with None -> avail | Some c -> min c avail in
  let out = ref zero_outcome in
  for idx = first to first + count - 1 do
    out := add_outcome !out (scrub_wal_record t idx)
  done;
  t.media.scrub_checked <- t.media.scrub_checked + (!out).checked;
  if tracing t && count > 0 then
    Obs.Ring.emit t.ring
      (Obs.Event.Scrub_pass
         { target = "wal"; checked = (!out).checked; corrupt = (!out).corrupt });
  !out

(* The archive's own media rots too. An archived frame heals from the
   live log while the record is still retained and intact; a snapshot
   page heals from the live disk image (newer than the snapshot point is
   fine: restore's replay is page-LSN conditioned, so already-applied
   redos no-op). *)
let scrub_archive t =
  match t.archive with
  | None -> zero_outcome
  | Some a ->
      let bad_pages, bad_wal = Archive.check a in
      let checked =
        (match Archive.snapshot a with
        | Some s -> Array.length s.Archive.pages
        | None -> 0)
        + (Archive.archived_upto a - Archive.wal_base a)
      in
      let out = ref { zero_outcome with checked } in
      let low = Lsn.to_int (Log_store.truncated_below t.log) - 1 in
      let durable = Lsn.to_int (Log_store.durable t.log) in
      List.iter
        (fun idx ->
          note_quarantine t ~target:"archive-wal" ~id:idx;
          if idx >= low && idx < durable && Log_store.record_intact t.log ~idx
          then begin
            Archive.heal_wal a ~idx (Log_store.raw_get t.log ~idx);
            note_heal t ~target:"archive-wal" ~id:idx ~how:"live-log";
            out := add_outcome !out { zero_outcome with corrupt = 1; healed = 1 }
          end
          else begin
            note_unhealable t ~target:"archive-wal" ~id:idx;
            out :=
              add_outcome !out { zero_outcome with corrupt = 1; unhealable = 1 }
          end)
        bad_wal;
      (match (Archive.snapshot a, bad_pages) with
      | Some s, _ :: _ ->
          let pages = Array.map Page.copy s.Archive.pages in
          let healed_any = ref false in
          List.iter
            (fun i ->
              note_quarantine t ~target:"archive-page" ~id:i;
              let pid = Page_id.of_int i in
              if Disk.verify_main t.disk pid then begin
                pages.(i) <- Disk.peek_main t.disk pid;
                healed_any := true;
                note_heal t ~target:"archive-page" ~id:i ~how:"live-page";
                out :=
                  add_outcome !out
                    { zero_outcome with corrupt = 1; healed = 1 }
              end
              else begin
                note_unhealable t ~target:"archive-page" ~id:i;
                out :=
                  add_outcome !out
                    { zero_outcome with corrupt = 1; unhealable = 1 }
              end)
            bad_pages;
          if !healed_any then
            Archive.put_snapshot a ~pages
              ~complete_upto:s.Archive.complete_upto ~master:s.Archive.master
      | _ -> ());
      t.media.scrub_checked <- t.media.scrub_checked + (!out).checked;
      if tracing t then
        Obs.Ring.emit t.ring
          (Obs.Event.Scrub_pass
             {
               target = "archive";
               checked = (!out).checked;
               corrupt = (!out).corrupt;
             });
      !out

let scrub t =
  require_settled t;
  ignore (archive_catchup t);
  let out =
    add_outcome
      (add_outcome (scrub_pages t) (scrub_wal t))
      (scrub_archive t)
  in
  t.media.scrub_passes <- t.media.scrub_passes + 1;
  out

let media_counters t =
  ( t.media.scrub_checked,
    t.media.scrub_corrupt,
    t.media.media_heals,
    t.media.scrub_unhealable )

let recover_with_fuel t ~fuel =
  t.od.live <- None;
  match t.config.Config.impl with
  | Config.Eager | Config.Lazy ->
      invalid_arg "Db.recover_with_fuel: only supported for the Rh engine"
  | Config.Rh -> (
      match Aries_rh.recover ~fuel t.env with
      | report ->
          t.tt <- Txn_table.create ();
          t.locks <- Lock_table.create ();
          t.permits <- [];
          `Done report
      | exception Aries_rh.Interrupted -> `Interrupted)

let log_fsyncs t = Log_store.fsyncs t.log
let page_fsyncs t = Disk.fsyncs t.disk

let shutdown t =
  Log_store.flush t.log ~upto:(Log_store.head t.log);
  settle_group t;
  Buffer_pool.flush_all t.pool;
  (* the page writes flush_all issued are only durable once synced *)
  Disk.sync t.disk

let close t =
  Log_store.close t.log;
  Disk.close t.disk

(* --- inspection --- *)

let peek t oid =
  check_oid t oid;
  (* foreground repair: inspection never refuses — it lands the page's
     slice and drains every loser covering the object first *)
  (match t.od.live with
  | None -> ()
  | Some o ->
      On_demand.drain_object o oid;
      maybe_finalize_recovery t);
  let page, slot = place t oid in
  Buffer_pool.read_object t.pool page ~slot

let peek_all t =
  Array.init t.config.Config.n_objects (fun i -> peek t (Oid.of_int i))

let stable_value t oid =
  check_oid t oid;
  let page, slot = place t oid in
  Page.get (Disk.read_page t.disk page) slot

let chain_of t xid =
  let info = info_exn t xid in
  (* head (most recent) first *)
  let rec go lsn acc =
    if Lsn.is_nil lsn then List.rev acc
    else
      let record = Log_store.read t.log lsn in
      go (Record.prev_for record xid) (lsn :: acc)
  in
  go info.last_lsn []

let scopes_of t xid oid = Ob_list.scopes_of (info_exn t xid).ob_list oid
let active_count t = Txn_table.count t.tt
let last_lsn_of t xid = (info_exn t xid).last_lsn

type history_event =
  | Updated of { lsn : Lsn.t; invoker : Xid.t; op : Record.op }
  | Delegated of {
      lsn : Lsn.t;
      from_ : Xid.t;
      to_ : Xid.t;
      op_lsn : Lsn.t option;
    }
  | Compensated of { lsn : Lsn.t; by : Xid.t; undone : Lsn.t }

let object_history t oid =
  check_oid t oid;
  let events = ref [] in
  Log_store.iter_forward t.log
    ~from:(Log_store.truncated_below t.log)
    (fun lsn record ->
      match record.Record.body with
      | Record.Update u when Oid.equal u.oid oid ->
          events :=
            Updated { lsn; invoker = Record.writer_exn record; op = u.op }
            :: !events
      | Record.Delegate { tee; oid = d_oid; op; _ } when Oid.equal d_oid oid ->
          events :=
            Delegated
              {
                lsn;
                from_ = Record.writer_exn record;
                to_ = tee;
                op_lsn = Option.map fst op;
              }
            :: !events
      | Record.Clr { upd; undone; _ } when Oid.equal upd.oid oid ->
          events :=
            Compensated { lsn; by = Record.writer_exn record; undone }
            :: !events
      | _ -> ());
  List.rev !events

let responsible_now t oid =
  check_oid t oid;
  Txn_table.fold t.tt ~init:[] ~f:(fun acc info ->
      List.fold_left
        (fun acc (s : Scope.t) -> (info.xid, s.invoker) :: acc)
        acc
        (Ob_list.scopes_of info.ob_list oid))

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let head = Log_store.head t.log in
  (* scopes: in-log ranges, and disjoint per (invoker, object) *)
  let all_scopes =
    Txn_table.fold t.tt ~init:[] ~f:(fun acc info ->
        List.map (fun s -> (info.xid, s)) (Ob_list.all_scopes info.ob_list)
        @ acc)
  in
  List.iter
    (fun ((owner : Xid.t), (s : Scope.t)) ->
      if Lsn.(s.first > s.last) then
        err "empty scope leaked into live set: %a (owner %a)" Scope.pp s Xid.pp
          owner;
      if Lsn.is_nil s.first || Lsn.(s.last > head) then
        err "scope %a outside the log (head %a)" Scope.pp s Lsn.pp head)
    all_scopes;
  let rec pairs = function
    | [] -> ()
    | (o1, (s1 : Scope.t)) :: rest ->
        List.iter
          (fun (o2, (s2 : Scope.t)) ->
            if
              Xid.equal s1.invoker s2.invoker
              && Oid.equal s1.oid s2.oid
              && Scope.overlaps s1 s2
            then
              err "same-invoker scopes overlap: %a (owner %a) and %a (owner %a)"
                Scope.pp s1 Xid.pp o1 Scope.pp s2 Xid.pp o2)
          rest;
        pairs rest
  in
  pairs all_scopes;
  (* locks: held by live transactions only; modes pairwise compatible or
     covered by permits *)
  let holders_by_oid : (int, (Xid.t * Mode.t) list) Hashtbl.t =
    Hashtbl.create 32
  in
  Lock_table.iter t.locks (fun oid xid mode ->
      if not (Txn_table.mem t.tt xid) then
        err "lock on %a held by dead transaction %a" Oid.pp oid Xid.pp xid;
      let k = Oid.to_int oid in
      Hashtbl.replace holders_by_oid k
        ((xid, mode) :: Option.value ~default:[] (Hashtbl.find_opt holders_by_oid k)));
  Hashtbl.iter
    (fun k holders ->
      let rec check = function
        | [] -> ()
        | (x1, m1) :: rest ->
            List.iter
              (fun (x2, m2) ->
                let permitted =
                  List.mem (x1, x2) t.permits || List.mem (x2, x1) t.permits
                in
                if
                  (not (Mode.compatible m1 m2))
                  && (not (Mode.compatible m2 m1))
                  && not permitted
                then
                  err "incompatible locks on ob%d: %a:%a vs %a:%a" k Xid.pp x1
                    Mode.pp m1 Xid.pp x2 Mode.pp m2)
              rest;
            check rest
      in
      check holders)
    holders_by_oid;
  (* chains: terminate, strictly decreasing *)
  Txn_table.iter t.tt (fun info ->
      let rec walk lsn last steps =
        if steps > Lsn.to_int head + 1 then
          err "chain of %a does not terminate" Xid.pp info.xid
        else if not (Lsn.is_nil lsn) then begin
          if Lsn.(lsn >= last) then
            err "chain of %a not strictly decreasing at %a" Xid.pp info.xid
              Lsn.pp lsn
          else
            match Log_store.read t.log lsn with
            | record -> walk (Record.prev_for record info.xid) lsn (steps + 1)
            | exception _ ->
                err "chain of %a points at unreadable %a" Xid.pp info.xid
                  Lsn.pp lsn
        end
      in
      walk info.last_lsn (Lsn.next head) 0);
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))
