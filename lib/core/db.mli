(** The database engine: WAL + buffer pool + locks + transactions +
    delegation, with ARIES/RH (or a baseline) restart recovery.

    Normal processing follows §3.5 of the paper; {!crash} simulates a
    failure (volatile state lost, stable log prefix and disk pages
    survive) and {!recover} runs the restart algorithm selected by the
    configuration. *)

open Ariesrh_types

type t

val create :
  ?fault:Ariesrh_fault.Fault.t ->
  ?backend:Ariesrh_storage.Backend.t ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?shard:int ->
  Config.t ->
  t
(** [fault] (default inert) is threaded into the disk, the log store and
    the buffer pool; a torn-page repair callback is installed so that
    checksum-failing pages are repaired transparently on fetch.

    [backend] (default [Sim]) selects the stable-storage device behind
    the disk and the log. With [File { dir }] the durable state lives in
    real files under [dir] (segmented WAL, fsynced on force; page file
    with a doublewrite shadow region), and creating a database over an
    existing directory is the {e reopen} path: the surviving WAL frames
    become the durable log prefix, the page images come back as stored
    (torn ones included), and xid allocation resumes above every xid the
    log mentions. Call {!recover} to bring the reopened state to a
    consistent point, exactly as after {!crash}.

    [tracing] (default [false]) enables the structured trace ring from
    the first operation; [trace_capacity] bounds its memory (default
    {!Ariesrh_obs.Ring.default_capacity} entries). Every database also
    carries a metrics registry ({!metrics}) into which the log store,
    disk, buffer pool, fault injector and the engine's own tallies are
    registered at creation — snapshotting it is always available and
    costs nothing until read. Every sample carries
    [backend="sim"|"file"] and [shard="<i>"] labels.

    [shard] (default [0]) is the index this database occupies inside a
    {!Sharded} engine; it only stamps the metrics label — a standalone
    database and shard 0 of a sharded one are indistinguishable. *)

val config : t -> Config.t

val shard : t -> int
(** The shard index given at {!create} ([0] for a standalone db). *)

val fault : t -> Ariesrh_fault.Fault.t

val backend : t -> Ariesrh_storage.Backend.t

val log_fsyncs : t -> int
(** Lifetime WAL fsyncs (segments + control file); [0] on sim. An
    accessor, not a metric, so forensic dumps stay byte-comparable
    across backends. *)

val page_fsyncs : t -> int
(** Lifetime page-file fsyncs; [0] on sim. *)

(** {1 Observability} *)

val ring : t -> Ariesrh_obs.Ring.t
(** The structured trace ring. Disabled by default; see {!set_tracing}. *)

val metrics : t -> Ariesrh_obs.Metrics.t
(** The database's metrics registry (pull-based; snapshot to read). *)

val set_tracing : t -> bool -> unit
(** Toggle trace-event capture at runtime. *)

val set_create_hook : (t -> unit) option -> unit
(** Session-global hook invoked with every database subsequently
    created; the CLI uses it to aggregate metrics across the many
    databases a command may build. [None] uninstalls. *)

val set_backend_factory : (unit -> Ariesrh_storage.Backend.t) option -> unit
(** Session-global default backend for databases created without an
    explicit [~backend] (a factory, because each file-backed database
    needs its own directory). The CLI's [--backend file] installs one so
    every database a subcommand builds — including those created deep
    inside figures or storms — lands on real files. [None] (the initial
    state) means [Sim]. *)

(** {1 Transactions} *)

val begin_txn : t -> Xid.t
(** Initiate and begin a fresh transaction (logs its begin record). *)

val commit : t -> Xid.t -> unit
(** Commit: commit record, log force, lock release, end record. Every
    update the transaction is responsible for — its own or delegated to
    it — becomes permanent. Raises {!Errors.Txn_not_active} as needed.

    With [Config.group_commit > 1] the per-commit force is replaced by a
    shared one: the commit joins a pending group and the log is forced
    once when the batch fills (or at {!flush_commits}, a checkpoint, a
    shutdown/backup quiesce, or as a side effect of any flush covering
    the group). Locks are still released and the transaction ends
    immediately — only {e durability} is deferred: a crash before the
    shared force loses the group's commit records and those transactions
    roll back at restart. Use {!set_commit_durable_hook} to learn when a
    commit actually hardened. *)

val flush_commits : t -> unit
(** Explicit group-commit barrier: force the log up to the highest
    pending commit record and notify every waiter. No-op when no commits
    are pending. *)

val set_commit_durable_hook : t -> (Xid.t -> unit) option -> unit
(** [f xid] fires exactly when [xid]'s commit record is known durable:
    synchronously inside {!commit} without group commit, at the closing
    force (or any covering flush) with it. Waiters lost to a crash never
    fire — their transactions roll back. Oracles that must track the set
    of durable commits even across log truncation hook in here. *)

val abort : t -> Xid.t -> unit
(** Roll back every update the transaction is responsible for (§3.5:
    CLRs over its scopes, sweeping the log backward no further than the
    oldest scope), then abort + end records. Updates it delegated away
    are untouched. *)

val is_active : t -> Xid.t -> bool

val savepoint : t -> Xid.t -> Lsn.t
(** Mark the current point in history (the log head). *)

val rollback_to : t -> Xid.t -> Lsn.t -> unit
(** Partial rollback: undo (with CLRs) every update the transaction is
    responsible for whose LSN is above the savepoint, leaving the
    transaction active. Updates invoked before the savepoint — it is a
    global point, so this includes updates later delegated in — are
    untouched; delegations {e out} performed after the savepoint are
    responsibility transfers, not updates, and are not reversed. *)

(** {1 Operations on objects} *)

val read : t -> Xid.t -> Oid.t -> int
(** S-lock then read. Raises {!Errors.Conflict} when blocked. *)

val write : t -> Xid.t -> Oid.t -> int -> unit
(** X-lock, log a [Set] with before/after images, apply in place. *)

val add : t -> Xid.t -> Oid.t -> int -> unit
(** Increment-lock, log an [Add] delta, apply in place. [Add]s commute,
    so several transactions may hold increment locks on one object —
    and each can delegate its own increments independently. *)

(** {1 Delegation and sharing} *)

val delegate : t -> from_:Xid.t -> to_:Xid.t -> Oid.t -> unit
(** [delegate(t1, t2, ob)]: transfer responsibility for every update on
    [ob] that [t1] is responsible for to [t2] (§3.5), together with
    [t1]'s lock on [ob]. Raises {!Errors.Not_responsible} if [t1] is not
    responsible for [ob], {!Errors.Txn_not_active} if either side is not
    active. *)

val delegate_update : t -> from_:Xid.t -> to_:Xid.t -> Oid.t -> Lsn.t -> unit
(** Operation-granularity delegation — the paper's general §2.1.2 model:
    transfer responsibility for the {e single} update identified by its
    LSN (as returned by a [write]/[add] at the time, or found in a
    scope). The covering scope is split around it. Only supported on the
    [Rh] and [Lazy] engines; raises [Invalid_argument] under [Eager]
    (whose physical surgery is object-granularity, like §3's
    implementation). Raises {!Errors.Not_responsible} if no scope of the
    delegator covers the operation. *)

val delegate_all : t -> from_:Xid.t -> to_:Xid.t -> unit
(** Delegate every object in the delegator's Ob_List (the [delegate
    (t2, t1)] form used by join and nested commit in §2.2). *)

val permit : t -> holder:Xid.t -> grantee:Xid.t -> unit
(** ASSET's [permit]: the grantee's lock requests ignore locks held by
    [holder]. Dies when either transaction terminates. *)

val responsible_objects : t -> Xid.t -> Oid.t list
(** The transaction's Ob_List (objects it is currently responsible
    for). *)

(** {1 Failure and recovery} *)

val checkpoint : t -> unit
(** Fuzzy checkpoint: begin/end records carrying the transaction table,
    dirty page table, and Ob_Lists with scopes; sets the master record. *)

val truncation_horizon : t -> Lsn.t
(** The oldest LSN any future restart or rollback could need: the
    minimum over the master checkpoint record, every dirty page's
    recLSN, and — with delegation — every live transaction's oldest
    {e scope} beginning. Delegated-in scopes reach back to updates whose
    invokers committed long ago, so delegation pins the log: the
    experiment harness measures this (E8). Returns [Lsn.nil] when no
    checkpoint has completed (nothing may be reclaimed yet). *)

val truncate_log : t -> int
(** Reclaim the log prefix below {!truncation_horizon}; returns how many
    records were discarded. *)

val set_external_pin : t -> Lsn.t -> unit
(** Extra truncation pin owned by an outer layer (combined with the
    media pins by {!truncate_log}): a {!Sharded} router pins each
    shard's log at the oldest in-flight transfer intent so restart
    resolution and home-table reconstruction can always read it.
    [Lsn.nil] (the initial value) removes the constraint. *)

(** {1 Cross-shard transfer primitives}

    The three forced system records of the [Sharded] two-phase
    migration protocol. Sequencing and resolution live in the router
    ([Ariesrh_shard.Sharded] / [Ariesrh_recovery.Xfer]); each primitive
    appends one record and forces the log through it. *)

val lock_holders : t -> Oid.t -> (Xid.t * Ariesrh_lock.Mode.t) list
(** Transactions currently holding a lock on the object (any mode). The
    router refuses to migrate an object that is locked. *)

val xfer_out :
  t -> xfer_id:int -> hop:int -> oid:Oid.t -> target:int -> value:int -> Lsn.t
(** Force the transfer intent on the source shard's log.
    Admission-checked: may raise [Ariesrh_wal.Log_store.Log_full], in
    which case nothing happened and the migration is simply abandoned. *)

val xfer_in :
  t -> xfer_id:int -> hop:int -> oid:Oid.t -> source:int -> value:int -> Lsn.t
(** Force the transfer record on the target shard's log and apply the
    carried value to the target page (page-LSN conditioned, exactly as
    the forward pass would redo it). The durable presence of this record
    is the commit point of the transfer. Admission-checked. *)

val xfer_end : t -> xfer_id:int -> oid:Oid.t -> committed:bool -> Lsn.t
(** Force the end record closing the intent on the source shard's log.
    Rides the reserved log headroom (like CLRs), so resolution never
    dies of [Log_full]. *)

(** {1 Log-space governance}

    With [Config.log_capacity_bytes] / [log_capacity_records] set, the
    WAL enforces admission: {!begin_txn}, {!write}, {!add}, {!delegate}
    and {!delegate_update} may raise [Ariesrh_wal.Log_store.Log_full].
    Rollback and resolution never do — every admitted update reserves
    space for its CLR up front, and every transaction reserves its
    Abort/End pair at begin. Delegation moves CLR reservations between
    transactions along with responsibility, so the guarantee survives
    arbitrary delegation chains and crash-restart. *)

val log_pressure : t -> float
(** [(used + reserved) / capacity] of the WAL, worse of the byte and
    record ratios; [0.] when unbounded. *)

val horizon_pinners : t -> (Xid.t * Lsn.t) list
(** Active transactions pinning the truncation horizon, each with the
    LSN it pins (its begin record or the start of its oldest scope,
    delegated-in scopes included), oldest pin first. Who to victimize
    when truncation cannot reclaim enough. *)

val set_backpressure : t -> begins:bool -> delegations:bool -> unit
(** Governor backpressure: with [begins] set, {!begin_txn} raises
    [Errors.Overloaded]; with [delegations] set, {!delegate} and
    {!delegate_update} do. Both flags reset on {!crash}. *)

val backpressure : t -> bool * bool
(** [(refuse_begins, refuse_delegations)]. *)

val crash : t -> unit
(** Lose all volatile state. Active transactions are gone; the log keeps
    its flushed prefix; the disk keeps previously written pages. *)

(** {1 Media recovery} *)

type backup
(** A fuzzy-free archive copy: {!backup} quiesces (flushes pages and
    log) and snapshots the disk image together with the LSN it is
    complete up to. *)

val backup : t -> backup
(** Also pins the log at the backup point (see {!truncate_log}): media
    replay needs every record from there forward, so truncation will not
    reclaim past it until {!release_backup_pin}. *)

val release_backup_pin : t -> unit
(** Drop the truncation pin the last {!backup} installed — the caller
    has discarded (or no longer trusts) the in-memory backup. After
    this, {!restore_media} with an old backup may legitimately raise
    [Errors.Log_truncated_past_backup]. *)

val backup_pin : t -> Lsn.t
(** The backup pin currently in force; [Lsn.nil] when none. *)

val media_failure : t -> unit
(** The data disk is destroyed (all pages zeroed) along with volatile
    state. The log device survives — as in ARIES, media recovery
    requires the log. *)

val restore_media : t -> backup -> Ariesrh_recovery.Report.t
(** Restore the archive image, roll it forward by replaying the log
    from the backup point (redo conditioned on page LSNs), then run
    normal restart recovery for the transactions in flight at the
    failure. Raises [Errors.Log_truncated_past_backup] if the log was
    truncated past the backup point (the records needed to roll forward
    are gone). *)

(** {1 The media archive}

    A durable copy of last resort ({!Ariesrh_storage.Archive}): a
    checksummed page snapshot plus a continuous copy of every sealed
    durable WAL record. While an archive is attached, {!truncate_log}
    pins reclamation behind the archive horizon — with continuous
    archiving on, [Errors.Log_truncated_past_backup] cannot happen —
    and catches the archive up before every truncation. *)

val attach_archive : ?dir:string -> t -> Ariesrh_storage.Archive.t
(** Create (or reopen, under [dir]) an archive matching this database's
    geometry, attach it, and copy the durable log in. *)

val set_archive : t -> Ariesrh_storage.Archive.t -> unit
(** Attach an existing archive. Raises [Invalid_argument] on a geometry
    mismatch or if one is already attached. *)

val archive : t -> Ariesrh_storage.Archive.t option

val archive_catchup : t -> int
(** Copy every newly-sealed durable record into the archive (never a
    record a pending torn flush may still amputate); returns how many
    were copied. Runs automatically on {!truncate_log} and from the
    governor's tick. Safe no-op without an archive. *)

val archived_upto : t -> int
(** Records with 0-based log index below this are archived ([0] without
    an archive). *)

val backup_to_archive : t -> Lsn.t
(** Quiesce, snapshot the full page image into the archive, and catch
    the WAL copy up: after this the archive alone rebuilds the exact
    committed state ({!restore_from_archive}). Returns the LSN the
    snapshot is complete up to. Raises [Invalid_argument] without an
    archive. *)

val restore_from_archive :
  t -> Ariesrh_storage.Archive.t -> Ariesrh_recovery.Report.t
(** Cold restore after {e total} media loss (data {e and} log devices):
    into a fresh, empty database of the same geometry, install the
    snapshot pages and the archived WAL, replay history since the
    snapshot (page-LSN conditioned), and run restart recovery. The
    archive is attached afterwards. Raises [Invalid_argument] if the
    database is not empty or the geometry differs, and
    [Archive.Archive_corrupt] if the archive holds no snapshot. *)

(** {1 The scrubber: detect, quarantine, heal}

    Incremental checksum sweeps over the three media: data pages (main
    {e and} doublewrite shadow, plus their agreement — two checksum-valid
    images that differ are the signature of a lost or misdirected
    write), the durable WAL (every record carries its own trailing
    checksum), and the archive's own files. Corruption is quarantined
    (traced, counted, listed) and healed from the best redundant source:
    a page from its shadow (or the archive snapshot) plus page-LSN
    conditioned replay via {!Ariesrh_recovery.Repair}; a WAL record
    from its archived copy; an archived frame from the live log. Heal
    I/O runs with the fault injector held off, so scrubbing never
    shifts a crash schedule. *)

type scrub_outcome = {
  checked : int;
  corrupt : int;  (** newly quarantined this sweep *)
  healed : int;
  unhealable : int;  (** left quarantined — no intact source *)
}

val scrub : t -> scrub_outcome
(** Full sweep: archive catchup, then pages, durable WAL, archive. *)

val scrub_pages : ?first:int -> ?count:int -> t -> scrub_outcome
(** Sweep [count] pages starting at page [first] (defaults: all). *)

val scrub_wal : ?first:int -> ?count:int -> t -> scrub_outcome
(** Sweep [count] durable records starting at 0-based absolute index
    [first] (clamped to the retained durable window; defaults: all). *)

val scrub_archive : t -> scrub_outcome
(** Recheck every archive checksum; heal from the live copies. *)

val quarantined : t -> (string * int) list
(** Corruption found but not healed, as [(target, id)] — [target] one of
    ["page"], ["wal"], ["archive-page"], ["archive-wal"]. A later sweep
    that heals the object removes it. *)

val media_counters : t -> int * int * int * int
(** [(checked, corrupt, heals, unhealable)] lifetime scrubber tallies —
    also exported as the [ariesrh_scrub_*] / [ariesrh_media_heals_total]
    metrics. *)

val recover : t -> Ariesrh_recovery.Report.t
(** Restart recovery per the configured implementation: [Rh] runs
    ARIES/RH; [Eager] runs conventional ARIES (the log was physically
    rewritten at delegation time); [Lazy] runs ARIES/RH plus the
    physical rewrite it models.

    With [Config.recovery_mode = On_demand], only the restart preamble
    and a pure analysis pass run before [recover] returns — cost bounded
    by the checkpoint interval — and the store opens for traffic
    immediately. Redo happens lazily per page (first touch or
    {!recovery_step}), undo lazily per loser; an access to an object a
    loser's scope still covers is refused with the retryable
    {!Errors.Recovering}. {!checkpoint} is a no-op, {!truncate_log}
    reclaims nothing, and whole-store media operations raise
    {!Errors.Recovery_incomplete} until the backlog drains
    ({!await_recovery}); [Config.audit]'s self-audit runs at
    convergence instead of at return. The returned report covers the
    analysis pass; undo work accrues afterwards.

    On every engine, restart first resolves rewrite system transactions
    ({!Ariesrh_recovery.Rewrite.recover_surgeries}): an un-ended eager
    chain surgery is rolled forward when its apply phase had completed
    and rolled back otherwise, so a crash at {e any} I/O point of a
    delegation leaves exactly the pre- or post-surgery log. If a
    degraded eager run ([rewrite_fallbacks]) left logical delegate
    records behind, recovery detects them and heals through the lazy
    path, splicing them physically; the engine leaves degraded mode.

    With [Config.audit] set, a self-audit pass ({!audit}) runs after
    recovery and raises [Ariesrh_recovery.Audit.Audit_failed] if the
    durable log violates a chain-closure invariant. *)

val audit : t -> string list
(** Walk the durable log and check the restart invariants (strictly
    decreasing chains, CLR targets, surgery bracketing, re-attribution
    provenance); returns the violations, [[]] when clean. {!recover}
    runs this automatically — and raises — when [Config.audit] is
    set. *)

val degraded : t -> bool
(** The store is up but not fully itself: the eager engine fell back to
    a logical delegate record (scope-based rollback is in force until
    the next {!recover} heals the log), or an on-demand restart is
    still draining its backlog ({!recovering}). *)

val recovering : t -> bool
(** An [On_demand] restart has opened the store but not yet drained its
    backlog. *)

val recovery_backlog : t -> int
(** Remaining on-demand restart work: pages awaiting their redo slice
    plus losers awaiting undo ([0] when not {!recovering}; also the
    [ariesrh_recovery_backlog] gauge). *)

val recovery_step : t -> bool
(** One unit of background drain (deterministic order: oldest loser,
    else lowest pending page); returns whether the store is {e still}
    recovering. The governor calls this from its tick. *)

val await_recovery : t -> unit
(** Drain the whole backlog, then finalize: flush, and run the deferred
    self-audit when [Config.audit] is set. No-op when not recovering. *)

val recovery_served_degraded : t -> int
(** Lifetime count of transactional accesses served while an on-demand
    restart was draining (also the
    [ariesrh_recovery_served_degraded_total] metric). *)

val rewrite_fallbacks : t -> int
(** How many eager delegations fell back to logical delegate records
    (also exported as the [ariesrh_rewrite_fallbacks_total] metric). *)

val recover_with_fuel :
  t -> fuel:int -> [ `Done of Ariesrh_recovery.Report.t | `Interrupted ]
(** Like {!recover} but (for [Rh] only) the backward pass dies after
    [fuel] CLRs, as if the machine crashed mid-recovery. On
    [`Interrupted], call {!crash} and recover again. *)

val shutdown : t -> unit
(** Clean stop: flush the log and all dirty pages (and on the file
    backend, sync the page file). Does not release file descriptors —
    see {!close}. *)

val close : t -> unit
(** Release the file backend's descriptors (idempotent; no-op on sim).
    The database must not be used afterwards. Distinct from {!shutdown}
    so harnesses can flush state yet keep operating the same handle. *)

(** {1 Inspection (tests, figures, experiments)} *)

val peek : t -> Oid.t -> int
(** Current value of an object, bypassing transactions and locks. While
    {!recovering}, peek never refuses: it repairs in the foreground
    (lands the page's redo slice, drains every covering loser) so the
    committed value is always inspectable. *)

val peek_all : t -> int array
(** Values of all objects in oid order. *)

val stable_value : t -> Oid.t -> int
(** Value on disk, ignoring the buffer pool — what a crash would leave
    behind before recovery. *)

val log_store : t -> Ariesrh_wal.Log_store.t

val disk_stats : t -> Ariesrh_storage.Disk.stats

val pool_counters : t -> int * int * int
(** (hits, misses, evictions) of the buffer pool. *)

val env : t -> Ariesrh_recovery.Env.t

val repairs_total : t -> int
(** Lifetime count of torn data pages repaired on fetch (normal
    operation and restart alike); see [Ariesrh_recovery.Repair.page]. *)

val place : t -> Oid.t -> Page_id.t * int
val chain_of : t -> Xid.t -> Lsn.t list
(** The live transaction's backward chain, head first. *)

val scopes_of : t -> Xid.t -> Oid.t -> Ariesrh_txn.Scope.t list
val active_count : t -> int
val last_lsn_of : t -> Xid.t -> Lsn.t

type history_event =
  | Updated of { lsn : Lsn.t; invoker : Xid.t; op : Ariesrh_wal.Record.op }
  | Delegated of {
      lsn : Lsn.t;
      from_ : Xid.t;
      to_ : Xid.t;
      op_lsn : Lsn.t option;  (** operation-granularity delegations *)
    }
  | Compensated of { lsn : Lsn.t; by : Xid.t; undone : Lsn.t }

val object_history : t -> Oid.t -> history_event list
(** Everything the log records about one object, oldest first: its
    updates, the delegations that rewrote their responsibility, and the
    compensations that undid them. The story ARIES/RH {e interprets}
    instead of rewriting, made visible (also: the [history] subcommand
    of the CLI). *)

val responsible_now : t -> Oid.t -> (Xid.t * Xid.t) list
(** Current (responsible transaction, invoker) pairs over the live
    scopes on the object, across all active transactions. *)

val validate : t -> (unit, string) result
(** Structural self-check of the live engine state:
    {ul
    {- live scopes lie within the log and, per (invoker, object), never
       overlap across Ob_Lists — the §3.5 remark's invariant;}
    {- every lock is held by a live transaction, and incompatible modes
       never coexist on one object;}
    {- every live transaction's backward chain walks to its beginning
       with strictly decreasing LSNs.}}
    Used by the property suite after random workloads. *)
