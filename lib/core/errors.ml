open Ariesrh_types

exception Conflict of { requester : Xid.t; holders : Xid.t list }
exception No_such_txn of Xid.t
exception Txn_not_active of Xid.t
exception Not_responsible of { xid : Xid.t; oid : Oid.t }

let pp_exn ppf = function
  | Conflict { requester; holders } ->
      Format.fprintf ppf "lock conflict: %a blocked by %a" Xid.pp requester
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Xid.pp)
        holders
  | No_such_txn x -> Format.fprintf ppf "no such transaction: %a" Xid.pp x
  | Txn_not_active x -> Format.fprintf ppf "transaction not active: %a" Xid.pp x
  | Not_responsible { xid; oid } ->
      Format.fprintf ppf "%a is not responsible for %a" Xid.pp xid Oid.pp oid
  | Ariesrh_wal.Log_store.Corrupt_record { lsn; error } ->
      Format.fprintf ppf "corrupt log record at %a: %a" Lsn.pp lsn
        Ariesrh_wal.Record.pp_decode_error error
  | Ariesrh_storage.Buffer_pool.Torn_page pid ->
      Format.fprintf ppf "torn data page %a (checksum failed, no repair)"
        Page_id.pp pid
  | Ariesrh_fault.Fault.Injected_crash { io; site } ->
      Format.fprintf ppf "injected crash at io #%d (%a)" io
        Ariesrh_fault.Fault.pp_site site
  | e -> Format.pp_print_string ppf (Printexc.to_string e)
