open Ariesrh_types

exception Conflict of { requester : Xid.t; holders : Xid.t list }
exception No_such_txn of Xid.t
exception Txn_not_active of Xid.t
exception Not_responsible of { xid : Xid.t; oid : Oid.t }

type overload_reason = Begin_refused | Delegation_refused

exception Overloaded of { xid : Xid.t option; reason : overload_reason }
exception Log_truncated_past_backup of { backup : Lsn.t; retained : Lsn.t }
exception Unsupported_by_engine of { op : string; impl : string }

exception Archive_lagging of { durable : Lsn.t; archived : Lsn.t }
(** Continuous WAL archiving fell further behind the durable head than
    the configured bound; admission backpressure until it catches up. *)

exception Xfer_refused of { oid : Oid.t; holders : Xid.t list }
(** A cross-shard migration was refused because live transactions still
    hold locks on the object; retry after they finish. Migration only
    moves durably committed state, so it never preempts a lock. *)

exception Recovering of { oid : Oid.t; backlog : int }
(** On-demand restart: the object is still covered by an unresolved
    loser transaction's scope, so serving it now would expose
    uncommitted state. Retryable — the backlog shrinks with every
    sweeper step, and the refusal clears once the covering losers are
    undone. *)

exception Recovery_incomplete of { backlog : int }
(** A whole-store operation (backup, scrub, restore, media swap) was
    asked for while an on-demand restart is still draining its backlog;
    retry after [Db.await_recovery]. *)

exception Media_unhealable of { target : string; id : int }
(** The scrubber found corruption it could not repair from any source
    (shadow, archive snapshot, archived WAL) — the object stays
    quarantined. *)

exception
  History_unavailable of {
    lsn : Lsn.t;
    available_from : Lsn.t;
    available_upto : Lsn.t;
  }
(** A time-travel query asked for a point the durable history no longer
    (or does not yet) covers: [lsn] lies outside
    [[available_from, available_upto]], and neither the live log nor an
    attached archive bridges the gap. Raised by [Temporal] instead of
    ever answering from a silently partial prefix. *)

let history_unavailable ~lsn ~available_from ~available_upto =
  raise (History_unavailable { lsn; available_from; available_upto })

let pp_overload_reason ppf = function
  | Begin_refused ->
      Format.pp_print_string ppf "new transactions refused under log pressure"
  | Delegation_refused ->
      Format.pp_print_string ppf "delegations refused under log pressure"

let pp_exn ppf = function
  | Conflict { requester; holders } ->
      Format.fprintf ppf "lock conflict: %a blocked by %a" Xid.pp requester
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Xid.pp)
        holders
  | No_such_txn x -> Format.fprintf ppf "no such transaction: %a" Xid.pp x
  | Txn_not_active x -> Format.fprintf ppf "transaction not active: %a" Xid.pp x
  | Not_responsible { xid; oid } ->
      Format.fprintf ppf "%a is not responsible for %a" Xid.pp xid Oid.pp oid
  | Overloaded { xid; reason } ->
      Format.fprintf ppf "overloaded%a: %a"
        (fun ppf -> function
          | None -> ()
          | Some x -> Format.fprintf ppf " (%a)" Xid.pp x)
        xid pp_overload_reason reason
  | Log_truncated_past_backup { backup; retained } ->
      Format.fprintf ppf
        "log truncated past the backup point (backup at %a, log retained \
         from %a)"
        Lsn.pp backup Lsn.pp retained
  | Unsupported_by_engine { op; impl } ->
      Format.fprintf ppf "%s is not supported by the %s engine" op impl
  | Archive_lagging { durable; archived } ->
      Format.fprintf ppf
        "WAL archiving lagging (durable at %a, archived up to %a); \
         admission refused until the archiver catches up"
        Lsn.pp durable Lsn.pp archived
  | Xfer_refused { oid; holders } ->
      Format.fprintf ppf
        "cross-shard transfer of %a refused: locks held by %a" Oid.pp oid
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Xid.pp)
        holders
  | Recovering { oid; backlog } ->
      Format.fprintf ppf
        "still recovering %a: a loser transaction's scope covers it \
         (restart backlog %d); retry after the sweep"
        Oid.pp oid backlog
  | Recovery_incomplete { backlog } ->
      Format.fprintf ppf
        "restart recovery incomplete (backlog %d); retry once the \
         on-demand sweep has drained"
        backlog
  | Media_unhealable { target; id } ->
      Format.fprintf ppf
        "unhealable media corruption: %s %d has no intact source \
         (shadow, archive snapshot or archived WAL)"
        target id
  | History_unavailable { lsn; available_from; available_upto } ->
      Format.fprintf ppf
        "history unavailable at %a: durable history covers %a..%a \
         (truncated prefix not bridged by any archive)"
        Lsn.pp lsn Lsn.pp available_from Lsn.pp available_upto
  | Ariesrh_storage.Archive.Archive_corrupt { path; what } ->
      Format.fprintf ppf "media archive corrupt: %s (%s)" path what
  | Ariesrh_wal.Log_store.Log_full { dimension; need; used; reserved; capacity }
    ->
      Format.fprintf ppf
        "log full: need %d %a, %d used + %d reserved of %d" need
        Ariesrh_wal.Log_store.pp_dimension dimension used reserved capacity
  | Ariesrh_wal.Log_store.Corrupt_record { lsn; error } ->
      Format.fprintf ppf "corrupt log record at %a: %a" Lsn.pp lsn
        Ariesrh_wal.Record.pp_decode_error error
  | Ariesrh_storage.Buffer_pool.Torn_page pid ->
      Format.fprintf ppf "torn data page %a (checksum failed, no repair)"
        Page_id.pp pid
  | Ariesrh_storage.Backend.Io_error { op; path; error } ->
      Format.fprintf ppf "storage backend I/O error: %s on %s: %s" op path
        (Unix.error_message error)
  | Ariesrh_wal.Log_device.Wal_frame_corrupt { offset; expected; got } ->
      Format.fprintf ppf
        "WAL frame corrupt away from the tail at byte %d (expected %d, got \
         %d)"
        offset expected got
  | Ariesrh_fault.Fault.Injected_crash { io; site } ->
      Format.fprintf ppf "injected crash at io #%d (%a)" io
        Ariesrh_fault.Fault.pp_site site
  | Ariesrh_recovery.Audit.Audit_failed violations ->
      Format.fprintf ppf "restart self-audit failed (%d violation%s):@ %a"
        (List.length violations)
        (if List.length violations = 1 then "" else "s")
        (Format.pp_print_list ~pp_sep:Format.pp_print_space
           Format.pp_print_string)
        violations
  | Ariesrh_recovery.Rewrite.Surgery_corrupt msg ->
      Format.fprintf ppf "rewrite surgery protocol violated: %s" msg
  | e -> Format.pp_print_string ppf (Printexc.to_string e)
