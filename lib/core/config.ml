type delegation_impl = Rh | Eager | Lazy

type forward_passes = Merged | Separate

type recovery_mode = Offline | On_demand

type t = {
  n_objects : int;
  objects_per_page : int;
  buffer_capacity : int;
  log_page_size : int;
  impl : delegation_impl;
  forward_passes : forward_passes;
  locking : bool;
  log_capacity_bytes : int option;
  log_capacity_records : int option;
  group_commit : int;
  record_cache : int;
  audit : bool;
  rewrite_retries : int;
  max_archive_lag : int;
      (* with continuous WAL archiving attached: how many durable records
         the live log may run ahead of the archive before admission
         raises [Archive_lagging]. 0 = no backpressure. *)
  shards : int;
      (* shard count for [Sharded.create]: objects are hash-partitioned
         across this many independent engines (per-shard WAL, buffer
         pool, lock table). A plain [Db] ignores it; 1 = no sharding. *)
  recovery_mode : recovery_mode;
      (* Offline: [Db.recover] runs the full three-pass restart before
         returning. On_demand: restart runs analysis only, opens for
         traffic immediately, and redoes/undoes lazily (first touch +
         background sweeper); unreachable objects refuse with
         [Errors.Recovering]. *)
}

let default =
  {
    n_objects = 1024;
    objects_per_page = 8;
    buffer_capacity = 32;
    log_page_size = 4096;
    impl = Rh;
    forward_passes = Merged;
    locking = true;
    log_capacity_bytes = None;
    log_capacity_records = None;
    group_commit = 0;
    record_cache = 8192;
    audit = false;
    rewrite_retries = 2;
    max_archive_lag = 0;
    shards = 1;
    recovery_mode = Offline;
  }

let make ?(n_objects = default.n_objects)
    ?(objects_per_page = default.objects_per_page)
    ?(buffer_capacity = default.buffer_capacity)
    ?(log_page_size = default.log_page_size) ?(impl = default.impl)
    ?(forward_passes = default.forward_passes) ?(locking = default.locking)
    ?log_capacity_bytes ?log_capacity_records
    ?(group_commit = default.group_commit)
    ?(record_cache = default.record_cache) ?(audit = default.audit)
    ?(rewrite_retries = default.rewrite_retries)
    ?(max_archive_lag = default.max_archive_lag)
    ?(shards = default.shards) ?(recovery_mode = default.recovery_mode) () =
  {
    n_objects;
    objects_per_page;
    buffer_capacity;
    log_page_size;
    impl;
    forward_passes;
    locking;
    log_capacity_bytes;
    log_capacity_records;
    group_commit;
    record_cache;
    audit;
    rewrite_retries;
    max_archive_lag;
    shards;
    recovery_mode;
  }

let pages_needed t = (t.n_objects + t.objects_per_page - 1) / t.objects_per_page

let validate t =
  if t.n_objects <= 0 then invalid_arg "Config: n_objects must be positive";
  if t.objects_per_page <= 0 then
    invalid_arg "Config: objects_per_page must be positive";
  if t.buffer_capacity <= 0 then
    invalid_arg "Config: buffer_capacity must be positive";
  if t.log_page_size <= 0 then
    invalid_arg "Config: log_page_size must be positive";
  (match t.log_capacity_bytes with
  | Some c when c <= 0 ->
      invalid_arg "Config: log_capacity_bytes must be positive"
  | _ -> ());
  (match t.log_capacity_records with
  | Some c when c <= 0 ->
      invalid_arg "Config: log_capacity_records must be positive"
  | _ -> ());
  if t.group_commit < 0 then
    invalid_arg "Config: group_commit must be non-negative";
  if t.record_cache < 0 then
    invalid_arg "Config: record_cache must be non-negative";
  if t.rewrite_retries < 0 then
    invalid_arg "Config: rewrite_retries must be non-negative";
  if t.max_archive_lag < 0 then
    invalid_arg "Config: max_archive_lag must be non-negative";
  if t.shards < 1 then invalid_arg "Config: shards must be at least 1"
