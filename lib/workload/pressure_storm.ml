open Ariesrh_types
open Ariesrh_core
module Fault = Ariesrh_fault.Fault
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Prng = Ariesrh_util.Prng
module Governor = Ariesrh_maintenance.Governor
module Temporal = Ariesrh_temporal.Temporal

type config = {
  seed : int64;
  impl : Config.delegation_impl;
  clients : int;
  steps : int;
  ops_per_txn : int;
  n_objects : int;
  p_delegate : float;
  capacity_bytes : int;
  crash_every : int;
  recovery_crash_depth : int;
  recovery_crash_gap : int;
  squeeze_every : int;
  squeeze_keep : float;
  max_squeezes : int;
  governor : Governor.config;
  backoff_base : int;
  max_backoff : int;
  max_retries : int;
  group_commit : int;
  record_cache : int;
  audit : bool;
  time_travel : bool;
  forensic_dir : string option;
  backend_root : string option;
}

let default_config =
  {
    seed = 1L;
    impl = Config.Rh;
    clients = 4;
    steps = 800;
    ops_per_txn = 6;
    n_objects = 48;
    p_delegate = 0.25;
    capacity_bytes = 6144;
    crash_every = 40;
    recovery_crash_depth = 1;
    recovery_crash_gap = 3;
    squeeze_every = 120;
    squeeze_keep = 0.9;
    max_squeezes = 3;
    governor = Governor.default_config;
    backoff_base = 4;
    max_backoff = 64;
    max_retries = 10;
    group_commit = 0;
    record_cache = Config.default.Config.record_cache;
    audit = true;
    time_travel = true;
    forensic_dir = None;
    backend_root = None;
  }

type outcome = {
  mutable steps_run : int;
  mutable committed : int;
  mutable aborted : int;
  mutable delegations : int;
  mutable overloads : int;
  mutable log_fulls : int;
  mutable backoffs : int;
  mutable abandoned : int;
  mutable victimized : int;
  mutable crashes : int;
  mutable nested_crashes : int;
  mutable recoveries : int;
  mutable squeezes : int;
  mutable checks : int;
  mutable drain_commits : int;
  mutable gov_ticks : int;
  mutable gov_checkpoints : int;
  mutable gov_truncations : int;
  mutable gov_records_truncated : int;
  mutable gov_victims : int;
  mutable reservations : int;
  mutable admission_rejects : int;
  mutable peak_pressure : float;
  mutable tt_reads : int;
  mutable tt_refused : int;
  mutable failures : string list;
}

let fresh_outcome () =
  {
    steps_run = 0;
    committed = 0;
    aborted = 0;
    delegations = 0;
    overloads = 0;
    log_fulls = 0;
    backoffs = 0;
    abandoned = 0;
    victimized = 0;
    crashes = 0;
    nested_crashes = 0;
    recoveries = 0;
    squeezes = 0;
    checks = 0;
    drain_commits = 0;
    gov_ticks = 0;
    gov_checkpoints = 0;
    gov_truncations = 0;
    gov_records_truncated = 0;
    gov_victims = 0;
    reservations = 0;
    admission_rejects = 0;
    peak_pressure = 0.;
    tt_reads = 0;
    tt_refused = 0;
    failures = [];
  }

let ok o = o.failures = []
let fail o msg = o.failures <- msg :: o.failures

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>steps=%d committed=%d aborted=%d delegations=%d@ overloads=%d \
     log_fulls=%d backoffs=%d abandoned=%d victimized=%d@ crashes=%d \
     nested=%d recoveries=%d squeezes=%d checks=%d drain_commits=%d@ \
     governor: ticks=%d checkpoints=%d truncations=%d records_truncated=%d \
     victims=%d@ log: reservations=%d admission_rejects=%d \
     peak_pressure=%.2f@ tt_reads=%d tt_refused=%d failures=%d%a@]"
    o.steps_run o.committed o.aborted o.delegations o.overloads o.log_fulls
    o.backoffs o.abandoned o.victimized o.crashes o.nested_crashes
    o.recoveries o.squeezes o.checks o.drain_commits o.gov_ticks
    o.gov_checkpoints o.gov_truncations o.gov_records_truncated o.gov_victims
    o.reservations o.admission_rejects o.peak_pressure o.tt_reads o.tt_refused
    (List.length o.failures)
    (fun ppf -> function
      | [] -> ()
      | fs ->
          List.iter (fun f -> Format.fprintf ppf "@   FAIL %s" f) (List.rev fs))
    o.failures

type client = {
  mutable xid : Xid.t option;
  mutable ops_left : int;
  mutable touched : int list;
  mutable backoff_until : int;
  mutable attempts : int;
}

(* Transactions whose commit records are durable — scanned after a crash,
   when only the stable prefix remains. Unlike the crash storm, the
   governor truncates the log while the storm runs, so commit records
   disappear; the harness accumulates this set monotonically (scan at
   every crash + the commit-durable hook below) instead of re-deriving
   it from the log each time. *)
let durable_commits log =
  let s = ref Xid.Set.empty in
  ignore
    (Log_store.iter_valid_forward log ~from:(Log_store.truncated_below log)
       (fun _ r ->
         match r.Record.body with
         | Record.Commit -> s := Xid.Set.add (Record.writer_exn r) !s
         | _ -> ()));
  !s

let run ?(config = default_config) () =
  let outcome = fresh_outcome () in
  let fault = Fault.create ~seed:config.seed () in
  Fault.set_tear_log_on_crash fault true;
  let backend =
    match config.backend_root with
    | None -> Ariesrh_storage.Backend.Sim
    | Some root ->
        let dir = Filename.concat root "pressure-storm" in
        Ariesrh_storage.Backend.remove_tree dir;
        Ariesrh_storage.Backend.File { dir }
  in
  let db =
    Db.create ~fault ~backend
      ~tracing:(config.forensic_dir <> None)
      (Config.make ~n_objects:config.n_objects ~objects_per_page:8
         ~buffer_capacity:(max 4 (config.n_objects / 32))
         ~impl:config.impl ~locking:true
         ~log_capacity_bytes:config.capacity_bytes
         ~group_commit:config.group_commit ~record_cache:config.record_cache
         ~audit:config.audit ())
  in
  let log = Db.log_store db in
  let gov = Governor.create ~config:config.governor db in
  let rng = Prng.create (Int64.add config.seed 1031L) in
  let clients =
    Array.init config.clients (fun _ ->
        { xid = None; ops_left = 0; touched = []; backoff_until = 0;
          attempts = 0 })
  in
  (* responsibility ledger, as in the crash storm: engine xid ->
     increments it would contribute if it committed; entries move on
     delegation *)
  let ledger : (int * int) list Xid.Tbl.t = Xid.Tbl.create 64 in
  let ledger_of x =
    match Xid.Tbl.find_opt ledger x with Some l -> l | None -> []
  in
  let ledger_add x o d = Xid.Tbl.replace ledger x ((o, d) :: ledger_of x) in
  let ledger_move ~from_ ~to_ o =
    let moved, kept =
      List.partition (fun (o', _) -> o' = o) (ledger_of from_)
    in
    Xid.Tbl.replace ledger from_ kept;
    Xid.Tbl.replace ledger to_ (moved @ ledger_of to_)
  in
  let committed_set = ref Xid.Set.empty in
  (* A commit enters the set exactly when its commit record hardens: the
     hook fires synchronously inside [Db.commit] without group commit,
     and at the shared (or any covering) force with it — always before
     the governor could truncate the record away. Commits whose group
     dies with a crash never fire and roll back, so the set stays the
     exact durable-commit oracle either way. *)
  Db.set_commit_durable_hook db
    (Some (fun x -> committed_set := Xid.Set.add x !committed_set));
  let absorb_commits () =
    committed_set := Xid.Set.union !committed_set (durable_commits log)
  in
  let expected () =
    let v = Array.make config.n_objects 0 in
    Xid.Tbl.iter
      (fun x entries ->
        if Xid.Set.mem x !committed_set then
          List.iter (fun (o, d) -> v.(o) <- v.(o) + d) entries)
      ledger;
    v
  in
  let note_pressure () =
    let p = Db.log_pressure db in
    if p > outcome.peak_pressure then outcome.peak_pressure <- p
  in
  let now = ref 0 in
  (* bounded deterministic retry, as in [Sim] *)
  let backoff c =
    c.attempts <- c.attempts + 1;
    if c.attempts > config.max_retries then begin
      outcome.abandoned <- outcome.abandoned + 1;
      c.attempts <- 0
    end
    else begin
      outcome.backoffs <- outcome.backoffs + 1;
      c.backoff_until <-
        !now
        + min config.max_backoff
            (config.backoff_base * (1 lsl min 16 (c.attempts - 1)))
    end
  in
  (* rollback must never die of log pressure: a [Log_full] out of abort
     is precisely the storm's failure condition *)
  let abort_checked x =
    match Db.abort db x with
    | () -> outcome.aborted <- outcome.aborted + 1
    | exception Log_store.Log_full _ ->
        fail outcome
          (Printf.sprintf "step %d: rollback of %s raised Log_full" !now
             (Format.asprintf "%a" Xid.pp x))
    | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
        outcome.victimized <- outcome.victimized + 1
  in
  let drop_txn c = c.xid <- None; c.touched <- [] in
  let other_active self =
    let cands = ref [] in
    Array.iteri
      (fun i c ->
        match c.xid with
        | Some x when i <> self -> cands := (i, x) :: !cands
        | _ -> ())
      clients;
    match !cands with
    | [] -> None
    | l -> Some (List.nth l (Prng.int rng (List.length l)))
  in
  let step ~allow_begin self =
    let c = clients.(self) in
    if !now >= c.backoff_until then
      match c.xid with
      | None when not allow_begin -> ()
      | None -> (
          match Db.begin_txn db with
          | x ->
              c.xid <- Some x;
              c.ops_left <- 1 + Prng.int rng config.ops_per_txn;
              c.touched <- []
          | exception Errors.Overloaded _ ->
              outcome.overloads <- outcome.overloads + 1;
              backoff c
          | exception Log_store.Log_full _ ->
              outcome.log_fulls <- outcome.log_fulls + 1;
              backoff c)
      | Some x when c.ops_left > 0 -> (
          c.ops_left <- c.ops_left - 1;
          let delegate_now =
            c.touched <> [] && Prng.float rng 1.0 < config.p_delegate
          in
          match (if delegate_now then other_active self else None) with
          | Some (yi, y) -> (
              let o =
                List.nth c.touched (Prng.int rng (List.length c.touched))
              in
              match Db.delegate db ~from_:x ~to_:y (Oid.of_int o) with
              | () ->
                  outcome.delegations <- outcome.delegations + 1;
                  ledger_move ~from_:x ~to_:y o;
                  c.touched <- List.filter (fun o' -> o' <> o) c.touched;
                  clients.(yi).touched <- o :: clients.(yi).touched
              | exception Errors.Overloaded _ ->
                  (* optional work refused under backpressure: keep the
                     responsibility and move on *)
                  outcome.overloads <- outcome.overloads + 1
              | exception Log_store.Log_full _ ->
                  outcome.log_fulls <- outcome.log_fulls + 1
              | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
                  (* this txn or the target was victimized *)
                  outcome.victimized <- outcome.victimized + 1;
                  if not (Db.is_active db x) then drop_txn c;
                  backoff c)
          | None -> (
              let o = Prng.int rng config.n_objects in
              let d = 1 + Prng.int rng 9 in
              match Db.add db x (Oid.of_int o) d with
              | () ->
                  ledger_add x o d;
                  if not (List.mem o c.touched) then c.touched <- o :: c.touched
              | exception Log_store.Log_full _ ->
                  outcome.log_fulls <- outcome.log_fulls + 1;
                  abort_checked x;
                  drop_txn c;
                  backoff c
              | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
                  outcome.victimized <- outcome.victimized + 1;
                  drop_txn c;
                  backoff c))
      | Some x -> (
          match
            if Prng.int rng 10 = 0 then `Aborted (abort_checked x)
            else `Committed (Db.commit db x)
          with
          | `Committed () ->
              outcome.committed <- outcome.committed + 1;
              c.attempts <- 0;
              drop_txn c
          | `Aborted () -> drop_txn c
          | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
              outcome.victimized <- outcome.victimized + 1;
              drop_txn c;
              backoff c)
  in
  let reset_clients () =
    Array.iter
      (fun c ->
        c.xid <- None;
        c.ops_left <- 0;
        c.touched <- [];
        c.backoff_until <- 0;
        c.attempts <- 0)
      clients
  in
  (* restart under continued fault injection, with nested re-crashes *)
  let recover_until_stable () =
    let rec go depth =
      if depth < config.recovery_crash_depth then
        Fault.arm_crash_in fault config.recovery_crash_gap
      else Fault.disarm_crash fault;
      match Db.recover db with
      | _report ->
          Fault.disarm_crash fault;
          outcome.recoveries <- outcome.recoveries + 1;
          Ok ()
      | exception Fault.Injected_crash _
        when depth <= config.recovery_crash_depth ->
          outcome.nested_crashes <- outcome.nested_crashes + 1;
          Db.crash db;
          absorb_commits ();
          go (depth + 1)
      | exception e ->
          (* restart must survive a bounded log: Log_full (or anything
             else) escaping recovery fails the storm *)
          Error (Printexc.to_string e)
    in
    go 0
  in
  (* Analytic time-travel readers over the pressure-governed log. Two
     regimes, decided by {!Temporal.coverage}: while the governor has
     not truncated yet, every [Temporal.snapshot_at] at a durable commit
     LSN must equal the responsibility ledger filtered by commit-LSN
     (same soundness argument as the crash storm: a ledger entry's
     holder at L either committed at or below L on both sides, or
     delegated onward above L and is excluded on both sides). Once the
     governor truncates — no archive is ever attached here — every read
     must refuse with the typed [History_unavailable], never return a
     silently partial reconstruction. Caller has faults gated off. *)
  let time_travel_check ~label ~pp_arr () =
    match Temporal.coverage db with
    | exception e ->
        fail outcome
          (Printf.sprintf "%s: tt coverage raised %s" label
             (Printexc.to_string e))
    | cov when Lsn.compare cov.Temporal.from_ Lsn.first > 0 ->
        List.iter
          (fun l ->
            outcome.tt_reads <- outcome.tt_reads + 1;
            match Temporal.snapshot_at db l with
            | (_ : int array) ->
                fail outcome
                  (Printf.sprintf
                     "%s: tt read at %s answered despite truncated \
                      unbridged history"
                     label
                     (Format.asprintf "%a" Lsn.pp l))
            | exception Errors.History_unavailable _ ->
                outcome.tt_refused <- outcome.tt_refused + 1
            | exception e ->
                fail outcome
                  (Printf.sprintf "%s: tt read at %s raised %s" label
                     (Format.asprintf "%a" Lsn.pp l)
                     (Printexc.to_string e)))
          [ Lsn.first; cov.Temporal.upto ]
    | _ ->
        let cps = Temporal.commit_points db in
        let commit_lsn = Xid.Tbl.create 64 in
        List.iter
          (fun (l, x) ->
            if not (Xid.Tbl.mem commit_lsn x) then Xid.Tbl.add commit_lsn x l)
          cps;
        let expected_at l =
          let v = Array.make config.n_objects 0 in
          Xid.Tbl.iter
            (fun x entries ->
              match Xid.Tbl.find_opt commit_lsn x with
              | Some cl when Lsn.compare cl l <= 0 ->
                  List.iter (fun (o, d) -> v.(o) <- v.(o) + d) entries
              | _ -> ())
            ledger;
          v
        in
        let n = List.length cps in
        let limit = 6 in
        let stride = if n <= limit then 1 else (n + limit - 1) / limit in
        List.iteri
          (fun i (l, _) ->
            if i mod stride = 0 || i = n - 1 then begin
              outcome.tt_reads <- outcome.tt_reads + 1;
              let want = expected_at l in
              match Temporal.snapshot_at db l with
              | got ->
                  if got <> want then
                    fail outcome
                      (Printf.sprintf
                         "%s: tt state at %s: got [%s] want [%s]" label
                         (Format.asprintf "%a" Lsn.pp l)
                         (pp_arr got) (pp_arr want))
              | exception e ->
                  fail outcome
                    (Printf.sprintf "%s: tt read at %s raised %s" label
                       (Format.asprintf "%a" Lsn.pp l)
                       (Printexc.to_string e))
            end)
          cps
  in
  let check_state label =
    Fault.set_enabled fault false;
    outcome.checks <- outcome.checks + 1;
    let want = expected () in
    let peek () =
      Array.init config.n_objects (fun i -> Db.peek db (Oid.of_int i))
    in
    let pp_arr a =
      String.concat ";" (Array.to_list (Array.map string_of_int a))
    in
    let got = peek () in
    if got <> want then
      fail outcome
        (Printf.sprintf "%s: state mismatch: got [%s] want [%s]" label
           (pp_arr got) (pp_arr want));
    (match Db.validate db with
    | Ok () -> ()
    | Error msg -> fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
    (match Db.crash db; Db.recover db with
    | _ ->
        outcome.recoveries <- outcome.recoveries + 1;
        if peek () <> want then
          fail outcome (Printf.sprintf "%s: restart not idempotent" label)
    | exception e ->
        fail outcome
          (Printf.sprintf "%s: re-restart raised %s" label
             (Printexc.to_string e)));
    if config.time_travel then time_travel_check ~label ~pp_arr ();
    Fault.set_enabled fault true
  in
  (* best-effort forensic dump when a check round added failures; never
     allowed to take the storm down (the db may be wedged mid-restart) *)
  let maybe_dump ~fail_before ~tag =
    match config.forensic_dir with
    | Some dir when List.length outcome.failures > fail_before ->
        Fault.set_enabled fault false;
        let fresh =
          List.filteri
            (fun i _ -> i < List.length outcome.failures - fail_before)
            outcome.failures
        in
        (try
           ignore
             (Forensics.write ~dir ~kind:"pressure" ~seed:config.seed ~tag
                ~expected:(expected ()) ~failures:fresh db)
         with _ -> ());
        Fault.set_enabled fault true
    | _ -> ()
  in
  let fatal = ref false in
  let handle_crash () =
    outcome.crashes <- outcome.crashes + 1;
    Db.crash db;
    absorb_commits ();
    let fail_before = List.length outcome.failures in
    (match recover_until_stable () with
    | Error msg ->
        (* the db never came back up — nothing after this is meaningful *)
        fail outcome (Printf.sprintf "crash #%d: %s" outcome.crashes msg);
        fatal := true
    | Ok () ->
        absorb_commits ();
        check_state (Printf.sprintf "crash #%d" outcome.crashes);
        Governor.note_crash gov;
        reset_clients ();
        if config.crash_every > 0 then
          Fault.arm_crash_in fault config.crash_every);
    maybe_dump ~fail_before ~tag:(Printf.sprintf "crash%d" outcome.crashes)
  in
  let maybe_arm_squeeze () =
    if
      config.squeeze_every > 0
      && (Fault.stats fault).Fault.squeezes < config.max_squeezes
      && not (Fault.squeeze_armed fault)
    then
      Fault.arm_squeeze_in fault ~appends:config.squeeze_every
        ~keep:config.squeeze_keep
  in
  let run_steps ~label ~drain n =
    let i = ref 0 in
    let drained () =
      drain && Array.for_all (fun c -> c.xid = None) clients
    in
    while (not !fatal) && !i < n && not (drained ()) do
      incr i;
      incr now;
      outcome.steps_run <- outcome.steps_run + 1;
      maybe_arm_squeeze ();
      (try
         Governor.tick gov;
         step ~allow_begin:(not drain) (!now mod config.clients);
         note_pressure ()
       with
      | Fault.Injected_crash _ -> handle_crash ()
      | Log_store.Log_full _ ->
          (* every legitimate Log_full is handled inside [step]; one
             escaping to here means reserved-space accounting is broken *)
          fail outcome
            (Printf.sprintf "%s step %d: unhandled Log_full" label !now);
          fatal := true
      | e ->
          fail outcome
            (Printf.sprintf "%s step %d: unhandled %s" label !now
               (Printexc.to_string e));
          fatal := true)
    done
  in
  if config.crash_every > 0 then Fault.arm_crash_in fault config.crash_every;
  run_steps ~label:"storm" ~drain:false config.steps;
  (* drain: crashes disarmed, governor still running — surviving work
     must be able to commit through backoff-retry *)
  Fault.disarm_crash fault;
  let before_drain = outcome.committed in
  run_steps ~label:"drain" ~drain:true
    (config.steps + (100 * config.clients));
  outcome.drain_commits <- outcome.committed - before_drain;
  Array.iter
    (fun c ->
      match c.xid with
      | Some x when Db.is_active db x ->
          fail outcome
            (Printf.sprintf "drain left %s unresolved"
               (Format.asprintf "%a" Xid.pp x))
      | _ -> ())
    clients;
  (* final clean crash + restart + reconciliation *)
  if not !fatal then begin
    Db.crash db;
    absorb_commits ();
    let fail_before = List.length outcome.failures in
    (match recover_until_stable () with
    | Error msg -> fail outcome (Printf.sprintf "final restart: %s" msg)
    | Ok () ->
        absorb_commits ();
        check_state "final");
    maybe_dump ~fail_before ~tag:"final"
  end;
  let gs = Governor.stats gov in
  outcome.gov_ticks <- gs.Governor.ticks;
  outcome.gov_checkpoints <- gs.Governor.checkpoints;
  outcome.gov_truncations <- gs.Governor.truncations;
  outcome.gov_records_truncated <- gs.Governor.records_truncated;
  outcome.gov_victims <- gs.Governor.victims;
  outcome.squeezes <- (Fault.stats fault).Fault.squeezes;
  let ls = Log_store.stats log in
  outcome.reservations <- ls.Ariesrh_wal.Log_stats.reservations;
  outcome.admission_rejects <- ls.Ariesrh_wal.Log_stats.admission_rejects;
  Db.close db;
  (match backend with
  | Ariesrh_storage.Backend.File { dir } ->
      Ariesrh_storage.Backend.remove_tree dir
  | Ariesrh_storage.Backend.Sim -> ());
  outcome
