type op = Set of int | AddOp of int

type upd = {
  obj : int;
  op : op;
  idx : int;  (* position of the update action in the script *)
  mutable responsible : int;
  mutable dead : bool;  (* undone by a partial rollback *)
}

let take_prefix ?crash_at script =
  match crash_at with
  | None -> script
  | Some n -> List.filteri (fun i _ -> i < n) script

let replay ?crash_at script =
  let updates = ref [] in
  (* in reverse order *)
  let committed = Hashtbl.create 16 in
  let savepoints = Hashtbl.create 16 in
  (* tag -> script index *)
  let touch u = updates := u :: !updates in
  List.iteri
    (fun idx action ->
      match action with
      | Script.Begin _ | Script.Read _ | Script.Checkpoint -> ()
      | Script.Write (t, o, v) ->
          touch { obj = o; op = Set v; idx; responsible = t; dead = false }
      | Script.Add (t, o, d) ->
          touch { obj = o; op = AddOp d; idx; responsible = t; dead = false }
      | Script.Delegate (from_, to_, o) ->
          List.iter
            (fun u ->
              if (not u.dead) && u.obj = o && u.responsible = from_ then
                u.responsible <- to_)
            !updates
      | Script.Savepoint (_, tag) -> Hashtbl.replace savepoints tag idx
      | Script.Rollback_to (t, tag) ->
          (* kill every live update the transaction is responsible for
             that was invoked after the savepoint — LSN order and script
             order agree for update records *)
          let sp = Hashtbl.find savepoints tag in
          List.iter
            (fun u -> if u.responsible = t && u.idx > sp then u.dead <- true)
            !updates
      | Script.Commit t -> Hashtbl.replace committed t ()
      | Script.Abort _ -> ())
    (take_prefix ?crash_at script);
  (List.rev !updates, committed)

let apply_committed ~n_objects updates committed =
  let values = Array.make n_objects 0 in
  List.iter
    (fun u ->
      if (not u.dead) && committed u.responsible then
        match u.op with
        | Set v -> values.(u.obj) <- v
        | AddOp d -> values.(u.obj) <- values.(u.obj) + d)
    updates;
  values

let expected ~n_objects ?crash_at script =
  let updates, committed = replay ?crash_at script in
  apply_committed ~n_objects updates (Hashtbl.mem committed)

let expected_for ~n_objects ~committed ?crash_at script =
  let updates, _ = replay ?crash_at script in
  apply_committed ~n_objects updates committed

let winners ?crash_at script =
  let _, committed = replay ?crash_at script in
  Hashtbl.fold (fun t () acc -> t :: acc) committed []
  |> List.sort compare
