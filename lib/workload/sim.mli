(** A step-interleaved concurrency simulator.

    Unlike {!Gen}, which emits conflict-free scripts, the simulator
    drives a population of client "threads" that freely collide: a
    blocked lock request parks the client on a waits-for edge; deadlock
    cycles are detected on the spot and broken by aborting the youngest
    participant. This exercises the lock manager, the waits-for graph,
    and delegation's lock transfer under contention — and the final
    state is still checked, because every client records the increments
    it {e successfully committed responsibility for}.

    Clients run closed-loop: each picks a transaction profile, performs
    its operations step by step (yielding between steps), and retries
    from scratch when chosen as a deadlock victim. All updates are
    commutative [Add]s, so the expected final value of every object is
    the sum of committed increments, delegation notwithstanding —
    delegated increments count for the committer. *)

open Ariesrh_core

type outcome = {
  committed : int;  (** transactions committed *)
  aborted : int;  (** rollbacks (deadlock victims, pressure retries) *)
  waits : int;  (** times a client parked on a lock *)
  deadlocks : int;  (** cycles broken *)
  delegations : int;
  overloads : int;  (** typed [Errors.Overloaded] refusals observed *)
  log_fulls : int;  (** typed [Log_store.Log_full] refusals observed *)
  recoverings : int;
      (** typed [Errors.Recovering] refusals observed (an access landed
          on an object an on-demand restart had not yet drained) *)
  backoffs : int;  (** times a client parked in exponential backoff *)
  stall_steps : int;  (** total scheduler steps spent parked *)
  abandoned : int;  (** transactions given up after [max_retries] *)
  victimized : int;  (** transactions killed externally (governor) *)
  state_ok : bool;  (** engine state matches the committed-increment sums *)
  latencies : (string * (int * int)) list;
      (** per txn class ([read_only] / [writer] / [delegating]):
          (commits measured, summed begin->commit latency in logical
          I/O-clock ticks). The full distribution is exported through
          the db's metrics registry as the
          [ariesrh_sim_txn_latency_ios] histogram, one series per
          [class] label. *)
}

val run :
  ?clients:int ->
  ?txns_per_client:int ->
  ?ops_per_txn:int ->
  ?n_objects:int ->
  ?delegation_rate:float ->
  ?seed:int64 ->
  ?backoff_base:int ->
  ?max_backoff:int ->
  ?max_retries:int ->
  ?tick:(unit -> unit) ->
  Db.t ->
  outcome
(** Raises [Invalid_argument] if the database was not created with
    locking enabled.

    On a bounded log, clients degrade gracefully instead of failing:
    a typed [Errors.Overloaded], [Log_store.Log_full] or
    [Errors.Recovering] refusal rolls
    the transaction back (when one was open) and parks the client for
    [backoff_base * 2^attempt] scheduler steps, capped at [max_backoff]
    (defaults 4 and 64) — deterministic, so a given seed still replays
    exactly. After [max_retries] (default 8) refused attempts the
    transaction is abandoned and counted. A transaction aborted
    externally mid-plan (a governor victimizing the oldest horizon
    pinner) is detected by the typed [No_such_txn]/[Txn_not_active] on
    its next operation and retried the same way. [tick] runs once per
    scheduler step — the hook a {!Ariesrh_maintenance.Governor} ticks
    from. *)
