(** Crash storms under a bounded, shrinking log.

    The pressure storm crosses {!Crash_storm}'s simulated storm with the
    log-space machinery this repo grew around it: the WAL has a hard
    byte capacity, a {!Ariesrh_maintenance.Governor} ticks on every
    scheduler step (checkpointing, truncating, and applying
    delegation-aware backpressure), a {!Ariesrh_fault.Fault} squeeze
    shrinks the capacity mid-run, and injected crashes with torn log
    tails keep firing throughout.

    Clients degrade the way {!Sim} clients do — typed
    [Errors.Overloaded] / [Log_store.Log_full] refusals roll back and
    retry with deterministic exponential backoff — and the harness keeps
    the crash storm's responsibility ledger so the engine state is
    reconciled against the oracle after {e every} restart.

    What the storm proves, beyond the state oracle:
    - rollback and restart recovery never raise [Log_full] — they draw
      on reserved space ([abort]) or bypass admission (recovery);
    - every refusal is a typed error; any raw [Invalid_argument] or
      assertion escaping the engine fails the storm;
    - after the storm, with crashes disarmed, surviving clients drain:
      backoff-retry eventually commits the remaining work even while
      the governor stays engaged.

    One wrinkle relative to the crash storm's oracle: the governor
    truncates the log while the storm runs, so "which commit records are
    durable" can no longer be re-derived by scanning — truncation
    reclaims old commit records. The harness accumulates the durable
    commit set monotonically instead: a scan at every crash (before
    recovery, when the stable prefix is intact) plus a
    {!Db.set_commit_durable_hook} subscription that fires exactly when
    each commit record hardens — at [commit] return when commits force
    eagerly, or at the batched force under group commit. *)

open Ariesrh_core
module Governor := Ariesrh_maintenance.Governor

type config = {
  seed : int64;
  impl : Config.delegation_impl;
  clients : int;
  steps : int;  (** scheduler steps of the storm phase *)
  ops_per_txn : int;  (** max ops per client transaction *)
  n_objects : int;
  p_delegate : float;
  capacity_bytes : int;  (** hard WAL byte budget *)
  crash_every : int;  (** I/Os between injected crashes; [0] = none *)
  recovery_crash_depth : int;  (** nested crashes during each restart *)
  recovery_crash_gap : int;  (** I/Os into recovery before a re-crash *)
  squeeze_every : int;  (** appends between capacity squeezes; [0] = none *)
  squeeze_keep : float;  (** capacity multiplier per squeeze *)
  max_squeezes : int;
  governor : Governor.config;
  backoff_base : int;
  max_backoff : int;
  max_retries : int;
  group_commit : int;
      (** commit-force batch size passed through to {!Config.t}; [0]
          (the default) forces every commit record individually. The
          storm's durable-commit oracle tracks hardening via
          {!Db.set_commit_durable_hook}, so it stays exact either way *)
  record_cache : int;  (** decoded-record cache capacity ([0] disables) *)
  audit : bool;
      (** run the restart self-audit after every recovery (default
          [true]); violations fail the storm *)
  time_travel : bool;
      (** run analytic time-travel readers in every check round (default
          [true]). While the log is untruncated, [Temporal.snapshot_at]
          at sampled durable commit LSNs must equal the ledger filtered
          by commit LSN; once the governor truncates (no archive is
          attached here), every read must refuse with the typed
          [Errors.History_unavailable] — a silently partial answer fails
          the storm. Readers run with faults gated off. *)
  forensic_dir : string option;
      (** when set, the storm database runs with the trace ring enabled
          and every check round that adds failures writes a
          {!Forensics.write} dump into this directory; [None] (the
          default) disables both *)
  backend_root : string option;
      (** when set, the storm database runs on the file backend in a
          fresh directory under this root (removed again when the storm
          ends); [None] (the default) keeps the sim backend *)
}

val default_config : config
(** 4 clients, 800 steps, 6 KiB log budget, a crash roughly every 40
    I/Os with one nested re-crash, 3 squeezes of 0.9 each, the default
    governor, Rh delegation. *)

type outcome = {
  mutable steps_run : int;
  mutable committed : int;
  mutable aborted : int;
  mutable delegations : int;
  mutable overloads : int;  (** typed [Errors.Overloaded] refusals *)
  mutable log_fulls : int;  (** typed [Log_full] refusals *)
  mutable backoffs : int;
  mutable abandoned : int;  (** retry cycles given up *)
  mutable victimized : int;  (** governor kills observed by clients *)
  mutable crashes : int;
  mutable nested_crashes : int;
  mutable recoveries : int;
  mutable squeezes : int;
  mutable checks : int;  (** post-restart oracle reconciliations *)
  mutable drain_commits : int;  (** commits after crashes were disarmed *)
  mutable gov_ticks : int;
  mutable gov_checkpoints : int;
  mutable gov_truncations : int;
  mutable gov_records_truncated : int;
  mutable gov_victims : int;
  mutable reservations : int;  (** log-store reservation operations *)
  mutable admission_rejects : int;  (** appends the log store refused *)
  mutable peak_pressure : float;  (** highest {!Db.log_pressure} seen *)
  mutable tt_reads : int;  (** time-travel reads attempted *)
  mutable tt_refused : int;
      (** reads that refused with [History_unavailable] (expected once
          the governor truncates) *)
  mutable failures : string list;
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val run : ?config:config -> unit -> outcome
(** Run one storm; deterministic for a given config. *)
