open Ariesrh_types
open Ariesrh_core

let fresh_db ?fault ?backend ?(impl = Config.Rh) ?(locking = true)
    ?log_capacity_bytes ?log_capacity_records ?group_commit ?record_cache
    ?audit ?recovery_mode ?tracing ~n_objects () =
  Db.create ?fault ?backend ?tracing
    (Config.make ~n_objects ~objects_per_page:8
       ~buffer_capacity:(max 4 (n_objects / 32))
       ~impl ~locking ?log_capacity_bytes ?log_capacity_records ?group_commit
       ?record_cache ?audit ?recovery_mode ())

let run ?upto ?(on_action = fun _ -> ()) ?xid_map db script =
  (* symbolic transaction index -> engine xid *)
  let xids = match xid_map with Some h -> h | None -> Hashtbl.create 16 in
  let xid t = Hashtbl.find xids t in
  let savepoints = Hashtbl.create 16 in
  let limit = Option.value ~default:(List.length script) upto in
  List.iteri
    (fun i action ->
      if i < limit then begin
        (match action with
        | Script.Begin t -> Hashtbl.replace xids t (Db.begin_txn db)
        | Script.Read (t, o) -> ignore (Db.read db (xid t) (Oid.of_int o))
        | Script.Write (t, o, v) -> Db.write db (xid t) (Oid.of_int o) v
        | Script.Add (t, o, d) -> Db.add db (xid t) (Oid.of_int o) d
        | Script.Delegate (from_, to_, o) ->
            Db.delegate db ~from_:(xid from_) ~to_:(xid to_) (Oid.of_int o)
        | Script.Savepoint (t, tag) ->
            Hashtbl.replace savepoints tag (Db.savepoint db (xid t))
        | Script.Rollback_to (t, tag) ->
            Db.rollback_to db (xid t) (Hashtbl.find savepoints tag)
        | Script.Commit t -> Db.commit db (xid t)
        | Script.Abort t -> Db.abort db (xid t)
        | Script.Checkpoint -> Db.checkpoint db);
        on_action i
      end)
    script

let run_to_crash db script ~crash_at =
  run ~upto:crash_at db script;
  Db.crash db;
  Db.recover db
