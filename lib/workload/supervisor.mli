(** The external kill -9 storm: crash injection by process death.

    The in-process storms ({!Crash_storm}) model a crash as an
    exception — everything the engine believes about volatile state
    being lost is enforced by [Db.crash] discarding it. This harness
    removes that layer of pretence for the file backend: the workload
    runs in a {e forked child process} whose fault injector is in
    [Kill_process] mode, so the armed crash point delivers a real
    [SIGKILL] to the child mid-operation. The parent then reopens the
    database directory in its own process — over exactly the bytes the
    dead process left behind, torn tails included — recovers, and holds
    the result against the semantic oracle.

    Each kill point gets the same three-way verification as the
    in-process storm (oracle state, structural invariants, restart
    idempotence) plus one only a real process boundary can provide:
    after the in-process idempotence check, the handle is closed and
    the directory reopened cold a second time, proving that a restart's
    own on-disk artifacts are themselves recoverable.

    What this proves — and doesn't: SIGKILL discards the process, not
    the kernel page cache, so unfsynced writes survive the kill. The
    volatile-tail-is-lost semantics hold anyway because the file
    backend only ever writes the durable prefix to the device; fsync
    placement is exercised and counted, but actual power loss is out of
    scope (see DESIGN.md §13). *)

open Ariesrh_core

type config = {
  seed : int64;
  kill_step : int;  (** escalate the scheduled kill I/O point by this *)
  max_kills : int;
      (** stop after this many child runs even if the script never
          finishes (CI smoke runs bound the sweep; [max_int] = sweep
          every I/O of the history) *)
  tear_data_every : int;
  tear_data_on_crash : bool;
  tear_log_on_crash : bool;
  group_commit : int;
  record_cache : int;
  audit : bool;  (** run the restart self-audit in the parent's reopens *)
  root : string;
      (** scratch root; each kill point gets its own database directory
          [io<k>] underneath, removed when its iteration ends *)
  forensic_dir : string option;
      (** when set, parent reopens run with tracing and failing check
          rounds write a {!Forensics.write} dump here *)
  keep_dirs : bool;
      (** keep per-iteration database directories (post-mortem
          debugging / CI artifacts) *)
}

val default_config : config

val run :
  ?config:config -> ?impl:Config.delegation_impl -> Gen.spec -> Crash_storm.outcome
(** Sweep scheduled kill points [kill_step, 2*kill_step, ...] over
    [Gen.generate spec ~seed:config.seed], one forked child per point,
    until a child survives the whole script (its clean end state is
    verified too) or [max_kills] runs have happened. [crashes] counts
    children that died on the scheduled SIGKILL; a child exiting any
    other way is a failure. *)
