(** Recovery storms: crashing {e during} on-demand restart.

    The scripted crash sweep of {!Crash_storm}, pointed at
    [Config.On_demand] restart. Each iteration crashes the workload at
    the k-th I/O and restarts in on-demand mode — analysis only, open
    for traffic immediately — then drives the drain like a live system:
    background sweeper steps ({!Ariesrh_core.Db.recovery_step})
    interleaved with foreground read transactions (served degraded, or
    refused with the typed retryable [Errors.Recovering]) and
    [Db.peek] probes taking the foreground-repair path. Re-crashes stay
    armed throughout, so the injected crash can land inside the
    analysis pass, a sweeper step, or a foreground repair — every such
    crash is answered with a fresh restart, proving the lazy path is
    re-entrant.

    After convergence each iteration checks: recovered state equals the
    durable-commit oracle; [Db.validate] and [Db.audit] are clean; a
    bare crash + restart + full drain is idempotent; and — the
    equivalence oracle — an {e offline twin} replay of the identical
    history (same script, same fault schedule, same crash point,
    [Config.Offline]) reaches the same final state element-wise.

    With [config.shards > 1] the same storm runs on a
    {!Ariesrh_shard.Sharded} engine: per-shard analysis (partitioned
    forward pass), incremental availability per shard, probes routed to
    each object's current home. [config.forensic_dir] only enables
    tracing here; recovery storms do not write forensic dumps. *)

open Ariesrh_core

type config = Crash_storm.config
(** Same knobs as the crash storm ([time_travel] is unused here). *)

val default_config : config

type outcome = {
  mutable runs : int;  (** storm iterations *)
  mutable actions : int;  (** workload actions executed *)
  mutable crashes : int;  (** top-level injected crashes *)
  mutable nested_crashes : int;  (** crashes injected during restart/drain *)
  mutable recoveries : int;  (** restarts that completed analysis *)
  mutable instant_opens : int;
      (** restarts that returned with a non-empty backlog — i.e. opened
          for traffic before recovery finished *)
  mutable drain_steps : int;  (** background sweeper steps driven *)
  mutable refusals : int;  (** probes refused with [Errors.Recovering] *)
  mutable degraded_serves : int;  (** probes served while draining *)
  mutable foreground_repairs : int;  (** [peek] foreground repairs *)
  mutable checks : int;  (** oracle/invariant/idempotence check rounds *)
  mutable twin_checks : int;  (** offline-twin equivalence checks *)
  mutable fault_points : int;
  mutable failures : string list;  (** newest first; empty = storm passed *)
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val merge : outcome -> outcome -> outcome
(** Field-wise sum (for aggregating several storms). *)

val run_script :
  ?config:config -> ?impl:Config.delegation_impl -> Gen.spec -> outcome
(** Scripted recovery storm over [Gen.generate spec ~seed:config.seed]. *)
