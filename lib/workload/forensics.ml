open Ariesrh_types
open Ariesrh_core
module Obs = Ariesrh_obs
module Record = Ariesrh_wal.Record

let engine_name = function
  | Config.Rh -> "rh"
  | Config.Eager -> "eager"
  | Config.Lazy -> "lazy"

let xid_str x = Format.asprintf "%a" Xid.pp x

let op_str = function
  | Record.Set { before; after } -> Printf.sprintf "set %d->%d" before after
  | Record.Add d -> Printf.sprintf "%+d" d

(* One history event of an object, in the same rendering the storm
   failure messages use, plus — for updates — the lineage reconstructed
   from the trace ring (Null when the ring never saw the update). *)
let history_event_json ring = function
  | Db.Updated { lsn; invoker; op } ->
      let lineage =
        match Obs.Lineage.query ring ~lsn () with
        | Some l -> Obs.Lineage.to_json l
        | None -> Obs.Json.Null
      in
      Obs.Json.Obj
        [
          ("kind", Obs.Json.String "update");
          ("lsn", Obs.Json.Int (Lsn.to_int lsn));
          ("invoker", Obs.Json.String (xid_str invoker));
          ("op", Obs.Json.String (op_str op));
          ( "str",
            Obs.Json.String
              (Printf.sprintf "%d:upd(%s,%s)" (Lsn.to_int lsn)
                 (xid_str invoker) (op_str op)) );
          ("lineage", lineage);
        ]
  | Db.Delegated { lsn; from_; to_; op_lsn } ->
      Obs.Json.Obj
        [
          ("kind", Obs.Json.String "delegate");
          ("lsn", Obs.Json.Int (Lsn.to_int lsn));
          ("from", Obs.Json.String (xid_str from_));
          ("to", Obs.Json.String (xid_str to_));
          ( "op_lsn",
            match op_lsn with
            | Some l -> Obs.Json.Int (Lsn.to_int l)
            | None -> Obs.Json.Null );
          ( "str",
            Obs.Json.String
              (Printf.sprintf "%d:del(%s->%s)" (Lsn.to_int lsn)
                 (xid_str from_) (xid_str to_)) );
        ]
  | Db.Compensated { lsn; by; undone } ->
      Obs.Json.Obj
        [
          ("kind", Obs.Json.String "clr");
          ("lsn", Obs.Json.Int (Lsn.to_int lsn));
          ("by", Obs.Json.String (xid_str by));
          ("undone", Obs.Json.Int (Lsn.to_int undone));
          ( "str",
            Obs.Json.String
              (Printf.sprintf "%d:clr(%s,undid %d)" (Lsn.to_int lsn)
                 (xid_str by) (Lsn.to_int undone)) );
        ]

let mismatches_json db ring want =
  let out = ref [] in
  for i = Array.length want - 1 downto 0 do
    let oid = Oid.of_int i in
    let got = Db.peek db oid in
    if got <> want.(i) then
      out :=
        Obs.Json.Obj
          [
            ("object", Obs.Json.Int i);
            ("got", Obs.Json.Int got);
            ("want", Obs.Json.Int want.(i));
            ( "history",
              Obs.Json.List
                (List.map (history_event_json ring) (Db.object_history db oid))
            );
          ]
        :: !out
  done;
  !out

let dump ~kind ~seed ?crash_io ?expected ?(last = 512) ~failures db =
  let ring = Db.ring db in
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String kind);
      ("engine", Obs.Json.String (engine_name (Db.config db).Config.impl));
      ( "backend",
        Obs.Json.String (Ariesrh_storage.Backend.kind (Db.backend db)) );
      ("seed", Obs.Json.String (Int64.to_string seed));
      ( "crash_io",
        match crash_io with Some k -> Obs.Json.Int k | None -> Obs.Json.Null );
      ( "failures",
        Obs.Json.List (List.rev_map (fun s -> Obs.Json.String s) failures) );
      ( "mismatches",
        Obs.Json.List
          (match expected with
          | None -> []
          | Some want -> mismatches_json db ring want) );
      ("trace", Obs.Ring.to_json ~last ring);
      ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot (Db.metrics db)));
    ]

let file_name ~kind ~engine ~seed ?crash_io ?tag () =
  Printf.sprintf "FORENSIC_%s_%s_seed%Ld%s%s.json" kind engine seed
    (match crash_io with Some k -> Printf.sprintf "_io%d" k | None -> "")
    (match tag with Some t -> "_" ^ t | None -> "")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir ~kind ~seed ?crash_io ?tag ?expected ?last ~failures db =
  let doc = dump ~kind ~seed ?crash_io ?expected ?last ~failures db in
  let engine = engine_name (Db.config db).Config.impl in
  let file = file_name ~kind ~engine ~seed ?crash_io ?tag () in
  mkdir_p dir;
  let path = Filename.concat dir file in
  Obs.Json.to_file path doc;
  path
