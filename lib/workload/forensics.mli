(** Forensic dumps for storm failures.

    When a storm harness detects an invariant violation — a state
    mismatch against the oracle, a structural invariant failure, a
    non-idempotent restart, or a restart that died outright — the bug is
    almost always long gone by the time a human looks: the interesting
    history happened dozens of crash-recover cycles earlier. A forensic
    dump freezes everything needed to diagnose it at the moment of
    detection:

    - the failure messages themselves;
    - per-object mismatches, each with the object's full log history
      (updates, delegations, compensations) and, for every update, its
      {!Ariesrh_obs.Lineage} — the responsibility chain reconstructed
      from the trace ring;
    - the last window of the structured trace ring (the storm enables
      tracing on its databases whenever a forensic directory is set);
    - a metrics snapshot of the database's registry.

    Dumps are deterministic: no wall-clock, no absolute paths, stable
    field order — two runs of the same seed produce byte-identical
    files, so a dump can be committed as a repro artifact (see
    [test/test_known_bugs.ml]). *)

open Ariesrh_core

val engine_name : Config.delegation_impl -> string
(** ["rh"], ["eager"], or ["lazy"]. *)

val dump :
  kind:string ->
  seed:int64 ->
  ?crash_io:int ->
  ?expected:int array ->
  ?last:int ->
  failures:string list ->
  Db.t ->
  Ariesrh_obs.Json.t
(** Build the dump document. [kind] names the harness (["crash"],
    ["sim"], ["pressure"]); [crash_io] the failing crash point when the
    harness has one; [expected] the oracle state (omitted = no mismatch
    section); [last] bounds the trace window (default 512 events);
    [failures] newest first, as the storm outcomes keep them. *)

val file_name :
  kind:string ->
  engine:string ->
  seed:int64 ->
  ?crash_io:int ->
  ?tag:string ->
  unit ->
  string
(** [FORENSIC_<kind>_<engine>_seed<N>[_io<K>][_<tag>].json]. *)

val write :
  dir:string ->
  kind:string ->
  seed:int64 ->
  ?crash_io:int ->
  ?tag:string ->
  ?expected:int array ->
  ?last:int ->
  failures:string list ->
  Db.t ->
  string
(** {!dump} then write under [dir] (created if missing) with
    {!file_name}; returns the path written. *)
