(** Scripted workloads on a sharded engine.

    Scripts come from a generator that knows nothing about shards, so
    the driver {e co-homes} them first: {!assign_homes} groups
    transactions into components (union-find over shared objects and
    delegation pairs) and pins each component to one shard. Every
    object is then only ever touched from a single shard — its one
    migration, base home to component home on first touch, always finds
    it lock-free, so a valid script stays valid. The crash sweep still
    walks every I/O point of every migration. *)

open Ariesrh_core
module Sharded = Ariesrh_shard.Sharded

val assign_homes : Script.t -> shards:int -> (int, int) Hashtbl.t
(** Symbolic transaction index -> shard, deterministic for a script. *)

val fresh :
  ?fault:Ariesrh_fault.Fault.t ->
  ?impl:Config.delegation_impl ->
  ?group_commit:int ->
  ?record_cache:int ->
  ?audit:bool ->
  ?recovery_mode:Config.recovery_mode ->
  ?tracing:bool ->
  shards:int ->
  n_objects:int ->
  unit ->
  Sharded.t
(** A sharded engine with the same storm geometry as
    {!Driver.fresh_db}. Backends come from {!Db.set_backend_factory}. *)

val run :
  ?upto:int ->
  ?on_action:(int -> unit) ->
  ?xid_map:(int, Sharded.xid) Hashtbl.t ->
  homes:(int, int) Hashtbl.t ->
  Sharded.t ->
  Script.t ->
  unit
(** Like {!Driver.run}, routed: [Begin t] starts on [homes(t)]. *)
