open Ariesrh_types
open Ariesrh_core
module Sharded = Ariesrh_shard.Sharded

(* Scripted workloads on a sharded engine.

   Scripts are generated against a symbolic lock table that knows
   nothing about shards, so replaying one naively would trip over the
   router's refusal to migrate a locked object. Co-homing fixes that
   structurally: transactions are grouped into components (union-find —
   two transactions join when they touch a common object or form a
   delegation pair) and each component is pinned to one shard. Every
   object is then only ever touched from a single shard, so its one
   migration — base home to component home, on first touch — always
   finds the object lock-free. The crash sweep still exercises every
   I/O point of every migration; the refusal path is exercised by the
   sim storm, where clients on different shards do contend. *)

let assign_homes script ~shards =
  let parent = Hashtbl.create 32 in
  let rec find t =
    match Hashtbl.find_opt parent t with
    | Some p when p <> t ->
        let r = find p in
        Hashtbl.replace parent t r;
        r
    | Some _ -> t
    | None ->
        Hashtbl.replace parent t t;
        t
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  (* object -> some transaction that touched it *)
  let owner = Hashtbl.create 64 in
  let touch t o =
    match Hashtbl.find_opt owner o with
    | None -> Hashtbl.replace owner o t
    | Some t' -> union t t'
  in
  List.iter
    (function
      | Script.Begin t -> ignore (find t)
      | Script.Read (t, o) | Script.Write (t, o, _) | Script.Add (t, o, _) ->
          touch t o
      | Script.Delegate (a, b, o) ->
          union a b;
          touch a o
      | Script.Savepoint _ | Script.Rollback_to _ | Script.Commit _
      | Script.Abort _ | Script.Checkpoint ->
          ())
    script;
  (* components ranked in order of first appearance, then dealt out
     round-robin — deterministic for a given script *)
  let comp_rank = Hashtbl.create 16 in
  let next = ref 0 in
  let homes = Hashtbl.create 32 in
  List.iter
    (function
      | Script.Begin t when not (Hashtbl.mem homes t) ->
          let r = find t in
          let c =
            match Hashtbl.find_opt comp_rank r with
            | Some c -> c
            | None ->
                let c = !next in
                incr next;
                Hashtbl.replace comp_rank r c;
                c
          in
          Hashtbl.replace homes t (c mod shards)
      | _ -> ())
    script;
  homes

let fresh ?fault ?(impl = Config.Rh) ?group_commit ?record_cache ?audit
    ?recovery_mode ?tracing ~shards ~n_objects () =
  Sharded.create ?fault ?tracing
    (Config.make ~n_objects ~objects_per_page:8
       ~buffer_capacity:(max 4 (n_objects / 32))
       ~impl ~locking:true ?group_commit ?record_cache ?audit ?recovery_mode
       ~shards ())

let run ?upto ?(on_action = fun _ -> ()) ?xid_map ~homes sh script =
  let xids = match xid_map with Some h -> h | None -> Hashtbl.create 16 in
  let xid t = Hashtbl.find xids t in
  let savepoints = Hashtbl.create 16 in
  let limit = Option.value ~default:(List.length script) upto in
  List.iteri
    (fun i action ->
      if i < limit then begin
        (match action with
        | Script.Begin t ->
            Hashtbl.replace xids t
              (Sharded.begin_txn sh ~shard:(Hashtbl.find homes t))
        | Script.Read (t, o) -> ignore (Sharded.read sh (xid t) (Oid.of_int o))
        | Script.Write (t, o, v) -> Sharded.write sh (xid t) (Oid.of_int o) v
        | Script.Add (t, o, d) -> Sharded.add sh (xid t) (Oid.of_int o) d
        | Script.Delegate (from_, to_, o) ->
            Sharded.delegate sh ~from_:(xid from_) ~to_:(xid to_)
              (Oid.of_int o)
        | Script.Savepoint (t, tag) ->
            Hashtbl.replace savepoints tag (Sharded.savepoint sh (xid t))
        | Script.Rollback_to (t, tag) ->
            Sharded.rollback_to sh (xid t) (Hashtbl.find savepoints tag)
        | Script.Commit t -> Sharded.commit sh (xid t)
        | Script.Abort t -> Sharded.abort sh (xid t)
        | Script.Checkpoint -> Sharded.checkpoint sh);
        on_action i
      end)
    script
