open Ariesrh_types
open Ariesrh_core
open Ariesrh_storage
module Fault = Ariesrh_fault.Fault
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Prng = Ariesrh_util.Prng
module Scrubber = Ariesrh_maintenance.Scrubber

(* The media-storm: a seeded workload interleaved with silent-corruption
   injections (bitrot, lost writes, misdirected writes, archive rot) and
   crashes, with the scrubber healing as it goes. Every round asserts
   that all corruption found was healed and the recovered state matches
   the oracle; the final phase destroys {e all} media and proves a cold
   [restore_from_archive] rebuilds the exact committed state. *)

type config = {
  seed : int64;
  rounds : int;  (* corruption/crash rounds *)
  steps_per_round : int;
  clients : int;
  ops_per_txn : int;
  n_objects : int;
  p_delegate : float;
  crash_every_rounds : int;  (* arm a crash every n-th round; 0 = never *)
  scrub_batch : int;  (* incremental scrubber batch riding the workload *)
  group_commit : int;
  audit : bool;
  backend_root : string option;
  archive_root : string option;  (* mirror the archive to disk *)
  forensic_dir : string option;
}

let default_config =
  {
    seed = 1L;
    rounds = 12;
    steps_per_round = 80;
    clients = 4;
    ops_per_txn = 6;
    n_objects = 48;
    p_delegate = 0.2;
    crash_every_rounds = 3;
    scrub_batch = 8;
    group_commit = 0;
    audit = true;
    backend_root = None;
    archive_root = None;
    forensic_dir = None;
  }

type outcome = {
  mutable rounds_run : int;
  mutable actions : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable injected_bitrot : int;
  mutable injected_lost : int;
  mutable injected_misdirected : int;
  mutable injected_archive_rot : int;
  mutable detected : int;  (* corruption the scrubber quarantined *)
  mutable healed : int;
  mutable unhealable : int;
  mutable scrub_checked : int;
  mutable archived : int;  (* WAL records copied into the archive *)
  mutable cold_restores : int;
  mutable checks : int;
  mutable failures : string list;
}

let fresh_outcome () =
  {
    rounds_run = 0;
    actions = 0;
    crashes = 0;
    recoveries = 0;
    injected_bitrot = 0;
    injected_lost = 0;
    injected_misdirected = 0;
    injected_archive_rot = 0;
    detected = 0;
    healed = 0;
    unhealable = 0;
    scrub_checked = 0;
    archived = 0;
    cold_restores = 0;
    checks = 0;
    failures = [];
  }

let ok o = o.failures = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>rounds=%d actions=%d crashes=%d recoveries=%d@ \
     injected: bitrot=%d lost=%d misdirected=%d archive_rot=%d@ \
     scrub: checked=%d detected=%d healed=%d unhealable=%d@ \
     archived=%d cold_restores=%d checks=%d failures=%d%a@]"
    o.rounds_run o.actions o.crashes o.recoveries o.injected_bitrot
    o.injected_lost o.injected_misdirected o.injected_archive_rot
    o.scrub_checked o.detected o.healed o.unhealable o.archived
    o.cold_restores o.checks
    (List.length o.failures)
    (fun ppf -> function
      | [] -> ()
      | fs ->
          List.iter (fun f -> Format.fprintf ppf "@   FAIL %s" f) (List.rev fs))
    o.failures

let merge a b =
  {
    rounds_run = a.rounds_run + b.rounds_run;
    actions = a.actions + b.actions;
    crashes = a.crashes + b.crashes;
    recoveries = a.recoveries + b.recoveries;
    injected_bitrot = a.injected_bitrot + b.injected_bitrot;
    injected_lost = a.injected_lost + b.injected_lost;
    injected_misdirected = a.injected_misdirected + b.injected_misdirected;
    injected_archive_rot = a.injected_archive_rot + b.injected_archive_rot;
    detected = a.detected + b.detected;
    healed = a.healed + b.healed;
    unhealable = a.unhealable + b.unhealable;
    scrub_checked = a.scrub_checked + b.scrub_checked;
    archived = a.archived + b.archived;
    cold_restores = a.cold_restores + b.cold_restores;
    checks = a.checks + b.checks;
    failures = b.failures @ a.failures;
  }

let fail o msg = o.failures <- msg :: o.failures

let backend_of config ~tag =
  match config.backend_root with
  | None -> Backend.Sim
  | Some root ->
      let dir = Filename.concat root tag in
      Backend.remove_tree dir;
      Backend.File { dir }

let archive_dir_of config ~tag =
  match config.archive_root with
  | None -> None
  | Some root ->
      let dir = Filename.concat root tag in
      Backend.remove_tree dir;
      Some dir

(* Ground truth as in the other storms: a transaction counts iff its
   commit record is durable and decodes. *)
let durable_commits log =
  let s = ref Xid.Set.empty in
  ignore
    (Log_store.iter_valid_forward log ~from:(Log_store.truncated_below log)
       (fun _ r ->
         match r.Record.body with
         | Record.Commit -> s := Xid.Set.add (Record.writer_exn r) !s
         | _ -> ()));
  !s

type client = {
  mutable xid : Xid.t option;
  mutable ops_left : int;
  mutable touched : int list;
}

let run ?(config = default_config) ?(impl = Config.Rh) () =
  let outcome = fresh_outcome () in
  let fault = Fault.create ~seed:config.seed () in
  let tag =
    Printf.sprintf "media-%s-%Ld"
      (match impl with
      | Config.Rh -> "rh"
      | Config.Eager -> "eager"
      | Config.Lazy -> "lazy")
      config.seed
  in
  let db =
    Driver.fresh_db ~fault
      ~backend:(backend_of config ~tag)
      ~impl ~group_commit:config.group_commit ~audit:config.audit
      ~tracing:(config.forensic_dir <> None)
      ~n_objects:config.n_objects ()
  in
  let archive = Db.attach_archive ?dir:(archive_dir_of config ~tag) db in
  let scrubber = Scrubber.create ~batch:config.scrub_batch db in
  let rng = Prng.create (Int64.add config.seed 0xA5C11BL) in
  let clients =
    Array.init config.clients (fun _ ->
        { xid = None; ops_left = 0; touched = [] })
  in
  (* the responsibility ledger (see Crash_storm.run_sim): entries move
     only on delegation; expected state sums the entries of durably
     committed transactions *)
  let ledger : (int * int) list Xid.Tbl.t = Xid.Tbl.create 64 in
  let ledger_of x =
    match Xid.Tbl.find_opt ledger x with Some l -> l | None -> []
  in
  let ledger_add x o d = Xid.Tbl.replace ledger x ((o, d) :: ledger_of x) in
  let ledger_move ~from_ ~to_ o =
    let moved, kept =
      List.partition (fun (o', _) -> o' = o) (ledger_of from_)
    in
    Xid.Tbl.replace ledger from_ kept;
    Xid.Tbl.replace ledger to_ (moved @ ledger_of to_)
  in
  (* Truncation reclaims old commit records, but a commit once durable
     is committed forever: accumulate the set across the storm instead
     of re-deriving it from whatever prefix the log still retains. *)
  let known_commits = ref Xid.Set.empty in
  let expected () =
    known_commits :=
      Xid.Set.union !known_commits (durable_commits (Db.log_store db));
    let v = Array.make config.n_objects 0 in
    Xid.Tbl.iter
      (fun x entries ->
        if Xid.Set.mem x !known_commits then
          List.iter (fun (o, d) -> v.(o) <- v.(o) + d) entries)
      ledger;
    v
  in
  let reset_clients () =
    Array.iter
      (fun c ->
        c.xid <- None;
        c.ops_left <- 0;
        c.touched <- [])
      clients
  in
  let other_active self =
    let cands = ref [] in
    Array.iteri
      (fun i c ->
        match c.xid with
        | Some x when i <> self -> cands := (i, x) :: !cands
        | _ -> ())
      clients;
    match !cands with
    | [] -> None
    | l -> Some (List.nth l (Prng.int rng (List.length l)))
  in
  let step self =
    let c = clients.(self) in
    match c.xid with
    | None ->
        let x = Db.begin_txn db in
        c.xid <- Some x;
        c.ops_left <- 1 + Prng.int rng config.ops_per_txn;
        c.touched <- []
    | Some x when c.ops_left > 0 -> (
        c.ops_left <- c.ops_left - 1;
        let delegate_now =
          c.touched <> [] && Prng.float rng 1.0 < config.p_delegate
        in
        match (if delegate_now then other_active self else None) with
        | Some (yi, y) ->
            let o =
              List.nth c.touched (Prng.int rng (List.length c.touched))
            in
            Db.delegate db ~from_:x ~to_:y (Oid.of_int o);
            ledger_move ~from_:x ~to_:y o;
            c.touched <- List.filter (fun o' -> o' <> o) c.touched;
            clients.(yi).touched <- o :: clients.(yi).touched
        | None ->
            let o = Prng.int rng config.n_objects in
            let d = 1 + Prng.int rng 9 in
            Db.add db x (Oid.of_int o) d;
            ledger_add x o d;
            if not (List.mem o c.touched) then c.touched <- o :: c.touched)
    | Some x ->
        if Prng.int rng 10 = 0 then Db.abort db x else Db.commit db x;
        c.xid <- None;
        c.touched <- []
  in
  (* Finish every open transaction so a state check compares committed
     state only — the ledger oracle knows nothing about in-flight adds. *)
  let settle () =
    Array.iter
      (fun c ->
        (match c.xid with
        | Some x -> if Prng.int rng 10 = 0 then Db.abort db x else Db.commit db x
        | None -> ());
        c.xid <- None;
        c.ops_left <- 0;
        c.touched <- [])
      clients
  in
  (* A scrub never counts as detection failure by itself; what the storm
     asserts after every full sweep is that nothing stayed quarantined —
     each corruption had an intact redundant source. *)
  let full_scrub ~label =
    let out = Db.scrub db in
    (match Db.quarantined db with
    | [] -> ()
    | q ->
        fail outcome
          (Printf.sprintf "%s: %d unhealable: %s" label (List.length q)
             (String.concat ","
                (List.map (fun (t, i) -> Printf.sprintf "%s/%d" t i) q))));
    out
  in
  let check_state ~label =
    Fault.set_enabled fault false;
    outcome.checks <- outcome.checks + 1;
    let want = expected () in
    let got =
      Array.init config.n_objects (fun i -> Db.peek db (Oid.of_int i))
    in
    if got <> want then
      fail outcome
        (Printf.sprintf "%s: state mismatch: got [%s] want [%s]" label
           (String.concat ";" (Array.to_list (Array.map string_of_int got)))
           (String.concat ";" (Array.to_list (Array.map string_of_int want))));
    (match Db.validate db with
    | Ok () -> ()
    | Error msg -> fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
    Fault.set_enabled fault true
  in
  (* Crash handling: scrub {e before} recovery — a rotted durable record
     would otherwise kill the restart scan, and a lost write would
     survive as a stale checksum-valid page; both heal from the shadow /
     archive first, then ordinary restart recovery runs. *)
  (* The heal protocol is scrub-then-recover: corruption that lands
     {e during} the restart scan itself is outside any detector's reach,
     so pending media arms stay parked until recovery is done (they fire
     at the next ordinary I/O instead). *)
  let recover_quiet () =
    Fault.set_enabled fault false;
    Fun.protect
      ~finally:(fun () -> Fault.set_enabled fault true)
      (fun () -> Db.recover db)
  in
  let handle_crash ~label =
    outcome.crashes <- outcome.crashes + 1;
    Db.crash db;
    Fault.disarm_crash fault;
    ignore (full_scrub ~label:(label ^ " pre-recovery scrub"));
    (match recover_quiet () with
    | _ -> outcome.recoveries <- outcome.recoveries + 1
    | exception e ->
        fail outcome
          (Printf.sprintf "%s: recovery raised %s" label (Format.asprintf "%a" Errors.pp_exn e)));
    check_state ~label;
    reset_clients ()
  in
  (* seed the archive with an initial full backup so page heals always
     have a snapshot of last resort *)
  ignore (Db.backup_to_archive db);
  for round = 1 to config.rounds do
    outcome.rounds_run <- outcome.rounds_run + 1;
    let label = Printf.sprintf "%s round %d" tag round in
    (* arm one silent corruption at a near-future I/O point *)
    let ios = (Fault.stats fault).Fault.ios in
    let at = ios + 1 + Prng.int rng 40 in
    (match Prng.int rng 3 with
    | 0 -> Fault.arm_bitrot fault ~at
    | 1 -> Fault.arm_lost_write fault ~at
    | _ -> Fault.arm_misdirected_write fault ~at);
    if
      config.crash_every_rounds > 0
      && round mod config.crash_every_rounds = 0
    then Fault.arm_crash_in fault (10 + Prng.int rng 30);
    (* run the round's workload, the incremental scrubber riding along *)
    (try
       for i = 1 to config.steps_per_round do
         outcome.actions <- outcome.actions + 1;
         step (i mod config.clients);
         if i mod 8 = 0 then ignore (Scrubber.step scrubber)
       done;
       settle ()
     with Fault.Injected_crash _ -> handle_crash ~label);
    (* rot the archive's own media: one archived frame still covered by
       the retained live log (so a heal source exists) *)
    let low = Lsn.to_int (Log_store.truncated_below (Db.log_store db)) - 1 in
    let durable = Lsn.to_int (Log_store.durable (Db.log_store db)) in
    let hi = min (Db.archived_upto db) durable in
    if round mod 2 = 0 && hi > low then begin
      Archive.bitrot_wal archive ~idx:(low + Prng.int rng (hi - low));
      outcome.injected_archive_rot <- outcome.injected_archive_rot + 1
    end;
    (* full sweep: everything injected so far must come back healed *)
    ignore (full_scrub ~label);
    check_state ~label;
    (* exercise the governor's side of the contract: checkpoint and
       truncate — the archive pin must keep every unarchived or
       restore-critical record *)
    (* an armed crash that outlived the workload steps can fire here,
       nested into the maintenance work itself — a checkpoint or backup
       dying mid-flight is exactly the kind of history the storm wants *)
    (try
       if round mod 3 = 0 then begin
         Db.shutdown db;
         Db.checkpoint db;
         ignore (Db.truncate_log db)
       end;
       if round mod 4 = 0 then ignore (Db.backup_to_archive db)
     with Fault.Injected_crash _ ->
       handle_crash ~label:(label ^ " maintenance"))
  done;
  Fault.disarm_crash fault;
  (* settle in-flight work, take a final full backup, remember the
     committed state *)
  Db.crash db;
  ignore (full_scrub ~label:"final scrub");
  (match recover_quiet () with
  | _ -> outcome.recoveries <- outcome.recoveries + 1
  | exception e ->
      fail outcome
        (Printf.sprintf "final recovery raised %s" (Format.asprintf "%a" Errors.pp_exn e)));
  check_state ~label:"final";
  Fault.set_enabled fault false;
  ignore (Db.backup_to_archive db);
  let committed =
    Array.init config.n_objects (fun i -> Db.peek db (Oid.of_int i))
  in
  (* total media loss: both devices gone. A cold restore from the
     archive alone — reopened from its own files when mirrored — must
     reproduce the exact committed state. *)
  let restored_backend = backend_of config ~tag:(tag ^ "-restored") in
  let db2 =
    Db.create ~backend:restored_backend (Db.config db)
  in
  (* when the archive is mirrored to disk, restore from a {e cold open}
     of its files — nothing in-memory survives the "loss" *)
  let cold_archive =
    match config.archive_root with
    | Some root -> Archive.open_dir (Filename.concat root tag)
    | None -> archive
  in
  (match Db.restore_from_archive db2 cold_archive with
  | _ ->
      outcome.cold_restores <- outcome.cold_restores + 1;
      let got =
        Array.init config.n_objects (fun i -> Db.peek db2 (Oid.of_int i))
      in
      if got <> committed then
        fail outcome
          (Printf.sprintf "cold restore diverged: got [%s] want [%s]"
             (String.concat ";" (Array.to_list (Array.map string_of_int got)))
             (String.concat ";"
                (Array.to_list (Array.map string_of_int committed))));
      (match Db.validate db2 with
      | Ok () -> ()
      | Error msg -> fail outcome (Printf.sprintf "cold restore invariants: %s" msg));
      (match Db.audit db2 with
      | [] -> ()
      | vs ->
          fail outcome
            (Printf.sprintf "cold restore audit: %s" (String.concat "; " vs)))
  | exception e ->
      fail outcome
        (Printf.sprintf "cold restore raised %s" (Format.asprintf "%a" Errors.pp_exn e)));
  (* absorb the tallies *)
  let s = Fault.stats fault in
  outcome.injected_bitrot <- outcome.injected_bitrot + s.Fault.bitrots;
  outcome.injected_lost <- outcome.injected_lost + s.Fault.lost_writes;
  outcome.injected_misdirected <-
    outcome.injected_misdirected + s.Fault.misdirected_writes;
  let checked, detected, healed, unhealable = Db.media_counters db in
  outcome.scrub_checked <- outcome.scrub_checked + checked;
  outcome.detected <- outcome.detected + detected;
  outcome.healed <- outcome.healed + healed;
  outcome.unhealable <- outcome.unhealable + unhealable;
  outcome.archived <- outcome.archived + Db.archived_upto db;
  if outcome.unhealable > 0 then
    fail outcome
      (Printf.sprintf "%d corruptions had no intact source" outcome.unhealable);
  (* forensic dump on failure *)
  (match config.forensic_dir with
  | Some dir when not (ok outcome) ->
      (try
         ignore
           (Forensics.write ~dir ~kind:"media" ~seed:config.seed ~tag
              ~failures:outcome.failures db)
       with _ -> ())
  | _ -> ());
  Db.close db2;
  (match restored_backend with
  | Backend.File { dir } -> Backend.remove_tree dir
  | Backend.Sim -> ());
  Db.close db;
  (match Db.backend db with
  | Backend.File { dir } -> Backend.remove_tree dir
  | Backend.Sim -> ());
  (match config.archive_root with
  | Some root -> Backend.remove_tree (Filename.concat root tag)
  | None -> ());
  outcome

(* Sweep: several seeds on one engine, merged. *)
let run_seeds ?(config = default_config) ?(impl = Config.Rh) ~seeds () =
  let out = ref (fresh_outcome ()) in
  for s = 1 to seeds do
    let config = { config with seed = Int64.add config.seed (Int64.of_int s) } in
    out := merge !out (run ~config ~impl ())
  done;
  !out
