(** The semantic oracle: a pure, engine-free replay of a script that
    computes the database state recovery must produce.

    It implements the paper's §4.1 correctness properties directly: an
    update is applied iff the transaction {e responsible} for it when
    the crash hits (its last delegatee, or its invoker if never
    delegated) committed before the crash; every other update is
    obliterated. Engine results after crash + recovery are compared
    against this, for every prefix of a script. *)

val expected : n_objects:int -> ?crash_at:int -> Script.t -> int array
(** [expected ~n_objects ~crash_at script]: final object values when the
    crash happens after the first [crash_at] actions (default: after the
    whole script). *)

val expected_for :
  n_objects:int -> committed:(int -> bool) -> ?crash_at:int -> Script.t ->
  int array
(** Like {!expected}, but with the committed set supplied by the caller
    instead of derived from the prefix. Fault-injection harnesses need
    this: when a crash lands {e inside} a commit action, whether that
    transaction committed is decided by which records reached the stable
    log, so the ground truth is read off the durable log rather than the
    script. *)

val winners : ?crash_at:int -> Script.t -> int list
(** Symbolic indices of transactions committed before the crash. *)
