(** The media-storm: silent corruption under fire.

    A seeded multi-client workload (with delegation) interleaved with
    silent-corruption injections — at-rest bitrot on pages and the
    durable WAL, lost and misdirected data-page writes, rot in the
    archive's own files — plus crashes, while the incremental scrubber
    rides along and full sweeps run every round. Every round asserts
    that everything the scrubber quarantined was healed from a redundant
    source (shadow, archive frame, live log) and that recovered state
    matches the responsibility-ledger oracle. The final phase takes a
    full archive backup, destroys {e all} media, and proves a cold
    {!Ariesrh_core.Db.restore_from_archive} — from the archive's own
    files when mirrored — reproduces the exact committed state.

    Schedules are keyed on the fault injector's I/O clock, so a given
    seed injects the identical corruption sequence on the Sim and File
    backends. *)

open Ariesrh_core

type config = {
  seed : int64;
  rounds : int;
  steps_per_round : int;
  clients : int;
  ops_per_txn : int;
  n_objects : int;
  p_delegate : float;
  crash_every_rounds : int;  (** arm a crash every n-th round; [0] never *)
  scrub_batch : int;
  group_commit : int;
  audit : bool;
  backend_root : string option;
      (** run on the file backend, one directory per storm under this
          root; [None] (default) = Sim *)
  archive_root : string option;
      (** mirror the archive to disk and cold-open it for the final
          restore; [None] = in-memory archive *)
  forensic_dir : string option;
}

val default_config : config
(** seed 1, 12 rounds of 80 steps, 4 clients, crash every 3rd round,
    scrub batch 8, audit on, Sim backend, in-memory archive. *)

type outcome = {
  mutable rounds_run : int;
  mutable actions : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable injected_bitrot : int;
  mutable injected_lost : int;
  mutable injected_misdirected : int;
  mutable injected_archive_rot : int;
  mutable detected : int;
  mutable healed : int;
  mutable unhealable : int;
  mutable scrub_checked : int;
  mutable archived : int;
  mutable cold_restores : int;
  mutable checks : int;
  mutable failures : string list;
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
val merge : outcome -> outcome -> outcome

val run : ?config:config -> ?impl:Config.delegation_impl -> unit -> outcome
(** One full storm on one engine: rounds of workload + injection +
    scrub + oracle checks, then the total-media-loss cold restore. *)

val run_seeds :
  ?config:config -> ?impl:Config.delegation_impl -> seeds:int -> unit -> outcome
(** [seeds] storms with distinct seeds, outcomes merged. *)
