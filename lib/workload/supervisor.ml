open Ariesrh_types
open Ariesrh_core
module Fault = Ariesrh_fault.Fault
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Backend = Ariesrh_storage.Backend

type config = {
  seed : int64;
  kill_step : int;
  max_kills : int;
  tear_data_every : int;
  tear_data_on_crash : bool;
  tear_log_on_crash : bool;
  group_commit : int;
  record_cache : int;
  audit : bool;
  root : string;
  forensic_dir : string option;
  keep_dirs : bool;
}

let default_config =
  {
    seed = 1L;
    kill_step = 1;
    max_kills = max_int;
    tear_data_every = 7;
    tear_data_on_crash = true;
    tear_log_on_crash = true;
    group_commit = 0;
    record_cache = Config.default.Config.record_cache;
    audit = true;
    root = Filename.concat (Filename.get_temp_dir_name ()) "ariesrh-storm";
    forensic_dir = None;
    keep_dirs = false;
  }

let fresh_outcome () =
  {
    Crash_storm.runs = 0;
    actions = 0;
    crashes = 0;
    nested_crashes = 0;
    recoveries = 0;
    torn_writes = 0;
    torn_flushes = 0;
    amputated = 0;
    repaired_pages = 0;
    fault_points = 0;
    checks = 0;
    tt_reads = 0;
    migrations = 0;
    migration_refusals = 0;
    xfers_resolved = 0;
    failures = [];
  }

let fail (o : Crash_storm.outcome) msg = o.failures <- msg :: o.failures

let make_fault config ~salt =
  let fault =
    Fault.create ~seed:(Int64.add config.seed (Int64.of_int salt)) ()
  in
  Fault.set_tear_data_every fault config.tear_data_every;
  Fault.set_tear_data_on_crash fault config.tear_data_on_crash;
  Fault.set_tear_log_on_crash fault config.tear_log_on_crash;
  fault

(* --- progress protocol ---

   The child reports the count of fully completed actions by rewriting
   an 8-byte little-endian integer at offset 0 of [dir/progress] after
   every action. The write is a single small [write(2)] at a fixed
   offset, and the kill is the child killing itself synchronously at a
   fault point inside an engine operation — never between an action
   completing and its progress write — so the parent always reads the
   exact count. No fsync: SIGKILL does not drop the OS page cache. *)

let progress_path dir = Filename.concat dir "progress"
let finished_path dir = Filename.concat dir "finished"
let error_path dir = Filename.concat dir "child_error"

let write_progress fd i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  ignore (Unix.write fd b 0 8)

let read_progress dir =
  match open_in_bin (progress_path dir) with
  | ic ->
      let n = in_channel_length ic in
      let v =
        if n < 8 then 0
        else begin
          let b = Bytes.create 8 in
          really_input ic b 0 8;
          Int64.to_int (Bytes.get_int64_le b 0)
        end
      in
      close_in ic;
      v
  | exception Sys_error _ -> 0

let write_text path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- the child ---

   Runs in the forked process and never returns: it replays the script
   on the file backend with the injector in [Kill_process] mode, so the
   armed crash point delivers a real SIGKILL mid-syscall-sequence
   instead of an exception. Exits via [Unix._exit] in every path —
   the parent's buffered channels must not be flushed twice. *)

let child_run config ~impl ~script ~n_objects ~dir ~kill_at =
  let code =
    try
      let pfd =
        Unix.openfile (progress_path dir)
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644
      in
      write_progress pfd 0;
      let fault = make_fault config ~salt:kill_at in
      Fault.set_crash_mode fault Fault.Kill_process;
      Fault.arm_crash_at fault kill_at;
      let db =
        Driver.fresh_db ~fault
          ~backend:(Backend.File { dir })
          ~impl ~group_commit:config.group_commit
          ~record_cache:config.record_cache ~audit:false ~n_objects ()
      in
      Driver.run ~on_action:(fun i -> write_progress pfd (i + 1)) db script;
      (* the whole script survived: the scheduled kill lies beyond its
         I/O count. Shut down cleanly so the parent can verify the
         no-crash end state too. *)
      Db.shutdown db;
      Db.close db;
      write_text (finished_path dir) "";
      0
    with e ->
      (* a SIGKILL is not an exception — anything caught here is a
         harness or engine bug, reported to the parent via a marker *)
      (try write_text (error_path dir) (Printexc.to_string e) with _ -> ());
      2
  in
  Unix._exit code

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Rebuild the symbolic-txn -> xid mapping the dead child had: a fresh
   database hands out xids sequentially from 1, one per executed
   [Begin], and nothing else consumes them — so replaying the script
   prefix reproduces the child's mapping exactly. *)
let replay_xids script ~executed =
  let map = Hashtbl.create 16 in
  let next = ref 1 in
  List.iteri
    (fun i a ->
      if i < executed then
        match a with
        | Script.Begin t ->
            Hashtbl.replace map t (Xid.of_int !next);
            incr next
        | _ -> ())
    script;
  map

let durable_commits log =
  let s = ref Xid.Set.empty in
  ignore
    (Log_store.iter_valid_forward log ~from:(Log_store.truncated_below log)
       (fun _ r ->
         match r.Record.body with
         | Record.Commit -> s := Xid.Set.add (Record.writer_exn r) !s
         | _ -> ()));
  !s

let pp_arr a = String.concat ";" (Array.to_list (Array.map string_of_int a))

let peek_all db n =
  Array.init n (fun i -> Db.peek db (Oid.of_int i))

(* Post-mortem verification in the parent: reopen the database over
   whatever files the dead process left behind, recover, and hold the
   result against the oracle — then prove restart idempotence twice,
   once in-process (crash + bare restart) and once the hard way (close
   the handle and reopen the directory from scratch, as the next
   process would). Returns the db currently holding the directory so
   the caller can dump forensics / clean up. *)
let verify ~config ~(outcome : Crash_storm.outcome) ~impl ~script ~n_objects
    ~dir ~label ~executed =
  let db =
    Driver.fresh_db
      ~backend:(Backend.File { dir })
      ~impl ~group_commit:config.group_commit
      ~record_cache:config.record_cache ~audit:config.audit
      ~tracing:(config.forensic_dir <> None)
      ~n_objects ()
  in
  let commits = durable_commits (Db.log_store db) in
  let xid_map = replay_xids script ~executed in
  let committed t =
    match Hashtbl.find_opt xid_map t with
    | Some x -> Xid.Set.mem x commits
    | None -> false
  in
  let expected =
    Oracle.expected_for ~n_objects ~committed ~crash_at:executed script
  in
  let amputated_before = Log_store.amputated_total (Db.log_store db) in
  match Db.recover db with
  | exception e ->
      fail outcome
        (Printf.sprintf "%s: restart over dead process's files raised %s"
           label (Printexc.to_string e));
      (db, expected)
  | _report -> (
      outcome.recoveries <- outcome.recoveries + 1;
      outcome.amputated <-
        outcome.amputated
        + Log_store.amputated_total (Db.log_store db)
        - amputated_before;
      outcome.repaired_pages <- outcome.repaired_pages + Db.repairs_total db;
      outcome.checks <- outcome.checks + 1;
      let actual = peek_all db n_objects in
      if actual <> expected then
        fail outcome
          (Printf.sprintf "%s: state mismatch: got [%s] want [%s]" label
             (pp_arr actual) (pp_arr expected));
      (match Db.validate db with
      | Ok () -> ()
      | Error msg ->
          fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
      (* in-process idempotence: crash + bare restart *)
      (match
         Db.crash db;
         Db.recover db
       with
      | _ ->
          outcome.recoveries <- outcome.recoveries + 1;
          let again = peek_all db n_objects in
          if again <> expected then
            fail outcome
              (Printf.sprintf "%s: restart not idempotent: got [%s] want [%s]"
                 label (pp_arr again) (pp_arr expected))
      | exception e ->
          fail outcome
            (Printf.sprintf "%s: re-restart raised %s" label
               (Printexc.to_string e)));
      (* cross-process idempotence: abandon this handle and reopen the
         directory cold, exactly as yet another process would find it
         after the recovered process also died *)
      Db.close db;
      let db2 =
        Driver.fresh_db
          ~backend:(Backend.File { dir })
          ~impl ~group_commit:config.group_commit
          ~record_cache:config.record_cache ~audit:config.audit
          ~tracing:(config.forensic_dir <> None)
          ~n_objects ()
      in
      match Db.recover db2 with
      | exception e ->
          fail outcome
            (Printf.sprintf "%s: second-process restart raised %s" label
               (Printexc.to_string e));
          (db2, expected)
      | _ ->
          outcome.recoveries <- outcome.recoveries + 1;
          let cold = peek_all db2 n_objects in
          if cold <> expected then
            fail outcome
              (Printf.sprintf
                 "%s: second-process restart diverged: got [%s] want [%s]"
                 label (pp_arr cold) (pp_arr expected));
          (db2, expected))

let maybe_dump ~config ~(outcome : Crash_storm.outcome) ~fail_before ~kill_at
    ~expected db =
  match config.forensic_dir with
  | Some dir when List.length outcome.failures > fail_before ->
      let fresh =
        List.filteri
          (fun i _ -> i < List.length outcome.failures - fail_before)
          outcome.failures
      in
      (try
         ignore
           (Forensics.write ~dir ~kind:"external" ~seed:config.seed
              ~crash_io:kill_at ~expected ~failures:fresh db)
       with _ -> ())
  | _ -> ()

let run ?(config = default_config) ?(impl = Config.Rh) spec =
  let outcome = fresh_outcome () in
  let script = Gen.generate spec ~seed:config.seed in
  let n_objects = spec.Gen.n_objects in
  let total_actions = List.length script in
  let kill_at = ref (max 1 config.kill_step) in
  let continue = ref true in
  Backend.mkdir_p config.root;
  while !continue do
    outcome.runs <- outcome.runs + 1;
    let dir = Filename.concat config.root (Printf.sprintf "io%d" !kill_at) in
    Backend.remove_tree dir;
    Backend.mkdir_p dir;
    (match Unix.fork () with
    | 0 -> child_run config ~impl ~script ~n_objects ~dir ~kill_at:!kill_at
    | pid -> (
        let status = waitpid_retry pid in
        let executed = read_progress dir in
        outcome.actions <- outcome.actions + executed;
        let label = Printf.sprintf "kill -9 at io=%d" !kill_at in
        let finished = Sys.file_exists (finished_path dir) in
        match status with
        | Unix.WSIGNALED s when s = Sys.sigkill && not finished ->
            outcome.crashes <- outcome.crashes + 1;
            outcome.fault_points <- outcome.fault_points + 1;
            let fail_before = List.length outcome.failures in
            let db, expected =
              verify ~config ~outcome ~impl ~script ~n_objects ~dir ~label
                ~executed
            in
            maybe_dump ~config ~outcome ~fail_before ~kill_at:!kill_at
              ~expected db;
            Db.close db;
            if not config.keep_dirs then Backend.remove_tree dir
        | Unix.WEXITED 0 when finished ->
            (* the scheduled kill lies beyond the script's I/O count:
               every I/O has had its turn as a kill point. Verify the
               clean end state and stop. *)
            continue := false;
            let fail_before = List.length outcome.failures in
            let db, expected =
              verify ~config ~outcome ~impl ~script ~n_objects ~dir
                ~label:"clean finish" ~executed:total_actions
            in
            maybe_dump ~config ~outcome ~fail_before ~kill_at:!kill_at
              ~expected db;
            Db.close db;
            if not config.keep_dirs then Backend.remove_tree dir
        | status ->
            let detail =
              match status with
              | Unix.WEXITED c ->
                  let err =
                    match open_in_bin (error_path dir) with
                    | ic ->
                        let n = in_channel_length ic in
                        let s = really_input_string ic (min n 512) in
                        close_in ic;
                        ": " ^ s
                    | exception Sys_error _ -> ""
                  in
                  Printf.sprintf "child exited %d%s" c err
              | Unix.WSIGNALED s -> Printf.sprintf "child died on signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "child stopped on signal %d" s
            in
            fail outcome (Printf.sprintf "%s: %s" label detail);
            continue := false));
    if outcome.runs >= config.max_kills then continue := false;
    kill_at := !kill_at + max 1 config.kill_step
  done;
  if not config.keep_dirs then (try Unix.rmdir config.root with _ -> ());
  outcome
