open Ariesrh_types
open Ariesrh_core
module Fault = Ariesrh_fault.Fault
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Prng = Ariesrh_util.Prng
module Temporal = Ariesrh_temporal.Temporal
module Sharded = Ariesrh_shard.Sharded

type config = {
  seed : int64;
  tear_data_every : int;
  tear_data_on_crash : bool;
  tear_log_on_crash : bool;
  crash_step : int;
  recovery_crash_depth : int;
  recovery_crash_gap : int;
  group_commit : int;
  record_cache : int;
  audit : bool;
  time_travel : bool;
  forensic_dir : string option;
  backend_root : string option;
  shards : int;
}

let default_config =
  {
    seed = 1L;
    tear_data_every = 7;
    tear_data_on_crash = true;
    tear_log_on_crash = true;
    crash_step = 1;
    recovery_crash_depth = 2;
    recovery_crash_gap = 3;
    group_commit = 0;
    record_cache = Config.default.Config.record_cache;
    audit = true;
    time_travel = true;
    forensic_dir = None;
    backend_root = None;
    shards = 1;
  }

(* Each storm database gets its own directory under [backend_root]: an
   existing directory would be the reopen path, and a storm iteration
   must start from an empty database. *)
let backend_of config ~tag =
  match config.backend_root with
  | None -> Ariesrh_storage.Backend.Sim
  | Some root ->
      let dir = Filename.concat root tag in
      Ariesrh_storage.Backend.remove_tree dir;
      Ariesrh_storage.Backend.File { dir }

let backend_cleanup config db =
  Db.close db;
  match Db.backend db with
  | Ariesrh_storage.Backend.File { dir } when config.backend_root <> None ->
      Ariesrh_storage.Backend.remove_tree dir
  | _ -> ()

type outcome = {
  mutable runs : int;
  mutable actions : int;
  mutable crashes : int;
  mutable nested_crashes : int;
  mutable recoveries : int;
  mutable torn_writes : int;
  mutable torn_flushes : int;
  mutable amputated : int;
  mutable repaired_pages : int;
  mutable fault_points : int;
  mutable checks : int;
  mutable tt_reads : int;
  mutable migrations : int;
  mutable migration_refusals : int;
  mutable xfers_resolved : int;
  mutable failures : string list;
}

let fresh_outcome () =
  {
    runs = 0;
    actions = 0;
    crashes = 0;
    nested_crashes = 0;
    recoveries = 0;
    torn_writes = 0;
    torn_flushes = 0;
    amputated = 0;
    repaired_pages = 0;
    fault_points = 0;
    checks = 0;
    tt_reads = 0;
    migrations = 0;
    migration_refusals = 0;
    xfers_resolved = 0;
    failures = [];
  }

let ok o = o.failures = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>runs=%d actions=%d@ crashes=%d nested=%d recoveries=%d@ \
     torn_writes=%d torn_flushes=%d amputated=%d repaired_pages=%d@ \
     fault_points=%d checks=%d tt_reads=%d@ migrations=%d \
     migration_refusals=%d xfers_resolved=%d failures=%d%a@]"
    o.runs o.actions o.crashes o.nested_crashes o.recoveries o.torn_writes
    o.torn_flushes o.amputated o.repaired_pages o.fault_points o.checks
    o.tt_reads o.migrations o.migration_refusals o.xfers_resolved
    (List.length o.failures)
    (fun ppf -> function
      | [] -> ()
      | fs ->
          List.iter (fun f -> Format.fprintf ppf "@   FAIL %s" f) (List.rev fs))
    o.failures

let merge a b =
  {
    runs = a.runs + b.runs;
    actions = a.actions + b.actions;
    crashes = a.crashes + b.crashes;
    nested_crashes = a.nested_crashes + b.nested_crashes;
    recoveries = a.recoveries + b.recoveries;
    torn_writes = a.torn_writes + b.torn_writes;
    torn_flushes = a.torn_flushes + b.torn_flushes;
    amputated = a.amputated + b.amputated;
    repaired_pages = a.repaired_pages + b.repaired_pages;
    fault_points = a.fault_points + b.fault_points;
    checks = a.checks + b.checks;
    tt_reads = a.tt_reads + b.tt_reads;
    migrations = a.migrations + b.migrations;
    migration_refusals = a.migration_refusals + b.migration_refusals;
    xfers_resolved = a.xfers_resolved + b.xfers_resolved;
    failures = b.failures @ a.failures;
  }

let fail o msg = o.failures <- msg :: o.failures

(* Best-effort forensic dump when a check round added failures: freeze
   the trace window, per-mismatch histories with lineage, and a metrics
   snapshot (see {!Forensics}). Runs with faults gated off and is never
   allowed to take the storm down. *)
let maybe_dump ~config ~outcome ~fail_before ~kind ?crash_io ?tag ?expected
    fault db =
  match config.forensic_dir with
  | Some dir when List.length outcome.failures > fail_before ->
      Fault.set_enabled fault false;
      let fresh =
        List.filteri
          (fun i _ -> i < List.length outcome.failures - fail_before)
          outcome.failures
      in
      (try
         ignore
           (Forensics.write ~dir ~kind ~seed:config.seed ?crash_io ?tag
              ?expected ~failures:fresh db)
       with _ -> ());
      Fault.set_enabled fault true
  | _ -> ()

(* Ground truth for "who committed": the transactions whose commit
   records are durable and decode — exactly what any restart will see.
   Called after [Db.crash], when only the stable prefix (with its
   possibly-torn tail) remains. *)
let durable_commits log =
  let s = ref Xid.Set.empty in
  ignore
    (Log_store.iter_valid_forward log ~from:(Log_store.truncated_below log)
       (fun _ r ->
         match r.Record.body with
         | Record.Commit -> s := Xid.Set.add (Record.writer_exn r) !s
         | _ -> ()));
  !s

(* Restart under continued fault injection: arm a re-crash a few I/Os
   into each recovery until [recovery_crash_depth] nested crashes have
   fired, then let it finish. Every injected crash is answered with
   [Db.crash] and another restart — the re-entrancy the storm proves. *)
let recover_until_stable ~config ~outcome fault db =
  (* count amputation via the log store's lifetime counter: the restart
     attempt that drops the corrupt tail may itself be killed by a
     nested crash, in which case its report never materialises but the
     amputation did happen (and the retry finds a clean tail) *)
  let amputated_before = Log_store.amputated_total (Db.log_store db) in
  let rec go depth =
    if depth < config.recovery_crash_depth then
      Fault.arm_crash_in fault config.recovery_crash_gap
    else Fault.disarm_crash fault;
    match Db.recover db with
    | report ->
        Fault.disarm_crash fault;
        outcome.recoveries <- outcome.recoveries + 1;
        outcome.amputated <-
          outcome.amputated
          + Log_store.amputated_total (Db.log_store db)
          - amputated_before;
        Ok report
    | exception Fault.Injected_crash _ when depth <= config.recovery_crash_depth
      ->
        outcome.nested_crashes <- outcome.nested_crashes + 1;
        Db.crash db;
        go (depth + 1)
    | exception e ->
        (* anything else escaping restart is a storm failure *)
        Error (Printexc.to_string e)
  in
  go 0

(* Post-restart verification: state against the oracle, structural
   invariants, and restart idempotence (crash + bare restart must
   reproduce the same state). Runs with faults gated off so the check
   itself is deterministic. *)
(* On a mismatch, the first diverging object's log history (updates,
   delegations, compensations) is the fastest route to the bug. *)
let describe_object db i =
  let b = Buffer.create 128 in
  List.iter
    (fun e ->
      Buffer.add_string b
        (match e with
        | Db.Updated { lsn; invoker; op } ->
            Printf.sprintf " %d:upd(%s,%s)" (Lsn.to_int lsn)
              (Format.asprintf "%a" Xid.pp invoker)
              (match op with
              | Record.Set { before; after } ->
                  Printf.sprintf "set %d->%d" before after
              | Record.Add d -> Printf.sprintf "%+d" d)
        | Db.Delegated { lsn; from_; to_; _ } ->
            Printf.sprintf " %d:del(%s->%s)" (Lsn.to_int lsn)
              (Format.asprintf "%a" Xid.pp from_)
              (Format.asprintf "%a" Xid.pp to_)
        | Db.Compensated { lsn; by; undone } ->
            Printf.sprintf " %d:clr(%s,undid %d)" (Lsn.to_int lsn)
              (Format.asprintf "%a" Xid.pp by)
              (Lsn.to_int undone)))
    (Db.object_history db (Oid.of_int i));
  Buffer.contents b

let check_state ~outcome ~label fault db expected =
  Fault.set_enabled fault false;
  outcome.checks <- outcome.checks + 1;
  let peek () =
    Array.init (Array.length expected) (fun i -> Db.peek db (Oid.of_int i))
  in
  let pp_arr a =
    String.concat ";" (Array.to_list (Array.map string_of_int a))
  in
  let first_diff a =
    let rec go i =
      if i >= Array.length a then ""
      else if a.(i) <> expected.(i) then
        Printf.sprintf " (ob%d: got %d want %d; history:%s)" i a.(i)
          expected.(i) (describe_object db i)
      else go (i + 1)
    in
    go 0
  in
  let actual = peek () in
  if actual <> expected then
    fail outcome
      (Printf.sprintf "%s: state mismatch: got [%s] want [%s]%s" label
         (pp_arr actual) (pp_arr expected) (first_diff actual));
  (match Db.validate db with
  | Ok () -> ()
  | Error msg -> fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
  (match Db.crash db; Db.recover db with
  | _ ->
      outcome.recoveries <- outcome.recoveries + 1;
      let again = peek () in
      if again <> expected then
        fail outcome
          (Printf.sprintf "%s: restart not idempotent: got [%s] want [%s]"
             label (pp_arr again) (pp_arr expected))
  | exception e ->
      fail outcome
        (Printf.sprintf "%s: re-restart raised %s" label (Printexc.to_string e)));
  Fault.set_enabled fault true

(* --- time-travel readers --- *)

let pp_arr a = String.concat ";" (Array.to_list (Array.map string_of_int a))

(* Evenly spaced subset of [points] (first and last always included)
   bounding the per-round cost of the as_of sweep. *)
let sample_points points ~limit =
  let n = List.length points in
  if n <= limit || limit < 2 then points
  else
    let arr = Array.of_list points in
    List.init limit (fun i -> arr.(i * (n - 1) / (limit - 1)))

(* The as_of-equals-ledger oracle: at each sampled durable commit LSN,
   the temporal snapshot reconstructed from the log (before/after
   images, delegate records, surgery CLRs) must equal the harness's
   expected state at that point. Caller has faults gated off. *)
let tt_check ~outcome ~label db ~expected_at points =
  List.iter
    (fun (l, x) ->
      outcome.tt_reads <- outcome.tt_reads + 1;
      let want = expected_at l in
      match Temporal.snapshot_at db l with
      | snap ->
          if snap <> want then
            fail outcome
              (Printf.sprintf
                 "%s: as_of lsn %d (commit of %s): got [%s] want [%s]" label
                 (Lsn.to_int l)
                 (Format.asprintf "%a" Xid.pp x)
                 (pp_arr snap) (pp_arr want))
      | exception e ->
          fail outcome
            (Printf.sprintf "%s: as_of lsn %d raised %s" label (Lsn.to_int l)
               (Format.asprintf "%a" Errors.pp_exn e)))
    points

(* xid -> durable commit LSN, from the retained log *)
let commit_lsn_map cps =
  let t = Xid.Tbl.create 64 in
  List.iter
    (fun (l, x) -> if not (Xid.Tbl.mem t x) then Xid.Tbl.replace t x l)
    cps;
  t

let absorb_fault_stats outcome fault =
  let s = Fault.stats fault in
  outcome.torn_writes <- outcome.torn_writes + s.Fault.torn_writes;
  outcome.torn_flushes <- outcome.torn_flushes + s.Fault.torn_flushes;
  outcome.fault_points <- outcome.fault_points + Fault.fault_points fault

let make_fault config ~salt =
  let fault = Fault.create ~seed:(Int64.add config.seed (Int64.of_int salt)) () in
  Fault.set_tear_data_every fault config.tear_data_every;
  Fault.set_tear_data_on_crash fault config.tear_data_on_crash;
  Fault.set_tear_log_on_crash fault config.tear_log_on_crash;
  fault

(* --- sharded plumbing ---

   A sharded storm is the same storm with the engine swapped: one
   shared fault injector (single logical I/O clock), durable commits
   read per shard (raw xids collide across logs, so the committed test
   pairs each façade xid with its shard), recovery through
   [Sharded.recover] (per-shard restart + transfer resolution + the
   cross-shard audit), and checks through home-routed peeks. The
   time-travel readers stay on the single-db storms: an as_of point is
   a per-shard LSN, and a cross-shard cut is a different instrument. *)

let sharded_backend_scope config ~tag f =
  match config.backend_root with
  | None -> f ()
  | Some root ->
      let dir = Filename.concat root tag in
      Ariesrh_storage.Backend.remove_tree dir;
      let k = ref 0 in
      Db.set_backend_factory
        (Some
           (fun () ->
             let d = Filename.concat dir (Printf.sprintf "shard%d" !k) in
             incr k;
             Ariesrh_storage.Backend.File { dir = d }));
      Fun.protect ~finally:(fun () -> Db.set_backend_factory None) f

let sharded_cleanup config ~tag sh =
  Sharded.close sh;
  match config.backend_root with
  | None -> ()
  | Some root ->
      Ariesrh_storage.Backend.remove_tree (Filename.concat root tag)

let durable_commits_sharded sh =
  Array.map (fun db -> durable_commits (Db.log_store db)) (Sharded.dbs sh)

let amputated_sharded sh =
  Array.fold_left
    (fun a db -> a + Log_store.amputated_total (Db.log_store db))
    0 (Sharded.dbs sh)

let repairs_sharded sh =
  Array.fold_left (fun a db -> a + Db.repairs_total db) 0 (Sharded.dbs sh)

let absorb_sharded_counters outcome sh =
  let c = Sharded.counters sh in
  outcome.migrations <- outcome.migrations + c.Sharded.migrations;
  outcome.migration_refusals <-
    outcome.migration_refusals + c.Sharded.migrations_refused;
  outcome.xfers_resolved <-
    outcome.xfers_resolved + c.Sharded.resolved_forward
    + c.Sharded.resolved_back

let recover_until_stable_sharded ~config ~outcome fault sh =
  let amputated_before = amputated_sharded sh in
  let rec go depth =
    if depth < config.recovery_crash_depth then
      Fault.arm_crash_in fault config.recovery_crash_gap
    else Fault.disarm_crash fault;
    match Sharded.recover sh with
    | _reports ->
        Fault.disarm_crash fault;
        outcome.recoveries <- outcome.recoveries + 1;
        outcome.amputated <-
          outcome.amputated + amputated_sharded sh - amputated_before;
        Ok ()
    | exception Fault.Injected_crash _ when depth <= config.recovery_crash_depth
      ->
        (* the re-crash may land anywhere: inside one shard's restart,
           between shards, or mid-resolution — the re-run must converge
           regardless *)
        outcome.nested_crashes <- outcome.nested_crashes + 1;
        Sharded.crash sh;
        go (depth + 1)
    | exception e -> Error (Printexc.to_string e)
  in
  go 0

let check_state_sharded ~outcome ~label fault sh expected =
  Fault.set_enabled fault false;
  outcome.checks <- outcome.checks + 1;
  let peek () =
    Array.init (Array.length expected) (fun i -> Sharded.peek sh (Oid.of_int i))
  in
  let pp_arr a =
    String.concat ";" (Array.to_list (Array.map string_of_int a))
  in
  let first_diff a =
    let rec go i =
      if i >= Array.length a then ""
      else if a.(i) <> expected.(i) then
        let oid = Oid.of_int i in
        let h = Sharded.home sh oid in
        Printf.sprintf " (ob%d@s%d: got %d want %d; history:%s)" i h a.(i)
          expected.(i)
          (describe_object (Sharded.db sh h) i)
      else go (i + 1)
    in
    go 0
  in
  let actual = peek () in
  if actual <> expected then
    fail outcome
      (Printf.sprintf "%s: state mismatch: got [%s] want [%s]%s" label
         (pp_arr actual) (pp_arr expected) (first_diff actual));
  (match Sharded.validate sh with
  | Ok () -> ()
  | Error msg -> fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
  (match
     Sharded.crash sh;
     Sharded.recover sh
   with
  | _ ->
      outcome.recoveries <- outcome.recoveries + 1;
      let again = peek () in
      if again <> expected then
        fail outcome
          (Printf.sprintf "%s: restart not idempotent: got [%s] want [%s]"
             label (pp_arr again) (pp_arr expected))
  | exception e ->
      fail outcome
        (Printf.sprintf "%s: re-restart raised %s" label (Printexc.to_string e)));
  Fault.set_enabled fault true

let maybe_dump_sharded ~config ~outcome ~fail_before ~kind ?crash_io ?tag
    ?expected fault sh =
  match config.forensic_dir with
  | Some dir when List.length outcome.failures > fail_before ->
      Fault.set_enabled fault false;
      let fresh =
        List.filteri
          (fun i _ -> i < List.length outcome.failures - fail_before)
          outcome.failures
      in
      Array.iteri
        (fun i db ->
          let tag =
            match tag with
            | Some t -> Printf.sprintf "%s-s%d" t i
            | None -> Printf.sprintf "s%d" i
          in
          try
            ignore
              (Forensics.write ~dir ~kind ~seed:config.seed ?crash_io ~tag
                 ?expected ~failures:fresh db)
          with _ -> ())
        (Sharded.dbs sh);
      Fault.set_enabled fault true
  | _ -> ()

(* --- scripted storm --- *)

let run_script_sharded ~config ~impl spec =
  let outcome = fresh_outcome () in
  let script = Gen.generate spec ~seed:config.seed in
  let n_objects = spec.Gen.n_objects in
  let homes = Shard_driver.assign_homes script ~shards:config.shards in
  let crash_io = ref (max 1 config.crash_step) in
  let continue = ref true in
  while !continue do
    outcome.runs <- outcome.runs + 1;
    let tag = Printf.sprintf "io%d" !crash_io in
    sharded_backend_scope config ~tag (fun () ->
        let fault = make_fault config ~salt:!crash_io in
        Fault.arm_crash_at fault !crash_io;
        let sh =
          Shard_driver.fresh ~fault ~impl ~group_commit:config.group_commit
            ~record_cache:config.record_cache ~audit:config.audit
            ~tracing:(config.forensic_dir <> None)
            ~shards:config.shards ~n_objects ()
        in
        let xid_map = Hashtbl.create 16 in
        let executed = ref 0 in
        let finished =
          match
            Shard_driver.run ~xid_map
              ~on_action:(fun i -> executed := i + 1)
              ~homes sh script
          with
          | () -> true
          | exception Fault.Injected_crash _ -> false
        in
        outcome.actions <- outcome.actions + !executed;
        if finished then begin
          continue := false;
          Fault.disarm_crash fault
        end
        else outcome.crashes <- outcome.crashes + 1;
        Sharded.crash sh;
        let commits = durable_commits_sharded sh in
        let committed t =
          match Hashtbl.find_opt xid_map t with
          | Some fx -> Xid.Set.mem fx.Sharded.txn commits.(fx.Sharded.shard)
          | None -> false
        in
        let expected =
          Oracle.expected_for ~n_objects ~committed ~crash_at:!executed script
        in
        let fail_before = List.length outcome.failures in
        (match recover_until_stable_sharded ~config ~outcome fault sh with
        | Error msg ->
            fail outcome
              (Printf.sprintf "script shards=%d crash_io=%d: %s" config.shards
                 !crash_io msg)
        | Ok () ->
            check_state_sharded ~outcome
              ~label:
                (Printf.sprintf "script shards=%d crash_io=%d" config.shards
                   !crash_io)
              fault sh expected);
        maybe_dump_sharded ~config ~outcome ~fail_before ~kind:"shard-crash"
          ~crash_io:!crash_io ~expected fault sh;
        absorb_fault_stats outcome fault;
        absorb_sharded_counters outcome sh;
        outcome.repaired_pages <- outcome.repaired_pages + repairs_sharded sh;
        sharded_cleanup config ~tag sh);
    crash_io := !crash_io + max 1 config.crash_step
  done;
  outcome

let run_script_plain ~config ~impl spec =
  let outcome = fresh_outcome () in
  let script = Gen.generate spec ~seed:config.seed in
  let n_objects = spec.Gen.n_objects in
  let crash_io = ref (max 1 config.crash_step) in
  let continue = ref true in
  while !continue do
    outcome.runs <- outcome.runs + 1;
    let fault = make_fault config ~salt:!crash_io in
    Fault.arm_crash_at fault !crash_io;
    let db =
      Driver.fresh_db ~fault
        ~backend:(backend_of config ~tag:(Printf.sprintf "io%d" !crash_io))
        ~impl ~group_commit:config.group_commit
        ~record_cache:config.record_cache ~audit:config.audit
        ~tracing:(config.forensic_dir <> None)
        ~n_objects ()
    in
    let xid_map = Hashtbl.create 16 in
    let executed = ref 0 in
    let finished =
      match
        Driver.run ~xid_map ~on_action:(fun i -> executed := i + 1) db script
      with
      | () -> true
      | exception Fault.Injected_crash _ -> false
    in
    outcome.actions <- outcome.actions + !executed;
    if finished then begin
      (* the armed crash point lies beyond the script's total I/O count:
         every I/O of this history has been a crash point — done *)
      continue := false;
      Fault.disarm_crash fault
    end
    else outcome.crashes <- outcome.crashes + 1;
    Db.crash db;
    let commits = durable_commits (Db.log_store db) in
    let committed t =
      match Hashtbl.find_opt xid_map t with
      | Some x -> Xid.Set.mem x commits
      | None -> false
    in
    let expected =
      Oracle.expected_for ~n_objects ~committed ~crash_at:!executed script
    in
    let fail_before = List.length outcome.failures in
    (match recover_until_stable ~config ~outcome fault db with
    | Error msg ->
        fail outcome (Printf.sprintf "script crash_io=%d: %s" !crash_io msg)
    | Ok _report ->
        check_state ~outcome
          ~label:(Printf.sprintf "script crash_io=%d" !crash_io)
          fault db expected;
        if config.time_travel then begin
          (* analytic sweep over the recovered log: as_of at each
             durable commit LSN must equal the oracle replay with the
             commit set restricted to commits at or below that LSN *)
          Fault.set_enabled fault false;
          let cps = Temporal.commit_points db in
          let commit_lsn = commit_lsn_map cps in
          let expected_at l =
            let committed_at t =
              match Hashtbl.find_opt xid_map t with
              | Some x -> (
                  match Xid.Tbl.find_opt commit_lsn x with
                  | Some cl -> Lsn.(cl <= l)
                  | None -> false)
              | None -> false
            in
            Oracle.expected_for ~n_objects ~committed:committed_at
              ~crash_at:!executed script
          in
          tt_check ~outcome
            ~label:(Printf.sprintf "script crash_io=%d tt" !crash_io)
            db ~expected_at
            (sample_points cps ~limit:8);
          Fault.set_enabled fault true
        end);
    maybe_dump ~config ~outcome ~fail_before ~kind:"crash" ~crash_io:!crash_io
      ~expected fault db;
    absorb_fault_stats outcome fault;
    outcome.repaired_pages <- outcome.repaired_pages + Db.repairs_total db;
    backend_cleanup config db;
    crash_io := !crash_io + max 1 config.crash_step
  done;
  outcome

let run_script ?(config = default_config) ?(impl = Config.Rh) spec =
  if config.shards <= 1 then run_script_plain ~config ~impl spec
  else run_script_sharded ~config ~impl spec

(* --- simulated storm --- *)

type sim_config = {
  clients : int;
  steps : int;
  ops_per_txn : int;
  n_objects : int;
  p_delegate : float;
  checkpoint_every : int;
  crash_every : int;
}

let default_sim =
  {
    clients = 4;
    steps = 600;
    ops_per_txn = 6;
    n_objects = 48;
    p_delegate = 0.25;
    checkpoint_every = 5;
    crash_every = 11;
  }

type client = {
  mutable xid : Xid.t option;
  mutable ops_left : int;
  mutable touched : int list;  (* objects this txn is responsible for *)
}

let run_sim_plain ~config ~sim () =
  let outcome = fresh_outcome () in
  let fault = make_fault config ~salt:0x5117 in
  let db =
    Driver.fresh_db ~fault
      ~backend:(backend_of config ~tag:"sim-storm")
      ~group_commit:config.group_commit
      ~record_cache:config.record_cache ~audit:config.audit
      ~tracing:(config.forensic_dir <> None)
      ~n_objects:sim.n_objects ()
  in
  let rng = Prng.create (Int64.add config.seed 77L) in
  let clients =
    Array.init sim.clients (fun _ -> { xid = None; ops_left = 0; touched = [] })
  in
  (* The responsibility ledger: engine xid -> increments it is currently
     responsible for. Entries move on delegation and never otherwise;
     expected state = the entries of transactions whose commit records
     are durable. The subtlety this relies on: a commit record's log
     force covers (prefix flush) every earlier delegate record, so a
     durable commit implies its delegated-in entries' transfers are
     durable too. *)
  let ledger : (int * int) list Xid.Tbl.t = Xid.Tbl.create 64 in
  let ledger_of x = match Xid.Tbl.find_opt ledger x with Some l -> l | None -> [] in
  let ledger_add x o d = Xid.Tbl.replace ledger x ((o, d) :: ledger_of x) in
  let ledger_move ~from_ ~to_ o =
    let moved, kept = List.partition (fun (o', _) -> o' = o) (ledger_of from_) in
    Xid.Tbl.replace ledger from_ kept;
    Xid.Tbl.replace ledger to_ (moved @ ledger_of to_)
  in
  let expected () =
    let commits = durable_commits (Db.log_store db) in
    let v = Array.make sim.n_objects 0 in
    Xid.Tbl.iter
      (fun x entries ->
        if Xid.Set.mem x commits then
          List.iter (fun (o, d) -> v.(o) <- v.(o) + d) entries)
      ledger;
    v
  in
  (* Ledger state at an arbitrary durable commit LSN: the entries of
     every transaction whose commit record is at or below that point.
     Sound because an entry's holder at LSN l either is its final
     holder (then both sides use the same commit record) or delegated
     it onward above l — and a delegation always precedes the
     delegator's commit, so that holder's commit is above l too and
     both sides exclude the entry. *)
  let tt_expected_at commit_lsn l =
    let v = Array.make sim.n_objects 0 in
    Xid.Tbl.iter
      (fun x entries ->
        match Xid.Tbl.find_opt commit_lsn x with
        | Some cl when Lsn.(cl <= l) ->
            List.iter (fun (o, d) -> v.(o) <- v.(o) + d) entries
        | _ -> ())
      ledger;
    v
  in
  (* one round of concurrent analytic readers, faults gated off so the
     storm's crash schedule is untouched *)
  let tt_round ~label ~limit =
    if config.time_travel then begin
      Fault.set_enabled fault false;
      let cps = Temporal.commit_points db in
      let commit_lsn = commit_lsn_map cps in
      tt_check ~outcome ~label db
        ~expected_at:(tt_expected_at commit_lsn)
        (sample_points cps ~limit);
      Fault.set_enabled fault true
    end
  in
  let other_active self =
    let cands = ref [] in
    Array.iteri
      (fun i c ->
        match c.xid with
        | Some x when i <> self -> cands := (i, x) :: !cands
        | _ -> ())
      clients;
    match !cands with
    | [] -> None
    | l -> Some (List.nth l (Prng.int rng (List.length l)))
  in
  let commits_done = ref 0 in
  let step self =
    let c = clients.(self) in
    match c.xid with
    | None ->
        let x = Db.begin_txn db in
        c.xid <- Some x;
        c.ops_left <- 1 + Prng.int rng sim.ops_per_txn;
        c.touched <- []
    | Some x when c.ops_left > 0 -> (
        c.ops_left <- c.ops_left - 1;
        let delegate_now =
          c.touched <> [] && Prng.float rng 1.0 < sim.p_delegate
        in
        match (if delegate_now then other_active self else None) with
        | Some (yi, y) ->
            let o = List.nth c.touched (Prng.int rng (List.length c.touched)) in
            Db.delegate db ~from_:x ~to_:y (Oid.of_int o);
            ledger_move ~from_:x ~to_:y o;
            c.touched <- List.filter (fun o' -> o' <> o) c.touched;
            clients.(yi).touched <- o :: clients.(yi).touched
        | None ->
            let o = Prng.int rng sim.n_objects in
            let d = 1 + Prng.int rng 9 in
            Db.add db x (Oid.of_int o) d;
            ledger_add x o d;
            if not (List.mem o c.touched) then c.touched <- o :: c.touched)
    | Some x ->
        if Prng.int rng 10 = 0 then Db.abort db x
        else begin
          Db.commit db x;
          incr commits_done;
          if
            sim.checkpoint_every > 0
            && !commits_done mod sim.checkpoint_every = 0
          then Db.checkpoint db
        end;
        c.xid <- None;
        c.touched <- []
  in
  let reset_clients () =
    Array.iter
      (fun c ->
        c.xid <- None;
        c.ops_left <- 0;
        c.touched <- [])
      clients
  in
  let handle_crash () =
    outcome.crashes <- outcome.crashes + 1;
    Db.crash db;
    let fail_before = List.length outcome.failures in
    (match recover_until_stable ~config ~outcome fault db with
    | Error msg ->
        fail outcome
          (Printf.sprintf "sim crash #%d: %s" outcome.crashes msg)
    | Ok _report ->
        outcome.runs <- outcome.runs + 1;
        check_state ~outcome
          ~label:(Printf.sprintf "sim crash #%d" outcome.crashes)
          fault db (expected ());
        tt_round ~label:(Printf.sprintf "sim crash #%d tt" outcome.crashes)
          ~limit:8);
    maybe_dump ~config ~outcome ~fail_before ~kind:"sim"
      ~tag:(Printf.sprintf "crash%d" outcome.crashes)
      ~expected:(expected ()) fault db;
    reset_clients ();
    Fault.arm_crash_in fault sim.crash_every
  in
  Fault.arm_crash_in fault sim.crash_every;
  for i = 1 to sim.steps do
    outcome.actions <- outcome.actions + 1;
    (try step (i mod sim.clients)
     with Fault.Injected_crash _ -> handle_crash ());
    (* an analytic time-travel reader interleaved with the OLTP
       clients: probe the latest durable commit point mid-run *)
    if i mod 37 = 0 then tt_round ~label:(Printf.sprintf "sim step %d tt" i)
        ~limit:2
  done;
  (* final clean crash + restart + reconciliation *)
  Fault.disarm_crash fault;
  Db.crash db;
  let fail_before = List.length outcome.failures in
  (match recover_until_stable ~config ~outcome fault db with
  | Error msg -> fail outcome (Printf.sprintf "sim final restart: %s" msg)
  | Ok _ ->
      check_state ~outcome ~label:"sim final" fault db (expected ());
      tt_round ~label:"sim final tt" ~limit:16);
  maybe_dump ~config ~outcome ~fail_before ~kind:"sim" ~tag:"final"
    ~expected:(expected ()) fault db;
  absorb_fault_stats outcome fault;
  outcome.repaired_pages <- outcome.repaired_pages + Db.repairs_total db;
  backend_cleanup config db;
  outcome

(* Sharded sim storm: clients are dealt round-robin onto shards and
   keep beginning their transactions there; objects are picked
   uniformly, so most touches hit an object homed on another shard and
   go through a live migration first — under the same crash schedule as
   everything else. A migration that finds the object locked by another
   shard's client is refused by the router; the client just skips that
   op (deterministically — the refusal consumes no randomness). The
   ledger is keyed by façade xid: raw xids collide across shards. *)

type shard_client = {
  mutable fx : Sharded.xid option;
  mutable left : int;
  mutable mine : int list;  (* objects this txn is responsible for *)
}

let run_sim_sharded ~config ~sim () =
  let outcome = fresh_outcome () in
  sharded_backend_scope config ~tag:"sim-storm" (fun () ->
      let fault = make_fault config ~salt:0x5117 in
      let sh =
        Shard_driver.fresh ~fault ~group_commit:config.group_commit
          ~record_cache:config.record_cache ~audit:config.audit
          ~tracing:(config.forensic_dir <> None)
          ~shards:config.shards ~n_objects:sim.n_objects ()
      in
      let rng = Prng.create (Int64.add config.seed 77L) in
      let shard_of i = i mod config.shards in
      let clients =
        Array.init sim.clients (fun _ -> { fx = None; left = 0; mine = [] })
      in
      let ledger : (Sharded.xid, (int * int) list) Hashtbl.t =
        Hashtbl.create 64
      in
      let ledger_of x =
        match Hashtbl.find_opt ledger x with Some l -> l | None -> []
      in
      let ledger_add x o d = Hashtbl.replace ledger x ((o, d) :: ledger_of x) in
      let ledger_move ~from_ ~to_ o =
        let moved, kept =
          List.partition (fun (o', _) -> o' = o) (ledger_of from_)
        in
        Hashtbl.replace ledger from_ kept;
        Hashtbl.replace ledger to_ (moved @ ledger_of to_)
      in
      let expected () =
        let commits = durable_commits_sharded sh in
        let v = Array.make sim.n_objects 0 in
        Hashtbl.iter
          (fun x entries ->
            if Xid.Set.mem x.Sharded.txn commits.(x.Sharded.shard) then
              List.iter (fun (o, d) -> v.(o) <- v.(o) + d) entries)
          ledger;
        v
      in
      (* delegation stays same-shard: cross-shard responsibility moves
         with the object, not across live transactions *)
      let other_active self =
        let cands = ref [] in
        Array.iteri
          (fun i c ->
            match c.fx with
            | Some x when i <> self && shard_of i = shard_of self ->
                cands := (i, x) :: !cands
            | _ -> ())
          clients;
        match !cands with
        | [] -> None
        | l -> Some (List.nth l (Prng.int rng (List.length l)))
      in
      let commits_done = ref 0 in
      let step self =
        let c = clients.(self) in
        match c.fx with
        | None ->
            let x = Sharded.begin_txn sh ~shard:(shard_of self) in
            c.fx <- Some x;
            c.left <- 1 + Prng.int rng sim.ops_per_txn;
            c.mine <- []
        | Some x when c.left > 0 -> (
            c.left <- c.left - 1;
            let delegate_now =
              c.mine <> [] && Prng.float rng 1.0 < sim.p_delegate
            in
            match (if delegate_now then other_active self else None) with
            | Some (yi, y) ->
                let o = List.nth c.mine (Prng.int rng (List.length c.mine)) in
                Sharded.delegate sh ~from_:x ~to_:y (Oid.of_int o);
                ledger_move ~from_:x ~to_:y o;
                c.mine <- List.filter (fun o' -> o' <> o) c.mine;
                clients.(yi).mine <- o :: clients.(yi).mine
            | None -> (
                let o = Prng.int rng sim.n_objects in
                let d = 1 + Prng.int rng 9 in
                match Sharded.add sh x (Oid.of_int o) d with
                | () ->
                    ledger_add x o d;
                    if not (List.mem o c.mine) then c.mine <- o :: c.mine
                | exception Errors.Xfer_refused _ ->
                    (* object locked on another shard right now; skip *)
                    ()))
        | Some x ->
            if Prng.int rng 10 = 0 then Sharded.abort sh x
            else begin
              Sharded.commit sh x;
              incr commits_done;
              if
                sim.checkpoint_every > 0
                && !commits_done mod sim.checkpoint_every = 0
              then Sharded.checkpoint sh
            end;
            c.fx <- None;
            c.mine <- []
      in
      let reset_clients () =
        Array.iter
          (fun c ->
            c.fx <- None;
            c.left <- 0;
            c.mine <- [])
          clients
      in
      let handle_crash () =
        outcome.crashes <- outcome.crashes + 1;
        Sharded.crash sh;
        let fail_before = List.length outcome.failures in
        (match recover_until_stable_sharded ~config ~outcome fault sh with
        | Error msg ->
            fail outcome
              (Printf.sprintf "sim shards=%d crash #%d: %s" config.shards
                 outcome.crashes msg)
        | Ok () ->
            outcome.runs <- outcome.runs + 1;
            check_state_sharded ~outcome
              ~label:
                (Printf.sprintf "sim shards=%d crash #%d" config.shards
                   outcome.crashes)
              fault sh (expected ()));
        maybe_dump_sharded ~config ~outcome ~fail_before ~kind:"shard-sim"
          ~tag:(Printf.sprintf "crash%d" outcome.crashes)
          ~expected:(expected ()) fault sh;
        reset_clients ();
        Fault.arm_crash_in fault sim.crash_every
      in
      Fault.arm_crash_in fault sim.crash_every;
      for i = 1 to sim.steps do
        outcome.actions <- outcome.actions + 1;
        try step (i mod sim.clients)
        with Fault.Injected_crash _ -> handle_crash ()
      done;
      (* final clean crash + restart + reconciliation *)
      Fault.disarm_crash fault;
      Sharded.crash sh;
      let fail_before = List.length outcome.failures in
      (match recover_until_stable_sharded ~config ~outcome fault sh with
      | Error msg ->
          fail outcome
            (Printf.sprintf "sim shards=%d final restart: %s" config.shards msg)
      | Ok () ->
          check_state_sharded ~outcome
            ~label:(Printf.sprintf "sim shards=%d final" config.shards)
            fault sh (expected ()));
      maybe_dump_sharded ~config ~outcome ~fail_before ~kind:"shard-sim"
        ~tag:"final" ~expected:(expected ()) fault sh;
      absorb_fault_stats outcome fault;
      absorb_sharded_counters outcome sh;
      outcome.repaired_pages <- outcome.repaired_pages + repairs_sharded sh;
      sharded_cleanup config ~tag:"sim-storm" sh;
      outcome)

let run_sim ?(config = default_config) ?(sim = default_sim) () =
  if config.shards <= 1 then run_sim_plain ~config ~sim ()
  else run_sim_sharded ~config ~sim ()
