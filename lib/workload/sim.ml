open Ariesrh_types
open Ariesrh_core
module Prng = Ariesrh_util.Prng
module Deadlock = Ariesrh_lock.Deadlock
module Log_store = Ariesrh_wal.Log_store
module Fault = Ariesrh_fault.Fault
module Metrics = Ariesrh_obs.Metrics

type outcome = {
  committed : int;
  aborted : int;
  waits : int;
  deadlocks : int;
  delegations : int;
  overloads : int;
  log_fulls : int;
  recoverings : int;
  backoffs : int;
  stall_steps : int;
  abandoned : int;
  victimized : int;
  state_ok : bool;
  latencies : (string * (int * int)) list;
      (** per txn class: (commits measured, summed begin->commit latency
          in logical I/O-clock ticks) *)
}

(* begin->commit latency buckets, in logical I/O-clock ticks (inclusive
   upper bounds; one overflow slot beyond the last) *)
let latency_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]

let txn_classes = [| "read_only"; "writer"; "delegating" |]

(* one planned operation of a client transaction; all updates are
   commutative adds, reads provide the S/I contention *)
type op = Add_op of int * int | Read_op of int | Delegate_op

type phase =
  | Idle  (** about to (re)start the current transaction *)
  | Running of { xid : Xid.t; remaining : op list }
  | Blocked of { xid : Xid.t; op : op; remaining : op list }
  | Backoff of { until : int }
      (** refused for log pressure; retry at scheduler step [until] *)
  | Finished

type client = {
  id : int;
  mutable txns_left : int;
  mutable plan : op list;  (** ops of the current transaction *)
  mutable phase : phase;
  mutable attempts : int;  (** pressure-refused attempts of this plan *)
}

let plan_txn rng ~ops_per_txn ~n_objects ~delegation_rate =
  let ops =
    List.init ops_per_txn (fun _ ->
        let o = Prng.int rng n_objects in
        if Prng.int rng 100 < 30 then Read_op o
        else Add_op (o, 1 + Prng.int rng 9))
  in
  if Prng.float rng 1.0 < delegation_rate then ops @ [ Delegate_op ] else ops

let run ?(clients = 8) ?(txns_per_client = 50) ?(ops_per_txn = 6)
    ?(n_objects = 32) ?(delegation_rate = 0.2) ?(seed = 42L)
    ?(backoff_base = 4) ?(max_backoff = 64) ?(max_retries = 8)
    ?(tick = fun () -> ()) db =
  if not (Db.config db).Config.locking then
    invalid_arg "Sim.run: the database must have locking enabled";
  if n_objects > (Db.config db).Config.n_objects then
    invalid_arg "Sim.run: more objects than the database holds";
  let rng = Prng.create seed in
  let graph = Deadlock.create () in
  let committed = ref 0
  and aborted = ref 0
  and waits = ref 0
  and deadlocks = ref 0
  and delegations = ref 0
  and overloads = ref 0
  and log_fulls = ref 0
  and recoverings = ref 0
  and backoffs = ref 0
  and stall_steps = ref 0
  and abandoned = ref 0
  and victimized = ref 0
  and now = ref 0 in
  (* the simulator's tallies, readable through the db's registry while
     the run is in flight (a governor dashboard, the CLI's metrics
     export) — registration replaces any previous sim's sources *)
  let () =
    let reg name help r =
      Ariesrh_obs.Metrics.counter (Db.metrics db) ~help name (fun () -> !r)
    in
    reg "ariesrh_sim_committed_total" "Transactions committed by sim clients"
      committed;
    reg "ariesrh_sim_aborted_total" "Sim transactions rolled back" aborted;
    reg "ariesrh_sim_waits_total" "Times a sim client parked on a lock" waits;
    reg "ariesrh_sim_deadlocks_total" "Deadlock cycles broken" deadlocks;
    reg "ariesrh_sim_delegations_total" "Delegations performed by sim clients"
      delegations;
    reg "ariesrh_sim_overloads_total" "Typed Overloaded refusals observed"
      overloads;
    reg "ariesrh_sim_log_fulls_total" "Typed Log_full refusals observed"
      log_fulls;
    reg "ariesrh_sim_recovering_total" "Typed Recovering refusals observed"
      recoverings;
    reg "ariesrh_sim_backoffs_total" "Times a sim client entered backoff"
      backoffs;
    reg "ariesrh_sim_stall_steps_total" "Scheduler steps spent parked"
      stall_steps;
    reg "ariesrh_sim_abandoned_total" "Transactions given up after retries"
      abandoned;
    reg "ariesrh_sim_victimized_total" "Transactions killed externally"
      victimized
  in
  (* Per-txn-class begin->commit latency in logical I/O-clock ticks
     (the fault injector's deterministic I/O counter, so same-seed runs
     report identical histograms). Class comes from the plan: read-only,
     plain writer, or delegating. *)
  let lat_counts =
    Array.init (Array.length txn_classes) (fun _ ->
        Array.make (Array.length latency_bounds + 1) 0)
  in
  let lat_sums = Array.make (Array.length txn_classes) 0 in
  let () =
    Array.iteri
      (fun i cls ->
        Metrics.histogram (Db.metrics db)
          ~help:"Sim begin->commit latency per txn class (logical I/O ticks)"
          ~labels:[ ("class", cls) ]
          "ariesrh_sim_txn_latency_ios"
          (fun () ->
            {
              Metrics.bounds = latency_bounds;
              counts = Array.copy lat_counts.(i);
              sum = lat_sums.(i);
            }))
      txn_classes
  in
  let io_now () = (Fault.stats (Db.fault db)).Fault.ios in
  let class_of_plan plan =
    if List.exists (function Delegate_op -> true | _ -> false) plan then 2
    else if List.for_all (function Read_op _ -> true | _ -> false) plan then 0
    else 1
  in
  (* xid -> (class index, I/O clock at begin) for in-flight txns *)
  let started : (int * int) Xid.Tbl.t = Xid.Tbl.create 32 in
  let observe_latency xid =
    match Xid.Tbl.find_opt started xid with
    | None -> ()
    | Some (ci, b) ->
        let d = io_now () - b in
        let nb = Array.length latency_bounds in
        let rec bucket i =
          if i >= nb || d <= latency_bounds.(i) then i else bucket (i + 1)
        in
        let bi = bucket 0 in
        lat_counts.(ci).(bi) <- lat_counts.(ci).(bi) + 1;
        lat_sums.(ci) <- lat_sums.(ci) + d;
        Xid.Tbl.remove started xid
  in
  (* per-operation increments each live transaction is responsible for:
     (object, delta, update lsn) — lsn-level tracking lets the simulator
     exercise operation-granularity delegation too *)
  let pending : (int * int * Lsn.t) list ref Xid.Tbl.t = Xid.Tbl.create 32 in
  let expected = Array.make n_objects 0 in
  let pend_list xid =
    match Xid.Tbl.find_opt pending xid with
    | Some l -> l
    | None ->
        let l = ref [] in
        Xid.Tbl.replace pending xid l;
        l
  in
  let pend_add xid o d lsn = pend_list xid := (o, d, lsn) :: !(pend_list xid) in
  let pend_move ~from_ ~to_ =
    match Xid.Tbl.find_opt pending from_ with
    | None -> ()
    | Some l ->
        pend_list to_ := !l @ !(pend_list to_);
        Xid.Tbl.remove pending from_
  in
  let pend_move_one ~from_ ~to_ lsn =
    match Xid.Tbl.find_opt pending from_ with
    | None -> ()
    | Some l ->
        let moved, kept =
          List.partition (fun (_, _, u) -> Lsn.equal u lsn) !l
        in
        l := kept;
        pend_list to_ := moved @ !(pend_list to_)
  in
  let pend_commit xid =
    (match Xid.Tbl.find_opt pending xid with
    | None -> ()
    | Some l ->
        List.iter (fun (o, d, _) -> expected.(o) <- expected.(o) + d) !l);
    Xid.Tbl.remove pending xid
  in
  let cs =
    Array.init clients (fun id ->
        { id; txns_left = txns_per_client; plan = []; phase = Idle;
          attempts = 0 })
  in
  let client_of_xid xid =
    Array.to_seq cs
    |> Seq.find (fun c ->
           match c.phase with
           | Running r -> Xid.equal r.xid xid
           | Blocked b -> Xid.equal b.xid xid
           | Idle | Backoff _ | Finished -> false)
  in
  (* Deterministic bounded retry: a client refused for log pressure
     parks for [backoff_base * 2^attempt] scheduler steps (capped), and
     gives the current transaction up entirely after [max_retries]. *)
  let enter_backoff c =
    c.attempts <- c.attempts + 1;
    if c.attempts > max_retries then begin
      incr abandoned;
      c.txns_left <- c.txns_left - 1;
      c.plan <- [];
      c.attempts <- 0;
      c.phase <- Idle
    end
    else begin
      incr backoffs;
      let delay =
        min max_backoff (backoff_base * (1 lsl min 16 (c.attempts - 1)))
      in
      stall_steps := !stall_steps + delay;
      c.phase <- Backoff { until = !now + delay }
    end
  in
  (* the client's transaction died under it (aborted by a governor under
     hard log pressure): drop its volatile tracking and retry the plan *)
  let on_victimized c xid =
    incr victimized;
    Xid.Tbl.remove started xid;
    Xid.Tbl.remove pending xid;
    Deadlock.remove_txn graph xid;
    enter_backoff c
  in
  (* an operation was refused with [Log_full]: roll the transaction back
     (always possible — rollback draws on reserved space), back off,
     retry the same plan *)
  let on_log_full c xid =
    incr log_fulls;
    (match Db.abort db xid with
    | () -> incr aborted
    | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) -> ());
    Xid.Tbl.remove started xid;
    Xid.Tbl.remove pending xid;
    Deadlock.remove_txn graph xid;
    enter_backoff c
  in
  (* an access landed on an object a restart loser still covers: the
     refusal is retryable backpressure, exactly like [Log_full] — roll
     back, park, retry the same plan once the sweep has drained it *)
  let on_recovering c xid =
    incr recoverings;
    (match Db.abort db xid with
    | () -> incr aborted
    | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) -> ());
    Xid.Tbl.remove started xid;
    Xid.Tbl.remove pending xid;
    Deadlock.remove_txn graph xid;
    enter_backoff c
  in
  let victimize xid =
    match client_of_xid xid with
    | None -> ()
    | Some c ->
        (match Db.abort db xid with
        | () -> incr aborted
        | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
            (* already gone — a governor got there first *)
            incr victimized);
        Xid.Tbl.remove started xid;
        Xid.Tbl.remove pending xid;
        Deadlock.remove_txn graph xid;
        c.phase <- Idle (* retries the same plan with a fresh xid *)
  in
  (* execute one op for [xid]; true if it went through *)
  let attempt c xid op =
    match op with
    | Read_op o -> (
        match Db.read db xid (Oid.of_int o) with
        | _ ->
            Deadlock.clear_waits graph xid;
            true
        | exception Errors.Conflict { holders; _ } ->
            incr waits;
            Deadlock.clear_waits graph xid;
            List.iter (fun h -> Deadlock.add_wait graph ~waiter:xid ~holder:h) holders;
            false)
    | Add_op (o, d) -> (
        match Db.add db xid (Oid.of_int o) d with
        | () ->
            Deadlock.clear_waits graph xid;
            pend_add xid o d (Db.last_lsn_of db xid);
            true
        | exception Errors.Conflict { holders; _ } ->
            incr waits;
            Deadlock.clear_waits graph xid;
            List.iter (fun h -> Deadlock.add_wait graph ~waiter:xid ~holder:h) holders;
            false)
    | Delegate_op ->
        (* hand everything to some other running transaction *)
        let targets =
          Array.to_list cs
          |> List.filter_map (fun c' ->
                 if c'.id = c.id then None
                 else
                   match c'.phase with
                   | Running r -> Some r.xid
                   | Blocked b -> Some b.xid
                   | Idle | Backoff _ | Finished -> None)
        in
        (try
          match targets with
          | [] -> ()
          | _ -> (
            let to_ = List.nth targets (Prng.int rng (List.length targets)) in
            let ops = !(pend_list xid) in
            let whole_object () =
              match Db.responsible_objects db xid with
              | [] -> ()
              | _ ->
                  Db.delegate_all db ~from_:xid ~to_;
                  pend_move ~from_:xid ~to_;
                  incr delegations
            in
            match ((Db.config db).Config.impl, ops) with
            | (Config.Rh | Config.Lazy), _ :: _ when Prng.bool rng -> (
                (* operation granularity: hand over one random update —
                   unless this client read the object too and upgraded
                   to an exclusive lock, in which case it goes whole *)
                let o, _, lsn = List.nth ops (Prng.int rng (List.length ops)) in
                match Db.delegate_update db ~from_:xid ~to_ (Oid.of_int o) lsn with
                | () ->
                    pend_move_one ~from_:xid ~to_ lsn;
                    incr delegations
                | exception Invalid_argument _ -> whole_object ())
            | _, _ -> whole_object ())
        with
        | Errors.Overloaded _ ->
            (* delegation refused under backpressure: optional work, the
               transaction simply keeps its responsibility *)
            incr overloads
        | Log_store.Log_full _ -> incr log_fulls
        | (Errors.No_such_txn x | Errors.Txn_not_active x)
          when not (Xid.equal x xid) ->
            (* the chosen delegatee died under us (a governor victimized
               it) between target selection and transfer. Only [x]'s own
               client may retire it; treating the typed error as OUR
               death would orphan a live transaction that keeps its
               locks and pins the horizon forever. *)
            ());
        true
  in
  let break_deadlock xid =
    match Deadlock.cycle_through graph xid with
    | None -> ()
    | Some cycle ->
        incr deadlocks;
        (* youngest participant dies *)
        let victim =
          List.fold_left
            (fun acc x -> if Xid.to_int x > Xid.to_int acc then x else acc)
            xid cycle
        in
        victimize victim
  in
  let step c =
    match c.phase with
    | Finished -> ()
    | Backoff { until } -> if !now >= until then c.phase <- Idle
    | Idle ->
        if c.txns_left = 0 then c.phase <- Finished
        else begin
          if c.plan = [] then
            c.plan <- plan_txn rng ~ops_per_txn ~n_objects ~delegation_rate;
          match Db.begin_txn db with
          | xid ->
              Xid.Tbl.replace started xid (class_of_plan c.plan, io_now ());
              c.phase <- Running { xid; remaining = c.plan }
          | exception Errors.Overloaded _ ->
              incr overloads;
              enter_backoff c
          | exception Log_store.Log_full _ ->
              incr log_fulls;
              enter_backoff c
        end
    | Running { xid; remaining = [] } -> (
        match Db.commit db xid with
        | () ->
            observe_latency xid;
            pend_commit xid;
            Deadlock.remove_txn graph xid;
            incr committed;
            c.txns_left <- c.txns_left - 1;
            c.plan <- [];
            c.attempts <- 0;
            c.phase <- Idle
        | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
            on_victimized c xid)
    | Running { xid; remaining = op :: rest } -> (
        match attempt c xid op with
        | true -> c.phase <- Running { xid; remaining = rest }
        | false ->
            c.phase <- Blocked { xid; op; remaining = rest };
            break_deadlock xid
        | exception Log_store.Log_full _ -> on_log_full c xid
        | exception Errors.Recovering _ -> on_recovering c xid
        | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
            on_victimized c xid)
    | Blocked { xid; op; remaining } -> (
        match attempt c xid op with
        | true -> c.phase <- Running { xid; remaining }
        | false -> break_deadlock xid
        | exception Log_store.Log_full _ -> on_log_full c xid
        | exception Errors.Recovering _ -> on_recovering c xid
        | exception (Errors.No_such_txn _ | Errors.Txn_not_active _) ->
            on_victimized c xid)
  in
  (* live-lock guard: enough steps for every transaction's operations
     plus, under log pressure, a full complement of refused attempts
     spent parked in backoff before abandonment *)
  let budget =
    ref
      (clients * txns_per_client
      * (((ops_per_txn + 4) * 50) + (max_retries * max_backoff)))
  in
  let all_done () =
    Array.for_all (fun c -> c.phase = Finished) cs
  in
  while (not (all_done ())) && !budget > 0 do
    decr budget;
    incr now;
    tick ();
    step cs.(Prng.int rng clients)
  done;
  if !budget = 0 then failwith "Sim.run: live-lock (scheduling budget exhausted)";
  let state_ok =
    let ok = ref true in
    for o = 0 to n_objects - 1 do
      if Db.peek db (Oid.of_int o) <> expected.(o) then ok := false
    done;
    (match Db.validate db with Ok () -> () | Error _ -> ok := false);
    !ok
  in
  {
    committed = !committed;
    aborted = !aborted;
    waits = !waits;
    deadlocks = !deadlocks;
    delegations = !delegations;
    overloads = !overloads;
    log_fulls = !log_fulls;
    recoverings = !recoverings;
    backoffs = !backoffs;
    stall_steps = !stall_steps;
    abandoned = !abandoned;
    victimized = !victimized;
    state_ok;
    latencies =
      Array.to_list
        (Array.mapi
           (fun i cls ->
             (cls, (Array.fold_left ( + ) 0 lat_counts.(i), lat_sums.(i))))
           txn_classes);
  }
