(** Replaying scripts against a live engine. *)

open Ariesrh_core

val run :
  ?upto:int ->
  ?on_action:(int -> unit) ->
  ?xid_map:(int, Ariesrh_types.Xid.t) Hashtbl.t ->
  Db.t ->
  Script.t ->
  unit
(** Execute the first [upto] actions (default: all). [on_action] runs
    after each executed action with its index — experiment harnesses use
    it to inject checkpoints at chosen intervals. [xid_map] (symbolic
    transaction index -> engine xid) is filled in as begins execute;
    pass one to keep the mapping when the run dies mid-script on an
    injected crash. A {!Errors.Conflict} here means the generator and
    engine disagree about locking — a bug, so it propagates. *)

val run_to_crash :
  Db.t -> Script.t -> crash_at:int -> Ariesrh_recovery.Report.t
(** Execute the prefix, crash, recover; returns the recovery report. *)

val fresh_db :
  ?fault:Ariesrh_fault.Fault.t ->
  ?backend:Ariesrh_storage.Backend.t ->
  ?impl:Config.delegation_impl ->
  ?locking:bool ->
  ?log_capacity_bytes:int ->
  ?log_capacity_records:int ->
  ?group_commit:int ->
  ?record_cache:int ->
  ?audit:bool ->
  ?recovery_mode:Config.recovery_mode ->
  ?tracing:bool ->
  n_objects:int ->
  unit ->
  Db.t
(** A Db sized for scripts over [n_objects] symbolic objects. The
    capacity knobs bound the WAL (default unbounded) — see
    {!Ariesrh_wal.Log_store.create}. [group_commit] batches commit
    forces (see {!Config.t}); [record_cache] sizes the decoded-record
    cache ([0] disables); [audit] runs the restart self-audit after
    every recovery (storms turn it on). [tracing] enables the
    structured trace ring from creation (storms use it for forensic
    dumps). *)
