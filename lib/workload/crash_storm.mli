(** Crash storms: scripted and simulated histories driven under an
    escalating fault plan, checking recovered state after every restart.

    A scripted storm replays one generated script repeatedly, arming a
    crash at the k-th I/O with k escalating each iteration until the
    script survives untouched — so every I/O operation of the history
    gets its turn to be the crash point. A sim storm runs a closed-loop
    multi-client increment/delegate workload on a single database,
    crashing every few I/Os, forever reconciling against a ledger.

    Every crash is followed by restart under continued fault injection:
    re-crashes are armed during recovery up to a configured depth, torn
    data pages and torn log tails fire per the plan. After each restart
    the engine state is compared against the oracle (committed = the
    transactions whose commit records are durable and intact in the
    log), the engine's structural invariants are validated, and restart
    idempotence is checked (crash + bare restart must reproduce the same
    state). *)

open Ariesrh_core

type config = {
  seed : int64;
  tear_data_every : int;
      (** tear every n-th data page write (latent corruption); 0 = never *)
  tear_data_on_crash : bool;  (** tear the page write a crash lands on *)
  tear_log_on_crash : bool;  (** tear the log tail when a crash hits a flush *)
  crash_step : int;  (** scripted: escalate the crash I/O point by this *)
  recovery_crash_depth : int;  (** nested crash-during-recovery levels *)
  recovery_crash_gap : int;  (** I/Os into each recovery before re-crash *)
  group_commit : int;
      (** commit-force batch size (see {!Config.t}); [0] (the default)
          forces each commit record as it is written. The oracle is
          group-commit-proof either way: committed = the commit records
          that survived the crash, read straight off the log *)
  record_cache : int;
      (** decoded-record cache capacity ([0] disables); the storm must
          behave identically — same outcomes, same forensic bytes —
          at any setting *)
  audit : bool;
      (** run the restart self-audit ([Db.audit]) after every recovery;
          a violation surfaces as [Audit_failed] and fails the storm.
          Default [true] — storms are exactly where latent chain damage
          would hide *)
  time_travel : bool;
      (** run concurrent analytic time-travel readers: during the sim
          storm and after every check round, [Temporal.snapshot_at] at
          sampled durable commit LSNs must equal the harness's expected
          state at that point (the as_of-equals-ledger oracle). Readers
          run with faults gated off so crash schedules are unchanged.
          Default [true] *)
  forensic_dir : string option;
      (** when set, storm databases run with the trace ring enabled and
          every check round that adds failures writes a
          {!Forensics.write} dump into this directory, keyed by seed and
          crash point; [None] (the default) disables both *)
  backend_root : string option;
      (** when set, every storm database runs on the file backend in its
          own fresh directory under this root (removed again as the
          iteration ends); [None] (the default) keeps the sim backend —
          a sharded storm gives each shard its own subdirectory *)
  shards : int;
      (** run the storm on a {!Ariesrh_shard.Sharded} engine with this
          many shards ([1], the default, keeps the plain single-db
          storm). Scripted storms co-home each transaction component on
          one shard ({!Shard_driver.assign_homes}), so every object's
          base-home-to-component migration happens lock-free and the
          crash sweep walks every I/O point of the transfer protocol;
          sim storms let clients on different shards contend, so the
          refusal path fires too. Checks route through the current
          homes, recovery resolves in-doubt transfers and (with
          [audit]) runs the cross-shard pairing audit. Time-travel
          readers only run at [shards = 1] — an as_of point is a
          per-shard LSN *)
}

val default_config : config

type outcome = {
  mutable runs : int;  (** storm iterations (scripted) or crashes survived *)
  mutable actions : int;  (** workload actions executed *)
  mutable crashes : int;  (** top-level injected crashes *)
  mutable nested_crashes : int;  (** crashes injected during restart *)
  mutable recoveries : int;  (** restarts that completed *)
  mutable torn_writes : int;
  mutable torn_flushes : int;
  mutable amputated : int;  (** corrupt tail records dropped by restarts *)
  mutable repaired_pages : int;
  mutable fault_points : int;  (** crashes + nested + torn writes + tears *)
  mutable checks : int;  (** oracle/invariant/idempotence check rounds *)
  mutable tt_reads : int;  (** time-travel as_of reads performed *)
  mutable migrations : int;  (** committed cross-shard transfers *)
  mutable migration_refusals : int;  (** transfers refused (locks held) *)
  mutable xfers_resolved : int;
      (** in-doubt transfer intents closed at restart (either way) *)
  mutable failures : string list;  (** newest first; empty = storm passed *)
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val merge : outcome -> outcome -> outcome
(** Field-wise sum (for aggregating several storms). *)

val run_script :
  ?config:config -> ?impl:Config.delegation_impl -> Gen.spec -> outcome
(** Scripted storm over [Gen.generate spec ~seed:config.seed]. *)

type sim_config = {
  clients : int;
  steps : int;  (** scheduler steps (one client action each) *)
  ops_per_txn : int;  (** max adds/delegations per transaction *)
  n_objects : int;
  p_delegate : float;
  checkpoint_every : int;  (** fuzzy checkpoint every n commits; 0 = never *)
  crash_every : int;  (** arm a crash this many I/Os after each restart *)
}

val default_sim : sim_config

val run_sim : ?config:config -> ?sim:sim_config -> unit -> outcome
(** Closed-loop simulated storm: concurrent clients issuing commutative
    increments with random delegation, periodic checkpoints, and a crash
    armed every [crash_every] I/Os. State is reconciled after every
    restart against a responsibility ledger filtered by the durable
    commit set. *)
