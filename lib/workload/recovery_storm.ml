open Ariesrh_types
open Ariesrh_core
module Fault = Ariesrh_fault.Fault
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Sharded = Ariesrh_shard.Sharded
module C = Crash_storm

(* The recovery storm: the crash-sweep geometry of {!Crash_storm}
   pointed at on-demand restart. Each iteration crashes the workload at
   the k-th I/O, restarts in [Config.On_demand] mode — analysis only,
   open for traffic immediately — and then lives through the drain the
   way a real system would: background sweeper steps interleaved with
   foreground transactions that are either served degraded or refused
   with the typed retryable [Errors.Recovering], plus [Db.peek] probes
   taking the foreground-repair path. Re-crashes are armed {e during}
   the drain, so the injected crash can land inside analysis, inside a
   sweeper step, or inside a foreground repair — the race the storm
   exists to exercise. After convergence the state must equal the
   durable-commit oracle, the audit must be clean, a bare re-restart
   must be idempotent, and — the equivalence oracle — an offline twin
   run over the identical history (same script, same fault schedule,
   same crash point, [Config.Offline]) must reach the same final
   state element-wise. *)

type config = C.config

let default_config = C.default_config

type outcome = {
  mutable runs : int;
  mutable actions : int;
  mutable crashes : int;
  mutable nested_crashes : int;
  mutable recoveries : int;
  mutable instant_opens : int;
  mutable drain_steps : int;
  mutable refusals : int;
  mutable degraded_serves : int;
  mutable foreground_repairs : int;
  mutable checks : int;
  mutable twin_checks : int;
  mutable fault_points : int;
  mutable failures : string list;
}

let fresh_outcome () =
  {
    runs = 0;
    actions = 0;
    crashes = 0;
    nested_crashes = 0;
    recoveries = 0;
    instant_opens = 0;
    drain_steps = 0;
    refusals = 0;
    degraded_serves = 0;
    foreground_repairs = 0;
    checks = 0;
    twin_checks = 0;
    fault_points = 0;
    failures = [];
  }

let ok o = o.failures = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>runs=%d actions=%d@ crashes=%d nested=%d recoveries=%d \
     instant_opens=%d@ drain_steps=%d refusals=%d degraded_serves=%d \
     foreground_repairs=%d@ checks=%d twin_checks=%d fault_points=%d \
     failures=%d%a@]"
    o.runs o.actions o.crashes o.nested_crashes o.recoveries o.instant_opens
    o.drain_steps o.refusals o.degraded_serves o.foreground_repairs o.checks
    o.twin_checks o.fault_points
    (List.length o.failures)
    (fun ppf -> function
      | [] -> ()
      | fs ->
          List.iter (fun f -> Format.fprintf ppf "@   FAIL %s" f) (List.rev fs))
    o.failures

let merge a b =
  {
    runs = a.runs + b.runs;
    actions = a.actions + b.actions;
    crashes = a.crashes + b.crashes;
    nested_crashes = a.nested_crashes + b.nested_crashes;
    recoveries = a.recoveries + b.recoveries;
    instant_opens = a.instant_opens + b.instant_opens;
    drain_steps = a.drain_steps + b.drain_steps;
    refusals = a.refusals + b.refusals;
    degraded_serves = a.degraded_serves + b.degraded_serves;
    foreground_repairs = a.foreground_repairs + b.foreground_repairs;
    checks = a.checks + b.checks;
    twin_checks = a.twin_checks + b.twin_checks;
    fault_points = a.fault_points + b.fault_points;
    failures = b.failures @ a.failures;
  }

let fail o msg = o.failures <- msg :: o.failures

let pp_arr a = String.concat ";" (Array.to_list (Array.map string_of_int a))

(* --- the Crash_storm plumbing, re-grown locally (not exported there) --- *)

let backend_of config ~tag =
  match config.C.backend_root with
  | None -> Ariesrh_storage.Backend.Sim
  | Some root ->
      let dir = Filename.concat root tag in
      Ariesrh_storage.Backend.remove_tree dir;
      Ariesrh_storage.Backend.File { dir }

let backend_cleanup config db =
  Db.close db;
  match Db.backend db with
  | Ariesrh_storage.Backend.File { dir } when config.C.backend_root <> None ->
      Ariesrh_storage.Backend.remove_tree dir
  | _ -> ()

let make_fault config ~salt =
  let fault =
    Fault.create ~seed:(Int64.add config.C.seed (Int64.of_int salt)) ()
  in
  Fault.set_tear_data_every fault config.C.tear_data_every;
  Fault.set_tear_data_on_crash fault config.C.tear_data_on_crash;
  Fault.set_tear_log_on_crash fault config.C.tear_log_on_crash;
  fault

let absorb_fault_stats outcome fault =
  outcome.fault_points <- outcome.fault_points + Fault.fault_points fault

let durable_commits log =
  let s = ref Xid.Set.empty in
  ignore
    (Log_store.iter_valid_forward log ~from:(Log_store.truncated_below log)
       (fun _ r ->
         match r.Record.body with
         | Record.Commit -> s := Xid.Set.add (Record.writer_exn r) !s
         | _ -> ()));
  !s

let sharded_backend_scope config ~tag f =
  match config.C.backend_root with
  | None -> f ()
  | Some root ->
      let dir = Filename.concat root tag in
      Ariesrh_storage.Backend.remove_tree dir;
      let k = ref 0 in
      Db.set_backend_factory
        (Some
           (fun () ->
             let d = Filename.concat dir (Printf.sprintf "shard%d" !k) in
             incr k;
             Ariesrh_storage.Backend.File { dir = d }));
      Fun.protect ~finally:(fun () -> Db.set_backend_factory None) f

let sharded_cleanup config ~tag sh =
  Sharded.close sh;
  match config.C.backend_root with
  | None -> ()
  | Some root ->
      Ariesrh_storage.Backend.remove_tree (Filename.concat root tag)

let durable_commits_sharded sh =
  Array.map (fun db -> durable_commits (Db.log_store db)) (Sharded.dbs sh)

(* --- driving the drain --- *)

(* Restart, then drain the backlog as a live system: one sweeper step
   at a time, a foreground read transaction every other step (served
   degraded, or refused with the typed error and retried implicitly by
   later probes on the same rotation), a [peek] foreground repair every
   fifth. Faults stay armed throughout, so a nested crash can hit
   analysis, a sweeper step, a probe, or a repair; each one is answered
   with [Db.crash] — which drops the volatile on-demand state — and a
   fresh restart, proving re-entrancy of the lazy path. *)
let recover_and_drain ~config ~outcome ~n_objects fault db =
  let probe i =
    let oid = Oid.of_int (i mod n_objects) in
    let x = Db.begin_txn db in
    match Db.read db x oid with
    | _ ->
        outcome.degraded_serves <- outcome.degraded_serves + 1;
        Db.commit db x
    | exception Errors.Recovering _ ->
        outcome.refusals <- outcome.refusals + 1;
        Db.abort db x
  in
  let rec go depth =
    if depth < config.C.recovery_crash_depth then
      Fault.arm_crash_in fault config.C.recovery_crash_gap
    else Fault.disarm_crash fault;
    match
      ignore (Db.recover db);
      outcome.recoveries <- outcome.recoveries + 1;
      if Db.recovering db then
        outcome.instant_opens <- outcome.instant_opens + 1;
      let i = ref 0 in
      while Db.recovering db do
        incr i;
        ignore (Db.recovery_step db);
        outcome.drain_steps <- outcome.drain_steps + 1;
        if !i mod 2 = 0 then probe !i;
        if !i mod 5 = 0 then begin
          ignore (Db.peek db (Oid.of_int (!i / 5 mod n_objects)));
          outcome.foreground_repairs <- outcome.foreground_repairs + 1
        end
      done
    with
    | () ->
        Fault.disarm_crash fault;
        Ok ()
    | exception Fault.Injected_crash _ when depth <= config.C.recovery_crash_depth
      ->
        outcome.nested_crashes <- outcome.nested_crashes + 1;
        Db.crash db;
        go (depth + 1)
    | exception e -> Error (Printexc.to_string e)
  in
  go 0

let recover_and_drain_sharded ~config ~outcome ~n_objects fault sh =
  let probe i =
    let oid = Oid.of_int (i mod n_objects) in
    (* begin on the object's current home: the probe exercises the
       servability decision, not the migration machinery *)
    let x = Sharded.begin_txn sh ~shard:(Sharded.home sh oid) in
    match Sharded.read sh x oid with
    | _ ->
        outcome.degraded_serves <- outcome.degraded_serves + 1;
        Sharded.commit sh x
    | exception Errors.Recovering _ ->
        outcome.refusals <- outcome.refusals + 1;
        Sharded.abort sh x
  in
  let rec go depth =
    if depth < config.C.recovery_crash_depth then
      Fault.arm_crash_in fault config.C.recovery_crash_gap
    else Fault.disarm_crash fault;
    match
      ignore (Sharded.recover sh);
      outcome.recoveries <- outcome.recoveries + 1;
      if Sharded.recovering sh then
        outcome.instant_opens <- outcome.instant_opens + 1;
      let i = ref 0 in
      while Sharded.recovering sh do
        incr i;
        ignore (Sharded.recovery_step sh);
        outcome.drain_steps <- outcome.drain_steps + 1;
        if !i mod 2 = 0 then probe !i;
        if !i mod 5 = 0 then begin
          ignore (Sharded.peek sh (Oid.of_int (!i / 5 mod n_objects)));
          outcome.foreground_repairs <- outcome.foreground_repairs + 1
        end
      done
    with
    | () ->
        Fault.disarm_crash fault;
        Ok ()
    | exception Fault.Injected_crash _ when depth <= config.C.recovery_crash_depth
      ->
        outcome.nested_crashes <- outcome.nested_crashes + 1;
        Sharded.crash sh;
        go (depth + 1)
    | exception e -> Error (Printexc.to_string e)
  in
  go 0

(* --- checks --- *)

let check_state ~outcome ~label fault db expected =
  Fault.set_enabled fault false;
  outcome.checks <- outcome.checks + 1;
  let peek () =
    Array.init (Array.length expected) (fun i -> Db.peek db (Oid.of_int i))
  in
  let actual = peek () in
  if actual <> expected then
    fail outcome
      (Printf.sprintf "%s: state mismatch: got [%s] want [%s]" label
         (pp_arr actual) (pp_arr expected));
  (match Db.validate db with
  | Ok () -> ()
  | Error msg -> fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
  (match Db.audit db with
  | [] -> ()
  | fs ->
      fail outcome
        (Printf.sprintf "%s: audit: %s" label (String.concat "; " fs)));
  (* idempotent re-entry: crash drops the volatile on-demand state; a
     bare restart plus a full drain must reproduce the same state *)
  (match
     Db.crash db;
     ignore (Db.recover db);
     Db.await_recovery db
   with
  | () ->
      outcome.recoveries <- outcome.recoveries + 1;
      let again = peek () in
      if again <> expected then
        fail outcome
          (Printf.sprintf "%s: restart not idempotent: got [%s] want [%s]"
             label (pp_arr again) (pp_arr expected))
  | exception e ->
      fail outcome
        (Printf.sprintf "%s: re-restart raised %s" label (Printexc.to_string e)));
  Fault.set_enabled fault true

let check_state_sharded ~outcome ~label fault sh expected =
  Fault.set_enabled fault false;
  outcome.checks <- outcome.checks + 1;
  let peek () =
    Array.init (Array.length expected) (fun i -> Sharded.peek sh (Oid.of_int i))
  in
  let actual = peek () in
  if actual <> expected then
    fail outcome
      (Printf.sprintf "%s: state mismatch: got [%s] want [%s]" label
         (pp_arr actual) (pp_arr expected));
  (match Sharded.validate sh with
  | Ok () -> ()
  | Error msg -> fail outcome (Printf.sprintf "%s: invariants: %s" label msg));
  (match Sharded.audit sh with
  | [] -> ()
  | fs ->
      fail outcome
        (Printf.sprintf "%s: audit: %s" label (String.concat "; " fs)));
  (match
     Sharded.crash sh;
     ignore (Sharded.recover sh);
     Sharded.await_recovery sh
   with
  | () ->
      outcome.recoveries <- outcome.recoveries + 1;
      let again = peek () in
      if again <> expected then
        fail outcome
          (Printf.sprintf "%s: restart not idempotent: got [%s] want [%s]"
             label (pp_arr again) (pp_arr expected))
  | exception e ->
      fail outcome
        (Printf.sprintf "%s: re-restart raised %s" label (Printexc.to_string e)));
  Fault.set_enabled fault true

(* --- the offline twin ---

   The equivalence oracle: replay the identical history — same script,
   same fault seed and tear schedule, same armed crash point, so the
   durable prefix is byte-for-byte the history the on-demand run
   recovered from — on a twin configured for offline restart, and
   return its fully-recovered state. *)

let offline_twin_plain ~config ~impl ~crash_io ~n_objects script =
  let fault = make_fault config ~salt:crash_io in
  Fault.arm_crash_at fault crash_io;
  let db =
    Driver.fresh_db ~fault
      ~backend:(backend_of config ~tag:(Printf.sprintf "offline-io%d" crash_io))
      ~impl ~group_commit:config.C.group_commit
      ~record_cache:config.C.record_cache ~audit:config.C.audit
      ~tracing:(config.C.forensic_dir <> None)
      ~n_objects ()
  in
  (match Driver.run db script with
  | () -> Fault.disarm_crash fault
  | exception Fault.Injected_crash _ -> ());
  Db.crash db;
  Fault.set_enabled fault false;
  let state =
    match Db.recover db with
    | _ -> Ok (Array.init n_objects (fun i -> Db.peek db (Oid.of_int i)))
    | exception e -> Error (Printexc.to_string e)
  in
  backend_cleanup config db;
  state

let offline_twin_sharded ~config ~impl ~crash_io ~n_objects ~homes script =
  let tag = Printf.sprintf "offline-io%d" crash_io in
  sharded_backend_scope config ~tag (fun () ->
      let fault = make_fault config ~salt:crash_io in
      Fault.arm_crash_at fault crash_io;
      let sh =
        Shard_driver.fresh ~fault ~impl ~group_commit:config.C.group_commit
          ~record_cache:config.C.record_cache ~audit:config.C.audit
          ~tracing:(config.C.forensic_dir <> None)
          ~shards:config.C.shards ~n_objects ()
      in
      (match Shard_driver.run ~homes sh script with
      | () -> Fault.disarm_crash fault
      | exception Fault.Injected_crash _ -> ());
      Sharded.crash sh;
      Fault.set_enabled fault false;
      let state =
        match Sharded.recover sh with
        | _ -> Ok (Array.init n_objects (fun i -> Sharded.peek sh (Oid.of_int i)))
        | exception e -> Error (Printexc.to_string e)
      in
      sharded_cleanup config ~tag sh;
      state)

(* --- the storms --- *)

let run_script_plain ~config ~impl spec =
  let outcome = fresh_outcome () in
  let script = Gen.generate spec ~seed:config.C.seed in
  let n_objects = spec.Gen.n_objects in
  let crash_io = ref (max 1 config.C.crash_step) in
  let continue = ref true in
  while !continue do
    outcome.runs <- outcome.runs + 1;
    let fault = make_fault config ~salt:!crash_io in
    Fault.arm_crash_at fault !crash_io;
    let db =
      Driver.fresh_db ~fault
        ~backend:(backend_of config ~tag:(Printf.sprintf "od-io%d" !crash_io))
        ~impl ~group_commit:config.C.group_commit
        ~record_cache:config.C.record_cache ~audit:config.C.audit
        ~recovery_mode:Config.On_demand
        ~tracing:(config.C.forensic_dir <> None)
        ~n_objects ()
    in
    let xid_map = Hashtbl.create 16 in
    let executed = ref 0 in
    let finished =
      match
        Driver.run ~xid_map ~on_action:(fun i -> executed := i + 1) db script
      with
      | () -> true
      | exception Fault.Injected_crash _ -> false
    in
    outcome.actions <- outcome.actions + !executed;
    if finished then begin
      continue := false;
      Fault.disarm_crash fault
    end
    else outcome.crashes <- outcome.crashes + 1;
    Db.crash db;
    let commits = durable_commits (Db.log_store db) in
    let committed t =
      match Hashtbl.find_opt xid_map t with
      | Some x -> Xid.Set.mem x commits
      | None -> false
    in
    let expected =
      Oracle.expected_for ~n_objects ~committed ~crash_at:!executed script
    in
    let label = Printf.sprintf "od crash_io=%d" !crash_io in
    (match recover_and_drain ~config ~outcome ~n_objects fault db with
    | Error msg -> fail outcome (Printf.sprintf "%s: %s" label msg)
    | Ok () -> (
        check_state ~outcome ~label fault db expected;
        match offline_twin_plain ~config ~impl ~crash_io:!crash_io ~n_objects
                script
        with
        | Error msg ->
            fail outcome (Printf.sprintf "%s: offline twin: %s" label msg)
        | Ok twin ->
            outcome.twin_checks <- outcome.twin_checks + 1;
            Fault.set_enabled fault false;
            let actual =
              Array.init n_objects (fun i -> Db.peek db (Oid.of_int i))
            in
            if actual <> twin then
              fail outcome
                (Printf.sprintf
                   "%s: on-demand state differs from offline twin: got [%s] \
                    twin [%s]"
                   label (pp_arr actual) (pp_arr twin));
            Fault.set_enabled fault true));
    absorb_fault_stats outcome fault;
    backend_cleanup config db;
    crash_io := !crash_io + max 1 config.C.crash_step
  done;
  outcome

let run_script_sharded ~config ~impl spec =
  let outcome = fresh_outcome () in
  let script = Gen.generate spec ~seed:config.C.seed in
  let n_objects = spec.Gen.n_objects in
  let homes = Shard_driver.assign_homes script ~shards:config.C.shards in
  let crash_io = ref (max 1 config.C.crash_step) in
  let continue = ref true in
  while !continue do
    outcome.runs <- outcome.runs + 1;
    let tag = Printf.sprintf "od-io%d" !crash_io in
    let label =
      Printf.sprintf "od shards=%d crash_io=%d" config.C.shards !crash_io
    in
    let final =
      sharded_backend_scope config ~tag (fun () ->
          let fault = make_fault config ~salt:!crash_io in
          Fault.arm_crash_at fault !crash_io;
          let sh =
            Shard_driver.fresh ~fault ~impl
              ~group_commit:config.C.group_commit
              ~record_cache:config.C.record_cache ~audit:config.C.audit
              ~recovery_mode:Config.On_demand
              ~tracing:(config.C.forensic_dir <> None)
              ~shards:config.C.shards ~n_objects ()
          in
          let xid_map = Hashtbl.create 16 in
          let executed = ref 0 in
          let finished =
            match
              Shard_driver.run ~xid_map
                ~on_action:(fun i -> executed := i + 1)
                ~homes sh script
            with
            | () -> true
            | exception Fault.Injected_crash _ -> false
          in
          outcome.actions <- outcome.actions + !executed;
          if finished then begin
            continue := false;
            Fault.disarm_crash fault
          end
          else outcome.crashes <- outcome.crashes + 1;
          Sharded.crash sh;
          let commits = durable_commits_sharded sh in
          let committed t =
            match Hashtbl.find_opt xid_map t with
            | Some fx -> Xid.Set.mem fx.Sharded.txn commits.(fx.Sharded.shard)
            | None -> false
          in
          let expected =
            Oracle.expected_for ~n_objects ~committed ~crash_at:!executed
              script
          in
          let final =
            match
              recover_and_drain_sharded ~config ~outcome ~n_objects fault sh
            with
            | Error msg ->
                fail outcome (Printf.sprintf "%s: %s" label msg);
                None
            | Ok () ->
                check_state_sharded ~outcome ~label fault sh expected;
                Fault.set_enabled fault false;
                Some
                  (Array.init n_objects (fun i ->
                       Sharded.peek sh (Oid.of_int i)))
          in
          absorb_fault_stats outcome fault;
          sharded_cleanup config ~tag sh;
          final)
    in
    (* twin runs outside the on-demand run's backend scope: the scope
       installs a global backend factory and must be torn down first *)
    (match final with
    | None -> ()
    | Some actual -> (
        match
          offline_twin_sharded ~config ~impl ~crash_io:!crash_io ~n_objects
            ~homes script
        with
        | Error msg ->
            fail outcome (Printf.sprintf "%s: offline twin: %s" label msg)
        | Ok twin ->
            outcome.twin_checks <- outcome.twin_checks + 1;
            if actual <> twin then
              fail outcome
                (Printf.sprintf
                   "%s: on-demand state differs from offline twin: got [%s] \
                    twin [%s]"
                   label (pp_arr actual) (pp_arr twin))));
    crash_io := !crash_io + max 1 config.C.crash_step
  done;
  outcome

let run_script ?(config = default_config) ?(impl = Config.Rh) spec =
  if config.C.shards <= 1 then run_script_plain ~config ~impl spec
  else run_script_sharded ~config ~impl spec
