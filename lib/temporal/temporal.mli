(** Time-travel queries over the rewritten log.

    Everything here is reconstructed from the durable history alone:
    the live log's records (including the before/after images carried by
    {!Ariesrh_wal.Record.Rewrite_clr} surgery compensations), bridged
    below the truncation horizon by the media archive's dense WAL
    frames. Nothing is answered from in-memory engine state, so the
    same query gives the same answer before and after a restart.

    Three layers:

    - {!as_of} / {!snapshot_at} — the committed value of an object at an
      arbitrary LSN: fold every durable update with [lsn <= L] whose
      responsible holder (initial writer, then each durable delegation
      with [lsn <= L]) has a durable commit at or below [L], skipping
      updates compensated by a CLR at or below [L]. Because a
      delegation always precedes the delegator's termination, all three
      engines (logical delegate records, eager in-place surgery, lazy
      restart splice) yield the same value at every LSN even though
      their logs read differently.

    - {!history} — the full version chain of one object with, per
      version, the physical writer as the log reads {e now}, the
      original invoker (recovered from surgery before-images when
      history was rewritten in place), the post-delegation responsible
      party, commit/abort/compensated status, and the rewrite surgeries
      that re-attributed it.

    - {!explain} — reenactment: replay a transaction's invoked
      operations against the {!as_of} snapshot at its begin LSN and
      report where {e provenance} (who physically performed an
      operation) and {e attribution} (who is responsible for it after
      delegation / history rewriting) diverge.

    Coverage is all-or-nothing: a query at [L] needs every record in
    [[1, L]]. If the prefix was truncated and no attached archive
    bridges the gap from genesis, the query raises
    [Errors.History_unavailable] — never a silently partial answer. *)

open Ariesrh_types
module Record := Ariesrh_wal.Record
module Db := Ariesrh_core.Db
module Json := Ariesrh_obs.Json

(** {2 Coverage} *)

type coverage = {
  from_ : Lsn.t;  (** first LSN answerable from log + archive *)
  upto : Lsn.t;  (** durable horizon: last answerable LSN *)
  bridged : bool;  (** true when the archive supplies a truncated prefix *)
}

val coverage : Db.t -> coverage
(** What the durable history (live log, plus the attached archive's WAL
    frames when they reach back to genesis) can answer right now. *)

val commit_points : Db.t -> (Lsn.t * Xid.t) list
(** Commit records present in the durable retained log, ascending —
    the natural sample points for time-travel readers. Unlike the
    queries below this never needs genesis coverage. *)

(** {2 Version chains} *)

type transfer = {
  t_at : Lsn.t;  (** LSN of the Delegate record *)
  t_from : Xid.t;
  t_to : Xid.t;
  t_op_level : bool;  (** single-operation (vs whole-object) delegation *)
}

type surgery = {
  s_intent : Lsn.t;  (** Rewrite_begin of the system transaction *)
  s_clr : Lsn.t;  (** the Rewrite_clr holding this version's images *)
  s_committed : bool;  (** false: rolled back (or never closed) *)
  s_writer_before : Xid.t option;  (** writer in the before image *)
  s_writer_after : Xid.t option;  (** writer in the after image *)
  s_deleg : (Xid.t * Xid.t * Oid.t) option;
      (** the delegation the surgery served, when recorded *)
}

type status =
  | Live
  | Committed of { by : Xid.t; at : Lsn.t }
  | Aborted of { by : Xid.t; at : Lsn.t }
  | Compensated of { by : Xid.t; clr : Lsn.t }

type version = {
  v_lsn : Lsn.t;
  v_oid : Oid.t;
  v_op : Record.op;
  v_writer : Xid.t;  (** physical writer as the log reads now *)
  v_provenance : Xid.t;
      (** original invoker: [v_writer] unless a committed surgery
          rewrote it in place, in which case the earliest surgery's
          before-image writer *)
  v_holder : Xid.t;  (** responsible party at the query bound *)
  v_transfers : transfer list;  (** durable delegations, oldest first *)
  v_surgeries : surgery list;  (** in-place rewrites, oldest first *)
  v_status : status;
}

val status_str : status -> string

(** {2 Queries}

    All of these raise [Errors.History_unavailable] when the durable
    history does not cover [[1, lsn]] (truncated prefix without an
    archive bridging from genesis, or [lsn] above the durable horizon),
    and never answer from a partial prefix. [Lsn.nil] asks for genesis —
    its covering range is empty, so it always answers. *)

val as_of : Db.t -> lsn:Lsn.t -> Oid.t -> int
(** Committed value of one object at [lsn]. *)

val snapshot_at : Db.t -> Lsn.t -> int array
(** Committed values of every object at [lsn], indexed by oid. *)

val history : Db.t -> ?upto:Lsn.t -> Oid.t -> version list
(** Version chain of one object up to [upto] (default: the durable
    horizon), ascending by LSN. *)

(** {2 Reenactment} *)

type divergence = {
  d_lsn : Lsn.t;
  d_oid : Oid.t;
  d_provenance : Xid.t;
  d_attribution : Xid.t;
  d_direction : [ `Delegated_away | `Received ];
  d_via : [ `Delegate of Lsn.t | `Surgery of Lsn.t | `Unknown ];
      (** the durable record that moved responsibility: a Delegate
          record, or the Rewrite_clr of an in-place surgery *)
}

type explain = {
  e_xid : Xid.t;
  e_impl : string;  (** engine the log was produced under *)
  e_begin : Lsn.t;
  e_commit : Lsn.t option;  (** None: no durable commit *)
  e_snapshot : (Oid.t * int) list;
      (** as_of at [e_begin] for every oid the report touches *)
  e_invoked : version list;  (** operations this transaction performed *)
  e_received : version list;
      (** operations performed by others but attributed to this
          transaction after delegation *)
  e_replayed : (Oid.t * int) list;
      (** snapshot + the transaction's own non-compensated operations:
          what the transaction believes it produced *)
  e_attributed : (Oid.t * int) list;
      (** snapshot + the operations history now holds it responsible
          for: what the rewritten log says it produced *)
  e_as_of_end : (Oid.t * int) list;
      (** actual committed values at the commit LSN (or the durable
          horizon when uncommitted) — includes concurrent committers *)
  e_divergences : divergence list;
}

val explain : Db.t -> Xid.t -> explain
(** Reenact one transaction. Raises [Errors.No_such_txn] when no Begin
    record for [xid] is in the covered history, and
    [Errors.History_unavailable] on a coverage gap. *)

(** {2 Lineage cross-check} *)

val lineage_check :
  Db.t -> version -> [ `Agree | `Disagree of string | `No_data ]
(** Compare a log-reconstructed version against [Obs.Lineage]'s
    ring-reconstructed verdict for the same LSN. [`No_data] when the
    trace ring was disabled or has evicted the events. *)

(** {2 JSON} *)

val op_to_json : Record.op -> Json.t
val version_to_json : version -> Json.t
val history_to_json : oid:Oid.t -> upto:Lsn.t -> version list -> Json.t
val coverage_to_json : coverage -> Json.t
val explain_to_json : explain -> Json.t
