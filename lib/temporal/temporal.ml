open Ariesrh_types
module Record = Ariesrh_wal.Record
module Log_store = Ariesrh_wal.Log_store
module Archive = Ariesrh_storage.Archive
module Json = Ariesrh_obs.Json
module Lineage = Ariesrh_obs.Lineage
module Db = Ariesrh_core.Db
module Config = Ariesrh_core.Config
module Errors = Ariesrh_core.Errors

type coverage = { from_ : Lsn.t; upto : Lsn.t; bridged : bool }

let coverage db =
  let log = Db.log_store db in
  let upto = Log_store.durable log in
  let tb = Log_store.truncated_below log in
  if Lsn.equal tb Lsn.first then { from_ = Lsn.first; upto; bridged = false }
  else
    match Db.archive db with
    | Some ar
      when Archive.wal_base ar = 0
           && Archive.archived_upto ar >= Lsn.to_int tb - 1 ->
        { from_ = Lsn.first; upto; bridged = true }
    | _ -> { from_ = tb; upto; bridged = false }

let unavailable ~lsn cov =
  Errors.history_unavailable ~lsn ~available_from:cov.from_
    ~available_upto:cov.upto

(* Every record with LSN in [1, upto], in LSN order: archived WAL frames
   below the live log's truncation horizon, live records from there. A
   missing or rotted archived frame inside the bridged range surfaces as
   History_unavailable — never as a silently shorter history. *)
let iter_history db ~upto f =
  let log = Db.log_store db in
  let tb = Log_store.truncated_below log in
  (if Lsn.to_int tb > 1 then
     match Db.archive db with
     | Some ar ->
         let hi = min (Archive.archived_upto ar) (Lsn.to_int tb - 1) in
         for idx = Archive.wal_base ar to hi - 1 do
           let lsn = Lsn.of_int (idx + 1) in
           if Lsn.(lsn <= upto) then
             match Archive.wal_get ar ~idx with
             | None ->
                 unavailable ~lsn
                   { from_ = tb; upto; bridged = false }
             | Some bytes -> (
                 match Record.decode bytes with
                 | Ok r -> f lsn r
                 | Error _ ->
                     unavailable ~lsn
                       { from_ = tb; upto; bridged = false })
         done
     | None -> ());
  if Lsn.(tb <= upto) then Log_store.iter_forward log ~from:tb ~upto f

let commit_points db =
  let log = Db.log_store db in
  let acc = ref [] in
  ignore
    (Log_store.iter_valid_forward log ~from:(Log_store.truncated_below log)
       ~upto:(Log_store.durable log) (fun lsn r ->
         match r.Record.body with
         | Record.Commit -> acc := (lsn, Record.writer_exn r) :: !acc
         | _ -> ()));
  List.rev !acc

(* {2 Version chains} *)

type transfer = { t_at : Lsn.t; t_from : Xid.t; t_to : Xid.t; t_op_level : bool }

type surgery = {
  s_intent : Lsn.t;
  s_clr : Lsn.t;
  s_committed : bool;
  s_writer_before : Xid.t option;
  s_writer_after : Xid.t option;
  s_deleg : (Xid.t * Xid.t * Oid.t) option;
}

type status =
  | Live
  | Committed of { by : Xid.t; at : Lsn.t }
  | Aborted of { by : Xid.t; at : Lsn.t }
  | Compensated of { by : Xid.t; clr : Lsn.t }

type version = {
  v_lsn : Lsn.t;
  v_oid : Oid.t;
  v_op : Record.op;
  v_writer : Xid.t;
  v_provenance : Xid.t;
  v_holder : Xid.t;
  v_transfers : transfer list;
  v_surgeries : surgery list;
  v_status : status;
}

let status_str = function
  | Live -> "live"
  | Committed _ -> "committed"
  | Aborted _ -> "aborted"
  | Compensated _ -> "compensated"

(* mutable accumulator for one update record during the scan *)
type vmut = {
  m_lsn : Lsn.t;
  m_oid : Oid.t;
  m_op : Record.op;
  m_writer : Xid.t;
  mutable m_holder : Xid.t;
  mutable m_transfers : transfer list; (* newest first *)
  mutable m_surgeries : surgery list; (* newest first *)
  mutable m_comp : (Xid.t * Lsn.t) option;
}

type open_surgery = {
  os_begin : Lsn.t;
  os_deleg : (Xid.t * Xid.t * Oid.t) option;
  mutable os_clrs : (Lsn.t * Lsn.t * Xid.t option * Xid.t option) list;
      (* (clr lsn, target, writer_before, writer_after) *)
}

type scan = {
  sc_upto : Lsn.t;
  sc_versions : version array; (* ascending LSN *)
  sc_commits : Lsn.t Xid.Tbl.t;
  sc_begins : Lsn.t Xid.Tbl.t;
  sc_adoptions : (Lsn.t * Oid.t * int) list;
      (* cross-shard [Xfer_in] adoptions, ascending LSN: system-written
         value sets with no writer transaction, durably committed by
         their presence alone *)
}

let scan db ~upto =
  let cov = coverage db in
  (* [upto = nil] asks for genesis: the covering range [1, 0] is empty,
     so it is answerable even over a fully truncated log *)
  if Lsn.(upto > cov.upto) then unavailable ~lsn:upto cov;
  if Lsn.(upto >= Lsn.first) && Lsn.(cov.from_ > Lsn.first) then
    unavailable ~lsn:upto cov;
  let by_lsn : (int, vmut) Hashtbl.t = Hashtbl.create 256 in
  let by_oid : (int, vmut list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let commits = Xid.Tbl.create 64 in
  let aborts = Xid.Tbl.create 16 in
  let begins = Xid.Tbl.create 64 in
  let open_surgeries = ref [] in
  let closed = ref [] in
  let adoptions = ref [] in
  let oid_list oid =
    match Hashtbl.find_opt by_oid (Oid.to_int oid) with
    | Some l -> !l
    | None -> []
  in
  let writer_of_bytes bytes =
    match Record.decode bytes with Ok r -> r.Record.xid | Error _ -> None
  in
  iter_history db ~upto (fun lsn r ->
      match r.Record.body with
      | Record.Begin ->
          let x = Record.writer_exn r in
          if not (Xid.Tbl.mem begins x) then Xid.Tbl.replace begins x lsn
      | Record.Update u ->
          let w = Record.writer_exn r in
          let v =
            {
              m_lsn = lsn;
              m_oid = u.Record.oid;
              m_op = u.Record.op;
              m_writer = w;
              m_holder = w;
              m_transfers = [];
              m_surgeries = [];
              m_comp = None;
            }
          in
          Hashtbl.replace by_lsn (Lsn.to_int lsn) v;
          (match Hashtbl.find_opt by_oid (Oid.to_int u.Record.oid) with
          | Some l -> l := v :: !l
          | None ->
              Hashtbl.replace by_oid (Oid.to_int u.Record.oid) (ref [ v ]));
          order := v :: !order
      | Record.Clr { undone; _ } -> (
          match Hashtbl.find_opt by_lsn (Lsn.to_int undone) with
          | Some v when v.m_comp = None ->
              v.m_comp <- Some (Record.writer_exn r, lsn)
          | _ -> ())
      | Record.Commit ->
          let x = Record.writer_exn r in
          if not (Xid.Tbl.mem commits x) then Xid.Tbl.replace commits x lsn
      | Record.Abort ->
          let x = Record.writer_exn r in
          if not (Xid.Tbl.mem aborts x) then Xid.Tbl.replace aborts x lsn
      | Record.Delegate { tee; oid; op; _ } -> (
          let tor = Record.writer_exn r in
          (* a compensated update is closed — its CLR already named the
             responsible party, so a later delegation of the object
             moves only the still-live operations (Lineage agrees:
             transfers apply to Live versions only) *)
          let move v op_level =
            if Xid.equal v.m_holder tor && v.m_comp = None then begin
              v.m_holder <- tee;
              v.m_transfers <-
                { t_at = lsn; t_from = tor; t_to = tee; t_op_level = op_level }
                :: v.m_transfers
            end
          in
          match op with
          | None -> List.iter (fun v -> move v false) (oid_list oid)
          | Some (ulsn, _invoker) -> (
              match Hashtbl.find_opt by_lsn (Lsn.to_int ulsn) with
              | Some v -> move v true
              | None -> ()))
      | Record.Rewrite_begin { deleg; _ } ->
          open_surgeries :=
            { os_begin = lsn; os_deleg = deleg; os_clrs = [] }
            :: !open_surgeries
      | Record.Rewrite_clr { target; before; after } -> (
          match !open_surgeries with
          | os :: _ ->
              os.os_clrs <-
                (lsn, target, writer_of_bytes before, writer_of_bytes after)
                :: os.os_clrs
          | [] -> ())
      | Record.Rewrite_end { begin_lsn; committed } ->
          let matching, rest =
            List.partition
              (fun os -> Lsn.equal os.os_begin begin_lsn)
              !open_surgeries
          in
          open_surgeries := rest;
          List.iter (fun os -> closed := (os, committed) :: !closed) matching
      | Record.Xfer_in { oid; value; _ } ->
          adoptions := (lsn, oid, value) :: !adoptions
      | Record.End | Record.Anchor | Record.Ckpt_begin | Record.Ckpt_end _
      | Record.Xfer_out _ | Record.Xfer_end _ ->
          ());
  (* a surgery never closed by [upto] counts as not committed: its
     intent is durable but nothing proves the rewrites completed *)
  List.iter (fun os -> closed := (os, false) :: !closed) !open_surgeries;
  List.iter
    (fun (os, committed) ->
      List.iter
        (fun (clr_lsn, target, wb, wa) ->
          match Hashtbl.find_opt by_lsn (Lsn.to_int target) with
          | Some v ->
              v.m_surgeries <-
                {
                  s_intent = os.os_begin;
                  s_clr = clr_lsn;
                  s_committed = committed;
                  s_writer_before = wb;
                  s_writer_after = wa;
                  s_deleg = os.os_deleg;
                }
                :: v.m_surgeries
          | None -> ())
        os.os_clrs)
    !closed;
  let finalize v =
    let transfers = List.rev v.m_transfers in
    let surgeries =
      List.sort (fun a b -> Lsn.compare a.s_clr b.s_clr) v.m_surgeries
    in
    let provenance =
      let rec first_rewrite = function
        | [] -> v.m_writer
        | s :: rest -> (
            match (s.s_committed, s.s_writer_before, s.s_writer_after) with
            | true, Some wb, Some wa when not (Xid.equal wb wa) -> wb
            | _ -> first_rewrite rest)
      in
      first_rewrite surgeries
    in
    let status =
      match v.m_comp with
      | Some (by, clr) -> Compensated { by; clr }
      | None -> (
          match Xid.Tbl.find_opt commits v.m_holder with
          | Some at -> Committed { by = v.m_holder; at }
          | None -> (
              match Xid.Tbl.find_opt aborts v.m_holder with
              | Some at -> Aborted { by = v.m_holder; at }
              | None -> Live))
    in
    {
      v_lsn = v.m_lsn;
      v_oid = v.m_oid;
      v_op = v.m_op;
      v_writer = v.m_writer;
      v_provenance = provenance;
      v_holder = v.m_holder;
      v_transfers = transfers;
      v_surgeries = surgeries;
      v_status = status;
    }
  in
  let versions =
    Array.of_list (List.rev_map finalize !order)
  in
  { sc_upto = upto; sc_versions = versions; sc_commits = commits;
    sc_begins = begins; sc_adoptions = List.rev !adoptions }

let apply_op value = function
  | Record.Set { after; _ } -> after
  | Record.Add d -> value + d

(* committed versions and transfer adoptions merged in LSN order:
   (lsn, oid, op) ascending *)
let committed_ops sc =
  let vs =
    Array.to_list sc.sc_versions
    |> List.filter_map (fun v ->
           match v.v_status with
           | Committed _ -> Some (v.v_lsn, v.v_oid, v.v_op)
           | _ -> None)
  in
  let ads =
    List.map
      (fun (l, o, value) -> (l, o, Record.Set { before = 0; after = value }))
      sc.sc_adoptions
  in
  List.sort (fun (a, _, _) (b, _, _) -> Lsn.compare a b) (vs @ ads)

let as_of db ~lsn oid =
  let sc = scan db ~upto:lsn in
  List.fold_left
    (fun acc (_, o, op) -> if Oid.equal o oid then apply_op acc op else acc)
    0 (committed_ops sc)

let snapshot_at db lsn =
  let sc = scan db ~upto:lsn in
  let n = (Db.config db).Config.n_objects in
  let out = Array.make n 0 in
  List.iter
    (fun (_, o, op) ->
      let i = Oid.to_int o in
      if i < n then out.(i) <- apply_op out.(i) op)
    (committed_ops sc);
  out

let history db ?upto oid =
  let upto =
    match upto with
    | Some l -> l
    | None -> Log_store.durable (Db.log_store db)
  in
  let sc = scan db ~upto in
  Array.to_list sc.sc_versions
  |> List.filter (fun v -> Oid.equal v.v_oid oid)

(* {2 Reenactment} *)

type divergence = {
  d_lsn : Lsn.t;
  d_oid : Oid.t;
  d_provenance : Xid.t;
  d_attribution : Xid.t;
  d_direction : [ `Delegated_away | `Received ];
  d_via : [ `Delegate of Lsn.t | `Surgery of Lsn.t | `Unknown ];
}

type explain = {
  e_xid : Xid.t;
  e_impl : string;
  e_begin : Lsn.t;
  e_commit : Lsn.t option;
  e_snapshot : (Oid.t * int) list;
  e_invoked : version list;
  e_received : version list;
  e_replayed : (Oid.t * int) list;
  e_attributed : (Oid.t * int) list;
  e_as_of_end : (Oid.t * int) list;
  e_divergences : divergence list;
}

let impl_str = function
  | Config.Rh -> "rh"
  | Config.Eager -> "eager"
  | Config.Lazy -> "lazy"

let explain db xid =
  let durable = Log_store.durable (Db.log_store db) in
  let sc = scan db ~upto:durable in
  let begin_lsn =
    match Xid.Tbl.find_opt sc.sc_begins xid with
    | Some l -> l
    | None -> raise (Errors.No_such_txn xid)
  in
  let commit = Xid.Tbl.find_opt sc.sc_commits xid in
  let versions = Array.to_list sc.sc_versions in
  let invoked =
    List.filter (fun v -> Xid.equal v.v_provenance xid) versions
  in
  let received =
    List.filter
      (fun v ->
        Xid.equal v.v_holder xid && not (Xid.equal v.v_provenance xid))
      versions
  in
  let touched =
    List.sort_uniq Oid.compare (List.map (fun v -> v.v_oid) (invoked @ received))
  in
  let snapshot =
    let base = snapshot_at db begin_lsn in
    List.map (fun o -> (o, base.(Oid.to_int o))) touched
  in
  let not_compensated v =
    match v.v_status with Compensated _ -> false | _ -> true
  in
  let replay keep =
    List.map
      (fun (o, base) ->
        ( o,
          List.fold_left
            (fun acc v ->
              if Oid.equal v.v_oid o && not_compensated v && keep v then
                apply_op acc v.v_op
              else acc)
            base versions ))
      snapshot
  in
  let replayed = replay (fun v -> Xid.equal v.v_provenance xid) in
  let attributed = replay (fun v -> Xid.equal v.v_holder xid) in
  let end_lsn = match commit with Some c -> c | None -> durable in
  let as_of_end =
    let final = snapshot_at db end_lsn in
    List.map (fun o -> (o, final.(Oid.to_int o))) touched
  in
  let via v =
    match v.v_transfers with
    | t :: _ -> `Delegate t.t_at
    | [] -> (
        match
          List.find_opt
            (fun s -> s.s_committed && s.s_writer_before <> s.s_writer_after)
            v.v_surgeries
        with
        | Some s -> `Surgery s.s_clr
        | None -> `Unknown)
  in
  let divergences =
    List.filter_map
      (fun v ->
        if Xid.equal v.v_provenance v.v_holder then None
        else
          let direction =
            if Xid.equal v.v_provenance xid then `Delegated_away else `Received
          in
          Some
            {
              d_lsn = v.v_lsn;
              d_oid = v.v_oid;
              d_provenance = v.v_provenance;
              d_attribution = v.v_holder;
              d_direction = direction;
              d_via = via v;
            })
      (invoked @ received)
  in
  {
    e_xid = xid;
    e_impl = impl_str (Db.config db).Config.impl;
    e_begin = begin_lsn;
    e_commit = commit;
    e_snapshot = snapshot;
    e_invoked = invoked;
    e_received = received;
    e_replayed = replayed;
    e_attributed = attributed;
    e_as_of_end = as_of_end;
    e_divergences = divergences;
  }

(* {2 Lineage cross-check} *)

let lineage_check db v =
  match Lineage.query (Db.ring db) ~lsn:v.v_lsn () with
  | None -> `No_data
  | Some l ->
      let fail fmt = Format.kasprintf (fun s -> `Disagree s) fmt in
      if not (Xid.equal l.Lineage.holder v.v_holder) then
        fail "holder: lineage %a, log %a" Xid.pp l.Lineage.holder Xid.pp
          v.v_holder
      else
        let agree =
          match (l.Lineage.status, v.v_status) with
          | Lineage.Live, Live -> true
          | Lineage.Committed { by; at }, Committed c ->
              Xid.equal by c.by && Lsn.equal at c.at
          | Lineage.Aborted { by; _ }, Aborted a -> Xid.equal by a.by
          | Lineage.Compensated { clr; _ }, Compensated c ->
              Lsn.equal clr c.clr
          (* rollback writes the CLR before the Abort record becomes
             durable; the two reconstructions may legitimately resolve
             an aborted update at different points of that window *)
          | Lineage.Aborted _, Compensated _
          | Lineage.Compensated _, Aborted _ -> true
          | _ -> false
        in
        if agree then `Agree
        else
          fail "status: lineage %s, log %s"
            (Lineage.status_str l.Lineage.status)
            (status_str v.v_status)

(* {2 JSON} *)

let lsn_json l = Json.Int (Lsn.to_int l)
let xid_json x = Json.Int (Xid.to_int x)

let op_to_json = function
  | Record.Set { before; after } ->
      Json.Obj
        [ ("kind", Json.String "set"); ("before", Json.Int before);
          ("after", Json.Int after) ]
  | Record.Add d ->
      Json.Obj [ ("kind", Json.String "add"); ("delta", Json.Int d) ]

let status_to_json = function
  | Live -> Json.Obj [ ("kind", Json.String "live") ]
  | Committed { by; at } ->
      Json.Obj
        [ ("kind", Json.String "committed"); ("by", xid_json by);
          ("at", lsn_json at) ]
  | Aborted { by; at } ->
      Json.Obj
        [ ("kind", Json.String "aborted"); ("by", xid_json by);
          ("at", lsn_json at) ]
  | Compensated { by; clr } ->
      Json.Obj
        [ ("kind", Json.String "compensated"); ("by", xid_json by);
          ("clr", lsn_json clr) ]

let transfer_to_json t =
  Json.Obj
    [ ("at", lsn_json t.t_at); ("from", xid_json t.t_from);
      ("to", xid_json t.t_to); ("op_level", Json.Bool t.t_op_level) ]

let surgery_to_json s =
  let opt_xid = function Some x -> xid_json x | None -> Json.Null in
  Json.Obj
    [ ("intent", lsn_json s.s_intent); ("clr", lsn_json s.s_clr);
      ("committed", Json.Bool s.s_committed);
      ("writer_before", opt_xid s.s_writer_before);
      ("writer_after", opt_xid s.s_writer_after);
      ( "delegation",
        match s.s_deleg with
        | None -> Json.Null
        | Some (from_, to_, oid) ->
            Json.Obj
              [ ("from", xid_json from_); ("to", xid_json to_);
                ("oid", Json.Int (Oid.to_int oid)) ] ) ]

let version_to_json v =
  Json.Obj
    [ ("lsn", lsn_json v.v_lsn); ("oid", Json.Int (Oid.to_int v.v_oid));
      ("op", op_to_json v.v_op); ("writer", xid_json v.v_writer);
      ("provenance", xid_json v.v_provenance);
      ("holder", xid_json v.v_holder);
      ("transfers", Json.List (List.map transfer_to_json v.v_transfers));
      ("surgeries", Json.List (List.map surgery_to_json v.v_surgeries));
      ("status", status_to_json v.v_status) ]

let history_to_json ~oid ~upto versions =
  Json.Obj
    [ ("oid", Json.Int (Oid.to_int oid)); ("upto", lsn_json upto);
      ("versions", Json.List (List.map version_to_json versions)) ]

let coverage_to_json c =
  Json.Obj
    [ ("from", lsn_json c.from_); ("upto", lsn_json c.upto);
      ("bridged", Json.Bool c.bridged) ]

let values_json l =
  Json.List
    (List.map
       (fun (o, v) ->
         Json.Obj [ ("oid", Json.Int (Oid.to_int o)); ("value", Json.Int v) ])
       l)

let divergence_to_json d =
  Json.Obj
    [ ("lsn", lsn_json d.d_lsn); ("oid", Json.Int (Oid.to_int d.d_oid));
      ("provenance", xid_json d.d_provenance);
      ("attribution", xid_json d.d_attribution);
      ( "direction",
        Json.String
          (match d.d_direction with
          | `Delegated_away -> "delegated_away"
          | `Received -> "received") );
      ( "via",
        match d.d_via with
        | `Delegate l ->
            Json.Obj [ ("kind", Json.String "delegate"); ("at", lsn_json l) ]
        | `Surgery l ->
            Json.Obj [ ("kind", Json.String "surgery"); ("clr", lsn_json l) ]
        | `Unknown -> Json.Obj [ ("kind", Json.String "unknown") ] ) ]

let explain_to_json e =
  Json.Obj
    [ ("xid", xid_json e.e_xid); ("impl", Json.String e.e_impl);
      ("begin", lsn_json e.e_begin);
      ( "commit",
        match e.e_commit with Some c -> lsn_json c | None -> Json.Null );
      ("snapshot_at_begin", values_json e.e_snapshot);
      ("invoked", Json.List (List.map version_to_json e.e_invoked));
      ("received", Json.List (List.map version_to_json e.e_received));
      ("replayed", values_json e.e_replayed);
      ("attributed", values_json e.e_attributed);
      ("as_of_end", values_json e.e_as_of_end);
      ("divergences", Json.List (List.map divergence_to_json e.e_divergences))
    ]
