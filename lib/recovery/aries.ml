open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn
module Heap = Ariesrh_util.Heap
module Obs = Ariesrh_obs

let recover ?(passes = Forward.Merged) (env : Env.t) =
  env.prof <- Obs.Profiler.create ();
  let io_before = Log_stats.copy (Log_store.stats env.log) in
  let repairs_before = env.repairs in
  let srb_before = env.surgery_rolled_back in
  let srf_before = env.surgery_rolled_forward in
  let fwd = Forward.run ~passes env ~mode:Forward.Conventional in
  let tt = fwd.tt in
  let losers = Forward.losers fwd in
  let loser_set =
    List.fold_left (fun s i -> Xid.Set.add i.Txn_table.xid s) Xid.Set.empty losers
  in
  let examined = ref 0 in
  let undos = ref 0 in
  (* compensated update LSNs, collected from CLRs on the way down; the
     walk never dereferences undo_next (see Db.rollback_chain) *)
  let compensated = Hashtbl.create 32 in
  (* outstanding (next lsn to examine, transaction) pairs, largest first.
     The walk starts at each loser's chain head, not its undo_next: eager
     history rewriting can attach records to a chain below the analysis
     window (even below the transaction's own begin record), and only the
     chain itself is authoritative. CLRs on the way still short-circuit
     through their undo_next. *)
  let heap = Heap.create ~leq:(fun (a, _) (b, _) -> Lsn.(a <= b)) in
  List.iter
    (fun (info : Txn_table.info) ->
      if not (Lsn.is_nil info.last_lsn) then Heap.push heap (info.last_lsn, info))
    losers;
  let rec undo_loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (lsn, info) ->
        incr examined;
        let record = Log_store.read env.log lsn in
        let next =
          match record.Record.body with
          | Record.Update u when not (Hashtbl.mem compensated (Lsn.to_int lsn))
            ->
              let inv = { u with op = Apply.inverse u.op } in
              let clr =
                Record.mk info.xid ~prev:info.last_lsn
                  (Record.Clr
                     {
                       upd = inv;
                       undone = lsn;
                       invoker = info.xid;
                       undo_next = record.Record.prev;
                     })
              in
              (* restart appends bypass admission: a bounded log must
                 never refuse the records that make it recoverable *)
              let clr_lsn = Log_store.append_reserved env.log clr in
              Obs.Ring.emit env.ring
                (Obs.Event.Clr
                   {
                     xid = info.xid;
                     invoker = info.xid;
                     oid = u.Record.oid;
                     lsn = clr_lsn;
                     undone = lsn;
                   });
              info.last_lsn <- clr_lsn;
              info.undo_next <- record.Record.prev;
              Apply.force env clr_lsn inv;
              incr undos;
              record.Record.prev
          | Record.Update _ -> record.Record.prev
          | Record.Clr { undone; _ } ->
              Hashtbl.replace compensated (Lsn.to_int undone) ();
              record.Record.prev
          | Record.Abort | Record.Anchor -> record.Record.prev
          (* begin usually terminates the chain, but eager surgery may
             have spliced delegated-in records below it *)
          | Record.Begin -> record.Record.prev
          | Record.Commit | Record.End ->
              failwith "ARIES undo: commit/end on a loser chain"
          | Record.Delegate _ ->
              failwith "ARIES (conventional): delegate record in the log"
          | Record.Ckpt_begin | Record.Ckpt_end _ ->
              failwith "ARIES undo: checkpoint record on a transaction chain"
          | Record.Rewrite_begin _ | Record.Rewrite_clr _
          | Record.Rewrite_end _ ->
              failwith "ARIES undo: rewrite system record on a transaction chain"
          | Record.Xfer_out _ | Record.Xfer_in _ | Record.Xfer_end _ ->
              failwith
                "ARIES undo: transfer system record on a transaction chain"
        in
        if not (Lsn.is_nil next) then Heap.push heap (next, info);
        undo_loop ()
  in
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Backward);
  Obs.Profiler.time env.prof "restart.backward" (fun () -> undo_loop ());
  Obs.Profiler.count env.prof "restart.backward" "examined" !examined;
  Obs.Profiler.count env.prof "restart.backward" "undos" !undos;
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Backward);
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Finish);
  let infos = Txn_table.fold tt ~init:[] ~f:(fun acc i -> i :: acc) in
  List.iter
    (fun (info : Txn_table.info) ->
      let append body =
        let lsn =
          Log_store.append_reserved env.log
            (Record.mk info.xid ~prev:info.last_lsn body)
        in
        info.last_lsn <- lsn
      in
      (match info.status with
      | Txn_table.Committed -> append Record.End
      | Txn_table.Active ->
          append Record.Abort;
          append Record.End
      | Txn_table.Rolling_back -> append Record.End);
      Txn_table.remove tt info.xid)
    infos;
  Obs.Profiler.time env.prof "restart.finish" (fun () ->
      Log_store.flush env.log ~upto:(Log_store.head env.log));
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Finish);
  Obs.Ring.emit env.ring
    (Obs.Event.Recovered
       {
         winners = Xid.Set.cardinal fwd.winners;
         losers = Xid.Set.cardinal loser_set;
         undos = !undos;
       });
  let io_after = Log_store.stats env.log in
  {
    Report.winners = fwd.winners;
    losers = loser_set;
    forward_records = fwd.forward_records;
    redo_applied = fwd.redo_applied;
    backward_examined = !examined;
    backward_skipped = 0;
    clusters = 0;
    undos = !undos;
    amputated = fwd.amputated;
    repaired_pages = env.repairs - repairs_before;
    surgery_rolled_back = env.surgery_rolled_back - srb_before;
    surgery_rolled_forward = env.surgery_rolled_forward - srf_before;
    log_io = Log_stats.diff io_after io_before;
    profile = env.prof;
  }
