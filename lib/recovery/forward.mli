(** The forward (analysis + redo) pass, shared by conventional ARIES and
    ARIES/RH (§3.6.1).

    Starting from the last complete checkpoint (or the log's beginning),
    the pass rebuilds the transaction table, redoes logged work
    ("repeating history"), and — in RH mode — rebuilds every Ob_List with
    its scopes by replaying update, delegate, and CLR records exactly as
    normal processing maintains them. *)

open Ariesrh_types
open Ariesrh_txn

type mode =
  | Conventional  (** plain ARIES; a delegate record is a fatal error *)
  | Rh  (** ARIES/RH: maintain Ob_Lists and scopes *)
  | Rh_rewritten
      (** like [Rh], but the log may already have been physically
          rewritten by a prior (possibly interrupted) lazy restart:
          a delegate record whose delegator no longer holds the scope
          is old news — its updates were re-attributed in place — and
          is skipped instead of rejected. Used by the lazy engine,
          whose restarts must stay re-entrant across such rewrites. *)

type passes =
  | Merged
      (** one combined analysis+redo sweep — the variant §3.3 says
          ARIES/RH relies on (default) *)
  | Separate
      (** classic ARIES: an analysis-only sweep, then a redo sweep from
          the dirty-page table's oldest recLSN. Costs a second read of
          the post-redo-point region; delegation handling is identical
          because scopes are built during analysis either way. *)

type result = {
  tt : Txn_table.t;  (** transactions still live at the crash *)
  winners : Xid.Set.t;  (** committed before the crash (seen in this scan) *)
  forward_records : int;
  redo_applied : int;
  amputated : int;
      (** corrupt stable tail records dropped by the restart preamble *)
  dpt : Lsn.t Page_id.Tbl.t;
      (** the rebuilt dirty-page table: page -> recLSN of its earliest
          possibly-unapplied update. With [apply_redo:false] this is the
          on-demand restart's work list — each page's pending redo is
          exactly the log slice [recLSN .. durable head] filtered to the
          page, conditioned on the page LSN. *)
}

val run : ?passes:passes -> ?apply_redo:bool -> Env.t -> mode:mode -> result
(** Runs the restart preamble first: amputate the corrupt stable log
    tail ([Log_store.recover_tail]). Torn data pages are repaired on
    demand when fetched through the buffer pool (see [Repair.page]), so
    redo never trusts a torn image yet restart I/O stays bounded by the
    dirty page table. The preamble and the pass itself are idempotent,
    which is what makes restart re-entrant under crashes injected during
    recovery.

    [apply_redo] (default [true]): with [false] the sweep performs pure
    analysis — the transaction table, scopes, winners and the dirty-page
    table are rebuilt exactly as usual, but no page is fetched or
    redone. The on-demand restart uses this to bound time-to-open by the
    checkpoint interval and replays each page's slice lazily. *)

val losers : result -> Txn_table.info list
(** Live transactions that did not commit: to be rolled back. *)
