open Ariesrh_types

type t = {
  winners : Xid.Set.t;
  losers : Xid.Set.t;
  forward_records : int;
  redo_applied : int;
  backward_examined : int;
  backward_skipped : int;
  clusters : int;
  undos : int;
  amputated : int;
  repaired_pages : int;
  surgery_rolled_back : int;
  surgery_rolled_forward : int;
  log_io : Ariesrh_wal.Log_stats.t;
  profile : Ariesrh_obs.Profiler.t;
}

let pp ppf t =
  Format.fprintf ppf
    "@[<v>winners=%d losers=%d@ forward_records=%d redo_applied=%d@ \
     backward: examined=%d skipped=%d clusters=%d undos=%d@ faults: \
     amputated=%d repaired_pages=%d@ surgery: rolled_back=%d \
     rolled_forward=%d@ log_io: %a@ profile:@ %a@]"
    (Xid.Set.cardinal t.winners)
    (Xid.Set.cardinal t.losers)
    t.forward_records t.redo_applied t.backward_examined t.backward_skipped
    t.clusters t.undos t.amputated t.repaired_pages t.surgery_rolled_back
    t.surgery_rolled_forward Ariesrh_wal.Log_stats.pp t.log_io
    Ariesrh_obs.Profiler.pp t.profile
