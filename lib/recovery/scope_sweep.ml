open Ariesrh_types
open Ariesrh_wal
module Scope = Ariesrh_txn.Scope
module Heap = Ariesrh_util.Heap

type stats = {
  mutable examined : int;
  mutable skipped : int;
  mutable clusters : int;
  mutable undone : int;
}

type tagged = { owner : Xid.t; scope : Scope.t }

(* Cluster: the scopes overlapping the region currently being examined.
   A list suffices: clusters are small (the set of concurrently
   delegated-and-lost scopes overlapping one log region). *)
type cluster = { mutable members : tagged list; mutable beg : Lsn.t }

let sweep_naive (env : Env.t) ~scopes ~on_undo =
  let stats = { examined = 0; skipped = 0; clusters = 0; undone = 0 } in
  let live = List.filter (fun (_, s) -> not (Scope.is_empty s)) scopes in
  (match live with
  | [] -> ()
  | _ ->
      let top =
        List.fold_left
          (fun acc (_, s) -> Lsn.max acc s.Scope.last)
          Lsn.nil live
      in
      let bottom =
        List.fold_left
          (fun acc (_, s) -> Lsn.min acc s.Scope.first)
          top live
      in
      let k = ref top in
      while Lsn.(!k >= bottom) do
        stats.examined <- stats.examined + 1;
        let record = Log_store.read env.log !k in
        (match record.Record.body with
        | Record.Update u -> (
            let invoker = Record.writer_exn record in
            let hit =
              List.find_opt
                (fun (_, s) -> Scope.covers s ~invoker ~oid:u.oid !k)
                live
            in
            match hit with
            | Some (owner, s) ->
                let inv = { u with op = Apply.inverse u.op } in
                let clr_lsn =
                  on_undo ~owner ~invoker ~undone:!k
                    ~undo_next:record.Record.prev inv
                in
                Apply.force env clr_lsn inv;
                Scope.trim_below s !k;
                stats.undone <- stats.undone + 1
            | None -> ())
        | _ -> ());
        if Lsn.equal !k Lsn.first then k := Lsn.nil else k := Lsn.prev !k
      done);
  stats

let sweep ?(floor = Lsn.nil) (env : Env.t) ~scopes ~on_undo =
  let stats = { examined = 0; skipped = 0; clusters = 0; undone = 0 } in
  let live =
    List.filter
      (fun (_, s) -> (not (Scope.is_empty s)) && Lsn.(s.Scope.last > floor))
      scopes
    |> List.map (fun (owner, scope) -> { owner; scope })
  in
  if live <> [] then begin
    (* max-heap on scope right ends: the next cluster starts at the
       largest outstanding right end (β in Fig. 8) *)
    let heap =
      Heap.create ~leq:(fun a b -> Lsn.(a.scope.Scope.last <= b.scope.Scope.last))
    in
    List.iter (Heap.push heap) live;
    let k = ref Lsn.nil in
    (* move to the next cluster: β *)
    let rec next_cluster () =
      match Heap.peek heap with
      | None -> false
      | Some top ->
          if Scope.is_empty top.scope then begin
            (* trimmed to nothing while waiting in the heap cannot happen
               (only cluster members get trimmed), but a scope emptied by
               construction is just dropped *)
            ignore (Heap.pop heap);
            next_cluster ()
          end
          else begin
            let target = top.scope.Scope.last in
            (* !k is the last record examined by the previous cluster;
               the gap skipped is (!k-1 .. target+1) *)
            if not (Lsn.is_nil !k) then
              stats.skipped <-
                stats.skipped + max 0 (Lsn.to_int !k - Lsn.to_int target - 1);
            k := target;
            stats.clusters <- stats.clusters + 1;
            true
          end
    in
    let cluster = { members = []; beg = Lsn.nil } in
    let absorb_ending_here () =
      let rec go () =
        match Heap.peek heap with
        | Some top when Lsn.equal top.scope.Scope.last !k ->
            ignore (Heap.pop heap);
            if not (Scope.is_empty top.scope) then begin
              cluster.members <- top :: cluster.members;
              cluster.beg <-
                (if Lsn.is_nil cluster.beg then top.scope.Scope.first
                 else Lsn.min cluster.beg top.scope.Scope.first)
            end;
            go ()
        | _ -> ()
      in
      go ()
    in
    let matching_scope ~invoker ~oid lsn =
      List.find_opt
        (fun m -> Scope.covers m.scope ~invoker ~oid lsn)
        cluster.members
    in
    let drop_spent () =
      cluster.members <-
        List.filter
          (fun m ->
            (not (Scope.is_empty m.scope)) && Lsn.(m.scope.Scope.first < !k))
          cluster.members
    in
    while next_cluster () do
      cluster.members <- [];
      cluster.beg <- Lsn.nil;
      let continue = ref true in
      while !continue do
        (* α1: scopes whose right end is the current record join *)
        absorb_ending_here ();
        (* α2: undo if the record is a loser update *)
        stats.examined <- stats.examined + 1;
        let record = Log_store.read env.log !k in
        (match record.Record.body with
        | Record.Update u -> (
            let invoker = Record.writer_exn record in
            match matching_scope ~invoker ~oid:u.oid !k with
            | Some m ->
                let inv = { u with op = Apply.inverse u.op } in
                let clr_lsn =
                  on_undo ~owner:m.owner ~invoker ~undone:!k
                    ~undo_next:record.Record.prev inv
                in
                Apply.force env clr_lsn inv;
                Scope.trim_below m.scope !k;
                stats.undone <- stats.undone + 1
            | None -> ())
        | Record.Begin | Record.Commit | Record.Abort | Record.End
        | Record.Clr _ | Record.Delegate _ | Record.Ckpt_begin
        | Record.Ckpt_end _ | Record.Anchor | Record.Rewrite_begin _
        | Record.Rewrite_clr _ | Record.Rewrite_end _ | Record.Xfer_out _
        | Record.Xfer_in _ | Record.Xfer_end _ ->
            ());
        (* α3 + α4: discard scopes that begin here, step left, stop when
           past the cluster's beginning or at the rollback floor *)
        drop_spent ();
        if
          Lsn.equal !k Lsn.first
          || Lsn.(Lsn.prev !k < cluster.beg)
          || Lsn.(Lsn.prev !k <= floor)
        then continue := false
        else k := Lsn.prev !k
      done
    done
  end;
  stats
