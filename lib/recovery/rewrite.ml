open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn
module Obs = Ariesrh_obs

(* Only live update records move. A compensated update is dead history:
   moving it without its CLR would make the delegatee undo it again, and
   moving the CLR would carry an undo_next pointer into the delegator's
   chain. Both stay put; the delegator's own chain walk skips them. The
   walk sees CLRs before the updates they compensate (they are newer),
   so a set of compensated LSNs collected on the way down suffices. *)
let moves_with record tor oid ~compensated ~at =
  match record.Record.xid with
  | Some w when Xid.equal w tor -> (
      match record.Record.body with
      | Record.Update u ->
          Oid.equal u.oid oid && not (Hashtbl.mem compensated (Lsn.to_int at))
      | _ -> false)
  | _ -> false

(* --- surgery plans --- *)

type patch = { target : Lsn.t; before : Record.t; after : Record.t }

type plan = {
  patches : patch list;  (* ascending target LSN, one per touched record *)
  moved : Lsn.t list;  (* update records re-attributed to the delegatee *)
  tor_last : Lsn.t;
  tee_last : Lsn.t;
}

(* Compute the chain surgery without touching the log or the transaction
   table: the walk from the old [eager_delegate] runs against an overlay
   of pending patches, so the plan can be logged (and crash-recovered)
   before a single byte of stable history changes. *)
let plan_eager (env : Env.t) ~tor_info ~tee_info oid =
  let log = env.Env.log in
  let tor = tor_info.Txn_table.xid and tee = tee_info.Txn_table.xid in
  let overlay : (int, Record.t) Hashtbl.t = Hashtbl.create 8 in
  let originals : (int, Record.t) Hashtbl.t = Hashtbl.create 8 in
  let read lsn =
    match Hashtbl.find_opt overlay (Lsn.to_int lsn) with
    | Some r -> r
    | None -> Log_store.read log lsn
  in
  (* [current] is the record's content just before this patch: the
     original image is captured on first touch, without a re-read *)
  let patch lsn ~current r =
    let k = Lsn.to_int lsn in
    if not (Hashtbl.mem originals k) then Hashtbl.replace originals k current;
    Hashtbl.replace overlay k r
  in
  let moved = ref [] in
  let tor_last = ref tor_info.Txn_table.last_lsn in
  let tee_last = ref tee_info.Txn_table.last_lsn in
  (* most recent record retained on the delegator's chain, whose pointer
     must be patched when the record below it moves away *)
  let succ_tor : (Lsn.t * Record.t) option ref = ref None in
  (* lowest-LSN record visited so far on the delegatee's chain; the next
     insertion happens directly below it *)
  let tee_succ : (Lsn.t * Record.t) option ref = ref None in
  (* advance the delegatee-side cursor until the position below it is < k *)
  let rec advance_tee k =
    let below =
      match !tee_succ with
      | None -> !tee_last
      | Some (_, r) -> Record.prev_for r tee
    in
    if (not (Lsn.is_nil below)) && Lsn.(below > k) then begin
      tee_succ := Some (below, read below);
      advance_tee k
    end
  in
  let compensated = Hashtbl.create 8 in
  let k = ref !tor_last in
  while not (Lsn.is_nil !k) do
    let record = read !k in
    let next = Record.prev_for record tor in
    (match record.Record.body with
    | Record.Clr { undone; _ } ->
        Hashtbl.replace compensated (Lsn.to_int undone) ()
    | _ -> ());
    if moves_with record tor oid ~compensated ~at:!k then begin
      (* detach from the delegator's chain *)
      (match !succ_tor with
      | None -> tor_last := next
      | Some (sl, sr) ->
          let sr' = Record.set_prev_for sr tor next in
          patch sl ~current:sr sr';
          succ_tor := Some (sl, sr'));
      (* splice into the delegatee's chain, keeping it LSN-ordered *)
      advance_tee !k;
      let below =
        match !tee_succ with
        | None -> !tee_last
        | Some (_, r) -> Record.prev_for r tee
      in
      let after = Record.set_prev_for (Record.set_writer record tee) tee below in
      patch !k ~current:record after;
      moved := !k :: !moved;
      (match !tee_succ with
      | None -> tee_last := !k
      | Some (sl, sr) ->
          patch sl ~current:sr (Record.set_prev_for sr tee !k));
      tee_succ := Some (!k, after)
    end
    else succ_tor := Some (!k, record);
    k := next
  done;
  let patches =
    Hashtbl.fold
      (fun k before acc ->
        { target = Lsn.of_int k; before; after = Hashtbl.find overlay k }
        :: acc)
      originals []
    |> List.sort (fun a b -> Lsn.compare a.target b.target)
  in
  {
    patches;
    moved = List.sort Lsn.compare !moved;
    tor_last = !tor_last;
    tee_last = !tee_last;
  }

let apply_plan (env : Env.t) patches =
  List.iter
    (fun { target; after; _ } -> Log_store.rewrite env.Env.log target after)
    patches;
  List.length patches

(* --- the rewrite system transaction --- *)

let clr_of p =
  Record.mk_system
    (Record.Rewrite_clr
       {
         target = p.target;
         before = Record.encode p.before;
         after = Record.encode p.after;
       })

let surgery_cost ?deleg patches =
  let begin_r =
    Record.mk_system
      (Record.Rewrite_begin
         { deleg; targets = List.map (fun p -> p.target) patches })
  in
  let end_r =
    Record.mk_system (Record.Rewrite_end { begin_lsn = Lsn.nil; committed = true })
  in
  let bytes =
    List.fold_left
      (fun acc p -> acc + Record.encoded_size (clr_of p))
      (Record.encoded_size begin_r + Record.encoded_size end_r)
      patches
  in
  (bytes, 2 + List.length patches)

(* Append and force the intent record and the per-target CLRs. After
   this returns, a crash at any later point is recoverable: restart sees
   an un-ended surgery and restores every before-image. The caller must
   have secured log space (all appends bypass admission). *)
let surgery_begin (env : Env.t) ?deleg patches =
  let log = env.Env.log in
  let begin_lsn =
    Log_store.append_reserved log
      (Record.mk_system
         (Record.Rewrite_begin
            { deleg; targets = List.map (fun p -> p.target) patches }))
  in
  List.iter (fun p -> ignore (Log_store.append_reserved log (clr_of p))) patches;
  Log_store.flush log ~upto:(Log_store.head log);
  begin_lsn

(* Close the system transaction. [committed = true] callers append any
   records that must live or die with the surgery (anchors, delegation
   bookkeeping) before calling this: the closing force hardens them and
   the end record as one unit. *)
let surgery_end (env : Env.t) ~begin_lsn ~committed =
  let log = env.Env.log in
  ignore
    (Log_store.append_reserved log
       (Record.mk_system (Record.Rewrite_end { begin_lsn; committed })));
  Log_store.flush log ~upto:(Log_store.head log)

(* --- restart surgery recovery --- *)

exception Surgery_corrupt of string

type surgery = {
  s_begin : Lsn.t;
  mutable s_clrs : (Lsn.t * string * string) list;  (* target, before, after *)
  mutable s_end : bool option;  (* None = un-ended; Some committed *)
}

(* Roll an interrupted rewrite system transaction back (or a completed
   one forward) from its durable intent record. Runs after tail
   amputation and before the forward scan on every engine. Idempotent:
   restoring a before-image (or re-applying an after-image) over
   identical bytes is a no-op, so a crash anywhere inside this pass is
   survived by running it again.

   Only the newest surgery can need work — an earlier surgery was ended
   and forced before the next began, and its in-place rewrites hit the
   stable log synchronously before its end record was written. An
   un-ended surgery that is not the newest means the protocol was
   violated; that is surfaced as corruption, not silently repaired.

   The scan is bounded by the master checkpoint: a surgery completes
   inside one engine operation and a checkpoint inside another, so they
   never interleave — any surgery whose intent record sits at or below
   the master's checkpoint-end record ended before that checkpoint was
   taken. Restart therefore only walks the same tail window analysis
   will, not the whole retained log. (The full-log bracketing
   invariants are the self-audit's job.) *)
let recover_surgeries (env : Env.t) =
  let log = env.Env.log in
  let surgeries = ref [] in
  let current = ref None in
  let master = Log_store.master log in
  let from =
    let base = Log_store.truncated_below log in
    if Lsn.is_nil master then base else Lsn.max base (Lsn.next master)
  in
  Log_store.iter_forward log ~from (fun lsn record ->
      match record.Record.body with
      | Record.Rewrite_begin _ ->
          (match !current with
          | Some s when s.s_end = None ->
              raise
                (Surgery_corrupt
                   (Format.asprintf
                      "rewrite surgery at %a begins inside the un-ended \
                       surgery at %a"
                      Lsn.pp lsn Lsn.pp s.s_begin))
          | _ -> ());
          let s = { s_begin = lsn; s_clrs = []; s_end = None } in
          current := Some s;
          surgeries := s :: !surgeries
      | Record.Rewrite_clr { target; before; after } -> (
          match !current with
          | Some s when s.s_end = None ->
              s.s_clrs <- (target, before, after) :: s.s_clrs
          | _ ->
              raise
                (Surgery_corrupt
                   (Format.asprintf
                      "orphaned rewrite CLR at %a (no open surgery)" Lsn.pp lsn)))
      | Record.Rewrite_end { begin_lsn; committed } -> (
          match !current with
          | Some s when s.s_end = None && Lsn.equal s.s_begin begin_lsn ->
              s.s_end <- Some committed
          | _ ->
              raise
                (Surgery_corrupt
                   (Format.asprintf
                      "rewrite end at %a does not close an open surgery \
                       (begin=%a)"
                      Lsn.pp lsn Lsn.pp begin_lsn)))
      | _ -> ());
  let rolled_back = ref 0 and rolled_forward = ref 0 in
  let install which (target, before, after) =
    let image = match which with `Before -> before | `After -> after in
    (* a target above the durable head died with the volatile tail (the
       surgery never forced it — impossible under the protocol, but a
       relic guard keeps recovery total); below the truncation point it
       was reclaimed and no future scan will read it *)
    let i = Lsn.to_int target in
    if
      i >= Lsn.to_int (Log_store.truncated_below log)
      && i <= Lsn.to_int (Log_store.head log)
    then begin
      match Record.decode image with
      | Ok r -> Log_store.rewrite log target r
      | Error e ->
          raise
            (Surgery_corrupt
               (Format.asprintf "undecodable %s image for target %a (%a)"
                  (match which with `Before -> "before" | `After -> "after")
                  Lsn.pp target Record.pp_decode_error e))
    end
  in
  (match !surgeries with
  | [] -> ()
  | newest :: older ->
      List.iter
        (fun s ->
          if s.s_end = None then
            raise
              (Surgery_corrupt
                 (Format.asprintf
                    "un-ended rewrite surgery at %a is not the newest" Lsn.pp
                    s.s_begin)))
        older;
      let clrs = List.rev newest.s_clrs in
      (match newest.s_end with
      | None ->
          (* The crash hit inside the surgery window. Pick the direction
             from the durable target state: in-place rewrites are
             synchronous durable I/O, so if every retained target already
             holds its after-image the apply phase completed and only the
             closing force died — the surgery's dependent records (chain
             anchors, appended before the end record) may be durable, so
             history must move forward with them. Any target still
             holding its before-image means the apply was interrupted and
             nothing after it exists: restore every before-image. Either
             way, close the system transaction so later restarts see a
             resolved surgery. *)
          let retained (target, _, _) =
            let i = Lsn.to_int target in
            i >= Lsn.to_int (Log_store.truncated_below log)
            && i <= Lsn.to_int (Log_store.head log)
          in
          let holds_after (target, _, after) =
            String.equal (Record.encode (Log_store.read log target)) after
          in
          let completed =
            clrs <> []
            && List.for_all
                 (fun c -> (not (retained c)) || holds_after c)
                 clrs
          in
          if completed then begin
            List.iter (install `After) clrs;
            surgery_end env ~begin_lsn:newest.s_begin ~committed:true;
            incr rolled_forward
          end
          else begin
            List.iter (install `Before) clrs;
            surgery_end env ~begin_lsn:newest.s_begin ~committed:false;
            incr rolled_back
          end
      | Some true ->
          (* committed: roll forward from the intent record (idempotent
             re-application of the after-images) *)
          List.iter (install `After) clrs;
          incr rolled_forward
      | Some false ->
          (* rolled back before the crash; re-restoring is idempotent *)
          List.iter (install `Before) clrs;
          incr rolled_forward));
  env.Env.surgery_rolled_back <-
    env.Env.surgery_rolled_back + !rolled_back;
  env.Env.surgery_rolled_forward <-
    env.Env.surgery_rolled_forward + !rolled_forward;
  (!rolled_back, !rolled_forward)

(* --- legacy entry points --- *)

(* The raw splice, sans system transaction: [Db.delegate] drives the
   crash-atomic protocol itself; tests and figures that call this
   directly get the bare (non-atomic) §3.2 behaviour. *)
let eager_delegate (env : Env.t) ~tor_info ~tee_info oid =
  let plan = plan_eager env ~tor_info ~tee_info oid in
  let n = apply_plan env plan.patches in
  tor_info.Txn_table.last_lsn <- plan.tor_last;
  tee_info.Txn_table.last_lsn <- plan.tee_last;
  n

let attribute_only (env : Env.t) ~tor ~tee oid ~from =
  let log = env.Env.log in
  let count = ref 0 in
  let k = ref from in
  while not (Lsn.is_nil !k) do
    let record = Log_store.read log !k in
    (match (record.Record.xid, record.Record.body) with
    | Some w, Record.Update u when Xid.equal w tor && Oid.equal u.oid oid ->
        Log_store.rewrite log !k (Record.set_writer record tee);
        incr count
    | _ -> ());
    k :=
      (match record.Record.xid with
      | Some w when Xid.equal w tor -> Record.prev_for record tor
      | _ -> if Lsn.equal !k Lsn.first then Lsn.nil else Lsn.prev !k)
  done;
  !count
