(** Restart resolution of cross-shard transfers.

    Run by the [Sharded] router after every shard's own recovery has
    finished. The commit point of a transfer is the durable presence of
    the [Xfer_in] on the target shard: resolution closes every in-doubt
    [Xfer_out] forward (matching transfer-in exists) or backward (it
    does not) by appending the missing [Xfer_end] through the reserved
    log headroom. Idempotent at every crash point — re-running after a
    crash mid-resolution re-derives the same verdicts. *)

open Ariesrh_types

type resolution = { rolled_forward : int; rolled_back : int }

val resolve : (int * Env.t) list -> resolution
(** [resolve shards] over [(shard index, env)] for every shard. *)

type rebuild = {
  homes : (int, int) Hashtbl.t;
      (** object (as int) -> current home shard; only objects living
          away from their base home appear *)
  next_xfer_id : int;  (** above every transfer id any log mentions *)
  last_hops : (int, int) Hashtbl.t;
      (** object (as int) -> highest transfer hop seen for it
          (aborted intents included — their hop number is consumed) *)
  last_ins : (int, int * Lsn.t) Hashtbl.t;
      (** object (as int) -> (shard, lsn) of the [Xfer_in] of its
          highest committed hop, where visible; what the router's
          truncation pin must keep readable *)
}

val rebuild : (int * Env.t) list -> base:(Oid.t -> int) -> rebuild
(** Reconstruct the router's volatile state from the durable logs
    alone. Transfers of one object are serialized, so the highest
    committed hop's target is its current home; [base oid] is the home
    of an object with no committed transfers. Call after {!resolve}
    (so no hop is in doubt). *)
