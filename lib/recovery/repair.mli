(** Torn data page repair.

    A torn write leaves a page whose checksum fails: a prefix of the
    intended slot image over the previous contents. The disk keeps the
    last known-good before-image of every page; repair restores that
    image and replays every {e durable} retained log record touching the
    page, conditioned on the page LSN — full per-page REDO from the
    log's retained start, not from the dirty page table's recLSN,
    because the before-image can be arbitrarily older than anything the
    last checkpoint knew about. The repaired page is written back to
    disk immediately, so repair itself is re-entrant: a crash mid-repair
    just repairs again at the next restart. *)

open Ariesrh_types

val page : Env.t -> Page_id.t -> Ariesrh_storage.Page.t -> Ariesrh_storage.Page.t
(** [page env pid shadow] replays the durable log onto a copy of
    [shadow], persists and returns the repaired page, bumping
    [env.repairs]. Replaying the durable prefix suffices: the WAL rule
    means no disk image ever holds a volatile effect. Volatile records
    are left to whoever appended them — they install their own effects,
    page-LSN conditioned. Installed as the buffer pool's repair callback
    by [Db] — repair is demand-driven: whatever fetches the page
    (restart redo, undo, or a normal read) triggers it, so restart costs
    stay bounded by the dirty page table instead of a full-disk scan. *)

val torn_pages : Env.t -> int
(** Offline scrub: sweep the whole disk, repairing every page that fails
    its checksum; returns how many were repaired. Not part of restart —
    demand-driven repair covers correctness — but useful for tests and
    integrity audits. *)
