(** Restart self-audit: after recovery finishes, re-walk the durable log
    and assert the chain-closure invariants every engine must have
    re-established — backward pointers strictly decrease (all chains
    terminate), no orphaned CLRs, rewrite surgeries properly bracketed
    and resolved, and every re-attributed update justified by a durable
    committed rewrite surgery.

    The audit is read-only and idempotent; storms run it after every
    restart so a recovery bug surfaces as a typed failure at the restart
    that introduced it, not as silent corruption found replays later. *)

exception Audit_failed of string list
(** One human-readable message per violated invariant, in log order. *)

val check : Env.t -> string list
(** Collect violations without raising; [[]] means the log is clean.
    Bumps no counters. *)

val check_transfers : (int * Env.t) list -> string list
(** Cross-shard transfer audit over [(shard index, env)] for every
    shard, run after the router has resolved in-doubt transfers: no
    un-ended [Xfer_out] anywhere; a committed [Xfer_out] pairs with
    exactly one [Xfer_in] on the shard it names (same object, hop and
    carried value); an aborted one pairs with none; every [Xfer_in] is
    justified by a durable intent on its claimed source. Pairing checks
    relax across truncated shard logs. [[]] means clean. *)

val run : Env.t -> unit
(** [check], bumping [Env.audit_runs] (and [Env.audit_failures] when
    violations are found, before raising).

    @raise Audit_failed when any invariant is violated. *)
