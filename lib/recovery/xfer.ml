open Ariesrh_types
open Ariesrh_wal

(* Restart resolution of cross-shard transfers, run by the [Sharded]
   router after every shard's own [Db.recover] has finished (so each
   log's corrupt tail is already amputated and every durable [Xfer_in]
   has been redone by the forward pass).

   An [Xfer_out] with no [Xfer_end] on the same log is in doubt. The
   commit point of a transfer is the durable presence of the matching
   [Xfer_in] on the target shard: if it is there, the transfer happened
   and the intent rolls forward; if it is not, the crash beat the
   target-side force and the intent rolls back. Either way resolution
   appends the missing [Xfer_end] through the reserved log headroom —
   idempotent, because a resolved intent is no longer in doubt and the
   target-side evidence never changes. *)

type resolution = { rolled_forward : int; rolled_back : int }

(* one pass over a shard's durable log *)
let scan_shard (env : Env.t) f =
  let log = env.Env.log in
  let base = Log_store.truncated_below log in
  let durable = Log_store.durable log in
  if Lsn.(durable >= base) then
    Log_store.iter_forward log ~from:base ~upto:durable f

let close_intent (env : Env.t) ~xfer_id ~oid ~committed =
  let log = env.Env.log in
  let lsn =
    Log_store.append_reserved log
      (Record.mk_system (Record.Xfer_end { xfer_id; oid; committed }))
  in
  Log_store.flush log ~upto:lsn

let resolve shards =
  (* durable transfer-ins, per shard: shard -> xfer_id set *)
  let ins : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (shard, env) ->
      scan_shard env (fun _ record ->
          match record.Record.body with
          | Record.Xfer_in { xfer_id; _ } ->
              Hashtbl.replace ins (shard, xfer_id) ()
          | _ -> ()))
    shards;
  let forward = ref 0 and back = ref 0 in
  List.iter
    (fun (_, env) ->
      (* in-doubt intents on this shard: xfer_id -> (oid, target) *)
      let open_outs : (int, Oid.t * int) Hashtbl.t = Hashtbl.create 4 in
      scan_shard env (fun _ record ->
          match record.Record.body with
          | Record.Xfer_out { xfer_id; oid; target; _ } ->
              Hashtbl.replace open_outs xfer_id (oid, target)
          | Record.Xfer_end { xfer_id; _ } -> Hashtbl.remove open_outs xfer_id
          | _ -> ());
      Hashtbl.iter
        (fun xfer_id (oid, target) ->
          let committed = Hashtbl.mem ins (target, xfer_id) in
          close_intent env ~xfer_id ~oid ~committed;
          if committed then incr forward else incr back)
        open_outs)
    shards;
  { rolled_forward = !forward; rolled_back = !back }

type rebuild = {
  homes : (int, int) Hashtbl.t;
  next_xfer_id : int;
  last_hops : (int, int) Hashtbl.t;
  last_ins : (int, int * Lsn.t) Hashtbl.t;
}

(* Reconstruct the volatile routing state from the durable logs alone.
   Transfers of one object are serialized — only its current home ever
   initiates the next hop — so the {e highest committed hop} alone
   determines where the object lives now: its target is the current
   home. A hop counts as committed when its intent carries a committed
   end, or when the target-side [Xfer_in] survives; either record names
   the target, so the reconstruction tolerates the other side's log
   having been truncated. (The router's external truncation pin keeps
   each migrated object's latest [Xfer_in] readable, so the highest
   committed hop is always visible on at least one log.) *)
let rebuild shards ~base =
  (* oid -> (best committed hop, its target) *)
  let best : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  (* oid -> (shard, lsn) of the Xfer_in of the best committed hop *)
  let best_in : (int, int * (int * Lsn.t)) Hashtbl.t = Hashtbl.create 16 in
  let last_hops : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let note_committed ~oid ~hop ~target =
    match Hashtbl.find_opt best oid with
    | Some (h, _) when h >= hop -> ()
    | _ -> Hashtbl.replace best oid (hop, target)
  in
  let note_hop ~oid ~hop =
    match Hashtbl.find_opt last_hops oid with
    | Some h when h >= hop -> ()
    | _ -> Hashtbl.replace last_hops oid hop
  in
  let max_id = ref 0 in
  List.iter
    (fun (shard, env) ->
      (* intent status on this shard's log: xfer_id -> committed *)
      let ends : (int, bool) Hashtbl.t = Hashtbl.create 8 in
      scan_shard env (fun _ record ->
          match record.Record.body with
          | Record.Xfer_end { xfer_id; committed; _ } ->
              Hashtbl.replace ends xfer_id committed
          | _ -> ());
      scan_shard env (fun lsn record ->
          match record.Record.body with
          | Record.Xfer_out { xfer_id; hop; oid; target; _ } ->
              max_id := max !max_id xfer_id;
              let oid = Oid.to_int oid in
              note_hop ~oid ~hop;
              if Option.value ~default:false (Hashtbl.find_opt ends xfer_id)
              then note_committed ~oid ~hop ~target
          | Record.Xfer_in { xfer_id; hop; oid; _ } -> (
              max_id := max !max_id xfer_id;
              let oid = Oid.to_int oid in
              note_hop ~oid ~hop;
              note_committed ~oid ~hop ~target:shard;
              match Hashtbl.find_opt best_in oid with
              | Some (h, _) when h >= hop -> ()
              | _ -> Hashtbl.replace best_in oid (hop, (shard, lsn)))
          | _ -> ()))
    shards;
  let homes = Hashtbl.create 16 in
  let last_ins = Hashtbl.create 16 in
  Hashtbl.iter
    (fun oid (_, target) ->
      if target <> base (Oid.of_int oid) then Hashtbl.replace homes oid target)
    best;
  Hashtbl.iter
    (fun oid (_, at) -> Hashtbl.replace last_ins oid at)
    best_in;
  { homes; next_xfer_id = !max_id + 1; last_hops; last_ins }
