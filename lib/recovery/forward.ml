open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn
module Trace = Ariesrh_obs.Trace
module Obs = Ariesrh_obs

type mode = Conventional | Rh | Rh_rewritten

type passes = Merged | Separate

type result = {
  tt : Txn_table.t;
  winners : Xid.Set.t;
  forward_records : int;
  redo_applied : int;
  amputated : int;
  dpt : Lsn.t Page_id.Tbl.t;
}

let trim_scope info ~oid ~invoker ~undone =
  Ob_list.trim_covering info.Txn_table.ob_list ~oid ~invoker undone;
  (* mirror normal processing: after a compensation the open scope on
     this object is closed, so a later update record opens a fresh scope
     instead of stretching back across the compensated range *)
  info.ob_list <- Ob_list.close_open info.Txn_table.ob_list oid

let scan ?(passes = Merged) ?(apply_redo = true) (env : Env.t) ~mode
    ~amputated =
  let tt = Txn_table.create () in
  let winners = ref Xid.Set.empty in
  let forward_records = ref 0 in
  let redo_applied = ref 0 in
  (* the dirty page table, rebuilt ARIES-style: seeded from the
     checkpoint, extended by every update/CLR seen. An update whose LSN
     is below its page's recLSN is already on disk — skipped without
     even fetching the page. *)
  let dpt : Lsn.t Page_id.Tbl.t = Page_id.Tbl.create 64 in
  let master = Log_store.master env.log in
  (* restore from the checkpoint, if any *)
  let redo_start, analysis_start =
    if Lsn.is_nil master then (Lsn.first, Lsn.first)
    else begin
      let ck =
        match (Log_store.read env.log master).Record.body with
        | Record.Ckpt_end ck -> ck
        | _ -> failwith "Forward.run: master does not point at a checkpoint end"
      in
      List.iter (fun (p, rec_lsn) -> Page_id.Tbl.replace dpt p rec_lsn) ck.ck_dpt;
      List.iter
        (fun (c : Record.ckpt_txn) ->
          let info = Txn_table.restore tt c in
          if info.status = Txn_table.Committed then
            winners := Xid.Set.add info.xid !winners)
        ck.ck_txns;
      if mode <> Conventional then
        List.iter
          (fun (ob : Record.ckpt_ob) ->
            let info = Txn_table.find_exn tt ob.ck_owner in
            info.ob_list <- Ob_list.of_ckpt_entry info.ob_list ob)
          ck.ck_obs;
      let redo_start =
        List.fold_left
          (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn)
          (Lsn.next master) ck.ck_dpt
      in
      (redo_start, Lsn.next master)
    end
  in
  (* [authoritative] = the record predates the checkpoint, whose DPT is
     exact: a page absent from it was clean, every earlier update is on
     disk, no fetch needed. Past the checkpoint the table only grows
     conservatively, so an absent page must be fetched and checked. *)
  let redo ~authoritative lsn (u : Record.update) =
    let fetch_needed =
      match Page_id.Tbl.find_opt dpt u.page with
      | None ->
          if authoritative then false
          else begin
            Page_id.Tbl.replace dpt u.page lsn;
            true
          end
      | Some rec_lsn -> Lsn.(lsn >= rec_lsn)
    in
    (* with [apply_redo] off (on-demand restart) the sweep is pure
       analysis: the DPT above still records each dirty page's recLSN —
       the slice the lazy per-page redo will replay — but no page is
       fetched or written here *)
    if fetch_needed && apply_redo && Apply.redo env lsn u then
      incr redo_applied
  in
  (* A record may mention a transaction before its begin record: eager
     rewriting attributes older records to the delegatee. Analysis adds
     unknown transactions on first sight, as ARIES does. *)
  let lookup xid =
    match Txn_table.find tt xid with
    | Some info -> info
    | None -> Txn_table.add tt xid
  in
  let redo_sweep ~from ?upto () =
    Log_store.iter_forward env.log ~from ?upto (fun lsn record ->
        incr forward_records;
        let authoritative = Lsn.(lsn <= master) in
        match record.Record.body with
        | Record.Update u -> redo ~authoritative lsn u
        | Record.Clr { upd; _ } -> redo ~authoritative lsn upd
        | Record.Xfer_in { oid; page; before; value; _ } ->
            redo ~authoritative lsn
              { Record.oid; page; op = Record.Set { before; after = value } }
        | _ -> ())
  in
  (* with merged passes, records below the analysis window still need
     their redo sweep first; with separate passes one redo sweep covers
     everything after the analysis below *)
  (* analysis-only mode needs no pre-analysis sweep: every page dirtied
     below the checkpoint sits in the seeded DPT with its exact recLSN,
     which is where the on-demand slice redo starts *)
  if apply_redo && passes = Merged && Lsn.(redo_start < analysis_start) then
    redo_sweep ~from:redo_start ~upto:(Lsn.prev analysis_start) ();
  (* analysis (+ redo when merged; DPT maintenance always) *)
  let redo_here = passes = Merged || not apply_redo in
  Log_store.iter_forward env.log ~from:analysis_start (fun lsn record ->
      incr forward_records;
      match record.Record.body with
      | Record.Begin ->
          let info = lookup (Record.writer_exn record) in
          if Lsn.(info.last_lsn < lsn) then info.last_lsn <- lsn
      | Record.Update u ->
          let info = lookup (Record.writer_exn record) in
          info.last_lsn <- lsn;
          info.undo_next <- lsn;
          if mode <> Conventional then
            info.ob_list <-
              Ob_list.note_update info.ob_list ~owner:info.xid ~oid:u.oid lsn;
          if redo_here then redo ~authoritative:false lsn u
      | Record.Clr { upd; undone; invoker; undo_next } ->
          let info = lookup (Record.writer_exn record) in
          info.last_lsn <- lsn;
          info.undo_next <- undo_next;
          if mode <> Conventional then
            trim_scope info ~oid:upd.oid ~invoker ~undone;
          if redo_here then redo ~authoritative:false lsn upd
      | Record.Commit ->
          let info = lookup (Record.writer_exn record) in
          info.last_lsn <- lsn;
          info.status <- Txn_table.Committed;
          winners := Xid.Set.add info.xid !winners
      | Record.Abort ->
          let info = lookup (Record.writer_exn record) in
          info.last_lsn <- lsn;
          info.status <- Txn_table.Rolling_back
      | Record.End -> Txn_table.remove tt (Record.writer_exn record)
      | Record.Delegate { tee; tee_prev = _; oid; op } -> (
          match mode with
          | Conventional ->
              failwith "ARIES (conventional): delegate record in the log"
          | Rh | Rh_rewritten -> (
              let tor = Record.writer_exn record in
              let tor_info = lookup tor in
              let tee_info = lookup tee in
              tor_info.last_lsn <- lsn;
              tee_info.last_lsn <- lsn;
              (* Under [Rh_rewritten], a missing delegator scope means a
                 prior lazy restart already re-attributed the delegated
                 records in place: the delegate record is a no-op relic.
                 Under [Rh] nothing rewrites the log, so the scope must
                 be there — a miss is corruption. *)
              match op with
              | Some (op_lsn, invoker) -> (
                  (* operation granularity: split the covering scope *)
                  match
                    Ob_list.split_out tor_info.ob_list ~oid ~invoker op_lsn
                  with
                  | None, _ when mode = Rh_rewritten -> ()
                  | None, _ ->
                      failwith
                        "ARIES/RH forward pass: operation delegation by a \
                         non-responsible transaction"
                  | Some moved, rest ->
                      tor_info.ob_list <- rest;
                      tee_info.ob_list <-
                        Ob_list.receive tee_info.ob_list ~oid ~from_:tor
                          [ moved ])
              | None -> (
                  match Ob_list.take tor_info.ob_list oid with
                  | None when mode = Rh_rewritten -> ()
                  | None ->
                      failwith
                        "ARIES/RH forward pass: delegation by a \
                         non-responsible transaction"
                  | Some (entry, rest) ->
                      tor_info.ob_list <- rest;
                      tee_info.ob_list <-
                        Ob_list.receive tee_info.ob_list ~oid ~from_:tor
                          (Ob_list.entry_scopes entry))))
      | Record.Anchor ->
          let info = lookup (Record.writer_exn record) in
          info.last_lsn <- lsn
      (* a durable cross-shard transfer-in is a system-written page
         update: redo it like one (page-LSN conditioned, all modes) so
         adopting the value and recording the adoption stay atomic *)
      | Record.Xfer_in { oid; page; before; value; _ } ->
          if redo_here then
            redo ~authoritative:false lsn
              { Record.oid; page; op = Record.Set { before; after = value } }
      (* rewrite system-transaction records are resolved by
         [Rewrite.recover_surgeries] before any scan runs; transfer
         intent/end records by [Xfer.resolve] after per-shard recovery;
         to analysis and redo they are inert bookkeeping *)
      | Record.Ckpt_begin | Record.Ckpt_end _ | Record.Rewrite_begin _
      | Record.Rewrite_clr _ | Record.Rewrite_end _ | Record.Xfer_out _
      | Record.Xfer_end _ -> ());
  if apply_redo && passes = Separate then redo_sweep ~from:redo_start ();
  {
    tt;
    winners = !winners;
    forward_records = !forward_records;
    redo_applied = !redo_applied;
    amputated;
    dpt;
  }

let run ?passes ?apply_redo (env : Env.t) ~mode =
  (* Restart preamble, before any scan: amputate the corrupt stable
     tail — in the failure model only the last record of the crashing
     flush can be torn, and ARIES treats the first corrupt record as
     end-of-log. (Torn data pages need no sweep here: every page fetch
     goes through the buffer pool's checksum gate, so redo, undo, or a
     later normal read repairs a torn page on demand — see Repair.)
     Amputation is idempotent, so a crash anywhere in restart is
     survived by running restart again. *)
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Amputate);
  let amputated =
    Obs.Profiler.time env.prof "restart.amputate" (fun () ->
        Log_store.recover_tail env.log)
  in
  Obs.Profiler.count env.prof "restart.amputate" "records"
    (List.length amputated);
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Amputate);
  List.iter
    (fun (lsn, e) ->
      Trace.Log.info (fun m ->
          m "restart: corrupt stable tail at %a (%a); treating as end of log"
            Lsn.pp lsn Record.pp_decode_error e))
    amputated;
  (* resolve rewrite system transactions before any scan: an eager
     delegation interrupted mid-splice is rolled back to its
     before-images (or rolled forward if its end record is durable), so
     the scans below only ever see pre- or post-surgery history *)
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Surgery);
  let rolled_back, rolled_forward =
    Obs.Profiler.time env.prof "restart.surgery" (fun () ->
        Rewrite.recover_surgeries env)
  in
  Obs.Profiler.count env.prof "restart.surgery" "rolled_back" rolled_back;
  Obs.Profiler.count env.prof "restart.surgery" "rolled_forward"
    rolled_forward;
  if rolled_back > 0 || rolled_forward > 0 then
    Obs.Ring.emit env.ring
      (Obs.Event.Surgery_resolved { rolled_back; rolled_forward });
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Surgery);
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Forward);
  let result =
    Obs.Profiler.time env.prof "restart.forward" (fun () ->
        scan ?passes ?apply_redo env ~mode ~amputated:(List.length amputated))
  in
  Obs.Profiler.count env.prof "restart.forward" "records"
    result.forward_records;
  Obs.Profiler.count env.prof "restart.forward" "redo_applied"
    result.redo_applied;
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Forward);
  result

let losers result =
  Txn_table.fold result.tt ~init:[] ~f:(fun acc info ->
      match info.status with
      | Txn_table.Committed -> acc
      | Txn_table.Active | Txn_table.Rolling_back -> info :: acc)
