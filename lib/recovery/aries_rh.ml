open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn
module Trace = Ariesrh_obs.Trace
module Obs = Ariesrh_obs

(* Restart appends bypass admission ([append_reserved]): a bounded log
   must never refuse the records that make it recoverable. *)
let append_on_chain env (info : Txn_table.info) body =
  let record = Record.mk info.xid ~prev:info.last_lsn body in
  let lsn = Log_store.append_reserved env.Env.log record in
  info.last_lsn <- lsn;
  lsn

let finish_losers env tt =
  let infos = Txn_table.fold tt ~init:[] ~f:(fun acc info -> info :: acc) in
  List.iter
    (fun (info : Txn_table.info) ->
      (match info.status with
      | Txn_table.Committed -> ignore (append_on_chain env info Record.End)
      | Txn_table.Active ->
          ignore (append_on_chain env info Record.Abort);
          ignore (append_on_chain env info Record.End)
      | Txn_table.Rolling_back -> ignore (append_on_chain env info Record.End));
      Txn_table.remove tt info.xid)
    infos

exception Interrupted

let recover_gen ?(naive_sweep = false) ?(passes = Forward.Merged) ~physical
    ?fuel (env : Env.t) =
  env.prof <- Obs.Profiler.create ();
  let io_before = Log_stats.copy (Log_store.stats env.log) in
  let repairs_before = env.repairs in
  let srb_before = env.surgery_rolled_back in
  let srf_before = env.surgery_rolled_forward in
  Trace.Log.debug (fun m ->
      m "restart: forward pass from master=%a head=%a" Lsn.pp
        (Log_store.master env.log) Lsn.pp (Log_store.head env.log));
  let mode = if physical then Forward.Rh_rewritten else Forward.Rh in
  let fwd = Forward.run ~passes env ~mode in
  let tt = fwd.tt in
  let losers = Forward.losers fwd in
  Trace.Log.debug (fun m ->
      m "analysis done: %d records, %d redone, %d winners, %d losers"
        fwd.forward_records fwd.redo_applied
        (Xid.Set.cardinal fwd.winners)
        (List.length losers));
  let loser_set =
    List.fold_left (fun s i -> Xid.Set.add i.Txn_table.xid s) Xid.Set.empty losers
  in
  let scopes =
    List.concat_map
      (fun (info : Txn_table.info) ->
        List.map (fun s -> (info.xid, s)) (Ob_list.all_scopes info.ob_list))
      losers
  in
  let undos_done = ref 0 in
  (* Deferred lazy splices: the rewrite the lazy algorithm does at
     restart — attribute each delegated-in record to its responsible
     transaction, and flip the matching CLR's invoker to agree (or a
     later restart's trim misses and the update is undone twice). The
     rewrites are NOT applied inline: they are collected here and
     installed as one rewrite system transaction after the sweep, so a
     crash anywhere leaves the log either all-logical (delegate records
     + original invokers, which mode [Rh_rewritten] replays fine) or
     all-physical — never a half-spliced mix where record and CLR
     disagree. *)
  let splices = ref [] in
  let on_undo ~owner ~invoker ~undone ~undo_next upd =
    (match fuel with
    | Some n when !undos_done >= n ->
        (* simulate a crash in the middle of the backward pass: the CLRs
           written so far are made durable, then the machine dies *)
        Log_store.flush env.log ~upto:(Log_store.head env.log);
        raise Interrupted
    | _ -> ());
    incr undos_done;
    let splice = physical && not (Xid.equal owner invoker) in
    if splice then Obs.Profiler.count env.prof "restart.backward" "rewrites" 1;
    let info = Txn_table.find_exn tt owner in
    let clr = Record.mk info.xid ~prev:info.last_lsn
        (Record.Clr { upd; undone; invoker; undo_next })
    in
    let lsn = Log_store.append_reserved env.log clr in
    info.last_lsn <- lsn;
    if splice then begin
      let original = Log_store.read env.log undone in
      let clr' =
        { clr with
          Record.body = Record.Clr { upd; undone; invoker = owner; undo_next }
        }
      in
      splices :=
        ({ Rewrite.target = undone;
           before = original;
           after = Record.set_writer original owner;
         },
         { Rewrite.target = lsn; before = clr; after = clr' })
        :: !splices
    end;
    Obs.Ring.emit env.ring
      (Obs.Event.Clr
         { xid = owner; invoker; oid = upd.Record.oid; lsn; undone });
    info.undo_next <- undo_next;
    lsn
  in
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Backward);
  let sweep =
    Obs.Profiler.time env.prof "restart.backward" (fun () ->
        if naive_sweep then Scope_sweep.sweep_naive env ~scopes ~on_undo
        else Scope_sweep.sweep env ~scopes ~on_undo)
  in
  Obs.Profiler.count env.prof "restart.backward" "clusters"
    sweep.Scope_sweep.clusters;
  Obs.Profiler.count env.prof "restart.backward" "examined"
    sweep.Scope_sweep.examined;
  Obs.Profiler.count env.prof "restart.backward" "skipped"
    sweep.Scope_sweep.skipped;
  Obs.Profiler.count env.prof "restart.backward" "undos"
    sweep.Scope_sweep.undone;
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Backward);
  Trace.Log.debug (fun m ->
      m
        "backward pass done: %d clusters, %d examined, %d skipped, %d          undone"
        sweep.Scope_sweep.clusters sweep.Scope_sweep.examined
        sweep.Scope_sweep.skipped sweep.Scope_sweep.undone);
  (* install the deferred lazy splices as one rewrite system transaction:
     intent + before/after images forced, then the in-place rewrites,
     then the end record. A crash before the closing force rolls the
     whole batch back at the next restart (all-logical history); after
     it, roll-forward re-installs it (all-physical). *)
  (match !splices with
  | [] -> ()
  | sp ->
      let patches =
        List.concat_map (fun (a, b) -> [ a; b ]) (List.rev sp)
        |> List.sort (fun a b ->
               Lsn.compare a.Rewrite.target b.Rewrite.target)
      in
      Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Surgery);
      Obs.Profiler.time env.prof "restart.splice" (fun () ->
          let begin_lsn = Rewrite.surgery_begin env patches in
          ignore (Rewrite.apply_plan env patches);
          Rewrite.surgery_end env ~begin_lsn ~committed:true);
      Obs.Profiler.count env.prof "restart.splice" "patches"
        (List.length patches);
      Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Surgery));
  Obs.Ring.emit env.ring (Obs.Event.Restart_enter Obs.Event.Finish);
  Obs.Profiler.time env.prof "restart.finish" (fun () ->
      finish_losers env tt;
      Log_store.flush env.log ~upto:(Log_store.head env.log));
  Obs.Ring.emit env.ring (Obs.Event.Restart_leave Obs.Event.Finish);
  Obs.Ring.emit env.ring
    (Obs.Event.Recovered
       {
         winners = Xid.Set.cardinal fwd.winners;
         losers = Xid.Set.cardinal loser_set;
         undos = sweep.Scope_sweep.undone;
       });
  let io_after = Log_store.stats env.log in
  {
    Report.winners = fwd.winners;
    losers = loser_set;
    forward_records = fwd.forward_records;
    redo_applied = fwd.redo_applied;
    backward_examined = sweep.Scope_sweep.examined;
    backward_skipped = sweep.Scope_sweep.skipped;
    clusters = sweep.Scope_sweep.clusters;
    undos = sweep.Scope_sweep.undone;
    amputated = fwd.amputated;
    repaired_pages = env.repairs - repairs_before;
    surgery_rolled_back = env.surgery_rolled_back - srb_before;
    surgery_rolled_forward = env.surgery_rolled_forward - srf_before;
    log_io = Log_stats.diff io_after io_before;
    profile = env.prof;
  }

let recover ?passes ?fuel env = recover_gen ?passes ~physical:false ?fuel env
let recover_naive_sweep env = recover_gen ~naive_sweep:true ~physical:false env
let recover_physical env = recover_gen ~physical:true env
