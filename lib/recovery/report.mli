(** What a restart recovery did, for tests and experiments. *)

open Ariesrh_types

type t = {
  winners : Xid.Set.t;
  losers : Xid.Set.t;  (** includes transactions found mid-rollback *)
  forward_records : int;  (** records processed by the forward pass *)
  redo_applied : int;  (** updates/CLRs actually re-applied to pages *)
  backward_examined : int;  (** records read inside loser clusters *)
  backward_skipped : int;  (** records jumped over between clusters *)
  clusters : int;
  undos : int;  (** CLRs written by the backward pass *)
  amputated : int;  (** corrupt stable tail records dropped at restart *)
  repaired_pages : int;  (** torn data pages repaired at restart *)
  surgery_rolled_back : int;
      (** interrupted rewrite surgeries rolled back by this restart *)
  surgery_rolled_forward : int;
      (** ended rewrite surgeries idempotently re-installed *)
  log_io : Ariesrh_wal.Log_stats.t;  (** log device activity during recovery *)
  profile : Ariesrh_obs.Profiler.t;
      (** per-pass timings and counters for this restart
          (amputate / forward / backward / repair / finish) *)
}

val pp : Format.formatter -> t -> unit
