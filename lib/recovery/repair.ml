open Ariesrh_types
open Ariesrh_wal
module Page = Ariesrh_storage.Page
module Disk = Ariesrh_storage.Disk
module Buffer_pool = Ariesrh_storage.Buffer_pool

let replay_onto (env : Env.t) pid page =
  let apply lsn (u : Record.update) =
    if Page_id.equal u.page pid && Lsn.(Page.page_lsn page < lsn) then begin
      let _pid, slot = env.place u.oid in
      Apply.run_op page ~slot u.op;
      Page.set_page_lsn page lsn
    end
  in
  (* Durable records only. A disk image never holds volatile effects (the
     WAL rule flushes up to the page LSN before any page write, this one
     included), so the durable prefix is enough to overtake the torn
     intent. Stopping there also keeps repair honest about who installs
     volatile effects: the caller that appended them does, page-LSN
     conditioned — replaying them here as well would race that caller.
     iter_valid_forward tolerates a corrupt trailing record: at restart
     this runs after tail amputation, and mid-run the stable prefix is
     intact — either way a corrupt record means end-of-log. *)
  ignore
    (Log_store.iter_valid_forward env.log
       ~from:(Log_store.truncated_below env.log)
       ~upto:(Log_store.durable env.log) (fun lsn r ->
         match r.Record.body with
         | Record.Update u -> apply lsn u
         | Record.Clr { upd; _ } -> apply lsn upd
         | _ -> ()))

let page (env : Env.t) pid shadow =
  let module Obs = Ariesrh_obs in
  Obs.Profiler.time env.prof "restart.repair" (fun () ->
      let p = Page.copy shadow in
      replay_onto env pid p;
      Disk.write_page (Buffer_pool.disk env.pool) pid p;
      env.repairs <- env.repairs + 1;
      Obs.Profiler.count env.prof "restart.repair" "pages" 1;
      p)

let torn_pages (env : Env.t) =
  let disk = Buffer_pool.disk env.pool in
  let repaired = ref 0 in
  for i = 0 to Disk.page_count disk - 1 do
    let pid = Page_id.of_int i in
    match Disk.read_page_checked disk pid with
    | Ok _ -> ()
    | Error shadow ->
        incr repaired;
        ignore (page env pid shadow)
  done;
  !repaired
