open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn
module Obs = Ariesrh_obs

(* On-demand (incremental) restart, after Sauer & Härder's single-pass
   instant recovery: run only the bounded analysis pass, open for
   traffic, and do the rest lazily.

   The analysis pass (Forward.run ~apply_redo:false) rebuilds the
   transaction table, the loser scopes, and the dirty-page table — but
   touches no page. Afterwards:

   - every dirty page's missing redo is exactly the log slice
     [recLSN .. horizon] filtered to that page, page-LSN conditioned, so
     it can be replayed the first time anything touches the page
     ([ensure_page]) — or by the background sweeper;

   - every loser transaction's undo is scoped to the objects its
     Ob_List covers, so losers can be undone one at a time
     ([drain_loser]), each drain an ordinary cluster sweep + CLRs +
     abort/end, flushed as a unit. Draining per loser is sound: X locks
     mean at most one loser holds uncommitted Sets on any object, and
     concurrent Adds commute, so no cross-loser undo ordering exists to
     violate;

   - an object covered by a live loser scope is NOT servable to
     transactions (its committed value is not yet separable from the
     loser's uncommitted writes); the engine refuses such accesses with
     the retryable [Errors.Recovering] until the loser drains.

   Everything here is re-entrant: this state is volatile, CLRs trim
   scopes durably, redo is page-LSN conditioned, and ended losers
   vanish from the next analysis — a crash at any point during the
   drain simply re-runs a smaller instance of the same restart. *)

type t = {
  env : Env.t;
  physical : bool;
      (* lazy engine: splice delegated-in records physically while
         undoing, exactly as the offline backward pass would *)
  tt : Txn_table.t;  (* losers only; entries leave as they drain *)
  pending : Lsn.t Page_id.Tbl.t;  (* page -> recLSN, removed once redone *)
  horizon : Lsn.t;  (* durable head at analysis time: redo replays to here *)
  mutable lazy_redo : int;  (* updates applied by slice redo *)
  mutable undos : int;  (* CLRs written by lazy drains *)
}

let append_on_chain env (info : Txn_table.info) body =
  let record = Record.mk info.xid ~prev:info.last_lsn body in
  let lsn = Log_store.append_reserved env.Env.log record in
  info.last_lsn <- lsn;
  lsn

let start ?passes ~physical (env : Env.t) =
  env.prof <- Obs.Profiler.create ();
  let io_before = Log_stats.copy (Log_store.stats env.log) in
  let repairs_before = env.repairs in
  let srb_before = env.surgery_rolled_back in
  let srf_before = env.surgery_rolled_forward in
  let mode = if physical then Forward.Rh_rewritten else Forward.Rh in
  let fwd = Forward.run ?passes ~apply_redo:false env ~mode in
  (* everything lazily replayed stops at the durable head as analysis
     saw it; records appended from here on are applied at append time,
     to pages whose slice redo has already run *)
  let horizon = Log_store.head env.log in
  (* committed-but-not-ended transactions need no undo and no page
     work: end them now (bounded, one record each) so only real losers
     survive into the lazy phase *)
  let committed =
    Txn_table.fold fwd.tt ~init:[] ~f:(fun acc info ->
        match info.status with
        | Txn_table.Committed -> info :: acc
        | Txn_table.Active | Txn_table.Rolling_back -> acc)
  in
  List.iter
    (fun (info : Txn_table.info) ->
      ignore (append_on_chain env info Record.End);
      Txn_table.remove fwd.tt info.xid)
    committed;
  Log_store.flush env.log ~upto:(Log_store.head env.log);
  let losers =
    Txn_table.fold fwd.tt ~init:Xid.Set.empty ~f:(fun s i ->
        Xid.Set.add i.Txn_table.xid s)
  in
  let t =
    {
      env;
      physical;
      tt = fwd.tt;
      pending = fwd.dpt;
      horizon;
      lazy_redo = 0;
      undos = 0;
    }
  in
  let report =
    {
      Report.winners = fwd.winners;
      losers;
      forward_records = fwd.forward_records;
      redo_applied = fwd.redo_applied;
      backward_examined = 0;
      backward_skipped = 0;
      clusters = 0;
      undos = 0;
      amputated = fwd.amputated;
      repaired_pages = env.repairs - repairs_before;
      surgery_rolled_back = env.surgery_rolled_back - srb_before;
      surgery_rolled_forward = env.surgery_rolled_forward - srf_before;
      log_io = Log_stats.diff (Log_store.stats env.log) io_before;
      profile = env.prof;
    }
  in
  (t, report)

let backlog t = Page_id.Tbl.length t.pending + Txn_table.count t.tt
let pending_pages t = Page_id.Tbl.length t.pending
let loser_count t = Txn_table.count t.tt
let lazy_redo t = t.lazy_redo
let lazy_undos t = t.undos

let covered t oid =
  Txn_table.fold t.tt ~init:false ~f:(fun acc info ->
      acc || Ob_list.mem info.Txn_table.ob_list oid)

(* Replay the page's missing redo slice: every update/CLR/transfer-in
   for this page in [recLSN .. horizon], page-LSN conditioned (so
   records already on disk, or already replayed by a torn-page repair,
   skip harmlessly). Removing the pending entry only after the slice
   completes keeps an interrupted ensure retryable. *)
let ensure_page t page =
  match Page_id.Tbl.find_opt t.pending page with
  | None -> ()
  | Some rec_lsn ->
      let applied = ref 0 in
      Obs.Profiler.time t.env.prof "restart.ondemand.redo" (fun () ->
          Log_store.iter_forward t.env.log ~from:rec_lsn ~upto:t.horizon
            (fun lsn record ->
              let redo (u : Record.update) =
                if
                  Page_id.equal u.page page
                  && Lsn.(lsn >= rec_lsn)
                  && Apply.redo t.env lsn u
                then incr applied
              in
              match record.Record.body with
              | Record.Update u -> redo u
              | Record.Clr { upd; _ } -> redo upd
              | Record.Xfer_in { oid; page = p; before; value; _ } ->
                  redo
                    {
                      Record.oid;
                      page = p;
                      op = Record.Set { before; after = value };
                    }
              | _ -> ()));
      t.lazy_redo <- t.lazy_redo + !applied;
      Obs.Profiler.count t.env.prof "restart.ondemand.redo" "pages" 1;
      Obs.Profiler.count t.env.prof "restart.ondemand.redo" "redo_applied"
        !applied;
      Page_id.Tbl.remove t.pending page

let ensure_object t oid = ensure_page t (fst (t.env.place oid))

(* Undo one loser completely: cluster sweep over its scopes, CLR per
   undone update, the lazy engine's physical splice batched as one
   rewrite system transaction, then abort/end — flushed as a unit.
   This is the offline backward pass restricted to a single loser. *)
let drain_loser t (info : Txn_table.info) =
  let scopes =
    List.map (fun s -> (info.xid, s)) (Ob_list.all_scopes info.ob_list)
  in
  let splices = ref [] in
  let on_undo ~owner ~invoker ~undone ~undo_next upd =
    (* the sweep will force the inverse stamped with the CLR's (high)
       LSN; the page's pending redo must land first or the stamp would
       make it silently skip — the redo-before-undo rule *)
    ensure_page t upd.Record.page;
    t.undos <- t.undos + 1;
    let inf = Txn_table.find_exn t.tt owner in
    let clr =
      Record.mk inf.xid ~prev:inf.last_lsn
        (Record.Clr { upd; undone; invoker; undo_next })
    in
    let lsn = Log_store.append_reserved t.env.log clr in
    inf.last_lsn <- lsn;
    if t.physical && not (Xid.equal owner invoker) then begin
      Obs.Profiler.count t.env.prof "restart.ondemand.undo" "rewrites" 1;
      let original = Log_store.read t.env.log undone in
      let clr' =
        { clr with
          Record.body = Record.Clr { upd; undone; invoker = owner; undo_next }
        }
      in
      splices :=
        ( { Rewrite.target = undone;
            before = original;
            after = Record.set_writer original owner;
          },
          { Rewrite.target = lsn; before = clr; after = clr' } )
        :: !splices
    end;
    Obs.Ring.emit t.env.ring
      (Obs.Event.Clr
         { xid = owner; invoker; oid = upd.Record.oid; lsn; undone });
    inf.undo_next <- undo_next;
    lsn
  in
  let sweep =
    Obs.Profiler.time t.env.prof "restart.ondemand.undo" (fun () ->
        Scope_sweep.sweep t.env ~scopes ~on_undo)
  in
  Obs.Profiler.count t.env.prof "restart.ondemand.undo" "undos"
    sweep.Scope_sweep.undone;
  (* per-loser splice surgery: a crash between losers leaves each
     delegation either fully logical or fully physical, which the
     Rh_rewritten analysis replays per delegation — never a mix where a
     record and its CLR disagree *)
  (match !splices with
  | [] -> ()
  | sp ->
      let patches =
        List.concat_map (fun (a, b) -> [ a; b ]) (List.rev sp)
        |> List.sort (fun a b -> Lsn.compare a.Rewrite.target b.Rewrite.target)
      in
      let begin_lsn = Rewrite.surgery_begin t.env patches in
      ignore (Rewrite.apply_plan t.env patches);
      Rewrite.surgery_end t.env ~begin_lsn ~committed:true);
  (match info.status with
  | Txn_table.Active ->
      ignore (append_on_chain t.env info Record.Abort);
      ignore (append_on_chain t.env info Record.End)
  | Txn_table.Rolling_back | Txn_table.Committed ->
      ignore (append_on_chain t.env info Record.End));
  Txn_table.remove t.tt info.xid;
  Log_store.flush t.env.log ~upto:(Log_store.head t.env.log)

(* smallest-xid first: deterministic regardless of hash-table iteration
   order, so fault-injection I/O points reproduce *)
let oldest_loser t =
  Txn_table.fold t.tt ~init:None ~f:(fun acc info ->
      match acc with
      | Some (best : Txn_table.info) when Xid.compare best.xid info.xid <= 0 ->
          acc
      | _ -> Some info)

let min_pending_page t =
  Page_id.Tbl.fold
    (fun page _ acc ->
      match acc with
      | Some best when Page_id.compare best page <= 0 -> acc
      | _ -> Some page)
    t.pending None

(* Drain every loser covering the object (after its page is current);
   the foreground-repair path behind [Db.peek]. *)
let drain_object t oid =
  ensure_object t oid;
  let rec go () =
    match
      Txn_table.fold t.tt ~init:None ~f:(fun acc info ->
          match acc with
          | Some _ -> acc
          | None ->
              if Ob_list.mem info.Txn_table.ob_list oid then Some info
              else None)
    with
    | Some info ->
        drain_loser t info;
        go ()
    | None -> ()
  in
  go ()

(* One unit of background work; [false] = nothing left, the store has
   fully converged with what an offline restart would have produced. *)
let step t =
  match oldest_loser t with
  | Some info ->
      drain_loser t info;
      true
  | None -> (
      match min_pending_page t with
      | Some page ->
          ensure_page t page;
          true
      | None -> false)
