(** On-demand (incremental) restart: analysis only, then open.

    [start] runs the restart preamble (tail amputation, surgery
    resolution) and a pure analysis pass — transaction table, loser
    scopes, dirty-page table — whose cost is bounded by the checkpoint
    interval, not the log length. The store then serves traffic while
    the remaining restart work drains lazily:

    - {b redo} is per page: a dirty page's missing updates are exactly
      the log slice from its recLSN to the durable horizon, page-LSN
      conditioned, replayed the first time anything touches the page
      ([ensure_page]/[ensure_object]) or by the sweeper;
    - {b undo} is per loser: one cluster sweep over that loser's scopes
      with CLRs, the lazy engine's physical splice, then abort/end,
      flushed as a unit ([drain_loser] via [step]/[drain_object]).
      Per-loser draining is sound because X locks leave at most one
      loser with uncommitted [Set]s on any object and [Add]s commute;
    - an object still covered by a loser scope is {b not servable} to
      transactions (the engine refuses with [Errors.Recovering]); the
      cover clears when the loser drains — the early-lock-release rule:
      post-restart transactions never wait on loser locks, they wait on
      the (shrinking) backlog.

    All state here is volatile and every durable effect (CLR, splice,
    end record, conditioned redo) is idempotent, so a crash at any point
    during the drain re-enters as a smaller instance of the same
    restart. *)

open Ariesrh_types
open Ariesrh_txn

type t

val start : ?passes:Forward.passes -> physical:bool -> Env.t -> t * Report.t
(** Analysis-only restart. [physical] selects the lazy engine's
    splice-while-undoing behaviour (and the [Rh_rewritten] scan mode
    that tolerates already-spliced history). Committed-but-unended
    transactions are ended immediately (bounded work); the returned
    report covers the analysis pass only — [undos]/[backward_*] are 0
    and accrue lazily afterwards. *)

val backlog : t -> int
(** Remaining restart work: pages awaiting slice redo + losers awaiting
    undo. 0 = converged with the offline restart's final state. *)

val pending_pages : t -> int
val loser_count : t -> int

val lazy_redo : t -> int
(** Updates applied by slice redo since [start]. *)

val lazy_undos : t -> int
(** CLRs written by lazy drains since [start]. *)

val covered : t -> Oid.t -> bool
(** Is the object still covered by an undrained loser's scope (i.e. not
    servable to transactions)? *)

val ensure_page : t -> Page_id.t -> unit
(** Replay the page's missing redo slice if it is still pending.
    Idempotent; interrupted runs retry in full (conditioned redo makes
    the replayed prefix skip). *)

val ensure_object : t -> Oid.t -> unit

val drain_loser : t -> Txn_table.info -> unit
(** Undo one loser completely and end it. *)

val drain_object : t -> Oid.t -> unit
(** Foreground repair: bring the object's page current, then drain every
    loser covering the object, so its committed value is servable. *)

val step : t -> bool
(** One unit of background work — drain the oldest loser, else redo the
    lowest pending page. [false] = nothing left. Deterministic order, so
    fault-injection schedules reproduce. *)
