open Ariesrh_types
module Obs = Ariesrh_obs

type t = {
  log : Ariesrh_wal.Log_store.t;
  pool : Ariesrh_storage.Buffer_pool.t;
  place : Oid.t -> Page_id.t * int;
  mutable repairs : int;
  ring : Obs.Ring.t;
  mutable prof : Obs.Profiler.t;
  (* lifetime counters for the rewrite-surgery machinery; read through
     the metrics registry like every other stat record *)
  mutable surgery_rolled_back : int;
  mutable surgery_rolled_forward : int;
  mutable rewrite_fallbacks : int;
  mutable audit_runs : int;
  mutable audit_failures : int;
}

let make ?ring ?prof ~log ~pool ~place () =
  let ring = match ring with Some r -> r | None -> Obs.Ring.create () in
  let prof = match prof with Some p -> p | None -> Obs.Profiler.create () in
  {
    log;
    pool;
    place;
    repairs = 0;
    ring;
    prof;
    surgery_rolled_back = 0;
    surgery_rolled_forward = 0;
    rewrite_fallbacks = 0;
    audit_runs = 0;
    audit_failures = 0;
  }
