open Ariesrh_types

type t = {
  log : Ariesrh_wal.Log_store.t;
  pool : Ariesrh_storage.Buffer_pool.t;
  place : Oid.t -> Page_id.t * int;
  mutable repairs : int;
}

let make ~log ~pool ~place = { log; pool; place; repairs = 0 }
