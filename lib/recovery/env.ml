open Ariesrh_types
module Obs = Ariesrh_obs

type t = {
  log : Ariesrh_wal.Log_store.t;
  pool : Ariesrh_storage.Buffer_pool.t;
  place : Oid.t -> Page_id.t * int;
  mutable repairs : int;
  ring : Obs.Ring.t;
  mutable prof : Obs.Profiler.t;
}

let make ?ring ?prof ~log ~pool ~place () =
  let ring = match ring with Some r -> r | None -> Obs.Ring.create () in
  let prof = match prof with Some p -> p | None -> Obs.Profiler.create () in
  { log; pool; place; repairs = 0; ring; prof }
