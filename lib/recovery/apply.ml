open Ariesrh_wal

let inverse = function
  | Record.Set { before; after } -> Record.Set { before = after; after = before }
  | Record.Add d -> Record.Add (-d)

let run_op page ~slot = function
  | Record.Set { after; _ } -> Ariesrh_storage.Page.set page slot after
  | Record.Add d ->
      Ariesrh_storage.Page.set page slot (Ariesrh_storage.Page.get page slot + d)

let redo (env : Env.t) lsn (u : Record.update) =
  let _page_id, slot = env.place u.oid in
  Ariesrh_storage.Buffer_pool.apply_if_newer env.pool u.page ~lsn (fun page ->
      run_op page ~slot u.op)

(* Also page-LSN conditioned, even though the caller just appended the
   record and its LSN is the log's maximum: fetching the target page may
   run demand repair (Repair.page), and if the log was flushed past this
   record in the meantime — say by the eviction making room for the very
   fetch — the replay has already installed the effect. Applying it
   again would double it; the condition makes installation idempotent,
   exactly like redo. *)
let force (env : Env.t) lsn (u : Record.update) =
  let _page_id, slot = env.place u.oid in
  ignore
    (Ariesrh_storage.Buffer_pool.apply_if_newer env.pool u.page ~lsn
       (fun page -> run_op page ~slot u.op))
