(** The pieces of the database that recovery algorithms operate on. *)

open Ariesrh_types

type t = {
  log : Ariesrh_wal.Log_store.t;
  pool : Ariesrh_storage.Buffer_pool.t;
  place : Oid.t -> Page_id.t * int;  (** object -> (page, slot) *)
  mutable repairs : int;
      (** lifetime count of torn pages repaired ({!Repair.page}); a
          counter rather than a per-restart report figure because the
          restart doing a repair may itself be killed by a fault while
          the repaired page — persisted immediately — survives *)
}

val make :
  log:Ariesrh_wal.Log_store.t ->
  pool:Ariesrh_storage.Buffer_pool.t ->
  place:(Oid.t -> Page_id.t * int) ->
  t
