(** The pieces of the database that recovery algorithms operate on. *)

open Ariesrh_types

type t = {
  log : Ariesrh_wal.Log_store.t;
  pool : Ariesrh_storage.Buffer_pool.t;
  place : Oid.t -> Page_id.t * int;  (** object -> (page, slot) *)
  mutable repairs : int;
      (** lifetime count of torn pages repaired ({!Repair.page}); a
          counter rather than a per-restart report figure because the
          restart doing a repair may itself be killed by a fault while
          the repaired page — persisted immediately — survives *)
  ring : Ariesrh_obs.Ring.t;
      (** trace ring shared with the owning database; restart phases,
          CLRs, and recovery outcomes are emitted into it (no-ops when
          tracing is disabled) *)
  mutable prof : Ariesrh_obs.Profiler.t;
      (** per-restart profiler; each recovery entry point installs a
          fresh one and hands it out via [Report.profile] *)
  mutable surgery_rolled_back : int;
      (** lifetime count of interrupted rewrite surgeries rolled back at
          restart ({!Rewrite.recover_surgeries}) *)
  mutable surgery_rolled_forward : int;
      (** lifetime count of ended rewrite surgeries idempotently
          re-installed at restart *)
  mutable rewrite_fallbacks : int;
      (** lifetime count of eager delegations that fell back to a
          logical delegate record because physical surgery could not
          complete *)
  mutable audit_runs : int;  (** restart self-audit passes executed *)
  mutable audit_failures : int;
      (** restart self-audit passes that found a violated invariant *)
}

val make :
  ?ring:Ariesrh_obs.Ring.t ->
  ?prof:Ariesrh_obs.Profiler.t ->
  log:Ariesrh_wal.Log_store.t ->
  pool:Ariesrh_storage.Buffer_pool.t ->
  place:(Oid.t -> Page_id.t * int) ->
  unit ->
  t
(** Omitted [ring] defaults to a fresh disabled ring; omitted [prof] to
    a fresh profiler. *)
