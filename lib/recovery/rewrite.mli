(** The eager history-rewriting baseline (§3.1–3.2, Fig. 1), made
    crash-atomic with a rewrite {e system transaction}.

    Eager delegation physically rewrites the log at the moment of each
    [delegate]: every record of the delegator on the delegated object is
    re-attributed to the delegatee ([setTransID]) {e and} moved from the
    delegator's backward chain to the delegatee's (the chain surgery the
    paper notes is required for recovery to remain correct). After eager
    delegation the log contains no delegate records, and conventional
    ARIES recovery applies unchanged — at the price of random mid-log
    reads and in-place writes that ARIES/RH avoids entirely.

    Because those in-place writes hit {e durable} history, a crash in the
    middle of a multi-record splice used to leave the log in a state
    neither before nor after the delegation. The surgery protocol fixes
    that: the full set of rewrites is computed as a {!plan} (pure),
    logged as an intent record plus per-target physical CLRs
    ({!surgery_begin}, forced), applied in place ({!apply_plan}), and
    closed with an end record ({!surgery_end}) whose force also hardens
    whatever dependent records the caller appended. Restart runs
    {!recover_surgeries} before any scan: an un-ended surgery is rolled
    back from its before-images; an ended one is idempotently
    re-installed. Every crash point therefore resolves to exactly the
    pre-surgery or the post-surgery log. *)

open Ariesrh_types
open Ariesrh_wal
open Ariesrh_txn

(** {1 Surgery plans} *)

type patch = {
  target : Lsn.t;  (** durable record being rewritten in place *)
  before : Record.t;  (** its content entering the surgery *)
  after : Record.t;  (** its content leaving the surgery *)
}

type plan = {
  patches : patch list;  (** ascending target LSN, one per touched record *)
  moved : Lsn.t list;  (** update records re-attributed to the delegatee *)
  tor_last : Lsn.t;  (** delegator chain head after the splice *)
  tee_last : Lsn.t;  (** delegatee chain head after the splice *)
}

val plan_eager :
  Env.t -> tor_info:Txn_table.info -> tee_info:Txn_table.info -> Oid.t -> plan
(** Compute the full chain surgery without touching the log or the
    transaction table. Pure with respect to stable state: reads run
    against an overlay of pending patches, so the plan can be logged and
    crash-recovered before a single byte of durable history changes. *)

val apply_plan : Env.t -> patch list -> int
(** Perform the in-place rewrites. Each one is a synchronous durable I/O
    (a {!Ariesrh_fault.Fault.Log_rewrite} crash site). Returns the
    number of rewrites performed. *)

(** {1 The rewrite system transaction} *)

val surgery_cost : ?deleg:Xid.t * Xid.t * Oid.t -> patch list -> int * int
(** [(bytes, records)] the surgery protocol will append for this patch
    set: one intent record, one physical CLR per patch, one end record.
    Callers reserve this (plus their own dependent records) up front so
    no append inside the window can hit [Log_full]. *)

val surgery_begin :
  Env.t -> ?deleg:Xid.t * Xid.t * Oid.t -> patch list -> Lsn.t
(** Append and force the intent record and the per-target before/after
    CLRs. After this returns, a crash at any later point is recoverable.
    All appends bypass admission — the caller must hold a reservation
    covering {!surgery_cost}. Returns the intent record's LSN. *)

val surgery_end : Env.t -> begin_lsn:Lsn.t -> committed:bool -> unit
(** Append and force the end record, closing the system transaction.
    Committing callers append any records that must live or die with the
    surgery (chain anchors, delegation bookkeeping) {e before} calling
    this: the closing force hardens them and the end record as one
    unit. *)

(** {1 Restart surgery recovery} *)

exception Surgery_corrupt of string
(** The durable log violates the surgery protocol (orphaned rewrite CLR,
    unmatched end record, an un-ended surgery that is not the newest, or
    an undecodable saved image). Not silently repaired. *)

val recover_surgeries : Env.t -> int * int
(** Resolve rewrite system transactions from the durable log. Runs after
    tail amputation and before the forward scan on every engine. The
    newest surgery, if un-ended, is rolled forward when every retained
    target already holds its after-image (the apply phase completed; its
    dependent records may be durable) and rolled back otherwise — in
    both cases a closing end record is appended so later restarts see a
    resolved surgery. Ended surgeries are idempotently re-installed.
    Returns [(rolled_back, rolled_forward)] and bumps the matching
    {!Env.t} counters.

    The scan starts above the master checkpoint record (surgeries and
    checkpoints never interleave, so everything at or below it is
    resolved), keeping restart's extra pass proportional to the
    since-checkpoint tail rather than the retained log.

    @raise Surgery_corrupt on protocol violations. *)

(** {1 Legacy entry points} *)

val eager_delegate :
  Env.t ->
  tor_info:Txn_table.info ->
  tee_info:Txn_table.info ->
  Oid.t ->
  int
(** The raw splice, sans system transaction: plan + apply + chain-head
    maintenance. [Db.delegate] drives the crash-atomic protocol itself;
    tests and figures that call this directly get the bare (non-atomic)
    §3.2 behaviour. Returns the number of in-place rewrites. *)

val attribute_only : Env.t -> tor:Xid.t -> tee:Xid.t -> Oid.t -> from:Lsn.t -> int
(** The {e literal} Fig. 1 loop: walk the delegator's backward chain from
    [from], re-attributing matching update records, without chain
    surgery. Kept for the figure reproductions; not a correct
    implementation on its own (the paper's point). Returns the number of
    records re-attributed. *)
