open Ariesrh_types
open Ariesrh_wal

exception Audit_failed of string list

(* Walk the durable log once and check the chain-closure invariants that
   every engine must re-establish by the end of recovery:

   - backward pointers strictly decrease: every [prev] (and delegate
     [tee_prev]) sits strictly below its record, so every chain walk
     terminates inside the log;
   - no orphaned CLRs: a compensation's [undone] target, when still
     retained, is an update record on the same object;
   - rewrite surgeries are bracketed: no rewrite CLR or end record
     outside an open surgery, and no surgery left un-ended once
     recovery has finished;
   - every re-attributed update has a durable transfer: an update
     attributed to a transaction that begins {e above} it can only be
     the product of chain surgery, so its LSN must appear among the
     targets of a committed rewrite surgery. (An update whose writer has
     no begin record at all is flagged too, unless truncation has eaten
     the log prefix where that begin — or the old surgery — may have
     lived.) *)
let check (env : Env.t) =
  let log = env.Env.log in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let base = Log_store.truncated_below log in
  let durable = Log_store.durable log in
  let truncated = Lsn.(base > Lsn.first) in
  let in_range l = Lsn.(l >= base) && Lsn.(l <= durable) in
  let begins : (int, Lsn.t) Hashtbl.t = Hashtbl.create 32 in
  let updates = ref [] in
  let committed_targets : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* (begin lsn, reversed CLR targets, end status) of the open surgery *)
  let cur : (Lsn.t * Lsn.t list ref * bool option ref) option ref =
    ref None
  in
  (* open cross-shard transfers: xfer_id -> (out lsn, oid) *)
  let open_xfers : (int, Lsn.t * Oid.t) Hashtbl.t = Hashtbl.create 8 in
  (* per-object last transfer hop seen on this log, in LSN order *)
  let last_hop : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let note_hop lsn oid hop =
    let k = Oid.to_int oid in
    (match Hashtbl.find_opt last_hop k with
    | Some h when hop <= h ->
        err "transfer at %a: hop %d for %a does not increase (last %d)"
          Lsn.pp lsn hop Oid.pp oid h
    | _ -> ());
    Hashtbl.replace last_hop k hop
  in
  if Lsn.(durable >= base) then
    Log_store.iter_forward log ~from:base ~upto:durable (fun lsn record ->
        (match record.Record.xid with
        | Some _ ->
            let p = record.Record.prev in
            if (not (Lsn.is_nil p)) && Lsn.(p >= lsn) then
              err "record %a: prev %a does not strictly decrease" Lsn.pp lsn
                Lsn.pp p
        | None -> ());
        match record.Record.body with
        | Record.Begin ->
            let x = Xid.to_int (Record.writer_exn record) in
            if not (Hashtbl.mem begins x) then Hashtbl.replace begins x lsn
        | Record.Update u ->
            updates := (lsn, Record.writer_exn record, u.Record.oid) :: !updates
        | Record.Delegate { tee_prev; _ } ->
            if (not (Lsn.is_nil tee_prev)) && Lsn.(tee_prev >= lsn) then
              err "delegate at %a: tee_prev %a does not strictly decrease"
                Lsn.pp lsn Lsn.pp tee_prev
        | Record.Clr { upd; undone; _ } ->
            if in_range undone then (
              match (Log_store.read log undone).Record.body with
              | Record.Update u when Oid.equal u.Record.oid upd.Record.oid ->
                  ()
              | Record.Update u ->
                  err "CLR at %a compensates %a on %a but targets %a" Lsn.pp
                    lsn Lsn.pp undone Oid.pp upd.Record.oid Oid.pp
                    u.Record.oid
              | _ ->
                  err "CLR at %a: undone target %a is not an update" Lsn.pp
                    lsn Lsn.pp undone)
        | Record.Rewrite_begin _ ->
            (match !cur with
            | Some (b, _, ended) when !ended = None ->
                err
                  "rewrite surgery at %a opens inside the un-ended surgery \
                   at %a"
                  Lsn.pp lsn Lsn.pp b
            | _ -> ());
            cur := Some (lsn, ref [], ref None)
        | Record.Rewrite_clr { target; _ } -> (
            match !cur with
            | Some (_, ts, ended) when !ended = None -> ts := target :: !ts
            | _ -> err "orphaned rewrite CLR at %a" Lsn.pp lsn)
        | Record.Rewrite_end { begin_lsn; committed } -> (
            match !cur with
            | Some (b, ts, ended) when !ended = None && Lsn.equal b begin_lsn
              ->
                ended := Some committed;
                if committed then
                  List.iter
                    (fun t -> Hashtbl.replace committed_targets (Lsn.to_int t) ())
                    !ts
            | _ ->
                err "rewrite end at %a closes no open surgery (begin=%a)"
                  Lsn.pp lsn Lsn.pp begin_lsn)
        (* Per-shard transfer bracketing. An un-ended [Xfer_out] is NOT
           an error here: per-shard recovery audits before the router
           resolves in-doubt transfers against the target shard's log.
           [check_transfers] (cross-shard, post-resolution) enforces
           the rest. *)
        | Record.Xfer_out { xfer_id; hop; oid; _ } ->
            note_hop lsn oid hop;
            if Hashtbl.mem open_xfers xfer_id then
              err "transfer intent at %a: xfer #%d already open" Lsn.pp lsn
                xfer_id
            else Hashtbl.replace open_xfers xfer_id (lsn, oid)
        | Record.Xfer_in { hop; oid; _ } -> note_hop lsn oid hop
        | Record.Xfer_end { xfer_id; oid; _ } -> (
            match Hashtbl.find_opt open_xfers xfer_id with
            | Some (_, out_oid) ->
                if not (Oid.equal out_oid oid) then
                  err "transfer end at %a: xfer #%d ends %a but opened on %a"
                    Lsn.pp lsn xfer_id Oid.pp oid Oid.pp out_oid;
                Hashtbl.remove open_xfers xfer_id
            | None ->
                if not truncated then
                  err "transfer end at %a closes no open xfer #%d" Lsn.pp lsn
                    xfer_id)
        | Record.Commit | Record.Abort | Record.End | Record.Anchor
        | Record.Ckpt_begin | Record.Ckpt_end _ ->
            ());
  (match !cur with
  | Some (b, _, ended) when !ended = None ->
      err "un-ended rewrite surgery at %a survived recovery" Lsn.pp b
  | _ -> ());
  List.iter
    (fun (lsn, xid, _oid) ->
      match Hashtbl.find_opt begins (Xid.to_int xid) with
      | Some b when Lsn.(b > lsn) ->
          if not (Hashtbl.mem committed_targets (Lsn.to_int lsn)) then
            err
              "update at %a attributed to %a (begins at %a) without a \
               committed rewrite surgery covering it"
              Lsn.pp lsn Xid.pp xid Lsn.pp b
      | Some _ -> ()
      | None ->
          if not truncated then
            err "update at %a by %a, which never begins" Lsn.pp lsn Xid.pp xid)
    !updates;
  List.rev !errors

(* Cross-shard transfer invariant, checked over every shard's durable
   log together, after the router has resolved in-doubt transfers:

   - no [Xfer_out] is left un-ended anywhere;
   - a committed [Xfer_out] has exactly one matching [Xfer_in] on the
     shard it names, with the same object, hop and carried value;
   - an aborted [Xfer_out] has no matching [Xfer_in] on any shard;
   - every [Xfer_in] is justified by a durable [Xfer_out] on the shard
     it names as its source.

   Truncation relaxes the pairing checks in the usual way: once a
   shard's log prefix is gone, the partner record may legitimately have
   lived there. *)
let check_transfers (shards : (int * Env.t) list) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let truncated_shard : (int, bool) Hashtbl.t = Hashtbl.create 8 in
  let is_truncated s =
    Option.value ~default:false (Hashtbl.find_opt truncated_shard s)
  in
  (* xfer_id -> (shard, lsn, oid, hop, target, value, committed option) *)
  let outs :
      (int, int * Lsn.t * Oid.t * int * int * int * bool option) Hashtbl.t =
    Hashtbl.create 16
  in
  (* xfer_id -> (shard, lsn, oid, hop, source, value) *)
  let ins : (int, int * Lsn.t * Oid.t * int * int * int) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (shard, (env : Env.t)) ->
      let log = env.Env.log in
      let base = Log_store.truncated_below log in
      let durable = Log_store.durable log in
      Hashtbl.replace truncated_shard shard Lsn.(base > Lsn.first);
      if Lsn.(durable >= base) then
        Log_store.iter_forward log ~from:base ~upto:durable (fun lsn record ->
            match record.Record.body with
            | Record.Xfer_out { xfer_id; hop; oid; target; value } ->
                if Hashtbl.mem outs xfer_id then
                  err "shard %d: duplicate transfer intent #%d at %a" shard
                    xfer_id Lsn.pp lsn
                else
                  Hashtbl.add outs xfer_id
                    (shard, lsn, oid, hop, target, value, None)
            | Record.Xfer_in { xfer_id; hop; oid; source; value; _ } ->
                if Hashtbl.mem ins xfer_id then
                  err "shard %d: duplicate transfer-in #%d at %a" shard
                    xfer_id Lsn.pp lsn
                else
                  Hashtbl.add ins xfer_id (shard, lsn, oid, hop, source, value)
            | Record.Xfer_end { xfer_id; oid; committed } -> (
                match Hashtbl.find_opt outs xfer_id with
                | Some (s, l, o, h, t, v, None) when s = shard ->
                    if not (Oid.equal o oid) then
                      err "shard %d: transfer end #%d at %a names %a, not %a"
                        shard xfer_id Lsn.pp lsn Oid.pp oid Oid.pp o;
                    Hashtbl.replace outs xfer_id
                      (s, l, o, h, t, v, Some committed)
                | Some (s, _, _, _, _, _, None) ->
                    err
                      "shard %d: transfer end #%d at %a but the intent lives \
                       on shard %d"
                      shard xfer_id Lsn.pp lsn s
                | Some (_, _, _, _, _, _, Some _) ->
                    err "shard %d: transfer #%d ended twice (at %a)" shard
                      xfer_id Lsn.pp lsn
                | None ->
                    if not (is_truncated shard) then
                      err "shard %d: transfer end #%d at %a with no intent"
                        shard xfer_id Lsn.pp lsn)
            | _ -> ()))
    shards;
  Hashtbl.iter
    (fun xfer_id (shard, lsn, oid, hop, target, value, ended) ->
      match ended with
      | None ->
          err "shard %d: transfer #%d at %a still in doubt after resolution"
            shard xfer_id Lsn.pp lsn
      | Some true -> (
          match Hashtbl.find_opt ins xfer_id with
          | Some (in_shard, _, in_oid, in_hop, in_source, in_value) ->
              if in_shard <> target then
                err
                  "transfer #%d committed to shard %d but landed on shard %d"
                  xfer_id target in_shard;
              if in_source <> shard then
                err "transfer #%d: in record claims source %d, intent on %d"
                  xfer_id in_source shard;
              if not (Oid.equal in_oid oid) then
                err "transfer #%d: object mismatch (%a out, %a in)" xfer_id
                  Oid.pp oid Oid.pp in_oid;
              if in_hop <> hop then
                err "transfer #%d: hop mismatch (%d out, %d in)" xfer_id hop
                  in_hop;
              if in_value <> value then
                err "transfer #%d on %a: carried value mismatch (%d out, %d \
                     in)"
                  xfer_id Oid.pp oid value in_value
          | None ->
              if not (is_truncated target) then
                err
                  "transfer #%d on %a committed on shard %d but shard %d has \
                   no transfer-in"
                  xfer_id Oid.pp oid shard target)
      | Some false -> (
          match Hashtbl.find_opt ins xfer_id with
          | Some (in_shard, in_lsn, _, _, _, _) ->
              err
                "transfer #%d aborted on shard %d but shard %d adopted it at \
                 %a"
                xfer_id shard in_shard Lsn.pp in_lsn
          | None -> ()))
    outs;
  Hashtbl.iter
    (fun xfer_id (shard, lsn, _, _, source, _) ->
      if not (Hashtbl.mem outs xfer_id) && not (is_truncated source) then
        err
          "shard %d: transfer-in #%d at %a with no durable intent on shard %d"
          shard xfer_id Lsn.pp lsn source)
    ins;
  List.rev !errors

let run (env : Env.t) =
  env.Env.audit_runs <- env.Env.audit_runs + 1;
  match check env with
  | [] -> ()
  | vs ->
      env.Env.audit_failures <- env.Env.audit_failures + 1;
      raise (Audit_failed vs)
