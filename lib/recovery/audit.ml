open Ariesrh_types
open Ariesrh_wal

exception Audit_failed of string list

(* Walk the durable log once and check the chain-closure invariants that
   every engine must re-establish by the end of recovery:

   - backward pointers strictly decrease: every [prev] (and delegate
     [tee_prev]) sits strictly below its record, so every chain walk
     terminates inside the log;
   - no orphaned CLRs: a compensation's [undone] target, when still
     retained, is an update record on the same object;
   - rewrite surgeries are bracketed: no rewrite CLR or end record
     outside an open surgery, and no surgery left un-ended once
     recovery has finished;
   - every re-attributed update has a durable transfer: an update
     attributed to a transaction that begins {e above} it can only be
     the product of chain surgery, so its LSN must appear among the
     targets of a committed rewrite surgery. (An update whose writer has
     no begin record at all is flagged too, unless truncation has eaten
     the log prefix where that begin — or the old surgery — may have
     lived.) *)
let check (env : Env.t) =
  let log = env.Env.log in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let base = Log_store.truncated_below log in
  let durable = Log_store.durable log in
  let truncated = Lsn.(base > Lsn.first) in
  let in_range l = Lsn.(l >= base) && Lsn.(l <= durable) in
  let begins : (int, Lsn.t) Hashtbl.t = Hashtbl.create 32 in
  let updates = ref [] in
  let committed_targets : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* (begin lsn, reversed CLR targets, end status) of the open surgery *)
  let cur : (Lsn.t * Lsn.t list ref * bool option ref) option ref =
    ref None
  in
  if Lsn.(durable >= base) then
    Log_store.iter_forward log ~from:base ~upto:durable (fun lsn record ->
        (match record.Record.xid with
        | Some _ ->
            let p = record.Record.prev in
            if (not (Lsn.is_nil p)) && Lsn.(p >= lsn) then
              err "record %a: prev %a does not strictly decrease" Lsn.pp lsn
                Lsn.pp p
        | None -> ());
        match record.Record.body with
        | Record.Begin ->
            let x = Xid.to_int (Record.writer_exn record) in
            if not (Hashtbl.mem begins x) then Hashtbl.replace begins x lsn
        | Record.Update u ->
            updates := (lsn, Record.writer_exn record, u.Record.oid) :: !updates
        | Record.Delegate { tee_prev; _ } ->
            if (not (Lsn.is_nil tee_prev)) && Lsn.(tee_prev >= lsn) then
              err "delegate at %a: tee_prev %a does not strictly decrease"
                Lsn.pp lsn Lsn.pp tee_prev
        | Record.Clr { upd; undone; _ } ->
            if in_range undone then (
              match (Log_store.read log undone).Record.body with
              | Record.Update u when Oid.equal u.Record.oid upd.Record.oid ->
                  ()
              | Record.Update u ->
                  err "CLR at %a compensates %a on %a but targets %a" Lsn.pp
                    lsn Lsn.pp undone Oid.pp upd.Record.oid Oid.pp
                    u.Record.oid
              | _ ->
                  err "CLR at %a: undone target %a is not an update" Lsn.pp
                    lsn Lsn.pp undone)
        | Record.Rewrite_begin _ ->
            (match !cur with
            | Some (b, _, ended) when !ended = None ->
                err
                  "rewrite surgery at %a opens inside the un-ended surgery \
                   at %a"
                  Lsn.pp lsn Lsn.pp b
            | _ -> ());
            cur := Some (lsn, ref [], ref None)
        | Record.Rewrite_clr { target; _ } -> (
            match !cur with
            | Some (_, ts, ended) when !ended = None -> ts := target :: !ts
            | _ -> err "orphaned rewrite CLR at %a" Lsn.pp lsn)
        | Record.Rewrite_end { begin_lsn; committed } -> (
            match !cur with
            | Some (b, ts, ended) when !ended = None && Lsn.equal b begin_lsn
              ->
                ended := Some committed;
                if committed then
                  List.iter
                    (fun t -> Hashtbl.replace committed_targets (Lsn.to_int t) ())
                    !ts
            | _ ->
                err "rewrite end at %a closes no open surgery (begin=%a)"
                  Lsn.pp lsn Lsn.pp begin_lsn)
        | Record.Commit | Record.Abort | Record.End | Record.Anchor
        | Record.Ckpt_begin | Record.Ckpt_end _ ->
            ());
  (match !cur with
  | Some (b, _, ended) when !ended = None ->
      err "un-ended rewrite surgery at %a survived recovery" Lsn.pp b
  | _ -> ());
  List.iter
    (fun (lsn, xid, _oid) ->
      match Hashtbl.find_opt begins (Xid.to_int xid) with
      | Some b when Lsn.(b > lsn) ->
          if not (Hashtbl.mem committed_targets (Lsn.to_int lsn)) then
            err
              "update at %a attributed to %a (begins at %a) without a \
               committed rewrite surgery covering it"
              Lsn.pp lsn Xid.pp xid Lsn.pp b
      | Some _ -> ()
      | None ->
          if not truncated then
            err "update at %a by %a, which never begins" Lsn.pp lsn Xid.pp xid)
    !updates;
  List.rev !errors

let run (env : Env.t) =
  env.Env.audit_runs <- env.Env.audit_runs + 1;
  match check env with
  | [] -> ()
  | vs ->
      env.Env.audit_failures <- env.Env.audit_failures + 1;
      raise (Audit_failed vs)
