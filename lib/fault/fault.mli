(** Deterministic, seeded fault injection for the storage and WAL stack.

    An injector is threaded into [Disk], [Log_store] and [Buffer_pool] and
    fires faults keyed on a global I/O operation counter, so a given seed
    and schedule reproduce the exact same failure history every run.

    Failure model (chosen to match what a synchronous WAL actually
    guarantees on real hardware):

    - A {e crash} ([Injected_crash]) can fire at any I/O site: data page
      read, data page write, log flush, or buffer pool miss. The caller is
      expected to simulate a power failure ([Db.crash]) and restart.
    - A {e torn data page write} persists only a prefix of the page's
      slots. It may fire on its own (lying disk / latent sector error,
      detected later by checksum) or together with a crash at that write.
    - A {e torn log flush} truncates or bit-flips the last record of the
      flush batch. It only ever fires {e together with} a crash at that
      flush: a synchronous flush that returns success implies intact data,
      so a torn log tail can only be observed after a power failure
      interrupted the write. (This also preserves the WAL ordering
      invariant: no data page ever reaches disk after a torn flush.) *)

type site = Disk_read | Disk_write | Log_flush | Pool_miss | Log_rewrite

val pp_site : Format.formatter -> site -> unit

exception Injected_crash of { io : int; site : site }
(** Raised by the hooks below when an armed crash point is reached. [io]
    is the value of the global I/O counter at the crash. *)

type crash_mode =
  | Raise  (** raise [Injected_crash]; the caller simulates the restart *)
  | Kill_process
      (** send SIGKILL to the calling process at the crash point — no
          unwinding, no cleanup. Only meaningful in a forked workload
          child supervised by an external storm; see
          {!Ariesrh_workload.Supervisor}. *)

type log_tear =
  | Truncate_tail of int  (** drop this many bytes from the last record *)
  | Flip_byte of int  (** XOR a bit into the byte at this offset *)

type write_decision = {
  torn_keep : int option;
      (** [Some k]: persist only the first [k] slots of the new page
          image (the rest keep their old contents) *)
  lost : bool;
      (** the device acknowledged the write but never applied it: the
          main image keeps its old (checksum-valid!) contents. The
          shadow copy still receives the new image — a lost write is a
          failure of one physical write, not of the doublewrite pair —
          which is exactly what makes it detectable by comparison. *)
  misdirect : int option;
      (** [Some r]: the new image landed on the wrong page. [r] is an
          offset in [0, pages-2]; the caller derives the victim as
          [(target + 1 + r) mod pages] so it is never the target
          itself. The victim's main image is overwritten with a
          checksum-valid image belonging to another page; the target's
          main image keeps its old contents. Shadows stay correct. *)
  crash : bool;
      (** raise [Injected_crash] {e after} the write is applied *)
}

type flush_decision = { tear : log_tear option; crash : bool }

type stats = {
  mutable ios : int;  (** total I/O operations observed *)
  mutable crashes : int;  (** injected crashes fired *)
  mutable torn_writes : int;  (** torn data page writes *)
  mutable torn_flushes : int;  (** torn log flush tails *)
  mutable squeezes : int;  (** log-capacity squeezes fired *)
  mutable bitrots : int;  (** silent at-rest corruptions injected *)
  mutable lost_writes : int;  (** lost data page writes injected *)
  mutable misdirected_writes : int;  (** misdirected page writes injected *)
}

type t

val none : unit -> t
(** An inert injector: never fires, never counts. The default everywhere. *)

val create : ?seed:int64 -> unit -> t
(** Live injector. [seed] (default 1) drives tear parameters (how many
    slots survive a torn write, where a log tail is cut or flipped). No
    faults fire until armed via the setters below. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Temporarily gate all sites (counters stop too); used by drivers while
    verifying state so checks themselves are fault-free. *)

val arm_crash_at : t -> int -> unit
(** Crash at the first I/O whose counter reaches this absolute value. *)

val arm_crash_in : t -> int -> unit
(** Crash [n] I/O operations from now ([n >= 1]). *)

val disarm_crash : t -> unit
val crash_armed : t -> bool

val set_crash_mode : t -> crash_mode -> unit
(** Default [Raise]. [Kill_process] makes every crash point a genuine
    process death. *)

val crash_mode : t -> crash_mode

val set_tear_data_every : t -> int -> unit
(** Tear every [n]-th data page write ([0] = never, the default). These
    fire without a crash: latent corruption detected by checksum. *)

val set_tear_data_on_crash : t -> bool -> unit
(** Also tear the data page write a crash lands on (default [false]). *)

val set_tear_log_on_crash : t -> bool -> unit
(** Tear the last record of the log flush a crash lands on (default
    [false]). *)

val arm_squeeze_in : t -> appends:int -> keep:float -> unit
(** Log-pressure fault: [appends] log appends from now, the log device
    "loses" capacity — the store multiplies its byte budget by [keep]
    (clamped to at least one record of headroom). Fires once per arming.
    Appends are counted on their own clock, not the I/O counter, so a
    squeeze composes with a crash schedule without shifting it. *)

val squeeze_armed : t -> bool

val arm_bitrot : t -> at:int -> unit
(** Silent at-rest corruption: at the first I/O whose counter reaches
    [at], the installed {!set_bitrot_hook} is invoked to rot a victim
    chosen by the owner. Repeated arming queues multiple firings. The
    hook runs with injection gated off, so applying the rot never
    perturbs the I/O-keyed crash schedule. *)

val arm_lost_write : t -> at:int -> unit
(** At the first {e data page write} whose I/O counter has reached [at],
    the write is acknowledged but the main image is never updated (see
    {!write_decision.lost}). Repeated arming queues multiple firings. *)

val arm_misdirected_write : t -> at:int -> unit
(** At the first data page write whose I/O counter has reached [at], the
    new image lands on a different page picked by the injector's PRNG
    (see {!write_decision.misdirect}). *)

val media_armed : t -> bool
(** Any bitrot / lost-write / misdirected-write arming still pending. *)

val set_bitrot_hook : t -> (unit -> unit) option -> unit
(** Install the corruption applicator called when an armed bitrot fires.
    The owning [Db] picks the victim bytes (page or WAL record, both
    backends) so schedules stay byte-identical across [Sim] and [File]. *)

val rng_int : t -> int -> int
(** Draw from the injector's PRNG (uniform in [0, bound)); used by the
    bitrot hook to pick victims deterministically from the fault seed. *)

val on_disk_read : t -> unit
(** May raise [Injected_crash]. *)

val on_pool_miss : t -> unit
(** May raise [Injected_crash]. *)

val on_log_rewrite : t -> unit
(** In-place rewrite of a {e durable} log record — a synchronous I/O on
    its own crash point. Called before the bytes are mutated, so a crash
    at this site leaves the target record untouched. May raise
    [Injected_crash]. *)

val on_disk_write : t -> slots:int -> pages:int -> write_decision
(** Never raises: the caller applies the (possibly torn) write first and
    then calls [die] if [crash] is set. *)

val on_log_flush : t -> last_len:int -> flush_decision
(** Never raises: the caller records the tear and then calls [die] if
    [crash] is set. *)

val on_log_append : t -> float option
(** Advance the append clock; [Some keep] when an armed squeeze fires at
    this append (the caller shrinks its capacity by the factor). Never
    raises and never counts as an I/O. *)

val die : t -> site -> 'a
(** Raise [Injected_crash] at the current counter value. *)

val stats : t -> stats
val fault_points : t -> int
(** Total faults fired so far: crashes + torn writes + torn flushes. *)

val set_tracer :
  t -> (Ariesrh_obs.Event.fault_kind -> string -> unit) option -> unit
(** Observability hook, called with (fault kind, site name) at every
    fault firing — crash points included, just before [Injected_crash]
    is raised or the crash decision is returned. [None] (the default)
    costs nothing on the hot path. *)

val register_metrics : t -> Ariesrh_obs.Metrics.t -> unit
(** Register the injector's counters with the metrics registry. *)
