module Prng = Ariesrh_util.Prng

type site = Disk_read | Disk_write | Log_flush | Pool_miss | Log_rewrite

let pp_site ppf = function
  | Disk_read -> Format.pp_print_string ppf "disk-read"
  | Disk_write -> Format.pp_print_string ppf "disk-write"
  | Log_flush -> Format.pp_print_string ppf "log-flush"
  | Pool_miss -> Format.pp_print_string ppf "pool-miss"
  | Log_rewrite -> Format.pp_print_string ppf "log-rewrite"

exception Injected_crash of { io : int; site : site }

type crash_mode = Raise | Kill_process

type log_tear = Truncate_tail of int | Flip_byte of int

type write_decision = {
  torn_keep : int option;
  lost : bool;
  misdirect : int option;
  crash : bool;
}

type flush_decision = { tear : log_tear option; crash : bool }

type stats = {
  mutable ios : int;
  mutable crashes : int;
  mutable torn_writes : int;
  mutable torn_flushes : int;
  mutable squeezes : int;
  mutable bitrots : int;
  mutable lost_writes : int;
  mutable misdirected_writes : int;
}

type t = {
  rng : Prng.t;
  mutable live : bool;  (* a [none] injector is permanently dead *)
  mutable enabled : bool;
  mutable crash_at : int;  (* absolute io count; -1 = disarmed *)
  mutable crash_mode : crash_mode;
  mutable tear_data_every : int;  (* 0 = never *)
  mutable tear_data_on_crash : bool;
  mutable tear_log_on_crash : bool;
  mutable writes : int;  (* data page writes observed *)
  mutable appends : int;  (* log appends observed (volatile, not I/O) *)
  mutable squeeze_at : int;  (* absolute append count; -1 = disarmed *)
  mutable squeeze_keep : float;
  mutable bitrot_at : int list;  (* absolute io counts, sorted ascending *)
  mutable lost_at : int list;  (* fire at next data write at/after count *)
  mutable misdirect_at : int list;
  mutable bitrot_hook : (unit -> unit) option;
      (* applies rot to a victim chosen by the owner; installed by [Db] *)
  stats : stats;
  mutable tracer : (Ariesrh_obs.Event.fault_kind -> string -> unit) option;
      (* observability hook: fires on every fault; [None] costs nothing *)
}

let make live seed =
  {
    rng = Prng.create seed;
    live;
    enabled = live;
    crash_at = -1;
    crash_mode = Raise;
    tear_data_every = 0;
    tear_data_on_crash = false;
    tear_log_on_crash = false;
    writes = 0;
    appends = 0;
    squeeze_at = -1;
    squeeze_keep = 1.0;
    bitrot_at = [];
    lost_at = [];
    misdirect_at = [];
    bitrot_hook = None;
    stats = { ios = 0; crashes = 0; torn_writes = 0; torn_flushes = 0;
              squeezes = 0; bitrots = 0; lost_writes = 0;
              misdirected_writes = 0 };
    tracer = None;
  }

let none () = make false 0L
let create ?(seed = 1L) () = make true seed
let enabled t = t.live && t.enabled
let set_enabled t b = if t.live then t.enabled <- b
let arm_crash_at t io = t.crash_at <- io
let arm_crash_in t n = t.crash_at <- t.stats.ios + max 1 n
let disarm_crash t = t.crash_at <- -1
let crash_armed t = t.crash_at >= 0
let set_crash_mode t m = t.crash_mode <- m
let crash_mode t = t.crash_mode
let set_tear_data_every t n = t.tear_data_every <- max 0 n
let set_tear_data_on_crash t b = t.tear_data_on_crash <- b
let set_tear_log_on_crash t b = t.tear_log_on_crash <- b

let arm_squeeze_in t ~appends ~keep =
  if t.live then begin
    t.squeeze_at <- t.appends + max 1 appends;
    t.squeeze_keep <- keep
  end

let squeeze_armed t = t.squeeze_at >= 0
let stats t = t.stats
let set_tracer t f = t.tracer <- f

let fire t kind site =
  match t.tracer with None -> () | Some f -> f kind site

(* --- silent media corruption --------------------------------------- *)

let arm_sorted l at = List.sort compare (at :: l)

let arm_bitrot t ~at = if t.live then t.bitrot_at <- arm_sorted t.bitrot_at at
let arm_lost_write t ~at = if t.live then t.lost_at <- arm_sorted t.lost_at at

let arm_misdirected_write t ~at =
  if t.live then t.misdirect_at <- arm_sorted t.misdirect_at at

let media_armed t =
  t.bitrot_at <> [] || t.lost_at <> [] || t.misdirect_at <> []

let set_bitrot_hook t f = t.bitrot_hook <- f
let rng_int t bound = if bound <= 1 then 0 else Prng.int t.rng bound

(* A bitrot arm fires at the first I/O whose counter reaches it: the rot
   happened at rest, the I/O clock merely timestamps when. The hook (the
   owning [Db]) picks the victim bytes; injection is gated off around the
   call so applying the rot never perturbs the I/O schedule itself. *)
let check_bitrot t =
  match t.bitrot_at with
  | at :: rest when t.stats.ios >= at -> (
      t.bitrot_at <- rest;
      t.stats.bitrots <- t.stats.bitrots + 1;
      fire t Ariesrh_obs.Event.Bitrot "at-rest";
      match t.bitrot_hook with
      | None -> ()
      | Some h ->
          let was = t.enabled in
          t.enabled <- false;
          Fun.protect ~finally:(fun () -> t.enabled <- was) h)
  | _ -> ()

let register_metrics t m =
  let module M = Ariesrh_obs.Metrics in
  let s = t.stats in
  M.counter m ~help:"I/O operations observed" "ariesrh_fault_ios_total"
    (fun () -> s.ios);
  M.counter m ~help:"injected crashes fired" "ariesrh_fault_crashes_total"
    (fun () -> s.crashes);
  M.counter m ~help:"torn data page writes"
    "ariesrh_fault_torn_writes_total" (fun () -> s.torn_writes);
  M.counter m ~help:"torn log flush tails"
    "ariesrh_fault_torn_flushes_total" (fun () -> s.torn_flushes);
  M.counter m ~help:"log-capacity squeezes fired"
    "ariesrh_fault_squeezes_total" (fun () -> s.squeezes);
  M.counter m ~help:"silent bitrot corruptions injected"
    "ariesrh_fault_bitrots_total" (fun () -> s.bitrots);
  M.counter m ~help:"lost data page writes injected"
    "ariesrh_fault_lost_writes_total" (fun () -> s.lost_writes);
  M.counter m ~help:"misdirected data page writes injected"
    "ariesrh_fault_misdirected_writes_total" (fun () ->
      s.misdirected_writes)

let fault_points t =
  t.stats.crashes + t.stats.torn_writes + t.stats.torn_flushes
  + t.stats.squeezes + t.stats.bitrots + t.stats.lost_writes
  + t.stats.misdirected_writes

(* Advance the I/O counter and consume the armed crash point if reached.
   Returns whether a crash fires at this operation. *)
let tick t =
  t.stats.ios <- t.stats.ios + 1;
  check_bitrot t;
  if t.crash_at >= 0 && t.stats.ios >= t.crash_at then begin
    t.crash_at <- -1;
    t.stats.crashes <- t.stats.crashes + 1;
    true
  end
  else false

let die t site =
  match t.crash_mode with
  | Raise -> raise (Injected_crash { io = t.stats.ios; site })
  | Kill_process ->
      (* a real crash: the process dies mid-operation with no unwinding,
         no cleanup, no flush — exactly what a kill -9 storm needs *)
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      (* unreachable, but keeps [die : t -> site -> 'a] total *)
      raise (Injected_crash { io = t.stats.ios; site })

let on_disk_read t =
  if enabled t then
    if tick t then begin
      fire t Ariesrh_obs.Event.Crash_point "disk-read";
      die t Disk_read
    end

let on_pool_miss t =
  if enabled t then
    if tick t then begin
      fire t Ariesrh_obs.Event.Crash_point "pool-miss";
      die t Pool_miss
    end

(* An in-place rewrite of a durable log record is a synchronous I/O.
   Called BEFORE the bytes are mutated, so a crash here leaves the target
   record exactly as it was. *)
let on_log_rewrite t =
  if enabled t then
    if tick t then begin
      fire t Ariesrh_obs.Event.Crash_point "log-rewrite";
      die t Log_rewrite
    end

let no_write = { torn_keep = None; lost = false; misdirect = None;
                 crash = false }

let on_disk_write t ~slots ~pages =
  if not (enabled t) then no_write
  else begin
    let crash = tick t in
    t.writes <- t.writes + 1;
    let tear =
      (t.tear_data_every > 0 && t.writes mod t.tear_data_every = 0)
      || (crash && t.tear_data_on_crash)
    in
    let torn_keep =
      if tear && slots > 0 then begin
        t.stats.torn_writes <- t.stats.torn_writes + 1;
        fire t Ariesrh_obs.Event.Torn_write "disk-write";
        Some (Prng.int t.rng slots)
      end
      else None
    in
    (* a lost / misdirected write fires at the first data page write whose
       I/O counter has reached the armed point: the schedule is keyed on
       the shared clock but only a write can lose or misdirect itself *)
    let lost =
      match t.lost_at with
      | at :: rest when t.stats.ios >= at ->
          t.lost_at <- rest;
          t.stats.lost_writes <- t.stats.lost_writes + 1;
          fire t Ariesrh_obs.Event.Lost_write "disk-write";
          true
      | _ -> false
    in
    let misdirect =
      match t.misdirect_at with
      | at :: rest when t.stats.ios >= at && pages > 1 ->
          t.misdirect_at <- rest;
          t.stats.misdirected_writes <- t.stats.misdirected_writes + 1;
          fire t Ariesrh_obs.Event.Misdirected_write "disk-write";
          (* offset in [0, pages-2]; the caller maps it off the true
             target so the victim is always a different page *)
          Some (Prng.int t.rng (pages - 1))
      | _ -> None
    in
    if crash then fire t Ariesrh_obs.Event.Crash_point "disk-write";
    { torn_keep; lost; misdirect; crash }
  end

(* Log appends are volatile memory writes, not I/O: they advance their
   own counter so a log-pressure squeeze never perturbs the I/O-keyed
   crash schedule of an existing storm. *)
let on_log_append t =
  if not (enabled t) then None
  else begin
    t.appends <- t.appends + 1;
    if t.squeeze_at >= 0 && t.appends >= t.squeeze_at then begin
      t.squeeze_at <- -1;
      t.stats.squeezes <- t.stats.squeezes + 1;
      fire t Ariesrh_obs.Event.Squeeze "log-append";
      Some t.squeeze_keep
    end
    else None
  end

let no_flush = { tear = None; crash = false }

let on_log_flush t ~last_len =
  if not (enabled t) then no_flush
  else begin
    let crash = tick t in
    let tear =
      if crash && t.tear_log_on_crash && last_len > 0 then begin
        t.stats.torn_flushes <- t.stats.torn_flushes + 1;
        fire t Ariesrh_obs.Event.Torn_flush "log-flush";
        if Prng.bool t.rng then
          (* keep at least 0 and at most last_len - 1 bytes *)
          Some (Truncate_tail (1 + Prng.int t.rng last_len))
        else Some (Flip_byte (Prng.int t.rng last_len))
      end
      else None
    in
    if crash then fire t Ariesrh_obs.Event.Crash_point "log-flush";
    { tear; crash }
  end
