(* Engine-level scenarios: normal processing, crash, recovery, and the
   delegation semantics of §2.1.2 exercised through the public API. *)

open Ariesrh_types
open Ariesrh_core

let oid = Oid.of_int

let mk ?(impl = Config.Rh) ?(locking = true) () =
  Db.create (Config.make ~n_objects:64 ~objects_per_page:4 ~buffer_capacity:8
               ~impl ~locking ())

let check_val db o expected msg = Alcotest.(check int) msg expected (Db.peek db (oid o))

let commit_survives_crash impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 42;
  Db.add db t1 (oid 1) 7;
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 42 "committed set survives";
  check_val db 1 7 "committed add survives"

let uncommitted_rolls_back impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 42;
  let t2 = Db.begin_txn db in
  Db.write db t2 (oid 2) 9;
  Db.commit db t1;
  Db.crash db;
  let report = Db.recover db in
  check_val db 0 42 "winner survives";
  check_val db 2 0 "loser rolled back";
  Alcotest.(check int) "one winner" 1 (Xid.Set.cardinal report.winners);
  Alcotest.(check int) "one loser" 1 (Xid.Set.cardinal report.losers)

let abort_undoes impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 5;
  Db.add db t1 (oid 1) 3;
  Db.abort db t1;
  check_val db 0 0 "set undone";
  check_val db 1 0 "add undone"

(* t0 updates, delegates to t1, t0 aborts; t1 commits: update survives *)
let delegated_survives_delegator_abort impl () =
  let db = mk ~impl () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.write db t0 (oid 0) 11;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.abort db t0;
  check_val db 0 11 "delegator abort leaves delegated update";
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 11 "delegatee commit makes it permanent"

(* ... and symmetrically: delegatee aborts, delegator commits: undone *)
let delegated_dies_with_delegatee impl () =
  let db = mk ~impl () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.write db t0 (oid 0) 11;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.commit db t0;
  check_val db 0 11 "still visible before delegatee aborts";
  Db.abort db t1;
  check_val db 0 0 "delegatee abort undoes delegated update"

(* Example 2 of the paper: two delegations of the same object by the
   same transaction; fates diverge *)
let example2 impl () =
  let db = mk ~impl () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t (oid 0) 100;
  Db.delegate db ~from_:t ~to_:t1 (oid 0);
  Db.add db t (oid 0) 10;
  Db.delegate db ~from_:t ~to_:t2 (oid 0);
  Alcotest.(check int) "both adds applied" 110 (Db.peek db (oid 0));
  Db.abort db t2;
  Alcotest.(check int) "second add undone" 100 (Db.peek db (oid 0));
  Db.commit db t1;
  Db.abort db t;
  Alcotest.(check int) "first add survives regardless of t" 100
    (Db.peek db (oid 0));
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 100 "after recovery"

(* crash instead of orderly terminations: t1 committed, t2 and t loser *)
let example2_crash impl () =
  let db = mk ~impl () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t (oid 0) 100;
  Db.delegate db ~from_:t ~to_:t1 (oid 0);
  Db.add db t (oid 0) 10;
  Db.delegate db ~from_:t ~to_:t2 (oid 0);
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 100 "winner's delegated add redone, loser's undone"

let delegation_chain impl () =
  let db = mk ~impl () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.write db t0 (oid 3) 33;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 3);
  Db.delegate db ~from_:t1 ~to_:t2 (oid 3);
  Db.abort db t0;
  Db.abort db t1;
  check_val db 3 33 "chain: survives both earlier aborts";
  Db.commit db t2;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 3 33 "chain: final delegatee decides"

let not_responsible impl () =
  let db = mk ~impl () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Alcotest.check_raises "cannot delegate an object never updated"
    (Errors.Not_responsible { xid = t0; oid = oid 0 }) (fun () ->
      Db.delegate db ~from_:t0 ~to_:t1 (oid 0));
  Db.write db t0 (oid 0) 1;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Alcotest.check_raises "responsibility is gone after delegating"
    (Errors.Not_responsible { xid = t0; oid = oid 0 }) (fun () ->
      Db.delegate db ~from_:t0 ~to_:t1 (oid 0))

let update_after_delegation impl () =
  let db = mk ~impl () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  (* increment locks commute, so t0 can update the object again even
     though its earlier update now belongs to t1 (§2.1.2) *)
  Db.add db t0 (oid 0) 2;
  Db.abort db t0;
  Alcotest.(check int) "only t0's new add undone" 5 (Db.peek db (oid 0));
  Db.commit db t1;
  Alcotest.(check int) "delegated add committed" 5 (Db.peek db (oid 0))

let checkpoint_recovery impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  Db.commit db t1;
  let t2 = Db.begin_txn db in
  Db.write db t2 (oid 1) 2;
  Db.checkpoint db;
  let t3 = Db.begin_txn db in
  Db.write db t3 (oid 2) 3;
  Db.commit db t3;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 1 "pre-checkpoint winner survives";
  check_val db 1 0 "checkpoint-spanning loser undone";
  check_val db 2 3 "post-checkpoint winner survives"

let checkpoint_with_delegation () =
  let db = mk ~impl:Config.Rh () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.write db t0 (oid 0) 7;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.checkpoint db;
  (* the scope travels through the checkpoint; t1 is the loser *)
  Db.commit db t0;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 0 "delegated-to-loser update undone via checkpointed scope"

let double_crash_idempotent impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 0) 10;
  let t2 = Db.begin_txn db in
  Db.add db t2 (oid 0) 100;
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 10 "first recovery";
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 10 "second recovery is a no-op"

let lock_conflict () =
  let db = mk () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  (try
     Db.write db t2 (oid 0) 2;
     Alcotest.fail "expected a lock conflict"
   with Errors.Conflict { holders; _ } ->
     Alcotest.(check (list int)) "t1 blocks" [ Xid.to_int t1 ]
       (List.map Xid.to_int holders));
  Db.commit db t1;
  Db.write db t2 (oid 0) 2;
  Db.commit db t2;
  check_val db 0 2 "eventually both wrote"

let permit_allows_sharing () =
  let db = mk () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  Db.permit db ~holder:t1 ~grantee:t2;
  Db.write db t2 (oid 0) 2;
  Db.commit db t1;
  Db.commit db t2;
  check_val db 0 2 "permit let t2 through"

let lock_transferred_on_delegate () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.write db t0 (oid 0) 1;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  (* t0 lost its lock with the delegation; now t0 is the one blocked *)
  (try
     Db.write db t0 (oid 0) 5;
     Alcotest.fail "expected t0 to be blocked by the delegatee"
   with Errors.Conflict { holders; _ } ->
     Alcotest.(check (list int)) "t1 holds" [ Xid.to_int t1 ]
       (List.map Xid.to_int holders));
  Db.commit db t1;
  check_val db 0 1 "delegated write committed by delegatee"

let savepoint_basic impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  let sp = Db.savepoint db t1 in
  Db.write db t1 (oid 1) 2;
  Db.add db t1 (oid 2) 3;
  Db.rollback_to db t1 sp;
  check_val db 0 1 "pre-savepoint survives";
  check_val db 1 0 "post-savepoint set undone";
  check_val db 2 0 "post-savepoint add undone";
  Db.write db t1 (oid 1) 9;
  Db.commit db t1;
  check_val db 0 1 "committed pre-savepoint";
  check_val db 1 9 "work after partial rollback committed"

let savepoint_survives_crash impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 0) 5;
  let sp = Db.savepoint db t1 in
  Db.add db t1 (oid 0) 50;
  Db.rollback_to db t1 sp;
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 5 "partial rollback is durable (CLRs redone)"

let savepoint_then_loser impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 0) 5;
  let sp = Db.savepoint db t1 in
  Db.add db t1 (oid 0) 50;
  Db.rollback_to db t1 sp;
  (* crash with t1 still active: everything goes, with no double undo of
     the already-compensated suffix *)
  Ariesrh_wal.Log_store.flush (Db.log_store db)
    ~upto:(Ariesrh_wal.Log_store.head (Db.log_store db));
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 0 "full rollback after partial rollback"

let savepoint_spares_delegated_in impl () =
  let db = mk ~impl () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 7;
  Db.add db t1 (oid 1) 1;
  let sp = Db.savepoint db t1 in
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.add db t1 (oid 2) 2;
  (* the delegated-in update predates the savepoint: partial rollback
     only undoes t1's own post-savepoint work *)
  Db.rollback_to db t1 sp;
  check_val db 0 7 "older delegated-in update spared";
  check_val db 2 0 "own post-savepoint work undone";
  Db.commit db t1;
  check_val db 0 7 "delegated update committed by delegatee"

let nested_savepoints impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.add db t1 (oid 0) 1;
  let sp1 = Db.savepoint db t1 in
  Db.add db t1 (oid 1) 2;
  let sp2 = Db.savepoint db t1 in
  Db.add db t1 (oid 2) 3;
  Db.rollback_to db t1 sp2;
  check_val db 2 0 "inner rollback";
  check_val db 1 2 "middle survives inner rollback";
  Db.rollback_to db t1 sp1;
  check_val db 1 0 "outer rollback";
  check_val db 0 1 "first update survives";
  Db.abort db t1;
  check_val db 0 0 "abort finishes the job"

(* --- operation-granularity delegation (§2.1.2's general model) --- *)

let op_delegation_splits_responsibility () =
  let db = mk ~impl:Config.Rh () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t (oid 0) 100;
  let first_add = Db.last_lsn_of db t in
  Db.add db t (oid 0) 10;
  (* delegate only the first add; the second stays with t *)
  Db.delegate_update db ~from_:t ~to_:t1 (oid 0) first_add;
  Db.abort db t;
  Alcotest.(check int) "only t's retained update undone" 100
    (Db.peek db (oid 0));
  Db.commit db t1;
  Alcotest.(check int) "delegated single op committed" 100 (Db.peek db (oid 0))

let op_delegation_middle_of_scope () =
  let db = mk ~impl:Config.Rh () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t (oid 0) 1;
  Db.add db t (oid 0) 10;
  let middle = Db.last_lsn_of db t in
  Db.add db t (oid 0) 100;
  Db.delegate_update db ~from_:t ~to_:t1 (oid 0) middle;
  (* the scope was split: t keeps the 1 and the 100 *)
  Db.abort db t;
  Alcotest.(check int) "prefix and suffix undone" 10 (Db.peek db (oid 0));
  Db.commit db t1

let op_delegation_survives_crash () =
  let db = mk ~impl:Config.Rh () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t (oid 0) 100;
  let l = Db.last_lsn_of db t in
  Db.add db t (oid 0) 10;
  Db.delegate_update db ~from_:t ~to_:t1 (oid 0) l;
  Db.commit db t1;
  Db.crash db;
  ignore (Db.recover db);
  Alcotest.(check int) "split replayed from the log" 100 (Db.peek db (oid 0))

let op_delegation_preconditions () =
  let db = mk ~impl:Config.Rh () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t (oid 0) 1;
  let l = Db.last_lsn_of db t in
  Alcotest.check_raises "operation not covered"
    (Errors.Not_responsible { xid = t1; oid = oid 0 }) (fun () ->
      Db.delegate_update db ~from_:t1 ~to_:t (oid 0) l);
  let db2 = mk ~impl:Config.Eager () in
  let u = Db.begin_txn db2 in
  let u1 = Db.begin_txn db2 in
  Db.add db2 u (oid 0) 1;
  let l2 = Db.last_lsn_of db2 u in
  match Db.delegate_update db2 ~from_:u ~to_:u1 (oid 0) l2 with
  | () -> Alcotest.fail "eager should not support operation granularity"
  | exception Errors.Unsupported_by_engine { impl = "eager"; _ } -> ()

let op_delegation_keeps_isolation () =
  let db = mk ~impl:Config.Rh () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  let l = Db.last_lsn_of db t0 in
  Db.delegate_update db ~from_:t0 ~to_:t1 (oid 0) l;
  (* the delegator resolves, but the delegated update is uncommitted:
     the delegatee's own increment lock must keep writers out *)
  Db.commit db t0;
  let t2 = Db.begin_txn db in
  (try
     Db.write db t2 (oid 0) 100;
     Alcotest.fail "a Set slipped past an uncommitted delegated update"
   with Errors.Conflict { holders; _ } ->
     Alcotest.(check (list int)) "the delegatee blocks" [ Xid.to_int t1 ]
       (List.map Xid.to_int holders));
  Db.abort db t1;
  Db.write db t2 (oid 0) 100;
  Db.commit db t2;
  check_val db 0 100 "clean final state"

let op_delegation_requires_commuting () =
  let db = mk ~impl:Config.Rh () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.write db t0 (oid 0) 5;
  let l = Db.last_lsn_of db t0 in
  match Db.delegate_update db ~from_:t0 ~to_:t1 (oid 0) l with
  | () -> Alcotest.fail "a Set (X-locked) must not be op-delegable"
  | exception Invalid_argument _ ->
      (* the whole-object path still works *)
      Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
      Db.commit db t1;
      check_val db 0 5 "set delegated whole and committed"

let op_delegation_open_scope_continues () =
  let db = mk ~impl:Config.Rh () in
  let t = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t (oid 0) 1;
  let l = Db.last_lsn_of db t in
  Db.delegate_update db ~from_:t ~to_:t1 (oid 0) l;
  (* t keeps updating: the suffix (empty here) means a fresh scope *)
  Db.add db t (oid 0) 10;
  Db.commit db t;
  Db.abort db t1;
  Alcotest.(check int) "t's later add committed, delegated one undone" 10
    (Db.peek db (oid 0))

let truncation_basic () =
  let db = mk () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  Db.commit db t1;
  Alcotest.(check int) "nothing reclaimable before a checkpoint" 0
    (Db.truncate_log db);
  Db.shutdown db;
  (* pages flushed: only the master record limits reclamation *)
  Db.checkpoint db;
  let reclaimed = Db.truncate_log db in
  Alcotest.(check bool) "committed prefix reclaimed" true (reclaimed >= 4);
  (* the engine still works, and restarts from the checkpoint *)
  let t2 = Db.begin_txn db in
  Db.write db t2 (oid 1) 2;
  Db.commit db t2;
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 1 "old committed data intact";
  check_val db 1 2 "new data recovered"

let truncation_pinned_by_delegation () =
  let db = mk () in
  (* a worker updates and delegates to a long-lived collector, then
     commits: the update's fate now hangs on the collector, so the log
     record must survive even though its writer committed *)
  let collector = Db.begin_txn db in
  let worker = Db.begin_txn db in
  Db.add db worker (oid 0) 5;
  let update_lsn = Db.last_lsn_of db worker in
  Db.delegate db ~from_:worker ~to_:collector (oid 0);
  Db.commit db worker;
  Db.checkpoint db;
  let horizon = Db.truncation_horizon db in
  Alcotest.(check bool) "horizon pinned at or before the delegated update"
    true
    Lsn.(horizon <= update_lsn);
  ignore (Db.truncate_log db);
  (* the pinned record is still readable, and aborting the collector
     still undoes it *)
  Db.abort db collector;
  check_val db 0 0 "delegated update undone after truncation";
  (* with the collector gone the log can advance *)
  Db.shutdown db;
  Db.checkpoint db;
  let horizon' = Db.truncation_horizon db in
  Alcotest.(check bool) "horizon advances once the delegatee ends" true
    Lsn.(horizon' > horizon)

let truncation_respects_dirty_pages () =
  let db =
    Db.create
      (Config.make ~n_objects:64 ~objects_per_page:4 ~buffer_capacity:64 ())
  in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  let rec_lsn = Db.last_lsn_of db t1 in
  Db.commit db t1;
  Db.checkpoint db;
  (* the page is still dirty (big pool, never evicted): its recLSN pins *)
  let horizon = Db.truncation_horizon db in
  Alcotest.(check bool) "dirty page pins the horizon" true
    Lsn.(horizon <= rec_lsn)

let dpt_bounds_redo_page_fetches () =
  (* lots of committed, flushed, checkpointed history: restart must not
     re-read those data pages (the DPT tells it they were clean) *)
  let db =
    Db.create
      (Config.make ~n_objects:256 ~objects_per_page:8 ~buffer_capacity:64 ())
  in
  for i = 0 to 199 do
    let t = Db.begin_txn db in
    Db.write db t (oid (i mod 64)) i;
    Db.commit db t
  done;
  Db.shutdown db;
  Db.checkpoint db;
  let t = Db.begin_txn db in
  Db.write db t (oid 0) 999;
  Db.commit db t;
  Db.crash db;
  let before = (Db.disk_stats db).page_reads in
  ignore (Db.recover db);
  let reads = (Db.disk_stats db).page_reads - before in
  Alcotest.(check bool)
    (Printf.sprintf "recovery read %d data pages (expected < 5)" reads)
    true (reads < 5);
  check_val db 0 999 "state correct nonetheless"

let crash_during_checkpoint () =
  let db = mk () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 7;
  Db.commit db t1;
  Db.checkpoint db;
  let t2 = Db.begin_txn db in
  Db.write db t2 (oid 1) 8;
  Db.commit db t2;
  (* a checkpoint starts but the machine dies before its end record is
     durable: the master still names the previous, complete checkpoint *)
  let log = Db.log_store db in
  ignore
    (Ariesrh_wal.Log_store.append log
       (Ariesrh_wal.Record.mk_system Ariesrh_wal.Record.Ckpt_begin));
  Ariesrh_wal.Log_store.flush log ~upto:(Ariesrh_wal.Log_store.head log);
  Db.crash db;
  ignore (Db.recover db);
  check_val db 0 7 "pre-checkpoint winner";
  check_val db 1 8 "post-checkpoint winner"

(* --- media recovery --- *)

let media_recovery_basic impl () =
  let db = mk ~impl () in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 11;
  Db.commit db t1;
  let b = Db.backup db in
  let t2 = Db.begin_txn db in
  Db.write db t2 (oid 1) 22;
  Db.commit db t2;
  let t3 = Db.begin_txn db in
  Db.write db t3 (oid 2) 33;
  (* t3 in flight when the disk dies *)
  Db.media_failure db;
  check_val db 0 0 "disk really gone";
  ignore (Db.restore_media db b);
  check_val db 0 11 "pre-backup work restored from the archive";
  check_val db 1 22 "post-backup work rolled forward from the log";
  check_val db 2 0 "in-flight transaction rolled back"

let media_recovery_with_delegation () =
  let db = mk ~impl:Config.Rh () in
  let b = Db.backup db in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.add db t0 (oid 0) 100;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.add db t0 (oid 0) 10;
  Db.delegate db ~from_:t0 ~to_:t2 (oid 0);
  Db.commit db t1;
  Db.media_failure db;
  ignore (Db.restore_media db b);
  check_val db 0 100 "delegation semantics hold through media recovery"

let media_recovery_rejects_truncated_log () =
  let db = mk () in
  let b = Db.backup db in
  let t1 = Db.begin_txn db in
  Db.write db t1 (oid 0) 1;
  Db.commit db t1;
  Db.shutdown db;
  Db.checkpoint db;
  (* the backup pinned the log at its replay point; the typed-error path
     needs the operator to have discarded that protection first *)
  Db.release_backup_pin db;
  ignore (Db.truncate_log db);
  Db.media_failure db;
  match Db.restore_media db b with
  | _ -> Alcotest.fail "restore from a pre-truncation backup must fail"
  | exception Errors.Log_truncated_past_backup _ -> ()

let for_impls name f =
  [
    Alcotest.test_case (name ^ " (rh)") `Quick (f Config.Rh);
    Alcotest.test_case (name ^ " (eager)") `Quick (f Config.Eager);
    Alcotest.test_case (name ^ " (lazy)") `Quick (f Config.Lazy);
  ]

let suite =
  List.concat
    [
      for_impls "commit survives crash" commit_survives_crash;
      for_impls "uncommitted rolls back" uncommitted_rolls_back;
      for_impls "abort undoes" abort_undoes;
      for_impls "delegated survives delegator abort"
        delegated_survives_delegator_abort;
      for_impls "delegated dies with delegatee" delegated_dies_with_delegatee;
      for_impls "example 2" example2;
      for_impls "example 2 with crash" example2_crash;
      for_impls "delegation chain" delegation_chain;
      for_impls "not responsible" not_responsible;
      for_impls "update after delegation" update_after_delegation;
      for_impls "checkpoint recovery" checkpoint_recovery;
      for_impls "double crash idempotent" double_crash_idempotent;
      for_impls "savepoint basic" savepoint_basic;
      for_impls "savepoint survives crash" savepoint_survives_crash;
      for_impls "savepoint then loser" savepoint_then_loser;
      for_impls "savepoint spares delegated-in" savepoint_spares_delegated_in;
      for_impls "nested savepoints" nested_savepoints;
      for_impls "media recovery basic" media_recovery_basic;
      [
        Alcotest.test_case "checkpoint with delegation" `Quick
          checkpoint_with_delegation;
        Alcotest.test_case "lock conflict" `Quick lock_conflict;
        Alcotest.test_case "permit allows sharing" `Quick permit_allows_sharing;
        Alcotest.test_case "lock transferred on delegate" `Quick
          lock_transferred_on_delegate;
        Alcotest.test_case "op delegation splits responsibility" `Quick
          op_delegation_splits_responsibility;
        Alcotest.test_case "op delegation mid-scope" `Quick
          op_delegation_middle_of_scope;
        Alcotest.test_case "op delegation survives crash" `Quick
          op_delegation_survives_crash;
        Alcotest.test_case "op delegation preconditions" `Quick
          op_delegation_preconditions;
        Alcotest.test_case "op delegation then open scope continues" `Quick
          op_delegation_open_scope_continues;
        Alcotest.test_case "op delegation keeps isolation" `Quick
          op_delegation_keeps_isolation;
        Alcotest.test_case "op delegation requires commuting updates" `Quick
          op_delegation_requires_commuting;
        Alcotest.test_case "truncation basic" `Quick truncation_basic;
        Alcotest.test_case "truncation pinned by delegation" `Quick
          truncation_pinned_by_delegation;
        Alcotest.test_case "truncation respects dirty pages" `Quick
          truncation_respects_dirty_pages;
        Alcotest.test_case "DPT bounds redo page fetches" `Quick
          dpt_bounds_redo_page_fetches;
        Alcotest.test_case "crash during checkpoint" `Quick
          crash_during_checkpoint;
        Alcotest.test_case "media recovery with delegation" `Quick
          media_recovery_with_delegation;
        Alcotest.test_case "media recovery rejects truncated log" `Quick
          media_recovery_rejects_truncated_log;
      ];
    ]
