(* The file backend: WAL and page files survive reopen, torn tails are
   amputated identically to the simulated devices, and the two backends
   are semantically indistinguishable — same states, same logical record
   sequences, byte-identical forensic dumps — under the same seed. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_workload
module Backend = Ariesrh_storage.Backend
module Page = Ariesrh_storage.Page
module Page_device = Ariesrh_storage.Page_device
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Fault = Ariesrh_fault.Fault

let xid = Xid.of_int
let oid = Oid.of_int
let lsn = Lsn.of_int

(* Every test gets a private scratch directory; no cleanup between
   assertions so a failure leaves the files behind for inspection. *)
let scratch = ref 0

let fresh_dir tag =
  incr scratch;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ariesrh-test-%d-%s-%d" (Unix.getpid ()) tag !scratch)
  in
  Backend.remove_tree d;
  d

let file_backend tag = Backend.File { dir = fresh_dir tag }

(* Backends to parameterize sibling suites over: a fresh file backend
   per call, or the sim backend. *)
let backends : (string * (string -> Backend.t)) list =
  [ ("sim", fun _ -> Backend.Sim); ("file", file_backend) ]

let append_updates log n =
  for i = 1 to n do
    ignore
      (Log_store.append log
         (Record.mk (xid i) ~prev:Lsn.nil
            (Record.Update
               { oid = oid i; page = Page_id.of_int 0; op = Record.Add i })))
  done

let record_strings log =
  let out = ref [] in
  Log_store.iter_forward log ~from:(Log_store.truncated_below log)
    (fun l r ->
      out := Format.asprintf "%d %a" (Lsn.to_int l) Record.pp r :: !out);
  List.rev !out

(* --- WAL file roundtrip -------------------------------------------- *)

let wal_reopen_roundtrip () =
  let dir = fresh_dir "walrt" in
  let backend = Backend.File { dir } in
  let log = Log_store.create ~backend () in
  append_updates log 10;
  Log_store.flush log ~upto:(lsn 10);
  Log_store.set_master log (lsn 6);
  Alcotest.(check int) "reclaim below 3" 2
    (Log_store.truncate log ~below:(lsn 3));
  let before = record_strings log in
  Log_store.close log;
  let re = Log_store.create ~backend () in
  Alcotest.(check int) "durable survives reopen" 10
    (Lsn.to_int (Log_store.durable re));
  Alcotest.(check int) "master survives reopen" 6
    (Lsn.to_int (Log_store.master re));
  Alcotest.(check int) "truncation point survives reopen" 3
    (Lsn.to_int (Log_store.truncated_below re));
  Alcotest.(check (list string)) "records identical after reopen" before
    (record_strings re);
  Alcotest.(check bool) "clean scan" true
    (Log_store.iter_valid_forward re ~from:(Log_store.truncated_below re)
       (fun _ _ -> ())
    = None);
  Alcotest.(check bool) "nothing to amputate" true
    (Log_store.recover_tail re = [])

(* Small segments force rollover and whole-segment unlink on truncate. *)
let wal_segment_rollover () =
  let dir = fresh_dir "walseg" in
  let backend = Backend.File { dir } in
  let log = Log_store.create ~backend () in
  (* records are ~50 bytes; the default segment is 64KiB, so grow past
     several segment boundaries via many records *)
  for i = 1 to 2000 do
    ignore
      (Log_store.append log
         (Record.mk
            (xid (1 + (i mod 7)))
            ~prev:Lsn.nil
            (Record.Update
               {
                 oid = oid (i mod 64);
                 page = Page_id.of_int 0;
                 op = Record.Add i;
               })))
  done;
  Log_store.flush log ~upto:(lsn 2000);
  let segs dir =
    List.length
      (List.filter
         (fun f -> Filename.check_suffix f ".wal")
         (Array.to_list (Sys.readdir dir)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "several segments on disk (%d)" (segs dir))
    true (segs dir > 1);
  Log_store.set_master log (lsn 1999);
  ignore (Log_store.truncate log ~below:(lsn 1500));
  Log_store.close log;
  let re = Log_store.create ~backend () in
  Alcotest.(check int) "durable after rollover reopen" 2000
    (Lsn.to_int (Log_store.durable re));
  Alcotest.(check int) "low after rollover reopen" 1500
    (Lsn.to_int (Log_store.truncated_below re));
  Alcotest.(check bool) "clean scan after rollover" true
    (Log_store.iter_valid_forward re ~from:(Log_store.truncated_below re)
       (fun _ _ -> ())
    = None)

(* --- torn tail across a process boundary --------------------------- *)

let wal_torn_tail_reopen () =
  let dir = fresh_dir "waltorn" in
  let backend = Backend.File { dir } in
  let fault = Fault.create ~seed:3L () in
  let log = Log_store.create ~fault ~backend () in
  append_updates log 3;
  Log_store.flush log ~upto:(lsn 3);
  append_updates log 1;
  Fault.set_tear_log_on_crash fault true;
  Fault.arm_crash_in fault 1;
  (try
     Log_store.flush log ~upto:(lsn 4);
     Alcotest.fail "armed flush did not crash"
   with Fault.Injected_crash _ -> ());
  (* abandon the handle without crash/close: the dead process's view.
     The torn frame is already in the file — a torn flush is a power
     failure mid-write. *)
  let re1 = Log_store.create ~backend () in
  Alcotest.(check int) "torn record loaded verbatim" 4
    (Lsn.to_int (Log_store.durable re1));
  (match Log_store.read_result re1 (lsn 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn frame decoded after reopen");
  Alcotest.(check int) "reopen amputates the torn tail" 1
    (List.length (Log_store.recover_tail re1));
  Alcotest.(check int) "durable after amputation" 3
    (Lsn.to_int (Log_store.durable re1));
  (* the amputation wasn't persisted (nothing flushed since): another
     cold reopen must re-amputate identically *)
  let re2 = Log_store.create ~backend () in
  Alcotest.(check int) "re-amputation is idempotent" 1
    (List.length (Log_store.recover_tail re2));
  (* reusing the freed LSN truncates the dead bytes for real *)
  append_updates re2 1;
  Log_store.flush re2 ~upto:(lsn 4);
  Log_store.close re2;
  let re3 = Log_store.create ~backend () in
  Alcotest.(check bool) "healed tail scans clean" true
    (Log_store.iter_valid_forward re3 ~from:Lsn.first (fun _ _ -> ())
    = None);
  Alcotest.(check bool) "no further amputation" true
    (Log_store.recover_tail re3 = [])

(* --- page file: doublewrite discipline over a real torn write ------ *)

let page_file_torn_write () =
  let dir = fresh_dir "pagetorn" in
  let dev = Page_device.create ~dir ~pages:2 ~slots_per_page:2 in
  let p = Page.create ~slots:2 in
  Page.set p 0 7;
  Page.set p 1 7;
  Page.set_page_lsn p (lsn 5);
  Page.seal p;
  Page_device.write_main dev 0 p;
  Page_device.write_shadow dev 0 p;
  Page_device.sync dev;
  (* a genuinely partial write of the next image: slot 0 reaches the
     platter, slot 1 keeps the old bytes, checksum is the new image's *)
  let q = Page.create ~slots:2 in
  Page.set q 0 9;
  Page.set q 1 9;
  Page.set_page_lsn q (lsn 8);
  Page.seal q;
  Page_device.write_main_torn dev 0 q ~keep:1;
  Page_device.close dev;
  let dev2 = Page_device.create ~dir ~pages:2 ~slots_per_page:2 in
  (match Page_device.load dev2 with
  | None -> Alcotest.fail "file device must load"
  | Some (main, shadow) ->
      Alcotest.(check bool) "torn main image fails verify" false
        (Page.verify main.(0));
      Alcotest.(check int) "torn image holds the partial write" 9
        (Page.get main.(0) 0);
      Alcotest.(check int) "torn image keeps old tail bytes" 7
        (Page.get main.(0) 1);
      Alcotest.(check bool) "shadow verifies" true (Page.verify shadow.(0));
      Alcotest.(check int) "shadow holds the before-image" 7
        (Page.get shadow.(0) 1);
      Alcotest.(check bool) "untouched page verifies" true
        (Page.verify main.(1)));
  Page_device.close dev2

(* --- a whole database survives reopen ------------------------------ *)

let db_reopen_continues () =
  let dir = fresh_dir "dbreopen" in
  let backend = Backend.File { dir } in
  let spec = { Gen.default with Gen.n_steps = 60; n_objects = 16 } in
  let script = Gen.generate spec ~seed:9L in
  let db = Driver.fresh_db ~backend ~n_objects:16 () in
  Driver.run db script;
  Db.shutdown db;
  Db.close db;
  let expected = Oracle.expected ~n_objects:16 script in
  let re = Driver.fresh_db ~backend ~n_objects:16 () in
  ignore (Db.recover re);
  Alcotest.(check (array int)) "reopened state matches the oracle" expected
    (Db.peek_all re);
  Alcotest.(check bool) "invariants hold after reopen" true
    (Db.validate re = Ok ());
  (* the reopened database must keep allocating fresh xids past the
     dead process's — a new transaction's work must recover too *)
  let t = Db.begin_txn re in
  Db.write re t (oid 0) 4242;
  Db.commit re t;
  Db.crash re;
  ignore (Db.recover re);
  Alcotest.(check int) "post-reopen commit durable" 4242 (Db.peek re (oid 0));
  Alcotest.(check bool) "invariants still hold" true (Db.validate re = Ok ());
  Db.close re

(* --- in-process storms on the file backend -------------------------- *)

let file_backend_storm () =
  let config =
    {
      Crash_storm.default_config with
      backend_root = Some (fresh_dir "storm");
    }
  in
  let spec = { Gen.default with Gen.n_steps = 40; n_objects = 16 } in
  let outcome = Crash_storm.run_script ~config spec in
  if not (Crash_storm.ok outcome) then
    Alcotest.failf "file-backend storm failed:@ %a" Crash_storm.pp_outcome
      outcome;
  Alcotest.(check bool) "faults fired" true (outcome.fault_points > 0)

(* --- the external kill -9 storm ------------------------------------ *)

let external_storm_smoke () =
  let config =
    {
      Supervisor.default_config with
      kill_step = 11;
      max_kills = 4;
      root = fresh_dir "extstorm";
    }
  in
  let spec = { Gen.default with Gen.n_steps = 36; n_objects = 12 } in
  let outcome = Supervisor.run ~config spec in
  if not (Crash_storm.ok outcome) then
    Alcotest.failf "external storm failed:@ %a" Crash_storm.pp_outcome outcome;
  Alcotest.(check bool)
    (Printf.sprintf "children actually got killed (%d)" outcome.crashes)
    true (outcome.crashes > 0);
  Alcotest.(check bool) "recoveries ran" true (outcome.recoveries > 0)

(* --- parity: the backends are indistinguishable --------------------- *)

let replace_all ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let n = String.length sub in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string b by;
      i := !i + n
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_string b (String.sub s !i (String.length s - !i));
  Buffer.contents b

(* Run the same seeded crash-recover episode on a backend; return the
   recovered state, the logical record sequence, and the forensic dump
   (with the backend label normalised away). *)
let episode backend ~impl ~script ~n_objects ~seed ~crash_at =
  let fault = Fault.create ~seed:(Int64.of_int seed) () in
  Fault.set_tear_log_on_crash fault true;
  Fault.set_tear_data_on_crash fault true;
  Fault.set_tear_data_every fault 5;
  Fault.arm_crash_at fault crash_at;
  let db = Driver.fresh_db ~fault ~backend ~impl ~tracing:true ~n_objects () in
  (try Driver.run db script with Fault.Injected_crash _ -> ());
  Db.crash db;
  Fault.set_enabled fault false;
  ignore (Db.recover db);
  let state = Db.peek_all db in
  let records = record_strings (Db.log_store db) in
  let dump =
    Ariesrh_obs.Json.to_string
      (Forensics.dump ~kind:"parity" ~seed:(Int64.of_int seed)
         ~failures:[ "none" ] db)
  in
  Db.close db;
  (state, records, replace_all ~sub:{|: "file"|} ~by:{|: "sim"|} dump)

let backend_parity =
  QCheck.Test.make ~count:9 ~name:"sim and file backends are byte-identical"
    QCheck.(
      pair small_int (oneofl [ Config.Rh; Config.Eager; Config.Lazy ]))
    (fun (seed, impl) ->
      let spec = { Gen.default with Gen.n_steps = 30; n_objects = 12 } in
      let script = Gen.generate spec ~seed:(Int64.of_int seed) in
      let crash_at = 5 + (seed mod 23) in
      let run backend =
        episode backend ~impl ~script ~n_objects:12 ~seed ~crash_at
      in
      let s_state, s_recs, s_dump = run Backend.Sim in
      let f_state, f_recs, f_dump = run (file_backend "parity") in
      if s_state <> f_state then
        QCheck.Test.fail_report "states differ between backends";
      if s_recs <> f_recs then
        QCheck.Test.fail_report "logical record sequences differ";
      if s_dump <> f_dump then
        QCheck.Test.fail_report "forensic dumps differ";
      true)

let suite =
  [
    Alcotest.test_case "WAL file roundtrip across reopen" `Quick
      wal_reopen_roundtrip;
    Alcotest.test_case "WAL segment rollover and truncation" `Quick
      wal_segment_rollover;
    Alcotest.test_case "torn WAL tail amputated across reopen" `Quick
      wal_torn_tail_reopen;
    Alcotest.test_case "page file doublewrite vs torn write" `Quick
      page_file_torn_write;
    Alcotest.test_case "database survives reopen and continues" `Quick
      db_reopen_continues;
    Alcotest.test_case "in-process storm on the file backend" `Quick
      file_backend_storm;
    Alcotest.test_case "external kill -9 storm smoke" `Quick
      external_storm_smoke;
    QCheck_alcotest.to_alcotest backend_parity;
  ]
