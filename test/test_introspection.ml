(* Inspection surfaces: object history, live responsibility, chains,
   the engine validator, and printers. *)

open Ariesrh_types
open Ariesrh_core

let oid = Oid.of_int

let mk () =
  Db.create
    (Config.make ~n_objects:32 ~objects_per_page:4 ~buffer_capacity:8 ())

let object_history_tells_the_story () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  Db.abort db t1;
  let events = Db.object_history db (oid 0) in
  match events with
  | [ Db.Updated u; Db.Delegated d; Db.Compensated c ] ->
      Alcotest.(check int) "update by t0" (Xid.to_int t0) (Xid.to_int u.invoker);
      Alcotest.(check int) "delegated to t1" (Xid.to_int t1) (Xid.to_int d.to_);
      Alcotest.(check bool) "object granularity" true (d.op_lsn = None);
      Alcotest.(check int) "compensated by the delegatee" (Xid.to_int t1)
        (Xid.to_int c.by);
      Alcotest.(check int) "compensates the original update"
        (Lsn.to_int u.lsn) (Lsn.to_int c.undone)
  | l -> Alcotest.failf "unexpected history (%d events)" (List.length l)

let history_shows_op_granularity () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  let l = Db.last_lsn_of db t0 in
  Db.delegate_update db ~from_:t0 ~to_:t1 (oid 0) l;
  (match Db.object_history db (oid 0) with
  | [ Db.Updated _; Db.Delegated { op_lsn = Some op; _ } ] ->
      Alcotest.(check int) "names the operation" (Lsn.to_int l) (Lsn.to_int op)
  | _ -> Alcotest.fail "expected update + op-granular delegation");
  Db.commit db t1;
  Db.commit db t0

let responsible_now_reflects_delegation () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  (match Db.responsible_now db (oid 0) with
  | [ (owner, invoker) ] ->
      Alcotest.(check bool) "own update" true
        (Xid.equal owner t0 && Xid.equal invoker t0)
  | _ -> Alcotest.fail "one pair expected");
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  match Db.responsible_now db (oid 0) with
  | [ (owner, invoker) ] ->
      Alcotest.(check bool) "responsibility moved, invoker preserved" true
        (Xid.equal owner t1 && Xid.equal invoker t0)
  | _ -> Alcotest.fail "one pair expected"

let chain_of_walks_the_chain () =
  let db = mk () in
  let t0 = Db.begin_txn db in
  Db.add db t0 (oid 0) 1;
  Db.add db t0 (oid 1) 2;
  let chain = Db.chain_of db t0 in
  Alcotest.(check int) "begin + two updates" 3 (List.length chain);
  let ints = List.map Lsn.to_int chain in
  Alcotest.(check (list int)) "head first, decreasing"
    (List.sort (fun a b -> compare b a) ints)
    ints

let validate_fresh_and_busy () =
  let db = mk () in
  (match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh engine invalid: %s" e);
  let t0 = Db.begin_txn db in
  let t1 = Db.begin_txn db in
  Db.add db t0 (oid 0) 5;
  Db.add db t1 (oid 0) 7;
  Db.delegate db ~from_:t0 ~to_:t1 (oid 0);
  match Db.validate db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "busy engine invalid: %s" e

let config_validation () =
  Alcotest.check_raises "zero objects"
    (Invalid_argument "Config: n_objects must be positive") (fun () ->
      Config.validate (Config.make ~n_objects:0 ()));
  Alcotest.check_raises "zero pool"
    (Invalid_argument "Config: buffer_capacity must be positive") (fun () ->
      Config.validate (Config.make ~buffer_capacity:0 ()));
  Alcotest.(check int) "pages needed rounds up" 3
    (Config.pages_needed (Config.make ~n_objects:17 ~objects_per_page:8 ()))

let error_printers () =
  let s e = Format.asprintf "%a" Errors.pp_exn e in
  Alcotest.(check bool) "conflict mentions blockers" true
    (String.length
       (s (Errors.Conflict { requester = Xid.of_int 1; holders = [ Xid.of_int 2 ] }))
    > 0);
  Alcotest.(check bool) "not responsible names both" true
    (s (Errors.Not_responsible { xid = Xid.of_int 3; oid = oid 4 })
    = "t3 is not responsible for ob4");
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let audit_msg =
    s (Ariesrh_recovery.Audit.Audit_failed
         [ "update at 127 attributed to t13"; "un-ended rewrite surgery" ])
  in
  Alcotest.(check bool) "audit failure counts violations" true
    (contains audit_msg "2 violations");
  Alcotest.(check bool) "audit failure lists them" true
    (contains audit_msg "attributed to t13");
  Alcotest.(check bool) "surgery corruption renders" true
    (contains
       (s (Ariesrh_recovery.Rewrite.Surgery_corrupt "orphaned rewrite CLR"))
       "orphaned rewrite CLR")

let report_printer_smoke () =
  let db = mk () in
  let t = Db.begin_txn db in
  Db.add db t (oid 0) 1;
  Db.crash db;
  let r = Db.recover db in
  Alcotest.(check bool) "report prints" true
    (String.length (Format.asprintf "%a" Ariesrh_recovery.Report.pp r) > 0)

let suite =
  [
    Alcotest.test_case "object history tells the story" `Quick
      object_history_tells_the_story;
    Alcotest.test_case "history shows op granularity" `Quick
      history_shows_op_granularity;
    Alcotest.test_case "responsible_now reflects delegation" `Quick
      responsible_now_reflects_delegation;
    Alcotest.test_case "chain_of walks the chain" `Quick chain_of_walks_the_chain;
    Alcotest.test_case "validate fresh and busy" `Quick validate_fresh_and_busy;
    Alcotest.test_case "config validation" `Quick config_validation;
    Alcotest.test_case "error printers" `Quick error_printers;
    Alcotest.test_case "report printer smoke" `Quick report_printer_smoke;
  ]
