let () =
  Alcotest.run "ariesrh"
    [
      ("util", Test_util.suite);
      ("small", Test_small.suite);
      ("wal", Test_wal.suite);
      ("storage", Test_storage.suite);
      ("backend", Test_backend.suite);
      ("lock", Test_lock.suite);
      ("txn", Test_txn.suite);
      ("recovery", Test_recovery.suite);
      ("db", Test_db.suite);
      ("eos", Test_eos.suite);
      ("etm", Test_etm.suite);
      ("workload", Test_workload.suite);
      ("introspection", Test_introspection.suite);
      ("model", Test_model.suite);
      ("model-based", Test_model_based.suite);
      ("properties", Test_properties.suite);
      ("fault", Test_fault.suite);
      ("governor", Test_governor.suite);
      ("obs", Test_obs.suite);
      ("perf", Test_perf.suite);
      ("known-bugs", Test_known_bugs.suite);
      ("media", Test_media.suite);
      ("temporal", Test_temporal.suite);
      ("shard", Test_shard.suite);
      ("on-demand", Test_on_demand.suite);
    ]
