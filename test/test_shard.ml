(* The sharded engine: router parity with the plain Db at shards = 1,
   crash-atomicity of the cross-shard transfer protocol at every I/O
   point of its window, the typed refusal, home-table reconstruction
   across restarts, the domain-per-shard pool, and the shared pressure
   view feeding the governors. *)

open Ariesrh_types
open Ariesrh_core
open Ariesrh_workload
module Sharded = Ariesrh_shard.Sharded
module Shard_pool = Ariesrh_shard.Shard_pool
module Fault = Ariesrh_fault.Fault
module Log_store = Ariesrh_wal.Log_store
module Record = Ariesrh_wal.Record
module Governor = Ariesrh_maintenance.Governor
module Pressure_view = Ariesrh_maintenance.Pressure_view

let oid = Oid.of_int

let engines = [ ("rh", Config.Rh); ("eager", Config.Eager); ("lazy", Config.Lazy) ]

(* --- shards = 1 is the plain engine ---------------------------------- *)

let log_records db =
  let acc = ref [] in
  let log = Db.log_store db in
  Log_store.iter_forward log ~from:Lsn.nil (fun _ r ->
      acc := Record.encode r :: !acc);
  List.rev !acc

(* Same script through [Driver.run] on a plain Db and [Shard_driver.run]
   on a one-shard router: WAL byte sequence, final states and audits
   must be identical — the router at shards = 1 adds routing, not
   behaviour. *)
let parity_one_shard ~impl ~seed () =
  let n_objects = 48 in
  let spec = { Gen.default with n_objects; n_steps = 400 } in
  let script = Gen.generate spec ~seed in
  let plain = Driver.fresh_db ~impl ~n_objects () in
  Driver.run plain script;
  let sh = Shard_driver.fresh ~impl ~shards:1 ~n_objects () in
  let homes = Shard_driver.assign_homes script ~shards:1 in
  Hashtbl.iter
    (fun _ h -> Alcotest.(check int) "one shard homes everything" 0 h)
    homes;
  Shard_driver.run ~homes sh script;
  Db.flush_commits plain;
  Sharded.flush_commits sh;
  let plain_log = log_records plain in
  let shard_log = log_records (Sharded.db sh 0) in
  Alcotest.(check int) "same log length" (List.length plain_log)
    (List.length shard_log);
  Alcotest.(check bool) "byte-identical WAL" true (plain_log = shard_log);
  let plain_state = Array.init n_objects (fun i -> Db.peek plain (oid i)) in
  Alcotest.(check bool) "identical final state" true
    (plain_state = Sharded.peek_all sh);
  Alcotest.(check (list string)) "plain audit clean" [] (Db.audit plain);
  Alcotest.(check (list string)) "sharded audit clean" [] (Sharded.audit sh);
  let c = Sharded.counters sh in
  Alcotest.(check int) "no migrations at one shard" 0 c.Sharded.migrations

(* --- the transfer protocol ------------------------------------------- *)

let prelude sh =
  (* a committed value on shard 0's object, plus unrelated committed
     work on shard 1, so both logs are non-trivial *)
  let a = Sharded.begin_txn sh ~shard:0 in
  Sharded.write sh a (oid 0) 5;
  Sharded.commit sh a;
  let b = Sharded.begin_txn sh ~shard:1 in
  Sharded.add sh b (oid 1) 3;
  Sharded.commit sh b

(* Crash at one armed I/O point during a migration, restart, and demand
   all-or-nothing: the object is wholly at the source or wholly at the
   target, the committed value intact either way, every audit clean. *)
let crash_once ~impl ~crash_io =
  let fault = Fault.create ~seed:11L () in
  let sh = Shard_driver.fresh ~fault ~impl ~audit:true ~shards:2 ~n_objects:8 () in
  prelude sh;
  Fault.arm_crash_at fault crash_io;
  let crashed =
    match Sharded.migrate sh (oid 0) ~target:1 with
    | () -> false
    | exception Fault.Injected_crash _ -> true
  in
  Fault.disarm_crash fault;
  if crashed then begin
    Sharded.crash sh;
    ignore (Sharded.recover sh)
  end;
  (* all-or-nothing: value readable and intact wherever it ended up *)
  Alcotest.(check int)
    (Printf.sprintf "value intact after crash at io %d" crash_io)
    5 (Sharded.peek sh (oid 0));
  Alcotest.(check (list string))
    (Printf.sprintf "audit clean after crash at io %d" crash_io)
    [] (Sharded.audit sh);
  (match Sharded.validate sh with
  | Ok () -> ()
  | Error m -> Alcotest.failf "validate after crash at io %d: %s" crash_io m);
  (* the protocol must be re-runnable to completion afterwards *)
  Sharded.migrate sh (oid 0) ~target:1;
  Alcotest.(check int) "value after completing the transfer" 5
    (Sharded.peek sh (oid 0));
  Alcotest.(check (list string)) "audit clean after completion" []
    (Sharded.audit sh);
  crashed

(* Sweep every I/O point of the intent -> transfer -> end window. The
   window is measured on an unarmed probe run of the identical
   schedule, so the sweep provably brackets the whole protocol. *)
let transfer_window_sweep impl () =
  let fault = Fault.create ~seed:11L () in
  let sh = Shard_driver.fresh ~fault ~impl ~audit:true ~shards:2 ~n_objects:8 () in
  prelude sh;
  let before = (Fault.stats fault).Fault.ios in
  Sharded.migrate sh (oid 0) ~target:1;
  let after = (Fault.stats fault).Fault.ios in
  Alcotest.(check bool) "the migration window spans I/O points" true
    (after > before);
  let crashes = ref 0 in
  for crash_io = before + 1 to after do
    if crash_once ~impl ~crash_io then incr crashes
  done;
  Alcotest.(check bool) "at least one armed point actually fired" true
    (!crashes > 0)

(* The three specific crash points the protocol argues about, pinned by
   outcome: after the intent alone the transfer must roll back; once
   the target-side record is durable it must roll forward. *)
let resolution_direction () =
  let outcomes = ref [] in
  let fault = Fault.create ~seed:11L () in
  let sh = Shard_driver.fresh ~fault ~impl:Config.Rh ~audit:true ~shards:2 ~n_objects:8 () in
  prelude sh;
  let before = (Fault.stats fault).Fault.ios in
  Sharded.migrate sh (oid 0) ~target:1;
  let after = (Fault.stats fault).Fault.ios in
  for crash_io = before + 1 to after do
    let fault = Fault.create ~seed:11L () in
    let sh =
      Shard_driver.fresh ~fault ~impl:Config.Rh ~audit:true ~shards:2
        ~n_objects:8 ()
    in
    prelude sh;
    Fault.arm_crash_at fault crash_io;
    (match Sharded.migrate sh (oid 0) ~target:1 with
    | () -> ()
    | exception Fault.Injected_crash _ ->
        Sharded.crash sh;
        ignore (Sharded.recover sh);
        let c = Sharded.counters sh in
        outcomes :=
          (c.Sharded.resolved_forward, c.Sharded.resolved_back) :: !outcomes)
  done;
  (* both directions must occur somewhere in the window, and each
     restart resolves at most the one in-doubt transfer *)
  Alcotest.(check bool) "some crash rolled the transfer forward" true
    (List.exists (fun (f, _) -> f = 1) !outcomes);
  Alcotest.(check bool) "some crash rolled the transfer back" true
    (List.exists (fun (_, b) -> b = 1) !outcomes);
  List.iter
    (fun (f, b) ->
      Alcotest.(check bool) "exactly one resolution per restart" true
        (f + b <= 1))
    !outcomes

(* --- refusal --------------------------------------------------------- *)

let refusal_is_typed_and_counted () =
  let sh = Shard_driver.fresh ~shards:2 ~n_objects:8 () in
  let a = Sharded.begin_txn sh ~shard:0 in
  Sharded.add sh a (oid 0) 1;
  let b = Sharded.begin_txn sh ~shard:1 in
  (match Sharded.add sh b (oid 0) 1 with
  | () -> Alcotest.fail "migration should refuse while a lock is held"
  | exception Errors.Xfer_refused { oid = o; holders } ->
      Alcotest.(check int) "refused object" 0 (Oid.to_int o);
      Alcotest.(check bool) "holder named" true (holders = [ a.Sharded.txn ]));
  let c = Sharded.counters sh in
  Alcotest.(check int) "refusal counted" 1 c.Sharded.migrations_refused;
  Alcotest.(check int) "no migration happened" 0 c.Sharded.migrations;
  Sharded.commit sh a;
  (* lock released: the same touch now migrates and applies *)
  Sharded.add sh b (oid 0) 1;
  Sharded.commit sh b;
  Alcotest.(check int) "both adds visible" 2 (Sharded.peek sh (oid 0));
  let c = Sharded.counters sh in
  Alcotest.(check int) "migration counted" 1 c.Sharded.migrations;
  Alcotest.(check (list string)) "audit clean" [] (Sharded.audit sh)

(* --- home reconstruction across restarts ----------------------------- *)

let homes_rebuilt_from_logs () =
  let sh = Shard_driver.fresh ~audit:true ~shards:2 ~n_objects:8 () in
  prelude sh;
  Sharded.migrate sh (oid 0) ~target:1;
  let m1 = (Sharded.counters sh).Sharded.migrations in
  Sharded.crash sh;
  ignore (Sharded.recover sh);
  (* the home table was reset and rebuilt from the durable logs alone:
     a second migrate to the same target must be a no-op *)
  Sharded.migrate sh (oid 0) ~target:1;
  Alcotest.(check int) "migrate to current home is a no-op" m1
    (Sharded.counters sh).Sharded.migrations;
  Alcotest.(check int) "value survived the restart" 5 (Sharded.peek sh (oid 0));
  (* and a transfer back to the base home erases the exception entry *)
  Sharded.migrate sh (oid 0) ~target:0;
  Sharded.crash sh;
  ignore (Sharded.recover sh);
  Sharded.migrate sh (oid 0) ~target:0;
  Alcotest.(check int) "round trip counted once each way" (m1 + 1)
    (Sharded.counters sh).Sharded.migrations;
  Alcotest.(check int) "value survived the round trip" 5
    (Sharded.peek sh (oid 0));
  Alcotest.(check (list string)) "audit clean" [] (Sharded.audit sh)

(* --- cross-shard delegation stays explicit --------------------------- *)

let delegation_requires_one_shard () =
  let sh = Shard_driver.fresh ~shards:2 ~n_objects:8 () in
  let a = Sharded.begin_txn sh ~shard:0 in
  let b = Sharded.begin_txn sh ~shard:1 in
  Sharded.add sh a (oid 0) 1;
  (match Sharded.delegate sh ~from_:a ~to_:b (oid 0) with
  | () -> Alcotest.fail "cross-shard delegate must be refused"
  | exception Invalid_argument m ->
      Alcotest.(check bool) "names both shards" true
        (String.length m > 0));
  Sharded.abort sh a;
  Sharded.abort sh b

(* --- the domain pool ------------------------------------------------- *)

let pool_basics () =
  let pool = Shard_pool.create 3 in
  Alcotest.(check int) "size" 3 (Shard_pool.size pool);
  Alcotest.(check int) "exec returns" 42 (Shard_pool.exec pool 2 (fun () -> 42));
  (* every shard job runs on its own domain, none on the caller's *)
  let me = Domain.self () in
  let ids = Shard_pool.map pool (fun _ -> Domain.self ()) in
  Array.iter
    (fun id -> Alcotest.(check bool) "not the main domain" true (id <> me))
    ids;
  Alcotest.(check int) "three distinct domains" 3
    (List.length (List.sort_uniq compare (Array.to_list ids)));
  (* worker-to-peer calls nest without deadlock *)
  Alcotest.(check int) "nested exec" 7
    (Shard_pool.exec pool 0 (fun () -> Shard_pool.exec pool 1 (fun () -> 7)));
  (* exceptions cross back to the caller *)
  (match Shard_pool.exec pool 1 (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception should propagate"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  Shard_pool.poll pool;
  (* a no-op on the main domain *)
  Shard_pool.shutdown pool;
  Shard_pool.shutdown pool (* idempotent *)

let pooled_router_end_to_end () =
  let pool = Shard_pool.create 2 in
  let sh =
    Sharded.create ~pool
      (Config.make ~n_objects:8 ~objects_per_page:4 ~buffer_capacity:4
         ~impl:Config.Rh ~locking:true ~shards:2 ())
  in
  (* main-domain caller, ops shipped to the workers; a cross-shard touch
     migrates through both workers' queues *)
  let a = Sharded.begin_txn sh ~shard:0 in
  Sharded.write sh a (oid 0) 9;
  Sharded.commit sh a;
  let b = Sharded.begin_txn sh ~shard:1 in
  Sharded.add sh b (oid 0) 1;
  Sharded.commit sh b;
  Sharded.flush_commits sh;
  Alcotest.(check int) "migrated value visible" 10 (Sharded.peek sh (oid 0));
  Alcotest.(check int) "one migration" 1
    (Sharded.counters sh).Sharded.migrations;
  Alcotest.(check (list string)) "audit clean" [] (Sharded.audit sh);
  (* parallel recovery over the pool *)
  Sharded.crash sh;
  let reports = Sharded.recover sh in
  Alcotest.(check int) "one report per shard" 2 (Array.length reports);
  Alcotest.(check int) "state after pooled restart" 10
    (Sharded.peek sh (oid 0));
  Sharded.close sh;
  Shard_pool.shutdown pool

(* --- the shared pressure view ---------------------------------------- *)

let pressure_view_basics () =
  let v = Pressure_view.create 3 in
  Alcotest.(check int) "size" 3 (Pressure_view.size v);
  Pressure_view.publish v 0 0.25;
  Pressure_view.publish v 2 0.75;
  Alcotest.(check (float 1e-9)) "slot read back" 0.25 (Pressure_view.shard v 0);
  Alcotest.(check (float 1e-9)) "max" 0.75 (Pressure_view.max_pressure v);
  Alcotest.(check (float 1e-9)) "mean" (1.0 /. 3.0) (Pressure_view.mean v);
  (match Pressure_view.publish v 3 0.5 with
  | () -> Alcotest.fail "out-of-range slot must be refused"
  | exception Invalid_argument _ -> ())

(* A hot peer shard engages this governor's advisory backpressure even
   though local pressure is low — and precisely because local pressure
   is low, it never victimizes a local transaction. *)
let governor_follows_cluster_pressure () =
  let view = Pressure_view.create 2 in
  let db =
    Db.create
      (Config.make ~n_objects:16 ~objects_per_page:4 ~buffer_capacity:4
         ~impl:Config.Rh ~locking:true ~log_capacity_records:1000 ())
  in
  let gov = Governor.create ~view:(view, 0) db in
  let x = Db.begin_txn db in
  Db.add db x (oid 1) 1;
  (* peer runs hot *)
  Pressure_view.publish view 1 0.95;
  Governor.force_tick gov;
  Alcotest.(check bool) "advisory ladder engaged" true (Governor.level gov >= 1);
  Alcotest.(check (list (pair (module Xid) int))) "no local victim"
    []
    (List.map (fun x -> (x, 0)) (Governor.victims gov));
  (* peer cools down: hysteresis drops the backpressure *)
  Pressure_view.publish view 1 0.0;
  Governor.force_tick gov;
  Alcotest.(check int) "deescalated" 0 (Governor.level gov);
  Db.commit db x;
  (* slot range is validated at attach time *)
  match Governor.create ~view:(view, 5) db with
  | _ -> Alcotest.fail "bad view slot must be refused"
  | exception Invalid_argument _ -> ()

let suite =
  List.map
    (fun (name, impl) ->
      Alcotest.test_case
        (Printf.sprintf "shards=1 parity (%s)" name)
        `Quick
        (parity_one_shard ~impl ~seed:(Int64.of_int (17 + Hashtbl.hash name))))
    engines
  @ List.map
      (fun (name, impl) ->
        Alcotest.test_case
          (Printf.sprintf "transfer-window crash sweep (%s)" name)
          `Quick (transfer_window_sweep impl))
      engines
  @ [
      Alcotest.test_case "restart resolves both directions" `Quick
        resolution_direction;
      Alcotest.test_case "refusal is typed and counted" `Quick
        refusal_is_typed_and_counted;
      Alcotest.test_case "homes rebuilt from durable logs" `Quick
        homes_rebuilt_from_logs;
      Alcotest.test_case "cross-shard delegate is refused" `Quick
        delegation_requires_one_shard;
      Alcotest.test_case "pool basics" `Quick pool_basics;
      Alcotest.test_case "pooled router end to end" `Quick
        pooled_router_end_to_end;
      Alcotest.test_case "pressure view basics" `Quick pressure_view_basics;
      Alcotest.test_case "governor follows cluster pressure" `Quick
        governor_follows_cluster_pressure;
    ]
